// Package commset maintains the whole-program model of commutative sets
// after lowering: which functions are members of which sets, the COMMSET
// graph, well-formedness checks, and the global rank order used by the
// synchronization engine for deadlock-free lock acquisition (paper
// Sections 3.1, 4.2, and 4.6).
package commset

import (
	"sort"

	"repro/internal/callgraph"
	"repro/internal/lower"
	"repro/internal/source"
	"repro/internal/types"
)

// Model is the program-wide commutative-set model.
type Model struct {
	Info *types.Info
	Low  *lower.Result

	// Sets lists every set in deterministic order; Rank maps each set to
	// its position, the global lock-acquisition order.
	Sets []*types.Set
	Rank map[*types.Set]int

	// Members maps each set to the names of its member functions (region
	// functions and interface-annotated functions), sorted.
	Members map[*types.Set][]string

	// SetsOf maps a member function name to its sets, in rank order.
	SetsOf map[string][]*types.Set
}

// BuildModel derives the set model from semantic info and lowering output.
func BuildModel(info *types.Info, low *lower.Result) *Model {
	m := &Model{
		Info:    info,
		Low:     low,
		Rank:    map[*types.Set]int{},
		Members: map[*types.Set][]string{},
		SetsOf:  map[string][]*types.Set{},
	}
	m.Sets = info.AllSets()
	for i, s := range m.Sets {
		m.Rank[s] = i
	}

	memberSeen := map[*types.Set]map[string]bool{}
	addMember := func(s *types.Set, fn string) {
		if memberSeen[s] == nil {
			memberSeen[s] = map[string]bool{}
		}
		if !memberSeen[s][fn] {
			memberSeen[s][fn] = true
			m.Members[s] = append(m.Members[s], fn)
		}
	}
	for instr, refs := range low.CallMembs {
		for _, ref := range refs {
			addMember(ref.Set, instr.Name)
		}
	}
	for fn, refs := range low.FuncMembs {
		for _, ref := range refs {
			addMember(ref.Set, fn)
		}
	}
	for _, s := range m.Sets {
		sort.Strings(m.Members[s])
		for _, fn := range m.Members[s] {
			m.SetsOf[fn] = append(m.SetsOf[fn], s)
		}
	}
	for fn := range m.SetsOf {
		sets := m.SetsOf[fn]
		sort.Slice(sets, func(i, j int) bool { return m.Rank[sets[i]] < m.Rank[sets[j]] })
	}
	return m
}

// NeedsSync reports whether calls to fn require compiler-inserted
// synchronization: it is a member of at least one set without
// COMMSETNOSYNC.
func (m *Model) NeedsSync(fn string) bool {
	for _, s := range m.SetsOf[fn] {
		if !s.NoSync {
			return true
		}
	}
	return false
}

// LockSets returns the sets whose locks a call to fn must hold, in global
// rank order (the deadlock-freedom order of Section 4.6).
func (m *Model) LockSets(fn string) []*types.Set {
	var out []*types.Set
	for _, s := range m.SetsOf[fn] {
		if !s.NoSync {
			out = append(out, s)
		}
	}
	return out
}

// CheckWellFormed verifies the paper's well-formedness conditions:
//
//	(b) no transitive call from one member of a set to another member of
//	    the same set (including member recursion), and
//	the COMMSET graph — an edge S1→S2 when a member of S1 transitively
//	calls a member of S2 — is acyclic.
//
// Violations are reported into diags against file.
func (m *Model) CheckWellFormed(cg *callgraph.Graph, diags *source.DiagList, file string) {
	for _, s := range m.Sets {
		members := m.Members[s]
		for _, m1 := range members {
			for _, m2 := range members {
				if cg.Calls(m1, m2) {
					diags.Errorf(file, s.DeclPos,
						"commset %s is not well-defined: member %s transitively calls member %s",
						s.Name, m1, m2)
				}
			}
		}
	}

	// COMMSET graph and cycle detection.
	adj := map[*types.Set][]*types.Set{}
	for _, s1 := range m.Sets {
		for _, s2 := range m.Sets {
			if s1 == s2 {
				continue
			}
			edge := false
			for _, m1 := range m.Members[s1] {
				for _, m2 := range m.Members[s2] {
					if m1 != m2 && cg.Calls(m1, m2) {
						edge = true
						break
					}
				}
				if edge {
					break
				}
			}
			if edge {
				adj[s1] = append(adj[s1], s2)
			}
		}
	}
	// DFS cycle detection.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[*types.Set]int{}
	var visit func(s *types.Set) bool
	visit = func(s *types.Set) bool {
		color[s] = gray
		for _, t := range adj[s] {
			switch color[t] {
			case gray:
				diags.Errorf(file, s.DeclPos,
					"commset graph has a cycle involving %s and %s; the set of commsets is not well-formed",
					s.Name, t.Name)
				return false
			case white:
				if !visit(t) {
					return false
				}
			}
		}
		color[s] = black
		return true
	}
	for _, s := range m.Sets {
		if color[s] == white {
			if !visit(s) {
				return
			}
		}
	}
}

// MemberCalls reports, for the given function name, whether it is a member
// of any commutative set.
func (m *Model) MemberCalls(fn string) bool { return len(m.SetsOf[fn]) > 0 }
