package commset_test

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/callgraph"
	"repro/internal/commset"
	"repro/internal/lower"
	"repro/internal/parser"
	"repro/internal/source"
	"repro/internal/types"
)

func buildModel(t *testing.T, src string) (*commset.Model, *callgraph.Graph, *source.DiagList) {
	t.Helper()
	sigs := map[string]*types.Sig{
		"emit": {Name: "emit", Params: []ast.Type{ast.TInt}, Result: ast.TVoid},
	}
	var diags source.DiagList
	prog := parser.Parse(source.NewFile("t.mc", src), &diags)
	info := types.Check(prog, sigs, &diags)
	res := lower.Lower(info, &diags)
	if diags.HasErrors() {
		t.Fatalf("compile:\n%s", diags.String())
	}
	cg := callgraph.Build(res.Prog)
	return commset.BuildModel(info, res), cg, &diags
}

const modelSrc = `
#pragma commset decl ASET
#pragma commset decl BSET
#pragma commset nosync BSET

#pragma commset member ASET, BSET
void f(int x) { emit(x); }

#pragma commset member BSET
void g(int x) { emit(x + 1); }

void main() {
	for (int i = 0; i < 3; i++) {
		f(i);
		g(i);
		#pragma commset member ASET, SELF
		{ emit(i * 10); }
	}
}
`

func TestModelMembersAndRanks(t *testing.T) {
	m, _, _ := buildModel(t, modelSrc)
	// Named sets sorted first: ASET rank 0, BSET rank 1, anon SELF last.
	if len(m.Sets) != 3 {
		t.Fatalf("sets = %d", len(m.Sets))
	}
	if m.Sets[0].Name != "ASET" || m.Rank[m.Sets[0]] != 0 {
		t.Errorf("set 0 = %s rank %d", m.Sets[0].Name, m.Rank[m.Sets[0]])
	}
	if m.Sets[1].Name != "BSET" || m.Rank[m.Sets[1]] != 1 {
		t.Errorf("set 1 = %s", m.Sets[1].Name)
	}
	if !m.Sets[2].Anon {
		t.Errorf("set 2 should be the anonymous SELF set")
	}

	aset := m.Sets[0]
	members := m.Members[aset]
	if len(members) != 2 || members[0] != "f" || members[1] != "main$r1" {
		t.Errorf("ASET members = %v", members)
	}
	if got := m.Members[m.Sets[1]]; len(got) != 2 || got[0] != "f" || got[1] != "g" {
		t.Errorf("BSET members = %v", got)
	}
}

func TestLockSetsRespectNoSyncAndRankOrder(t *testing.T) {
	m, _, _ := buildModel(t, modelSrc)
	// f is in ASET (locked) and BSET (nosync): one lock.
	locks := m.LockSets("f")
	if len(locks) != 1 || locks[0].Name != "ASET" {
		t.Errorf("LockSets(f) = %v", locks)
	}
	if !m.NeedsSync("f") {
		t.Error("f needs sync via ASET")
	}
	// g is only in the nosync BSET: no locks, no sync.
	if len(m.LockSets("g")) != 0 || m.NeedsSync("g") {
		t.Error("g must not need compiler-inserted sync")
	}
	if m.MemberCalls("g") != true {
		t.Error("g is still a member")
	}
	if m.MemberCalls("main") {
		t.Error("main is not a member")
	}
	// The region is in ASET and its own SELF set, acquired in rank order.
	region := m.SetsOf["main$r1"]
	if len(region) != 2 || m.Rank[region[0]] >= m.Rank[region[1]] {
		t.Errorf("region sets out of rank order: %v", region)
	}
}

func TestWellFormedOK(t *testing.T) {
	m, cg, diags := buildModel(t, modelSrc)
	m.CheckWellFormed(cg, diags, "t.mc")
	if diags.HasErrors() {
		t.Errorf("unexpected well-formedness errors:\n%s", diags.String())
	}
}

func TestWellFormedMemberCallsMember(t *testing.T) {
	m, cg, diags := buildModel(t, `
#pragma commset decl G

#pragma commset member G
void inner(int x) { emit(x); }

#pragma commset member G
void outer(int x) { inner(x); }

void main() { outer(1); }
`)
	m.CheckWellFormed(cg, diags, "t.mc")
	if !diags.HasErrors() {
		t.Error("expected member-calls-member violation")
	}
}

func TestWellFormedMemberRecursion(t *testing.T) {
	m, cg, diags := buildModel(t, `
#pragma commset decl G

#pragma commset member G
void spin(int x) {
	if (x > 0) {
		spin(x - 1);
	}
	emit(x);
}

void main() { spin(3); }
`)
	m.CheckWellFormed(cg, diags, "t.mc")
	if !diags.HasErrors() {
		t.Fatal("expected recursion to violate condition (b)")
	}
	if !strings.Contains(diags.String(), "member spin transitively calls member spin") {
		t.Errorf("wrong message:\n%s", diags.String())
	}
}

func TestWellFormedCommsetGraphCycle(t *testing.T) {
	// S1 -> S2 (a calls b) and S2 -> S1 (c calls d): the COMMSET graph has
	// a cycle even though no set violates condition (b) on its own.
	m, cg, diags := buildModel(t, `
#pragma commset decl S1
#pragma commset decl S2

#pragma commset member S2
void b(int x) { emit(x); }

#pragma commset member S1
void a(int x) { b(x); }

#pragma commset member S1
void d(int x) { emit(x + 1); }

#pragma commset member S2
void c(int x) { d(x); }

void main() {
	a(1);
	c(2);
}
`)
	m.CheckWellFormed(cg, diags, "t.mc")
	if !diags.HasErrors() {
		t.Fatal("expected a commset-graph cycle error")
	}
	if !strings.Contains(diags.String(), "commset graph has a cycle involving") {
		t.Errorf("wrong message:\n%s", diags.String())
	}
}
