// Package lexer converts MiniC source text into a token stream.
//
// Besides the ordinary C-like tokens, the lexer recognizes `#pragma` lines
// and emits them as single token.PRAGMA tokens whose literal is the pragma
// body (everything after `#pragma`, trimmed). This mirrors the paper's
// front end, in which COMMSET directives are pragma lines that a standard
// C compiler may ignore: eliding PRAGMA tokens yields a valid sequential
// MiniC token stream.
package lexer

import (
	"strings"
	"unicode"
	"unicode/utf8"

	"repro/internal/source"
	"repro/internal/token"
)

// Token is one lexed token: its kind, literal text, and start position.
type Token struct {
	Kind token.Kind
	Lit  string
	Pos  source.Pos
}

// String renders the token for diagnostics and tests.
func (t Token) String() string {
	if t.Lit != "" && t.Kind != token.EOF {
		return t.Kind.String() + "(" + t.Lit + ")"
	}
	return t.Kind.String()
}

// Lexer scans one source file. Create with New; call Next until EOF.
type Lexer struct {
	file   *source.File
	src    string
	offset int // current byte offset
	diags  *source.DiagList
}

// New returns a lexer over file, reporting problems into diags.
func New(file *source.File, diags *source.DiagList) *Lexer {
	return &Lexer{file: file, src: file.Content, diags: diags}
}

// ScanAll lexes the whole file, returning every token up to and including
// EOF. Comments are dropped; pragma lines are kept as PRAGMA tokens.
func ScanAll(file *source.File, diags *source.DiagList) []Token {
	lx := New(file, diags)
	var toks []Token
	for {
		t := lx.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks
		}
	}
}

func (l *Lexer) errorf(off int, format string, args ...any) {
	l.diags.Errorf(l.file.Name, l.file.PosFor(off), format, args...)
}

func (l *Lexer) peekByte() byte {
	if l.offset >= len(l.src) {
		return 0
	}
	return l.src[l.offset]
}

func (l *Lexer) peekByteAt(n int) byte {
	if l.offset+n >= len(l.src) {
		return 0
	}
	return l.src[l.offset+n]
}

func (l *Lexer) skipSpaceAndComments() {
	for l.offset < len(l.src) {
		c := l.src[l.offset]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.offset++
		case c == '/' && l.peekByteAt(1) == '/':
			for l.offset < len(l.src) && l.src[l.offset] != '\n' {
				l.offset++
			}
		case c == '/' && l.peekByteAt(1) == '*':
			start := l.offset
			l.offset += 2
			closed := false
			for l.offset+1 < len(l.src) {
				if l.src[l.offset] == '*' && l.src[l.offset+1] == '/' {
					l.offset += 2
					closed = true
					break
				}
				l.offset++
			}
			if !closed {
				l.offset = len(l.src)
				l.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

// Next returns the next token. After EOF it keeps returning EOF.
func (l *Lexer) Next() Token {
	l.skipSpaceAndComments()
	startOff := l.offset
	pos := l.file.PosFor(startOff)
	if l.offset >= len(l.src) {
		return Token{Kind: token.EOF, Pos: pos}
	}

	c := l.src[l.offset]
	switch {
	case c == '#':
		return l.scanPragma(startOff, pos)
	case isIdentStart(rune(c)):
		return l.scanIdent(pos)
	case c >= '0' && c <= '9':
		return l.scanNumber(pos)
	case c == '.' && l.peekByteAt(1) >= '0' && l.peekByteAt(1) <= '9':
		return l.scanNumber(pos)
	case c == '"':
		return l.scanString(pos)
	case c == '\'':
		return l.scanChar(pos)
	}
	return l.scanOperator(startOff, pos)
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *Lexer) scanIdent(pos source.Pos) Token {
	start := l.offset
	for l.offset < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.offset:])
		if !isIdentPart(r) {
			break
		}
		l.offset += size
	}
	lit := l.src[start:l.offset]
	return Token{Kind: token.Lookup(lit), Lit: lit, Pos: pos}
}

func (l *Lexer) scanNumber(pos source.Pos) Token {
	start := l.offset
	kind := token.INT
	// Hex literal.
	if l.peekByte() == '0' && (l.peekByteAt(1) == 'x' || l.peekByteAt(1) == 'X') {
		l.offset += 2
		for isHexDigit(l.peekByte()) {
			l.offset++
		}
		if l.offset == start+2 {
			l.errorf(start, "malformed hex literal")
		}
		return Token{Kind: token.INT, Lit: l.src[start:l.offset], Pos: pos}
	}
	for l.peekByte() >= '0' && l.peekByte() <= '9' {
		l.offset++
	}
	if l.peekByte() == '.' && l.peekByteAt(1) >= '0' && l.peekByteAt(1) <= '9' {
		kind = token.FLOAT
		l.offset++ // '.'
		for l.peekByte() >= '0' && l.peekByte() <= '9' {
			l.offset++
		}
	} else if l.peekByte() == '.' {
		kind = token.FLOAT
		l.offset++
	}
	if b := l.peekByte(); b == 'e' || b == 'E' {
		save := l.offset
		l.offset++
		if b := l.peekByte(); b == '+' || b == '-' {
			l.offset++
		}
		if l.peekByte() >= '0' && l.peekByte() <= '9' {
			kind = token.FLOAT
			for l.peekByte() >= '0' && l.peekByte() <= '9' {
				l.offset++
			}
		} else {
			l.offset = save // not an exponent after all
		}
	}
	return Token{Kind: kind, Lit: l.src[start:l.offset], Pos: pos}
}

func isHexDigit(b byte) bool {
	return b >= '0' && b <= '9' || b >= 'a' && b <= 'f' || b >= 'A' && b <= 'F'
}

// scanString scans a double-quoted string literal with C-style escapes. The
// returned literal is the *decoded* string contents (without quotes).
func (l *Lexer) scanString(pos source.Pos) Token {
	start := l.offset
	l.offset++ // opening quote
	var b strings.Builder
	for l.offset < len(l.src) {
		c := l.src[l.offset]
		if c == '"' {
			l.offset++
			return Token{Kind: token.STRING, Lit: b.String(), Pos: pos}
		}
		if c == '\n' {
			break
		}
		if c == '\\' {
			l.offset++
			b.WriteByte(l.unescape(start))
			continue
		}
		b.WriteByte(c)
		l.offset++
	}
	l.errorf(start, "unterminated string literal")
	return Token{Kind: token.STRING, Lit: b.String(), Pos: pos}
}

func (l *Lexer) unescape(start int) byte {
	if l.offset >= len(l.src) {
		l.errorf(start, "unterminated escape sequence")
		return 0
	}
	c := l.src[l.offset]
	l.offset++
	switch c {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0':
		return 0
	case '\\':
		return '\\'
	case '\'':
		return '\''
	case '"':
		return '"'
	}
	l.errorf(start, "unknown escape sequence \\%c", c)
	return c
}

// scanChar scans a character literal; it is surfaced as an INT token holding
// the decimal value of the rune, since MiniC has no distinct char type.
func (l *Lexer) scanChar(pos source.Pos) Token {
	start := l.offset
	l.offset++ // opening quote
	var val byte
	if l.peekByte() == '\\' {
		l.offset++
		val = l.unescape(start)
	} else if l.offset < len(l.src) && l.src[l.offset] != '\'' && l.src[l.offset] != '\n' {
		val = l.src[l.offset]
		l.offset++
	} else {
		l.errorf(start, "empty character literal")
	}
	if l.peekByte() == '\'' {
		l.offset++
	} else {
		l.errorf(start, "unterminated character literal")
	}
	return Token{Kind: token.INT, Lit: intLit(val), Pos: pos}
}

func intLit(b byte) string {
	if b == 0 {
		return "0"
	}
	var buf [3]byte
	i := len(buf)
	for v := int(b); v > 0; v /= 10 {
		i--
		buf[i] = byte('0' + v%10)
	}
	return string(buf[i:])
}

// scanPragma consumes a full `#pragma ...` line. Unknown `#` directives are
// reported and skipped to end of line (MiniC has no preprocessor).
func (l *Lexer) scanPragma(startOff int, pos source.Pos) Token {
	lineEnd := strings.IndexByte(l.src[l.offset:], '\n')
	if lineEnd < 0 {
		lineEnd = len(l.src) - l.offset
	}
	line := l.src[l.offset : l.offset+lineEnd]
	l.offset += lineEnd // leave the '\n' for skipSpace
	body, ok := strings.CutPrefix(strings.TrimSpace(line), "#pragma")
	if !ok {
		l.errorf(startOff, "unsupported preprocessor directive %q (MiniC supports only #pragma)", strings.Fields(line)[0])
		return Token{Kind: token.ILLEGAL, Lit: line, Pos: pos}
	}
	return Token{Kind: token.PRAGMA, Lit: strings.TrimSpace(body), Pos: pos}
}

func (l *Lexer) scanOperator(startOff int, pos source.Pos) Token {
	c := l.src[l.offset]
	two := func(k token.Kind) Token {
		lit := l.src[l.offset : l.offset+2]
		l.offset += 2
		return Token{Kind: k, Lit: lit, Pos: pos}
	}
	one := func(k token.Kind) Token {
		lit := l.src[l.offset : l.offset+1]
		l.offset++
		return Token{Kind: k, Lit: lit, Pos: pos}
	}
	n := l.peekByteAt(1)
	switch c {
	case '+':
		if n == '+' {
			return two(token.INC)
		}
		if n == '=' {
			return two(token.ADDASSIGN)
		}
		return one(token.ADD)
	case '-':
		if n == '-' {
			return two(token.DEC)
		}
		if n == '=' {
			return two(token.SUBASSIGN)
		}
		return one(token.SUB)
	case '*':
		if n == '=' {
			return two(token.MULASSIGN)
		}
		return one(token.MUL)
	case '/':
		if n == '=' {
			return two(token.QUOASSIGN)
		}
		return one(token.QUO)
	case '%':
		if n == '=' {
			return two(token.REMASSIGN)
		}
		return one(token.REM)
	case '&':
		if n == '&' {
			return two(token.AND)
		}
		return one(token.BAND)
	case '|':
		if n == '|' {
			return two(token.OR)
		}
		return one(token.BOR)
	case '^':
		return one(token.BXOR)
	case '!':
		if n == '=' {
			return two(token.NEQ)
		}
		return one(token.NOT)
	case '=':
		if n == '=' {
			return two(token.EQL)
		}
		return one(token.ASSIGN)
	case '<':
		if n == '=' {
			return two(token.LEQ)
		}
		if n == '<' {
			return two(token.SHL)
		}
		return one(token.LSS)
	case '>':
		if n == '=' {
			return two(token.GEQ)
		}
		if n == '>' {
			return two(token.SHR)
		}
		return one(token.GTR)
	case '(':
		return one(token.LPAREN)
	case ')':
		return one(token.RPAREN)
	case '{':
		return one(token.LBRACE)
	case '}':
		return one(token.RBRACE)
	case '[':
		return one(token.LBRACKET)
	case ']':
		return one(token.RBRACKET)
	case ',':
		return one(token.COMMA)
	case ';':
		return one(token.SEMICOLON)
	case ':':
		return one(token.COLON)
	case '.':
		return one(token.DOT)
	case '?':
		return one(token.QUESTION)
	}
	l.errorf(startOff, "illegal character %q", rune(c))
	l.offset++
	return Token{Kind: token.ILLEGAL, Lit: string(c), Pos: pos}
}
