package lexer

import (
	"testing"

	"repro/internal/source"
	"repro/internal/token"
)

func lexOK(t *testing.T, src string) []Token {
	t.Helper()
	var diags source.DiagList
	toks := ScanAll(source.NewFile("test.mc", src), &diags)
	if diags.HasErrors() {
		t.Fatalf("unexpected lex errors:\n%s", diags.String())
	}
	return toks
}

func kinds(toks []Token) []token.Kind {
	ks := make([]token.Kind, len(toks))
	for i, t := range toks {
		ks[i] = t.Kind
	}
	return ks
}

func TestScanBasicTokens(t *testing.T) {
	toks := lexOK(t, `int main() { return 0; }`)
	want := []token.Kind{
		token.KwInt, token.IDENT, token.LPAREN, token.RPAREN, token.LBRACE,
		token.KwReturn, token.INT, token.SEMICOLON, token.RBRACE, token.EOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestScanOperators(t *testing.T) {
	cases := map[string]token.Kind{
		"+": token.ADD, "-": token.SUB, "*": token.MUL, "/": token.QUO, "%": token.REM,
		"&&": token.AND, "||": token.OR, "!": token.NOT, "&": token.BAND, "|": token.BOR,
		"^": token.BXOR, "<<": token.SHL, ">>": token.SHR,
		"==": token.EQL, "!=": token.NEQ, "<": token.LSS, ">": token.GTR,
		"<=": token.LEQ, ">=": token.GEQ,
		"=": token.ASSIGN, "+=": token.ADDASSIGN, "-=": token.SUBASSIGN,
		"*=": token.MULASSIGN, "/=": token.QUOASSIGN, "%=": token.REMASSIGN,
		"++": token.INC, "--": token.DEC,
		"?": token.QUESTION, ":": token.COLON, ".": token.DOT,
	}
	for src, want := range cases {
		toks := lexOK(t, src)
		if toks[0].Kind != want {
			t.Errorf("%q: got %v, want %v", src, toks[0].Kind, want)
		}
	}
}

func TestScanNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind token.Kind
		lit  string
	}{
		{"0", token.INT, "0"},
		{"12345", token.INT, "12345"},
		{"0x1F", token.INT, "0x1F"},
		{"3.14", token.FLOAT, "3.14"},
		{"2.", token.FLOAT, "2."},
		{"1e9", token.FLOAT, "1e9"},
		{"2.5e-3", token.FLOAT, "2.5e-3"},
	}
	for _, c := range cases {
		toks := lexOK(t, c.src)
		if toks[0].Kind != c.kind || toks[0].Lit != c.lit {
			t.Errorf("%q: got %v(%q), want %v(%q)", c.src, toks[0].Kind, toks[0].Lit, c.kind, c.lit)
		}
	}
}

func TestScanStringEscapes(t *testing.T) {
	toks := lexOK(t, `"a\tb\nc\"d"`)
	if toks[0].Kind != token.STRING {
		t.Fatalf("got %v, want STRING", toks[0].Kind)
	}
	if toks[0].Lit != "a\tb\nc\"d" {
		t.Errorf("got %q", toks[0].Lit)
	}
}

func TestScanCharLiteral(t *testing.T) {
	toks := lexOK(t, `'a' '\n'`)
	if toks[0].Kind != token.INT || toks[0].Lit != "97" {
		t.Errorf("'a': got %v(%q)", toks[0].Kind, toks[0].Lit)
	}
	if toks[1].Kind != token.INT || toks[1].Lit != "10" {
		t.Errorf("'\\n': got %v(%q)", toks[1].Kind, toks[1].Lit)
	}
}

func TestScanComments(t *testing.T) {
	toks := lexOK(t, "int x; // line comment\n/* block\ncomment */ int y;")
	var idents []string
	for _, tok := range toks {
		if tok.Kind == token.IDENT {
			idents = append(idents, tok.Lit)
		}
	}
	if len(idents) != 2 || idents[0] != "x" || idents[1] != "y" {
		t.Errorf("idents = %v, want [x y]", idents)
	}
}

func TestScanPragma(t *testing.T) {
	toks := lexOK(t, "#pragma commset decl FSET\nint x;")
	if toks[0].Kind != token.PRAGMA {
		t.Fatalf("got %v, want PRAGMA", toks[0].Kind)
	}
	if toks[0].Lit != "commset decl FSET" {
		t.Errorf("pragma body = %q", toks[0].Lit)
	}
	if toks[1].Kind != token.KwInt {
		t.Errorf("token after pragma = %v, want int", toks[1].Kind)
	}
}

func TestScanPragmaPositions(t *testing.T) {
	toks := lexOK(t, "\n\n  #pragma commset decl A\n")
	if toks[0].Pos.Line != 3 {
		t.Errorf("pragma line = %d, want 3", toks[0].Pos.Line)
	}
}

func TestScanErrors(t *testing.T) {
	cases := []string{
		`"unterminated`,
		`/* unterminated`,
		"#include <stdio.h>",
		"@",
	}
	for _, src := range cases {
		var diags source.DiagList
		ScanAll(source.NewFile("t.mc", src), &diags)
		if !diags.HasErrors() {
			t.Errorf("%q: expected a lex error", src)
		}
	}
}

func TestPositions(t *testing.T) {
	toks := lexOK(t, "int x;\nint yy;")
	// tokens: int x ; int yy ; EOF
	if p := toks[3].Pos; p.Line != 2 || p.Col != 1 {
		t.Errorf("second int at %v, want 2:1", p)
	}
	if p := toks[4].Pos; p.Line != 2 || p.Col != 5 {
		t.Errorf("yy at %v, want 2:5", p)
	}
}
