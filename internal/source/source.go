// Package source provides source-file bookkeeping shared by every stage of
// the COMMSET compiler: positions, spans, and structured diagnostics.
//
// A File owns the raw text of one MiniC translation unit and can translate
// byte offsets into human-readable line/column positions. Diagnostics carry a
// Pos so every later pass (parser, type checker, commset well-formedness,
// dependence analysis) reports errors against the original source the
// programmer annotated, exactly as the paper's clang-based front end does.
package source

import (
	"fmt"
	"sort"
	"strings"
)

// Pos is a position within a File, expressed as 1-based line and column.
// The zero Pos is "no position".
type Pos struct {
	Line int
	Col  int
}

// IsValid reports whether p denotes an actual source location.
func (p Pos) IsValid() bool { return p.Line > 0 }

// String renders the position as "line:col", or "-" when invalid.
func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// Before reports whether p occurs strictly before q in the file.
func (p Pos) Before(q Pos) bool {
	if p.Line != q.Line {
		return p.Line < q.Line
	}
	return p.Col < q.Col
}

// Span is a half-open region of source text from Start up to End.
type Span struct {
	Start Pos
	End   Pos
}

// String renders the span as "start-end".
func (s Span) String() string { return s.Start.String() + "-" + s.End.String() }

// File holds the contents of a single MiniC source file together with the
// offsets of every line start, enabling offset→Pos translation.
type File struct {
	Name    string
	Content string

	lineOffsets []int // byte offset of the start of each line
}

// NewFile records content under the given name and indexes its line starts.
func NewFile(name, content string) *File {
	f := &File{Name: name, Content: content}
	f.lineOffsets = append(f.lineOffsets, 0)
	for i := 0; i < len(content); i++ {
		if content[i] == '\n' {
			f.lineOffsets = append(f.lineOffsets, i+1)
		}
	}
	return f
}

// PosFor converts a byte offset into a Pos. Offsets past the end of the file
// are clamped to the final position.
func (f *File) PosFor(offset int) Pos {
	if offset < 0 {
		offset = 0
	}
	if offset > len(f.Content) {
		offset = len(f.Content)
	}
	// Find the last line start <= offset.
	i := sort.Search(len(f.lineOffsets), func(i int) bool {
		return f.lineOffsets[i] > offset
	}) - 1
	return Pos{Line: i + 1, Col: offset - f.lineOffsets[i] + 1}
}

// Line returns the text of the 1-based line number, without the trailing
// newline. Out-of-range lines yield "".
func (f *File) Line(n int) string {
	if n < 1 || n > len(f.lineOffsets) {
		return ""
	}
	start := f.lineOffsets[n-1]
	end := len(f.Content)
	if n < len(f.lineOffsets) {
		end = f.lineOffsets[n] - 1
	}
	return strings.TrimRight(f.Content[start:end], "\r")
}

// NumLines reports the number of lines in the file.
func (f *File) NumLines() int { return len(f.lineOffsets) }

// Severity classifies a diagnostic.
type Severity int

// Diagnostic severities, from informational notes to hard errors.
const (
	SevNote Severity = iota
	SevWarning
	SevError
)

// String names the severity as it appears in rendered diagnostics.
func (s Severity) String() string {
	switch s {
	case SevNote:
		return "note"
	case SevWarning:
		return "warning"
	case SevError:
		return "error"
	}
	return "unknown"
}

// Note is a secondary location attached to a diagnostic, e.g. the race
// analyzer's "conflicting write here". Span.End may be the zero Pos when the
// note anchors to a single position.
type Note struct {
	File string
	Span Span
	Msg  string
}

// Diagnostic is one compiler message anchored to a source position, with
// optional related notes pointing at secondary spans.
type Diagnostic struct {
	Sev  Severity
	File string
	Pos  Pos
	Msg  string

	Notes []Note
}

// Related appends a secondary-span note to the diagnostic and returns it for
// chaining.
func (d *Diagnostic) Related(file string, span Span, format string, args ...any) *Diagnostic {
	d.Notes = append(d.Notes, Note{File: file, Span: span, Msg: fmt.Sprintf(format, args...)})
	return d
}

// Error implements the error interface so a single Diagnostic can be
// returned directly from compiler entry points. Related notes render
// gcc-style, one indented line each, below the primary message.
func (d *Diagnostic) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:%s: %s: %s", d.File, d.Pos, d.Sev, d.Msg)
	for _, n := range d.Notes {
		loc := n.Span.Start.String()
		if n.Span.End.IsValid() {
			loc = n.Span.String()
		}
		fmt.Fprintf(&b, "\n\t%s:%s: note: %s", n.File, loc, n.Msg)
	}
	return b.String()
}

// DiagList accumulates diagnostics across a compilation. The zero value is
// ready to use.
type DiagList struct {
	Diags []Diagnostic
}

// Errorf appends an error-severity diagnostic and returns it so callers can
// attach related notes.
func (l *DiagList) Errorf(file string, pos Pos, format string, args ...any) *Diagnostic {
	return l.add(SevError, file, pos, format, args...)
}

// Warnf appends a warning-severity diagnostic and returns it so callers can
// attach related notes.
func (l *DiagList) Warnf(file string, pos Pos, format string, args ...any) *Diagnostic {
	return l.add(SevWarning, file, pos, format, args...)
}

// Notef appends a note-severity diagnostic and returns it so callers can
// attach related notes.
func (l *DiagList) Notef(file string, pos Pos, format string, args ...any) *Diagnostic {
	return l.add(SevNote, file, pos, format, args...)
}

func (l *DiagList) add(sev Severity, file string, pos Pos, format string, args ...any) *Diagnostic {
	l.Diags = append(l.Diags, Diagnostic{Sev: sev, File: file, Pos: pos, Msg: fmt.Sprintf(format, args...)})
	return &l.Diags[len(l.Diags)-1]
}

// HasErrors reports whether any error-severity diagnostic was recorded.
func (l *DiagList) HasErrors() bool {
	for i := range l.Diags {
		if l.Diags[i].Sev == SevError {
			return true
		}
	}
	return false
}

// ErrCount returns the number of error-severity diagnostics.
func (l *DiagList) ErrCount() int {
	n := 0
	for i := range l.Diags {
		if l.Diags[i].Sev == SevError {
			n++
		}
	}
	return n
}

// Err returns an error summarizing the list when it contains errors, and nil
// otherwise. The first error's text is used, with a count suffix when more
// follow.
func (l *DiagList) Err() error {
	if !l.HasErrors() {
		return nil
	}
	var first *Diagnostic
	for i := range l.Diags {
		if l.Diags[i].Sev == SevError {
			first = &l.Diags[i]
			break
		}
	}
	if n := l.ErrCount(); n > 1 {
		return fmt.Errorf("%s (and %d more errors)", first.Error(), n-1)
	}
	return fmt.Errorf("%s", first.Error())
}

// String renders every diagnostic, one per line.
func (l *DiagList) String() string {
	var b strings.Builder
	for i := range l.Diags {
		b.WriteString(l.Diags[i].Error())
		b.WriteByte('\n')
	}
	return b.String()
}

// SortDiagnostics orders diagnostics by (file, position, message), with
// severity (errors first) as the final tie-break — the deterministic order
// commsetc and commsetvet print, independent of analysis traversal order.
func SortDiagnostics(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := &diags[i], &diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Pos != b.Pos {
			return a.Pos.Before(b.Pos)
		}
		if a.Msg != b.Msg {
			return a.Msg < b.Msg
		}
		return a.Sev > b.Sev
	})
}

// Sort orders the list's diagnostics deterministically (see SortDiagnostics).
func (l *DiagList) Sort() {
	SortDiagnostics(l.Diags)
}
