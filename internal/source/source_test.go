package source

import (
	"strings"
	"testing"
)

func TestPosForOffsets(t *testing.T) {
	f := NewFile("t.mc", "abc\ndef\n\nx")
	cases := []struct {
		off  int
		line int
		col  int
	}{
		{0, 1, 1},
		{2, 1, 3},
		{3, 1, 4}, // the newline itself
		{4, 2, 1},
		{8, 3, 1},
		{9, 4, 1},
		{100, 4, 2}, // clamped past EOF
		{-5, 1, 1},  // clamped before start
	}
	for _, c := range cases {
		p := f.PosFor(c.off)
		if p.Line != c.line || p.Col != c.col {
			t.Errorf("PosFor(%d) = %v, want %d:%d", c.off, p, c.line, c.col)
		}
	}
}

func TestLineAccess(t *testing.T) {
	f := NewFile("t.mc", "first\r\nsecond\nthird")
	if f.NumLines() != 3 {
		t.Errorf("NumLines = %d", f.NumLines())
	}
	if f.Line(1) != "first" || f.Line(2) != "second" || f.Line(3) != "third" {
		t.Errorf("lines = %q %q %q", f.Line(1), f.Line(2), f.Line(3))
	}
	if f.Line(0) != "" || f.Line(9) != "" {
		t.Error("out-of-range lines must be empty")
	}
}

func TestPosOrderingAndValidity(t *testing.T) {
	a := Pos{Line: 1, Col: 5}
	b := Pos{Line: 2, Col: 1}
	c := Pos{Line: 1, Col: 9}
	if !a.Before(b) || !a.Before(c) || b.Before(a) {
		t.Error("Before ordering wrong")
	}
	if (Pos{}).IsValid() {
		t.Error("zero Pos must be invalid")
	}
	if (Pos{}).String() != "-" {
		t.Error("invalid Pos renders as -")
	}
	if a.String() != "1:5" {
		t.Errorf("Pos string = %q", a.String())
	}
	if (Span{Start: a, End: c}).String() != "1:5-1:9" {
		t.Error("Span string")
	}
}

func TestDiagListErrAndCounts(t *testing.T) {
	var d DiagList
	if d.Err() != nil || d.HasErrors() {
		t.Error("empty list must have no errors")
	}
	d.Warnf("f.mc", Pos{Line: 1, Col: 1}, "careful")
	d.Notef("f.mc", Pos{Line: 1, Col: 2}, "fyi")
	if d.HasErrors() {
		t.Error("warnings are not errors")
	}
	d.Errorf("f.mc", Pos{Line: 2, Col: 1}, "boom %d", 1)
	d.Errorf("f.mc", Pos{Line: 3, Col: 1}, "boom 2")
	if d.ErrCount() != 2 {
		t.Errorf("ErrCount = %d", d.ErrCount())
	}
	err := d.Err()
	if err == nil || !strings.Contains(err.Error(), "boom 1") || !strings.Contains(err.Error(), "1 more error") {
		t.Errorf("Err = %v", err)
	}
	if !strings.Contains(d.String(), "warning: careful") {
		t.Errorf("String = %q", d.String())
	}
}

func TestDiagSortDeterministic(t *testing.T) {
	var d DiagList
	d.Notef("b.mc", Pos{Line: 1, Col: 1}, "n")
	d.Errorf("a.mc", Pos{Line: 9, Col: 1}, "e2")
	d.Errorf("a.mc", Pos{Line: 1, Col: 1}, "e1")
	d.Warnf("a.mc", Pos{Line: 1, Col: 1}, "w1")
	d.Sort()
	if d.Diags[0].Msg != "e1" { // error at a.mc:1:1 sorts before the warning
		t.Errorf("first after sort = %+v", d.Diags[0])
	}
	if d.Diags[1].Msg != "w1" || d.Diags[2].Msg != "e2" || d.Diags[3].File != "b.mc" {
		t.Errorf("sorted order wrong: %+v", d.Diags)
	}
}

func TestSeverityStrings(t *testing.T) {
	if SevNote.String() != "note" || SevWarning.String() != "warning" || SevError.String() != "error" {
		t.Error("severity names")
	}
	if Severity(42).String() != "unknown" {
		t.Error("unknown severity")
	}
}

func TestDiagnosticRelatedNotes(t *testing.T) {
	var d DiagList
	d.Errorf("f.mc", Pos{Line: 1, Col: 2}, "boom").
		Related("f.mc", Span{Start: Pos{Line: 3, Col: 4}}, "see %s", "here").
		Related("g.mc", Span{Start: Pos{Line: 5, Col: 6}, End: Pos{Line: 5, Col: 9}}, "and here")
	got := d.Diags[0].Error()
	want := "f.mc:1:2: error: boom\n\tf.mc:3:4: note: see here\n\tg.mc:5:6-5:9: note: and here"
	if got != want {
		t.Errorf("rendered = %q, want %q", got, want)
	}
	// String() must include the notes too.
	if !strings.Contains(d.String(), "see here") {
		t.Errorf("DiagList.String() lost the notes:\n%s", d.String())
	}
}
