package exec

import (
	"errors"
	"fmt"

	"repro/internal/pipeline"
	"repro/internal/transform"
)

// Recovery configures the fault-recovery policies of the parallel executors.
// All recovery cost is charged in virtual time, so a recovered run's makespan
// honestly reflects the retries it paid for.
type Recovery struct {
	// MaxCallRetries bounds per-call retries of transient builtin failures;
	// 0 selects the default (3), negative disables call-level retry.
	MaxCallRetries int
	// BackoffBase is the virtual-time backoff charged before the first
	// retry; it doubles on each subsequent attempt. 0 selects 200.
	BackoffBase int64
	// MaxIterRetries bounds DOALL iteration re-executions after call-level
	// retry is exhausted; 0 selects the default (2), negative disables
	// iteration retry.
	MaxIterRetries int

	// CheckpointEvery is the periodic checkpoint interval, in iteration
	// passes (DOALL) or tokens (pipeline stages), between the forced
	// output-commit snapshots taken after externalizing passes; 0 selects
	// the default (4), negative checkpoints every pass.
	CheckpointEvery int
	// MaxRestarts bounds supervisor restarts per worker role after
	// transient crashes; 0 selects the default (3), negative disables
	// restarts (every crash is then treated as permanent).
	MaxRestarts int
	// RestartDelay is the virtual-time supervisor latency between a thread
	// death and its replacement starting (detection + respawn); 0 selects
	// the default (800).
	RestartDelay int64
}

// Defaults for the crash-recovery knobs.
const (
	defaultCheckpointEvery = 4
	defaultMaxRestarts     = 3
	defaultRestartDelay    = 800
)

func (r *Recovery) checkpointEvery() int64 {
	switch {
	case r.CheckpointEvery < 0:
		return 1
	case r.CheckpointEvery == 0:
		return defaultCheckpointEvery
	}
	return int64(r.CheckpointEvery)
}

func (r *Recovery) maxRestarts() int {
	switch {
	case r.MaxRestarts < 0:
		return 0
	case r.MaxRestarts == 0:
		return defaultMaxRestarts
	}
	return r.MaxRestarts
}

func (r *Recovery) restartDelay() int64 {
	if r.RestartDelay <= 0 {
		return defaultRestartDelay
	}
	return r.RestartDelay
}

// DefaultRecovery returns the standard policy (3 call retries, backoff base
// 200, 2 iteration retries).
func DefaultRecovery() *Recovery { return &Recovery{} }

func (r *Recovery) callRetries() int {
	switch {
	case r.MaxCallRetries < 0:
		return 0
	case r.MaxCallRetries == 0:
		return 3
	}
	return r.MaxCallRetries
}

func (r *Recovery) iterRetries() int {
	switch {
	case r.MaxIterRetries < 0:
		return 0
	case r.MaxIterRetries == 0:
		return 2
	}
	return r.MaxIterRetries
}

// backoff returns the virtual-time penalty before retry attempt `attempt`
// (0-based), doubling per attempt.
func (r *Recovery) backoff(attempt int) int64 {
	b := r.BackoffBase
	if b <= 0 {
		b = 200
	}
	if attempt > 16 {
		attempt = 16
	}
	return b << uint(attempt)
}

// IsTransient reports whether the error (anywhere in its chain) declares
// itself transient — i.e. retrying the failed operation can succeed. The
// executor stays decoupled from the fault-injection package by depending
// only on this interface.
func IsTransient(err error) bool {
	var t interface{ IsTransient() bool }
	return errors.As(err, &t) && t.IsTransient()
}

// FailureDiag is the diagnosed outcome of an unrecoverable fault: it names
// the simulated thread that observed the fault, the schedule it was running,
// and wraps the root cause.
type FailureDiag struct {
	Thread string
	Sched  string
	Sync   SyncMode
	Err    error

	// Restarts is the run's crash/restart history up to the diagnosis:
	// which threads crashed, at what virtual time, how stale their last
	// checkpoint was, and how much work each replacement replayed. A
	// diagnosed run therefore names its whole recovery timeline.
	Restarts []RestartRecord
}

// Error renders the diagnosis, including the restart history.
func (d *FailureDiag) Error() string {
	s := fmt.Sprintf("exec: unrecoverable fault in %s (%s/%s): %v", d.Thread, d.Sched, d.Sync, d.Err)
	if len(d.Restarts) > 0 {
		s += "; restart history:"
		for _, r := range d.Restarts {
			s += "\n  " + r.String()
		}
	}
	return s
}

// Unwrap exposes the root cause (e.g. a *faults.Error) to errors.As.
func (d *FailureDiag) Unwrap() error { return d.Err }

// ResilientOptions configures RunResilient.
type ResilientOptions struct {
	LA      *pipeline.LoopAnalysis
	Sched   *transform.Schedule
	Mode    SyncMode
	Threads int

	// Fresh builds a fresh Config (new substrate state, new fault-injector
	// instantiation) for each execution attempt.
	Fresh func() Config

	// Accept, when set, validates the outcome of the attempt that just
	// succeeded (e.g. output equivalence against the sequential reference);
	// a non-nil error rejects the attempt. parallel reports whether the
	// accepted run used the parallel schedule or the sequential fallback.
	Accept func(parallel bool) error

	// MaxAttempts bounds parallel-schedule attempts before degrading to the
	// sequential fallback (default 2).
	MaxAttempts int
}

// RunResilient executes the schedule with graceful degradation: up to
// MaxAttempts parallel runs (each on a fresh substrate), then — if the
// parallel schedule keeps failing or its output is rejected — a sequential
// re-run whose output is validated the same way. Permanent (non-transient)
// failures skip straight to the fallback, since re-running a deterministic
// schedule cannot change the outcome.
func RunResilient(opts ResilientOptions) (*Result, error) {
	max := opts.MaxAttempts
	if max <= 0 {
		max = 2
	}
	attempts := 0
	parallel := opts.Sched != nil && opts.Sched.Kind != transform.Sequential
	var lastErr error
	if parallel {
		for a := 0; a < max; a++ {
			attempts++
			res, err := Run(opts.Fresh(), opts.LA, opts.Sched, opts.Mode, opts.Threads)
			if err == nil {
				if opts.Accept != nil {
					if aerr := opts.Accept(true); aerr != nil {
						lastErr = fmt.Errorf("exec: parallel output rejected: %w", aerr)
						continue
					}
				}
				res.Attempts = attempts
				res.Recovered = res.CallRetries > 0 || res.IterRetries > 0 || res.Restarts > 0
				return res, nil
			}
			lastErr = err
			if !IsTransient(err) {
				break
			}
		}
	}

	// Graceful degradation: sequential re-run on a fresh substrate.
	attempts++
	res, err := RunSequential(opts.Fresh())
	if err != nil {
		if lastErr != nil {
			return nil, fmt.Errorf("exec: parallel schedule failed (%v); sequential fallback failed: %w", lastErr, err)
		}
		return nil, err
	}
	if opts.Accept != nil {
		if aerr := opts.Accept(false); aerr != nil {
			return nil, fmt.Errorf("exec: sequential fallback produced divergent output: %w", aerr)
		}
	}
	res.Sync = opts.Mode
	if parallel {
		res.Schedule = opts.Sched.String() + " (sequential fallback)"
	}
	res.Attempts = attempts
	res.FellBack = parallel
	res.Degraded = parallel
	res.Recovered = res.FellBack || res.CallRetries > 0
	return res, nil
}
