package exec_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/transform"
	"repro/internal/vm/des"
	"repro/internal/vm/exec"
)

// faulted builds a config over a fresh world with the plan's injector wired
// into the builtin table, queue pushes, and TM commits, plus the default
// recovery policy.
func (cp *compiled) faulted(plan faults.Plan, rec *exec.Recovery) (exec.Config, *world) {
	w := &world{}
	inj := faults.NewInjector(plan)
	cfg := cp.cfg
	cfg.Builtins = inj.Wrap(w.builtins())
	cfg.Recovery = rec
	cfg.PushDelay = inj.QueueDelay
	cfg.ExtraAborts = inj.ExtraAborts
	cfg.Effectful = map[string]bool{"fopen_i": true, "fread": true, "fclose": true, "print_int": true}
	return cfg, w
}

// TestTransientRetryRecovers: a short transient burst on digest must be
// absorbed by call-level retry under every sync mode, with
// sequential-equivalent output and retries reported.
func TestTransientRetryRecovers(t *testing.T) {
	cp := compileFor(t, md5Full, 8)
	_, seqOut := cp.seqRun(t)
	plan := faults.Plan{Name: "transient-burst", Seed: 11, Recoverable: true, Specs: []faults.Spec{
		{Kind: faults.Transient, Builtin: "digest", After: 5, Count: 2},
	}}
	for _, mode := range allSyncModes {
		cfg, w := cp.faulted(plan, exec.DefaultRecovery())
		res, err := exec.Run(cfg, cp.la, cp.sched[transform.DOALL], mode, 4)
		if err != nil {
			t.Fatalf("%v: recoverable run failed: %v", mode, err)
		}
		if res.CallRetries == 0 {
			t.Errorf("%v: no call retries recorded", mode)
		}
		if !res.Recovered {
			t.Errorf("%v: Recovered not set", mode)
		}
		if w.prints[len(w.prints)-1] != seqOut[len(seqOut)-1] {
			t.Errorf("%v: final total differs after recovery", mode)
		}
		a, b := sortedCopy(w.prints), sortedCopy(seqOut)
		if strings.Join(a, ",") != strings.Join(b, ",") {
			t.Errorf("%v: output multiset differs after recovery", mode)
		}
	}
}

// TestTransientLoopControlRecovers: a transient fault on the bound() call
// of the for-condition (a loop-control unit) is retried at call level in
// both DOALL workers and the pipeline dispatcher.
func TestTransientLoopControlRecovers(t *testing.T) {
	cp := compileFor(t, boundedLoop, 8)
	_, seqOut := cp.seqRun(t)
	plan := faults.Plan{Name: "transient-control", Seed: 5, Recoverable: true, Specs: []faults.Spec{
		{Kind: faults.Transient, Builtin: "bound", After: 7, Count: 2},
	}}
	for _, kind := range []transform.Kind{transform.DOALL, transform.PSDSWP} {
		if cp.sched[kind] == nil {
			continue
		}
		cfg, w := cp.faulted(plan, exec.DefaultRecovery())
		res, err := exec.Run(cfg, cp.la, cp.sched[kind], exec.SyncSpin, 4)
		if err != nil {
			t.Fatalf("%v: recoverable run failed: %v", kind, err)
		}
		if res.CallRetries == 0 {
			t.Errorf("%v: no call retries recorded", kind)
		}
		if w.prints[len(w.prints)-1] != seqOut[len(seqOut)-1] {
			t.Errorf("%v: final total differs: %v vs %v", kind, w.prints, seqOut)
		}
	}
}

// TestIterationReexecution: a burst longer than the call-retry budget forces
// DOALL iteration-granular re-execution. digest is the first operation of
// the iteration body, so nothing has been externalized when it fails and
// the iteration can be rolled back and re-run.
func TestIterationReexecution(t *testing.T) {
	cp := compileFor(t, `
#pragma commset decl FSET
#pragma commset predicate FSET (i1)(i2) : i1 != i2
void main() {
	int last = -1;
	int total = 0;
	for (int i = 0; i < 16; i++) {
		last = digest(i);
		#pragma commset member FSET(i), SELF
		{ total += last; }
	}
	print_int(last);
	print_int(total);
}`, 4)
	_, seqOut := cp.seqRun(t)
	plan := faults.Plan{Name: "long-burst", Seed: 2, Recoverable: true, Specs: []faults.Spec{
		{Kind: faults.Transient, Builtin: "digest", After: 5, Count: 6},
	}}
	// MaxCallRetries 2 → 3 calls per body attempt; a 6-call burst therefore
	// needs iteration re-execution to clear.
	cfg, w := cp.faulted(plan, &exec.Recovery{MaxCallRetries: 2})
	res, err := exec.Run(cfg, cp.la, cp.sched[transform.DOALL], exec.SyncSpin, 1)
	if err != nil {
		t.Fatalf("iteration re-execution failed: %v", err)
	}
	if res.IterRetries == 0 {
		t.Error("no iteration retries recorded")
	}
	if strings.Join(w.prints, ",") != strings.Join(seqOut, ",") {
		t.Errorf("output differs after iteration re-execution:\npar: %v\nseq: %v", w.prints, seqOut)
	}
}

// TestPermanentFaultDiagnosed: a permanent fault must terminate every
// schedule kind with a diagnosed *exec.FailureDiag naming the failing
// simulated thread and wrapping the injected *faults.Error — never hang.
func TestPermanentFaultDiagnosed(t *testing.T) {
	for _, src := range []string{md5Full, md5Det} {
		cp := compileFor(t, src, 8)
		plan := faults.Plan{Name: "perm", Seed: 3, Specs: []faults.Spec{
			{Kind: faults.Permanent, Builtin: "*", After: 60},
		}}
		for _, kind := range []transform.Kind{transform.DOALL, transform.DSWP, transform.PSDSWP} {
			if cp.sched[kind] == nil {
				continue
			}
			for _, mode := range allSyncModes {
				cfg, _ := cp.faulted(plan, exec.DefaultRecovery())
				_, err := exec.Run(cfg, cp.la, cp.sched[kind], mode, 4)
				if err == nil {
					t.Fatalf("%v/%v: permanent fault not diagnosed", kind, mode)
				}
				var diag *exec.FailureDiag
				if !errors.As(err, &diag) {
					t.Fatalf("%v/%v: err = %T %v, want *exec.FailureDiag", kind, mode, err, err)
				}
				var fe *faults.Error
				if !errors.As(err, &fe) || fe.IsTransient() {
					t.Errorf("%v/%v: diagnosis does not wrap the permanent fault: %v", kind, mode, err)
				}
				if diag.Thread == "" {
					t.Errorf("%v/%v: diagnosis does not name the failing thread", kind, mode)
				}
			}
		}
	}
}

// TestMergeStagePermanentFault: the in-order merge stage dying must shut the
// pipeline down in order (poison-pill stops), not deadlock, and diagnose
// the stage by name.
func TestMergeStagePermanentFault(t *testing.T) {
	cp := compileFor(t, md5Det, 8)
	plan := faults.Plan{Name: "merge-perm", Seed: 4, Specs: []faults.Spec{
		{Kind: faults.Permanent, Builtin: "print_int", After: 5},
	}}
	for _, kind := range []transform.Kind{transform.DSWP, transform.PSDSWP} {
		if cp.sched[kind] == nil {
			continue
		}
		cfg, _ := cp.faulted(plan, exec.DefaultRecovery())
		_, err := exec.Run(cfg, cp.la, cp.sched[kind], exec.SyncSpin, 4)
		var diag *exec.FailureDiag
		if !errors.As(err, &diag) {
			t.Fatalf("%v: err = %v, want *exec.FailureDiag", kind, err)
		}
		if !strings.Contains(diag.Thread, "stage") {
			t.Errorf("%v: diagnosis names %q, want a stage worker", kind, diag.Thread)
		}
	}
}

// TestSequentialFallback: when the parallel schedule keeps failing on a
// permanent fault that a fresh (clean) substrate does not reproduce, the
// resilient runner degrades to a sequential re-run and validates its output.
func TestSequentialFallback(t *testing.T) {
	cp := compileFor(t, md5Full, 8)
	_, seqOut := cp.seqRun(t)

	attempt := 0
	var lastW *world
	fresh := func() exec.Config {
		attempt++
		w := &world{}
		lastW = w
		cfg := cp.cfg
		cfg.Builtins = w.builtins()
		cfg.Recovery = exec.DefaultRecovery()
		if attempt == 1 {
			// Only the parallel attempt sees the (environmental) fault.
			inj := faults.NewInjector(faults.Plan{Seed: 1, Specs: []faults.Spec{
				{Kind: faults.Permanent, Builtin: "digest", After: 5},
			}})
			cfg.Builtins = inj.Wrap(cfg.Builtins)
		}
		return cfg
	}
	accept := func(parallel bool) error {
		if lastW.prints[len(lastW.prints)-1] != seqOut[len(seqOut)-1] {
			return fmt.Errorf("final total differs")
		}
		if !parallel && strings.Join(lastW.prints, ",") != strings.Join(seqOut, ",") {
			return fmt.Errorf("sequential fallback output differs")
		}
		return nil
	}
	res, err := exec.RunResilient(exec.ResilientOptions{
		LA:      cp.la,
		Sched:   cp.sched[transform.DOALL],
		Mode:    exec.SyncSpin,
		Threads: 4,
		Fresh:   fresh,
		Accept:  accept,
	})
	if err != nil {
		t.Fatalf("fallback failed: %v", err)
	}
	if !res.FellBack || !res.Recovered {
		t.Errorf("FellBack=%v Recovered=%v, want true/true", res.FellBack, res.Recovered)
	}
	if res.Attempts != 2 {
		t.Errorf("Attempts = %d, want 2 (permanent fault skips straight to fallback)", res.Attempts)
	}
	if !strings.Contains(res.Schedule, "fallback") {
		t.Errorf("Schedule = %q, want fallback marker", res.Schedule)
	}
}

// TestFallbackAlsoFailingIsDiagnosed: when the fault reproduces in the
// sequential fallback too, RunResilient must return a diagnosed error that
// reports both failures — never a hang or panic.
func TestFallbackAlsoFailingIsDiagnosed(t *testing.T) {
	cp := compileFor(t, md5Full, 8)
	plan := faults.Plan{Name: "perm-everywhere", Seed: 9, Specs: []faults.Spec{
		{Kind: faults.Permanent, Builtin: "digest", After: 5},
	}}
	fresh := func() exec.Config {
		cfg, _ := cp.faulted(plan, exec.DefaultRecovery())
		return cfg
	}
	_, err := exec.RunResilient(exec.ResilientOptions{
		LA:      cp.la,
		Sched:   cp.sched[transform.DOALL],
		Mode:    exec.SyncSpin,
		Threads: 4,
		Fresh:   fresh,
	})
	if err == nil {
		t.Fatal("fault reproducing in the fallback not diagnosed")
	}
	msg := err.Error()
	if !strings.Contains(msg, "sequential fallback failed") || !strings.Contains(msg, "injected permanent fault") {
		t.Errorf("diagnosis = %v", err)
	}
}

// TestQueueStallSlowsPipeline: queue-stall faults must show up as added
// virtual latency on pipeline runs, without changing the output.
func TestQueueStallSlowsPipeline(t *testing.T) {
	cp := compileFor(t, md5Det, 8)
	if cp.sched[transform.PSDSWP] == nil {
		t.Skip("no PS-DSWP")
	}
	_, seqOut := cp.seqRun(t)
	run := func(plan faults.Plan) (int64, []string) {
		cfg, w := cp.faulted(plan, exec.DefaultRecovery())
		res, err := exec.Run(cfg, cp.la, cp.sched[transform.PSDSWP], exec.SyncSpin, 4)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return res.VirtualTime, w.prints
	}
	clean, cleanOut := run(faults.Plan{Name: "clean", Seed: 1})
	stalled, stallOut := run(faults.Plan{Name: "stall", Seed: 1, Recoverable: true, Specs: []faults.Spec{
		{Kind: faults.QueueStall, Queue: "q", After: 1, Count: 20, Delay: 5000},
	}})
	if stalled <= clean {
		t.Errorf("queue stall did not slow the pipeline: %d <= %d", stalled, clean)
	}
	if strings.Join(cleanOut, ",") != strings.Join(seqOut, ",") ||
		strings.Join(stallOut, ",") != strings.Join(seqOut, ",") {
		t.Error("queue stall changed the in-order output")
	}
}

// TestTMStormSlowsCommits: synthetic conflict storms must charge extra
// abort-retry time on TM runs without changing the output.
func TestTMStormSlowsCommits(t *testing.T) {
	cp := compileFor(t, md5Full, 8)
	_, seqOut := cp.seqRun(t)
	run := func(plan faults.Plan) (int64, []string) {
		cfg, w := cp.faulted(plan, exec.DefaultRecovery())
		res, err := exec.Run(cfg, cp.la, cp.sched[transform.DOALL], exec.SyncTM, 4)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return res.VirtualTime, w.prints
	}
	clean, _ := run(faults.Plan{Name: "clean", Seed: 1})
	stormy, out := run(faults.Plan{Name: "storm", Seed: 1, Recoverable: true, Specs: []faults.Spec{
		{Kind: faults.TMStorm, After: 1, Count: 40, Aborts: 3},
	}})
	if stormy <= clean {
		t.Errorf("TM storm did not slow commits: %d <= %d", stormy, clean)
	}
	if out[len(out)-1] != seqOut[len(seqOut)-1] {
		t.Error("TM storm changed the final total")
	}
}

// TestLatencySpikeChargesTime: latency faults add virtual time, nothing else.
func TestLatencySpikeChargesTime(t *testing.T) {
	cp := compileFor(t, md5Full, 8)
	run := func(plan faults.Plan) int64 {
		cfg, _ := cp.faulted(plan, exec.DefaultRecovery())
		res, err := exec.Run(cfg, cp.la, cp.sched[transform.DOALL], exec.SyncSpin, 4)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return res.VirtualTime
	}
	clean := run(faults.Plan{Name: "clean", Seed: 1})
	spiked := run(faults.Plan{Name: "spike", Seed: 1, Recoverable: true, Specs: []faults.Spec{
		{Kind: faults.Latency, Builtin: "digest", After: 3, Count: 5, Delay: 100000},
	}})
	if spiked <= clean {
		t.Errorf("latency spikes did not add virtual time: %d <= %d", spiked, clean)
	}
}

// TestWatchdogWiredThroughConfig: an impossible virtual-time budget must
// convert the run into a diagnosed des.StallError.
func TestWatchdogWiredThroughConfig(t *testing.T) {
	cp := compileFor(t, md5Full, 8)
	cfg := cp.cfg
	w := &world{}
	cfg.Builtins = w.builtins()
	cfg.Watchdog = des.Watchdog{MaxVTime: 500}
	_, err := exec.Run(cfg, cp.la, cp.sched[transform.DOALL], exec.SyncSpin, 4)
	var se *des.StallError
	if !errors.As(err, &se) || se.Kind != "watchdog" {
		t.Fatalf("err = %v, want watchdog StallError", err)
	}
}

// TestFaultsUnderTunedSchedules: recovery must compose with the adaptive
// schedules — transient bursts under chunked/privatized DOALL and
// queue-stall + transient mixes under batched pipelines, across two
// workloads, still recover to sequential-equivalent output.
func TestFaultsUnderTunedSchedules(t *testing.T) {
	workloads := []struct {
		name string
		src  string
	}{{"md5Full", md5Full}, {"md5Det", md5Det}}
	for _, wl := range workloads {
		cp := compileFor(t, wl.src, 8)
		_, seqOut := cp.seqRun(t)

		// Chunked + privatized DOALL under a transient burst.
		doallPlan := faults.Plan{Name: "tuned-burst", Seed: 21, Recoverable: true, Specs: []faults.Spec{
			{Kind: faults.Transient, Builtin: "digest", After: 5, Count: 2},
		}}
		for _, tune := range []transform.Tuning{
			{Sched: transform.SchedChunked, Chunk: 4},
			{Sched: transform.SchedChunked, Chunk: 4, Privatize: true},
			{Sched: transform.SchedGuided, Privatize: true},
		} {
			if cp.sched[transform.DOALL] == nil {
				break // e.g. md5Det's Group-only print forbids DOALL
			}
			cfg, w := cp.faulted(doallPlan, exec.DefaultRecovery())
			cfg.Tune = tune
			res, err := exec.Run(cfg, cp.la, cp.sched[transform.DOALL], exec.SyncMutex, 4)
			if err != nil {
				t.Fatalf("%s DOALL %s: recoverable run failed: %v", wl.name, tune, err)
			}
			if res.CallRetries == 0 {
				t.Errorf("%s DOALL %s: no call retries recorded", wl.name, tune)
			}
			if w.prints[len(w.prints)-1] != seqOut[len(seqOut)-1] {
				t.Errorf("%s DOALL %s: final total differs after recovery", wl.name, tune)
			}
			a, b := sortedCopy(w.prints), sortedCopy(seqOut)
			if strings.Join(a, ",") != strings.Join(b, ",") {
				t.Errorf("%s DOALL %s: output multiset differs after recovery", wl.name, tune)
			}
		}

		// Batched pipeline under queue stalls plus a transient burst.
		pipePlan := faults.Plan{Name: "tuned-stall", Seed: 22, Recoverable: true, Specs: []faults.Spec{
			{Kind: faults.QueueStall, After: 1, Count: 10, Delay: 3000},
			{Kind: faults.Transient, Builtin: "digest", After: 9, Count: 2},
		}}
		for _, kind := range []transform.Kind{transform.DSWP, transform.PSDSWP} {
			if cp.sched[kind] == nil {
				continue
			}
			cfg, w := cp.faulted(pipePlan, exec.DefaultRecovery())
			cfg.Tune = transform.Tuning{Batch: 8}
			_, err := exec.Run(cfg, cp.la, cp.sched[kind], exec.SyncSpin, 4)
			if err != nil {
				t.Fatalf("%s %v batch(8): recoverable run failed: %v", wl.name, kind, err)
			}
			if w.prints[len(w.prints)-1] != seqOut[len(seqOut)-1] {
				t.Errorf("%s %v batch(8): final total differs after recovery", wl.name, kind)
			}
			a, b := sortedCopy(w.prints), sortedCopy(seqOut)
			if strings.Join(a, ",") != strings.Join(b, ",") {
				t.Errorf("%s %v batch(8): output multiset differs after recovery", wl.name, kind)
			}
		}
	}
}

// TestPermanentFaultDiagnosedTuned: a permanent fault under chunked DOALL
// and batched pipelines must still shut down in order with a diagnosis —
// batching buffers must not withhold the poison pill.
func TestPermanentFaultDiagnosedTuned(t *testing.T) {
	for _, src := range []string{md5Full, md5Det} {
		cp := compileFor(t, src, 8)
		plan := faults.Plan{Name: "tuned-perm", Seed: 23, Specs: []faults.Spec{
			{Kind: faults.Permanent, Builtin: "*", After: 60},
		}}
		tunes := map[transform.Kind]transform.Tuning{
			transform.DOALL:  {Sched: transform.SchedChunked, Chunk: 4, Privatize: true},
			transform.DSWP:   {Batch: 8},
			transform.PSDSWP: {Batch: 8},
		}
		for kind, tune := range tunes {
			if cp.sched[kind] == nil {
				continue
			}
			cfg, _ := cp.faulted(plan, exec.DefaultRecovery())
			cfg.Tune = tune
			_, err := exec.Run(cfg, cp.la, cp.sched[kind], exec.SyncSpin, 4)
			if err == nil {
				t.Fatalf("%v %s: permanent fault not diagnosed", kind, tune)
			}
			var diag *exec.FailureDiag
			if !errors.As(err, &diag) {
				t.Fatalf("%v %s: err = %T %v, want *exec.FailureDiag", kind, tune, err, err)
			}
		}
	}
}

// TestResilientDeterminism is the acceptance property: same plan + seed →
// identical makespan, retry counts, output, and (for permanent plans)
// identical diagnostics.
func TestResilientDeterminism(t *testing.T) {
	cp := compileFor(t, md5Det, 8)
	recov := faults.Plan{Name: "mix", Seed: 77, Recoverable: true, Specs: []faults.Spec{
		{Kind: faults.Transient, Builtin: "digest", Prob: 0.05},
		{Kind: faults.Latency, Builtin: "fread", Prob: 0.1, Delay: 900},
		{Kind: faults.QueueStall, Prob: 0.1, Delay: 1200},
	}}
	runOnce := func() string {
		cfg, w := cp.faulted(recov, exec.DefaultRecovery())
		res, err := exec.Run(cfg, cp.la, cp.sched[transform.PSDSWP], exec.SyncSpin, 4)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return fmt.Sprintf("t=%d cr=%d ir=%d out=%s",
			res.VirtualTime, res.CallRetries, res.IterRetries, strings.Join(w.prints, ","))
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Errorf("recoverable run not deterministic:\n%s\n%s", a, b)
	}

	perm := faults.Plan{Name: "perm", Seed: 13, Specs: []faults.Spec{
		{Kind: faults.Permanent, Builtin: "*", Prob: 0.01},
	}}
	failOnce := func() string {
		cfg, _ := cp.faulted(perm, exec.DefaultRecovery())
		_, err := exec.Run(cfg, cp.la, cp.sched[transform.PSDSWP], exec.SyncSpin, 4)
		if err == nil {
			t.Fatal("permanent plan did not fail")
		}
		return err.Error()
	}
	if a, b := failOnce(), failOnce(); a != b {
		t.Errorf("diagnostics not deterministic:\n%s\n%s", a, b)
	}
}
