package exec

import (
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/transform"
	"repro/internal/vm/interp"
)

// AutoOptions configures the profile-guided auto-scheduler. Before the
// measured run, Run executes one short calibration slice (the loop
// truncated to SliceIters iterations) per candidate tuning, each on a
// fresh substrate, and adopts the tuning of the fastest slice. The
// calibration is itself simulated in virtual time, so the pick — like
// everything else in the evaluation — is deterministic.
type AutoOptions struct {
	// Fresh returns a fresh builtin table for each calibration slice so
	// slices never perturb the substrate state of the measured run.
	// Required: without isolation the calibration would double-apply
	// side effects.
	Fresh func() map[string]interp.BuiltinFn

	// SliceIters caps each calibration slice (default 48 iterations).
	SliceIters int64

	// Candidates overrides the calibrated tuning set; nil uses
	// profile.TuneCandidates for the schedule kind.
	Candidates []transform.Tuning

	// Parallel, when set, runs the calibration slices on a host worker
	// pool: it must call fn(i) exactly once for every i in [0, n) and
	// return after all calls finish. Each slice runs on its own fresh
	// substrate and the winner is still selected in candidate order, so
	// the pick is identical however the slices are scheduled (the bench
	// harness wires its -hostpar pool here).
	Parallel func(n int, fn func(i int) error) error
}

func (a *AutoOptions) sliceIters() int64 {
	if a.SliceIters > 0 {
		return a.SliceIters
	}
	return 48
}

// autoTune runs the calibration slices and returns the winning tuning.
// The zero tuning is always among the candidates and wins ties, so a
// workload the fixed policies already serve best keeps them. Candidates
// whose slice fails (e.g. a schedule the workload cannot run) are
// skipped.
func autoTune(cfg Config, la *pipeline.LoopAnalysis, sched *transform.Schedule, mode SyncMode, threads int) transform.Tuning {
	a := cfg.Auto
	cands := a.Candidates
	if cands == nil {
		cands = profile.TuneCandidates(sched.Kind, threads)
	}
	times := make([]int64, len(cands))
	slice := func(i int) error {
		c := cfg
		c.Auto = nil
		c.Tune = cands[i]
		c.MaxIters = a.sliceIters()
		if a.Fresh != nil {
			c.Builtins = a.Fresh()
		}
		times[i] = -1
		r, err := Run(c, la, sched, mode, threads)
		if err != nil {
			return nil // a failing slice just removes its candidate
		}
		times[i] = r.VirtualTime
		return nil
	}
	if a.Parallel != nil {
		_ = a.Parallel(len(cands), slice)
	} else {
		for i := range cands {
			_ = slice(i)
		}
	}
	best := transform.Tuning{}
	bestTime := int64(-1)
	for i, cand := range cands {
		if times[i] < 0 {
			continue
		}
		if bestTime < 0 || times[i] < bestTime {
			bestTime = times[i]
			best = cand
		}
	}
	return best
}
