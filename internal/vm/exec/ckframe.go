package exec

import "repro/internal/vm/value"

// Compressed checkpoint frames.
//
// A DOALL worker's frame diverges only slowly from the frame the loop was
// entered with: most locals are loop-invariant live-ins, most registers are
// dead between passes, and the shared-source tags change only when a shared
// slot is re-read. A checkpoint therefore stores a *delta* against the
// immutable loop-entry reference frame (machine.ckRef): slots equal to the
// reference are run-length encoded away and only diverging slots are kept
// as literals. The encoded size in words prices the snapshot —
// Cost.Checkpoint + words×Cost.CheckpointWord to take one,
// Cost.Restore + words×Cost.RestoreWord to rebuild a frame from one — so
// the recovery tax that steals and crash salvage pay scales with how much
// state actually moved, not with frame width.
//
// The encoding is a single value stream (locals then regs) plus the
// shared-source tag stream, each as a list of (offset, length) runs of
// diverging slots with the literal values stored densely alongside. A run
// header counts 2 words, each literal value or tag 1 word, plus 1 word of
// framing.

// ckRun is one run of consecutive diverging slots in a stream.
type ckRun struct {
	off int // first diverging slot (offset into the combined stream)
	n   int // run length
}

// ckFrame is a delta/run-length-compressed frame snapshot taken against a
// reference frame. It is immutable once encoded; decode() materializes a
// fresh frame, so one ckFrame can seed several restores (replacement
// worker, thief, salvage shares).
type ckFrame struct {
	ref   *frame
	vruns []ckRun
	vals  []value.Value // literals for vruns, densely packed
	sruns []ckRun
	srcs  []int // literals for sruns, densely packed
	words int   // encoded size in cost words
}

// encodeFrame compresses fr as a delta against ref. The frames must have
// identical shapes (same function, same loop), which holds for every
// checkpoint of a loop: workers clone the loop-entry frame.
func encodeFrame(fr, ref *frame) *ckFrame {
	c := &ckFrame{ref: ref}
	nl := len(fr.locals)
	diff := func(i int) bool {
		if i < nl {
			return fr.locals[i] != ref.locals[i]
		}
		return fr.regs[i-nl] != ref.regs[i-nl]
	}
	at := func(i int) value.Value {
		if i < nl {
			return fr.locals[i]
		}
		return fr.regs[i-nl]
	}
	total := nl + len(fr.regs)
	for i := 0; i < total; {
		if !diff(i) {
			i++
			continue
		}
		run := ckRun{off: i}
		for i < total && diff(i) {
			c.vals = append(c.vals, at(i))
			i++
			run.n++
		}
		c.vruns = append(c.vruns, run)
	}
	for i := 0; i < len(fr.sharedSrc); {
		if fr.sharedSrc[i] == ref.sharedSrc[i] {
			i++
			continue
		}
		run := ckRun{off: i}
		for i < len(fr.sharedSrc) && fr.sharedSrc[i] != ref.sharedSrc[i] {
			c.srcs = append(c.srcs, fr.sharedSrc[i])
			i++
			run.n++
		}
		c.sruns = append(c.sruns, run)
	}
	c.words = 1 + 2*len(c.vruns) + len(c.vals) + 2*len(c.sruns) + len(c.srcs)
	return c
}

// decode materializes a fresh frame from the compressed delta.
func (c *ckFrame) decode() *frame {
	fr := snapshotFrame(c.ref)
	nl := len(fr.locals)
	vi := 0
	for _, r := range c.vruns {
		for k := 0; k < r.n; k++ {
			i := r.off + k
			if i < nl {
				fr.locals[i] = c.vals[vi]
			} else {
				fr.regs[i-nl] = c.vals[vi]
			}
			vi++
		}
	}
	si := 0
	for _, r := range c.sruns {
		for k := 0; k < r.n; k++ {
			fr.sharedSrc[r.off+k] = c.srcs[si]
			si++
		}
	}
	return fr
}

// checkpointCost prices taking a snapshot of the given encoded size.
func (m *machine) checkpointCost(c *ckFrame) int64 {
	return m.cfg.Cost.Checkpoint + int64(c.words)*m.cfg.Cost.CheckpointWord
}

// restoreCost prices rebuilding a frame from the given snapshot.
func (m *machine) restoreCost(c *ckFrame) int64 {
	return m.cfg.Cost.Restore + int64(c.words)*m.cfg.Cost.RestoreWord
}
