package exec

import "repro/internal/transform"

// iterSched assigns DOALL iterations to workers under a tuning. Every
// worker privately executes the loop-control machinery for all
// iterations (the privatized-induction-variable codegen), so ownership
// must be a total function of the iteration index that partitions the
// iteration space — the single place iteration assignment lives for
// every schedule kind.
//
//   - static: the paper's round-robin, iter % threads.
//   - chunked(k): contiguous blocks of k iterations dealt round-robin,
//     (iter/k) % threads — same per-thread share, better locality and
//     (with k matched to the workload) less lock ping-pong.
//   - guided: workers claim shrinking chunks from a shared dispenser the
//     first time they reach an unclaimed chunk. A worker that finishes
//     its claims early claims (steals) the next unclaimed chunk instead
//     of idling, so imbalanced iterations even out. The simulator
//     serializes claim events in virtual-time order, so assignment stays
//     deterministic.
type iterSched struct {
	tune    transform.Tuning
	threads int

	// guided state: chunk boundaries (starts[i] is the first iteration of
	// chunk i; the chunk ends where the next begins) and the claim board.
	starts []int64
	sizes  []int64
	claims []int
	// grabCost is the virtual cost of one claim-board fetch-and-add.
	grabCost int64
}

// guidedUnclaimed marks a dispensed-but-unclaimed guided chunk.
const guidedUnclaimed = -1

func newIterSched(tune transform.Tuning, threads int, grabCost int64) *iterSched {
	s := &iterSched{tune: tune, threads: threads, grabCost: grabCost}
	if tune.Sched == transform.SchedGuided {
		c0 := int64(tune.Chunk)
		if c0 <= 0 {
			c0 = int64(4 * threads)
		}
		s.starts = []int64{0}
		s.sizes = []int64{c0}
		s.claims = []int{guidedUnclaimed}
	}
	return s
}

// owns reports whether worker w executes iteration iter. yield is
// invoked with the virtual cost of any shared claim-board operation the
// decision required and must advance the worker's clock *through the
// scheduler* (des.Thread.Sleep), so contending claims resolve in
// virtual-time order rather than host execution order; it may be nil for
// the pure schedules, which never touch shared state.
func (s *iterSched) owns(w int, iter int64, yield func(int64)) bool {
	switch s.tune.Sched {
	case transform.SchedStatic:
		return iter%int64(s.threads) == int64(w)
	case transform.SchedChunked:
		k := int64(s.tune.ChunkSize())
		return (iter/k)%int64(s.threads) == int64(w)
	case transform.SchedGuided:
		return s.claimGuided(w, iter, yield)
	}
	return iter%int64(s.threads) == int64(w)
}

// claimGuided resolves guided ownership of iter for worker w: the chunk
// containing iter is located (extending the dispensed sequence with
// geometrically shrinking chunks as needed), and an unclaimed chunk is
// claimed by the worker that reaches it first in virtual time — each
// contender pays one claim-board round trip (the yield) before its
// attempt, so the scheduler arbitrates concurrent attempts
// deterministically.
func (s *iterSched) claimGuided(w int, iter int64, yield func(int64)) bool {
	ci := s.chunkOf(iter)
	for s.claims[ci] == guidedUnclaimed {
		if yield != nil {
			yield(s.grabCost)
		}
		if s.claims[ci] == guidedUnclaimed {
			s.claims[ci] = w
		}
	}
	return s.claims[ci] == w
}

// chunkOf returns the index of the chunk containing iter, dispensing new
// chunks as needed. Chunk sizes halve every `threads` dispensed chunks
// (guided self-scheduling) with a floor of 1.
func (s *iterSched) chunkOf(iter int64) int {
	for {
		last := len(s.starts) - 1
		if iter < s.starts[last]+s.sizes[last] {
			// Binary search the dispensed chunks.
			lo, hi := 0, last
			for lo < hi {
				mid := (lo + hi + 1) / 2
				if s.starts[mid] <= iter {
					lo = mid
				} else {
					hi = mid - 1
				}
			}
			return lo
		}
		next := s.starts[last] + s.sizes[last]
		size := s.sizes[last]
		if (last+1)%s.threads == 0 && size > 1 {
			size /= 2
		}
		s.starts = append(s.starts, next)
		s.sizes = append(s.sizes, size)
		s.claims = append(s.claims, guidedUnclaimed)
	}
}
