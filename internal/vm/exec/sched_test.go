package exec

import (
	"testing"

	"repro/internal/transform"
)

// ownersOf queries every worker for every iteration in [0, n) in a fixed
// deterministic order and returns the owner of each iteration, failing if
// any iteration is owned by zero or more than one worker. This is the
// partition property every schedule kind must satisfy: each worker runs
// the full privatized control loop, so ownership must be a total function
// that partitions the iteration space.
func ownersOf(t *testing.T, s *iterSched, threads int, n int64) []int {
	t.Helper()
	owners := make([]int, n)
	for iter := int64(0); iter < n; iter++ {
		owner := -1
		for w := 0; w < threads; w++ {
			if s.owns(w, iter, func(int64) {}) {
				if owner != -1 {
					t.Fatalf("iter %d owned by both worker %d and %d", iter, owner, w)
				}
				owner = w
			}
		}
		if owner == -1 {
			t.Fatalf("iter %d owned by no worker", iter)
		}
		owners[iter] = owner
	}
	return owners
}

func TestIterSchedStaticPartition(t *testing.T) {
	for _, threads := range []int{1, 2, 3, 8} {
		s := newIterSched(transform.Tuning{}, threads, 25)
		owners := ownersOf(t, s, threads, 97)
		for iter, w := range owners {
			if want := iter % threads; w != want {
				t.Fatalf("static %d threads: iter %d owner %d, want %d", threads, iter, w, want)
			}
		}
	}
}

func TestIterSchedChunkedPartition(t *testing.T) {
	for _, threads := range []int{1, 2, 4} {
		for _, k := range []int{1, 3, 8} {
			tune := transform.Tuning{Sched: transform.SchedChunked, Chunk: k}
			s := newIterSched(tune, threads, 25)
			owners := ownersOf(t, s, threads, 100)
			for iter, w := range owners {
				if want := (iter / k) % threads; w != want {
					t.Fatalf("chunked(%d) %d threads: iter %d owner %d, want %d", k, threads, iter, w, want)
				}
			}
		}
	}
}

// Chunked with k=1 must coincide with the static schedule: the paper's
// round-robin is the degenerate chunking.
func TestIterSchedChunkOneIsStatic(t *testing.T) {
	threads := 4
	static := newIterSched(transform.Tuning{}, threads, 25)
	chunked := newIterSched(transform.Tuning{Sched: transform.SchedChunked, Chunk: 1}, threads, 25)
	a := ownersOf(t, static, threads, 64)
	b := ownersOf(t, chunked, threads, 64)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("iter %d: static owner %d != chunked(1) owner %d", i, a[i], b[i])
		}
	}
}

func TestIterSchedGuidedPartition(t *testing.T) {
	for _, threads := range []int{1, 2, 4} {
		s := newIterSched(transform.Tuning{Sched: transform.SchedGuided}, threads, 25)
		// The partition property must hold regardless of which worker
		// reaches an unclaimed chunk first; ownersOf probes workers in
		// order, which makes worker 0 claim everything — still a valid
		// (degenerate) partition.
		ownersOf(t, s, threads, 200)
	}
}

// Guided chunk sizes start at 4*threads (or Tune.Chunk) and halve every
// `threads` dispensed chunks with a floor of 1 — the classic guided
// self-scheduling decay.
func TestIterSchedGuidedChunkDecay(t *testing.T) {
	threads := 4
	s := newIterSched(transform.Tuning{Sched: transform.SchedGuided}, threads, 25)
	s.chunkOf(500) // force dispensing well past the decay floor
	if s.sizes[0] != int64(4*threads) {
		t.Fatalf("first chunk size %d, want %d", s.sizes[0], 4*threads)
	}
	for i := 1; i < len(s.sizes); i++ {
		prev, cur := s.sizes[i-1], s.sizes[i]
		if i%threads == 0 && prev > 1 {
			if cur != prev/2 {
				t.Fatalf("chunk %d size %d, want %d (halved from %d)", i, cur, prev/2, prev)
			}
		} else if cur != prev {
			t.Fatalf("chunk %d size %d changed mid-generation from %d", i, cur, prev)
		}
		if cur < 1 {
			t.Fatalf("chunk %d size %d below floor", i, cur)
		}
	}
	last := len(s.sizes) - 1
	if s.sizes[last] != 1 {
		t.Fatalf("decayed size %d, want floor 1", s.sizes[last])
	}
	// Chunks must tile the iteration space contiguously.
	for i := 1; i < len(s.starts); i++ {
		if s.starts[i] != s.starts[i-1]+s.sizes[i-1] {
			t.Fatalf("chunk %d starts at %d, want %d", i, s.starts[i], s.starts[i-1]+s.sizes[i-1])
		}
	}
}

// A custom Chunk overrides the guided first-chunk size.
func TestIterSchedGuidedCustomFirstChunk(t *testing.T) {
	s := newIterSched(transform.Tuning{Sched: transform.SchedGuided, Chunk: 6}, 2, 25)
	s.chunkOf(0)
	if s.sizes[0] != 6 {
		t.Fatalf("first chunk size %d, want 6", s.sizes[0])
	}
}

// Every guided claim pays exactly one claim-board round trip: the yield
// must be invoked once (with the grab cost) per claim attempt, and not at
// all when the chunk is already resolved.
func TestIterSchedGuidedYieldsPerClaim(t *testing.T) {
	s := newIterSched(transform.Tuning{Sched: transform.SchedGuided}, 2, 25)
	var yields []int64
	yield := func(c int64) { yields = append(yields, c) }
	if !s.owns(0, 0, yield) {
		t.Fatal("worker 0 should claim chunk 0")
	}
	if len(yields) != 1 || yields[0] != 25 {
		t.Fatalf("claim yields %v, want [25]", yields)
	}
	yields = nil
	// Re-querying a resolved chunk touches no shared state.
	if !s.owns(0, 1, yield) {
		t.Fatal("worker 0 owns iter 1 of its claimed chunk")
	}
	if s.owns(1, 1, yield) {
		t.Fatal("worker 1 must not own worker 0's chunk")
	}
	if len(yields) != 0 {
		t.Fatalf("resolved-chunk queries yielded %v, want none", yields)
	}
}

// Guided assignment is a pure function of the claim order: replaying the
// same sequence of (worker, iter) queries reproduces the same ownership.
func TestIterSchedGuidedDeterministic(t *testing.T) {
	run := func() []int {
		s := newIterSched(transform.Tuning{Sched: transform.SchedGuided}, 3, 25)
		return ownersOf(t, s, 3, 150)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("iter %d: owner %d vs %d across identical replays", i, a[i], b[i])
		}
	}
}
