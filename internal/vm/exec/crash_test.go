package exec_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/transform"
	"repro/internal/vm/exec"
)

// crashed builds a faulted config with the crash layer armed whenever the
// plan contains a Crash spec (mirroring how the bench harness wires it).
func (cp *compiled) crashed(plan faults.Plan, rec *exec.Recovery) (exec.Config, *world) {
	w := &world{}
	inj := faults.NewInjector(plan)
	cfg := cp.cfg
	cfg.Builtins = inj.Wrap(w.builtins())
	cfg.Recovery = rec
	cfg.PushDelay = inj.QueueDelay
	cfg.ExtraAborts = inj.ExtraAborts
	cfg.Effectful = map[string]bool{"fopen_i": true, "fread": true, "fclose": true, "print_int": true}
	if plan.HasCrash() {
		cfg.CrashCheck = inj.CrashNow
	}
	return cfg, w
}

func crashPlan(thread string, after int, perm bool) faults.Plan {
	name := "crash-transient"
	if perm {
		name = "crash-perm"
	}
	return faults.Plan{Name: name, Seed: 31, Recoverable: true, Specs: []faults.Spec{
		{Kind: faults.Crash, Thread: thread, After: after, Permanent: perm},
	}}
}

// TestDOALLTransientCrashRecovers: killing one DOALL worker mid-loop must be
// absorbed by a checkpoint restart — same output multiset and final total as
// the sequential run, restart recorded, under every sync mode.
func TestDOALLTransientCrashRecovers(t *testing.T) {
	cp := compileFor(t, md5Full, 8)
	_, seqOut := cp.seqRun(t)
	plan := crashPlan("doall.1", 3, false)
	for _, mode := range allSyncModes {
		cfg, w := cp.crashed(plan, exec.DefaultRecovery())
		res, err := exec.Run(cfg, cp.la, cp.sched[transform.DOALL], mode, 4)
		if err != nil {
			t.Fatalf("%v: crash not recovered: %v", mode, err)
		}
		if res.Restarts != 1 {
			t.Errorf("%v: Restarts = %d, want 1", mode, res.Restarts)
		}
		if !res.Recovered {
			t.Errorf("%v: Recovered not set", mode)
		}
		if len(res.RestartHistory) != 1 {
			t.Fatalf("%v: RestartHistory = %v, want 1 entry", mode, res.RestartHistory)
		}
		r := res.RestartHistory[0]
		if r.Thread != "doall.1" || r.Permanent || r.VTime <= 0 || r.Replayed != r.CkptAge {
			t.Errorf("%v: bad restart record %+v", mode, r)
		}
		if !strings.Contains(r.String(), "restarted") {
			t.Errorf("%v: record rendering %q lacks 'restarted'", mode, r.String())
		}
		if w.prints[len(w.prints)-1] != seqOut[len(seqOut)-1] {
			t.Errorf("%v: final total differs after restart", mode)
		}
		a, b := sortedCopy(w.prints), sortedCopy(seqOut)
		if strings.Join(a, ",") != strings.Join(b, ",") {
			t.Errorf("%v: output multiset differs after restart:\npar: %v\nseq: %v", mode, a, b)
		}
	}
}

// TestDOALLPermanentCrashDegrades: a permanently dead worker's remaining
// iterations are re-partitioned across the survivors; the run completes
// degraded with sequential-equivalent output.
func TestDOALLPermanentCrashDegrades(t *testing.T) {
	cp := compileFor(t, md5Full, 8)
	_, seqOut := cp.seqRun(t)
	plan := crashPlan("doall.1", 3, true)
	for _, mode := range allSyncModes {
		cfg, w := cp.crashed(plan, exec.DefaultRecovery())
		res, err := exec.Run(cfg, cp.la, cp.sched[transform.DOALL], mode, 4)
		if err != nil {
			t.Fatalf("%v: degraded run failed: %v", mode, err)
		}
		if res.Repartitioned != 1 || !res.Degraded {
			t.Errorf("%v: Repartitioned=%d Degraded=%v, want 1/true", mode, res.Repartitioned, res.Degraded)
		}
		if len(res.RestartHistory) != 1 || !res.RestartHistory[0].Permanent {
			t.Errorf("%v: RestartHistory = %v, want one permanent record", mode, res.RestartHistory)
		}
		if w.prints[len(w.prints)-1] != seqOut[len(seqOut)-1] {
			t.Errorf("%v: final total differs after re-partition", mode)
		}
		a, b := sortedCopy(w.prints), sortedCopy(seqOut)
		if strings.Join(a, ",") != strings.Join(b, ",") {
			t.Errorf("%v: output multiset differs after re-partition:\npar: %v\nseq: %v", mode, a, b)
		}
	}
}

// TestDOALLRepeatedCrashExhaustsBudget: a crash window that keeps killing
// the replacements must escalate to permanent once MaxRestarts is spent,
// then recover through re-partitioning.
func TestDOALLRepeatedCrashExhaustsBudget(t *testing.T) {
	cp := compileFor(t, md5Full, 8)
	_, seqOut := cp.seqRun(t)
	plan := faults.Plan{Name: "crash-repeat", Seed: 7, Recoverable: true, Specs: []faults.Spec{
		{Kind: faults.Crash, Thread: "doall.1", After: 2, Count: 8},
	}}
	cfg, w := cp.crashed(plan, &exec.Recovery{MaxRestarts: 2})
	res, err := exec.Run(cfg, cp.la, cp.sched[transform.DOALL], exec.SyncSpin, 4)
	if err != nil {
		t.Fatalf("escalated crash not absorbed: %v", err)
	}
	if res.Restarts != 2 {
		t.Errorf("Restarts = %d, want 2 (budget)", res.Restarts)
	}
	if res.Repartitioned != 1 || !res.Degraded {
		t.Errorf("Repartitioned=%d Degraded=%v, want 1/true after budget exhaustion", res.Repartitioned, res.Degraded)
	}
	last := res.RestartHistory[len(res.RestartHistory)-1]
	if !last.Permanent {
		t.Errorf("last restart record %+v not permanent", last)
	}
	a, b := sortedCopy(w.prints), sortedCopy(seqOut)
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Errorf("output multiset differs after escalation:\npar: %v\nseq: %v", a, b)
	}
}

// TestDOALLCrashUnderTunedSchedules: crash recovery must compose with the
// chunked/guided iteration schedules and with privatized shadows — and each
// privatized shadow must be merged exactly once despite the restart.
func TestDOALLCrashUnderTunedSchedules(t *testing.T) {
	cp := compileFor(t, md5Full, 8)
	_, seqOut := cp.seqRun(t)
	for _, tc := range []struct {
		tune transform.Tuning
		perm bool
	}{
		{transform.Tuning{Sched: transform.SchedChunked, Chunk: 4}, false},
		{transform.Tuning{Sched: transform.SchedChunked, Chunk: 4, Privatize: true}, false},
		{transform.Tuning{Sched: transform.SchedGuided, Privatize: true}, false},
		{transform.Tuning{Sched: transform.SchedChunked, Chunk: 4, Privatize: true}, true},
		{transform.Tuning{Sched: transform.SchedGuided, Privatize: true}, true},
	} {
		plan := crashPlan("doall.1", 2, tc.perm)
		cfg, w := cp.crashed(plan, exec.DefaultRecovery())
		cfg.Tune = tc.tune
		res, err := exec.Run(cfg, cp.la, cp.sched[transform.DOALL], exec.SyncMutex, 4)
		if err != nil {
			t.Fatalf("%s perm=%v: crash not absorbed: %v", tc.tune, tc.perm, err)
		}
		if tc.perm && !res.Degraded {
			t.Errorf("%s: permanent crash did not degrade", tc.tune)
		}
		if !tc.perm && res.Restarts != 1 {
			t.Errorf("%s: Restarts = %d, want 1", tc.tune, res.Restarts)
		}
		if tc.tune.Privatize && !tc.perm {
			// One bulk merge per worker role with a non-empty shadow: the
			// dead incarnation never merges, its replacement merges once.
			// Under guided scheduling a late restart can find every chunk
			// already claimed, leaving its shadow empty (no merge), so the
			// exact count applies to the static chunked split only.
			if tc.tune.Sched == transform.SchedChunked && res.PrivMerges != 4 {
				t.Errorf("%s: PrivMerges = %d, want 4 (exactly-once merge)", tc.tune, res.PrivMerges)
			}
			if res.PrivMerges < 1 || res.PrivMerges > 4 {
				t.Errorf("%s: PrivMerges = %d outside [1,4]", tc.tune, res.PrivMerges)
			}
		}
		if w.prints[len(w.prints)-1] != seqOut[len(seqOut)-1] {
			t.Errorf("%s perm=%v: final total differs (double or lost merge?)", tc.tune, tc.perm)
		}
		a, b := sortedCopy(w.prints), sortedCopy(seqOut)
		if strings.Join(a, ",") != strings.Join(b, ",") {
			t.Errorf("%s perm=%v: output multiset differs:\npar: %v\nseq: %v", tc.tune, tc.perm, a, b)
		}
	}
}

// TestStageTransientCrashRecovers: killing a pipeline stage worker must be
// absorbed by a checkpoint restart that replays the in-flight tokens; the
// in-order output (md5Det's deterministic print stage) must match the
// sequential run exactly.
func TestStageTransientCrashRecovers(t *testing.T) {
	cp := compileFor(t, md5Det, 8)
	_, seqOut := cp.seqRun(t)
	for _, kind := range []transform.Kind{transform.DSWP, transform.PSDSWP} {
		if cp.sched[kind] == nil {
			continue
		}
		plan := crashPlan("stage1.0", 3, false)
		cfg, w := cp.crashed(plan, exec.DefaultRecovery())
		res, err := exec.Run(cfg, cp.la, cp.sched[kind], exec.SyncSpin, 4)
		if err != nil {
			t.Fatalf("%v: stage crash not recovered: %v", kind, err)
		}
		if res.Restarts != 1 || !res.Recovered {
			t.Errorf("%v: Restarts=%d Recovered=%v, want 1/true", kind, res.Restarts, res.Recovered)
		}
		if strings.Join(w.prints, ",") != strings.Join(seqOut, ",") {
			t.Errorf("%v: in-order output differs after stage restart:\npar: %v\nseq: %v", kind, w.prints, seqOut)
		}
	}
}

// TestStageCrashWithBatchedQueues: a crash landing while batched queues hold
// in-flight partial batches must restore the batch residue on both sides —
// tokens in the dead worker's input buffer are replayed, tokens in its
// unflushed output buffer are regenerated exactly once.
func TestStageCrashWithBatchedQueues(t *testing.T) {
	cp := compileFor(t, md5Det, 8)
	_, seqOut := cp.seqRun(t)
	for _, kind := range []transform.Kind{transform.DSWP, transform.PSDSWP} {
		if cp.sched[kind] == nil {
			continue
		}
		for _, after := range []int{2, 5, 9} {
			plan := crashPlan("stage1.0", after, false)
			cfg, w := cp.crashed(plan, exec.DefaultRecovery())
			cfg.Tune = transform.Tuning{Batch: 8}
			res, err := exec.Run(cfg, cp.la, cp.sched[kind], exec.SyncSpin, 4)
			if err != nil {
				t.Fatalf("%v batch(8) after=%d: crash not recovered: %v", kind, after, err)
			}
			if res.Restarts == 0 {
				t.Errorf("%v batch(8) after=%d: no restart recorded", kind, after)
			}
			if strings.Join(w.prints, ",") != strings.Join(seqOut, ",") {
				t.Errorf("%v batch(8) after=%d: output differs:\npar: %v\nseq: %v", kind, after, w.prints, seqOut)
			}
		}
	}
}

// TestStagePermanentCrashDegrades: a pipeline cannot re-partition around a
// dead stage, so a permanent stage crash must diagnose non-transient (with
// the restart history attached) and RunResilient must collapse to the
// Accept-verified sequential fallback.
func TestStagePermanentCrashDegrades(t *testing.T) {
	cp := compileFor(t, md5Det, 8)
	_, seqOut := cp.seqRun(t)
	for _, kind := range []transform.Kind{transform.DSWP, transform.PSDSWP} {
		if cp.sched[kind] == nil {
			continue
		}
		plan := crashPlan("stage1.0", 3, true)

		// Direct Run: orderly shutdown with a non-transient diagnosis.
		cfg, _ := cp.crashed(plan, exec.DefaultRecovery())
		_, err := exec.Run(cfg, cp.la, cp.sched[kind], exec.SyncSpin, 4)
		var diag *exec.FailureDiag
		if !errors.As(err, &diag) {
			t.Fatalf("%v: err = %v, want *exec.FailureDiag", kind, err)
		}
		var ce *exec.CrashError
		if !errors.As(err, &ce) || ce.IsTransient() {
			t.Fatalf("%v: diagnosis does not wrap a permanent CrashError: %v", kind, err)
		}
		if len(diag.Restarts) != 1 || !diag.Restarts[0].Permanent || diag.Restarts[0].Thread != "stage1.0" {
			t.Errorf("%v: diagnosis restart history = %v", kind, diag.Restarts)
		}
		if !strings.Contains(diag.Error(), "restart history") {
			t.Errorf("%v: rendered diagnosis lacks restart history: %v", kind, diag)
		}

		// RunResilient: degraded sequential fallback, Accept-verified.
		var lastW *world
		fresh := func() exec.Config {
			c, w := cp.crashed(plan, exec.DefaultRecovery())
			lastW = w
			return c
		}
		accept := func(parallel bool) error {
			if strings.Join(lastW.prints, ",") != strings.Join(seqOut, ",") {
				return fmt.Errorf("output differs from sequential reference")
			}
			return nil
		}
		res, rerr := exec.RunResilient(exec.ResilientOptions{
			LA: cp.la, Sched: cp.sched[kind], Mode: exec.SyncSpin, Threads: 4,
			Fresh: fresh, Accept: accept,
		})
		if rerr != nil {
			t.Fatalf("%v: resilient degradation failed: %v", kind, rerr)
		}
		if !res.FellBack || !res.Degraded || !res.Recovered {
			t.Errorf("%v: FellBack=%v Degraded=%v Recovered=%v, want all true", kind, res.FellBack, res.Degraded, res.Recovered)
		}
		if res.Attempts != 2 {
			t.Errorf("%v: Attempts = %d, want 2 (permanent crash skips straight to fallback)", kind, res.Attempts)
		}
	}
}

// TestCrashDeterminism is the acceptance property: the same seed and plan
// must reproduce bit-identical makespans, restart histories, and outputs —
// including the recovery machinery's own virtual-time charges.
func TestCrashDeterminism(t *testing.T) {
	type cell struct {
		src   string
		kind  transform.Kind
		plan  faults.Plan
		tune  transform.Tuning
		multi bool // compare multiset instead of ordered output
	}
	cells := []cell{
		{md5Full, transform.DOALL, crashPlan("doall.1", 3, false), transform.Tuning{}, true},
		{md5Full, transform.DOALL, crashPlan("doall.2", 4, true), transform.Tuning{Sched: transform.SchedChunked, Chunk: 4, Privatize: true}, true},
		{md5Det, transform.PSDSWP, crashPlan("stage1.0", 5, false), transform.Tuning{Batch: 8}, false},
		{md5Det, transform.DSWP, crashPlan("stage1.0", 2, true), transform.Tuning{}, false},
	}
	for i, c := range cells {
		cp := compileFor(t, c.src, 8)
		if cp.sched[c.kind] == nil {
			continue
		}
		runOnce := func() string {
			cfg, w := cp.crashed(c.plan, exec.DefaultRecovery())
			cfg.Tune = c.tune
			res, err := exec.Run(cfg, cp.la, cp.sched[c.kind], exec.SyncSpin, 4)
			if err != nil {
				hist := ""
				var diag *exec.FailureDiag
				if errors.As(err, &diag) {
					hist = fmt.Sprintf("%v", diag.Restarts)
				}
				return fmt.Sprintf("err=%v hist=%s", err, hist)
			}
			out := strings.Join(w.prints, ",")
			if c.multi {
				out = strings.Join(sortedCopy(w.prints), ",")
			}
			return fmt.Sprintf("t=%d restarts=%d repart=%d hist=%v out=%s",
				res.VirtualTime, res.Restarts, res.Repartitioned, res.RestartHistory, out)
		}
		if a, b := runOnce(), runOnce(); a != b {
			t.Errorf("cell %d (%v): crash run not deterministic:\n%s\n%s", i, c.kind, a, b)
		}
	}
}

// TestCrashCheckpointTimingGated: with no crash plan armed the checkpoint
// layer must stay cold — identical virtual time to a run without the
// recovery config at all.
func TestCrashCheckpointTimingGated(t *testing.T) {
	cp := compileFor(t, md5Full, 8)
	base, _ := cp.parRun(t, transform.DOALL, exec.SyncSpin, 4)
	cfg, _ := cp.crashed(faults.Plan{Name: "clean", Seed: 1}, exec.DefaultRecovery())
	res, err := exec.Run(cfg, cp.la, cp.sched[transform.DOALL], exec.SyncSpin, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.VirtualTime != base {
		t.Errorf("crash-free run with recovery config drifted: %d != %d", res.VirtualTime, base)
	}

	// And an armed crash plan must charge recovery cost: the recovered run
	// is strictly slower than the crash-free one.
	ccfg, _ := cp.crashed(crashPlan("doall.1", 3, false), exec.DefaultRecovery())
	cres, err := exec.Run(ccfg, cp.la, cp.sched[transform.DOALL], exec.SyncSpin, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cres.VirtualTime <= base {
		t.Errorf("recovered run not slower than crash-free: %d <= %d", cres.VirtualTime, base)
	}
}

// TestCrashLegacyModeFatal: without a Recovery policy a crash is fatal — the
// run aborts with the CrashError itself (no supervisor, no restart).
func TestCrashLegacyModeFatal(t *testing.T) {
	cp := compileFor(t, md5Full, 8)
	cfg, _ := cp.crashed(crashPlan("doall.1", 3, false), nil)
	_, err := exec.Run(cfg, cp.la, cp.sched[transform.DOALL], exec.SyncSpin, 4)
	var ce *exec.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *exec.CrashError", err)
	}
	if ce.Thread != "doall.1" {
		t.Errorf("CrashError names %q, want doall.1", ce.Thread)
	}
}

// TestCrashRosterNamesRealRoles: CrashRoster must list exactly the worker
// roles the executor spawns, and Plan.Validate must reject plans that target
// anything else.
func TestCrashRosterNamesRealRoles(t *testing.T) {
	cp := compileFor(t, md5Full, 8)
	roster := exec.CrashRoster(cp.sched[transform.DOALL], 4)
	want := []string{"doall.0", "doall.1", "doall.2", "doall.3"}
	if strings.Join(roster, ",") != strings.Join(want, ",") {
		t.Errorf("DOALL roster = %v, want %v", roster, want)
	}
	ok := crashPlan("doall.3", 2, false)
	if err := ok.Validate(roster); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	bad := crashPlan("doall.9", 2, false)
	if err := bad.Validate(roster); err == nil {
		t.Error("plan targeting nonexistent doall.9 not rejected")
	}

	cpd := compileFor(t, md5Det, 8)
	for _, kind := range []transform.Kind{transform.DSWP, transform.PSDSWP} {
		if cpd.sched[kind] == nil {
			continue
		}
		roster := exec.CrashRoster(cpd.sched[kind], 4)
		if !rosterContains(roster, "stage1.0") {
			t.Errorf("%v roster %v lacks stage1.0", kind, roster)
		}
		if rosterContains(roster, "stage0.0") {
			t.Errorf("%v roster %v lists the dispatcher", kind, roster)
		}
		sp := crashPlan("stage1.0", 2, false)
		if err := sp.Validate(roster); err != nil {
			t.Errorf("%v: valid plan rejected: %v", kind, err)
		}
	}
	if roster := exec.CrashRoster(nil, 4); roster != nil {
		t.Errorf("sequential roster = %v, want nil", roster)
	}
}

func rosterContains(roster []string, name string) bool {
	for _, r := range roster {
		if r == name {
			return true
		}
	}
	return false
}
