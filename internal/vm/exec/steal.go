package exec

import "repro/internal/vm/des"

// Deterministic work stealing for DOALL loops.
//
// A worker that finishes its sweep does not retire immediately: it asks the
// most-behind live peer for half of that peer's un-started iteration range.
// The exchange runs over a shared steal board that is only ever read or
// written between simulator yields — the discrete-event scheduler
// serializes all threads, so board state is a pure function of the virtual
// clock and the seed, and runs with stealing enabled stay bit-for-bit
// reproducible (the same argument `sched.go` makes for guided claims).
//
// The protocol is asynchronous on the victim side and polled on the thief
// side, so a victim never blocks and a thief never waits on a queue that
// nobody will serve:
//
//   - The thief posts a request on the victim's board entry (at most one
//     outstanding request per victim) and sleep-polls its own grant slot.
//   - The victim answers at defined points only: at the top of each pass
//     (grant or deny), when its sweep ends (deny), and when it dies
//     permanently (deny). A transiently crashed victim keeps the request
//     pending; its checkpoint-restored replacement answers instead.
//   - A grant snapshots the victim's resumable state with the same
//     compressed-checkpoint machinery the crash layer uses (see ckframe.go):
//     the victim keeps [cur, split), the thief adopts [split, hi) plus the
//     frame needed to replay loop control from the victim's watermark. The
//     victim's own checkpoint is refreshed with the truncated range in the
//     same step, so a later crash can never salvage iterations the thief
//     now owns — each iteration is executed by exactly one adopter.
//
// Thieves poll between sweeps and consume no crash ticks (those fire only
// at pass tops), so a thief can never die with an outstanding request; the
// victim's answer is therefore always collected, and every worker chain
// still pushes exactly one join message at retirement.

// stealPoll is the thief's sleep quantum between polls of its grant slot.
const stealPoll = 200

// assignment is a half-open iteration-pass range [lo, hi) executed under
// the ownership identity src: the sweep runs the body only for iterations
// the iteration schedule assigns to worker src (and replays loop control
// privately for the rest, the standard DOALL codegen). hi < 0 means
// unbounded — run to the loop's control exit.
type assignment struct {
	src int
	lo  int64
	hi  int64 // exclusive; < 0 = unbounded
}

// stealGrant is the victim's answer to a steal request.
type stealGrant struct {
	denied bool
	asg    assignment // the range the thief now owns
	start  int64      // control-replay start: the victim's pass watermark
	cfr    *ckFrame   // victim frame snapshot at the steal point
}

// stealEntry is one worker's slot on the board.
type stealEntry struct {
	active  bool        // currently running a sweep (stealable unless dead)
	dead    bool        // permanently crashed; salvage owns the remainder
	asg     assignment  // current sweep's range
	cur     int64       // pass watermark, refreshed at each pass top
	reqFrom int         // worker id of the pending thief, -1 if none
	grant   *stealGrant // answer posted for THIS worker's own request

	// Pace accounting: virtual time spent in passes that ran an owned body,
	// published at each pass top. Control-only and replay passes are
	// excluded — they are orders of magnitude cheaper and would mask a
	// straggling body. avg = busy/passes is the worker's observed pace.
	passes int64
	busy   int64
}

// stealBoard is the shared per-loop steal state. All access happens between
// simulator yields, so no locking is needed and every transition is
// deterministic.
type stealBoard struct {
	entries  []stealEntry
	n        int64 // loop trip count once any sweep reaches control exit
	minSteal int64 // smallest range worth splitting, in passes
}

// newStealBoard sizes the board for one DOALL loop. minSteal is the
// smallest splittable range: two passes, the current one for the victim and
// at least one for the thief. Splits halve, so a straggler is stripped by
// successive steals down to the single pass it is executing. A minimal
// split can hand a thief a range that owns zero iterations under the
// static schedule — that wastes only the thief's idle time, while any
// larger floor strands whole iterations on a worker that runs them several
// times slower, which is the worse trade on the short loops of the suite.
func newStealBoard(threads int) *stealBoard {
	b := &stealBoard{
		entries:  make([]stealEntry, threads),
		n:        -1,
		minSteal: 2,
	}
	for w := range b.entries {
		b.entries[w] = stealEntry{
			active:  true,
			asg:     assignment{src: w, lo: 0, hi: -1},
			reqFrom: -1,
		}
	}
	return b
}

// close records the loop trip count the first time any sweep reaches the
// control exit (or the MaxIters calibration cap). Every frame agrees on it
// — loop control is privatized and deterministic — so first-write wins.
func (b *stealBoard) close(n int64) {
	if b.n < 0 {
		b.n = n
	}
}

// effHi is the effective exclusive bound of a range: its own hi, capped by
// the trip count once known. Returns -1 only while both are unknown.
func (b *stealBoard) effHi(a assignment) int64 {
	hi := a.hi
	if b.n >= 0 && (hi < 0 || hi > b.n) {
		hi = b.n
	}
	return hi
}

// remaining is the un-started span of worker w's current sweep.
func (b *stealBoard) remaining(w int) int64 {
	e := &b.entries[w]
	hi := b.effHi(e.asg)
	if hi < 0 {
		return -1
	}
	return hi - e.cur
}

// retire marks worker w's sweep finished and denies any pending request —
// a thief must always get an answer from the entry it queued on.
func (b *stealBoard) retire(w int) {
	e := &b.entries[w]
	e.active = false
	if e.reqFrom >= 0 {
		b.entries[e.reqFrom].grant = &stealGrant{denied: true}
		e.reqFrom = -1
	}
}

// markDead records a permanent death. The remaining range belongs to the
// join-time salvage path, not to thieves.
func (b *stealBoard) markDead(w int) {
	e := &b.entries[w]
	e.dead = true
	e.active = false
	if e.reqFrom >= 0 {
		b.entries[e.reqFrom].grant = &stealGrant{denied: true}
		e.reqFrom = -1
	}
}

// pickVictim chooses the most-behind stealable peer of w: live, no request
// already queued, and at least minSteal passes un-started. Ties break to
// the lowest worker id, keeping the choice a pure function of board state.
func (b *stealBoard) pickVictim(w int) int {
	best, bestRem := -1, int64(0)
	for j := range b.entries {
		e := &b.entries[j]
		if j == w || !e.active || e.dead || e.reqFrom >= 0 {
			continue
		}
		rem := b.remaining(j)
		if rem >= b.minSteal && rem > bestRem {
			best, bestRem = j, rem
		}
	}
	return best
}

// avgPass is worker w's observed owned-body pass duration, 0 while
// unmeasured. Straggler surcharges land at the pass end, before the next
// pass-top publication, so a slowed worker's average reflects its true
// pace within one pass.
func (b *stealBoard) avgPass(w int) int64 {
	e := &b.entries[w]
	if e.passes == 0 {
		return 0
	}
	return e.busy / e.passes
}

// fastestPeer is the smallest measured pace among w's live peers, 0 while
// no peer has been measured.
func (b *stealBoard) fastestPeer(w int) int64 {
	best := int64(0)
	for j := range b.entries {
		if j == w || b.entries[j].dead {
			continue
		}
		if a := b.avgPass(j); a > 0 && (best == 0 || a < best) {
			best = a
		}
	}
	return best
}

// worthWaiting reports whether any live peer still holds a range big
// enough to split — if not, an idle thief retires instead of polling a
// board that can never feed it.
func (b *stealBoard) worthWaiting(w int) bool {
	for j := range b.entries {
		e := &b.entries[j]
		if j == w || !e.active || e.dead {
			continue
		}
		if rem := b.remaining(j); rem >= b.minSteal {
			return true
		}
	}
	return false
}

// serveSteal answers the pending request on the victim's entry at a pass
// top. A grant snapshots the victim's frame (compressed against the
// loop-entry reference), splits the un-started range in proportion to the
// victim's observed pace — a victim running k times slower than the
// fastest measured peer keeps ~1/(k+1) of the remainder, equal speeds
// halve — and, when the checkpoint layer is armed, refreshes the victim's
// own checkpoint with the truncated range, reusing the frame just encoded
// so the steal point is charged once.
func (m *machine) serveSteal(th *des.Thread, st *stepper, ws *doallState, board *stealBoard) {
	e := &board.entries[ws.w]
	thief := e.reqFrom
	e.reqFrom = -1
	hi := board.effHi(ws.asg)
	if m.failed() || hi < 0 || hi-ws.iter < board.minSteal {
		board.entries[thief].grant = &stealGrant{denied: true}
		return
	}
	rem := hi - ws.iter
	keep := (rem + 1) / 2
	if va, fp := board.avgPass(ws.w), board.fastestPeer(ws.w); va > 0 && fp > 0 && va > fp {
		keep = int64(float64(rem) * float64(fp) / float64(va+fp))
	}
	if keep < 1 {
		keep = 1 // the pass in flight always stays with the victim
	}
	split := ws.iter + keep
	cfr := encodeFrame(st.fr, m.ckRef)
	th.Charge(m.checkpointCost(cfr))
	board.entries[thief].grant = &stealGrant{
		asg:   assignment{src: ws.asg.src, lo: split, hi: hi},
		start: ws.iter,
		cfr:   cfr,
	}
	ws.asg.hi = split
	e.asg = ws.asg
	if m.checkpointing() {
		ws.ck = doallCkpt{
			asg: ws.asg, iter: ws.iter, cfr: cfr,
			lastIter: ws.lastIter,
			priv:     copyPriv(st.privCommits),
			done:     ws.done,
		}
		ws.ckEff = st.effects
		ws.ckWrites = st.it.HeapWrites
	}
}

// doallSteal is the thief side: poll for work after a finished sweep.
// Returns the adopted grant, or nil when the worker should retire (no
// stealable work left, or the run failed). The loop keeps at most one
// outstanding request and never abandons one — the victim's entry is
// guaranteed to answer (pass top, sweep end, or permanent death), and the
// board only changes between yields, so a request the thief withdraws
// after a failure cannot race a concurrent grant.
func (m *machine) doallSteal(th *des.Thread, ws *doallState, board *stealBoard) *stealGrant {
	if board == nil {
		return nil
	}
	// A worker measurably slower than twice its fastest peer retires
	// instead of stealing: a range it adopted would run at the straggler's
	// pace while faster peers idle — recreating the tail the board exists
	// to cut.
	if va, fp := board.avgPass(ws.w), board.fastestPeer(ws.w); va > 0 && fp > 0 && va > 2*fp {
		return nil
	}
	e := &board.entries[ws.w]
	pending := -1
	for !m.failed() {
		if g := e.grant; g != nil {
			e.grant = nil
			pending = -1
			if !g.denied {
				return g
			}
			continue // denied: re-scan for another victim before sleeping
		}
		if pending < 0 {
			if v := board.pickVictim(ws.w); v >= 0 {
				board.entries[v].reqFrom = ws.w
				pending = v
			} else if !board.worthWaiting(ws.w) {
				return nil
			}
		}
		th.Sleep(stealPoll)
	}
	if pending >= 0 && board.entries[pending].reqFrom == ws.w {
		board.entries[pending].reqFrom = -1
	}
	e.grant = nil
	return nil
}

// doallAdopt installs a granted range on the thief: restore the victim's
// frame from the compressed snapshot (charged by encoded size), rewind the
// pass watermark to the victim's steal point for the control replay, and —
// when the checkpoint layer is armed — take a fresh checkpoint so a thief
// crash recovers the stolen range, not the thief's old one. The thief's
// privatized shadow carries over untouched: it accumulates across every
// sweep of the chain and merges exactly once at retirement.
func (m *machine) doallAdopt(th *des.Thread, st *stepper, ws *doallState, board *stealBoard, g *stealGrant) {
	th.Charge(m.restoreCost(g.cfr))
	st.fr = g.cfr.decode()
	ws.asg = g.asg
	ws.iter = g.start
	ws.lastIter = -1
	ws.lastTop = -1 // idle poll time must not pollute the pace average
	ws.ranBody = false
	m.stats.steals++
	e := &board.entries[ws.w]
	e.asg = g.asg
	e.cur = g.start
	e.active = true
	if m.checkpointing() {
		m.takeDoallCkpt(th, st, ws)
	}
}

// straggleAt consumes one straggler tick for the role and returns the
// slowdown factor of the coming pass (1 = full speed). The hook is wired
// by fault campaigns (faults.Injector.SlowNow); unwired runs stay on the
// exact legacy timeline.
func (m *machine) straggleAt(role string) float64 {
	if m.cfg.Straggle == nil {
		return 1
	}
	return m.cfg.Straggle(role)
}

// straggleCharge stretches a pass that took `elapsed` virtual time by the
// straggler factor, charging the surplus at the pass end.
func straggleCharge(th *des.Thread, factor float64, elapsed int64) {
	if factor <= 1 || elapsed <= 0 {
		return
	}
	if extra := int64((factor - 1) * float64(elapsed)); extra > 0 {
		th.Charge(extra)
	}
}
