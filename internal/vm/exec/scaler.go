package exec

import (
	"fmt"
	"math"

	"repro/internal/vm/des"
)

// ScalerConfig configures the service-mode online recalibrator: a controller
// thread that wakes every Window virtual-time units, re-estimates the
// arrival rate and per-request service cost from the last window, and walks
// the degradation ladder. Levels:
//
//	0  normal: the worker pool tracks ceil(arrival-rate × service-cost ×
//	   Headroom) active workers (online recalibration of the one-shot
//	   auto-scheduler calibration).
//	1  shed: request classes with ShedAtLevel ≤ 1 are dropped at admission.
//	2  scale-down: the pool collapses to MinWorkers — under contention the
//	   sequential-ish pool clears the backlog faster than a thrashing one.
//	3  fallback: with AllowFallback the run aborts with a non-transient
//	   OverloadError so RunServiceResilient degrades to the Accept-verified
//	   sequential service; otherwise the ladder tops out at level 2.
//
// The controller escalates after EscalateAfter consecutive bad windows
// (SLO attainment below BadAttainment while ingress pressure is at least
// BadPressure, or admission is queue-shedding) and de-escalates after
// RecoverAfter consecutive good ones. All decisions read only virtual-time
// state, so the ladder walk is bit-for-bit deterministic per seed.
type ScalerConfig struct {
	// Window is the controller period in virtual time (default 20000).
	Window int64
	// MinWorkers floors the active pool (default 1).
	MinWorkers int
	// Headroom multiplies the estimated required workers (default 1.25).
	Headroom float64
	// BadAttainment is the SLO-attainment threshold below which a window is
	// bad (default 0.5).
	BadAttainment float64
	// BadPressure is the ingress occupancy fraction at or above which a
	// window counts as pressured (default 0.75).
	BadPressure float64
	// EscalateAfter is the number of consecutive bad windows before the
	// ladder steps up (default 2); RecoverAfter the consecutive good windows
	// before it steps down (default 2).
	EscalateAfter int
	RecoverAfter  int
	// AllowFallback enables the final rung: level 3 aborts the parallel
	// attempt with a non-transient OverloadError for the sequential fallback.
	AllowFallback bool
}

func (sc *ScalerConfig) window() int64 {
	if sc.Window > 0 {
		return sc.Window
	}
	return 20000
}

func (sc *ScalerConfig) minWorkers() int {
	if sc.MinWorkers > 0 {
		return sc.MinWorkers
	}
	return 1
}

func (sc *ScalerConfig) headroom() float64 {
	if sc.Headroom > 0 {
		return sc.Headroom
	}
	return 1.25
}

func (sc *ScalerConfig) badAttainment() float64 {
	if sc.BadAttainment > 0 {
		return sc.BadAttainment
	}
	return 0.5
}

func (sc *ScalerConfig) badPressure() float64 {
	if sc.BadPressure > 0 {
		return sc.BadPressure
	}
	return 0.75
}

func (sc *ScalerConfig) escalateAfter() int {
	if sc.EscalateAfter > 0 {
		return sc.EscalateAfter
	}
	return 2
}

func (sc *ScalerConfig) recoverAfter() int {
	if sc.RecoverAfter > 0 {
		return sc.RecoverAfter
	}
	return 2
}

func (sc *ScalerConfig) maxLevel() int {
	if sc.AllowFallback {
		return 3
	}
	return 2
}

// ScaleEvent is one degradation-ladder or pool-resize decision, recorded in
// virtual time.
type ScaleEvent struct {
	VTime   int64  `json:"vtime"`
	Level   int    `json:"level"`
	Workers int    `json:"workers"`
	Reason  string `json:"reason"`
}

// OverloadError is the non-transient diagnosis the controller raises when the
// degradation ladder reaches its sequential-fallback rung: retrying the same
// deterministic parallel schedule under the same trace cannot help, so
// RunServiceResilient goes straight to the sequential service.
type OverloadError struct {
	VTime int64
	Level int
	Shed  int
}

// Error renders the diagnosis.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("service overload: degradation ladder reached level %d (sequential-fallback rung) at t=%d after %d shed requests", e.Level, e.VTime, e.Shed)
}

// IsTransient marks overload as non-transient for the fallback machinery.
func (e *OverloadError) IsTransient() bool { return false }

// svcController is the recalibration loop, run on its own simulated thread.
// It exits when the trace has drained or the run has failed.
func (m *machine) svcController(th *des.Thread) error {
	sv := m.svc
	sc := sv.cfg.Scaler
	for !sv.draining && !m.failed() {
		th.Sleep(sc.window())
		sv.windowTick(m, th.VTime)
	}
	return nil
}

// windowTick closes one controller window: re-estimate load and service
// cost, walk the ladder, and retarget the worker pool.
func (sv *svcState) windowTick(m *machine, now int64) {
	sc := sv.cfg.Scaler
	arr, comp, slo := sv.wArrivals, sv.wCompleted, sv.wWithinSLO
	shedQ := sv.wShedQueue
	costSum, costN := sv.wSvcCost, sv.wSvcCostN
	sv.wArrivals, sv.wCompleted, sv.wWithinSLO, sv.wShedQueue = 0, 0, 0, 0
	sv.wSvcCost, sv.wSvcCostN = 0, 0

	// Online recalibration of the per-request service-cost estimate from
	// this window's observations.
	if costN > 0 {
		sv.estCost = costSum / int64(costN)
	}

	pressure := 0.0
	if c := sv.ingress.Cap; c > 0 {
		pressure = float64(sv.ingress.Len()) / float64(c)
	}
	if shedQ > 0 {
		pressure = 1 // admission already bounced arrivals off a full ingress
	}
	attain := 1.0
	switch {
	case comp > 0:
		attain = float64(slo) / float64(comp)
	case arr > 0 && pressure >= sc.badPressure():
		attain = 0 // load arrived, nothing finished, queue saturated
	}

	bad := attain < sc.badAttainment() && pressure >= sc.badPressure()
	if bad {
		sv.badRun++
		sv.goodRun = 0
	} else {
		sv.goodRun++
		sv.badRun = 0
	}
	switch {
	case bad && sv.badRun >= sc.escalateAfter() && sv.level < sc.maxLevel():
		sv.level++
		sv.badRun = 0
		if sv.level > sv.maxLevel {
			sv.maxLevel = sv.level
		}
		sv.note(now, fmt.Sprintf("escalate: attainment %.2f, ingress pressure %.2f", attain, pressure))
		if sv.level >= 3 {
			m.fail("svc-ctl", &OverloadError{VTime: now, Level: sv.level, Shed: sv.shedBucket + sv.shedQueue})
			return
		}
	case !bad && sv.goodRun >= sc.recoverAfter() && sv.level > 0:
		sv.level--
		sv.goodRun = 0
		sv.note(now, fmt.Sprintf("recover: attainment %.2f, ingress pressure %.2f", attain, pressure))
	}

	if !sv.pool {
		return // pipeline stages are structural; only the ladder applies
	}
	target := sv.target
	if sv.level >= 2 {
		// Contention collapse: a minimal pool drains the backlog without
		// paying cross-worker synchronization.
		target = sc.minWorkers()
	} else {
		est := sv.estCost
		if est <= 0 {
			est = 1
		}
		need := sc.minWorkers()
		if arr > 0 {
			lambda := float64(arr) / float64(sc.window()) // requests per vt unit
			need = int(math.Ceil(lambda * float64(est) * sc.headroom()))
		}
		if need < sc.minWorkers() {
			need = sc.minWorkers()
		}
		if need > sv.threads {
			need = sv.threads
		}
		target = need
	}
	if target != sv.target {
		sv.target = target
		sv.note(now, fmt.Sprintf("retarget: λ̂=%d/window, ĉ=%d", arr, sv.estCost))
	}
}

// note appends a scale event at the current ladder state.
func (sv *svcState) note(now int64, reason string) {
	sv.scaleEvents = append(sv.scaleEvents, ScaleEvent{
		VTime: now, Level: sv.level, Workers: sv.target, Reason: reason,
	})
}
