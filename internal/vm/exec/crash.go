package exec

import (
	"fmt"

	"repro/internal/transform"
	"repro/internal/types"
	"repro/internal/vm/value"
)

// Crash/restart subsystem.
//
// A Crash fault (Config.CrashCheck, wired to faults.Injector.CrashNow)
// deterministically kills a simulated worker thread at a chosen crash-tick
// index. The death model: the thread's *private* state — frame, cursors,
// unflushed batched-queue buffers, unmerged privatized shadows — is lost;
// shared substrate state (memory, cells, queues) survives. Recovery rests
// on an output-commit checkpoint discipline:
//
//   - Each DOALL worker and pipeline stage snapshots its resumable state
//     at pass/token boundaries: immediately after any pass that
//     externalized an effect (member commit, shared-cell write, effectful
//     builtin, global store, or batched-queue flush — the same counters
//     that gate DOALL iteration re-execution), and otherwise every
//     Recovery.CheckpointEvery passes.
//   - Crash ticks fire at the *start* of a pass, checkpoint refreshes at
//     its *end*, so the window between the live checkpoint and any crash
//     contains only work that externalized nothing. The supervisor can
//     therefore restore the last checkpoint onto a fresh simulated thread
//     and replay the whole window without duplicating a visible update.
//   - A permanent crash (or an exhausted restart budget) degrades
//     gracefully instead: a dead DOALL worker's remaining iterations are
//     re-partitioned across the survivors at join time; a dead pipeline
//     stage poisons the pipeline into an orderly shutdown and the run is
//     diagnosed non-transient, which collapses RunResilient to its
//     sequential fallback.
//
// All recovery machinery runs inside the deterministic simulator and is
// charged in virtual time (Cost.Checkpoint per snapshot, Cost.Restore per
// restore, Recovery.RestartDelay of supervisor detection latency), so the
// same seed and plan reproduce bit-identical outputs, checkpoints, and
// restart histories.

// CrashError reports an injected worker-thread crash. Perm marks crashes
// the supervisor will not (or can no longer) restart; only those are
// non-transient, since re-running the same deterministic plan replays the
// same recoverable crashes.
type CrashError struct {
	Thread string
	VTime  int64
	Perm   bool
	Reason string
}

// Error renders the diagnosis.
func (e *CrashError) Error() string {
	return fmt.Sprintf("%s in thread %s at t=%d", e.Reason, e.Thread, e.VTime)
}

// IsTransient reports whether a restart (or a fresh attempt) can succeed.
func (e *CrashError) IsTransient() bool { return !e.Perm }

// RestartRecord is one entry of a run's crash/restart history.
type RestartRecord struct {
	// Thread is the worker role that crashed (e.g. "doall.1", "stage1.0").
	Thread string `json:"thread"`
	// VTime is the virtual time of the death.
	VTime int64 `json:"vtime"`
	// Event is the pass (DOALL iteration) or token ordinal at which the
	// crash tick hit.
	Event int64 `json:"event"`
	// CkptAge is how many passes/tokens the live state was ahead of the
	// last checkpoint when the thread died.
	CkptAge int64 `json:"ckpt_age"`
	// Replayed is how many passes/tokens the replacement re-executed from
	// the restored checkpoint (0 for permanent deaths: nothing is
	// replayed, the work is re-partitioned or the run degrades).
	Replayed int64 `json:"replayed"`
	// Permanent marks deaths that were not restarted (permanent crash
	// spec, or transient crash after the restart budget was exhausted).
	Permanent bool `json:"permanent"`
	// RecoveredVTime is the virtual time at which the role resumed making
	// progress: the replacement thread's clock right after its checkpoint
	// restore, or — for permanent deaths — the start of the join-time
	// salvage runners that re-partition the remainder. 0 when the run
	// failed before any recovery. MTTR per record is
	// RecoveredVTime - VTime.
	RecoveredVTime int64 `json:"recovered_vtime,omitempty"`
}

// String renders one history entry.
func (r RestartRecord) String() string {
	kind := "restarted"
	if r.Permanent {
		kind = "permanent"
	}
	return fmt.Sprintf("%s crashed @t=%d event=%d ckpt-age=%d replayed=%d (%s)",
		r.Thread, r.VTime, r.Event, r.CkptAge, r.Replayed, kind)
}

// markRecovered stamps the recovery time on the newest unrecovered
// permanent restart record of the role (used when the join-time salvage
// runners for a dead worker are spawned).
func (m *machine) markRecovered(role string, vtime int64) {
	for i := len(m.restarts) - 1; i >= 0; i-- {
		r := &m.restarts[i]
		if r.Thread == role && r.Permanent && r.RecoveredVTime == 0 {
			r.RecoveredVTime = vtime
			return
		}
	}
}

// crashAt consumes one crash tick for the role and reports whether the
// thread dies now, and whether the death is permanent. Returns false when
// no crash plan is armed.
func (m *machine) crashAt(role string) (bool, bool) {
	if m.cfg.CrashCheck == nil {
		return false, false
	}
	return m.cfg.CrashCheck(role)
}

// checkpointing reports whether the checkpoint layer is active. Snapshots
// are only taken (and charged) when a crash plan is armed, so crash-free
// runs keep their exact legacy timings.
func (m *machine) checkpointing() bool { return m.cfg.CrashCheck != nil }

// ckptEvery returns the periodic checkpoint interval in passes/tokens.
func (m *machine) ckptEvery() int64 {
	if r := m.cfg.Recovery; r != nil {
		return r.checkpointEvery()
	}
	return defaultCheckpointEvery
}

// snapshotFrame copies a frame exactly, including the shared-source
// register tags (unlike clone, which resets them for a fresh worker).
func snapshotFrame(fr *frame) *frame {
	return &frame{
		locals:    append([]value.Value(nil), fr.locals...),
		regs:      append([]value.Value(nil), fr.regs...),
		sharedSrc: append([]int(nil), fr.sharedSrc...),
	}
}

// copyPriv copies a privatized-shadow commit map.
func copyPriv(p map[*types.Set]int) map[*types.Set]int {
	if len(p) == 0 {
		return nil
	}
	c := make(map[*types.Set]int, len(p))
	for k, v := range p {
		c[k] = v
	}
	return c
}

// CrashRoster lists the simulated worker roles the schedule spawns with
// the given thread count — the legal targets of Crash fault specs. DOALL
// schedules spawn doall.0..N-1 (worker 0 rides the main thread); pipeline
// schedules spawn stage<si>.<rep> for every non-dispatcher stage. The
// dispatcher and the sequential schedule have no crashable workers: they
// run on the main thread, whose death is the process's, not a worker's.
func CrashRoster(sched *transform.Schedule, threads int) []string {
	if sched == nil {
		return nil
	}
	if threads < 1 {
		threads = 1
	}
	switch sched.Kind {
	case transform.DOALL:
		roster := make([]string, threads)
		for w := 0; w < threads; w++ {
			roster[w] = fmt.Sprintf("doall.%d", w)
		}
		return roster
	case transform.DSWP, transform.PSDSWP:
		reps := stageReps(sched.Stages, threads)
		var roster []string
		for si := 1; si < len(sched.Stages); si++ {
			for rep := 0; rep < reps[si]; rep++ {
				roster = append(roster, fmt.Sprintf("stage%d.%d", si, rep))
			}
		}
		return roster
	}
	return nil
}

// stageReps computes the replica count per pipeline stage: one thread per
// sequential stage, every remaining thread on the parallel stage.
func stageReps(stages []transform.Stage, threads int) []int {
	reps := make([]int, len(stages))
	parIdx := -1
	for i := range stages {
		reps[i] = 1
		if stages[i].Parallel {
			parIdx = i
		}
	}
	if parIdx >= 0 {
		r := threads - (len(stages) - 1)
		if r < 1 {
			r = 1
		}
		reps[parIdx] = r
	}
	return reps
}
