package exec_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/transform"
	"repro/internal/vm/exec"
)

// stealCfg builds a config with the straggler hook and — when the plan can
// kill a thread — the crash layer armed, mirroring the bench harness.
func (cp *compiled) stealCfg(plan faults.Plan, rec *exec.Recovery, tune transform.Tuning) (exec.Config, *world) {
	w := &world{}
	inj := faults.NewInjector(plan)
	cfg := cp.cfg
	cfg.Builtins = inj.Wrap(w.builtins())
	cfg.Recovery = rec
	cfg.Effectful = map[string]bool{"fopen_i": true, "fread": true, "fclose": true, "print_int": true}
	if plan.HasCrash() {
		cfg.CrashCheck = inj.CrashNow
	}
	if plan.HasStraggler() {
		cfg.Straggle = inj.SlowNow
	}
	cfg.Tune = tune
	return cfg, w
}

// slowPlan slows one worker by factor for its whole loop (After 1, an
// effectively unbounded window).
func slowPlan(thread string, factor float64) faults.Plan {
	return faults.Plan{Name: "slow", Seed: 11, Recoverable: true, Specs: []faults.Spec{
		{Kind: faults.Straggler, Thread: thread, After: 1, Count: 1 << 20, Factor: factor},
	}}
}

// TestDOALLStealRepairsStraggler: with one worker slowed 4x for the whole
// loop, enabling work stealing must strip the straggler's un-started range
// and finish well under the steal-disabled time, with the exact sequential
// output multiset.
func TestDOALLStealRepairsStraggler(t *testing.T) {
	cp := compileFor(t, md5Full, 8)
	_, seqOut := cp.seqRun(t)
	plan := slowPlan("doall.1", 4)

	times := map[bool]int64{}
	for _, steal := range []bool{false, true} {
		cfg, w := cp.stealCfg(plan, exec.DefaultRecovery(), transform.Tuning{Steal: steal})
		res, err := exec.Run(cfg, cp.la, cp.sched[transform.DOALL], exec.SyncMutex, 4)
		if err != nil {
			t.Fatalf("steal=%v: %v", steal, err)
		}
		times[steal] = res.VirtualTime
		if steal && res.Steals == 0 {
			t.Error("steal-enabled straggler run granted no steals")
		}
		if !steal && res.Steals != 0 {
			t.Errorf("steal-disabled run granted %d steals", res.Steals)
		}
		if len(res.WorkerJoins) != 4 {
			t.Errorf("steal=%v: %d worker joins, want 4", steal, len(res.WorkerJoins))
		}
		a, b := sortedCopy(w.prints), sortedCopy(seqOut)
		if strings.Join(a, ",") != strings.Join(b, ",") {
			t.Errorf("steal=%v: output multiset differs:\npar: %v\nseq: %v", steal, a, b)
		}
		if w.prints[len(w.prints)-1] != seqOut[len(seqOut)-1] {
			t.Errorf("steal=%v: final total differs", steal)
		}
	}
	if times[true] >= times[false] {
		t.Fatalf("stealing did not repair the straggler: %d >= %d", times[true], times[false])
	}
	if ratio := float64(times[true]) / float64(times[false]); ratio > 0.75 {
		t.Errorf("steal-on/steal-off ratio %.2f, want <= 0.75 (%d vs %d)", ratio, times[true], times[false])
	}
}

// TestStealCleanRunUndisturbed: with no faults injected, enabling stealing
// must not change the output, and any tail steals it performs must not slow
// the loop down.
func TestStealCleanRunUndisturbed(t *testing.T) {
	cp := compileFor(t, md5Full, 8)
	_, seqOut := cp.seqRun(t)
	base, _ := cp.parRun(t, transform.DOALL, exec.SyncMutex, 4)

	cfg, w := cp.stealCfg(faults.Plan{Name: "clean", Seed: 1}, nil, transform.Tuning{Steal: true})
	res, err := exec.Run(cfg, cp.la, cp.sched[transform.DOALL], exec.SyncMutex, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.VirtualTime > base {
		t.Errorf("steal-enabled clean run slower than baseline: %d > %d", res.VirtualTime, base)
	}
	a, b := sortedCopy(w.prints), sortedCopy(seqOut)
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Errorf("output multiset differs:\npar: %v\nseq: %v", a, b)
	}
}

// TestStealDeterminism is the acceptance property for the steal layer: the
// same seed and plan must reproduce bit-identical makespans, steal counts,
// restart histories, and outputs — stealing enabled throughout.
func TestStealDeterminism(t *testing.T) {
	cells := []struct {
		name string
		plan faults.Plan
		tune transform.Tuning
	}{
		{"straggler", slowPlan("doall.1", 4), transform.Tuning{Steal: true}},
		{"straggler-8x-chunked", slowPlan("doall.2", 8),
			transform.Tuning{Steal: true, Sched: transform.SchedChunked, Chunk: 4}},
		{"straggler+crash", func() faults.Plan {
			p := slowPlan("doall.1", 4)
			p.Specs = append(p.Specs, faults.Spec{Kind: faults.Crash, Thread: "doall.2", After: 3})
			return p
		}(), transform.Tuning{Steal: true, Privatize: true}},
		{"straggler+perm-crash", func() faults.Plan {
			p := slowPlan("doall.1", 4)
			p.Specs = append(p.Specs, faults.Spec{Kind: faults.Crash, Thread: "doall.3", After: 4, Permanent: true})
			return p
		}(), transform.Tuning{Steal: true, Sched: transform.SchedChunked, Chunk: 4, Privatize: true}},
	}
	for _, c := range cells {
		cp := compileFor(t, md5Full, 8)
		runOnce := func() string {
			cfg, w := cp.stealCfg(c.plan, exec.DefaultRecovery(), c.tune)
			res, err := exec.Run(cfg, cp.la, cp.sched[transform.DOALL], exec.SyncMutex, 4)
			if err != nil {
				return fmt.Sprintf("err=%v", err)
			}
			return fmt.Sprintf("t=%d steals=%d restarts=%d repart=%d hist=%v joins=%v out=%s",
				res.VirtualTime, res.Steals, res.Restarts, res.Repartitioned,
				res.RestartHistory, res.WorkerJoins, strings.Join(sortedCopy(w.prints), ","))
		}
		if a, b := runOnce(), runOnce(); a != b {
			t.Errorf("%s: steal run not deterministic:\n%s\n%s", c.name, a, b)
		}
	}
}

// TestStealUnderTunedSchedules: stealing must compose with the chunked and
// guided iteration schedules and with privatized shadows — same output
// multiset as the sequential run, and each privatized shadow merged exactly
// once per worker chain despite ranges migrating between chains.
func TestStealUnderTunedSchedules(t *testing.T) {
	cp := compileFor(t, md5Full, 8)
	_, seqOut := cp.seqRun(t)
	plan := slowPlan("doall.1", 4)
	for _, tune := range []transform.Tuning{
		{Steal: true},
		{Steal: true, Sched: transform.SchedChunked, Chunk: 4},
		{Steal: true, Sched: transform.SchedChunked, Chunk: 4, Privatize: true},
		{Steal: true, Sched: transform.SchedGuided},
		{Steal: true, Sched: transform.SchedGuided, Privatize: true},
	} {
		cfg, w := cp.stealCfg(plan, exec.DefaultRecovery(), tune)
		res, err := exec.Run(cfg, cp.la, cp.sched[transform.DOALL], exec.SyncMutex, 4)
		if err != nil {
			t.Fatalf("%s: %v", tune, err)
		}
		if tune.Privatize {
			// One bulk merge per worker chain with a non-empty shadow;
			// adopted sweeps accumulate into the thief's existing shadow
			// rather than adding merges.
			if res.PrivMerges < 1 || res.PrivMerges > 4 {
				t.Errorf("%s: PrivMerges = %d outside [1,4]", tune, res.PrivMerges)
			}
		}
		a, b := sortedCopy(w.prints), sortedCopy(seqOut)
		if strings.Join(a, ",") != strings.Join(b, ",") {
			t.Errorf("%s: output multiset differs:\npar: %v\nseq: %v", tune, a, b)
		}
		if w.prints[len(w.prints)-1] != seqOut[len(seqOut)-1] {
			t.Errorf("%s: final total differs", tune)
		}
	}
}

// TestStealWithCrashPlans: stealing must compose with the crash/restart
// machinery — a slowed victim that also crashes transiently restarts and is
// still stripped by thieves; a permanent crash of a fast peer degrades and
// re-partitions while the straggler is robbed in parallel.
func TestStealWithCrashPlans(t *testing.T) {
	cp := compileFor(t, md5Full, 8)
	_, seqOut := cp.seqRun(t)

	check := func(name string, w *world, res *exec.Result) {
		t.Helper()
		a, b := sortedCopy(w.prints), sortedCopy(seqOut)
		if strings.Join(a, ",") != strings.Join(b, ",") {
			t.Errorf("%s: output multiset differs:\npar: %v\nseq: %v", name, a, b)
		}
		if w.prints[len(w.prints)-1] != seqOut[len(seqOut)-1] {
			t.Errorf("%s: final total differs", name)
		}
	}

	// Transient crash of the straggler itself.
	p1 := slowPlan("doall.1", 4)
	p1.Specs = append(p1.Specs, faults.Spec{Kind: faults.Crash, Thread: "doall.1", After: 3})
	cfg, w := cp.stealCfg(p1, exec.DefaultRecovery(), transform.Tuning{Steal: true})
	res, err := exec.Run(cfg, cp.la, cp.sched[transform.DOALL], exec.SyncMutex, 4)
	if err != nil {
		t.Fatalf("straggler+transient: %v", err)
	}
	if res.Restarts != 1 || !res.Recovered {
		t.Errorf("straggler+transient: Restarts=%d Recovered=%v, want 1/true", res.Restarts, res.Recovered)
	}
	check("straggler+transient", w, res)

	// Permanent crash of a fast peer while the straggler is being robbed.
	p2 := slowPlan("doall.1", 4)
	p2.Specs = append(p2.Specs, faults.Spec{Kind: faults.Crash, Thread: "doall.2", After: 4, Permanent: true})
	cfg, w = cp.stealCfg(p2, exec.DefaultRecovery(), transform.Tuning{Steal: true})
	res, err = exec.Run(cfg, cp.la, cp.sched[transform.DOALL], exec.SyncMutex, 4)
	if err != nil {
		t.Fatalf("straggler+perm: %v", err)
	}
	if !res.Degraded || res.Repartitioned != 1 {
		t.Errorf("straggler+perm: Degraded=%v Repartitioned=%d, want true/1", res.Degraded, res.Repartitioned)
	}
	check("straggler+perm", w, res)
}

// TestStealThiefCrashExactlyOnce: a thief that crashes while working an
// adopted range must restart from the checkpoint taken at adoption and
// re-run only the stolen range — no iteration lost, none duplicated, and
// each privatized shadow still merged exactly once.
func TestStealThiefCrashExactlyOnce(t *testing.T) {
	cp := compileFor(t, md5Full, 8)
	_, seqOut := cp.seqRun(t)
	// Slow worker 1 hard so its range migrates early; kill worker 2 at a
	// tick past its own 32-pass sweep, which can only land inside a sweep
	// it adopted from the straggler.
	plan := slowPlan("doall.1", 8)
	plan.Specs = append(plan.Specs, faults.Spec{Kind: faults.Crash, Thread: "doall.2", After: 34})
	tune := transform.Tuning{Steal: true, Sched: transform.SchedChunked, Chunk: 4, Privatize: true}
	cfg, w := cp.stealCfg(plan, exec.DefaultRecovery(), tune)
	res, err := exec.Run(cfg, cp.la, cp.sched[transform.DOALL], exec.SyncMutex, 4)
	if err != nil {
		t.Fatalf("thief crash not absorbed: %v", err)
	}
	if res.Steals == 0 {
		t.Fatal("no steals granted; crash tick 34 never reached an adopted sweep")
	}
	if res.Restarts != 1 {
		t.Errorf("Restarts = %d, want 1 (thief restarted from its adoption checkpoint)", res.Restarts)
	}
	if res.PrivMerges != 4 {
		t.Errorf("PrivMerges = %d, want 4 (exactly-once merge per worker chain)", res.PrivMerges)
	}
	a, b := sortedCopy(w.prints), sortedCopy(seqOut)
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Errorf("output multiset differs after thief crash:\npar: %v\nseq: %v", a, b)
	}
	if w.prints[len(w.prints)-1] != seqOut[len(seqOut)-1] {
		t.Error("final total differs after thief crash (lost or duplicated iteration)")
	}
}
