package exec

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/pdg"
	"repro/internal/vm/des"
	"repro/internal/vm/value"
)

// token is one iteration's payload flowing through the pipeline: the frame
// slot values as of the end of the producing stage. Dependences between
// stages are satisfied by these lock-free-queue tokens (paper Section 4.5).
// A stop token ends the stream; a poisoned stop is the pill a failed stage
// (or the dispatcher, once a failure is recorded) forwards downstream so
// every stage shuts down in order instead of blocking on a dead producer.
type token struct {
	iter   int64
	stop   bool
	poison bool
	locals []value.Value
	// arrival stamps the request this token carries in service mode (zero
	// in batch mode); the last stage records the completion latency.
	arrival int64
}

// pipeJoin is the completion message of one stage worker.
type pipeJoin struct {
	stage    int
	rep      int
	lastIter int64
	fr       *frame
}

// qWriter batches pushes to one pipeline queue: tokens accumulate in a
// local buffer and are transferred with one amortized PushN per `batch`
// tokens. batch ≤ 1 degenerates to per-token Push. Stop tokens travel
// through the same writer, so intra-queue order is preserved; callers
// flush after the stop to bound shutdown latency.
type qWriter struct {
	q     *des.Queue
	batch int
	buf   []any
	// flushes counts actual queue transfers (Push/PushN operations). A
	// transfer externalizes the buffered tokens — consumers can observe
	// them — so the stage checkpoint layer treats a flush like a member
	// commit: the output-commit snapshot refreshes before the next crash
	// tick can hit.
	flushes int
}

func (w *qWriter) push(th *des.Thread, tok token) {
	if w.batch <= 1 {
		w.flushes++
		th.Push(w.q, tok)
		return
	}
	w.buf = append(w.buf, tok)
	if len(w.buf) >= w.batch {
		w.flush(th)
	}
}

func (w *qWriter) flush(th *des.Thread) {
	if len(w.buf) > 0 {
		w.flushes++
		th.PushN(w.q, w.buf)
		w.buf = nil
	}
}

// totalFlushes sums the writers' transfer counters (the checkpoint layer's
// externalization baseline).
func totalFlushes(out []*qWriter) int {
	n := 0
	for _, w := range out {
		n += w.flushes
	}
	return n
}

// qReader pops tokens from one pipeline queue, batch-popping up to
// `batch` tokens per scheduler event into a local buffer. For a
// sequential merge stage the buffered tokens are exactly the future
// iterations of that input queue (queue j carries iterations j, j+R,
// j+2R, …), so buffering never reorders the merge.
type qReader struct {
	q     *des.Queue
	batch int
	buf   []any
	// tap, when set, observes every token freshly popped from the
	// underlying queue (not buffered re-reads). The stage checkpoint layer
	// uses it to keep the in-flight token log: tokens popped since the
	// last checkpoint are gone from the queue, so a restarted stage must
	// replay them from the log.
	tap func(toks []any)
}

func (r *qReader) next(th *des.Thread) token {
	if len(r.buf) == 0 {
		var toks []any
		if r.batch > 1 {
			toks = th.PopN(r.q, r.batch)
		} else {
			toks = []any{th.Pop(r.q)}
		}
		if r.tap != nil {
			r.tap(toks)
		}
		r.buf = toks
	}
	tok := r.buf[0].(token)
	r.buf = r.buf[1:]
	return tok
}

func newWriters(qs []*des.Queue, batch int) []*qWriter {
	ws := make([]*qWriter, len(qs))
	for i, q := range qs {
		ws[i] = &qWriter{q: q, batch: batch}
	}
	return ws
}

func newReaders(qs []*des.Queue, batch int) []*qReader {
	rs := make([]*qReader, len(qs))
	for i, q := range qs {
		rs[i] = &qReader{q: q, batch: batch}
	}
	return rs
}

// runPipeline executes a DSWP or PS-DSWP schedule. The calling thread is
// the dispatcher (stage 0): it owns loop control, executes stage 0's units,
// and streams per-iteration tokens down the pipeline. A parallel stage runs
// R replicas receiving iterations round-robin; the following sequential
// stage merges tokens back in iteration order, which preserves sequential
// semantics for in-order stages (e.g. deterministic console output).
func (m *machine) runPipeline(mainTh *des.Thread, mainFr *frame, threads int) error {
	stages := m.sched.Stages
	if len(stages) < 2 {
		return fmt.Errorf("exec: pipeline schedule needs at least 2 stages")
	}

	// Replica counts: the single parallel stage receives every thread not
	// running a sequential stage. stageReps is shared with CrashRoster so
	// fault plans name exactly the roles this run spawns.
	reps := stageReps(stages, threads)

	// Queues between consecutive stages. Between stage i and i+1 there are
	// max(reps[i], reps[i+1]) queues: a parallel side owns one queue per
	// replica; a sequential side round-robins over them.
	qs := make([][]*des.Queue, len(stages)-1)
	for i := 0; i < len(stages)-1; i++ {
		n := reps[i]
		if reps[i+1] > n {
			n = reps[i+1]
		}
		qs[i] = make([]*des.Queue, n)
		for k := 0; k < n; k++ {
			q := m.sim.NewQueue(fmt.Sprintf("q%d.%d", i, k), m.cfg.queueCap())
			if m.cfg.PushDelay != nil {
				name := q.Name
				q.Stall = func() int64 { return m.cfg.PushDelay(name) }
			}
			qs[i][k] = q
		}
	}

	// Slot ownership for live-out merging: the highest stage writing a slot
	// owns its final value; control slots belong to the dispatcher.
	owner := m.slotOwners()

	join := m.sim.NewQueue("pipe.join", threads+1)

	ff := m.flowForward()

	// Stage workers 1..k-1.
	for si := 1; si < len(stages); si++ {
		for rep := 0; rep < reps[si]; rep++ {
			si, rep := si, rep
			m.sim.Spawn(fmt.Sprintf("stage%d.%d", si, rep), mainTh.VTime, func(th *des.Thread) error {
				return m.stageWorker(th, mainFr, si, rep, reps, qs, ff, join)
			})
		}
	}

	// Dispatcher on the calling thread.
	if err := m.dispatch(mainTh, mainFr, reps, qs, ff, join); err != nil {
		return err
	}

	// Collect every worker (including the dispatcher's own join message)
	// and merge live-outs by ownership, taking the frame of the replica
	// that processed the globally last iteration of each stage.
	nWorkers := 1
	for si := 1; si < len(stages); si++ {
		nWorkers += reps[si]
	}
	type best struct {
		iter int64
		fr   *frame
	}
	finals := make([]best, len(stages))
	for i := range finals {
		finals[i].iter = -1
	}
	for i := 0; i < nWorkers; i++ {
		j := mainTh.Pop(join).(pipeJoin)
		if j.lastIter > finals[j.stage].iter {
			finals[j.stage] = best{iter: j.lastIter, fr: j.fr}
		}
	}
	if m.failDiag != nil {
		return m.failDiag
	}
	for slot, stg := range owner {
		if m.isShared(slot) {
			continue // demoted from cells by the caller
		}
		if finals[stg].fr != nil {
			mainFr.locals[slot] = finals[stg].fr.locals[slot]
		}
	}
	return nil
}

// flowForward computes, per stage, the slots whose post-stage values flow
// intra-iteration to a later stage and must be overlaid onto the forwarded
// token. All other private slots travel as iteration-start snapshots, which
// satisfies anti-dependences by construction (a later stage reading a slot
// that an earlier stage overwrites for the *next* use still sees the
// pre-write value).
func (m *machine) flowForward() []map[int]bool {
	stages := m.sched.Stages
	stageOf := map[int]int{}
	for si, st := range stages {
		for _, u := range st.Units {
			stageOf[u] = si
		}
	}
	shared := map[int]bool{}
	for _, s := range m.sched.SharedSlots {
		shared[s] = true
	}
	ff := make([]map[int]bool, len(stages))
	for i := range ff {
		ff[i] = map[int]bool{}
	}
	for _, e := range m.la.PDG.Edges {
		slot, isSlot := e.LocalSlot()
		if !isSlot || e.LoopCarried || e.Kind != pdg.DepFlow || shared[slot] {
			continue
		}
		if e.From >= len(m.unitOf) || e.To >= len(m.unitOf) {
			continue
		}
		u1 := m.unitOf[e.From]
		u2 := m.unitOf[e.To]
		if u1 < 0 || u2 < 0 {
			continue
		}
		s1, in1 := stageOf[u1]
		s2, in2 := stageOf[u2]
		if in1 && in2 && s1 < s2 {
			ff[s1][slot] = true
		}
	}
	return ff
}

// slotOwners maps every loop-written slot to the highest stage writing it
// (stage 0 covers the dispatcher's control writes).
func (m *machine) slotOwners() map[int]int {
	owner := map[int]int{}
	note := func(instrs []*ir.Instr, stage int) {
		for _, in := range instrs {
			switch in.Op {
			case ir.OpStoreLocal:
				if owner[in.Slot] <= stage {
					owner[in.Slot] = stage
				}
			case ir.OpCall:
				for _, s := range in.OutSlots {
					if owner[s] <= stage {
						owner[s] = stage
					}
				}
			}
		}
	}
	note(m.la.Units.Cond, 0)
	note(m.la.Units.Post, 0)
	for si, st := range m.sched.Stages {
		for _, u := range st.Units {
			note(m.la.Units.Units[u], si)
		}
	}
	return owner
}

// stageWrites returns the slots written by a stage's units (used for the
// sequential-stage persistent overlay).
func (m *machine) stageWrites(si int) map[int]bool {
	w := map[int]bool{}
	for _, u := range m.sched.Stages[si].Units {
		for _, in := range m.la.Units.Units[u] {
			switch in.Op {
			case ir.OpStoreLocal:
				w[in.Slot] = true
			case ir.OpCall:
				for _, s := range in.OutSlots {
					w[s] = true
				}
			}
		}
	}
	return w
}

// bodyWrites returns the slots written by any body unit of the loop (the
// DOALL live-out merge overlays them from the frame that executed the
// globally last iteration, which may be a dead worker's checkpoint).
func (m *machine) bodyWrites() map[int]bool {
	w := map[int]bool{}
	for _, unit := range m.la.Units.Units {
		for _, in := range unit {
			switch in.Op {
			case ir.OpStoreLocal:
				w[in.Slot] = true
			case ir.OpCall:
				for _, s := range in.OutSlots {
					w[s] = true
				}
			}
		}
	}
	return w
}

// dispatch runs loop control and stage 0 on the calling thread. The token
// for iteration k is the frame snapshot taken at the start of the
// iteration (delivering previous-iteration values of any loop-carried
// scalars the dispatcher owns, e.g. a list-traversal pointer), overlaid
// with the post-values of slots whose data flows from stage 0 to later
// stages within the iteration.
func (m *machine) dispatch(th *des.Thread, mainFr *frame, reps []int, qs [][]*des.Queue, ff []map[int]bool, join *des.Queue) error {
	fr := mainFr.clone()
	st := m.newStepper(th, fr)
	st.sharedActive = true
	out := newWriters(qs[0], m.cfg.Tune.BatchSize())
	lastIter := int64(-1)

	// bail handles a dispatcher-fatal error: legacy mode aborts the whole
	// simulation; resilient mode records the diagnosis and falls through to
	// the orderly stop-token broadcast below.
	bail := func(err error) (abort bool, fatal error) {
		if !m.resilient() {
			return true, err
		}
		m.fail("dispatcher", err)
		return false, nil
	}

loop:
	for iter := int64(0); ; iter++ {
		if m.resilient() && m.failed() {
			break // a stage died: stop generating iterations
		}
		if m.cfg.MaxIters > 0 && iter >= m.cfg.MaxIters {
			break // calibration slice: stop after the sampled prefix
		}
		exit, err := m.runCond(st)
		if err != nil {
			if abort, fatal := bail(err); abort {
				return fatal
			}
			break
		}
		if exit {
			break
		}
		locals := make([]value.Value, len(fr.locals))
		copy(locals, fr.locals) // iteration-start snapshot
		for _, u := range m.sched.Stages[0].Units {
			if _, err := st.runGroup(m.la.Units.Units[u]); err != nil {
				if abort, fatal := bail(err); abort {
					return fatal
				}
				break loop
			}
		}
		for slot := range ff[0] {
			locals[slot] = fr.locals[slot]
		}
		st.flush()
		out[int(iter)%len(out)].push(th, token{iter: iter, locals: locals})
		if _, err := st.runGroup(m.la.Units.Post); err != nil {
			if abort, fatal := bail(err); abort {
				return fatal
			}
			break
		}
		lastIter = iter
	}
	st.flush()
	for _, w := range out {
		w.push(th, token{stop: true, poison: m.failed()})
		w.flush(th)
	}
	th.Push(join, pipeJoin{stage: 0, rep: 0, lastIter: lastIter, fr: fr})
	return nil
}

// stageCkpt is a pipeline stage worker's resumable snapshot, taken under the
// output-commit discipline: it is refreshed immediately after any pass that
// externalized an effect (member commit, shared-cell write, global store, or
// a batched-queue flush), and otherwise every Recovery.CheckpointEvery token
// passes. A crash window above the snapshot therefore contains only private
// work — frame mutations, buffered tokens — which a replacement worker can
// replay without duplicating any observable effect.
type stageCkpt struct {
	fr       *frame
	seq      int64
	lastIter int64
	event    int64
	inBufs   [][]any // batched-queue input residue per reader
	outBufs  [][]any // unflushed output tokens per writer
}

// stageState is the per-incarnation bookkeeping of one stage worker role. A
// replacement spawned after a transient crash continues the same role with a
// stageState restored from the checkpoint; restartsLeft and restartN carry
// across incarnations so repeated crashes eventually exhaust the budget.
type stageState struct {
	si, rep int
	role    string

	seq      int64 // next expected iteration of the round-robin input
	lastIter int64
	event    int64 // token passes consumed (crash-tick granularity)
	dead     bool

	ck        stageCkpt
	ckEff     int
	ckWrites  int
	ckFlushes int
	log       [][]any // tokens popped from the input queues since the checkpoint

	restartsLeft int
	restartN     int
}

// tapReaders wires the input readers' pop taps into the stage's in-flight
// token log. Tokens consumed from batch residue are not logged — they are
// already captured in the checkpoint's inBufs.
func (m *machine) tapReaders(ss *stageState, in []*qReader) {
	ss.log = make([][]any, len(in))
	for k := range in {
		k := k
		in[k].tap = func(toks []any) { ss.log[k] = append(ss.log[k], toks...) }
	}
}

// takeStageCkpt snapshots the stage worker's resumable state: frame, input
// cursor, batched-queue residues on both sides, and the externalization
// baselines. The in-flight token log restarts empty at each checkpoint.
func (m *machine) takeStageCkpt(th *des.Thread, st *stepper, ss *stageState, in []*qReader, out []*qWriter) {
	th.Charge(m.cfg.Cost.Checkpoint)
	ck := stageCkpt{
		fr:       snapshotFrame(st.fr),
		seq:      ss.seq,
		lastIter: ss.lastIter,
		event:    ss.event,
		inBufs:   make([][]any, len(in)),
		outBufs:  make([][]any, len(out)),
	}
	for k, r := range in {
		ck.inBufs[k] = append([]any(nil), r.buf...)
	}
	for k, w := range out {
		ck.outBufs[k] = append([]any(nil), w.buf...)
	}
	ss.ck = ck
	ss.ckEff = st.effects
	ss.ckWrites = st.it.HeapWrites
	ss.ckFlushes = totalFlushes(out)
	for k := range ss.log {
		ss.log[k] = nil
	}
}

// stageWorker runs one stage (replica) of the pipeline. When the crash layer
// is armed it takes an initial checkpoint and hands off to stageRun, which
// every replacement incarnation re-enters.
func (m *machine) stageWorker(th *des.Thread, mainFr *frame, si, rep int, reps []int, qs [][]*des.Queue, ff []map[int]bool, join *des.Queue) error {
	fr := mainFr.clone()
	st := m.newStepper(th, fr)
	st.sharedActive = true

	batch := m.cfg.Tune.BatchSize()
	in := newReaders(qs[si-1], batch)
	var out []*qWriter
	if si < len(m.sched.Stages)-1 {
		out = newWriters(qs[si], batch)
	}

	ss := &stageState{si: si, rep: rep, role: fmt.Sprintf("stage%d.%d", si, rep), lastIter: -1}
	if m.sched.Stages[si].Parallel {
		ss.seq = int64(rep)
	}
	if r := m.cfg.Recovery; r != nil {
		ss.restartsLeft = r.maxRestarts()
	}
	if m.checkpointing() {
		m.tapReaders(ss, in)
		m.takeStageCkpt(th, st, ss, in, out)
	}
	return m.stageRun(th, st, ss, in, out, reps, ff, qs, join)
}

// stageRun is the stage worker loop, shared by the original incarnation and
// every crash replacement. Crash ticks fire at the top of a token pass —
// before the pass pops or externalizes anything — so the window between the
// last checkpoint and a crash never contains an externalized effect.
func (m *machine) stageRun(th *des.Thread, st *stepper, ss *stageState, in []*qReader, out []*qWriter, reps []int, ff []map[int]bool, qs [][]*des.Queue, join *des.Queue) error {
	fr := st.fr
	stage := m.sched.Stages[ss.si]

	// Sequential stages keep a persistent overlay of the slots they own so
	// their own cross-iteration state (e.g. accumulators in a sequential
	// stage) survives incoming tokens.
	var owned map[int]bool
	if !stage.Parallel {
		owned = m.stageWrites(ss.si)
	}

	advance := func() {
		if stage.Parallel {
			ss.seq += int64(reps[ss.si])
		} else {
			ss.seq++
		}
	}
	// ss.dead marks this worker as failed: it keeps draining (and
	// discarding) its input so upstream producers never block on a full
	// queue, then forwards exactly one poisoned stop per output queue.
	for {
		if !ss.dead && m.checkpointing() {
			if die, perm := m.crashAt(ss.role); die {
				drain, err := m.stageCrash(th, ss, reps, ff, qs, join, perm)
				if err != nil {
					return err
				}
				if !drain {
					// A replacement thread takes over this role (and
					// pushes its join); the dead incarnation vanishes.
					return nil
				}
				ss.dead = true
			}
		}
		var inIdx int
		if stage.Parallel {
			inIdx = ss.rep
		} else {
			inIdx = int(ss.seq) % len(in)
		}
		// Flush pending output before parking on an empty input: a token
		// withheld in this worker's batch buffer may be exactly what the
		// downstream merge stage needs to drain the queues this worker's
		// producers are backpressured on (deadlock freedom).
		if out != nil && len(in[inIdx].buf) == 0 && in[inIdx].q.Len() == 0 {
			for _, w := range out {
				w.flush(th)
			}
		}
		tok := in[inIdx].next(th)
		ss.event++
		if tok.stop {
			poison := tok.poison || m.failed()
			if out != nil {
				st.flush()
				if stage.Parallel {
					// Each replica forwards its stop on its own queue.
					w := out[ss.rep%len(out)]
					w.push(th, token{stop: true, poison: poison})
					w.flush(th)
				} else {
					for _, w := range out {
						w.push(th, token{stop: true, poison: poison})
						w.flush(th)
					}
				}
			}
			// On failure a sequential stage also drains its sibling input
			// queues to their stops, so live upstream replicas still
			// pushing in-flight tokens can always complete.
			if m.resilient() && m.failed() && !stage.Parallel {
				for k := range in {
					if k == inIdx {
						continue
					}
					for {
						t2 := in[k].next(th)
						if t2.stop {
							break
						}
						if m.svc != nil {
							m.svc.rejected++ // zero silent drops: drained requests stay accounted
						}
					}
				}
			}
			break
		}
		if ss.dead || (m.resilient() && m.failed()) {
			if m.svc != nil {
				m.svc.rejected++ // zero silent drops: discarded requests stay accounted
			}
			advance()
			continue // discard: the run is already diagnosed as failed
		}
		// Install the incoming frame, preserving stage-owned slots.
		for i, v := range tok.locals {
			if owned != nil && owned[i] && ss.lastIter >= 0 {
				continue
			}
			fr.locals[i] = v
		}
		for _, u := range stage.Units {
			if _, err := st.runGroup(m.la.Units.Units[u]); err != nil {
				if !m.resilient() {
					return err
				}
				m.fail(ss.role, err)
				ss.dead = true
				break
			}
		}
		if ss.dead {
			advance()
			continue
		}
		ss.lastIter = tok.iter
		if m.svc != nil && ss.si == len(m.sched.Stages)-1 {
			m.svc.complete(tok.arrival, th.VTime, 0)
			// A response left the system: treat the completion as an
			// externalized effect so the output-commit checkpoint refreshes
			// and a crash replay can never re-complete this request.
			st.effects++
		}
		if out != nil {
			// Forward the incoming snapshot, overlaying only the values
			// this stage flows to later stages; slots this stage mutates
			// for its own use keep their snapshot (pre-write) values.
			locals := make([]value.Value, len(tok.locals))
			copy(locals, tok.locals)
			for slot := range ff[ss.si] {
				locals[slot] = fr.locals[slot]
			}
			st.flush()
			var w *qWriter
			if stage.Parallel {
				w = out[ss.rep%len(out)]
			} else {
				w = out[int(tok.iter)%len(out)]
			}
			w.push(th, token{iter: tok.iter, arrival: tok.arrival, locals: locals})
		}
		advance()
		if m.checkpointing() {
			externalized := st.effects != ss.ckEff ||
				st.it.HeapWrites != ss.ckWrites ||
				totalFlushes(out) != ss.ckFlushes
			if externalized || ss.event-ss.ck.event >= m.ckptEvery() {
				m.takeStageCkpt(th, st, ss, in, out)
			}
		}
	}
	th.Push(join, pipeJoin{stage: ss.si, rep: ss.rep, lastIter: ss.lastIter, fr: fr})
	return nil
}

// stageCrash handles a crash tick that fired for this stage worker. It
// returns (drain=true) when the role stays permanently dead — the supervisor
// diagnoses a non-transient failure and reaps the worker in place, which
// keeps draining input so the pipeline shuts down in order — and
// (drain=false) after scheduling a replacement incarnation for a transient
// crash. Outside resilient mode the crash surfaces as a fatal CrashError.
func (m *machine) stageCrash(th *des.Thread, ss *stageState, reps []int, ff []map[int]bool, qs [][]*des.Queue, join *des.Queue, perm bool) (drain bool, err error) {
	reason := "injected crash"
	if perm {
		reason = "injected permanent crash"
	}
	if !m.resilient() {
		m.sim.RecordDeath(ss.role, th.VTime, reason)
		return false, &CrashError{Thread: ss.role, VTime: th.VTime, Perm: perm, Reason: reason}
	}
	if !perm && ss.restartsLeft <= 0 {
		perm = true
		reason = "crash with restart budget exhausted"
	}
	rec := RestartRecord{
		Thread:    ss.role,
		VTime:     th.VTime,
		Event:     ss.event,
		CkptAge:   ss.event - ss.ck.event,
		Permanent: perm,
	}
	if !perm {
		rec.Replayed = rec.CkptAge
	}
	m.restarts = append(m.restarts, rec)
	m.sim.RecordDeath(ss.role, th.VTime, reason)
	if perm {
		// Degraded mode: a pipeline cannot re-partition around a missing
		// stage, so the supervisor diagnoses the death as non-transient.
		// RunResilient then collapses the schedule to the sequential
		// fallback. The reaped worker stays behind as a drain.
		m.fail(ss.role, &CrashError{Thread: ss.role, VTime: th.VTime, Perm: true, Reason: reason})
		return true, nil
	}

	// Transient: restore the checkpoint onto a fresh simulated thread after
	// the supervisor's detection delay. The replacement replays the logged
	// in-flight tokens (popped since the checkpoint, hence gone from the
	// queues) ahead of live queue input; the crash window externalized
	// nothing, so the replay cannot duplicate an observable effect.
	m.stats.restarts++
	ss.restartsLeft--
	r := m.cfg.Recovery
	ck := ss.ck
	replays := make([][]any, len(ss.log))
	for k := range ss.log {
		replays[k] = append([]any(nil), ss.log[k]...)
	}
	n := ss.restartN + 1
	left := ss.restartsLeft
	batch := m.cfg.Tune.BatchSize()
	m.sim.Spawn(fmt.Sprintf("%s#r%d", ss.role, n), th.VTime+r.restartDelay(), func(th2 *des.Thread) error {
		th2.Charge(m.cfg.Cost.Restore)
		st2 := m.newStepper(th2, snapshotFrame(ck.fr))
		st2.sharedActive = true
		in2 := newReaders(qs[ss.si-1], batch)
		for k := range in2 {
			buf := append([]any(nil), ck.inBufs[k]...)
			in2[k].buf = append(buf, replays[k]...)
		}
		var out2 []*qWriter
		if ss.si < len(m.sched.Stages)-1 {
			out2 = newWriters(qs[ss.si], batch)
			for k := range out2 {
				out2[k].buf = append([]any(nil), ck.outBufs[k]...)
			}
		}
		ss2 := &stageState{
			si: ss.si, rep: ss.rep, role: ss.role,
			seq: ck.seq, lastIter: ck.lastIter, event: ck.event,
			restartsLeft: left, restartN: n,
		}
		m.tapReaders(ss2, in2)
		// The restored state is its own checkpoint baseline: a repeated
		// crash before new externalization restores to this same point.
		m.takeStageCkpt(th2, st2, ss2, in2, out2)
		return m.stageRun(th2, st2, ss2, in2, out2, reps, ff, qs, join)
	})
	return false, nil
}
