package exec

import (
	"testing"

	"repro/internal/vm/value"
)

func ckTestFrames() (fr, ref *frame) {
	ref = &frame{
		locals:    make([]value.Value, 8),
		regs:      make([]value.Value, 16),
		sharedSrc: make([]int, 16),
	}
	for i := range ref.locals {
		ref.locals[i] = value.Int(int64(100 + i))
	}
	for i := range ref.regs {
		ref.regs[i] = value.Int(int64(200 + i))
	}
	fr = ref.clone()
	return fr, ref
}

// TestCkFrameRoundTrip: a frame encoded against a reference must decode to
// an identical frame, whatever the divergence pattern.
func TestCkFrameRoundTrip(t *testing.T) {
	fr, ref := ckTestFrames()
	// Two runs of diverging locals, one diverging reg, two tagged sources.
	fr.locals[1] = value.Int(-1)
	fr.locals[2] = value.Int(-2)
	fr.locals[6] = value.Int(-3)
	fr.regs[4] = value.Int(-4)
	fr.sharedSrc[0] = 3
	fr.sharedSrc[9] = 5

	c := encodeFrame(fr, ref)
	got := c.decode()
	for i := range fr.locals {
		if got.locals[i] != fr.locals[i] {
			t.Errorf("local %d = %v, want %v", i, got.locals[i], fr.locals[i])
		}
	}
	for i := range fr.regs {
		if got.regs[i] != fr.regs[i] {
			t.Errorf("reg %d = %v, want %v", i, got.regs[i], fr.regs[i])
		}
		if got.sharedSrc[i] != fr.sharedSrc[i] {
			t.Errorf("sharedSrc %d = %d, want %d", i, got.sharedSrc[i], fr.sharedSrc[i])
		}
	}

	// The decoded frame must not alias the reference: restoring one thief
	// and then mutating its frame cannot corrupt later restores.
	got.locals[0] = value.Int(-99)
	got.sharedSrc[1] = 7
	if ref.locals[0] != value.Int(100) || ref.sharedSrc[1] != 0 {
		t.Error("decoded frame aliases the reference frame")
	}
	if c.decode().locals[0] != fr.locals[0] {
		t.Error("second decode poisoned by mutation of the first")
	}
}

// TestCkFrameCompression: the encoded word count must reflect the delta
// structure — the run-length accounting the checkpoint/restore costs are
// charged by — not the frame width.
func TestCkFrameCompression(t *testing.T) {
	fr, ref := ckTestFrames()

	// Identical frames compress to the framing word alone.
	if c := encodeFrame(fr, ref); c.words != 1 {
		t.Errorf("identical frame encodes to %d words, want 1", c.words)
	}

	// One diverging run of three values: framing + run header + 3 literals.
	fr.locals[2] = value.Int(-1)
	fr.locals[3] = value.Int(-2)
	fr.locals[4] = value.Int(-3)
	if c := encodeFrame(fr, ref); c.words != 1+2+3 {
		t.Errorf("3-value run encodes to %d words, want 6", c.words)
	}

	// A second, separate run pays its own header; tag runs count likewise.
	fr.regs[10] = value.Int(-4)
	fr.sharedSrc[5] = 2
	if c := encodeFrame(fr, ref); c.words != 1+(2+3)+(2+1)+(2+1) {
		t.Errorf("two value runs + one tag run encode to %d words, want 12", c.words)
	}

	// A fully diverged frame still costs more than a sparse one, so the
	// cost model orders snapshots by how much state actually moved.
	sparse := encodeFrame(fr, ref)
	for i := range fr.locals {
		fr.locals[i] = value.Int(-int64(i) - 50)
	}
	for i := range fr.regs {
		fr.regs[i] = value.Int(-int64(i) - 90)
	}
	if c := encodeFrame(fr, ref); c.words <= sparse.words {
		t.Errorf("dense delta (%d words) not larger than sparse delta (%d words)", c.words, sparse.words)
	}
}
