package exec_test

import (
	"strings"
	"testing"

	"repro/internal/transform"
	"repro/internal/vm/exec"
	"repro/internal/vm/interp"
	"repro/internal/vm/value"
)

// failingWorld injects a builtin error on the Nth call to one builtin
// (digest by default).
type failingWorld struct {
	world
	name   string
	failAt int
	calls  int
}

func (w *failingWorld) builtins() map[string]interp.BuiltinFn {
	name := w.name
	if name == "" {
		name = "digest"
	}
	fns := w.world.builtins()
	base := fns[name]
	fns[name] = func(args []value.Value) (value.Value, int64, error) {
		w.calls++
		if w.calls == w.failAt {
			return value.Value{}, 0, errTest
		}
		return base(args)
	}
	return fns
}

type testErr struct{}

func (testErr) Error() string { return "injected substrate failure" }

var errTest = testErr{}

// allSyncModes is every synchronization mechanism of Section 4.6.
var allSyncModes = []exec.SyncMode{exec.SyncMutex, exec.SyncSpin, exec.SyncTM, exec.SyncLib}

// TestWorkerErrorPropagates injects a builtin failure mid-run for every
// schedule kind and every sync mode: the run must return the error, not
// hang or panic, and the simulator must not deadlock.
func TestWorkerErrorPropagates(t *testing.T) {
	for _, src := range []string{md5Full, md5Det} {
		cp := compileFor(t, src, 8)
		for _, kind := range []transform.Kind{transform.DOALL, transform.DSWP, transform.PSDSWP} {
			s := cp.sched[kind]
			if s == nil {
				continue
			}
			for _, mode := range allSyncModes {
				for _, failAt := range []int{1, 7, 16} {
					fw := &failingWorld{failAt: failAt}
					cfg := cp.cfg
					cfg.Builtins = fw.builtins()
					_, err := exec.Run(cfg, cp.la, s, mode, 4)
					if err == nil {
						t.Errorf("%v/%v failAt=%d: error not propagated", kind, mode, failAt)
						continue
					}
					if !strings.Contains(err.Error(), "injected substrate failure") {
						t.Errorf("%v/%v failAt=%d: err = %v", kind, mode, failAt, err)
					}
				}
			}
		}
	}
}

// boundedLoop calls the pure builtin bound() in the for-condition, planting
// a builtin call inside the loop-control units (executed by every DOALL
// worker and by the pipeline dispatcher).
const boundedLoop = `
#pragma commset decl FSET
#pragma commset predicate FSET (i1)(i2) : i1 != i2
void main() {
	int total = 0;
	for (int i = 0; i < bound(24); i++) {
		int d = digest(i);
		#pragma commset member FSET(i), SELF
		{ total += d; }
	}
	print_int(total);
}
`

// TestFaultInLoopControl lands the failure inside the loop-control units:
// the bound() call of the for-condition. Every schedule kind must propagate
// it without hanging (loop control runs on every DOALL worker and on the
// pipeline dispatcher).
func TestFaultInLoopControl(t *testing.T) {
	cp := compileFor(t, boundedLoop, 8)
	for _, kind := range []transform.Kind{transform.DOALL, transform.DSWP, transform.PSDSWP} {
		s := cp.sched[kind]
		if s == nil {
			continue
		}
		for _, mode := range allSyncModes {
			fw := &failingWorld{name: "bound", failAt: 10}
			cfg := cp.cfg
			cfg.Builtins = fw.builtins()
			_, err := exec.Run(cfg, cp.la, s, mode, 4)
			if err == nil {
				t.Errorf("%v/%v: loop-control fault not propagated", kind, mode)
				continue
			}
			if !strings.Contains(err.Error(), "injected substrate failure") {
				t.Errorf("%v/%v: err = %v", kind, mode, err)
			}
		}
	}
}

// TestFaultInMergeStage lands the failure inside the in-order merge stage:
// md5Det's print_int runs in the final sequential stage of DSWP/PS-DSWP,
// which merges parallel-stage tokens back into iteration order.
func TestFaultInMergeStage(t *testing.T) {
	cp := compileFor(t, md5Det, 8)
	for _, kind := range []transform.Kind{transform.DSWP, transform.PSDSWP} {
		s := cp.sched[kind]
		if s == nil {
			continue
		}
		for _, mode := range allSyncModes {
			for _, failAt := range []int{1, 5, 20} {
				fw := &failingWorld{name: "print_int", failAt: failAt}
				cfg := cp.cfg
				cfg.Builtins = fw.builtins()
				_, err := exec.Run(cfg, cp.la, s, mode, 4)
				if err == nil {
					t.Errorf("%v/%v failAt=%d: merge-stage fault not propagated", kind, mode, failAt)
					continue
				}
				if !strings.Contains(err.Error(), "injected substrate failure") {
					t.Errorf("%v/%v failAt=%d: err = %v", kind, mode, failAt, err)
				}
			}
		}
	}
}

func TestOneThreadDegenerate(t *testing.T) {
	cp := compileFor(t, md5Full, 8)
	seqCost, seqOut := cp.seqRun(t)
	// Every parallel schedule on a single thread must still be correct and
	// cost roughly the sequential time (plus bounded overhead).
	for _, kind := range []transform.Kind{transform.DOALL, transform.PSDSWP} {
		if cp.sched[kind] == nil {
			continue
		}
		m, out := cp.parRun(t, kind, exec.SyncSpin, 1)
		if len(out) != len(seqOut) {
			t.Errorf("%v@1: output count %d != %d", kind, len(out), len(seqOut))
		}
		overhead := float64(m)/float64(seqCost) - 1
		if overhead > 0.25 {
			t.Errorf("%v@1: overhead %.0f%% too high", kind, overhead*100)
		}
	}
}

func TestManyMoreThreadsThanIterations(t *testing.T) {
	cp := compileFor(t, `
#pragma commset decl FSET
#pragma commset predicate FSET (i1)(i2) : i1 != i2
void main() {
	int total = 0;
	for (int i = 0; i < 3; i++) {
		int d = digest(i);
		#pragma commset member FSET(i), SELF
		{ total += d; }
	}
	print_int(total);
}`, 16)
	_, seqOut := cp.seqRun(t)
	_, parOut := cp.parRun(t, transform.DOALL, exec.SyncSpin, 16)
	if parOut[0] != seqOut[0] {
		t.Errorf("16 threads over 3 iterations: %v vs %v", parOut, seqOut)
	}
}

func TestQueueCapConfig(t *testing.T) {
	cp := compileFor(t, md5Det, 4)
	if cp.sched[transform.PSDSWP] == nil {
		t.Skip("no PS-DSWP")
	}
	cfg := cp.cfg
	cfg.QueueCap = 1 // minimum capacity still drains correctly
	w := &world{}
	cfg.Builtins = w.builtins()
	_, err := exec.Run(cfg, cp.la, cp.sched[transform.PSDSWP], exec.SyncSpin, 4)
	if err != nil {
		t.Fatalf("queue cap 1: %v", err)
	}
	if len(w.prints) != 33 {
		t.Errorf("printed %d lines, want 33", len(w.prints))
	}
}

func TestTMLogBounded(t *testing.T) {
	// A long TM run must not grow the conflict log unboundedly (bounded at
	// tmLogCap); indirectly verified by completing a large run quickly and
	// correctly.
	cp := compileFor(t, md5Full, 8)
	_, seqOut := cp.seqRun(t)
	_, parOut := cp.parRun(t, transform.DOALL, exec.SyncTM, 8)
	if parOut[len(parOut)-1] != seqOut[len(seqOut)-1] {
		t.Error("TM run final total differs")
	}
}
