package exec

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/pipeline"
	"repro/internal/transform"
	"repro/internal/vm/des"
	"repro/internal/vm/value"
)

// Service mode turns the closed batch loop into an open system: requests
// arrive on their own seeded schedule (des.Arrivals), pass a deterministic
// admission controller (per-class virtual-time token buckets plus a bounded
// ingress queue), and each admitted request binds one loop iteration. The
// loop-control machinery stays on the dispatcher exactly as in batch mode,
// so a completed service run computes the same live-outs and externalizes a
// prefix-consistent subset of the sequential run's effects — one effect
// bundle per completed request.
//
// Every generated request lands in exactly one accounting bucket — completed,
// shed (admission), shed (full ingress), deadline-abandoned, rejected
// (drained after a diagnosed failure or a closed loop), or failed — and
// RunService verifies the balance before returning (zero silent drops).

// ServiceClass is one admission class: a virtual-time token bucket plus the
// degradation-ladder level at which the class is shed outright.
type ServiceClass struct {
	Name string `json:"name"`
	// Rate is the bucket refill rate in requests per 1e6 virtual-time
	// units; ≤ 0 disables rate limiting for the class.
	Rate float64 `json:"rate,omitempty"`
	// Burst is the bucket depth (default 8).
	Burst float64 `json:"burst,omitempty"`
	// ShedAtLevel, when positive, sheds the class at admission once the
	// degradation ladder reaches that level.
	ShedAtLevel int `json:"shed_at_level,omitempty"`
}

// ServiceConfig describes one open-system run.
type ServiceConfig struct {
	// Arrivals generates the interarrival gaps; Requests bounds the trace.
	Arrivals des.Arrivals
	Requests int

	// IngressCap bounds the ingress queue (default 64); arrivals beyond a
	// full ingress are shed (backpressure reaches the admission controller
	// rather than blocking the arrival process).
	IngressCap int

	// Deadline, when positive, abandons requests still queued that long
	// after arrival; the dispatcher charges AbandonCost (default 100)
	// virtual-time units per abandonment.
	Deadline    int64
	AbandonCost int64

	// SLO is the target virtual latency; completions within it count toward
	// SLO attainment (≤ 0 disables the distinction).
	SLO int64

	// Classes are the admission classes (default: one unlimited class);
	// ClassOf maps request ordinal to class index (default: class 0).
	Classes []ServiceClass
	ClassOf func(k int) int

	// Scaler, when set, runs the online recalibration controller and the
	// degradation ladder.
	Scaler *ScalerConfig

	// EstReqCost seeds the controller's per-request service-cost estimate
	// until the first window completes requests to measure.
	EstReqCost int64
}

func (c *ServiceConfig) ingressCap() int {
	if c.IngressCap > 0 {
		return c.IngressCap
	}
	return 64
}

func (c *ServiceConfig) abandonCost() int64 {
	if c.AbandonCost > 0 {
		return c.AbandonCost
	}
	return 100
}

// svcReq is one arrival in the ingress queue (k < 0 is the end-of-trace
// sentinel).
type svcReq struct {
	k       int
	arrival int64
}

// svcWork is one dispatched request in the DOALL service queue.
type svcWork struct {
	iter    int64
	arrival int64
	stop    bool
	locals  []value.Value
}

// svcJoin is the completion message of one DOALL service worker.
type svcJoin struct {
	w        int
	fr       *frame
	lastIter int64
}

// svcState is the shared service-mode bookkeeping. The simulator serializes
// threads, so plain fields suffice.
type svcState struct {
	cfg     *ServiceConfig
	ingress *des.Queue
	pool    bool // DOALL worker pool (scalable); pipelines are structural
	threads int

	// Admission token buckets (one per class).
	tokens  []float64
	tokLast int64

	// Accounting (the zero-silent-drop identity).
	generated  int
	admitted   int
	completed  int
	shedBucket int
	shedQueue  int
	abandoned  int
	rejected   int
	failed     int

	lat            []int64
	withinSLO      int
	firstArrival   int64
	lastCompletion int64
	estCost        int64

	// Window deltas consumed by the controller.
	wArrivals  int
	wCompleted int
	wWithinSLO int
	wShedQueue int
	wSvcCost   int64
	wSvcCostN  int

	draining bool

	// Worker-pool state (DOALL only).
	live        []bool
	nLive       int
	target      int
	level       int
	maxLevel    int
	badRun      int
	goodRun     int
	scaleEvents []ScaleEvent
	deadWorkers int

	// steals counts backlog requests served by parked workers (Tune.Steal).
	steals int
}

func newSvcState(cfg *ServiceConfig, threads int, pool bool) *svcState {
	sv := &svcState{cfg: cfg, threads: threads, pool: pool, target: threads}
	if len(cfg.Classes) == 0 {
		cfg.Classes = []ServiceClass{{Name: "default"}}
	}
	sv.tokens = make([]float64, len(cfg.Classes))
	for i, c := range cfg.Classes {
		sv.tokens[i] = c.burst()
	}
	sv.live = make([]bool, threads)
	for i := range sv.live {
		sv.live[i] = true
	}
	sv.nLive = threads
	sv.estCost = cfg.EstReqCost
	return sv
}

func (c ServiceClass) burst() float64 {
	if c.Burst > 0 {
		return c.Burst
	}
	return 8
}

// admit runs the admission controller for request k arriving now. A denied
// request is accounted before returning.
func (sv *svcState) admit(now int64, k int) bool {
	sv.generated++
	sv.wArrivals++
	if sv.firstArrival == 0 {
		sv.firstArrival = now
	}
	class := 0
	if sv.cfg.ClassOf != nil {
		class = sv.cfg.ClassOf(k)
	}
	if class < 0 || class >= len(sv.cfg.Classes) {
		class = 0
	}
	c := sv.cfg.Classes[class]
	// Ladder shed: the class is turned away outright at this level.
	if c.ShedAtLevel > 0 && sv.level >= c.ShedAtLevel {
		sv.shedBucket++
		return false
	}
	// Token bucket in virtual time.
	if c.Rate > 0 {
		elapsed := now - sv.tokLast
		sv.tokLast = now
		for i, cl := range sv.cfg.Classes {
			if cl.Rate <= 0 {
				continue
			}
			sv.tokens[i] += float64(elapsed) * cl.Rate / 1e6
			if b := cl.burst(); sv.tokens[i] > b {
				sv.tokens[i] = b
			}
		}
		if sv.tokens[class] < 1 {
			sv.shedBucket++
			return false
		}
		sv.tokens[class]--
	}
	// Bounded ingress: backpressure sheds instead of blocking arrivals.
	if sv.ingress.Len() >= sv.cfg.ingressCap() {
		sv.shedQueue++
		sv.wShedQueue++
		return false
	}
	sv.admitted++
	return true
}

// complete records one finished request.
func (sv *svcState) complete(arrival, now, cost int64) {
	l := now - arrival
	sv.lat = append(sv.lat, l)
	sv.completed++
	sv.wCompleted++
	if sv.cfg.SLO <= 0 || l <= sv.cfg.SLO {
		sv.withinSLO++
		sv.wWithinSLO++
	}
	if now > sv.lastCompletion {
		sv.lastCompletion = now
	}
	if cost > 0 {
		sv.wSvcCost += cost
		sv.wSvcCostN++
	}
}

// markDead retires worker w permanently; the last death fails the run.
func (sv *svcState) markDead(m *machine, w int, vtime int64) {
	if w < len(sv.live) && sv.live[w] {
		sv.live[w] = false
		sv.nLive--
		sv.deadWorkers++
	}
	if sv.nLive == 0 {
		role := fmt.Sprintf("svc.%d", w)
		m.fail(role, &CrashError{Thread: role, VTime: vtime, Perm: true,
			Reason: "permanent crash with no surviving service workers"})
	}
}

// mayServe reports whether pool worker w is in the active set: the target's
// first live workers by index serve, the rest park (scaled down).
func (sv *svcState) mayServe(w int) bool {
	if !sv.pool {
		return true
	}
	if w < len(sv.live) && !sv.live[w] {
		return false
	}
	rank := 0
	for i := 0; i < w && i < len(sv.live); i++ {
		if sv.live[i] {
			rank++
		}
	}
	return rank < sv.target
}

// parkQuantum is how long a scaled-down worker sleeps between activation
// checks.
func (sv *svcState) parkQuantum() int64 {
	if sc := sv.cfg.Scaler; sc != nil {
		return sc.window() / 2
	}
	return 10000
}

// stealBacklog is the dispatch-queue depth at which a parked worker steals
// a request instead of sleeping: once every active worker has at least one
// request queued, head-of-line blocking behind a heavy request is certain,
// so idle capacity drains it. A pure function of the pool size, keeping
// the decision deterministic.
func (sv *svcState) stealBacklog() int {
	if sv.threads > 2 {
		return sv.threads
	}
	return 2
}

// admissionState renders the controller state for stall diagnostics
// (Scheduler.DiagNote): a stalled service run names its ladder level, pool
// target, and bucket fills alongside the saturated queue.
func (sv *svcState) admissionState() string {
	s := fmt.Sprintf("admission: level=%d workers=%d/%d live=%d", sv.level, sv.target, sv.threads, sv.nLive)
	for i, c := range sv.cfg.Classes {
		if c.Rate > 0 {
			s += fmt.Sprintf(" %s=%.1f", c.Name, sv.tokens[i])
		}
	}
	s += fmt.Sprintf(" generated=%d completed=%d shed=%d abandoned=%d",
		sv.generated, sv.completed, sv.shedBucket+sv.shedQueue, sv.abandoned)
	return s
}

// balance checks the zero-silent-drop identity.
func (sv *svcState) balance() error {
	sum := sv.completed + sv.shedBucket + sv.shedQueue + sv.abandoned + sv.rejected + sv.failed
	if sum != sv.generated {
		return fmt.Errorf("exec: service accounting violation: generated %d != completed %d + shed %d+%d + abandoned %d + rejected %d + failed %d",
			sv.generated, sv.completed, sv.shedBucket, sv.shedQueue, sv.abandoned, sv.rejected, sv.failed)
	}
	if sv.admitted != sv.completed+sv.abandoned+sv.rejected+sv.failed {
		return fmt.Errorf("exec: service accounting violation: admitted %d != completed %d + abandoned %d + rejected %d + failed %d",
			sv.admitted, sv.completed, sv.abandoned, sv.rejected, sv.failed)
	}
	return nil
}

// ServiceResult reports one service run.
type ServiceResult struct {
	Schedule string `json:"schedule"`
	Sync     string `json:"sync"`
	Threads  int    `json:"threads"`
	Arrivals string `json:"arrivals"`
	Makespan int64  `json:"makespan"`

	Generated  int `json:"generated"`
	Admitted   int `json:"admitted"`
	Completed  int `json:"completed"`
	ShedBucket int `json:"shed_bucket"`
	ShedQueue  int `json:"shed_queue"`
	Abandoned  int `json:"abandoned"`
	Rejected   int `json:"rejected"`
	Failed     int `json:"failed"`

	P50           int64   `json:"p50"`
	P99           int64   `json:"p99"`
	P999          int64   `json:"p999"`
	MaxLatency    int64   `json:"max_latency"`
	WithinSLO     int     `json:"within_slo"`
	SLOAttainment float64 `json:"slo_attainment"`
	// ThroughputPerMvt is completions per 1e6 virtual-time units over the
	// span from first arrival to last completion.
	ThroughputPerMvt float64 `json:"throughput_per_mvt"`
	ShedRate         float64 `json:"shed_rate"`

	IngressHighWater int            `json:"ingress_high_water"`
	QueueHighWater   map[string]int `json:"queue_high_water,omitempty"`

	Level       int          `json:"level"`
	MaxLevel    int          `json:"max_level"`
	ScaleEvents []ScaleEvent `json:"scale_events,omitempty"`
	EstReqCost  int64        `json:"est_req_cost,omitempty"`

	CallRetries    int             `json:"call_retries,omitempty"`
	IterRetries    int             `json:"iter_retries,omitempty"`
	Restarts       int             `json:"restarts,omitempty"`
	DeadWorkers    int             `json:"dead_workers,omitempty"`
	RestartHistory []RestartRecord `json:"restart_history,omitempty"`
	// Steals counts backlog requests served by parked (scaled-down)
	// workers under Tune.Steal — the anti-head-of-line-blocking path.
	Steals int `json:"steals,omitempty"`

	Attempts int           `json:"attempts,omitempty"`
	FellBack bool          `json:"fell_back,omitempty"`
	Aborted  *ServiceAbort `json:"aborted,omitempty"`
}

// ServiceAbort summarizes a failed parallel service attempt — the evidence
// (ladder walk, restart count, accounting) carried alongside the fallback's
// result.
type ServiceAbort struct {
	Err         string       `json:"err"`
	MaxLevel    int          `json:"max_level"`
	ScaleEvents []ScaleEvent `json:"scale_events,omitempty"`
	Restarts    int          `json:"restarts,omitempty"`
	Generated   int          `json:"generated"`
	Completed   int          `json:"completed"`
	Shed        int          `json:"shed"`
	Abandoned   int          `json:"abandoned"`
}

// pct returns the nearest-rank percentile of the (sorted) latency sample.
func pct(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// result assembles the report from the run's final state.
func (sv *svcState) result(m *machine, sched *transform.Schedule, mode SyncMode, threads int, makespan int64, sim *des.Scheduler) *ServiceResult {
	res := &ServiceResult{
		Schedule: sched.String(),
		Sync:     mode.String(),
		Threads:  threads,
		Arrivals: sv.cfg.Arrivals.Name(),
		Makespan: makespan,

		Generated:  sv.generated,
		Admitted:   sv.admitted,
		Completed:  sv.completed,
		ShedBucket: sv.shedBucket,
		ShedQueue:  sv.shedQueue,
		Abandoned:  sv.abandoned,
		Rejected:   sv.rejected,
		Failed:     sv.failed,

		WithinSLO: sv.withinSLO,

		Level:       sv.level,
		MaxLevel:    sv.maxLevel,
		ScaleEvents: sv.scaleEvents,
		EstReqCost:  sv.estCost,

		CallRetries:    m.stats.callRetries,
		IterRetries:    m.stats.iterRetries,
		Restarts:       m.stats.restarts,
		DeadWorkers:    sv.deadWorkers,
		RestartHistory: m.restarts,
		Steals:         sv.steals,
	}
	lat := append([]int64(nil), sv.lat...)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	res.P50 = pct(lat, 0.50)
	res.P99 = pct(lat, 0.99)
	res.P999 = pct(lat, 0.999)
	if n := len(lat); n > 0 {
		res.MaxLatency = lat[n-1]
	}
	if sv.admitted > 0 {
		res.SLOAttainment = float64(sv.withinSLO) / float64(sv.admitted)
	} else {
		res.SLOAttainment = 1
	}
	if span := sv.lastCompletion - sv.firstArrival; span > 0 {
		res.ThroughputPerMvt = float64(sv.completed) * 1e6 / float64(span)
	}
	if sv.generated > 0 {
		res.ShedRate = float64(sv.shedBucket+sv.shedQueue) / float64(sv.generated)
	}
	if sv.ingress != nil {
		res.IngressHighWater = sv.ingress.HighWater()
	}
	if sim != nil {
		for _, d := range sim.QueueDiags() {
			if d.Name == "ingress" || d.HighWater == 0 {
				continue
			}
			if res.QueueHighWater == nil {
				res.QueueHighWater = map[string]int{}
			}
			res.QueueHighWater[d.Name] = d.HighWater
		}
	}
	return res
}

// RunService executes the target loop as an open-system service. Unlike Run,
// a non-nil *ServiceResult accompanies most errors so the fallback machinery
// can carry the aborted attempt's degradation evidence.
func RunService(cfg Config, svc ServiceConfig, la *pipeline.LoopAnalysis, sched *transform.Schedule, mode SyncMode, threads int) (*ServiceResult, error) {
	if svc.Arrivals == nil || svc.Requests <= 0 {
		return nil, fmt.Errorf("exec: service config needs an arrival process and a positive request count")
	}
	if la.Fn.Name != "main" {
		return nil, fmt.Errorf("exec: target loop must be in main, not %s", la.Fn.Name)
	}
	if sched == nil {
		sched = &transform.Schedule{Kind: transform.Sequential}
	}
	if threads < 1 || sched.Kind == transform.Sequential {
		threads = 1
	}
	if sched.Kind == transform.Sequential && svc.Scaler != nil && svc.Scaler.AllowFallback {
		// The sequential service IS the ladder's final rung: there is
		// nothing further to fall back to, so the ladder tops out at
		// shedding (level 2 clamps to the already-minimal pool).
		sc := *svc.Scaler
		sc.AllowFallback = false
		svc.Scaler = &sc
	}
	// A service is always resilient: requests are isolated and recovery cost
	// shows up as latency, never as an aborted trace.
	if cfg.Recovery == nil {
		cfg.Recovery = DefaultRecovery()
	}
	// Service mode owns pacing: no calibration slices, no one-shot
	// auto-tuning (the controller recalibrates online), and — with a crash
	// plan armed — per-token queue transfers so no request rides an
	// unflushed batch buffer into a crash window.
	cfg.Auto = nil
	cfg.MaxIters = 0
	cfg.Tune.Privatize = false
	if cfg.CrashCheck != nil {
		cfg.Tune.Batch = 1
	}

	m := newMachine(cfg, la, sched, mode)
	sv := newSvcState(&svc, threads, sched.Kind == transform.DOALL)
	m.svc = sv
	sim := des.New(cfg.Cost)
	sim.Watchdog = cfg.Watchdog
	sim.DiagNote = sv.admissionState
	m.sim = sim
	for _, set := range cfg.Model.Sets {
		kind := des.Mutex
		if mode == SyncSpin || mode == SyncTM {
			kind = des.Spin
		}
		m.locks[set] = sim.NewLock("set:"+set.Name, kind)
	}

	var runErr error
	sim.Spawn("main", 0, func(th *des.Thread) error {
		err := m.runServiceMain(th, threads)
		if err != nil {
			runErr = err
		}
		return err
	})
	makespan, simErr := sim.Run()
	res := sv.result(m, sched, mode, threads, makespan, sim)
	if m.failDiag != nil {
		return res, m.failDiag
	}
	if simErr != nil {
		return res, simErr
	}
	if runErr != nil {
		return res, runErr
	}
	if err := sv.balance(); err != nil {
		return res, err
	}
	return res, nil
}

// runServiceMain is the service counterpart of runMain: prologue, promote,
// arrival + controller threads, the service loop, demote, epilogue.
func (m *machine) runServiceMain(th *des.Thread, threads int) error {
	f := m.la.Fn
	fr := newFrame(f)
	st := m.newStepper(th, fr)
	if err := st.runBlocks(0, m.la.Loop.Header); err != nil {
		return err
	}
	for slot, cell := range m.cells {
		cell.v = fr.locals[slot]
	}

	sv := m.svc
	sv.ingress = m.sim.NewQueue("ingress", sv.cfg.ingressCap()+1) // +1: the stop sentinel never blocks admission
	m.spawnArrivals(th)
	if sv.cfg.Scaler != nil {
		m.sim.Spawn("svc-ctl", th.VTime, func(cth *des.Thread) error {
			return m.svcController(cth)
		})
	}

	// The dispatcher steps loop control on the main frame directly, with
	// shared-cell interposition active (control may read promoted slots).
	dst := m.newStepper(th, fr)
	dst.sharedActive = true
	var err error
	switch m.sched.Kind {
	case transform.Sequential:
		err = m.svcSequential(th, dst)
	case transform.DOALL:
		err = m.svcDOALL(th, dst, fr, threads)
	case transform.DSWP, transform.PSDSWP:
		err = m.svcPipeline(th, dst, fr, threads)
	default:
		err = fmt.Errorf("exec: unsupported service schedule kind %v", m.sched.Kind)
	}
	if err != nil {
		return err
	}

	for slot, cell := range m.cells {
		fr.locals[slot] = cell.v
	}
	if m.exitBlock < 0 {
		return nil
	}
	return st.runBlocks(m.exitBlock, -1)
}

// spawnArrivals starts the request-generation thread: per request, sleep the
// process gap, run admission, and push admitted requests into the ingress
// queue. A sentinel closes the trace.
func (m *machine) spawnArrivals(th *des.Thread) {
	sv := m.svc
	m.sim.Spawn("arrivals", th.VTime, func(ath *des.Thread) error {
		for k := 0; k < sv.cfg.Requests; k++ {
			ath.Sleep(sv.cfg.Arrivals.Next())
			if sv.admit(ath.VTime, k) {
				ath.Push(sv.ingress, svcReq{k: k, arrival: ath.VTime})
			}
		}
		ath.Push(sv.ingress, svcReq{k: -1})
		return nil
	})
}

// svcNext pops the next serviceable request, running loop control for it.
// Deadline-expired requests are abandoned here — timeout abandonment charged
// in virtual time — and once the run is failed (or the loop condition
// closes), the remaining trace drains as rejected. ok=false ends the trace.
func (m *machine) svcNext(th *des.Thread, st *stepper, closed *bool) (svcReq, bool) {
	sv := m.svc
	for {
		req := th.Pop(sv.ingress).(svcReq)
		if req.k < 0 {
			return req, false
		}
		if m.failed() {
			sv.rejected++
			continue
		}
		if d := sv.cfg.Deadline; d > 0 && th.VTime-req.arrival > d {
			sv.abandoned++
			th.Charge(sv.cfg.abandonCost())
			continue
		}
		if !*closed {
			exit, err := m.runCond(st)
			if err != nil {
				m.fail("dispatcher", err)
				sv.rejected++
				continue
			}
			if exit {
				*closed = true
			}
		}
		if *closed {
			sv.rejected++
			continue
		}
		return req, true
	}
}

// svcSequential serves the trace one request at a time on the dispatcher —
// the sequential service baseline and the degradation ladder's final rung.
func (m *machine) svcSequential(th *des.Thread, st *stepper) error {
	sv := m.svc
	closed := false
	for {
		req, ok := m.svcNext(th, st, &closed)
		if !ok {
			break
		}
		start := th.VTime
		if err := m.runIterBody(st, st.fr); err != nil {
			sv.failed++
		} else {
			sv.complete(req.arrival, th.VTime, th.VTime-start)
		}
		if _, err := st.runGroup(m.la.Units.Post); err != nil {
			m.fail("dispatcher", err)
		}
	}
	sv.draining = true
	if m.failDiag != nil {
		return m.failDiag
	}
	return nil
}

// svcWorkerState is the restartable identity of one pool worker role.
type svcWorkerState struct {
	w        int
	role     string
	lastIter int64
	served   int64 // crash-tick ordinal (serve-loop passes)

	restartsLeft int
	restartN     int
}

// svcDOALL serves the trace over a scalable pool of stateless workers: the
// dispatcher binds each admitted request to one loop iteration and queues a
// frame snapshot; any active worker executes it.
func (m *machine) svcDOALL(th *des.Thread, st *stepper, mainFr *frame, threads int) error {
	sv := m.svc
	dispatch := m.sim.NewQueue("svcq", m.cfg.queueCap())
	if m.cfg.PushDelay != nil {
		dispatch.Stall = func() int64 { return m.cfg.PushDelay("svcq") }
	}
	join := m.sim.NewQueue("svc.join", threads)
	for w := 0; w < threads; w++ {
		w := w
		m.sim.Spawn(fmt.Sprintf("svc.%d", w), th.VTime, func(wth *des.Thread) error {
			ws := &svcWorkerState{w: w, role: fmt.Sprintf("svc.%d", w), lastIter: -1}
			ws.restartsLeft = m.cfg.Recovery.maxRestarts()
			wst := m.newStepper(wth, mainFr.clone())
			wst.sharedActive = true
			return m.svcServe(wth, wst, ws, mainFr, dispatch, join)
		})
	}

	closed := false
	var iter int64
	for {
		req, ok := m.svcNext(th, st, &closed)
		if !ok {
			break
		}
		locals := make([]value.Value, len(st.fr.locals))
		copy(locals, st.fr.locals)
		th.Push(dispatch, svcWork{iter: iter, arrival: req.arrival, locals: locals})
		if _, err := st.runGroup(m.la.Units.Post); err != nil {
			m.fail("dispatcher", err)
		}
		iter++
	}
	sv.draining = true
	if m.failed() {
		// The pool may be gone: reclaim undispatched work so every admitted
		// request stays accounted.
		for dispatch.Len() > 0 {
			if wk, ok := th.Pop(dispatch).(svcWork); ok && !wk.stop {
				sv.rejected++
			}
		}
	}
	th.Push(dispatch, svcWork{stop: true})

	var lastFr *frame
	lastIter := int64(-1)
	for i := 0; i < threads; i++ {
		d := th.Pop(join).(svcJoin)
		if d.fr != nil && d.lastIter > lastIter {
			lastIter, lastFr = d.lastIter, d.fr
		}
	}
	if m.failDiag != nil {
		return m.failDiag
	}
	if lastFr != nil {
		for slot := range m.bodyWrites() {
			if !m.isShared(slot) {
				mainFr.locals[slot] = lastFr.locals[slot]
			}
		}
	}
	return nil
}

// svcServe is one pool worker's serve loop, shared by the original
// incarnation and crash replacements. A scaled-down worker parks; crash
// ticks fire at the top of an active pass, before anything is popped, so a
// death never strands a request (completed work is output-committed at the
// request boundary).
func (m *machine) svcServe(th *des.Thread, st *stepper, ws *svcWorkerState, mainFr *frame, dispatch, join *des.Queue) error {
	sv := m.svc
	fr := st.fr
	serve := func(wk svcWork) {
		sv.steals++
		for i, v := range wk.locals {
			fr.locals[i] = v
		}
		slow := m.straggleAt(ws.role)
		start := th.VTime
		err := m.runIterBody(st, fr)
		straggleCharge(th, slow, th.VTime-start)
		if err != nil {
			sv.failed++
			return
		}
		ws.lastIter = wk.iter
		sv.complete(wk.arrival, th.VTime, th.VTime-start)
	}
	for {
		if !sv.mayServe(ws.w) {
			if sv.draining {
				break // active workers drain the backlog; parked ones retire
			}
			if m.cfg.Tune.Steal && dispatch.Len() >= sv.stealBacklog() {
				// Steal routing: the backlog says every active worker is
				// busy (likely head-of-line blocked behind a heavy
				// request), so a parked worker drains one request instead
				// of sleeping through the spike. Steal passes consume no
				// crash ticks — those belong to the active serve loop.
				wk := th.Pop(dispatch).(svcWork)
				if wk.stop {
					th.Push(dispatch, wk)
				} else if m.failed() {
					sv.rejected++
				} else {
					serve(wk)
				}
				continue
			}
			th.Sleep(sv.parkQuantum())
			continue
		}
		if die, perm := m.crashAt(ws.role); die {
			return m.svcCrash(th, ws, mainFr, dispatch, join, perm)
		}
		wk := th.Pop(dispatch).(svcWork)
		if wk.stop {
			th.Push(dispatch, wk) // leave the sentinel for the siblings
			break
		}
		ws.served++
		if m.failed() {
			sv.rejected++
			continue
		}
		for i, v := range wk.locals {
			fr.locals[i] = v
		}
		slow := m.straggleAt(ws.role)
		start := th.VTime
		if err := m.runIterBody(st, fr); err != nil {
			// Request isolation: the failure is charged to this request
			// alone; the worker stays up for the rest of the trace.
			straggleCharge(th, slow, th.VTime-start)
			sv.failed++
			continue
		}
		straggleCharge(th, slow, th.VTime-start)
		ws.lastIter = wk.iter
		sv.complete(wk.arrival, th.VTime, th.VTime-start)
		if m.checkpointing() {
			// Output-commit at the request boundary: the response is
			// externalized, so the role's resumable state is simply the top
			// of the next pass.
			th.Charge(m.cfg.Cost.Checkpoint)
		}
	}
	th.Push(join, svcJoin{w: ws.w, fr: fr, lastIter: ws.lastIter})
	return nil
}

// svcCrash handles a crash tick on a pool worker. Transient deaths respawn
// the role after the supervisor delay — stateless workers restore by cloning
// the loop-entry frame, since completed requests were output-committed and
// no request was in flight at the tick. Permanent deaths retire the role;
// the pool absorbs its share, and the last death fails the run.
func (m *machine) svcCrash(th *des.Thread, ws *svcWorkerState, mainFr *frame, dispatch, join *des.Queue, perm bool) error {
	sv := m.svc
	reason := "injected crash"
	if perm {
		reason = "injected permanent crash"
	}
	if !perm && ws.restartsLeft <= 0 {
		perm = true
		reason = "crash with restart budget exhausted"
	}
	m.restarts = append(m.restarts, RestartRecord{
		Thread: ws.role, VTime: th.VTime, Event: ws.served, Permanent: perm,
	})
	ri := len(m.restarts) - 1
	m.sim.RecordDeath(ws.role, th.VTime, reason)
	if perm {
		sv.markDead(m, ws.w, th.VTime)
		th.Push(join, svcJoin{w: ws.w, fr: nil, lastIter: ws.lastIter})
		return nil
	}
	m.stats.restarts++
	r := m.cfg.Recovery
	n := ws.restartN + 1
	ws2 := &svcWorkerState{
		w: ws.w, role: ws.role, lastIter: ws.lastIter, served: ws.served,
		restartsLeft: ws.restartsLeft - 1, restartN: n,
	}
	m.sim.Spawn(fmt.Sprintf("%s#r%d", ws.role, n), th.VTime+r.restartDelay(), func(th2 *des.Thread) error {
		th2.Charge(m.cfg.Cost.Restore)
		m.restarts[ri].RecoveredVTime = th2.VTime
		st2 := m.newStepper(th2, mainFr.clone())
		st2.sharedActive = true
		return m.svcServe(th2, st2, ws2, mainFr, dispatch, join)
	})
	return nil
}

// svcPipeline serves the trace through the DSWP/PS-DSWP stage network. The
// stage workers are the batch-mode ones (stageWorker/stageRun) — service
// awareness lives in the token's arrival stamp, the last stage's completion
// hook, and the accounting of discarded tokens; the crash/checkpoint layer
// works unchanged.
func (m *machine) svcPipeline(th *des.Thread, st *stepper, mainFr *frame, threads int) error {
	sv := m.svc
	stages := m.sched.Stages
	if len(stages) < 2 {
		return fmt.Errorf("exec: pipeline schedule needs at least 2 stages")
	}
	reps := stageReps(stages, threads)
	qs := make([][]*des.Queue, len(stages)-1)
	for i := 0; i < len(stages)-1; i++ {
		n := reps[i]
		if reps[i+1] > n {
			n = reps[i+1]
		}
		qs[i] = make([]*des.Queue, n)
		for k := 0; k < n; k++ {
			q := m.sim.NewQueue(fmt.Sprintf("q%d.%d", i, k), m.cfg.queueCap())
			if m.cfg.PushDelay != nil {
				name := q.Name
				q.Stall = func() int64 { return m.cfg.PushDelay(name) }
			}
			qs[i][k] = q
		}
	}
	owner := m.slotOwners()
	nWorkers := 0
	for si := 1; si < len(stages); si++ {
		nWorkers += reps[si]
	}
	join := m.sim.NewQueue("pipe.join", nWorkers+1)
	ff := m.flowForward()
	for si := 1; si < len(stages); si++ {
		for rep := 0; rep < reps[si]; rep++ {
			si, rep := si, rep
			m.sim.Spawn(fmt.Sprintf("stage%d.%d", si, rep), th.VTime, func(wth *des.Thread) error {
				return m.stageWorker(wth, mainFr, si, rep, reps, qs, ff, join)
			})
		}
	}

	out := newWriters(qs[0], m.cfg.Tune.BatchSize())
	fr := st.fr
	closed := false
	var iter int64
	for {
		req, ok := m.svcNext(th, st, &closed)
		if !ok {
			break
		}
		locals := make([]value.Value, len(fr.locals))
		copy(locals, fr.locals)
		bad := false
		for _, u := range stages[0].Units {
			if _, err := st.runGroup(m.la.Units.Units[u]); err != nil {
				m.fail("dispatcher", err)
				sv.failed++
				bad = true
				break
			}
		}
		if !bad {
			for slot := range ff[0] {
				locals[slot] = fr.locals[slot]
			}
			st.flush()
			out[int(iter)%len(out)].push(th, token{iter: iter, arrival: req.arrival, locals: locals})
		}
		if _, err := st.runGroup(m.la.Units.Post); err != nil {
			m.fail("dispatcher", err)
		}
		iter++
	}
	sv.draining = true
	st.flush()
	for _, w := range out {
		w.push(th, token{stop: true, poison: m.failed()})
		w.flush(th)
	}

	type best struct {
		iter int64
		fr   *frame
	}
	finals := make([]best, len(stages))
	for i := range finals {
		finals[i].iter = -1
	}
	for i := 0; i < nWorkers; i++ {
		j := th.Pop(join).(pipeJoin)
		if j.lastIter > finals[j.stage].iter {
			finals[j.stage] = best{iter: j.lastIter, fr: j.fr}
		}
	}
	if m.failDiag != nil {
		return m.failDiag
	}
	// Stage 0 ran on the main frame directly; merge the rest by ownership.
	for slot, stg := range owner {
		if stg == 0 || m.isShared(slot) {
			continue
		}
		if finals[stg].fr != nil {
			mainFr.locals[slot] = finals[stg].fr.locals[slot]
		}
	}
	return nil
}

// ServiceRoster lists the worker roles a service run spawns, split into the
// structurally required set and the set the degradation ladder may scale
// away. A DOALL pool keeps Scaler.MinWorkers (default 1) always-on workers;
// pipeline stages are structural, so the whole roster is always-on.
func ServiceRoster(sched *transform.Schedule, threads, minWorkers int) (always, scalable []string) {
	if sched == nil {
		return nil, nil
	}
	if threads < 1 {
		threads = 1
	}
	switch sched.Kind {
	case transform.DOALL:
		if minWorkers < 1 {
			minWorkers = 1
		}
		if minWorkers > threads {
			minWorkers = threads
		}
		for w := 0; w < threads; w++ {
			role := fmt.Sprintf("svc.%d", w)
			if w < minWorkers {
				always = append(always, role)
			} else {
				scalable = append(scalable, role)
			}
		}
	case transform.DSWP, transform.PSDSWP:
		always = CrashRoster(sched, threads)
	}
	return always, scalable
}

// ServiceResilientOptions configures RunServiceResilient.
type ServiceResilientOptions struct {
	LA      *pipeline.LoopAnalysis
	Sched   *transform.Schedule
	Mode    SyncMode
	Threads int

	// Fresh builds a fresh Config and ServiceConfig (new substrate, new
	// arrival-process instance, new fault injector) per execution attempt.
	Fresh func() (Config, ServiceConfig)

	// Accept, when set, validates the accepted run's externalized effects
	// against the sequential reference (one effect bundle per completed
	// request).
	Accept func(res *ServiceResult) error

	// MaxAttempts bounds parallel attempts before the sequential service
	// fallback (default 1: a deterministic trace replays deterministically,
	// so re-attempting only helps when the injected faults differ).
	MaxAttempts int
}

// RunServiceResilient is the degradation ladder's final rung: parallel
// service attempts, then — on a non-transient diagnosis such as an
// OverloadError or a permanently dead pipeline stage — the Accept-verified
// sequential service over a fresh trace.
func RunServiceResilient(opts ServiceResilientOptions) (*ServiceResult, error) {
	max := opts.MaxAttempts
	if max <= 0 {
		max = 1
	}
	attempts := 0
	parallel := opts.Sched != nil && opts.Sched.Kind != transform.Sequential
	var lastErr error
	var aborted *ServiceAbort
	if parallel {
		for a := 0; a < max; a++ {
			attempts++
			cfg, svc := opts.Fresh()
			res, err := RunService(cfg, svc, opts.LA, opts.Sched, opts.Mode, opts.Threads)
			if err == nil {
				if opts.Accept != nil {
					if aerr := opts.Accept(res); aerr != nil {
						lastErr = fmt.Errorf("exec: parallel service output rejected: %w", aerr)
						aborted = abortOf(res, lastErr)
						continue
					}
				}
				res.Attempts = attempts
				return res, nil
			}
			lastErr = err
			aborted = abortOf(res, err)
			if !IsTransient(err) {
				break
			}
		}
	}

	attempts++
	cfg, svc := opts.Fresh()
	res, err := RunService(cfg, svc, opts.LA, nil, opts.Mode, 1)
	if err != nil {
		if lastErr != nil {
			return nil, fmt.Errorf("exec: parallel service failed (%v); sequential service fallback failed: %w", lastErr, err)
		}
		return nil, err
	}
	if opts.Accept != nil {
		if aerr := opts.Accept(res); aerr != nil {
			return nil, fmt.Errorf("exec: sequential service fallback produced divergent output: %w", aerr)
		}
	}
	if parallel {
		res.Schedule = opts.Sched.String() + " (sequential service fallback)"
		res.FellBack = true
	}
	res.Attempts = attempts
	res.Aborted = aborted
	return res, nil
}

// abortOf summarizes a failed attempt's result (which may be nil on
// pre-flight errors).
func abortOf(res *ServiceResult, err error) *ServiceAbort {
	a := &ServiceAbort{Err: err.Error()}
	if res != nil {
		a.MaxLevel = res.MaxLevel
		a.ScaleEvents = res.ScaleEvents
		a.Restarts = res.Restarts
		a.Generated = res.Generated
		a.Completed = res.Completed
		a.Shed = res.ShedBucket + res.ShedQueue
		a.Abandoned = res.Abandoned
	}
	return a
}
