package exec_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/effects"
	"repro/internal/pipeline"
	"repro/internal/source"
	"repro/internal/transform"
	"repro/internal/types"
	"repro/internal/vm/des"
	"repro/internal/vm/exec"
	"repro/internal/vm/interp"
	"repro/internal/vm/value"
)

// world is the test substrate: a fake filesystem and console with cost
// annotations heavy enough for parallelism to pay off.
type world struct {
	prints []string
}

func (w *world) reset() { w.prints = nil }

func (w *world) sigs() map[string]*types.Sig {
	return map[string]*types.Sig{
		"fopen_i":   {Name: "fopen_i", Params: []ast.Type{ast.TInt}, Result: ast.TInt},
		"fread":     {Name: "fread", Params: []ast.Type{ast.TInt}, Result: ast.TInt},
		"fclose":    {Name: "fclose", Params: []ast.Type{ast.TInt}, Result: ast.TVoid},
		"digest":    {Name: "digest", Params: []ast.Type{ast.TInt}, Result: ast.TInt},
		"print_int": {Name: "print_int", Params: []ast.Type{ast.TInt}, Result: ast.TVoid},
		"bound":     {Name: "bound", Params: []ast.Type{ast.TInt}, Result: ast.TInt},
	}
}

func (w *world) effects() effects.Table {
	fs := effects.TagLoc("fs")
	console := effects.TagLoc("io.console")
	return effects.Table{
		"fopen_i":   {Reads: []effects.Loc{fs}, Writes: []effects.Loc{fs}},
		"fread":     {Reads: []effects.Loc{fs}, Writes: []effects.Loc{fs}},
		"fclose":    {Reads: []effects.Loc{fs}, Writes: []effects.Loc{fs}},
		"digest":    {},
		"print_int": {Writes: []effects.Loc{console}},
		"bound":     {},
	}
}

func (w *world) builtins() map[string]interp.BuiltinFn {
	return map[string]interp.BuiltinFn{
		"fopen_i": func(args []value.Value) (value.Value, int64, error) {
			return value.Int(args[0].AsInt() + 1000), 50, nil
		},
		"fread": func(args []value.Value) (value.Value, int64, error) {
			return value.Int(args[0].AsInt() - 1000), 80, nil
		},
		"fclose": func(args []value.Value) (value.Value, int64, error) {
			return value.Void(), 40, nil
		},
		"digest": func(args []value.Value) (value.Value, int64, error) {
			// Real work: a small deterministic mix, costed like hashing.
			v := args[0].AsInt()
			h := uint64(v) * 0x9e3779b97f4a7c15
			h ^= h >> 31
			return value.Int(int64(h % 1000)), 20000, nil
		},
		"print_int": func(args []value.Value) (value.Value, int64, error) {
			w.prints = append(w.prints, fmt.Sprintf("%d", args[0].AsInt()))
			return value.Void(), 100, nil
		},
		// bound is a pure loop-bound helper: calling it in a for-condition
		// plants a builtin call inside the loop-control units.
		"bound": func(args []value.Value) (value.Value, int64, error) {
			return value.Int(args[0].AsInt()), 30, nil
		},
	}
}

// The test programs follow the paper's Figure 1 structure: small
// commutative blocks around the I/O operations, with the heavy digest
// computation outside any commutative region.
const md5Full = `
#pragma commset decl FSET
#pragma commset predicate FSET (i1)(i2) : i1 != i2
void main() {
	int total = 0;
	for (int i = 0; i < 32; i++) {
		int fp = 0;
		int raw = 0;
		#pragma commset member FSET(i), SELF
		{ fp = fopen_i(i); }
		#pragma commset member FSET(i), SELF
		{ raw = fread(fp); }
		int d = digest(raw);
		#pragma commset member FSET(i), SELF
		{
			fclose(fp);
			total += d;
		}
		#pragma commset member FSET(i), SELF
		{ print_int(d); }
	}
	print_int(total);
}
`

const md5Det = `
#pragma commset decl FSET
#pragma commset predicate FSET (i1)(i2) : i1 != i2
void main() {
	int total = 0;
	for (int i = 0; i < 32; i++) {
		int fp = 0;
		int raw = 0;
		#pragma commset member FSET(i), SELF
		{ fp = fopen_i(i); }
		#pragma commset member FSET(i), SELF
		{ raw = fread(fp); }
		int d = digest(raw);
		#pragma commset member FSET(i), SELF
		{
			fclose(fp);
			total += d;
		}
		#pragma commset member FSET(i)
		{ print_int(d); }
	}
	print_int(total);
}
`

type compiled struct {
	w     *world
	c     *pipeline.Compiled
	la    *pipeline.LoopAnalysis
	cfg   exec.Config
	sched map[transform.Kind]*transform.Schedule
}

func compileFor(t *testing.T, src string, threads int) *compiled {
	t.Helper()
	w := &world{}
	c, err := pipeline.Compile(pipeline.Options{
		File:    source.NewFile("t.mc", src),
		Sigs:    w.sigs(),
		Effects: w.effects(),
	})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	loops := c.Loops("main")
	if len(loops) == 0 {
		t.Fatal("no loop")
	}
	la, err := c.AnalyzeLoop("main", loops[0].Header)
	if err != nil {
		t.Fatal(err)
	}
	scheds := map[transform.Kind]*transform.Schedule{}
	for _, s := range transform.Schedules(la, nil, threads) {
		if _, dup := scheds[s.Kind]; !dup {
			scheds[s.Kind] = s
		}
	}
	return &compiled{
		w:  w,
		c:  c,
		la: la,
		cfg: exec.Config{
			Prog:     c.Low.Prog,
			Builtins: w.builtins(),
			Model:    c.Model,
			Cost:     des.DefaultCostModel(),
		},
		sched: scheds,
	}
}

// seqRun returns the sequential baseline cost and output.
func (cp *compiled) seqRun(t *testing.T) (int64, []string) {
	t.Helper()
	cp.w.reset()
	r, err := exec.RunSequential(cp.cfg)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	out := append([]string(nil), cp.w.prints...)
	return r.VirtualTime, out
}

// parRun executes the given schedule and returns makespan and output.
func (cp *compiled) parRun(t *testing.T, kind transform.Kind, mode exec.SyncMode, threads int) (int64, []string) {
	t.Helper()
	s := cp.sched[kind]
	if s == nil {
		t.Fatalf("schedule %v not applicable", kind)
	}
	cp.w.reset()
	r, err := exec.Run(cp.cfg, cp.la, s, mode, threads)
	if err != nil {
		t.Fatalf("%v run: %v", kind, err)
	}
	out := append([]string(nil), cp.w.prints...)
	return r.VirtualTime, out
}

func sortedCopy(xs []string) []string {
	out := append([]string(nil), xs...)
	sort.Strings(out)
	return out
}

func TestDOALLCorrectAndFaster(t *testing.T) {
	cp := compileFor(t, md5Full, 8)
	seqCost, seqOut := cp.seqRun(t)

	par, parOut := cp.parRun(t, transform.DOALL, exec.SyncSpin, 8)

	// Final total (last print) must be exact: the shared accumulator is
	// updated atomically under the commset lock.
	if parOut[len(parOut)-1] != seqOut[len(seqOut)-1] {
		t.Errorf("final total differs: %s vs %s", parOut[len(parOut)-1], seqOut[len(seqOut)-1])
	}
	if len(parOut) != len(seqOut) {
		t.Fatalf("output count %d != %d", len(parOut), len(seqOut))
	}
	speedup := float64(seqCost) / float64(par)
	if speedup < 4 {
		t.Errorf("DOALL on 8 threads speedup = %.2f, want >= 4 (seq %d, par %d)", speedup, seqCost, par)
	}
}

func TestDOALLScalesWithThreads(t *testing.T) {
	cp := compileFor(t, md5Full, 8)
	seqCost, _ := cp.seqRun(t)
	prev := float64(0)
	for _, n := range []int{1, 2, 4, 8} {
		m, _ := cp.parRun(t, transform.DOALL, exec.SyncSpin, n)
		sp := float64(seqCost) / float64(m)
		if n > 1 && sp <= prev {
			t.Errorf("speedup did not grow: %d threads %.2f <= %.2f", n, sp, prev)
		}
		prev = sp
	}
}

func TestPSDSWPDeterministicOutput(t *testing.T) {
	cp := compileFor(t, md5Det, 8)
	seqCost, seqOut := cp.seqRun(t)

	par, parOut := cp.parRun(t, transform.PSDSWP, exec.SyncSpin, 8)

	// The sequential print stage must reproduce the sequential output
	// exactly (deterministic semantics of the Group-only print block).
	if strings.Join(parOut, ",") != strings.Join(seqOut, ",") {
		t.Errorf("PS-DSWP output differs from sequential:\npar: %v\nseq: %v", parOut, seqOut)
	}
	speedup := float64(seqCost) / float64(par)
	if speedup < 3 {
		t.Errorf("PS-DSWP speedup = %.2f, want >= 3", speedup)
	}
}

func TestDSWPPipelineCorrect(t *testing.T) {
	cp := compileFor(t, md5Det, 4)
	_, seqOut := cp.seqRun(t)
	if cp.sched[transform.DSWP] == nil {
		t.Skip("DSWP not generated")
	}
	_, parOut := cp.parRun(t, transform.DSWP, exec.SyncSpin, 4)
	if strings.Join(parOut, ",") != strings.Join(seqOut, ",") {
		t.Errorf("DSWP output differs:\npar: %v\nseq: %v", parOut, seqOut)
	}
}

func TestSyncModesAllCorrect(t *testing.T) {
	for _, mode := range []exec.SyncMode{exec.SyncMutex, exec.SyncSpin, exec.SyncTM, exec.SyncLib} {
		cp := compileFor(t, md5Full, 4)
		_, seqOut := cp.seqRun(t)
		_, parOut := cp.parRun(t, transform.DOALL, mode, 4)
		if parOut[len(parOut)-1] != seqOut[len(seqOut)-1] {
			t.Errorf("%v: final total differs", mode)
		}
		a, b := sortedCopy(parOut), sortedCopy(seqOut)
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%v: output multiset differs", mode)
				break
			}
		}
	}
}

func TestMutexSlowerThanSpinUnderContention(t *testing.T) {
	cp := compileFor(t, md5Full, 8)
	spin, _ := cp.parRun(t, transform.DOALL, exec.SyncSpin, 8)
	mutex, _ := cp.parRun(t, transform.DOALL, exec.SyncMutex, 8)
	if mutex < spin {
		t.Errorf("expected mutex (%d) >= spin (%d) under contention", mutex, spin)
	}
}

func TestZeroIterationLoop(t *testing.T) {
	cp := compileFor(t, `
#pragma commset decl FSET
#pragma commset predicate FSET (i1)(i2) : i1 != i2
void main() {
	int total = 7;
	for (int i = 0; i < 0; i++) {
		#pragma commset member FSET(i), SELF
		{ total += digest(i); }
	}
	print_int(total);
}`, 4)
	_, seqOut := cp.seqRun(t)
	_, parOut := cp.parRun(t, transform.DOALL, exec.SyncSpin, 4)
	if len(parOut) != 1 || parOut[0] != seqOut[0] {
		t.Errorf("zero-iteration outputs: par %v seq %v", parOut, seqOut)
	}
}

func TestLiveOutsAfterLoop(t *testing.T) {
	// A non-shared slot written each iteration: after the loop it must hold
	// the final iteration's value.
	cp := compileFor(t, `
#pragma commset decl FSET
#pragma commset predicate FSET (i1)(i2) : i1 != i2
void main() {
	int last = -1;
	int total = 0;
	for (int i = 0; i < 16; i++) {
		last = digest(i);
		#pragma commset member FSET(i), SELF
		{ total += last; }
	}
	print_int(last);
	print_int(total);
}`, 4)
	_, seqOut := cp.seqRun(t)
	for _, kind := range []transform.Kind{transform.DOALL, transform.PSDSWP} {
		if cp.sched[kind] == nil {
			continue
		}
		_, parOut := cp.parRun(t, kind, exec.SyncSpin, 4)
		if len(parOut) != len(seqOut) || parOut[0] != seqOut[0] || parOut[1] != seqOut[1] {
			t.Errorf("%v live-outs: par %v seq %v", kind, parOut, seqOut)
		}
	}
}

func TestDeterministicMakespan(t *testing.T) {
	cp := compileFor(t, md5Full, 8)
	a, _ := cp.parRun(t, transform.DOALL, exec.SyncSpin, 8)
	b, _ := cp.parRun(t, transform.DOALL, exec.SyncSpin, 8)
	if a != b {
		t.Errorf("nondeterministic makespan: %d vs %d", a, b)
	}
}
