package exec

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/sanitize"
	"repro/internal/types"
	"repro/internal/vm/des"
	"repro/internal/vm/interp"
	"repro/internal/vm/value"
)

// frame is the main-function execution state owned by one worker.
type frame struct {
	locals []value.Value
	regs   []value.Value
	// sharedSrc tags registers whose value was loaded from a shared slot
	// (stored as slot+1; 0 means untagged — a dense slice instead of a map
	// keeps the per-instruction tag bookkeeping off the heap); member calls
	// re-read tagged cells inside their atomic section.
	sharedSrc []int
}

func newFrame(f *ir.Func) *frame {
	fr := &frame{
		locals:    make([]value.Value, len(f.Locals)),
		regs:      make([]value.Value, f.NumRegs),
		sharedSrc: make([]int, f.NumRegs),
	}
	for i := range fr.locals {
		fr.locals[i] = value.Zero(f.Locals[i].Type)
	}
	return fr
}

// clone copies the frame (for worker-private and per-token frames).
func (fr *frame) clone() *frame {
	nf := &frame{
		locals:    make([]value.Value, len(fr.locals)),
		regs:      make([]value.Value, len(fr.regs)),
		sharedSrc: make([]int, len(fr.sharedSrc)),
	}
	copy(nf.locals, fr.locals)
	copy(nf.regs, fr.regs)
	return nf
}

// stepper executes main-frame instructions on behalf of one simulated
// thread, bridging to the interpreter for callee bodies.
type stepper struct {
	m  *machine
	th *des.Thread
	it *interp.Thread
	fr *frame

	// sharedActive enables shared-cell interposition (only inside the
	// parallelized loop, after promotion).
	sharedActive bool

	// privatized redirects commutative member updates to per-thread
	// shadow state: member calls skip their lock acquisition and
	// privCommits counts commits per set, published by one synchronized
	// bulk merge per set at loop exit (mergePrivatized). Legal because
	// COMMSET membership declares any interleaving of member calls —
	// including the deferred merge order — equivalent.
	privatized  bool
	privCommits map[*types.Set]int

	// effects counts externalized events this stepper performed: member
	// commits, shared-cell writes, and effectful builtin calls. Together
	// with interp.Thread.HeapWrites it gates DOALL iteration re-execution.
	effects int

	flushed int64 // portion of it.Cost already charged to th

	// invokeFn is the one reusable invoke closure for main-frame calls on
	// the fast substrate; it reads the call set by execCallArgs in
	// callIn/callArgs/callMember. Exec-level calls never nest within one
	// stepper (callee bodies run in the interpreter, which has its own
	// reusable closure), so a single set of fields suffices, and
	// interceptor-level retries reuse them unchanged.
	invokeFn   func() ([]value.Value, error)
	callIn     *ir.Instr
	callArgs   []value.Value
	callMember bool
}

func (m *machine) newStepper(th *des.Thread, fr *frame) *stepper {
	st := &stepper{m: m, th: th, fr: fr}
	st.it = interp.NewThread(m.env)
	st.it.ID = th.ID
	if m.cfg.Sanitize != nil {
		st.it.Tracer = m.cfg.Sanitize
	}
	st.it.Interceptor = func(t *interp.Thread, in *ir.Instr, args []value.Value, invoke func() ([]value.Value, error)) ([]value.Value, error) {
		var member, builtin bool
		if fa := m.fast; fa != nil {
			// Callee instruction IDs are dense per function, so the
			// interceptor resolves by name, not by the main tables.
			ci := fa.resolve(m, in.Name)
			member, builtin = ci.member, ci.builtin
		} else {
			member = len(m.cfg.Model.SetsOf[in.Name]) > 0
			builtin = m.env.Prog.Funcs[in.Name] == nil
		}
		switch {
		case builtin:
			// Builtins fail atomically (an injected failure fires before
			// the builtin runs), so call-level retry is safe.
			return st.invokeBuiltin(in.Name, member, args, invoke)
		case member:
			return st.withMemberSync(in.Name, args, nil, nil, invoke)
		}
		return invoke()
	}
	return st
}

// setTags renders a member's commsets for the sanitizer, memoized.
func (m *machine) setTags(fn string) []sanitize.SetTag {
	if t, ok := m.setTagCache[fn]; ok {
		return t
	}
	sets := m.cfg.Model.SetsOf[fn]
	t := make([]sanitize.SetTag, len(sets))
	for i, s := range sets {
		t[i] = sanitize.SetTag{Name: s.Name, Self: s.SelfSet}
	}
	if m.setTagCache == nil {
		m.setTagCache = map[string][]sanitize.SetTag{}
	}
	m.setTagCache[fn] = t
	return t
}

// snapState hands the sanitizer the executor-side pre-state: the global
// heap and the current shared-cell values.
func (m *machine) snapState() (map[string]value.Value, map[int]value.Value) {
	cells := make(map[int]value.Value, len(m.cells))
	for slot, c := range m.cells {
		cells[slot] = c.v
	}
	return m.env.Globals.Snapshot(), cells
}

// invokeBuiltin runs one builtin call — member-synchronized when member —
// retrying transient injected failures with exponential backoff charged in
// virtual time. User-function calls are never retried here: they may have
// externalized partial work, and their inner builtin calls retry
// individually through the interceptor.
func (st *stepper) invokeBuiltin(name string, member bool, args []value.Value, invoke func() ([]value.Value, error)) ([]value.Value, error) {
	run := func() ([]value.Value, error) {
		if member {
			return st.withMemberSync(name, args, nil, nil, invoke)
		}
		rets, err := invoke()
		st.flush()
		return rets, err
	}
	r := st.m.cfg.Recovery
	for attempt := 0; ; attempt++ {
		rets, err := run()
		if err == nil {
			if st.m.cfg.Effectful[name] {
				st.effects++
			}
			return rets, nil
		}
		if r == nil || !IsTransient(err) || attempt >= r.callRetries() {
			return nil, err
		}
		st.m.stats.callRetries++
		st.th.Sleep(r.backoff(attempt))
	}
}

// flush charges interpreter-accumulated cost to the simulated thread.
func (st *stepper) flush() {
	if d := st.it.Cost - st.flushed; d > 0 {
		st.th.Charge(d)
		st.flushed = st.it.Cost
	}
}

// call invokes a function or builtin, charging its cost to the thread.
func (st *stepper) call(name string, args []value.Value) ([]value.Value, error) {
	rets, err := st.it.CallByName(name, args)
	st.flush()
	return rets, err
}

// withMemberSync executes body under the synchronization required for a
// commutative member; a successful call counts as an externalized effect
// (its commit is visible to other threads, so the iteration that made it
// cannot be re-executed). args and the shared-cell slot wirings feed the
// sanitizer's member-extent record when a monitor is attached.
func (st *stepper) withMemberSync(name string, args []value.Value, argSlots, outSlots map[int]int, body func() ([]value.Value, error)) ([]value.Value, error) {
	rets, err := st.memberSyncInner(name, args, argSlots, outSlots, body)
	if err == nil {
		st.effects++
	}
	return rets, err
}

// memberSyncInner executes body under the synchronization required for a
// commutative member: locks of every (non-nosync) set the member belongs
// to, acquired in global rank order and released in reverse (Section 4.6).
func (st *stepper) memberSyncInner(name string, args []value.Value, argSlots, outSlots map[int]int, body func() ([]value.Value, error)) ([]value.Value, error) {
	m := st.m
	lockSets := m.lockSetsOf(name)
	st.flush()
	if mon := m.cfg.Sanitize; mon != nil {
		// The member extent opens after synchronization is in place (the
		// snapshot sees the serialized pre-state) and closes before the
		// locks drop, so every access inside the atomic section is
		// attributed to this invocation.
		inner := body
		body = func() ([]value.Value, error) {
			mon.MemberEnter(st.th.ID, name, m.setTags(name), args, argSlots, outSlots, m.snapState)
			rets, err := inner()
			mon.MemberExit(st.th.ID, rets, err)
			return rets, err
		}
	}
	if st.privatized && len(lockSets) > 0 {
		// Privatized commutative update: the call mutates this thread's
		// shadow copy with no synchronization at all; the per-set commit
		// is published by the bulk merge at loop exit. (The simulator
		// serializes real execution, so the underlying substrate update
		// is atomic; only the timing model changes — the same modelling
		// argument as TM.)
		if st.privCommits == nil {
			st.privCommits = map[*types.Set]int{}
		}
		for _, s := range lockSets {
			st.privCommits[s]++
		}
		rets, err := body()
		st.flush()
		return rets, err
	}
	switch m.mode {
	case SyncLib:
		// Thread-safe library: members synchronize internally; charge a
		// small atomic-operation overhead, no serialization.
		st.th.Charge(m.cfg.Cost.SpinAcquire)
		rets, err := body()
		st.flush()
		return rets, err
	case SyncMutex, SyncSpin:
		for _, s := range lockSets {
			st.th.Acquire(m.locks[s])
		}
		rets, err := body()
		st.flush()
		for i := len(lockSets) - 1; i >= 0; i-- {
			st.th.Release(m.locks[lockSets[i]])
		}
		return rets, err
	case SyncTM:
		// Timing-level TM (DESIGN.md): semantics come from the lock; the
		// cost model adds commit overhead and conflict-driven retry
		// charges from the commit log.
		tStart := st.th.VTime
		for _, s := range lockSets {
			st.th.Acquire(m.locks[s])
		}
		workStart := st.th.VTime
		rets, err := body()
		st.flush()
		workCost := st.th.VTime - workStart
		for i := len(lockSets) - 1; i >= 0; i-- {
			st.th.Release(m.locks[lockSets[i]])
		}
		aborts := m.tm.conflicts(lockSets, tStart, st.th.VTime)
		if m.cfg.ExtraAborts != nil {
			aborts += m.cfg.ExtraAborts()
		}
		st.th.Charge(m.cfg.Cost.TMCommit + int64(aborts)*(workCost+m.cfg.Cost.TMAbortPenalty))
		m.tm.record(lockSets, tStart, st.th.VTime)
		return rets, err
	}
	return nil, fmt.Errorf("exec: unknown sync mode")
}

// privMergeCost is the virtual cost of folding one thread's shadow copy
// of one set's state into the shared copy inside the merge's critical
// section (a bulk combine, amortized over the whole loop).
const privMergeCost = 300

// mergePrivatized publishes the thread's privatized commutative state:
// one synchronized bulk merge per touched set, acquired in global rank
// order under the run's sync mode. Merge order across threads is
// irrelevant by the commutativity annotation, so any virtual-time
// interleaving of these merges yields a valid serialization.
func (st *stepper) mergePrivatized() {
	if len(st.privCommits) == 0 {
		return
	}
	m := st.m
	m.stats.privMerges++
	sets := make([]*types.Set, 0, len(st.privCommits))
	for _, s := range m.cfg.Model.Sets {
		if st.privCommits[s] > 0 {
			sets = append(sets, s) // Model.Sets is already in rank order
		}
	}
	for _, s := range sets {
		switch m.mode {
		case SyncLib:
			st.th.Charge(m.cfg.Cost.SpinAcquire + privMergeCost)
		case SyncMutex, SyncSpin:
			st.th.Acquire(m.locks[s])
			st.th.Charge(privMergeCost)
			st.th.Release(m.locks[s])
		case SyncTM:
			st.th.Acquire(m.locks[s])
			st.th.Charge(privMergeCost)
			st.th.Release(m.locks[s])
			st.th.Charge(m.cfg.Cost.TMCommit)
		}
	}
	st.privCommits = nil
}

// stop describes why instruction stepping halted.
type stop struct {
	ret     bool      // an OpRet executed
	next    *ir.Instr // first instruction outside the set (nil on ret)
	nextBlk int       // its block
}

// exec runs instructions starting at `start` while inSet admits them.
func (st *stepper) exec(start *ir.Instr, inSet func(*ir.Instr) bool) (stop, error) {
	f := st.m.la.Fn
	cur := start
	for {
		if cur == nil {
			return stop{}, fmt.Errorf("exec: fell off instruction stream in %s", f.Name)
		}
		if !inSet(cur) {
			return stop{next: cur, nextBlk: st.m.instrPos[cur.ID].block}, nil
		}
		branch, isRet, err := st.stepInstr(cur)
		if err != nil {
			return stop{}, err
		}
		if isRet {
			return stop{ret: true}, nil
		}
		if branch >= 0 {
			blk := f.BlockByID(branch)
			if len(blk.Instrs) == 0 {
				return stop{}, fmt.Errorf("exec: branch to empty block b%d", branch)
			}
			cur = blk.Instrs[0]
			continue
		}
		loc := st.m.instrPos[cur.ID]
		blk := f.BlockByID(loc.block)
		if loc.index+1 >= len(blk.Instrs) {
			return stop{}, fmt.Errorf("exec: block b%d missing terminator", loc.block)
		}
		cur = blk.Instrs[loc.index+1]
	}
}

// runBlocks executes from the start of block `from` until entering block
// `until` (or returning from the function when until is -1).
func (st *stepper) runBlocks(from, until int) error {
	f := st.m.la.Fn
	blk := f.BlockByID(from)
	if len(blk.Instrs) == 0 {
		return fmt.Errorf("exec: empty block b%d", from)
	}
	inSet := func(in *ir.Instr) bool {
		return until < 0 || st.m.instrPos[in.ID].block != until
	}
	s, err := st.exec(blk.Instrs[0], inSet)
	if err != nil {
		return err
	}
	if !s.ret && until >= 0 && s.nextBlk != until {
		return fmt.Errorf("exec: stopped at b%d, expected b%d", s.nextBlk, until)
	}
	return nil
}

// groupSet returns the dense membership set of an instruction group,
// memoized per backing list: groups (units, condition, post increment) are
// fixed for the whole run but executed once per iteration, so the set is
// built once instead of per execution.
func (m *machine) groupSet(instrs []*ir.Instr) []bool {
	key := groupKey{first: instrs[0], n: len(instrs)}
	if set, ok := m.groupSets[key]; ok {
		return set
	}
	set := make([]bool, len(m.instrPos))
	for _, in := range instrs {
		set[in.ID] = true
	}
	if m.groupSets == nil {
		m.groupSets = map[groupKey][]bool{}
	}
	m.groupSets[key] = set
	return set
}

// runGroup executes one instruction group (a unit, the condition, or the
// post increment) to completion on the current frame.
func (st *stepper) runGroup(instrs []*ir.Instr) (stop, error) {
	if len(instrs) == 0 {
		return stop{}, nil
	}
	set := st.m.groupSet(instrs)
	return st.exec(instrs[0], func(in *ir.Instr) bool { return set[in.ID] })
}

// stepInstr executes one instruction. It returns the branch target block
// (-1 when falling through) and whether an OpRet executed.
func (st *stepper) stepInstr(in *ir.Instr) (branchTo int, isRet bool, err error) {
	st.th.Charge(interp.CostPerInstr)
	fr := st.fr
	clearTag := func(dst int) {
		if dst >= 0 {
			fr.sharedSrc[dst] = 0
		}
	}
	switch in.Op {
	case ir.OpConst:
		clearTag(in.Dst)
		fr.regs[in.Dst] = in.Val
	case ir.OpLoadLocal:
		clearTag(in.Dst)
		if st.sharedActive && st.m.isShared(in.Slot) {
			if mon := st.m.cfg.Sanitize; mon != nil {
				mon.Cell(st.th.ID, in.Slot, false)
			}
			fr.regs[in.Dst] = st.m.cellAt[in.Slot].v
			fr.sharedSrc[in.Dst] = in.Slot + 1
		} else {
			fr.regs[in.Dst] = fr.locals[in.Slot]
		}
	case ir.OpStoreLocal:
		if st.sharedActive && st.m.isShared(in.Slot) {
			st.effects++
			if mon := st.m.cfg.Sanitize; mon != nil {
				mon.Cell(st.th.ID, in.Slot, true)
			}
			st.m.cellAt[in.Slot].v = fr.regs[in.A]
		} else {
			fr.locals[in.Slot] = fr.regs[in.A]
		}
	case ir.OpLoadGlobal:
		clearTag(in.Dst)
		if mon := st.m.cfg.Sanitize; mon != nil {
			mon.TraceGlobal(st.th.ID, in.Name, false)
		}
		if fa := st.m.fast; fa != nil && fa.gslot[in.ID] >= 0 {
			fr.regs[in.Dst] = st.m.env.Globals.GetSlot(int(fa.gslot[in.ID]))
		} else {
			fr.regs[in.Dst] = st.m.env.Globals.Get(in.Name)
		}
	case ir.OpStoreGlobal:
		st.it.HeapWrites++
		if mon := st.m.cfg.Sanitize; mon != nil {
			mon.TraceGlobal(st.th.ID, in.Name, true)
		}
		if fa := st.m.fast; fa != nil && fa.gslot[in.ID] >= 0 {
			st.m.env.Globals.SetSlot(int(fa.gslot[in.ID]), fr.regs[in.A])
		} else {
			st.m.env.Globals.Set(in.Name, fr.regs[in.A])
		}
	case ir.OpBin:
		clearTag(in.Dst)
		v, e := interp.EvalBin(in.BinOp, fr.regs[in.A], fr.regs[in.B])
		if e != nil {
			return 0, false, fmt.Errorf("%s: %v", in.Pos, e)
		}
		fr.regs[in.Dst] = v
	case ir.OpUn:
		clearTag(in.Dst)
		v, e := interp.EvalUn(in.BinOp, fr.regs[in.A])
		if e != nil {
			return 0, false, fmt.Errorf("%s: %v", in.Pos, e)
		}
		fr.regs[in.Dst] = v
	case ir.OpCall:
		clearTag(in.Dst)
		if err := st.execCall(in); err != nil {
			return 0, false, err
		}
	case ir.OpBr:
		return in.Targets[0], false, nil
	case ir.OpCondBr:
		if fr.regs[in.A].AsBool() {
			return in.Targets[0], false, nil
		}
		return in.Targets[1], false, nil
	case ir.OpRet:
		return -1, true, nil
	}
	return -1, false, nil
}

// execCall performs a top-level call in the main frame, applying member
// synchronization, shared-argument refresh, and shared OutSlot writeback.
// On the fast substrate the argument slice is carved from the interpreter
// thread's scratch arena (released once the call's results are consumed;
// see interp.Thread.ScratchSlice).
func (st *stepper) execCall(in *ir.Instr) error {
	if st.m.fast == nil {
		return st.execCallArgs(in, make([]value.Value, len(in.Args)))
	}
	mark := st.it.ScratchMark()
	err := st.execCallArgs(in, st.it.ScratchSlice(len(in.Args)))
	st.it.ScratchRelease(mark)
	return err
}

func (st *stepper) execCallArgs(in *ir.Instr, args []value.Value) error {
	fr := st.fr
	for i, r := range in.Args {
		args[i] = fr.regs[r]
	}
	var ci *callInfo
	if fa := st.m.fast; fa != nil {
		ci = fa.call[in.ID]
	}
	member := false
	if ci != nil {
		member = ci.member
	} else {
		member = len(st.m.cfg.Model.SetsOf[in.Name]) > 0
	}
	mon := st.m.cfg.Sanitize

	// The sanitizer's replay needs the shared-cell wiring of a member
	// call: which argument indices are re-read from which cells, and
	// which return indices write back to which cells.
	var argSlots, outSlots map[int]int
	if member && st.sharedActive && mon != nil {
		for i, r := range in.Args {
			if tag := fr.sharedSrc[r]; tag != 0 {
				if argSlots == nil {
					argSlots = map[int]int{}
				}
				argSlots[i] = tag - 1
			}
		}
		for i, slot := range in.OutSlots {
			if st.m.isShared(slot) {
				if outSlots == nil {
					outSlots = map[int]int{}
				}
				outSlots[i] = slot
			}
		}
	}

	var invoke func() ([]value.Value, error)
	if st.m.fast != nil {
		if st.invokeFn == nil {
			st.invokeFn = st.invokeCurrent
		}
		st.callIn, st.callArgs, st.callMember = in, args, member
		invoke = st.invokeFn
	} else {
		invoke = func() ([]value.Value, error) {
			st.callIn, st.callArgs, st.callMember = in, args, member
			return st.invokeCurrent()
		}
	}

	var rets []value.Value
	var err error
	builtin := false
	if ci != nil {
		builtin = ci.builtin
	} else {
		builtin = st.m.env.Prog.Funcs[in.Name] == nil
	}
	switch {
	case builtin:
		rets, err = st.invokeBuiltin(in.Name, member, args, invoke)
	case member:
		rets, err = st.withMemberSync(in.Name, args, argSlots, outSlots, invoke)
	default:
		rets, err = invoke()
		st.flush()
	}
	if err != nil {
		return err
	}
	if in.Dst >= 0 {
		if len(rets) == 0 {
			return fmt.Errorf("%s: call %s returned no value", in.Pos, in.Name)
		}
		fr.regs[in.Dst] = rets[0]
	}
	return st.finishCall(in, member, mon, rets)
}

// invokeCurrent performs the call staged in callIn/callArgs/callMember:
// shared-argument refresh inside the atomic section, the call itself, and
// shared OutSlot writeback.
func (st *stepper) invokeCurrent() ([]value.Value, error) {
	in, args, member := st.callIn, st.callArgs, st.callMember
	fr := st.fr
	mon := st.m.cfg.Sanitize
	if member && st.sharedActive {
		// Re-read shared-sourced arguments inside the atomic section so
		// the read-modify-write of shared scalars is not lost.
		for i, r := range in.Args {
			if tag := fr.sharedSrc[r]; tag != 0 {
				slot := tag - 1
				if mon != nil {
					mon.Cell(st.th.ID, slot, false)
				}
				args[i] = st.m.cellAt[slot].v
			}
		}
	}
	rets, err := st.it.CallByName(in.Name, args)
	if err != nil {
		return nil, err
	}
	// Shared OutSlots are written inside the atomic section.
	if member && st.sharedActive {
		for i, slot := range in.OutSlots {
			if st.m.isShared(slot) {
				st.effects++
				if mon != nil {
					mon.Cell(st.th.ID, slot, true)
				}
				st.m.cellAt[slot].v = rets[i]
			}
		}
	}
	return rets, nil
}

// finishCall writes a call's OutSlot results back to frame locals (shared
// slots were already written inside the atomic section for member calls).
func (st *stepper) finishCall(in *ir.Instr, member bool, mon *sanitize.Monitor, rets []value.Value) error {
	fr := st.fr
	if len(in.OutSlots) > 0 {
		if len(rets) != len(in.OutSlots) {
			return fmt.Errorf("%s: region %s returned %d values, want %d", in.Pos, in.Name, len(rets), len(in.OutSlots))
		}
		for i, slot := range in.OutSlots {
			if st.sharedActive && st.m.isShared(slot) {
				if !member {
					st.effects++
					if mon != nil {
						mon.Cell(st.th.ID, slot, true)
					}
					st.m.cellAt[slot].v = rets[i]
				}
				// Member writes already landed in the cell under the lock.
			} else {
				fr.locals[slot] = rets[i]
			}
		}
	}
	return nil
}

// tmEntry is one committed transaction in the TM conflict log.
type tmEntry struct {
	sets       []*types.Set
	start, end int64
}

// tmLog is a bounded log of recent commits used to model optimistic
// conflicts: a transaction aborts once for every overlapping committed
// transaction touching one of its sets.
type tmLog struct {
	entries []tmEntry
}

const tmLogCap = 512

func (l *tmLog) record(sets []*types.Set, start, end int64) {
	l.entries = append(l.entries, tmEntry{sets: sets, start: start, end: end})
	if len(l.entries) > tmLogCap {
		l.entries = l.entries[len(l.entries)-tmLogCap:]
	}
}

func (l *tmLog) conflicts(sets []*types.Set, start, end int64) int {
	n := 0
	for i := range l.entries {
		e := &l.entries[i]
		if e.end <= start || e.start >= end {
			continue
		}
		if intersects(e.sets, sets) {
			n++
		}
	}
	return n
}

func intersects(a, b []*types.Set) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}
