// Package exec runs COMMSET programs under the schedules produced by the
// parallelizing transforms, on top of the deterministic discrete-event
// multicore simulator.
//
// The executors reproduce the code the paper's MTCG-style backend would
// generate, at unit granularity:
//
//   - Sequential: the reference run; its virtual cost is the baseline.
//   - DOALL: N workers each execute the loop-control machinery privately and
//     run the body of iterations i with i mod N == worker, exactly like a
//     statically scheduled DOALL loop with privatized induction variables.
//   - DSWP / PS-DSWP: one thread per stage (R replicas for the parallel
//     stage), connected by bounded lock-free queues carrying per-iteration
//     tokens. The dispatcher (stage 0) owns loop control; a parallel stage
//     receives iterations round-robin and the following sequential stage
//     merges them back in iteration order, preserving deterministic output
//     for sequential stages (the paper's in-order print stage).
//
// The synchronization engine (paper Section 4.6) wraps every commutative
// member call: locks of every set the member belongs to are acquired in
// global rank order and released in reverse, guaranteeing deadlock freedom
// together with the acyclic commset graph and acyclic queue network. Four
// mechanisms are modelled: mutex, spin, transactional memory (timing model:
// commit cost plus conflict-driven retry charges over a commit log), and
// lib (thread-safe library, no compiler-inserted synchronization).
//
// Shared mutable scalars (frame slots read-modified-written by member
// calls) live in shared cells: a member call re-reads them at entry and
// writes them back at exit inside its atomic section, so concurrent
// commutative updates are never lost.
package exec

import (
	"fmt"

	"repro/internal/commset"
	"repro/internal/ir"
	"repro/internal/pipeline"
	"repro/internal/sanitize"
	"repro/internal/transform"
	"repro/internal/types"
	"repro/internal/vm/des"
	"repro/internal/vm/interp"
	"repro/internal/vm/value"
)

// SyncMode selects the concurrency-control mechanism for member calls.
type SyncMode int

// Synchronization mechanisms (paper Section 4.6).
const (
	SyncMutex SyncMode = iota
	SyncSpin
	SyncTM
	SyncLib
)

// String names the mechanism as in Table 2.
func (m SyncMode) String() string {
	switch m {
	case SyncMutex:
		return "Mutex"
	case SyncSpin:
		return "Spin"
	case SyncTM:
		return "TM"
	case SyncLib:
		return "Lib"
	}
	return "?"
}

// Config bundles everything needed to execute a compiled program.
type Config struct {
	Prog     *ir.Program
	Builtins map[string]interp.BuiltinFn
	Model    *commset.Model
	Cost     des.CostModel

	// QueueCap bounds pipeline queues (default 32).
	QueueCap int

	// Tune applies the adaptive-scheduling knobs: the DOALL iteration
	// schedule, the pipeline-queue batch size, and privatized commutative
	// updates. The zero value reproduces the paper's fixed policies.
	Tune transform.Tuning

	// Auto, when set, enables the profile-guided auto-scheduler: before
	// the measured run, a short calibration slice is executed per
	// candidate tuning and the fastest candidate replaces Tune.
	Auto *AutoOptions

	// MaxIters, when positive, caps the number of loop iterations the
	// parallel executors run (the auto-scheduler's calibration slices).
	MaxIters int64

	// Recovery enables the fault-recovery policies (nil keeps the legacy
	// abort-on-first-error behavior).
	Recovery *Recovery

	// Watchdog bounds virtual time and scheduler events; forwarded to the
	// simulator so livelocks and stalls become diagnosed errors.
	Watchdog des.Watchdog

	// PushDelay, when set, returns extra virtual latency for a push on the
	// named pipeline queue (wired to a fault injector's QueueDelay).
	PushDelay func(queue string) int64

	// ExtraAborts, when set, returns synthetic additional TM conflict
	// aborts to charge on the next commit (a TM conflict storm).
	ExtraAborts func() int

	// Effectful names builtins with externally visible effects: a failed
	// DOALL iteration that completed one cannot be re-executed.
	Effectful map[string]bool

	// CrashCheck, when set, arms the crash/restart subsystem: it is called
	// exactly once per crash tick — one DOALL iteration pass or one
	// pipeline token — of each worker role, and reports whether the role's
	// thread dies now and whether the death is permanent (wired to a fault
	// injector's CrashNow). Arming it also activates the checkpoint layer;
	// see crash.go for the recovery model.
	CrashCheck func(role string) (die, permanent bool)

	// Straggle, when set, arms the straggler subsystem: it is called
	// exactly once per pass of each DOALL worker role (and per served
	// request of each service worker) and returns the slowdown factor of
	// that pass (1 = full speed; wired to a fault injector's SlowNow). The
	// pass's virtual cost is stretched by the factor at its end. Steal
	// tuning (Tune.Steal) is the repair: idle workers adopt the slowed
	// worker's un-started range.
	Straggle func(role string) float64

	// Sanitize, when set, attaches the dynamic sanitizer: the monitor
	// receives happens-before edges from the scheduler, memory accesses
	// from the interpreter, and member-extent boundaries from the
	// stepper. Hooks run outside cost accounting, so a sanitized run's
	// virtual time is bit-for-bit identical to a plain run.
	Sanitize *sanitize.Monitor
}

func (c *Config) queueCap() int {
	if c.QueueCap > 0 {
		return c.QueueCap
	}
	return 32
}

// Result reports one execution.
type Result struct {
	VirtualTime int64 // simulated makespan in cost units
	Threads     int
	Schedule    string
	Sync        SyncMode

	// Tune is the tuning the run executed with (the auto-scheduler's pick
	// when Config.Auto was set).
	Tune transform.Tuning

	// Resilience statistics (zero unless recovery is enabled).
	CallRetries int  // transient member/builtin calls retried
	IterRetries int  // DOALL iterations re-executed
	Attempts    int  // execution attempts consumed by RunResilient
	FellBack    bool // RunResilient degraded to the sequential fallback
	Recovered   bool // injected faults were absorbed

	// Crash/restart statistics (zero unless a crash plan was armed).
	Restarts      int  // worker threads restarted from a checkpoint
	Repartitioned int  // permanently dead DOALL workers whose remaining iterations were re-partitioned
	Degraded      bool // the run survived in degraded mode (re-partition or sequential fallback)
	// RestartHistory lists every crash in order: thread, vtime, checkpoint
	// age, and replayed-work count.
	RestartHistory []RestartRecord
	// PrivMerges counts privatized-shadow bulk merges published (exactly
	// one per worker incarnation chain that touched a set, crash or not).
	PrivMerges int
	// Steals counts iteration ranges adopted over the DOALL steal board
	// plus backlog requests served by parked service workers (zero unless
	// Tune.Steal).
	Steals int
	// WorkerJoins lists the virtual times at which DOALL worker chains
	// (and salvage runners) retired, in join order — the raw material of
	// loop-completion-skew metrics. Empty for non-DOALL schedules.
	WorkerJoins []int64
}

// RunSequential executes the program sequentially and returns its virtual
// time — the baseline for every speedup in the evaluation. When recovery is
// enabled, transient builtin failures are retried with exponential backoff
// charged as virtual cost.
func RunSequential(cfg Config) (*Result, error) {
	env := interp.NewEnv(cfg.Prog, cfg.Builtins)
	th := interp.NewThread(env)
	retries := 0
	if r := cfg.Recovery; r != nil {
		th.Interceptor = func(t *interp.Thread, in *ir.Instr, args []value.Value, invoke func() ([]value.Value, error)) ([]value.Value, error) {
			if cfg.Prog.Funcs[in.Name] != nil {
				return invoke() // user function: inner builtin calls retry individually
			}
			for attempt := 0; ; attempt++ {
				rets, err := invoke()
				if err == nil || !IsTransient(err) || attempt >= r.callRetries() {
					return rets, err
				}
				retries++
				t.Cost += r.backoff(attempt)
			}
		}
	}
	if err := th.RunMain(); err != nil {
		return nil, err
	}
	return &Result{
		VirtualTime: th.Cost,
		Threads:     1,
		Schedule:    "Sequential",
		CallRetries: retries,
		Recovered:   retries > 0,
	}, nil
}

// RunSequentialSanitized executes the program sequentially with the
// sanitizer monitor attached (normally in VerifyAll mode): every member
// invocation is recorded — the first few per member with a full
// pre-state snapshot — so the commute oracle can replay all same-set
// pairs afterwards. Sequential runs have no races to observe; this is
// the path behind commsetvet's dynamic verification and discharge.
func RunSequentialSanitized(cfg Config, mon *sanitize.Monitor) (*Result, error) {
	env := interp.NewEnv(cfg.Prog, cfg.Builtins)
	th := interp.NewThread(env)
	th.Tracer = mon
	tags := map[string][]sanitize.SetTag{}
	setTags := func(fn string) []sanitize.SetTag {
		if t, ok := tags[fn]; ok {
			return t
		}
		sets := cfg.Model.SetsOf[fn]
		t := make([]sanitize.SetTag, len(sets))
		for i, s := range sets {
			t[i] = sanitize.SetTag{Name: s.Name, Self: s.SelfSet}
		}
		tags[fn] = t
		return t
	}
	snap := func() (map[string]value.Value, map[int]value.Value) {
		return env.Globals.Snapshot(), nil
	}
	th.Interceptor = func(t *interp.Thread, in *ir.Instr, args []value.Value, invoke func() ([]value.Value, error)) ([]value.Value, error) {
		if len(cfg.Model.SetsOf[in.Name]) == 0 {
			return invoke()
		}
		mon.MemberEnter(t.ID, in.Name, setTags(in.Name), args, nil, nil, snap)
		rets, err := invoke()
		mon.MemberExit(t.ID, rets, err)
		return rets, err
	}
	if err := th.RunMain(); err != nil {
		return nil, err
	}
	return &Result{VirtualTime: th.Cost, Threads: 1, Schedule: "Sequential"}, nil
}

// Run executes the program with the target loop parallelized per the
// schedule using the given mechanism and thread count. Sequential schedules
// ignore threads.
func Run(cfg Config, la *pipeline.LoopAnalysis, sched *transform.Schedule, mode SyncMode, threads int) (*Result, error) {
	if sched.Kind == transform.Sequential {
		r, err := RunSequential(cfg)
		if err != nil {
			return nil, err
		}
		r.Sync = mode
		return r, nil
	}
	if la.Fn.Name != "main" {
		return nil, fmt.Errorf("exec: target loop must be in main, not %s", la.Fn.Name)
	}
	if threads < 1 {
		threads = 1
	}
	if cfg.Auto != nil {
		cfg.Tune = autoTune(cfg, la, sched, mode, threads)
		cfg.Auto = nil
	}

	m := newMachine(cfg, la, sched, mode)
	sim := des.New(cfg.Cost)
	sim.Watchdog = cfg.Watchdog
	if cfg.Sanitize != nil {
		sim.Probe = cfg.Sanitize
	}
	m.sim = sim
	for _, set := range cfg.Model.Sets {
		kind := des.Mutex
		if mode == SyncSpin || mode == SyncTM {
			kind = des.Spin
		}
		m.locks[set] = sim.NewLock("set:"+set.Name, kind)
	}

	var runErr error
	sim.Spawn("main", 0, func(th *des.Thread) error {
		err := m.runMain(th, threads)
		if err != nil {
			runErr = err
		}
		return err
	})
	makespan, simErr := sim.Run()
	// A diagnosed unrecoverable fault is the root cause; prefer it over the
	// watchdog/deadlock report it may have triggered downstream.
	if m.failDiag != nil {
		return nil, m.failDiag
	}
	if simErr != nil {
		return nil, simErr
	}
	if runErr != nil {
		return nil, runErr
	}
	return &Result{
		VirtualTime:    makespan,
		Threads:        threads,
		Schedule:       schedLabel(sched, cfg.Tune),
		Sync:           mode,
		Tune:           cfg.Tune,
		CallRetries:    m.stats.callRetries,
		IterRetries:    m.stats.iterRetries,
		Restarts:       m.stats.restarts,
		Repartitioned:  m.stats.repartitioned,
		Degraded:       m.stats.repartitioned > 0,
		RestartHistory: m.restarts,
		PrivMerges:     m.stats.privMerges,
		Steals:         m.stats.steals,
		WorkerJoins:    m.workerJoins,
		Recovered:      m.stats.callRetries > 0 || m.stats.iterRetries > 0 || m.stats.restarts > 0,
	}, nil
}

// schedLabel renders the schedule name plus the non-default tuning knobs,
// e.g. "DOALL {chunked(4)+priv}".
func schedLabel(sched *transform.Schedule, tune transform.Tuning) string {
	if tune.IsZero() {
		return sched.String()
	}
	return sched.String() + " {" + tune.String() + "}"
}

// sharedCell is the shared storage of one promoted frame slot.
type sharedCell struct {
	v value.Value
}

// machine holds the cross-thread execution state of one parallel run.
type machine struct {
	cfg   Config
	la    *pipeline.LoopAnalysis
	sched *transform.Schedule
	mode  SyncMode

	sim   *des.Scheduler
	env   *interp.Env
	locks map[*types.Set]*des.Lock
	cells map[int]*sharedCell
	// cellAt is the dense shared-cell lookup (indexed by frame slot, nil
	// for private slots); cells stays the iteration-order registry.
	cellAt []*sharedCell

	// fast, when non-nil, is the slot-resolved metadata of the compiled
	// substrate (interp.FastEnabled at machine construction): global names
	// resolved to heap slots and callees to callInfo. The legacy stepper
	// keeps its name-keyed map lookups.
	fast *machineFast

	// setTagCache memoizes the sanitizer's per-member commset tags.
	setTagCache map[string][]sanitize.SetTag

	tm tmLog

	// instrPos locates every instruction of main: block ID and index,
	// indexed by the dense instruction ID.
	instrPos []instrLoc
	// unitOf maps loop instruction IDs to unit indices (-1 for control,
	// noUnit for instructions outside the loop), indexed by instruction ID.
	unitOf []int
	// groupSets memoizes the dense membership sets instruction groups are
	// executed under (see stepper.runGroup).
	groupSets map[groupKey][]bool
	// exitBlock is the loop's unique exit target.
	exitBlock int

	// svc, when non-nil, marks a service-mode (open-system) run: the
	// executors record per-request latency, admission, and degradation
	// state here instead of treating the loop as a closed batch.
	svc *svcState

	// failDiag records the first unrecoverable fault (resilient mode only);
	// the simulator serializes threads, so plain fields suffice.
	failDiag *FailureDiag
	// restarts is the crash/restart history, in death order.
	restarts []RestartRecord
	// ckRef is the immutable loop-entry frame every compressed checkpoint
	// of the current DOALL loop deltas against (see ckframe.go).
	ckRef *frame
	// workerJoins records DOALL worker-chain retirement times, join order.
	workerJoins []int64
	stats       struct {
		callRetries   int
		iterRetries   int
		restarts      int
		repartitioned int
		privMerges    int
		steals        int
	}
}

// resilient reports whether recovery policies are enabled.
func (m *machine) resilient() bool { return m.cfg.Recovery != nil }

// fail records the first unrecoverable fault; under deterministic
// scheduling the first failure is the root cause, later ones are fallout.
func (m *machine) fail(role string, err error) {
	if m.failDiag == nil {
		m.failDiag = &FailureDiag{Thread: role, Sched: m.sched.String(), Sync: m.mode, Err: err, Restarts: m.restarts}
	}
}

// failed reports whether an unrecoverable fault has been recorded.
func (m *machine) failed() bool { return m.failDiag != nil }

type instrLoc struct {
	block int
	index int
}

// groupKey identifies an instruction group by its backing list.
type groupKey struct {
	first *ir.Instr
	n     int
}

// noUnit marks instructions outside the parallelized loop in unitOf.
const noUnit = -2

// callInfo is resolved call-site metadata: whether the callee is a
// commutative member, whether it is a builtin, and the rank-ordered lock
// sets a member call must acquire (Model.LockSets allocates a fresh slice
// per query, so the resolution is worth memoizing).
type callInfo struct {
	member   bool
	builtin  bool
	lockSets []*types.Set
}

// machineFast carries the slot-indexed fast layer of one machine: per
// main-instruction global heap slots and call info (indexed by the dense
// instruction ID), plus a name-keyed memo for callee-side interceptor
// calls, whose instruction IDs are dense per callee function and so cannot
// index the main tables.
type machineFast struct {
	gslot  []int32
	call   []*callInfo
	byName map[string]*callInfo
}

// resolve memoizes callInfo by callee name. Simulated threads are
// serialized by the discrete-event scheduler, so the map needs no lock.
func (fa *machineFast) resolve(m *machine, name string) *callInfo {
	if ci, ok := fa.byName[name]; ok {
		return ci
	}
	ci := &callInfo{
		member:   len(m.cfg.Model.SetsOf[name]) > 0,
		builtin:  m.env.Prog.Funcs[name] == nil,
		lockSets: m.cfg.Model.LockSets(name),
	}
	fa.byName[name] = ci
	return ci
}

// buildFast precomputes the slot-indexed tables for main's instructions.
func (m *machine) buildFast(numInstrs int) *machineFast {
	fa := &machineFast{
		gslot:  make([]int32, numInstrs),
		call:   make([]*callInfo, numInstrs),
		byName: map[string]*callInfo{},
	}
	for i := range fa.gslot {
		fa.gslot[i] = -1
	}
	for _, b := range m.la.Fn.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpLoadGlobal, ir.OpStoreGlobal:
				fa.gslot[in.ID] = int32(m.env.Globals.SlotOf(in.Name))
			case ir.OpCall:
				fa.call[in.ID] = fa.resolve(m, in.Name)
			}
		}
	}
	return fa
}

// lockSetsOf returns the rank-ordered lock sets of a member, through the
// fast layer's memo when it is active.
func (m *machine) lockSetsOf(name string) []*types.Set {
	if m.fast != nil {
		return m.fast.resolve(m, name).lockSets
	}
	return m.cfg.Model.LockSets(name)
}

func newMachine(cfg Config, la *pipeline.LoopAnalysis, sched *transform.Schedule, mode SyncMode) *machine {
	numInstrs := la.Fn.NumInstrs()
	m := &machine{
		cfg:      cfg,
		la:       la,
		sched:    sched,
		mode:     mode,
		env:      interp.NewEnv(cfg.Prog, cfg.Builtins),
		locks:    map[*types.Set]*des.Lock{},
		cells:    map[int]*sharedCell{},
		instrPos: make([]instrLoc, numInstrs),
	}
	m.cellAt = make([]*sharedCell, len(la.Fn.Locals))
	for _, s := range sched.SharedSlots {
		c := &sharedCell{}
		m.cells[s] = c
		m.cellAt[s] = c
	}
	for _, b := range la.Fn.Blocks {
		for i, in := range b.Instrs {
			m.instrPos[in.ID] = instrLoc{block: b.ID, index: i}
		}
	}
	m.unitOf = make([]int, numInstrs)
	for i := range m.unitOf {
		m.unitOf[i] = noUnit
	}
	for ui, instrs := range la.Units.Units {
		for _, in := range instrs {
			m.unitOf[in.ID] = ui
		}
	}
	for _, in := range la.Units.Cond {
		m.unitOf[in.ID] = -1
	}
	for _, in := range la.Units.Post {
		m.unitOf[in.ID] = -1
	}
	m.exitBlock = -1
	for _, e := range la.Loop.Exits {
		m.exitBlock = e
		break
	}
	if interp.FastEnabled {
		m.fast = m.buildFast(numInstrs)
	}
	return m
}

// isShared reports whether the slot is promoted to a shared cell.
func (m *machine) isShared(slot int) bool {
	return slot >= 0 && slot < len(m.cellAt) && m.cellAt[slot] != nil
}

// runMain executes main: prologue up to the loop, the parallel loop, and
// the epilogue after it.
func (m *machine) runMain(th *des.Thread, threads int) error {
	f := m.la.Fn
	fr := newFrame(f)
	st := m.newStepper(th, fr)

	// Prologue: entry block to the loop header.
	if err := st.runBlocks(0, m.la.Loop.Header); err != nil {
		return err
	}

	// Promote shared slots into cells.
	for slot, cell := range m.cells {
		cell.v = fr.locals[slot]
	}

	var err error
	switch m.sched.Kind {
	case transform.DOALL:
		err = m.runDOALL(th, fr, threads)
	case transform.DSWP, transform.PSDSWP:
		err = m.runPipeline(th, fr, threads)
	default:
		return fmt.Errorf("exec: unsupported schedule kind %v", m.sched.Kind)
	}
	if err != nil {
		return err
	}

	// Demote shared cells back to the frame.
	for slot, cell := range m.cells {
		fr.locals[slot] = cell.v
	}

	// Epilogue: from the loop exit to the end of main.
	if m.exitBlock < 0 {
		return nil
	}
	return st.runBlocks(m.exitBlock, -1)
}
