package exec_test

import (
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/transform"
	"repro/internal/vm/des"
	"repro/internal/vm/exec"
)

// svcSrc is the service-mode test program: an effectively unbounded loop (the
// arrival trace, not the loop bound, ends a service run) over the usual
// open/read/digest/close/print request body.
const svcSrc = `
#pragma commset decl FSET
#pragma commset predicate FSET (i1)(i2) : i1 != i2
void main() {
	int total = 0;
	for (int i = 0; i < 100000; i++) {
		int fp = 0;
		int raw = 0;
		#pragma commset member FSET(i), SELF
		{ fp = fopen_i(i); }
		#pragma commset member FSET(i), SELF
		{ raw = fread(fp); }
		int d = digest(raw);
		#pragma commset member FSET(i), SELF
		{
			fclose(fp);
			total += d;
		}
		#pragma commset member FSET(i), SELF
		{ print_int(d); }
	}
	print_int(total);
}
`

// svcDetSrc drops SELF from the print member, forcing an in-order print
// stage: the compiler schedules a pipeline.
const svcDetSrc = `
#pragma commset decl FSET
#pragma commset predicate FSET (i1)(i2) : i1 != i2
void main() {
	int total = 0;
	for (int i = 0; i < 100000; i++) {
		int fp = 0;
		int raw = 0;
		#pragma commset member FSET(i), SELF
		{ fp = fopen_i(i); }
		#pragma commset member FSET(i), SELF
		{ raw = fread(fp); }
		int d = digest(raw);
		#pragma commset member FSET(i), SELF
		{
			fclose(fp);
			total += d;
		}
		#pragma commset member FSET(i)
		{ print_int(d); }
	}
	print_int(total);
}
`

// Per-request sequential cost of svcSrc is ~20.4k virtual-time units
// (dominated by the 20k digest).
const svcReqCost = 20400

func checkBalance(t *testing.T, r *exec.ServiceResult) {
	t.Helper()
	sum := r.Completed + r.ShedBucket + r.ShedQueue + r.Abandoned + r.Rejected + r.Failed
	if sum != r.Generated {
		t.Errorf("accounting: generated %d != sum of buckets %d (%+v)", r.Generated, sum, r)
	}
}

func TestServiceDOALLCompletesAllUnderModerateLoad(t *testing.T) {
	cp := compileFor(t, svcSrc, 4)
	sched := cp.sched[transform.DOALL]
	if sched == nil {
		t.Fatal("no DOALL schedule")
	}
	svc := exec.ServiceConfig{
		Arrivals: des.NewPoisson(7, 8000), // ~60% utilization of 4 workers
		Requests: 40,
		SLO:      10 * svcReqCost,
	}
	res, err := exec.RunService(cp.cfg, svc, cp.la, sched, exec.SyncMutex, 4)
	if err != nil {
		t.Fatalf("RunService: %v", err)
	}
	checkBalance(t, res)
	if res.Completed != 40 || res.Generated != 40 {
		t.Errorf("completed %d of %d generated, want all 40", res.Completed, res.Generated)
	}
	if res.P50 <= 0 || res.P99 < res.P50 || res.P999 < res.P99 || res.MaxLatency < res.P999 {
		t.Errorf("latency percentiles inconsistent: p50=%d p99=%d p999=%d max=%d",
			res.P50, res.P99, res.P999, res.MaxLatency)
	}
	if res.ThroughputPerMvt <= 0 {
		t.Errorf("throughput = %v, want > 0", res.ThroughputPerMvt)
	}
	// One print per completed request plus the epilogue total.
	if got := len(cp.w.prints); got != 41 {
		t.Errorf("%d prints, want 41", got)
	}
}

func TestServiceOverloadShedsAndAbandonsWithoutSilentDrops(t *testing.T) {
	cp := compileFor(t, svcSrc, 2)
	sched := cp.sched[transform.DOALL]
	svc := exec.ServiceConfig{
		Arrivals:   des.NewBursty(11, 2000, 80000), // ~5x the 2-worker service rate in bursts
		Requests:   80,
		IngressCap: 8,
		Deadline:   6 * svcReqCost,
		SLO:        4 * svcReqCost,
	}
	res, err := exec.RunService(cp.cfg, svc, cp.la, sched, exec.SyncSpin, 2)
	if err != nil {
		t.Fatalf("RunService: %v", err)
	}
	checkBalance(t, res)
	if res.ShedQueue == 0 && res.Abandoned == 0 {
		t.Errorf("overload produced neither queue sheds nor abandonment: %+v", res)
	}
	if res.IngressHighWater == 0 {
		t.Error("ingress high-water mark not recorded")
	}
	if res.Completed == 0 {
		t.Error("no requests completed under overload")
	}
	// Effects match completions exactly: zero silent drops at the effect
	// layer too (epilogue total print is the +1).
	if got := len(cp.w.prints); got != res.Completed+1 {
		t.Errorf("%d prints for %d completions", got, res.Completed)
	}
}

func TestServiceTokenBucketShedsPerClass(t *testing.T) {
	cp := compileFor(t, svcSrc, 4)
	sched := cp.sched[transform.DOALL]
	svc := exec.ServiceConfig{
		Arrivals: des.NewPoisson(3, 8000),
		Requests: 40,
		Classes: []exec.ServiceClass{
			{Name: "paid"},
			{Name: "free", Rate: 10, Burst: 2}, // 10 req/Mvt: far below the offered rate
		},
		ClassOf: func(k int) int { return k % 2 },
	}
	res, err := exec.RunService(cp.cfg, svc, cp.la, sched, exec.SyncMutex, 4)
	if err != nil {
		t.Fatalf("RunService: %v", err)
	}
	checkBalance(t, res)
	if res.ShedBucket == 0 {
		t.Errorf("rate-limited class was never bucket-shed: %+v", res)
	}
	if res.Completed < 20 {
		t.Errorf("unlimited class should complete its 20 requests, completed %d total", res.Completed)
	}
}

func TestServiceScalerWalksLadderAndFallsBackSequential(t *testing.T) {
	mkSvc := func() exec.ServiceConfig {
		return exec.ServiceConfig{
			Arrivals:   des.NewPoisson(13, 600), // ~17x a 2-worker pool's capacity
			Requests:   120,
			IngressCap: 12,
			SLO:        2 * svcReqCost,
			EstReqCost: svcReqCost,
			Classes:    []exec.ServiceClass{{Name: "best-effort", ShedAtLevel: 1}},
			Scaler: &exec.ScalerConfig{
				Window:        15000,
				EscalateAfter: 1,
				RecoverAfter:  8,
				BadAttainment: 0.9,
				BadPressure:   0.5,
				AllowFallback: true,
			},
		}
	}
	cp := compileFor(t, svcSrc, 2)
	pres, perr := exec.RunService(cp.cfg, mkSvc(), cp.la, cp.sched[transform.DOALL], exec.SyncMutex, 2)
	if perr == nil {
		t.Fatalf("overloaded parallel service should abort via the ladder, got %+v", pres)
	}
	var ov *exec.OverloadError
	if !errors.As(perr, &ov) {
		t.Fatalf("err = %v, want OverloadError", perr)
	}
	if pres == nil || pres.MaxLevel < 3 {
		t.Fatalf("aborted result should carry the ladder walk, got %+v", pres)
	}
	if pres.ShedBucket == 0 {
		t.Error("level-1 class shedding never fired before the abort")
	}
	if len(pres.ScaleEvents) == 0 {
		t.Error("no scale events recorded")
	}

	// Full ladder through RunServiceResilient: parallel abort, sequential
	// fallback completes (the fallback clamps the ladder below the abort
	// rung).
	cp2 := compileFor(t, svcSrc, 2)
	res2, err2 := exec.RunServiceResilient(exec.ServiceResilientOptions{
		LA:      cp2.la,
		Sched:   cp2.sched[transform.DOALL],
		Mode:    exec.SyncMutex,
		Threads: 2,
		Fresh: func() (exec.Config, exec.ServiceConfig) {
			cp2.w.reset()
			return cp2.cfg, mkSvc()
		},
	})
	if err2 != nil {
		t.Fatalf("RunServiceResilient: %v", err2)
	}
	if !res2.FellBack {
		t.Errorf("expected sequential fallback, got schedule %s", res2.Schedule)
	}
	if res2.Aborted == nil || res2.Aborted.MaxLevel < 3 {
		t.Errorf("fallback should carry the aborted attempt's ladder evidence: %+v", res2.Aborted)
	}
	checkBalance(t, res2)
}

func TestServiceScaleDownRetargetsPool(t *testing.T) {
	cp := compileFor(t, svcSrc, 6)
	svc := exec.ServiceConfig{
		Arrivals:   des.NewPoisson(5, 30000), // light load: ~0.7 workers' worth
		Requests:   40,
		SLO:        10 * svcReqCost,
		EstReqCost: svcReqCost,
		Scaler:     &exec.ScalerConfig{Window: 40000, MinWorkers: 1},
	}
	res, err := exec.RunService(cp.cfg, svc, cp.la, cp.sched[transform.DOALL], exec.SyncMutex, 6)
	if err != nil {
		t.Fatalf("RunService: %v", err)
	}
	checkBalance(t, res)
	if res.Completed != 40 {
		t.Errorf("completed %d, want 40", res.Completed)
	}
	retargeted := false
	for _, e := range res.ScaleEvents {
		if e.Workers < 6 {
			retargeted = true
		}
	}
	if !retargeted {
		t.Errorf("light load never scaled the 6-worker pool down: %+v", res.ScaleEvents)
	}
}

// crashCheck builds a deterministic per-role tick trigger.
func crashCheck(target string, tick int, perm bool) func(string) (bool, bool) {
	ticks := map[string]int{}
	fired := false
	return func(role string) (bool, bool) {
		ticks[role]++
		if !fired && role == target && ticks[role] == tick {
			fired = true
			return true, perm
		}
		return false, false
	}
}

func TestServiceTransientCrashRestartsWorker(t *testing.T) {
	cp := compileFor(t, svcSrc, 3)
	cp.cfg.Recovery = &exec.Recovery{}
	cp.cfg.CrashCheck = crashCheck("svc.1", 4, false)
	svc := exec.ServiceConfig{
		Arrivals: des.NewPoisson(7, 9000),
		Requests: 30,
		SLO:      10 * svcReqCost,
	}
	res, err := exec.RunService(cp.cfg, svc, cp.la, cp.sched[transform.DOALL], exec.SyncMutex, 3)
	if err != nil {
		t.Fatalf("RunService: %v", err)
	}
	checkBalance(t, res)
	if res.Restarts != 1 {
		t.Errorf("restarts = %d, want 1", res.Restarts)
	}
	if res.Completed != 30 {
		t.Errorf("completed %d, want all 30 (crash recovery must not drop requests)", res.Completed)
	}
	if len(res.RestartHistory) != 1 || res.RestartHistory[0].Thread != "svc.1" {
		t.Errorf("restart history %+v", res.RestartHistory)
	}
}

func TestServicePermanentCrashPoolAbsorbs(t *testing.T) {
	cp := compileFor(t, svcSrc, 3)
	cp.cfg.Recovery = &exec.Recovery{}
	cp.cfg.CrashCheck = crashCheck("svc.1", 4, true)
	svc := exec.ServiceConfig{
		Arrivals: des.NewPoisson(7, 9000),
		Requests: 30,
		SLO:      10 * svcReqCost,
	}
	res, err := exec.RunService(cp.cfg, svc, cp.la, cp.sched[transform.DOALL], exec.SyncMutex, 3)
	if err != nil {
		t.Fatalf("RunService: %v", err)
	}
	checkBalance(t, res)
	if res.DeadWorkers != 1 {
		t.Errorf("dead workers = %d, want 1", res.DeadWorkers)
	}
	if res.Completed != 30 {
		t.Errorf("completed %d, want all 30 (survivors absorb the dead worker's share)", res.Completed)
	}
}

func TestServicePipelineCompletesAll(t *testing.T) {
	cp := compileFor(t, svcDetSrc, 4)
	sched := cp.sched[transform.DSWP]
	if sched == nil {
		sched = cp.sched[transform.PSDSWP]
	}
	if sched == nil {
		t.Fatal("no pipeline schedule")
	}
	svc := exec.ServiceConfig{
		Arrivals: des.NewDiurnal(9, 9000, 36),
		Requests: 36,
		SLO:      10 * svcReqCost,
	}
	res, err := exec.RunService(cp.cfg, svc, cp.la, sched, exec.SyncMutex, 4)
	if err != nil {
		t.Fatalf("RunService: %v", err)
	}
	checkBalance(t, res)
	if res.Completed != 36 {
		t.Errorf("completed %d, want 36", res.Completed)
	}
	if got := len(cp.w.prints); got != 37 {
		t.Errorf("%d prints, want 37", got)
	}
}

func TestServicePipelinePermanentStageCrashFallsBack(t *testing.T) {
	cp := compileFor(t, svcDetSrc, 4)
	sched := cp.sched[transform.DSWP]
	if sched == nil {
		sched = cp.sched[transform.PSDSWP]
	}
	roster := exec.CrashRoster(sched, 4)
	if len(roster) == 0 {
		t.Fatal("empty pipeline roster")
	}
	mk := func(crash bool) (exec.Config, exec.ServiceConfig) {
		c := compileFor(t, svcDetSrc, 4)
		cp = c
		cfg := c.cfg
		cfg.Recovery = &exec.Recovery{}
		if crash {
			cfg.CrashCheck = crashCheck(roster[0], 5, true)
		}
		return cfg, exec.ServiceConfig{
			Arrivals: des.NewPoisson(21, 9000),
			Requests: 24,
			SLO:      10 * svcReqCost,
		}
	}
	first := true
	res, err := exec.RunServiceResilient(exec.ServiceResilientOptions{
		LA:      cp.la,
		Sched:   sched,
		Mode:    exec.SyncMutex,
		Threads: 4,
		Fresh: func() (exec.Config, exec.ServiceConfig) {
			cfg, svc := mk(first)
			first = false
			return cfg, svc
		},
	})
	if err != nil {
		t.Fatalf("RunServiceResilient: %v", err)
	}
	if !res.FellBack {
		t.Errorf("permanent stage crash should collapse to the sequential service, got %s", res.Schedule)
	}
	if res.Completed != 24 {
		t.Errorf("fallback completed %d, want 24", res.Completed)
	}
	checkBalance(t, res)
	if res.Aborted == nil {
		t.Error("fallback should carry the aborted attempt's evidence")
	}
}

func TestServiceDeterministicPerSeed(t *testing.T) {
	run := func() []byte {
		cp := compileFor(t, svcSrc, 3)
		cp.cfg.Recovery = &exec.Recovery{}
		cp.cfg.CrashCheck = crashCheck("svc.2", 6, false)
		svc := exec.ServiceConfig{
			Arrivals:   des.NewBursty(42, 3000, 60000),
			Requests:   60,
			IngressCap: 10,
			Deadline:   8 * svcReqCost,
			SLO:        4 * svcReqCost,
			EstReqCost: svcReqCost,
			Scaler:     &exec.ScalerConfig{Window: 30000},
		}
		res, err := exec.RunService(cp.cfg, svc, cp.la, cp.sched[transform.DOALL], exec.SyncSpin, 3)
		if err != nil {
			t.Fatalf("RunService: %v", err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Errorf("same seed diverged:\n%s\nvs\n%s", a, b)
	}
}

func TestServiceRosterSplitsAlwaysAndScalable(t *testing.T) {
	cp := compileFor(t, svcSrc, 4)
	always, scalable := exec.ServiceRoster(cp.sched[transform.DOALL], 4, 2)
	if len(always) != 2 || always[0] != "svc.0" || always[1] != "svc.1" {
		t.Errorf("always = %v", always)
	}
	if len(scalable) != 2 || scalable[0] != "svc.2" || scalable[1] != "svc.3" {
		t.Errorf("scalable = %v", scalable)
	}

	cpd := compileFor(t, svcDetSrc, 4)
	sched := cpd.sched[transform.DSWP]
	if sched == nil {
		sched = cpd.sched[transform.PSDSWP]
	}
	always, scalable = exec.ServiceRoster(sched, 4, 1)
	if len(always) == 0 || len(scalable) != 0 {
		t.Errorf("pipeline roster: always=%v scalable=%v (stages are structural)", always, scalable)
	}
}
