package exec

import (
	"fmt"

	"repro/internal/types"
	"repro/internal/vm/des"
	"repro/internal/vm/value"
)

// runCond evaluates the loop condition group on the stepper's frame and
// reports whether the loop should exit.
func (m *machine) runCond(st *stepper) (bool, error) {
	s, err := st.runGroup(m.la.Units.Cond)
	if err != nil {
		return false, err
	}
	if s.ret {
		return false, fmt.Errorf("exec: loop condition returned from function")
	}
	return !m.la.Loop.Contains(s.nextBlk), nil
}

// sweepResult is the outcome of one completed sweep — a worker's own
// initial range or an adopted stolen one. ctrl marks sweeps that ran loop
// control to its exit (or the MaxIters calibration cap), whose frames
// therefore hold the final control state.
type sweepResult struct {
	fr       *frame
	lastIter int64 // last owned iteration whose body ran in this sweep
	ctrl     bool
}

// doallDone is the join message of one DOALL worker chain (or salvage
// runner). A crashed join is the death certificate of a permanently dead
// worker: it carries the worker's last checkpoint so the main thread can
// re-partition the remaining owned iterations across the survivors.
type doallDone struct {
	worker int
	sweeps []sweepResult
	vtime  int64 // join virtual time (loop-completion skew accounting)

	crashed   bool
	deathIter int64      // pass at which the crash tick hit
	ck        *doallCkpt // last checkpoint of the dead worker
}

// doallCkpt is one DOALL worker's resumable state: the current sweep's
// assignment, the completed-pass watermark (iter is the next pass to
// execute), a compressed frame snapshot, the last owned iteration
// executed, the privatized shadow state, and the sweeps already completed
// by this chain (immutable once recorded, carried so a restart loses no
// finished work). The externalized-effect baselines that gate safe
// re-execution live beside it in doallState (ckEff/ckWrites): the
// output-commit discipline refreshes the checkpoint right after any
// externalizing pass, so the window between checkpoint and crash is always
// replay-safe.
type doallCkpt struct {
	asg      assignment
	iter     int64
	cfr      *ckFrame
	lastIter int64
	priv     map[*types.Set]int
	done     []sweepResult
}

// doallState is the live, restartable state of one DOALL worker chain
// across its simulated-thread incarnations and its sequence of sweeps.
type doallState struct {
	w    int
	role string

	asg      assignment // current sweep's range and ownership identity
	iter     int64      // next pass to execute
	lastIter int64      // last owned iteration whose body ran (this sweep)

	lastTop int64 // virtual time of the previous pass top (-1 = none yet)
	ranBody bool  // the pass since lastTop ran an owned body

	done []sweepResult // completed sweeps of this chain

	ck       doallCkpt
	ckEff    int // stepper effects counter at the last checkpoint
	ckWrites int // interp heap-write counter at the last checkpoint

	restartsLeft int
	restartN     int // incarnation ordinal (for replacement thread names)
}

// takeDoallCkpt refreshes the worker's checkpoint from its live state,
// charging the snapshot by its compressed size in virtual time.
func (m *machine) takeDoallCkpt(th *des.Thread, st *stepper, ws *doallState) {
	cfr := encodeFrame(st.fr, m.ckRef)
	th.Charge(m.checkpointCost(cfr))
	ws.ck = doallCkpt{
		asg:      ws.asg,
		iter:     ws.iter,
		cfr:      cfr,
		lastIter: ws.lastIter,
		priv:     copyPriv(st.privCommits),
		done:     ws.done,
	}
	ws.ckEff = st.effects
	ws.ckWrites = st.it.HeapWrites
}

// runIterBody executes one DOALL iteration's body units. In resilient mode
// a transiently failed iteration is re-executed from its start snapshot —
// but only when the failed attempt externalized nothing (no member commits,
// shared-cell writes, effectful builtin calls, or global stores), so a
// retry can never duplicate a visible update.
func (m *machine) runIterBody(st *stepper, fr *frame) error {
	runUnits := func() error {
		for _, unit := range m.la.Units.Units {
			if _, err := st.runGroup(unit); err != nil {
				return err
			}
		}
		return nil
	}
	r := m.cfg.Recovery
	if r == nil {
		return runUnits()
	}
	snapLocals := append([]value.Value(nil), fr.locals...)
	snapRegs := append([]value.Value(nil), fr.regs...)
	snapShared := append([]int(nil), fr.sharedSrc...)
	effects0, writes0 := st.effects, st.it.HeapWrites
	for attempt := 0; ; attempt++ {
		err := runUnits()
		if err == nil {
			return nil
		}
		if !IsTransient(err) || attempt >= r.iterRetries() ||
			st.effects != effects0 || st.it.HeapWrites != writes0 {
			return err
		}
		copy(fr.locals, snapLocals)
		copy(fr.regs, snapRegs)
		copy(fr.sharedSrc, snapShared)
		m.stats.iterRetries++
		st.th.Sleep(r.backoff(attempt))
	}
}

// doallRun drives one worker chain: the initial sweep, then — with
// stealing enabled — any adopted stolen sweeps, merging the privatized
// shadow exactly once and pushing exactly one join message at retirement.
// Shared by the original incarnation of each worker role and by any
// checkpoint-restored replacement.
func (m *machine) doallRun(th *des.Thread, st *stepper, ws *doallState, sched *iterSched, board *stealBoard, join *des.Queue) error {
	for {
		res, alive, err := m.doallSweep(th, st, ws, sched, board, join)
		if err != nil {
			return err // legacy mode: abort the whole simulation
		}
		if !alive {
			return nil // crashed: restart or death certificate handled it
		}
		ws.done = append(ws.done, res)
		if board == nil {
			break
		}
		board.retire(ws.w)
		g := m.doallSteal(th, ws, board)
		if g == nil {
			break
		}
		m.doallAdopt(th, st, ws, board, g)
	}
	st.mergePrivatized()
	th.Push(join, doallDone{worker: ws.w, sweeps: ws.done, vtime: th.VTime})
	return nil
}

// doallSweep executes the current assignment to its end. Each pass is one
// crash tick and one straggler tick; the checkpoint refreshes at the end
// of any pass that externalized an effect (output-commit) and otherwise
// every Recovery.CheckpointEvery passes, so a crash window never holds
// externalized work. With a steal board, the pass top also publishes the
// watermark and answers any pending steal request. Returns alive=false
// when the worker crashed (the crash path owns the hand-off).
func (m *machine) doallSweep(th *des.Thread, st *stepper, ws *doallState, sched *iterSched, board *stealBoard, join *des.Queue) (sweepResult, bool, error) {
	// bail handles a worker-fatal error: legacy mode aborts the whole
	// simulation; resilient mode records the diagnosis and shuts the
	// worker down in an orderly fashion (join message still sent).
	bail := func(err error) (abort bool, fatal error) {
		if !m.resilient() {
			return true, err
		}
		m.fail(ws.role, err)
		return false, nil
	}
	ctrl := false
	for {
		iter := ws.iter
		if m.resilient() && m.failed() {
			break // a sibling hit an unrecoverable fault; stop early
		}
		if m.cfg.MaxIters > 0 && iter >= m.cfg.MaxIters {
			ctrl = true // calibration slice: stop after the sampled prefix
			if board != nil {
				board.close(m.cfg.MaxIters)
			}
			break
		}
		if ws.asg.hi >= 0 && iter >= ws.asg.hi {
			break // bounded sweep: range exhausted (a thief owns the rest)
		}
		if die, perm := m.crashAt(ws.role); die {
			return sweepResult{}, false, m.doallCrash(th, ws, sched, board, join, perm)
		}
		if board != nil {
			e := &board.entries[ws.w]
			// Publish pace: the pass-top-to-pass-top delta covers the whole
			// previous pass, including any straggler surcharge (charged at
			// the pass end). Only owned-body passes count — control-only and
			// replay passes would deflate the average.
			if ws.lastTop >= 0 && ws.ranBody {
				e.busy += th.VTime - ws.lastTop
				e.passes++
			}
			ws.lastTop = th.VTime
			ws.ranBody = false
			e.cur = iter
			if e.reqFrom >= 0 {
				m.serveSteal(th, st, ws, board)
			}
		}
		slow := m.straggleAt(ws.role)
		passStart := th.VTime
		exit, err := m.runCond(st)
		if err != nil {
			if abort, fatal := bail(err); abort {
				return sweepResult{}, false, fatal
			}
			break
		}
		if exit {
			ctrl = true
			if board != nil {
				board.close(iter)
			}
			break
		}
		if iter >= ws.asg.lo && sched.owns(ws.asg.src, iter, th.Sleep) {
			if err := m.runIterBody(st, st.fr); err != nil {
				if abort, fatal := bail(err); abort {
					return sweepResult{}, false, fatal
				}
				break
			}
			ws.lastIter = iter
			ws.ranBody = true
		}
		if _, err := st.runGroup(m.la.Units.Post); err != nil {
			if abort, fatal := bail(err); abort {
				return sweepResult{}, false, fatal
			}
			break
		}
		straggleCharge(th, slow, th.VTime-passStart)
		ws.iter = iter + 1
		if m.checkpointing() {
			externalized := st.effects != ws.ckEff || st.it.HeapWrites != ws.ckWrites
			if externalized || ws.iter-ws.ck.iter >= m.ckptEvery() {
				m.takeDoallCkpt(th, st, ws)
			}
		}
	}
	return sweepResult{fr: st.fr, lastIter: ws.lastIter, ctrl: ctrl}, true, nil
}

// doallCrash handles the death of a DOALL worker at a crash tick. The
// thread's private state dies with it; what survives is the shared
// substrate and the last checkpoint. A transient death spawns a
// replacement thread (after the supervisor's detection latency) that
// restores the checkpoint and replays the un-externalized window; a
// permanent death — or a transient one past the restart budget — instead
// posts a death certificate on the join queue so the main thread can
// re-partition the remaining owned iterations across the survivors. Either
// way any pending steal request gets its answer: a transiently crashed
// victim keeps it pending for the replacement, a permanent death denies it.
func (m *machine) doallCrash(th *des.Thread, ws *doallState, sched *iterSched, board *stealBoard, join *des.Queue, perm bool) error {
	reason := "injected crash"
	if perm {
		reason = "injected permanent crash"
	}
	if !m.resilient() {
		m.sim.RecordDeath(ws.role, th.VTime, reason)
		return &CrashError{Thread: ws.role, VTime: th.VTime, Perm: perm, Reason: reason}
	}
	if !perm && ws.restartsLeft <= 0 {
		perm = true
		reason = "crash with restart budget exhausted"
	}
	rec := RestartRecord{
		Thread:    ws.role,
		VTime:     th.VTime,
		Event:     ws.iter,
		CkptAge:   ws.iter - ws.ck.iter,
		Permanent: perm,
	}
	if !perm {
		rec.Replayed = rec.CkptAge
	}
	m.restarts = append(m.restarts, rec)
	ri := len(m.restarts) - 1
	m.sim.RecordDeath(ws.role, th.VTime, reason)
	if perm {
		if board != nil {
			board.markDead(ws.w)
		}
		ck := ws.ck
		th.Push(join, doallDone{
			worker: ws.w, sweeps: ws.done, vtime: th.VTime,
			crashed: true, deathIter: ws.iter, ck: &ck,
		})
		return nil
	}
	m.stats.restarts++
	r := m.cfg.Recovery
	ck := ws.ck
	nextLeft := ws.restartsLeft - 1
	n := ws.restartN + 1
	m.sim.Spawn(fmt.Sprintf("%s#r%d", ws.role, n), th.VTime+r.restartDelay(), func(th2 *des.Thread) error {
		th2.Charge(m.restoreCost(ck.cfr))
		m.restarts[ri].RecoveredVTime = th2.VTime
		st2 := m.newStepper(th2, ck.cfr.decode())
		st2.sharedActive = true
		st2.privatized = m.cfg.Tune.Privatize
		st2.privCommits = copyPriv(ck.priv)
		ws2 := &doallState{
			w: ws.w, role: ws.role,
			asg: ck.asg, iter: ck.iter, lastIter: ck.lastIter,
			lastTop: -1,
			done:    ck.done,
			ck: doallCkpt{
				asg: ck.asg, iter: ck.iter, cfr: ck.cfr,
				lastIter: ck.lastIter, priv: copyPriv(ck.priv),
				done: ck.done,
			},
			restartsLeft: nextLeft,
			restartN:     n,
		}
		return m.doallRun(th2, st2, ws2, sched, board, join)
	})
	return nil
}

// doallSalvage re-executes a permanently dead worker's share of the loop
// on behalf of one survivor: it restores the dead worker's checkpoint onto
// a fresh frame, replays the loop-control machinery from the checkpointed
// pass, and executes every `nshares`-th owned iteration of the
// checkpointed assignment (share k of a deterministic round-robin split).
// The window between the checkpoint and the death externalized nothing
// (output-commit), and passes at or beyond the death never ran, so
// re-executing both duplicates no visible update. The assignment bounds
// matter: a dead thief is salvaged only over its stolen range, and a
// robbed victim only up to its truncated hi — iterations that migrated
// stay exactly-once. Share 0 also adopts the dead worker's unmerged
// privatized shadow, so each shadow is still merged exactly once.
func (m *machine) doallSalvage(th *des.Thread, d doallDone, share, nshares int, sched *iterSched, join *des.Queue) error {
	ck := d.ck
	th.Charge(m.restoreCost(ck.cfr))
	fr := ck.cfr.decode()
	st := m.newStepper(th, fr)
	st.sharedActive = true
	st.privatized = m.cfg.Tune.Privatize
	if share == 0 {
		st.privCommits = copyPriv(ck.priv)
	}
	role := fmt.Sprintf("salvage.%d.%d", d.worker, share)
	lastIter := int64(-1)
	ordinal := 0
	ctrl := false
	for iter := ck.iter; ; iter++ {
		if m.failed() {
			break
		}
		if m.cfg.MaxIters > 0 && iter >= m.cfg.MaxIters {
			ctrl = true
			break
		}
		if ck.asg.hi >= 0 && iter >= ck.asg.hi {
			break
		}
		if die, perm := m.crashAt(role); die {
			// A salvage runner has no checkpoint chain of its own; its
			// death (transient or not) just fails the salvage attempt.
			m.fail(role, &CrashError{Thread: role, VTime: th.VTime, Perm: perm, Reason: "injected crash during salvage"})
			break
		}
		slow := m.straggleAt(role)
		passStart := th.VTime
		exit, err := m.runCond(st)
		if err != nil {
			m.fail(role, err)
			break
		}
		if exit {
			ctrl = true
			break
		}
		if iter >= ck.asg.lo && sched.owns(ck.asg.src, iter, th.Sleep) {
			mine := ordinal%nshares == share
			ordinal++
			if mine {
				if err := m.runIterBody(st, fr); err != nil {
					m.fail(role, err)
					break
				}
				lastIter = iter
			}
		}
		if _, err := st.runGroup(m.la.Units.Post); err != nil {
			m.fail(role, err)
			break
		}
		straggleCharge(th, slow, th.VTime-passStart)
	}
	st.mergePrivatized()
	th.Push(join, doallDone{
		worker: d.worker, vtime: th.VTime,
		sweeps: []sweepResult{{fr: fr, lastIter: lastIter, ctrl: ctrl}},
	})
	return nil
}

// runDOALL executes the loop with iterations scheduled over `threads`
// workers (the calling thread acts as worker 0) according to the tuning's
// iteration schedule — static round-robin, chunked, or guided with a
// claim board (see iterSched). Every worker privately executes the
// loop-control machinery — the canonical privatized-induction-variable
// DOALL codegen — and runs the body units only for its own iterations.
// With Tune.Privatize, commutative member updates run against per-thread
// shadow state and each worker publishes one synchronized merge per
// touched set before joining.
//
// With Tune.Steal, workers that finish do not retire: they adopt half of
// the most-behind peer's un-started range over the deterministic steal
// board (see steal.go), repairing stragglers and skewed schedules while
// the loop runs. With a crash plan armed, each worker checkpoints (see
// doallSweep), dying workers are restarted from their checkpoints, and
// permanently dead workers have their remaining assignment re-partitioned
// across the survivors at join time (degraded mode).
func (m *machine) runDOALL(mainTh *des.Thread, mainFr *frame, threads int) error {
	join := m.sim.NewQueue("doall.join", threads)
	// One claim-board round trip costs an uncontended spin acquire+release
	// (an atomic fetch-and-add on the shared chunk counter).
	sched := newIterSched(m.cfg.Tune, threads, m.cfg.Cost.SpinAcquire+m.cfg.Cost.SpinRelease)
	var board *stealBoard
	if m.cfg.Tune.Steal && threads > 1 {
		board = newStealBoard(threads)
	}
	if m.checkpointing() || board != nil {
		// The immutable compression reference every checkpoint of this
		// loop deltas against: the frame each worker starts from.
		m.ckRef = mainFr.clone()
	}

	worker := func(th *des.Thread, w int) error {
		st := m.newStepper(th, mainFr.clone())
		st.sharedActive = true
		st.privatized = m.cfg.Tune.Privatize
		ws := &doallState{
			w: w, role: fmt.Sprintf("doall.%d", w),
			asg:      assignment{src: w, lo: 0, hi: -1},
			lastIter: -1,
			lastTop:  -1,
		}
		ws.ck.lastIter = -1
		if r := m.cfg.Recovery; r != nil {
			ws.restartsLeft = r.maxRestarts()
		}
		if m.checkpointing() {
			m.takeDoallCkpt(th, st, ws) // initial checkpoint at pass 0
		}
		return m.doallRun(th, st, ws, sched, board, join)
	}

	start := mainTh.VTime
	for w := 1; w < threads; w++ {
		w := w
		m.sim.Spawn(fmt.Sprintf("doall.%d", w), start, func(th *des.Thread) error {
			return worker(th, w)
		})
	}
	if err := worker(mainTh, 0); err != nil {
		return err
	}

	// Collect workers and merge live-outs. Control state comes from any
	// sweep that ran loop control to its exit — every chain's unbounded
	// sweep did, and they agree; body-written slots take their value from
	// the sweep that executed the globally last iteration (a dead worker's
	// checkpoint frame competes too: its pre-checkpoint iterations were
	// real).
	var ctrlFr, lastFr *frame
	lastIter := int64(-1)
	var crashed []doallDone
	consider := func(d doallDone) {
		for _, s := range d.sweeps {
			if s.fr == nil {
				continue
			}
			if s.ctrl && ctrlFr == nil {
				ctrlFr = s.fr
			}
			if s.lastIter > lastIter {
				lastIter = s.lastIter
				lastFr = s.fr
			}
		}
		if d.crashed && d.ck != nil && d.ck.cfr != nil && d.ck.lastIter > lastIter {
			lastIter = d.ck.lastIter
			lastFr = d.ck.cfr.decode()
		}
	}
	for i := 0; i < threads; i++ {
		d := mainTh.Pop(join).(doallDone)
		if d.crashed {
			crashed = append(crashed, d)
		} else {
			m.workerJoins = append(m.workerJoins, d.vtime)
		}
		consider(d)
	}

	// Degraded mode: re-partition each permanently dead worker's remaining
	// assignment across the survivors, one salvage runner per survivor.
	if len(crashed) > 0 && !m.failed() {
		survivors := threads - len(crashed)
		if survivors <= 0 {
			d := crashed[0]
			m.fail(fmt.Sprintf("doall.%d", d.worker), &CrashError{
				Thread: fmt.Sprintf("doall.%d", d.worker), VTime: mainTh.VTime,
				Perm: true, Reason: "permanent crash with no surviving workers",
			})
		} else {
			start := mainTh.VTime + m.cfg.Recovery.restartDelay()
			for _, d := range crashed {
				m.stats.repartitioned++
				m.markRecovered(fmt.Sprintf("doall.%d", d.worker), start)
				d := d
				for k := 0; k < survivors; k++ {
					k := k
					m.sim.Spawn(fmt.Sprintf("salvage.%d.%d", d.worker, k), start, func(th *des.Thread) error {
						return m.doallSalvage(th, d, k, survivors, sched, join)
					})
				}
			}
			for i := 0; i < len(crashed)*survivors; i++ {
				d := mainTh.Pop(join).(doallDone)
				m.workerJoins = append(m.workerJoins, d.vtime)
				consider(d)
			}
		}
	}
	if m.failDiag != nil {
		return m.failDiag
	}

	if ctrlFr == nil {
		ctrlFr = lastFr // every worker crashed but the run was not failed
	}
	if ctrlFr != nil {
		copy(mainFr.locals, ctrlFr.locals)
	}
	if lastFr != nil && lastFr != ctrlFr {
		for slot := range m.bodyWrites() {
			if !m.isShared(slot) {
				mainFr.locals[slot] = lastFr.locals[slot]
			}
		}
	}
	return nil
}
