package exec

import (
	"fmt"

	"repro/internal/vm/des"
)

// runCond evaluates the loop condition group on the stepper's frame and
// reports whether the loop should exit.
func (m *machine) runCond(st *stepper) (bool, error) {
	s, err := st.runGroup(m.la.Units.Cond)
	if err != nil {
		return false, err
	}
	if s.ret {
		return false, fmt.Errorf("exec: loop condition returned from function")
	}
	return !m.la.Loop.Contains(s.nextBlk), nil
}

// doallDone is the join message of one DOALL worker.
type doallDone struct {
	worker   int
	fr       *frame
	lastIter int64
}

// runDOALL executes the loop with iterations statically scheduled
// round-robin over `threads` workers (the calling thread acts as worker 0).
// Every worker privately executes the loop-control machinery — the
// canonical privatized-induction-variable DOALL codegen — and runs the body
// units only for its own iterations.
func (m *machine) runDOALL(mainTh *des.Thread, mainFr *frame, threads int) error {
	join := m.sim.NewQueue("doall.join", threads)

	worker := func(th *des.Thread, w int) error {
		fr := mainFr.clone()
		st := m.newStepper(th, fr)
		st.sharedActive = true
		lastIter := int64(-1)
		for iter := int64(0); ; iter++ {
			exit, err := m.runCond(st)
			if err != nil {
				return err
			}
			if exit {
				break
			}
			if iter%int64(threads) == int64(w) {
				for _, unit := range m.la.Units.Units {
					if _, err := st.runGroup(unit); err != nil {
						return err
					}
				}
				lastIter = iter
			}
			if _, err := st.runGroup(m.la.Units.Post); err != nil {
				return err
			}
		}
		th.Push(join, doallDone{worker: w, fr: fr, lastIter: lastIter})
		return nil
	}

	start := mainTh.VTime
	for w := 1; w < threads; w++ {
		w := w
		m.sim.Spawn(fmt.Sprintf("doall.%d", w), start, func(th *des.Thread) error {
			return worker(th, w)
		})
	}
	if err := worker(mainTh, 0); err != nil {
		return err
	}

	// Collect workers and merge live-outs: every worker ran the full
	// control loop, so control state agrees; body-written slots take their
	// value from the worker that executed the globally last iteration.
	var lastFr *frame
	lastIter := int64(-1)
	var anyFr *frame
	for i := 0; i < threads; i++ {
		d := mainTh.Pop(join).(doallDone)
		anyFr = d.fr
		if d.lastIter > lastIter {
			lastIter = d.lastIter
			lastFr = d.fr
		}
	}
	src := lastFr
	if src == nil {
		src = anyFr // zero-iteration loop: control state only
	}
	if src != nil {
		copy(mainFr.locals, src.locals)
	}
	return nil
}
