package exec

import (
	"fmt"

	"repro/internal/vm/des"
	"repro/internal/vm/value"
)

// runCond evaluates the loop condition group on the stepper's frame and
// reports whether the loop should exit.
func (m *machine) runCond(st *stepper) (bool, error) {
	s, err := st.runGroup(m.la.Units.Cond)
	if err != nil {
		return false, err
	}
	if s.ret {
		return false, fmt.Errorf("exec: loop condition returned from function")
	}
	return !m.la.Loop.Contains(s.nextBlk), nil
}

// doallDone is the join message of one DOALL worker.
type doallDone struct {
	worker   int
	fr       *frame
	lastIter int64
}

// runIterBody executes one DOALL iteration's body units. In resilient mode
// a transiently failed iteration is re-executed from its start snapshot —
// but only when the failed attempt externalized nothing (no member commits,
// shared-cell writes, effectful builtin calls, or global stores), so a
// retry can never duplicate a visible update.
func (m *machine) runIterBody(st *stepper, fr *frame) error {
	runUnits := func() error {
		for _, unit := range m.la.Units.Units {
			if _, err := st.runGroup(unit); err != nil {
				return err
			}
		}
		return nil
	}
	r := m.cfg.Recovery
	if r == nil {
		return runUnits()
	}
	snapLocals := append([]value.Value(nil), fr.locals...)
	snapRegs := append([]value.Value(nil), fr.regs...)
	snapShared := make(map[int]int, len(fr.sharedSrc))
	for k, v := range fr.sharedSrc {
		snapShared[k] = v
	}
	effects0, writes0 := st.effects, st.it.HeapWrites
	for attempt := 0; ; attempt++ {
		err := runUnits()
		if err == nil {
			return nil
		}
		if !IsTransient(err) || attempt >= r.iterRetries() ||
			st.effects != effects0 || st.it.HeapWrites != writes0 {
			return err
		}
		copy(fr.locals, snapLocals)
		copy(fr.regs, snapRegs)
		fr.sharedSrc = make(map[int]int, len(snapShared))
		for k, v := range snapShared {
			fr.sharedSrc[k] = v
		}
		m.stats.iterRetries++
		st.th.Sleep(r.backoff(attempt))
	}
}

// runDOALL executes the loop with iterations scheduled over `threads`
// workers (the calling thread acts as worker 0) according to the tuning's
// iteration schedule — static round-robin, chunked, or guided with a
// work-stealing claim board (see iterSched). Every worker privately
// executes the loop-control machinery — the canonical
// privatized-induction-variable DOALL codegen — and runs the body units
// only for its own iterations. With Tune.Privatize, commutative member
// updates run against per-thread shadow state and each worker publishes
// one synchronized merge per touched set before joining.
func (m *machine) runDOALL(mainTh *des.Thread, mainFr *frame, threads int) error {
	join := m.sim.NewQueue("doall.join", threads)
	// One claim-board round trip costs an uncontended spin acquire+release
	// (an atomic fetch-and-add on the shared chunk counter).
	sched := newIterSched(m.cfg.Tune, threads, m.cfg.Cost.SpinAcquire+m.cfg.Cost.SpinRelease)

	worker := func(th *des.Thread, w int) error {
		fr := mainFr.clone()
		st := m.newStepper(th, fr)
		st.sharedActive = true
		st.privatized = m.cfg.Tune.Privatize
		role := fmt.Sprintf("doall worker %d", w)
		lastIter := int64(-1)
		// bail handles a worker-fatal error: legacy mode aborts the whole
		// simulation; resilient mode records the diagnosis and shuts the
		// worker down in an orderly fashion (join message still sent).
		bail := func(err error) (abort bool, fatal error) {
			if !m.resilient() {
				return true, err
			}
			m.fail(role, err)
			return false, nil
		}
		for iter := int64(0); ; iter++ {
			if m.resilient() && m.failed() {
				break // a sibling hit an unrecoverable fault; stop early
			}
			if m.cfg.MaxIters > 0 && iter >= m.cfg.MaxIters {
				break // calibration slice: stop after the sampled prefix
			}
			exit, err := m.runCond(st)
			if err != nil {
				if abort, fatal := bail(err); abort {
					return fatal
				}
				break
			}
			if exit {
				break
			}
			if sched.owns(w, iter, th.Sleep) {
				if err := m.runIterBody(st, fr); err != nil {
					if abort, fatal := bail(err); abort {
						return fatal
					}
					break
				}
				lastIter = iter
			}
			if _, err := st.runGroup(m.la.Units.Post); err != nil {
				if abort, fatal := bail(err); abort {
					return fatal
				}
				break
			}
		}
		st.mergePrivatized()
		th.Push(join, doallDone{worker: w, fr: fr, lastIter: lastIter})
		return nil
	}

	start := mainTh.VTime
	for w := 1; w < threads; w++ {
		w := w
		m.sim.Spawn(fmt.Sprintf("doall.%d", w), start, func(th *des.Thread) error {
			return worker(th, w)
		})
	}
	if err := worker(mainTh, 0); err != nil {
		return err
	}

	// Collect workers and merge live-outs: every worker ran the full
	// control loop, so control state agrees; body-written slots take their
	// value from the worker that executed the globally last iteration.
	var lastFr *frame
	lastIter := int64(-1)
	var anyFr *frame
	for i := 0; i < threads; i++ {
		d := mainTh.Pop(join).(doallDone)
		anyFr = d.fr
		if d.lastIter > lastIter {
			lastIter = d.lastIter
			lastFr = d.fr
		}
	}
	if m.failDiag != nil {
		return m.failDiag
	}
	src := lastFr
	if src == nil {
		src = anyFr // zero-iteration loop: control state only
	}
	if src != nil {
		copy(mainFr.locals, src.locals)
	}
	return nil
}
