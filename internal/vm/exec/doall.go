package exec

import (
	"fmt"

	"repro/internal/types"
	"repro/internal/vm/des"
	"repro/internal/vm/value"
)

// runCond evaluates the loop condition group on the stepper's frame and
// reports whether the loop should exit.
func (m *machine) runCond(st *stepper) (bool, error) {
	s, err := st.runGroup(m.la.Units.Cond)
	if err != nil {
		return false, err
	}
	if s.ret {
		return false, fmt.Errorf("exec: loop condition returned from function")
	}
	return !m.la.Loop.Contains(s.nextBlk), nil
}

// doallDone is the join message of one DOALL worker (or salvage runner).
// A crashed join is the death certificate of a permanently dead worker:
// it carries the worker's last checkpoint so the main thread can
// re-partition the remaining owned iterations across the survivors.
type doallDone struct {
	worker   int
	fr       *frame
	lastIter int64

	crashed   bool
	deathIter int64      // pass at which the crash tick hit
	ck        *doallCkpt // last checkpoint of the dead worker
}

// doallCkpt is one DOALL worker's resumable state: the completed-pass
// watermark (iter is the next pass to execute), an exact frame snapshot,
// the last owned iteration executed, and the privatized shadow state. The
// externalized-effect baselines that gate safe re-execution live beside it
// in doallState (ckEff/ckWrites): the output-commit discipline refreshes
// the checkpoint right after any externalizing pass, so the window between
// checkpoint and crash is always replay-safe.
type doallCkpt struct {
	iter     int64
	fr       *frame
	lastIter int64
	priv     map[*types.Set]int
}

// doallState is the live, restartable state of one DOALL worker role
// across its simulated-thread incarnations.
type doallState struct {
	w    int
	role string

	iter     int64 // next pass to execute
	lastIter int64 // last owned iteration whose body ran

	ck       doallCkpt
	ckEff    int // stepper effects counter at the last checkpoint
	ckWrites int // interp heap-write counter at the last checkpoint

	restartsLeft int
	restartN     int // incarnation ordinal (for replacement thread names)
}

// takeDoallCkpt refreshes the worker's checkpoint from its live state,
// charging the snapshot cost in virtual time.
func (m *machine) takeDoallCkpt(th *des.Thread, st *stepper, ws *doallState) {
	th.Charge(m.cfg.Cost.Checkpoint)
	ws.ck = doallCkpt{
		iter:     ws.iter,
		fr:       snapshotFrame(st.fr),
		lastIter: ws.lastIter,
		priv:     copyPriv(st.privCommits),
	}
	ws.ckEff = st.effects
	ws.ckWrites = st.it.HeapWrites
}

// runIterBody executes one DOALL iteration's body units. In resilient mode
// a transiently failed iteration is re-executed from its start snapshot —
// but only when the failed attempt externalized nothing (no member commits,
// shared-cell writes, effectful builtin calls, or global stores), so a
// retry can never duplicate a visible update.
func (m *machine) runIterBody(st *stepper, fr *frame) error {
	runUnits := func() error {
		for _, unit := range m.la.Units.Units {
			if _, err := st.runGroup(unit); err != nil {
				return err
			}
		}
		return nil
	}
	r := m.cfg.Recovery
	if r == nil {
		return runUnits()
	}
	snapLocals := append([]value.Value(nil), fr.locals...)
	snapRegs := append([]value.Value(nil), fr.regs...)
	snapShared := append([]int(nil), fr.sharedSrc...)
	effects0, writes0 := st.effects, st.it.HeapWrites
	for attempt := 0; ; attempt++ {
		err := runUnits()
		if err == nil {
			return nil
		}
		if !IsTransient(err) || attempt >= r.iterRetries() ||
			st.effects != effects0 || st.it.HeapWrites != writes0 {
			return err
		}
		copy(fr.locals, snapLocals)
		copy(fr.regs, snapRegs)
		copy(fr.sharedSrc, snapShared)
		m.stats.iterRetries++
		st.th.Sleep(r.backoff(attempt))
	}
}

// doallRun is the worker loop, shared by the original incarnation of each
// worker role and by any checkpoint-restored replacement. Each pass is one
// crash tick; the checkpoint refreshes at the end of any pass that
// externalized an effect (output-commit) and otherwise every
// Recovery.CheckpointEvery passes, so a crash window never holds
// externalized work.
func (m *machine) doallRun(th *des.Thread, st *stepper, ws *doallState, sched *iterSched, join *des.Queue) error {
	fr := st.fr
	// bail handles a worker-fatal error: legacy mode aborts the whole
	// simulation; resilient mode records the diagnosis and shuts the
	// worker down in an orderly fashion (join message still sent).
	bail := func(err error) (abort bool, fatal error) {
		if !m.resilient() {
			return true, err
		}
		m.fail(ws.role, err)
		return false, nil
	}
	for {
		iter := ws.iter
		if m.resilient() && m.failed() {
			break // a sibling hit an unrecoverable fault; stop early
		}
		if m.cfg.MaxIters > 0 && iter >= m.cfg.MaxIters {
			break // calibration slice: stop after the sampled prefix
		}
		if die, perm := m.crashAt(ws.role); die {
			return m.doallCrash(th, ws, sched, join, perm)
		}
		exit, err := m.runCond(st)
		if err != nil {
			if abort, fatal := bail(err); abort {
				return fatal
			}
			break
		}
		if exit {
			break
		}
		if sched.owns(ws.w, iter, th.Sleep) {
			if err := m.runIterBody(st, fr); err != nil {
				if abort, fatal := bail(err); abort {
					return fatal
				}
				break
			}
			ws.lastIter = iter
		}
		if _, err := st.runGroup(m.la.Units.Post); err != nil {
			if abort, fatal := bail(err); abort {
				return fatal
			}
			break
		}
		ws.iter = iter + 1
		if m.checkpointing() {
			externalized := st.effects != ws.ckEff || st.it.HeapWrites != ws.ckWrites
			if externalized || ws.iter-ws.ck.iter >= m.ckptEvery() {
				m.takeDoallCkpt(th, st, ws)
			}
		}
	}
	st.mergePrivatized()
	th.Push(join, doallDone{worker: ws.w, fr: fr, lastIter: ws.lastIter})
	return nil
}

// doallCrash handles the death of a DOALL worker at a crash tick. The
// thread's private state dies with it; what survives is the shared
// substrate and the last checkpoint. A transient death spawns a
// replacement thread (after the supervisor's detection latency) that
// restores the checkpoint and replays the un-externalized window; a
// permanent death — or a transient one past the restart budget — instead
// posts a death certificate on the join queue so the main thread can
// re-partition the remaining owned iterations across the survivors.
func (m *machine) doallCrash(th *des.Thread, ws *doallState, sched *iterSched, join *des.Queue, perm bool) error {
	reason := "injected crash"
	if perm {
		reason = "injected permanent crash"
	}
	if !m.resilient() {
		m.sim.RecordDeath(ws.role, th.VTime, reason)
		return &CrashError{Thread: ws.role, VTime: th.VTime, Perm: perm, Reason: reason}
	}
	if !perm && ws.restartsLeft <= 0 {
		perm = true
		reason = "crash with restart budget exhausted"
	}
	rec := RestartRecord{
		Thread:    ws.role,
		VTime:     th.VTime,
		Event:     ws.iter,
		CkptAge:   ws.iter - ws.ck.iter,
		Permanent: perm,
	}
	if !perm {
		rec.Replayed = rec.CkptAge
	}
	m.restarts = append(m.restarts, rec)
	m.sim.RecordDeath(ws.role, th.VTime, reason)
	if perm {
		ck := ws.ck
		th.Push(join, doallDone{
			worker: ws.w, fr: ck.fr, lastIter: ck.lastIter,
			crashed: true, deathIter: ws.iter, ck: &ck,
		})
		return nil
	}
	m.stats.restarts++
	r := m.cfg.Recovery
	ck := ws.ck
	nextLeft := ws.restartsLeft - 1
	n := ws.restartN + 1
	m.sim.Spawn(fmt.Sprintf("%s#r%d", ws.role, n), th.VTime+r.restartDelay(), func(th2 *des.Thread) error {
		th2.Charge(m.cfg.Cost.Restore)
		st2 := m.newStepper(th2, snapshotFrame(ck.fr))
		st2.sharedActive = true
		st2.privatized = m.cfg.Tune.Privatize
		st2.privCommits = copyPriv(ck.priv)
		ws2 := &doallState{
			w: ws.w, role: ws.role,
			iter: ck.iter, lastIter: ck.lastIter,
			ck: doallCkpt{
				iter: ck.iter, fr: snapshotFrame(ck.fr),
				lastIter: ck.lastIter, priv: copyPriv(ck.priv),
			},
			restartsLeft: nextLeft,
			restartN:     n,
		}
		return m.doallRun(th2, st2, ws2, sched, join)
	})
	return nil
}

// doallSalvage re-executes a permanently dead worker's share of the loop
// on behalf of one survivor: it restores the dead worker's checkpoint onto
// a fresh frame, replays the loop-control machinery from the checkpointed
// pass, and executes every `nshares`-th owned iteration (share k of a
// deterministic round-robin split). The window between the checkpoint and
// the death externalized nothing (output-commit), and passes at or beyond
// the death never ran, so re-executing both duplicates no visible update.
// Share 0 also adopts the dead worker's unmerged privatized shadow, so
// each shadow is still merged exactly once.
func (m *machine) doallSalvage(th *des.Thread, d doallDone, share, nshares int, sched *iterSched, join *des.Queue) error {
	th.Charge(m.cfg.Cost.Restore)
	fr := snapshotFrame(d.ck.fr)
	st := m.newStepper(th, fr)
	st.sharedActive = true
	st.privatized = m.cfg.Tune.Privatize
	if share == 0 {
		st.privCommits = copyPriv(d.ck.priv)
	}
	role := fmt.Sprintf("salvage.%d.%d", d.worker, share)
	lastIter := int64(-1)
	ordinal := 0
	for iter := d.ck.iter; ; iter++ {
		if m.failed() {
			break
		}
		if m.cfg.MaxIters > 0 && iter >= m.cfg.MaxIters {
			break
		}
		exit, err := m.runCond(st)
		if err != nil {
			m.fail(role, err)
			break
		}
		if exit {
			break
		}
		if sched.owns(d.worker, iter, th.Sleep) {
			mine := ordinal%nshares == share
			ordinal++
			if mine {
				if err := m.runIterBody(st, fr); err != nil {
					m.fail(role, err)
					break
				}
				lastIter = iter
			}
		}
		if _, err := st.runGroup(m.la.Units.Post); err != nil {
			m.fail(role, err)
			break
		}
	}
	st.mergePrivatized()
	th.Push(join, doallDone{worker: d.worker, fr: fr, lastIter: lastIter})
	return nil
}

// runDOALL executes the loop with iterations scheduled over `threads`
// workers (the calling thread acts as worker 0) according to the tuning's
// iteration schedule — static round-robin, chunked, or guided with a
// work-stealing claim board (see iterSched). Every worker privately
// executes the loop-control machinery — the canonical
// privatized-induction-variable DOALL codegen — and runs the body units
// only for its own iterations. With Tune.Privatize, commutative member
// updates run against per-thread shadow state and each worker publishes
// one synchronized merge per touched set before joining.
//
// With a crash plan armed, each worker checkpoints (see doallRun), dying
// workers are restarted from their checkpoints, and permanently dead
// workers have their remaining iterations re-partitioned across the
// survivors at join time (degraded mode).
func (m *machine) runDOALL(mainTh *des.Thread, mainFr *frame, threads int) error {
	join := m.sim.NewQueue("doall.join", threads)
	// One claim-board round trip costs an uncontended spin acquire+release
	// (an atomic fetch-and-add on the shared chunk counter).
	sched := newIterSched(m.cfg.Tune, threads, m.cfg.Cost.SpinAcquire+m.cfg.Cost.SpinRelease)

	worker := func(th *des.Thread, w int) error {
		st := m.newStepper(th, mainFr.clone())
		st.sharedActive = true
		st.privatized = m.cfg.Tune.Privatize
		ws := &doallState{w: w, role: fmt.Sprintf("doall.%d", w), lastIter: -1}
		ws.ck.lastIter = -1
		if r := m.cfg.Recovery; r != nil {
			ws.restartsLeft = r.maxRestarts()
		}
		if m.checkpointing() {
			m.takeDoallCkpt(th, st, ws) // initial checkpoint at pass 0
		}
		return m.doallRun(th, st, ws, sched, join)
	}

	start := mainTh.VTime
	for w := 1; w < threads; w++ {
		w := w
		m.sim.Spawn(fmt.Sprintf("doall.%d", w), start, func(th *des.Thread) error {
			return worker(th, w)
		})
	}
	if err := worker(mainTh, 0); err != nil {
		return err
	}

	// Collect workers and merge live-outs. Control state comes from any
	// completed (non-crashed) frame — every completed worker and salvage
	// runner executed the full control loop, so they agree; body-written
	// slots take their value from the frame that executed the globally
	// last iteration (a dead worker's checkpoint frame competes too: its
	// pre-checkpoint iterations were real).
	var ctrlFr, lastFr *frame
	lastIter := int64(-1)
	var crashed []doallDone
	consider := func(d doallDone) {
		if d.fr == nil {
			return
		}
		if !d.crashed && ctrlFr == nil {
			ctrlFr = d.fr
		}
		if d.lastIter > lastIter {
			lastIter = d.lastIter
			lastFr = d.fr
		}
	}
	for i := 0; i < threads; i++ {
		d := mainTh.Pop(join).(doallDone)
		if d.crashed {
			crashed = append(crashed, d)
		}
		consider(d)
	}

	// Degraded mode: re-partition each permanently dead worker's remaining
	// iterations across the survivors, one salvage runner per survivor.
	if len(crashed) > 0 && !m.failed() {
		survivors := threads - len(crashed)
		if survivors <= 0 {
			d := crashed[0]
			m.fail(fmt.Sprintf("doall.%d", d.worker), &CrashError{
				Thread: fmt.Sprintf("doall.%d", d.worker), VTime: mainTh.VTime,
				Perm: true, Reason: "permanent crash with no surviving workers",
			})
		} else {
			start := mainTh.VTime + m.cfg.Recovery.restartDelay()
			for _, d := range crashed {
				m.stats.repartitioned++
				d := d
				for k := 0; k < survivors; k++ {
					k := k
					m.sim.Spawn(fmt.Sprintf("salvage.%d.%d", d.worker, k), start, func(th *des.Thread) error {
						return m.doallSalvage(th, d, k, survivors, sched, join)
					})
				}
			}
			for i := 0; i < len(crashed)*survivors; i++ {
				consider(mainTh.Pop(join).(doallDone))
			}
		}
	}
	if m.failDiag != nil {
		return m.failDiag
	}

	if ctrlFr == nil {
		ctrlFr = lastFr // every worker crashed but the run was not failed
	}
	if ctrlFr != nil {
		copy(mainFr.locals, ctrlFr.locals)
	}
	if lastFr != nil && lastFr != ctrlFr {
		for slot := range m.bodyWrites() {
			if !m.isShared(slot) {
				mainFr.locals[slot] = lastFr.locals[slot]
			}
		}
	}
	return nil
}
