package exec_test

import (
	"strings"
	"testing"

	"repro/internal/transform"
	"repro/internal/vm/exec"
	"repro/internal/vm/interp"
)

// parRunTuned executes the given schedule under a tuning and returns the
// makespan and output.
func (cp *compiled) parRunTuned(t *testing.T, kind transform.Kind, mode exec.SyncMode, threads int, tune transform.Tuning) (int64, []string) {
	t.Helper()
	s := cp.sched[kind]
	if s == nil {
		t.Fatalf("schedule %v not applicable", kind)
	}
	cp.w.reset()
	cfg := cp.cfg
	cfg.Tune = tune
	r, err := exec.Run(cfg, cp.la, s, mode, threads)
	if err != nil {
		t.Fatalf("%v run (%s): %v", kind, tune, err)
	}
	out := append([]string(nil), cp.w.prints...)
	return r.VirtualTime, out
}

func doallTunings() []transform.Tuning {
	return []transform.Tuning{
		{Sched: transform.SchedChunked, Chunk: 4},
		{Sched: transform.SchedGuided},
		{Privatize: true},
		{Sched: transform.SchedChunked, Chunk: 4, Privatize: true},
		{Sched: transform.SchedGuided, Privatize: true},
	}
}

// Every DOALL tuning must preserve the loop's semantics: exact final
// total (the commutative accumulator) and the same output multiset.
func TestTunedDOALLCorrectAllSchedules(t *testing.T) {
	for _, mode := range []exec.SyncMode{exec.SyncSpin, exec.SyncMutex} {
		cp := compileFor(t, md5Full, 8)
		_, seqOut := cp.seqRun(t)
		for _, tune := range doallTunings() {
			_, parOut := cp.parRunTuned(t, transform.DOALL, mode, 8, tune)
			if len(parOut) != len(seqOut) {
				t.Fatalf("%v %s: output count %d != %d", mode, tune, len(parOut), len(seqOut))
			}
			if parOut[len(parOut)-1] != seqOut[len(seqOut)-1] {
				t.Errorf("%v %s: final total %s != %s", mode, tune, parOut[len(parOut)-1], seqOut[len(seqOut)-1])
			}
			a, b := sortedCopy(parOut), sortedCopy(seqOut)
			for i := range a {
				if a[i] != b[i] {
					t.Errorf("%v %s: output multiset differs", mode, tune)
					break
				}
			}
		}
	}
}

// Privatization exists to kill contended-lock overhead: under Mutex at 8
// threads (where every contended acquire pays the wake penalty) the
// privatized run must be strictly faster than the shared-lock run.
func TestPrivatizedDOALLFasterUnderMutex(t *testing.T) {
	cp := compileFor(t, md5Full, 8)
	shared, _ := cp.parRunTuned(t, transform.DOALL, exec.SyncMutex, 8, transform.Tuning{})
	priv, _ := cp.parRunTuned(t, transform.DOALL, exec.SyncMutex, 8, transform.Tuning{Privatize: true})
	if priv >= shared {
		t.Errorf("privatized makespan %d not faster than shared %d", priv, shared)
	}
}

// Batched pipeline queues must preserve PS-DSWP's deterministic output
// (the sequential print stage sees tokens in iteration order) at every
// batch size, including batches larger than the queue capacity.
func TestBatchedPipelineDeterministicOutput(t *testing.T) {
	cp := compileFor(t, md5Det, 8)
	_, seqOut := cp.seqRun(t)
	for _, batch := range []int{2, 4, 8, 16, 64} {
		_, parOut := cp.parRunTuned(t, transform.PSDSWP, exec.SyncSpin, 8, transform.Tuning{Batch: batch})
		if strings.Join(parOut, ",") != strings.Join(seqOut, ",") {
			t.Errorf("batch %d: PS-DSWP output differs:\npar: %v\nseq: %v", batch, parOut, seqOut)
		}
	}
}

// relayPipe is a queue-bound pipeline: the per-iteration work (one cheap
// read, one print) is on the order of the queue push/pop costs, so
// per-token queue overhead dominates the makespan.
const relayPipe = `
#pragma commset decl FSET
#pragma commset predicate FSET (i1)(i2) : i1 != i2
void main() {
	for (int i = 0; i < 256; i++) {
		int v = 0;
		#pragma commset member FSET(i), SELF
		{ v = fread(i); }
		#pragma commset member FSET(i)
		{ print_int(v); }
	}
}
`

// Batching amortizes per-token queue costs, so on a queue-bound pipeline
// (body work comparable to queue overhead) the batched run must be
// strictly faster. On compute-bound pipelines batching can lose to fill
// latency — that trade is the auto-scheduler's job, not a batching
// invariant.
func TestBatchedPipelineFasterWhenQueueBound(t *testing.T) {
	cp := compileFor(t, relayPipe, 4)
	kind := transform.PSDSWP
	if cp.sched[kind] == nil {
		kind = transform.DSWP
	}
	if cp.sched[kind] == nil {
		t.Skip("no pipeline schedule generated")
	}
	_, seqOut := cp.seqRun(t)
	base, baseOut := cp.parRunTuned(t, kind, exec.SyncSpin, 4, transform.Tuning{})
	batched, batchOut := cp.parRunTuned(t, kind, exec.SyncSpin, 4, transform.Tuning{Batch: 16})
	if strings.Join(baseOut, ",") != strings.Join(seqOut, ",") ||
		strings.Join(batchOut, ",") != strings.Join(seqOut, ",") {
		t.Fatalf("%v relay output differs from sequential", kind)
	}
	if batched >= base {
		t.Errorf("queue-bound %v: batched makespan %d not faster than per-token %d", kind, batched, base)
	}
}

// DSWP (no parallel stage) must also survive batching.
func TestBatchedDSWPCorrect(t *testing.T) {
	cp := compileFor(t, md5Det, 4)
	if cp.sched[transform.DSWP] == nil {
		t.Skip("DSWP not generated")
	}
	_, seqOut := cp.seqRun(t)
	_, parOut := cp.parRunTuned(t, transform.DSWP, exec.SyncSpin, 4, transform.Tuning{Batch: 8})
	if strings.Join(parOut, ",") != strings.Join(seqOut, ",") {
		t.Errorf("batched DSWP output differs:\npar: %v\nseq: %v", parOut, seqOut)
	}
}

// Tuned runs stay deterministic: identical configurations produce
// identical makespans, including the guided claim board.
func TestTunedDeterministicMakespan(t *testing.T) {
	for _, tune := range doallTunings() {
		cp := compileFor(t, md5Full, 8)
		a, _ := cp.parRunTuned(t, transform.DOALL, exec.SyncSpin, 8, tune)
		b, _ := cp.parRunTuned(t, transform.DOALL, exec.SyncSpin, 8, tune)
		if a != b {
			t.Errorf("%s: nondeterministic makespan %d vs %d", tune, a, b)
		}
	}
}

// autoCfg wires the auto-scheduler into a test config: calibration
// slices run on throwaway worlds so they never pollute cp.w's output.
func (cp *compiled) autoCfg() exec.Config {
	cfg := cp.cfg
	cfg.Auto = &exec.AutoOptions{
		Fresh: func() map[string]interp.BuiltinFn { return (&world{}).builtins() },
	}
	return cfg
}

// The auto-scheduler must (a) keep the run correct, (b) never pick a
// tuning slower than the zero tuning, and (c) report the picked tuning
// in the result.
func TestAutoSchedulerDOALL(t *testing.T) {
	cp := compileFor(t, md5Full, 8)
	_, seqOut := cp.seqRun(t)

	base, _ := cp.parRunTuned(t, transform.DOALL, exec.SyncMutex, 8, transform.Tuning{})

	cp.w.reset()
	r, err := exec.Run(cp.autoCfg(), cp.la, cp.sched[transform.DOALL], exec.SyncMutex, 8)
	if err != nil {
		t.Fatalf("auto run: %v", err)
	}
	parOut := append([]string(nil), cp.w.prints...)
	if parOut[len(parOut)-1] != seqOut[len(seqOut)-1] {
		t.Errorf("auto: final total %s != %s", parOut[len(parOut)-1], seqOut[len(seqOut)-1])
	}
	if r.VirtualTime > base {
		t.Errorf("auto makespan %d regressed past zero-tuning %d", r.VirtualTime, base)
	}
	// This workload's shared accumulator collapses under contended Mutex:
	// the calibration must discover a non-trivial tuning.
	if r.Tune.IsZero() {
		t.Errorf("auto picked the zero tuning; expected privatization/chunking to win under Mutex")
	}
	if !strings.Contains(r.Schedule, "{") {
		t.Errorf("auto result schedule %q does not name the tuning", r.Schedule)
	}
}

// Auto-scheduling a pipeline calibrates batch sizes and must preserve
// deterministic output.
func TestAutoSchedulerPipeline(t *testing.T) {
	cp := compileFor(t, md5Det, 8)
	_, seqOut := cp.seqRun(t)

	cp.w.reset()
	r, err := exec.Run(cp.autoCfg(), cp.la, cp.sched[transform.PSDSWP], exec.SyncSpin, 8)
	if err != nil {
		t.Fatalf("auto run: %v", err)
	}
	parOut := append([]string(nil), cp.w.prints...)
	if strings.Join(parOut, ",") != strings.Join(seqOut, ",") {
		t.Errorf("auto PS-DSWP output differs:\npar: %v\nseq: %v", parOut, seqOut)
	}
	base, _ := cp.parRunTuned(t, transform.PSDSWP, exec.SyncSpin, 8, transform.Tuning{})
	if r.VirtualTime > base {
		t.Errorf("auto makespan %d regressed past per-token %d", r.VirtualTime, base)
	}
}

// A calibration slice must not leak into the measured run's world: the
// output of an auto run equals the output of a plain run.
func TestAutoCalibrationIsolated(t *testing.T) {
	cp := compileFor(t, md5Full, 4)
	_, plainOut := cp.parRunTuned(t, transform.DOALL, exec.SyncSpin, 4, transform.Tuning{})

	cp.w.reset()
	if _, err := exec.Run(cp.autoCfg(), cp.la, cp.sched[transform.DOALL], exec.SyncSpin, 4); err != nil {
		t.Fatalf("auto run: %v", err)
	}
	autoOut := append([]string(nil), cp.w.prints...)
	if len(autoOut) != len(plainOut) {
		t.Errorf("auto run printed %d lines, plain %d — calibration leaked into the world", len(autoOut), len(plainOut))
	}
}
