// Package value defines the runtime value representation shared by the IR,
// the interpreter, and the builtin substrate.
//
// MiniC is scalar-only: int (64-bit), float (64-bit), bool, and string.
// Substrate object handles (files, matrices, bitmaps, ...) are ints.
package value

import (
	"fmt"
	"strconv"

	"repro/internal/ast"
)

// Value is one MiniC runtime value. The zero Value is the int 0.
type Value struct {
	T ast.Type
	I int64
	F float64
	B bool
	S string
}

// Int wraps an int64.
func Int(v int64) Value { return Value{T: ast.TInt, I: v} }

// Float wraps a float64.
func Float(v float64) Value { return Value{T: ast.TFloat, F: v} }

// Bool wraps a bool.
func Bool(v bool) Value { return Value{T: ast.TBool, B: v} }

// Str wraps a string.
func Str(v string) Value { return Value{T: ast.TString, S: v} }

// Void is the absent value returned by void calls.
func Void() Value { return Value{T: ast.TVoid} }

// Zero returns the zero value of the given type.
func Zero(t ast.Type) Value {
	switch t {
	case ast.TFloat:
		return Float(0)
	case ast.TBool:
		return Bool(false)
	case ast.TString:
		return Str("")
	case ast.TVoid:
		return Void()
	}
	return Int(0)
}

// String renders the value as MiniC's print builtins would.
func (v Value) String() string {
	switch v.T {
	case ast.TInt:
		return strconv.FormatInt(v.I, 10)
	case ast.TFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case ast.TBool:
		if v.B {
			return "true"
		}
		return "false"
	case ast.TString:
		return v.S
	case ast.TVoid:
		return "<void>"
	}
	return fmt.Sprintf("<invalid %v>", v.T)
}

// Equal reports deep equality of two values (same type, same payload).
func (v Value) Equal(w Value) bool {
	if v.T != w.T {
		return false
	}
	switch v.T {
	case ast.TInt:
		return v.I == w.I
	case ast.TFloat:
		return v.F == w.F
	case ast.TBool:
		return v.B == w.B
	case ast.TString:
		return v.S == w.S
	}
	return true
}

// AsBool returns the boolean payload; it panics on non-bool values, which
// indicates a compiler bug (the type checker guarantees operand types).
func (v Value) AsBool() bool {
	if v.T != ast.TBool {
		panic(fmt.Sprintf("value: AsBool on %s", v.T))
	}
	return v.B
}

// AsInt returns the integer payload; it panics on non-int values.
func (v Value) AsInt() int64 {
	if v.T != ast.TInt {
		panic(fmt.Sprintf("value: AsInt on %s", v.T))
	}
	return v.I
}

// AsFloat returns the float payload; it panics on non-float values.
func (v Value) AsFloat() float64 {
	if v.T != ast.TFloat {
		panic(fmt.Sprintf("value: AsFloat on %s", v.T))
	}
	return v.F
}

// AsString returns the string payload; it panics on non-string values.
func (v Value) AsString() string {
	if v.T != ast.TString {
		panic(fmt.Sprintf("value: AsString on %s", v.T))
	}
	return v.S
}
