package value

import (
	"testing"
	"testing/quick"

	"repro/internal/ast"
)

func TestZeroValues(t *testing.T) {
	cases := []struct {
		typ  ast.Type
		want string
	}{
		{ast.TInt, "0"},
		{ast.TFloat, "0"},
		{ast.TBool, "false"},
		{ast.TString, ""},
		{ast.TVoid, "<void>"},
	}
	for _, c := range cases {
		if got := Zero(c.typ).String(); got != c.want {
			t.Errorf("Zero(%v) = %q, want %q", c.typ, got, c.want)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if Int(42).AsInt() != 42 {
		t.Error("Int round trip")
	}
	if Float(2.5).AsFloat() != 2.5 {
		t.Error("Float round trip")
	}
	if !Bool(true).AsBool() {
		t.Error("Bool round trip")
	}
	if Str("xyz").AsString() != "xyz" {
		t.Error("Str round trip")
	}
}

func TestAccessorPanicsOnTypeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AsInt on a string must panic (compiler bug guard)")
		}
	}()
	Str("nope").AsInt()
}

func TestEqualReflexiveQuick(t *testing.T) {
	f := func(i int64, fl float64, b bool, s string) bool {
		vals := []Value{Int(i), Float(fl), Bool(b), Str(s)}
		for _, v := range vals {
			if !v.Equal(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEqualSymmetricQuick(t *testing.T) {
	f := func(a, b int64, s1, s2 string) bool {
		pairs := [][2]Value{
			{Int(a), Int(b)},
			{Str(s1), Str(s2)},
			{Int(a), Str(s1)}, // cross-type: both directions false
		}
		for _, p := range pairs {
			if p[0].Equal(p[1]) != p[1].Equal(p[0]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCrossTypeNeverEqual(t *testing.T) {
	if Int(0).Equal(Bool(false)) || Int(1).Equal(Float(1)) || Str("1").Equal(Int(1)) {
		t.Error("values of different types must not compare equal")
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(-7), "-7"},
		{Float(0.5), "0.5"},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Str("hi"), "hi"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}
