package interp

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/vm/value"
)

// EvalBin applies a binary operator to two values. The type checker
// guarantees operand types, so unexpected combinations indicate compiler
// bugs and return errors rather than panicking.
func EvalBin(op string, a, b value.Value) (value.Value, error) {
	switch op {
	case "+":
		switch a.T {
		case ast.TInt:
			return value.Int(a.I + b.I), nil
		case ast.TFloat:
			return value.Float(a.F + b.F), nil
		case ast.TString:
			return value.Str(a.S + b.S), nil
		}
	case "-":
		switch a.T {
		case ast.TInt:
			return value.Int(a.I - b.I), nil
		case ast.TFloat:
			return value.Float(a.F - b.F), nil
		}
	case "*":
		switch a.T {
		case ast.TInt:
			return value.Int(a.I * b.I), nil
		case ast.TFloat:
			return value.Float(a.F * b.F), nil
		}
	case "/":
		switch a.T {
		case ast.TInt:
			if b.I == 0 {
				return value.Value{}, fmt.Errorf("integer division by zero")
			}
			return value.Int(a.I / b.I), nil
		case ast.TFloat:
			return value.Float(a.F / b.F), nil
		}
	case "%":
		if a.T == ast.TInt {
			if b.I == 0 {
				return value.Value{}, fmt.Errorf("integer modulo by zero")
			}
			return value.Int(a.I % b.I), nil
		}
	case "&":
		if a.T == ast.TInt {
			return value.Int(a.I & b.I), nil
		}
	case "|":
		if a.T == ast.TInt {
			return value.Int(a.I | b.I), nil
		}
	case "^":
		if a.T == ast.TInt {
			return value.Int(a.I ^ b.I), nil
		}
	case "<<":
		if a.T == ast.TInt {
			if b.I < 0 || b.I > 63 {
				return value.Value{}, fmt.Errorf("shift amount %d out of range", b.I)
			}
			return value.Int(a.I << uint(b.I)), nil
		}
	case ">>":
		if a.T == ast.TInt {
			if b.I < 0 || b.I > 63 {
				return value.Value{}, fmt.Errorf("shift amount %d out of range", b.I)
			}
			return value.Int(a.I >> uint(b.I)), nil
		}
	case "==":
		return value.Bool(a.Equal(b)), nil
	case "!=":
		return value.Bool(!a.Equal(b)), nil
	case "<":
		return compare(a, b, func(c int) bool { return c < 0 })
	case "<=":
		return compare(a, b, func(c int) bool { return c <= 0 })
	case ">":
		return compare(a, b, func(c int) bool { return c > 0 })
	case ">=":
		return compare(a, b, func(c int) bool { return c >= 0 })
	}
	return value.Value{}, fmt.Errorf("invalid binary op %q on %s", op, a.T)
}

func compare(a, b value.Value, ok func(int) bool) (value.Value, error) {
	var c int
	switch a.T {
	case ast.TInt:
		switch {
		case a.I < b.I:
			c = -1
		case a.I > b.I:
			c = 1
		}
	case ast.TFloat:
		switch {
		case a.F < b.F:
			c = -1
		case a.F > b.F:
			c = 1
		}
	case ast.TString:
		switch {
		case a.S < b.S:
			c = -1
		case a.S > b.S:
			c = 1
		}
	default:
		return value.Value{}, fmt.Errorf("ordered comparison on %s", a.T)
	}
	return value.Bool(ok(c)), nil
}

// EvalUn applies a unary operator.
func EvalUn(op string, a value.Value) (value.Value, error) {
	switch op {
	case "!":
		if a.T == ast.TBool {
			return value.Bool(!a.B), nil
		}
	case "-":
		switch a.T {
		case ast.TInt:
			return value.Int(-a.I), nil
		case ast.TFloat:
			return value.Float(-a.F), nil
		}
	}
	return value.Value{}, fmt.Errorf("invalid unary op %q on %s", op, a.T)
}
