package interp

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/vm/value"
)

// binFn applies one binary operator. The table below lets the compiled
// fast path resolve the operator spelling once per instruction instead of
// re-dispatching on the string every execution.
type binFn func(a, b value.Value) (value.Value, error)

// unFn applies one unary operator.
type unFn func(a value.Value) (value.Value, error)

var binOps = map[string]binFn{
	"+":  evalAdd,
	"-":  evalSub,
	"*":  evalMul,
	"/":  evalDiv,
	"%":  evalMod,
	"&":  evalAnd,
	"|":  evalOr,
	"^":  evalXor,
	"<<": evalShl,
	">>": evalShr,
	"==": evalEq,
	"!=": evalNe,
	"<":  evalLt,
	"<=": evalLe,
	">":  evalGt,
	">=": evalGe,
}

var unOps = map[string]unFn{
	"!": evalNot,
	"-": evalNeg,
}

// EvalBin applies a binary operator to two values. The type checker
// guarantees operand types, so unexpected combinations indicate compiler
// bugs and return errors rather than panicking.
func EvalBin(op string, a, b value.Value) (value.Value, error) {
	if f := binOps[op]; f != nil {
		return f(a, b)
	}
	return value.Value{}, invalidBin(op, a)
}

func invalidBin(op string, a value.Value) error {
	return fmt.Errorf("invalid binary op %q on %s", op, a.T)
}

func evalAdd(a, b value.Value) (value.Value, error) {
	switch a.T {
	case ast.TInt:
		return value.Int(a.I + b.I), nil
	case ast.TFloat:
		return value.Float(a.F + b.F), nil
	case ast.TString:
		return value.Str(a.S + b.S), nil
	}
	return value.Value{}, invalidBin("+", a)
}

func evalSub(a, b value.Value) (value.Value, error) {
	switch a.T {
	case ast.TInt:
		return value.Int(a.I - b.I), nil
	case ast.TFloat:
		return value.Float(a.F - b.F), nil
	}
	return value.Value{}, invalidBin("-", a)
}

func evalMul(a, b value.Value) (value.Value, error) {
	switch a.T {
	case ast.TInt:
		return value.Int(a.I * b.I), nil
	case ast.TFloat:
		return value.Float(a.F * b.F), nil
	}
	return value.Value{}, invalidBin("*", a)
}

func evalDiv(a, b value.Value) (value.Value, error) {
	switch a.T {
	case ast.TInt:
		if b.I == 0 {
			return value.Value{}, fmt.Errorf("integer division by zero")
		}
		return value.Int(a.I / b.I), nil
	case ast.TFloat:
		return value.Float(a.F / b.F), nil
	}
	return value.Value{}, invalidBin("/", a)
}

func evalMod(a, b value.Value) (value.Value, error) {
	if a.T == ast.TInt {
		if b.I == 0 {
			return value.Value{}, fmt.Errorf("integer modulo by zero")
		}
		return value.Int(a.I % b.I), nil
	}
	return value.Value{}, invalidBin("%", a)
}

func evalAnd(a, b value.Value) (value.Value, error) {
	if a.T == ast.TInt {
		return value.Int(a.I & b.I), nil
	}
	return value.Value{}, invalidBin("&", a)
}

func evalOr(a, b value.Value) (value.Value, error) {
	if a.T == ast.TInt {
		return value.Int(a.I | b.I), nil
	}
	return value.Value{}, invalidBin("|", a)
}

func evalXor(a, b value.Value) (value.Value, error) {
	if a.T == ast.TInt {
		return value.Int(a.I ^ b.I), nil
	}
	return value.Value{}, invalidBin("^", a)
}

func evalShl(a, b value.Value) (value.Value, error) {
	if a.T == ast.TInt {
		if b.I < 0 || b.I > 63 {
			return value.Value{}, fmt.Errorf("shift amount %d out of range", b.I)
		}
		return value.Int(a.I << uint(b.I)), nil
	}
	return value.Value{}, invalidBin("<<", a)
}

func evalShr(a, b value.Value) (value.Value, error) {
	if a.T == ast.TInt {
		if b.I < 0 || b.I > 63 {
			return value.Value{}, fmt.Errorf("shift amount %d out of range", b.I)
		}
		return value.Int(a.I >> uint(b.I)), nil
	}
	return value.Value{}, invalidBin(">>", a)
}

func evalEq(a, b value.Value) (value.Value, error) {
	return value.Bool(a.Equal(b)), nil
}

func evalNe(a, b value.Value) (value.Value, error) {
	return value.Bool(!a.Equal(b)), nil
}

func evalLt(a, b value.Value) (value.Value, error) {
	return compare(a, b, func(c int) bool { return c < 0 })
}

func evalLe(a, b value.Value) (value.Value, error) {
	return compare(a, b, func(c int) bool { return c <= 0 })
}

func evalGt(a, b value.Value) (value.Value, error) {
	return compare(a, b, func(c int) bool { return c > 0 })
}

func evalGe(a, b value.Value) (value.Value, error) {
	return compare(a, b, func(c int) bool { return c >= 0 })
}

func compare(a, b value.Value, ok func(int) bool) (value.Value, error) {
	var c int
	switch a.T {
	case ast.TInt:
		switch {
		case a.I < b.I:
			c = -1
		case a.I > b.I:
			c = 1
		}
	case ast.TFloat:
		switch {
		case a.F < b.F:
			c = -1
		case a.F > b.F:
			c = 1
		}
	case ast.TString:
		switch {
		case a.S < b.S:
			c = -1
		case a.S > b.S:
			c = 1
		}
	default:
		return value.Value{}, fmt.Errorf("ordered comparison on %s", a.T)
	}
	return value.Bool(ok(c)), nil
}

// EvalUn applies a unary operator.
func EvalUn(op string, a value.Value) (value.Value, error) {
	if f := unOps[op]; f != nil {
		return f(a)
	}
	return value.Value{}, invalidUn(op, a)
}

func invalidUn(op string, a value.Value) error {
	return fmt.Errorf("invalid unary op %q on %s", op, a.T)
}

func evalNot(a value.Value) (value.Value, error) {
	if a.T == ast.TBool {
		return value.Bool(!a.B), nil
	}
	return value.Value{}, invalidUn("!", a)
}

func evalNeg(a value.Value) (value.Value, error) {
	switch a.T {
	case ast.TInt:
		return value.Int(-a.I), nil
	case ast.TFloat:
		return value.Float(-a.F), nil
	}
	return value.Value{}, invalidUn("-", a)
}
