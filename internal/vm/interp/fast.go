package interp

import (
	"fmt"
	"sync"

	"repro/internal/ir"
	"repro/internal/vm/value"
)

// FastEnabled selects the host-fast execution substrate: the pre-compiled
// interpreter path below plus the fast-mode caches elsewhere in the VM
// (builtin world-data memoization, scheduler yield reuse). It exists so the
// legacy stepper remains selectable — tests assert both paths produce
// bit-for-bit identical virtual times, and the host benchmark (commsetbench
// -host) measures the speedup by flipping it.
//
// The flag is read at function entry, not per instruction, and the
// campaigns only flip it between runs, so there is no torn state.
var FastEnabled = true

// fastOp executes one straight-line instruction. One closure per
// instruction, pre-bound to its operands at compile time, so the hot loop
// has no opcode re-dispatch.
type fastOp func(t *Thread, regs, locals []value.Value) error

// segment is a maximal straight-line run charged as a single cost add.
// Segments end at call instructions (the only observation points a
// scheduler interceptor can see) and at the block terminator, so the
// thread's accumulated cost at every observation point is identical to the
// legacy per-instruction stepper.
type segment struct {
	cost int64
	ops  []fastOp
	call *ir.Instr // trailing OpCall, or nil for the terminator segment
}

// blockCode is one compiled basic block.
type blockCode struct {
	segs []segment
	term *ir.Instr // OpBr, OpCondBr, or OpRet; cost folded into last segment
}

// fnCode is one compiled function.
type fnCode struct {
	f       *ir.Func
	blocks  []blockCode
	zero    []value.Value // frame template: typed local zeros then zero regs
	nlocals int
	pool    sync.Pool // *[]value.Value frames, len == len(zero)
}

// progCode caches compiled functions for one immutable *ir.Program. The IR
// is never structurally edited after the pipeline returns, so the cache is
// shared read-only across every thread and campaign cell of the program.
type progCode struct {
	fns map[string]*fnCode
}

var codeCache sync.Map // *ir.Program -> *progCode

// codeFor returns the compiled form of f, or nil when the function must run
// on the legacy stepper (malformed blocks — the legacy path owns the
// diagnostics for those).
func codeFor(prog *ir.Program, f *ir.Func) *fnCode {
	v, ok := codeCache.Load(prog)
	if !ok {
		v, _ = codeCache.LoadOrStore(prog, compileProg(prog))
	}
	return v.(*progCode).fns[f.Name]
}

func compileProg(prog *ir.Program) *progCode {
	gslot := make(map[string]int, len(prog.Globals))
	for i, g := range prog.Globals {
		gslot[g.Name] = i
	}
	pc := &progCode{fns: make(map[string]*fnCode, len(prog.Funcs))}
	for name, f := range prog.Funcs {
		if fc := compileFunc(f, gslot); fc != nil {
			pc.fns[name] = fc
		}
	}
	return pc
}

// compileFunc pre-compiles one function, or returns nil when any block is
// not a well-formed straight-line run ending in a terminator.
func compileFunc(f *ir.Func, gslot map[string]int) *fnCode {
	fc := &fnCode{
		f:       f,
		blocks:  make([]blockCode, len(f.Blocks)),
		nlocals: len(f.Locals),
	}
	fc.zero = make([]value.Value, len(f.Locals)+f.NumRegs)
	for i := range f.Locals {
		fc.zero[i] = value.Zero(f.Locals[i].Type)
	}
	frameLen := len(fc.zero)
	fc.pool.New = func() any {
		b := make([]value.Value, frameLen)
		return &b
	}

	for bi, blk := range f.Blocks {
		if blk.ID != bi || blk.Terminator() == nil {
			return nil
		}
		bc := &fc.blocks[bi]
		bc.term = blk.Instrs[len(blk.Instrs)-1]
		var seg segment
		flush := func(call *ir.Instr, extra int64) {
			seg.cost = (int64(len(seg.ops)) + extra) * CostPerInstr
			seg.call = call
			bc.segs = append(bc.segs, seg)
			seg = segment{}
		}
		for _, in := range blk.Instrs[:len(blk.Instrs)-1] {
			if in.IsTerminator() {
				return nil // terminator mid-block: legacy path diagnoses it
			}
			if in.Op == ir.OpCall {
				flush(in, 1)
				continue
			}
			op := compileOp(in, gslot)
			if op == nil {
				return nil
			}
			seg.ops = append(seg.ops, op)
		}
		flush(nil, 1) // trailing segment carries the terminator's cost
	}
	return fc
}

// compileOp builds the closure for one straight-line instruction.
func compileOp(in *ir.Instr, gslot map[string]int) fastOp {
	switch in.Op {
	case ir.OpConst:
		dst, v := in.Dst, in.Val
		return func(t *Thread, regs, locals []value.Value) error {
			regs[dst] = v
			return nil
		}
	case ir.OpLoadLocal:
		dst, slot := in.Dst, in.Slot
		return func(t *Thread, regs, locals []value.Value) error {
			regs[dst] = locals[slot]
			return nil
		}
	case ir.OpStoreLocal:
		slot, a := in.Slot, in.A
		return func(t *Thread, regs, locals []value.Value) error {
			locals[slot] = regs[a]
			return nil
		}
	case ir.OpLoadGlobal:
		gs, ok := gslot[in.Name]
		if !ok {
			return nil
		}
		dst, name := in.Dst, in.Name
		return func(t *Thread, regs, locals []value.Value) error {
			if t.Tracer != nil {
				t.Tracer.TraceGlobal(t.ID, name, false)
			}
			regs[dst] = t.Env.Globals.vals[gs]
			return nil
		}
	case ir.OpStoreGlobal:
		gs, ok := gslot[in.Name]
		if !ok {
			return nil
		}
		a, name := in.A, in.Name
		return func(t *Thread, regs, locals []value.Value) error {
			t.HeapWrites++
			if t.Tracer != nil {
				t.Tracer.TraceGlobal(t.ID, name, true)
			}
			t.Env.Globals.vals[gs] = regs[a]
			return nil
		}
	case ir.OpBin:
		fn := binOps[in.BinOp]
		dst, a, b, pos := in.Dst, in.A, in.B, in.Pos
		if fn == nil {
			op := in.BinOp
			return func(t *Thread, regs, locals []value.Value) error {
				return fmt.Errorf("%s: %v", pos, invalidBin(op, regs[a]))
			}
		}
		return func(t *Thread, regs, locals []value.Value) error {
			v, e := fn(regs[a], regs[b])
			if e != nil {
				return fmt.Errorf("%s: %v", pos, e)
			}
			regs[dst] = v
			return nil
		}
	case ir.OpUn:
		fn := unOps[in.BinOp]
		dst, a, pos := in.Dst, in.A, in.Pos
		if fn == nil {
			op := in.BinOp
			return func(t *Thread, regs, locals []value.Value) error {
				return fmt.Errorf("%s: %v", pos, invalidUn(op, regs[a]))
			}
		}
		return func(t *Thread, regs, locals []value.Value) error {
			v, e := fn(regs[a])
			if e != nil {
				return fmt.Errorf("%s: %v", pos, e)
			}
			regs[dst] = v
			return nil
		}
	}
	return nil
}

// execFast runs a pre-compiled function. Cost accounting matches the
// legacy stepper at every observation point: a segment's full cost (its
// instructions plus the trailing call or terminator) is charged before the
// segment body, and the only places other components read the thread's
// cost — call interceptors, scheduler yields, the final return — sit at
// segment boundaries.
func (t *Thread) execFast(fc *fnCode, args []value.Value) ([]value.Value, error) {
	if t.depth >= maxDepth {
		return nil, fmt.Errorf("interp: call depth exceeded in %s", fc.f.Name)
	}
	if len(args) != fc.f.Params {
		return nil, fmt.Errorf("interp: %s expects %d args, got %d", fc.f.Name, fc.f.Params, len(args))
	}
	t.depth++
	bp := fc.pool.Get().(*[]value.Value)
	buf := *bp
	copy(buf, fc.zero)
	locals := buf[:fc.nlocals:fc.nlocals]
	regs := buf[fc.nlocals:]
	copy(locals, args)
	defer func() {
		fc.pool.Put(bp)
		t.depth--
	}()

	bi := 0
	for {
		bc := &fc.blocks[bi]
		for si := range bc.segs {
			s := &bc.segs[si]
			t.Cost += s.cost
			for _, op := range s.ops {
				if err := op(t, regs, locals); err != nil {
					return nil, err
				}
			}
			if s.call != nil {
				if err := t.execCall(s.call, regs, locals); err != nil {
					return nil, err
				}
			}
		}
		switch term := bc.term; term.Op {
		case ir.OpBr:
			bi = term.Targets[0]
		case ir.OpCondBr:
			if regs[term.A].AsBool() {
				bi = term.Targets[0]
			} else {
				bi = term.Targets[1]
			}
		default: // OpRet
			out := make([]value.Value, len(term.Args))
			for i, r := range term.Args {
				out[i] = regs[r]
			}
			return out, nil
		}
	}
}
