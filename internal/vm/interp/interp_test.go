package interp_test

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ast"
	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/parser"
	"repro/internal/source"
	"repro/internal/types"
	"repro/internal/vm/interp"
	"repro/internal/vm/value"
)

// compile lowers a source snippet with a sink builtin.
func compile(t testing.TB, src string) (*lower.Result, *[]int64) {
	t.Helper()
	sink := &[]int64{}
	sigs := map[string]*types.Sig{
		"emit":  {Name: "emit", Params: []ast.Type{ast.TInt}, Result: ast.TVoid},
		"heavy": {Name: "heavy", Params: []ast.Type{ast.TInt}, Result: ast.TInt},
	}
	var diags source.DiagList
	prog := parser.Parse(source.NewFile("t.mc", src), &diags)
	info := types.Check(prog, sigs, &diags)
	res := lower.Lower(info, &diags)
	if diags.HasErrors() {
		t.Fatalf("compile:\n%s", diags.String())
	}
	return res, sink
}

func builtinsFor(sink *[]int64) map[string]interp.BuiltinFn {
	return map[string]interp.BuiltinFn{
		"emit": func(args []value.Value) (value.Value, int64, error) {
			*sink = append(*sink, args[0].AsInt())
			return value.Void(), 5, nil
		},
		"heavy": func(args []value.Value) (value.Value, int64, error) {
			return value.Int(args[0].AsInt() + 1), 1000, nil
		},
	}
}

func TestEvalBinTable(t *testing.T) {
	i := value.Int
	f := value.Float
	s := value.Str
	b := value.Bool
	cases := []struct {
		op   string
		a, c value.Value
		want value.Value
	}{
		{"+", i(2), i(3), i(5)},
		{"+", f(1.5), f(2.5), f(4)},
		{"+", s("a"), s("b"), s("ab")},
		{"-", i(2), i(5), i(-3)},
		{"-", f(2), f(0.5), f(1.5)},
		{"*", i(6), i(7), i(42)},
		{"/", i(7), i(2), i(3)},
		{"/", f(1), f(4), f(0.25)},
		{"%", i(7), i(3), i(1)},
		{"&", i(6), i(3), i(2)},
		{"|", i(6), i(3), i(7)},
		{"^", i(6), i(3), i(5)},
		{"<<", i(1), i(4), i(16)},
		{">>", i(16), i(4), i(1)},
		{"==", i(3), i(3), b(true)},
		{"!=", s("x"), s("y"), b(true)},
		{"<", f(1), f(2), b(true)},
		{"<=", i(2), i(2), b(true)},
		{">", s("b"), s("a"), b(true)},
		{">=", i(1), i(2), b(false)},
	}
	for _, c := range cases {
		got, err := interp.EvalBin(c.op, c.a, c.c)
		if err != nil {
			t.Errorf("%v %s %v: %v", c.a, c.op, c.c, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("%v %s %v = %v, want %v", c.a, c.op, c.c, got, c.want)
		}
	}
}

func TestEvalBinErrors(t *testing.T) {
	bad := []struct {
		op   string
		a, b value.Value
	}{
		{"/", value.Int(1), value.Int(0)},
		{"%", value.Int(1), value.Int(0)},
		{"<<", value.Int(1), value.Int(64)},
		{">>", value.Int(1), value.Int(-1)},
		{"%", value.Float(1), value.Float(2)},
		{"&", value.Bool(true), value.Bool(false)},
		{"<", value.Bool(true), value.Bool(false)},
		{"+", value.Bool(true), value.Bool(false)},
	}
	for _, c := range bad {
		if _, err := interp.EvalBin(c.op, c.a, c.b); err == nil {
			t.Errorf("%v %s %v: expected error", c.a, c.op, c.b)
		}
	}
}

func TestEvalBinIntQuick(t *testing.T) {
	// Interpreter arithmetic must agree with Go's int64 semantics.
	f := func(a, b int64) bool {
		sum, err := interp.EvalBin("+", value.Int(a), value.Int(b))
		if err != nil || sum.AsInt() != a+b {
			return false
		}
		prod, err := interp.EvalBin("*", value.Int(a), value.Int(b))
		if err != nil || prod.AsInt() != a*b {
			return false
		}
		lt, err := interp.EvalBin("<", value.Int(a), value.Int(b))
		if err != nil || lt.AsBool() != (a < b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvalUn(t *testing.T) {
	if v, _ := interp.EvalUn("-", value.Int(5)); v.AsInt() != -5 {
		t.Error("unary minus int")
	}
	if v, _ := interp.EvalUn("-", value.Float(2.5)); v.AsFloat() != -2.5 {
		t.Error("unary minus float")
	}
	if v, _ := interp.EvalUn("!", value.Bool(true)); v.AsBool() {
		t.Error("not")
	}
	if _, err := interp.EvalUn("!", value.Int(1)); err == nil {
		t.Error("! on int should error")
	}
	if _, err := interp.EvalUn("-", value.Str("x")); err == nil {
		t.Error("- on string should error")
	}
}

func TestRunAndCost(t *testing.T) {
	res, sink := compile(t, `
void main() {
	for (int i = 0; i < 3; i++) {
		emit(heavy(i));
	}
}`)
	env := interp.NewEnv(res.Prog, builtinsFor(sink))
	th := interp.NewThread(env)
	if err := th.RunMain(); err != nil {
		t.Fatal(err)
	}
	if len(*sink) != 3 || (*sink)[0] != 1 || (*sink)[2] != 3 {
		t.Errorf("sink = %v", *sink)
	}
	// Cost must include the builtins: 3 heavy (1000) + 3 emit (5) plus
	// instruction costs.
	if th.Cost < 3015 {
		t.Errorf("cost = %d, expected >= 3015", th.Cost)
	}
}

func TestRecursionDepthLimit(t *testing.T) {
	res, sink := compile(t, `
int inf(int n) { return inf(n + 1); }
void main() { emit(inf(0)); }`)
	env := interp.NewEnv(res.Prog, builtinsFor(sink))
	err := interp.NewThread(env).RunMain()
	if err == nil || !strings.Contains(err.Error(), "depth") {
		t.Errorf("err = %v, want depth exceeded", err)
	}
}

func TestUndefinedFunction(t *testing.T) {
	res, _ := compile(t, `void main() { }`)
	env := interp.NewEnv(res.Prog, nil)
	th := interp.NewThread(env)
	if _, err := th.CallByName("nope", nil); err == nil {
		t.Error("expected undefined function error")
	}
}

func TestProfileAttribution(t *testing.T) {
	res, sink := compile(t, `
void main() {
	int s = 0;
	for (int i = 0; i < 5; i++) {
		s = heavy(s);
	}
	emit(s);
}`)
	env := interp.NewEnv(res.Prog, builtinsFor(sink))
	th := interp.NewThread(env)
	mainFn := res.Prog.Funcs["main"]
	th.Profile = interp.NewProfile(mainFn)
	if err := th.RunMain(); err != nil {
		t.Fatal(err)
	}
	if th.Profile.Total != th.Cost {
		t.Errorf("profile total %d != thread cost %d", th.Profile.Total, th.Cost)
	}
	// The call instruction to heavy must carry the dominant cost.
	var maxCost int64
	var maxID int
	for id, c := range th.Profile.Cost {
		if c > maxCost {
			maxCost, maxID = c, id
		}
	}
	in := mainFn.InstrByID(maxID)
	if in == nil || in.Name != "heavy" {
		t.Errorf("dominant instruction = %v (cost %d), want call heavy", in, maxCost)
	}
}

func TestGlobalsSharedAcrossThreads(t *testing.T) {
	res, sink := compile(t, `
int g = 10;
void bump() { g = g + 1; }
void main() { bump(); emit(g); }`)
	env := interp.NewEnv(res.Prog, builtinsFor(sink))
	t1 := interp.NewThread(env)
	if err := t1.RunMain(); err != nil {
		t.Fatal(err)
	}
	t2 := interp.NewThread(env)
	if err := t2.RunMain(); err != nil {
		t.Fatal(err)
	}
	// Same env: the second run observes the first run's increment.
	if (*sink)[0] != 11 || (*sink)[1] != 12 {
		t.Errorf("sink = %v, want [11 12]", *sink)
	}
	snap := env.Globals.Snapshot()
	if snap["g"].AsInt() != 12 {
		t.Errorf("snapshot g = %v", snap["g"])
	}
}

func TestInterceptorWrapsCalls(t *testing.T) {
	res, sink := compile(t, `
void main() {
	for (int i = 0; i < 4; i++) { emit(i); }
}`)
	env := interp.NewEnv(res.Prog, builtinsFor(sink))
	th := interp.NewThread(env)
	intercepted := 0
	th.Interceptor = func(tt *interp.Thread, in *ir.Instr, args []value.Value, invoke func() ([]value.Value, error)) ([]value.Value, error) {
		if in.Name == "emit" {
			intercepted++
		}
		return invoke()
	}
	if err := th.RunMain(); err != nil {
		t.Fatal(err)
	}
	if intercepted != 4 {
		t.Errorf("interceptor saw %d emit calls, want 4", intercepted)
	}
	if len(*sink) != 4 {
		t.Errorf("sink = %v", *sink)
	}
}
