package interp_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/vm/interp"
	"repro/internal/vm/value"
)

// TestHeapWritesAccounting pins the externalized-state counter the
// resilient executor relies on: every OpStoreGlobal bumps HeapWrites,
// while local stores and global loads do not.
func TestHeapWritesAccounting(t *testing.T) {
	res, sink := compile(t, `
int g;
void main() {
	int local = 0;
	for (int i = 0; i < 5; i++) {
		local = local + i;
		g = g + local;
	}
	emit(g);
}`)
	env := interp.NewEnv(res.Prog, builtinsFor(sink))
	th := interp.NewThread(env)
	if err := th.RunMain(); err != nil {
		t.Fatal(err)
	}
	// Exactly the five `g = ...` stores (plus the zero-init store if the
	// lowering emits one) externalize state; loop-local writes never do.
	if th.HeapWrites < 5 || th.HeapWrites > 6 {
		t.Errorf("HeapWrites = %d, want 5 or 6 (five stores to g)", th.HeapWrites)
	}

	// A read-only thread over the same env externalizes nothing.
	res2, sink2 := compile(t, `
int g = 3;
void main() {
	int x = g + g;
	emit(x);
}`)
	env2 := interp.NewEnv(res2.Prog, builtinsFor(sink2))
	th2 := interp.NewThread(env2)
	if err := th2.RunMain(); err != nil {
		t.Fatal(err)
	}
	if th2.HeapWrites != 0 {
		t.Errorf("read-only main: HeapWrites = %d, want 0", th2.HeapWrites)
	}
}

// TestRuntimeErrorCarriesPosition drives a division by zero through the
// full lower-then-execute path: EvalBin's error must surface from RunMain
// prefixed with the source position of the faulting instruction.
func TestRuntimeErrorCarriesPosition(t *testing.T) {
	res, sink := compile(t, `
void main() {
	for (int i = 2; i >= 0; i--) {
		emit(6 / i);
	}
}`)
	env := interp.NewEnv(res.Prog, builtinsFor(sink))
	err := interp.NewThread(env).RunMain()
	if err == nil {
		t.Fatal("division by zero must fail the run")
	}
	if !strings.Contains(err.Error(), "division by zero") || !strings.Contains(err.Error(), "4:") {
		t.Errorf("err = %v, want division-by-zero at line 4", err)
	}
	// The iterations before the fault completed and emitted.
	if len(*sink) != 2 || (*sink)[0] != 3 || (*sink)[1] != 6 {
		t.Errorf("sink = %v, want [3 6]", *sink)
	}
}

// TestBuiltinErrorPropagates verifies an error returned by a builtin
// aborts execution and reaches the caller unwrapped.
func TestBuiltinErrorPropagates(t *testing.T) {
	res, _ := compile(t, `
void main() {
	for (int i = 0; i < 4; i++) {
		emit(heavy(i));
	}
}`)
	sentinel := errors.New("device saturated")
	calls := 0
	fns := map[string]interp.BuiltinFn{
		"emit": func(args []value.Value) (value.Value, int64, error) {
			return value.Void(), 1, nil
		},
		"heavy": func(args []value.Value) (value.Value, int64, error) {
			calls++
			if calls == 3 {
				return value.Value{}, 0, sentinel
			}
			return value.Int(args[0].AsInt()), 1, nil
		},
	}
	err := interp.NewThread(interp.NewEnv(res.Prog, fns)).RunMain()
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want the builtin's sentinel", err)
	}
	if calls != 3 {
		t.Errorf("heavy called %d times, want 3 (abort at the failing call)", calls)
	}
}

// TestExecArityMismatch checks the argument-count guard on direct
// function invocation.
func TestExecArityMismatch(t *testing.T) {
	res, sink := compile(t, `
int twice(int n) { return n + n; }
void main() { emit(twice(2)); }`)
	env := interp.NewEnv(res.Prog, builtinsFor(sink))
	th := interp.NewThread(env)
	if _, err := th.CallByName("twice", nil); err == nil || !strings.Contains(err.Error(), "expects 1 args") {
		t.Errorf("err = %v, want arity mismatch", err)
	}
	if _, err := th.CallByName("twice", []value.Value{value.Int(1), value.Int(2)}); err == nil {
		t.Error("surplus arguments must be rejected")
	}
	if rets, err := th.CallByName("twice", []value.Value{value.Int(21)}); err != nil || rets[0].AsInt() != 42 {
		t.Errorf("twice(21) = %v, %v", rets, err)
	}
}

// TestInterceptorErrorAborts verifies an interceptor's error takes the
// same abort path as a callee failure.
func TestInterceptorErrorAborts(t *testing.T) {
	res, sink := compile(t, `
void main() {
	for (int i = 0; i < 4; i++) { emit(i); }
}`)
	env := interp.NewEnv(res.Prog, builtinsFor(sink))
	th := interp.NewThread(env)
	th.Interceptor = func(tt *interp.Thread, in *ir.Instr, args []value.Value, invoke func() ([]value.Value, error)) ([]value.Value, error) {
		if in.Name == "emit" && args[0].AsInt() == 2 {
			return nil, fmt.Errorf("vetoed at %d", args[0].AsInt())
		}
		return invoke()
	}
	err := th.RunMain()
	if err == nil || !strings.Contains(err.Error(), "vetoed at 2") {
		t.Errorf("err = %v, want interceptor veto", err)
	}
	if len(*sink) != 2 {
		t.Errorf("sink = %v, want the two pre-veto emits", *sink)
	}
}

// recordingTracer captures the event stream the sanitizer hangs off.
type recordingTracer struct {
	events []string
}

func (r *recordingTracer) TraceGlobal(tid int, name string, write bool) {
	kind := "load"
	if write {
		kind = "store"
	}
	r.events = append(r.events, fmt.Sprintf("%s:%s", kind, name))
}

func (r *recordingTracer) TraceBuiltin(tid int, name string, args []value.Value) {
	r.events = append(r.events, fmt.Sprintf("call:%s/%d", name, len(args)))
}

// TestTracerEventStream pins the tracer hook points: every global load,
// global store, and builtin call is observed in execution order, and
// tracing leaves cost and results untouched.
func TestTracerEventStream(t *testing.T) {
	src := `
int g;
void main() {
	g = 7;
	emit(g);
}`
	res, sink := compile(t, src)
	env := interp.NewEnv(res.Prog, builtinsFor(sink))
	plain := interp.NewThread(env)
	if err := plain.RunMain(); err != nil {
		t.Fatal(err)
	}

	res2, sink2 := compile(t, src)
	env2 := interp.NewEnv(res2.Prog, builtinsFor(sink2))
	traced := interp.NewThread(env2)
	tr := &recordingTracer{}
	traced.Tracer = tr
	if err := traced.RunMain(); err != nil {
		t.Fatal(err)
	}
	want := []string{"store:g", "load:g", "call:emit/1"}
	if len(tr.events) != len(want) {
		t.Fatalf("events = %v, want %v", tr.events, want)
	}
	for i, e := range want {
		if tr.events[i] != e {
			t.Errorf("event[%d] = %s, want %s", i, tr.events[i], e)
		}
	}
	if traced.Cost != plain.Cost {
		t.Errorf("tracing changed cost: %d vs %d", traced.Cost, plain.Cost)
	}
	if (*sink2)[0] != (*sink)[0] {
		t.Errorf("tracing changed output: %v vs %v", *sink2, *sink)
	}
}
