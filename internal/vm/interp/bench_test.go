package interp_test

import (
	"testing"

	"repro/internal/vm/interp"
	"repro/internal/vm/value"
)

// benchSrc exercises the shapes the compiled fast path targets: global
// read-modify-writes, local arithmetic, and user-function and builtin
// calls inside a loop.
const benchSrc = `
int g = 0;
int acc(int x) { g = g + x; return g; }
void main() {
	int s = 0;
	for (int i = 0; i < 200; i++) {
		s = s + acc(i);
		s = heavy(s) % 1000;
		g = g + s;
	}
	emit(s);
}`

// benchRun times whole-program execution on one substrate. Each iteration
// gets a fresh environment so both substrates do identical work; the
// compiled code cache persists across iterations, as it does across
// campaign cells.
func benchRun(b *testing.B, fast bool) {
	saved := interp.FastEnabled
	interp.FastEnabled = fast
	defer func() { interp.FastEnabled = saved }()
	res, sink := compile(b, benchSrc)
	fns := builtinsFor(sink)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := interp.NewEnv(res.Prog, fns)
		if err := interp.NewThread(env).RunMain(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunLegacy is the per-instruction legacy stepper with name-keyed
// global access — the host benchmark's baseline substrate.
func BenchmarkRunLegacy(b *testing.B) { benchRun(b, false) }

// BenchmarkRunCompiled is the closure-compiled fast path: pre-compiled
// per-function code, slot-indexed globals, segment-summed costs.
func BenchmarkRunCompiled(b *testing.B) { benchRun(b, true) }

// BenchmarkHeapByName measures the legacy name-keyed global access pair
// (one load plus one store through the heap's name map).
func BenchmarkHeapByName(b *testing.B) {
	res, _ := compile(b, benchSrc)
	h := interp.NewEnv(res.Prog, nil).Globals
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := h.Get("g")
		h.Set("g", value.Int(v.AsInt()+1))
	}
}

// BenchmarkHeapSlot measures the same access pair through the resolved
// slot index — the fast substrate's representation.
func BenchmarkHeapSlot(b *testing.B) {
	res, _ := compile(b, benchSrc)
	h := interp.NewEnv(res.Prog, nil).Globals
	slot := h.SlotOf("g")
	if slot < 0 {
		b.Fatal("global g has no slot")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := h.GetSlot(slot)
		h.SetSlot(slot, value.Int(v.AsInt()+1))
	}
}
