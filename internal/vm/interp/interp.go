// Package interp executes COMMSET IR.
//
// The interpreter is deliberately small and deterministic. It is used three
// ways:
//
//  1. as the reference sequential executor (baseline timings, output
//     validation),
//  2. as the profiler that weights PDG nodes for the pipeline-balancing
//     heuristics of the DSWP family (paper Section 4.5), and
//  3. as the per-logical-thread execution engine inside the discrete-event
//     multicore simulator, where an Interceptor wraps commutative-member
//     calls with synchronization and virtual-time bookkeeping.
//
// Every instruction and builtin charges virtual cost units to the executing
// Thread; the simulator turns those into virtual time.
package interp

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/vm/value"
)

// CostPerInstr is the virtual cost charged for one IR instruction.
const CostPerInstr = 1

// BuiltinFn executes a substrate builtin: it returns the result value and
// the virtual cost of the operation.
type BuiltinFn func(args []value.Value) (value.Value, int64, error)

// Heap holds global variable storage. The discrete-event scheduler
// serializes thread execution, so no locking is needed.
//
// Storage is a dense slice indexed by slot; slots are assigned in program
// declaration order (so the compiled fast path can resolve a global name to
// its slot once, at load time, and index the slice directly). The named
// Get/Set/Snapshot API is preserved for snapshots, tracing, and tests.
type Heap struct {
	vals  []value.Value
	names []string
	idx   map[string]int
}

// NewHeap initializes globals from the program's declarations. Slot i holds
// prog.Globals[i], which is the contract the compiled fast path relies on.
func NewHeap(prog *ir.Program) *Heap {
	h := &Heap{
		vals:  make([]value.Value, len(prog.Globals)),
		names: make([]string, len(prog.Globals)),
		idx:   make(map[string]int, len(prog.Globals)),
	}
	for i, g := range prog.Globals {
		h.vals[i] = g.Init
		h.names[i] = g.Name
		h.idx[g.Name] = i
	}
	return h
}

// Get reads a global.
func (h *Heap) Get(name string) value.Value {
	if i, ok := h.idx[name]; ok {
		return h.vals[i]
	}
	return value.Value{}
}

// Set writes a global, appending a fresh slot for a name the program did
// not declare (tests do this; compiled code never references such slots).
func (h *Heap) Set(name string, v value.Value) {
	if i, ok := h.idx[name]; ok {
		h.vals[i] = v
		return
	}
	h.idx[name] = len(h.vals)
	h.names = append(h.names, name)
	h.vals = append(h.vals, v)
}

// SlotOf returns the slot index of a declared global, or -1.
func (h *Heap) SlotOf(name string) int {
	if i, ok := h.idx[name]; ok {
		return i
	}
	return -1
}

// GetSlot reads the global stored in slot i.
func (h *Heap) GetSlot(i int) value.Value { return h.vals[i] }

// SetSlot writes the global stored in slot i.
func (h *Heap) SetSlot(i int, v value.Value) { h.vals[i] = v }

// Len returns the number of global slots.
func (h *Heap) Len() int { return len(h.vals) }

// Snapshot copies the globals (used by STM validation and tests).
func (h *Heap) Snapshot() map[string]value.Value {
	out := make(map[string]value.Value, len(h.vals))
	for i, name := range h.names {
		out[name] = h.vals[i]
	}
	return out
}

// SnapshotSlots copies the global slots into dst (grown as needed) and
// returns it. Unlike Snapshot it allocates nothing when dst already has
// capacity, which is what the high-frequency capture paths (STM
// validation, sanitizer state capture) want.
func (h *Heap) SnapshotSlots(dst []value.Value) []value.Value {
	dst = append(dst[:0], h.vals...)
	return dst
}

// RestoreSlots writes a SnapshotSlots image back into the heap.
func (h *Heap) RestoreSlots(src []value.Value) {
	copy(h.vals, src)
}

// Range calls fn for every global in slot order without allocating.
func (h *Heap) Range(fn func(name string, v value.Value)) {
	for i, name := range h.names {
		fn(name, h.vals[i])
	}
}

// Env bundles the immutable program with the mutable shared state.
type Env struct {
	Prog     *ir.Program
	Globals  *Heap
	Builtins map[string]BuiltinFn
}

// NewEnv creates an execution environment for prog.
func NewEnv(prog *ir.Program, builtins map[string]BuiltinFn) *Env {
	return &Env{Prog: prog, Globals: NewHeap(prog), Builtins: builtins}
}

// Profile accumulates per-instruction virtual cost for one function,
// attributing callee time to the call instruction.
type Profile struct {
	Func  string
	Cost  []int64
	Total int64
}

// NewProfile prepares a profile for the named function.
func NewProfile(f *ir.Func) *Profile {
	return &Profile{Func: f.Name, Cost: make([]int64, f.NumInstrs())}
}

// Interceptor wraps a call instruction's execution. invoke performs the
// actual call (charging its cost to the thread); the interceptor may charge
// additional cost or block the thread in virtual time around it. args are
// the concrete argument values the call was issued with.
type Interceptor func(t *Thread, in *ir.Instr, args []value.Value, invoke func() ([]value.Value, error)) ([]value.Value, error)

// Tracer observes memory-relevant events as they execute: global
// loads/stores and builtin invocations (with concrete arguments). The
// sanitizer's shadow-cell engine hangs off it. Tracing charges no cost.
type Tracer interface {
	TraceGlobal(tid int, name string, write bool)
	TraceBuiltin(tid int, name string, args []value.Value)
}

// Thread is one logical execution context.
type Thread struct {
	Env  *Env
	Cost int64 // accumulated virtual cost units

	// HeapWrites counts global stores performed by this thread. The
	// resilient executor uses it to tell whether a failed loop iteration
	// externalized state (and therefore cannot be re-executed).
	HeapWrites int

	// ID identifies the logical thread inside the simulator (0 for the
	// sequential reference executor).
	ID int

	// Interceptor, when set, wraps every OpCall.
	Interceptor Interceptor

	// Tracer, when set, observes global accesses and builtin calls.
	Tracer Tracer

	// Profile, when set, accumulates per-instruction cost for the function
	// it names.
	Profile *Profile

	// depth guards against runaway recursion in user programs.
	depth int

	// scratch is a stack arena for call-argument and builtin-result slices
	// on the fast path: execCall carves each call's arguments here (and
	// CallByName its builtin's single result) and pops them once the
	// call's results are consumed, so nested calls reuse one growing
	// backing array instead of allocating per call. Sound because nothing
	// retains such a slice past the call: builtins read their arguments,
	// interceptors pass them through, every caller copies results into
	// registers before its bracket pops, and the sanitizer copies what it
	// records. brackets counts the active Mark/Release pairs — builtin
	// results only go to the arena when a bracket is there to pop them.
	scratch  []value.Value
	brackets int

	// invokeFn is the one reusable invoke closure handed to the
	// interceptor on the fast path; it reads the current call from
	// curIn/curArgs, which execCallArgs saves and restores around nested
	// calls (so it stays correct across interceptor-level retries too).
	invokeFn func() ([]value.Value, error)
	curIn    *ir.Instr
	curArgs  []value.Value
}

// ScratchMark opens a fast-path arena bracket and returns the position to
// pop back to; paired with ScratchRelease by every caller that carves.
func (t *Thread) ScratchMark() int {
	t.brackets++
	return len(t.scratch)
}

// ScratchRelease closes a fast-path arena bracket, popping back to mark.
func (t *Thread) ScratchRelease(mark int) {
	t.brackets--
	t.scratch = t.scratch[:mark]
}

// ScratchSlice carves an n-element slice from the fast-path arena,
// capacity-clamped so callee carves can never alias it.
func (t *Thread) ScratchSlice(n int) []value.Value {
	m := len(t.scratch)
	t.scratch = append(t.scratch, make([]value.Value, n)...)
	return t.scratch[m : m+n : m+n]
}

// maxDepth bounds user-program recursion.
const maxDepth = 10000

// NewThread creates a thread over env.
func NewThread(env *Env) *Thread { return &Thread{Env: env} }

// RunMain executes the program's main function.
func (t *Thread) RunMain() error {
	_, err := t.CallByName("main", nil)
	return err
}

// CallByName invokes a user function or builtin by name.
func (t *Thread) CallByName(name string, args []value.Value) ([]value.Value, error) {
	if f := t.Env.Prog.Funcs[name]; f != nil {
		return t.Exec(f, args)
	}
	if b := t.Env.Builtins[name]; b != nil {
		if t.Tracer != nil {
			t.Tracer.TraceBuiltin(t.ID, name, args)
		}
		v, cost, err := b(args)
		t.Cost += cost
		if err != nil {
			return nil, err
		}
		if FastEnabled && t.brackets > 0 {
			m := len(t.scratch)
			t.scratch = append(t.scratch, v)
			return t.scratch[m : m+1 : m+1], nil
		}
		return []value.Value{v}, nil
	}
	return nil, fmt.Errorf("interp: undefined function %s", name)
}

// Exec runs function f with the given arguments, returning its results
// (regions may return several).
//
// When the fast path is enabled and the thread is not profiling this
// function, execution dispatches to the pre-compiled closure chain (see
// fast.go), which is bit-for-bit cost- and result-identical to the legacy
// stepper below. Interceptors and tracers run unchanged on both paths (the
// compiled global ops emit the same trace events in the same order).
func (t *Thread) Exec(f *ir.Func, args []value.Value) ([]value.Value, error) {
	if FastEnabled && (t.Profile == nil || t.Profile.Func != f.Name) {
		if fc := codeFor(t.Env.Prog, f); fc != nil {
			return t.execFast(fc, args)
		}
	}
	if t.depth >= maxDepth {
		return nil, fmt.Errorf("interp: call depth exceeded in %s", f.Name)
	}
	t.depth++
	defer func() { t.depth-- }()

	locals := make([]value.Value, len(f.Locals))
	for i := range locals {
		locals[i] = value.Zero(f.Locals[i].Type)
	}
	if len(args) != f.Params {
		return nil, fmt.Errorf("interp: %s expects %d args, got %d", f.Name, f.Params, len(args))
	}
	copy(locals, args)
	regs := make([]value.Value, f.NumRegs)

	profiling := t.Profile != nil && t.Profile.Func == f.Name

	blk := f.Entry()
	for {
		redirected := false
		for _, in := range blk.Instrs {
			var before int64
			if profiling {
				before = t.Cost
			}
			next, done, rets, err := t.step(f, in, regs, locals)
			if profiling {
				d := t.Cost - before
				t.Profile.Cost[in.ID] += d
				t.Profile.Total += d
			}
			if err != nil {
				return nil, err
			}
			if done {
				return rets, nil
			}
			if next >= 0 {
				blk = f.BlockByID(next)
				redirected = true
				break
			}
		}
		if !redirected {
			return nil, fmt.Errorf("interp: block b%d of %s fell through without terminator", blk.ID, f.Name)
		}
	}
}

// step executes one instruction. It returns the next block ID (>= 0 on a
// branch), or done=true with return values on OpRet.
func (t *Thread) step(f *ir.Func, in *ir.Instr, regs, locals []value.Value) (next int, done bool, rets []value.Value, err error) {
	t.Cost += CostPerInstr
	switch in.Op {
	case ir.OpConst:
		regs[in.Dst] = in.Val
	case ir.OpLoadLocal:
		regs[in.Dst] = locals[in.Slot]
	case ir.OpStoreLocal:
		locals[in.Slot] = regs[in.A]
	case ir.OpLoadGlobal:
		if t.Tracer != nil {
			t.Tracer.TraceGlobal(t.ID, in.Name, false)
		}
		regs[in.Dst] = t.Env.Globals.Get(in.Name)
	case ir.OpStoreGlobal:
		t.HeapWrites++
		if t.Tracer != nil {
			t.Tracer.TraceGlobal(t.ID, in.Name, true)
		}
		t.Env.Globals.Set(in.Name, regs[in.A])
	case ir.OpBin:
		v, e := EvalBin(in.BinOp, regs[in.A], regs[in.B])
		if e != nil {
			return 0, false, nil, fmt.Errorf("%s: %v", in.Pos, e)
		}
		regs[in.Dst] = v
	case ir.OpUn:
		v, e := EvalUn(in.BinOp, regs[in.A])
		if e != nil {
			return 0, false, nil, fmt.Errorf("%s: %v", in.Pos, e)
		}
		regs[in.Dst] = v
	case ir.OpCall:
		if e := t.execCall(in, regs, locals); e != nil {
			return 0, false, nil, e
		}
	case ir.OpBr:
		return in.Targets[0], false, nil, nil
	case ir.OpCondBr:
		if regs[in.A].AsBool() {
			return in.Targets[0], false, nil, nil
		}
		return in.Targets[1], false, nil, nil
	case ir.OpRet:
		out := make([]value.Value, len(in.Args))
		for i, r := range in.Args {
			out[i] = regs[r]
		}
		return 0, true, out, nil
	}
	return -1, false, nil, nil
}

func (t *Thread) execCall(in *ir.Instr, regs, locals []value.Value) error {
	if !FastEnabled {
		args := make([]value.Value, len(in.Args))
		for i, r := range in.Args {
			args[i] = regs[r]
		}
		return t.execCallArgs(in, regs, locals, args)
	}
	mark := t.ScratchMark()
	args := t.ScratchSlice(len(in.Args))
	for i, r := range in.Args {
		args[i] = regs[r]
	}
	err := t.execCallArgs(in, regs, locals, args)
	t.ScratchRelease(mark)
	return err
}

// execCallArgs finishes a call once its argument slice is built; every
// result is consumed (copied into regs/locals) before it returns, which is
// what lets execCall pop the argument arena afterwards.
func (t *Thread) execCallArgs(in *ir.Instr, regs, locals, args []value.Value) error {
	var rets []value.Value
	var err error
	switch {
	case t.Interceptor == nil:
		rets, err = t.CallByName(in.Name, args)
	case FastEnabled:
		if t.invokeFn == nil {
			t.invokeFn = func() ([]value.Value, error) { return t.CallByName(t.curIn.Name, t.curArgs) }
		}
		savedIn, savedArgs := t.curIn, t.curArgs
		t.curIn, t.curArgs = in, args
		rets, err = t.Interceptor(t, in, args, t.invokeFn)
		t.curIn, t.curArgs = savedIn, savedArgs
	default:
		invoke := func() ([]value.Value, error) { return t.CallByName(in.Name, args) }
		rets, err = t.Interceptor(t, in, args, invoke)
	}
	if err != nil {
		return err
	}
	if in.Dst >= 0 {
		if len(rets) == 0 {
			return fmt.Errorf("%s: call %s returned no value", in.Pos, in.Name)
		}
		regs[in.Dst] = rets[0]
	}
	if len(in.OutSlots) > 0 {
		if len(rets) != len(in.OutSlots) {
			return fmt.Errorf("%s: region %s returned %d values, caller expects %d",
				in.Pos, in.Name, len(rets), len(in.OutSlots))
		}
		for i, slot := range in.OutSlots {
			locals[slot] = rets[i]
		}
	}
	return nil
}
