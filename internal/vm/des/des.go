// Package des is a deterministic discrete-event simulator of a multicore
// machine, the execution substrate for the parallel schedules produced by
// the COMMSET compiler.
//
// The paper evaluates on an 8-core Xeon; this environment has no parallel
// hardware, so (per DESIGN.md) parallel execution is simulated: each
// logical thread runs as a goroutine that executes *real* work (the IR
// interpreter doing real digests, clustering, etc.) while accumulating
// virtual cost units. Threads hand control to the scheduler at
// synchronization points — lock acquire/release, queue push/pop, sleep —
// and the scheduler processes these events in global virtual-time order, so
// results are bit-for-bit reproducible regardless of host parallelism.
//
// Locks model the paper's three pessimistic mechanisms (Section 4.6):
// mutexes pay a sleep/wakeup penalty when contended, spin locks burn the
// waiter's virtual time and pay a cache-line penalty proportional to the
// number of contenders, and "lib"/nosync members pay nothing. Queues model
// the software lock-free queues used for pipeline communication, with a
// configurable per-token latency.
package des

import (
	"fmt"
	"sort"
	"strings"
)

// CostModel holds the virtual-cost parameters of the simulated machine.
type CostModel struct {
	// MutexAcquire/MutexRelease are the uncontended lock costs; MutexWake
	// is the extra sleep/wakeup penalty paid by a mutex waiter.
	MutexAcquire int64
	MutexRelease int64
	MutexWake    int64

	// SpinAcquire/SpinRelease are uncontended costs; SpinContention is the
	// cache-line-bouncing penalty charged per concurrent waiter on a
	// contended acquisition.
	SpinAcquire    int64
	SpinRelease    int64
	SpinContention int64

	// QueuePush/QueuePop are the per-token producer/consumer costs;
	// QueueLatency is the time a token takes to become visible.
	QueuePush    int64
	QueuePop     int64
	QueueLatency int64

	// QueuePushPer/QueuePopPer are the marginal costs of the second and
	// subsequent tokens of a batched PushN/PopN: the first token of a
	// batch pays the full QueuePush/QueuePop, each additional token only
	// the marginal cost (amortized enqueue/dequeue on hot edges).
	QueuePushPer int64
	QueuePopPer  int64

	// TMCommit is the per-transaction commit cost; TMAbortPenalty is added
	// to the re-execution cost on each abort.
	TMCommit       int64
	TMAbortPenalty int64

	// ThreadSpawn is the one-time cost of starting a worker.
	ThreadSpawn int64

	// Checkpoint is the base cost of snapshotting a worker's resumable
	// state (frame, cursors, batched-queue residue); Restore is the base
	// cost of rebuilding a thread from one after a crash or a steal.
	// CheckpointWord/RestoreWord are the marginal per-word costs of the
	// delta/run-length-compressed frame encoding, so a frame that barely
	// diverged from the loop-entry snapshot checkpoints almost for free
	// while a heavily mutated one pays for every literal it carries.
	Checkpoint     int64
	Restore        int64
	CheckpointWord int64
	RestoreWord    int64
}

// DefaultCostModel returns parameters calibrated to reproduce the relative
// behaviour of the paper's mechanisms: spin cheaper than mutex under
// contention, both far cheaper than the work quanta of the benchmarks.
func DefaultCostModel() CostModel {
	return CostModel{
		MutexAcquire: 30, MutexRelease: 20, MutexWake: 600,
		SpinAcquire: 15, SpinRelease: 10, SpinContention: 40,
		QueuePush: 40, QueuePop: 40, QueueLatency: 120,
		QueuePushPer: 8, QueuePopPer: 8,
		TMCommit: 60, TMAbortPenalty: 150,
		ThreadSpawn: 1000,
		Checkpoint:  24, CheckpointWord: 2,
		Restore: 120, RestoreWord: 4,
	}
}

// LockKind selects the synchronization mechanism of a Lock.
type LockKind int

// Lock kinds.
const (
	Mutex LockKind = iota
	Spin
)

// Lock is a scheduler-owned lock.
type Lock struct {
	Name string
	Kind LockKind

	held    bool
	owner   *Thread
	waiters []*Thread // blocked threads, granted in request-time order
}

// Queue is a scheduler-owned bounded queue with per-token latency
// (modelling the software lock-free queues of the DSWP family).
type Queue struct {
	Name string
	Cap  int

	// Stall, when set, returns extra visibility latency for the next
	// pushed token or batch (fault injection: pipeline-queue stalls). It
	// is called exactly once per successful push *operation*, in
	// deterministic order — a batched PushN charges one stall for the
	// whole batch, not one per token.
	Stall func() int64

	items     []queueItem
	waiters   []*Thread // blocked poppers
	blocked   []*Thread // blocked pushers
	highWater int       // deepest occupancy ever reached
}

type queueItem struct {
	val   any
	ready int64 // virtual time at which the consumer can observe it
	seq   int64 // scheduler-wide token number (happens-before probes)
}

// Len reports the number of buffered tokens.
func (q *Queue) Len() int { return len(q.items) }

// HighWater reports the deepest occupancy the queue ever reached — the
// backpressure signal service-mode reports and stall diagnostics surface.
func (q *Queue) HighWater() int { return q.highWater }

// noteDepth refreshes the high-water mark after a push.
func (q *Queue) noteDepth() {
	if len(q.items) > q.highWater {
		q.highWater = len(q.items)
	}
}

// reqKind enumerates thread yield reasons.
type reqKind int

const (
	reqNone reqKind = iota
	reqAcquire
	reqRelease
	reqPush
	reqPushN
	reqPop
	reqPopN
	reqSleep
	reqWake // internal: resume a woken thread, delivering pending.val
	reqDone
)

type request struct {
	kind reqKind
	lock *Lock
	q    *Queue
	val  any
	vals []any // batch payload of a reqPushN
	n    int   // requested batch size of a reqPopN
	d    int64
	err  error
}

type grant struct {
	val   any
	vtime int64
}

// Thread is one simulated logical thread. Methods on Thread are called
// from within the thread's own goroutine.
type Thread struct {
	ID    int
	Name  string
	VTime int64

	sched    *Scheduler
	resumeCh chan grant
	reqTime  int64 // virtual time of the pending request

	pending request
	state   threadState
	started bool
	body    func(*Thread) error

	// Blocked-state bookkeeping for stall diagnostics.
	blockLock  *Lock
	blockQueue *Queue
	blockOp    string
	holds      []*Lock
}

type threadState int

const (
	tReady   threadState = iota // has a pending event at reqTime
	tBlocked                    // waiting on a lock or queue
	tDone
)

// Charge adds local computation cost to the thread's clock.
func (t *Thread) Charge(c int64) { t.VTime += c }

// yield hands the pending request to the scheduler and waits for the grant.
func (t *Thread) yield(r request) grant {
	t.pending = r
	t.reqTime = t.VTime
	t.sched.yieldCh <- t
	g := <-t.resumeCh
	t.VTime = g.vtime
	return g
}

// Acquire blocks in virtual time until the lock is held by this thread.
func (t *Thread) Acquire(l *Lock) {
	t.yield(request{kind: reqAcquire, lock: l})
}

// Release releases the lock, waking the next waiter.
func (t *Thread) Release(l *Lock) {
	t.yield(request{kind: reqRelease, lock: l})
}

// Push enqueues a token, blocking in virtual time while the queue is full.
func (t *Thread) Push(q *Queue, v any) {
	t.yield(request{kind: reqPush, q: q, val: v})
}

// Pop dequeues a token, blocking in virtual time while the queue is empty.
func (t *Thread) Pop(q *Queue) any {
	g := t.yield(request{kind: reqPop, q: q})
	return g.val
}

// PushN enqueues a batch of tokens in one scheduler event: the first
// token pays QueuePush, each additional token only QueuePushPer, and the
// queue's Stall hook fires once for the whole batch. A batch larger than
// the queue capacity is split into capacity-sized sub-batches. Blocks in
// virtual time until the whole (sub-)batch fits.
func (t *Thread) PushN(q *Queue, vs []any) {
	switch len(vs) {
	case 0:
		return
	case 1:
		t.Push(q, vs[0])
		return
	}
	for len(vs) > 0 {
		n := len(vs)
		if q.Cap > 0 && n > q.Cap {
			n = q.Cap
		}
		t.yield(request{kind: reqPushN, q: q, vals: vs[:n:n]})
		vs = vs[n:]
	}
}

// PopN dequeues up to max buffered tokens in one scheduler event,
// blocking in virtual time while the queue is empty (so it returns at
// least one token). The first token pays QueuePop, each additional token
// only QueuePopPer.
func (t *Thread) PopN(q *Queue, max int) []any {
	if max <= 1 {
		return []any{t.Pop(q)}
	}
	g := t.yield(request{kind: reqPopN, q: q, n: max})
	return g.val.([]any)
}

// Sleep advances the thread's clock by d through the scheduler (so other
// threads' events interleave correctly).
func (t *Thread) Sleep(d int64) {
	t.yield(request{kind: reqSleep, d: d})
}

// Watchdog bounds a simulation so livelock and runaway stalls become
// diagnosed errors instead of hangs. Zero fields disable the checks.
type Watchdog struct {
	// MaxVTime aborts the run when the next event would execute past this
	// virtual time (a progress budget: a healthy run finishes well inside
	// it, a stalled run keeps burning virtual time without completing).
	MaxVTime int64
	// MaxEvents aborts the run after this many scheduler events (a
	// livelock budget: threads exchanging events forever at little or no
	// virtual-time cost).
	MaxEvents int64
}

// Probe observes the scheduler's synchronization events. The sanitizer
// derives happens-before edges from it: lock release→acquire, queue
// push→pop (per token), and spawn parent→child. Probe calls happen
// outside cost accounting, so an attached probe never changes virtual
// time.
type Probe interface {
	ThreadSpawned(parent, child int)
	LockAcquired(thread int, lock string)
	LockReleased(thread int, lock string)
	QueuePushed(thread int, queue string, seqs []int64)
	QueuePopped(thread int, queue string, seqs []int64)
}

// Scheduler coordinates all threads of one simulation.
type Scheduler struct {
	Cost CostModel

	// Probe, when set, observes synchronization events (see Probe). It
	// has no effect on scheduling or virtual time.
	Probe Probe

	// Watchdog, when set, converts stalls and livelocks into diagnosed
	// StallErrors naming every live thread and what it waits on.
	Watchdog Watchdog

	// DiagNote, when set, contributes one line of harness state (e.g. the
	// service runtime's current admission-controller state) to StallError
	// diagnostics, so a stalled run names not just the saturated queue but
	// the admission decisions that filled it.
	DiagNote func() string

	threads []*Thread
	yieldCh chan *Thread
	running *Thread // thread whose body is currently executing
	tokSeq  int64   // next queue-token sequence number

	locks  []*Lock
	queues []*Queue

	deaths []DeathRecord

	firstErr error
}

// DeathRecord is one simulated-thread death (an injected crash): which
// thread died, at what virtual time, and why. Deaths are surfaced in
// Watchdog-style StallError diagnostics so a stalled run names the crashes
// that preceded the stall.
type DeathRecord struct {
	Thread string
	VTime  int64
	Reason string
}

// RecordDeath logs a thread death for diagnostics. Called by the executor's
// supervisor when a fault plan kills a simulated thread.
func (s *Scheduler) RecordDeath(thread string, vtime int64, reason string) {
	s.deaths = append(s.deaths, DeathRecord{Thread: thread, VTime: vtime, Reason: reason})
}

// Deaths returns the thread deaths recorded so far, in order.
func (s *Scheduler) Deaths() []DeathRecord { return s.deaths }

// New creates a scheduler with the given cost model.
func New(cost CostModel) *Scheduler {
	return &Scheduler{Cost: cost, yieldCh: make(chan *Thread)}
}

// NewLock registers a lock.
func (s *Scheduler) NewLock(name string, kind LockKind) *Lock {
	l := &Lock{Name: name, Kind: kind}
	s.locks = append(s.locks, l)
	return l
}

// NewQueue registers a bounded queue.
func (s *Scheduler) NewQueue(name string, capacity int) *Queue {
	q := &Queue{Name: name, Cap: capacity}
	s.queues = append(s.queues, q)
	return q
}

// Spawn registers a thread starting at the given virtual time. Threads run
// body and terminate when it returns.
func (s *Scheduler) Spawn(name string, start int64, body func(*Thread) error) *Thread {
	t := &Thread{
		ID:       len(s.threads),
		Name:     name,
		VTime:    start + s.Cost.ThreadSpawn,
		sched:    s,
		resumeCh: make(chan grant),
		state:    tReady,
		body:     body,
	}
	t.reqTime = t.VTime
	s.threads = append(s.threads, t)
	if s.Probe != nil {
		parent := -1
		if s.running != nil {
			parent = s.running.ID
		}
		s.Probe.ThreadSpawned(parent, t.ID)
	}
	return t
}

// Run executes the simulation to completion and returns the maximum thread
// finish time (the makespan) or the first thread error. A simulation that
// ends with blocked threads, exceeds the watchdog's virtual-time budget, or
// exceeds its event budget returns a *StallError diagnosing every live
// thread.
func (s *Scheduler) Run() (int64, error) {
	var events int64
	for {
		t := s.pickNext()
		if t == nil {
			break
		}
		if s.Watchdog.MaxVTime > 0 && t.reqTime > s.Watchdog.MaxVTime {
			return s.makespan(), s.stallError("watchdog",
				fmt.Sprintf("no completion by virtual time %d (budget %d)", t.reqTime, s.Watchdog.MaxVTime))
		}
		events++
		if s.Watchdog.MaxEvents > 0 && events > s.Watchdog.MaxEvents {
			return s.makespan(), s.stallError("watchdog",
				fmt.Sprintf("livelock suspected: %d scheduler events without completion (budget %d)", events, s.Watchdog.MaxEvents))
		}
		s.step(t)
	}
	makespan := s.makespan()
	blocked := 0
	for _, t := range s.threads {
		if t.state == tBlocked {
			blocked++
		}
	}
	if s.firstErr != nil {
		return makespan, s.firstErr
	}
	if blocked > 0 {
		return makespan, s.stallError("deadlock",
			fmt.Sprintf("%d thread(s) still blocked at end of simulation", blocked))
	}
	return makespan, nil
}

// makespan returns the maximum thread virtual time reached so far.
func (s *Scheduler) makespan() int64 {
	var m int64
	for _, t := range s.threads {
		if t.VTime > m {
			m = t.VTime
		}
	}
	return m
}

// ThreadDiag is one live thread's state inside a StallError.
type ThreadDiag struct {
	Name  string
	VTime int64
	// State describes what the thread is doing: ready, or blocked on a
	// named lock (with its current owner) or queue (with its occupancy).
	State string
	// Holds names the locks the thread currently owns.
	Holds []string
}

// QueueDiag is one queue's occupancy snapshot inside a StallError (and in
// Scheduler.QueueDiags): current depth, capacity, the deepest occupancy
// ever reached, and how many threads are parked on each side. A saturated
// service-mode run names its bottleneck queue through these.
type QueueDiag struct {
	Name           string `json:"name"`
	Len            int    `json:"len"`
	Cap            int    `json:"cap"`
	HighWater      int    `json:"high_water"`
	BlockedPushers int    `json:"blocked_pushers,omitempty"`
	WaitingPoppers int    `json:"waiting_poppers,omitempty"`
}

// QueueDiags snapshots every registered queue that has ever held a token,
// in registration order.
func (s *Scheduler) QueueDiags() []QueueDiag {
	var out []QueueDiag
	for _, q := range s.queues {
		if q.highWater == 0 && len(q.blocked) == 0 && len(q.waiters) == 0 {
			continue
		}
		out = append(out, QueueDiag{
			Name: q.Name, Len: len(q.items), Cap: q.Cap, HighWater: q.highWater,
			BlockedPushers: len(q.blocked), WaitingPoppers: len(q.waiters),
		})
	}
	return out
}

// StallError diagnoses a deadlocked, livelocked, or stalled simulation:
// every non-finished thread with what it waits on and what it holds.
type StallError struct {
	Kind    string // "deadlock" or "watchdog"
	Reason  string
	Threads []ThreadDiag
	// Queues snapshots every active queue — depth, capacity, high-water
	// mark, and parked threads per side — so a stalled service run names
	// the saturated queue directly.
	Queues []QueueDiag
	// Note carries one line of harness state (the Scheduler.DiagNote hook;
	// e.g. the service admission controller's level and shed counters).
	Note string
	// Deaths lists the injected thread crashes that preceded the stall —
	// the restart history a post-mortem needs to see whether the stall is
	// a recovery bug or an unrelated hang.
	Deaths []DeathRecord
}

// Error renders the multi-line diagnostic.
func (e *StallError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "des: %s — %s", e.Kind, e.Reason)
	for _, t := range e.Threads {
		fmt.Fprintf(&b, "\n  thread %s @t=%d: %s", t.Name, t.VTime, t.State)
		if len(t.Holds) > 0 {
			fmt.Fprintf(&b, "; holds [%s]", strings.Join(t.Holds, ", "))
		}
	}
	for _, q := range e.Queues {
		fmt.Fprintf(&b, "\n  queue %s: %d/%d buffered, high-water %d", q.Name, q.Len, q.Cap, q.HighWater)
		if q.BlockedPushers > 0 {
			fmt.Fprintf(&b, ", %d pusher(s) blocked", q.BlockedPushers)
		}
		if q.WaitingPoppers > 0 {
			fmt.Fprintf(&b, ", %d popper(s) waiting", q.WaitingPoppers)
		}
	}
	if e.Note != "" {
		fmt.Fprintf(&b, "\n  %s", e.Note)
	}
	for _, d := range e.Deaths {
		fmt.Fprintf(&b, "\n  died: %s @t=%d: %s", d.Thread, d.VTime, d.Reason)
	}
	return b.String()
}

// stallError builds a StallError over every live thread, in thread order.
func (s *Scheduler) stallError(kind, reason string) *StallError {
	e := &StallError{Kind: kind, Reason: reason, Queues: s.QueueDiags(), Deaths: s.deaths}
	if s.DiagNote != nil {
		e.Note = s.DiagNote()
	}
	for _, t := range s.threads {
		if t.state == tDone {
			continue
		}
		d := ThreadDiag{Name: t.Name, VTime: t.VTime, State: t.describe()}
		for _, l := range t.holds {
			d.Holds = append(d.Holds, l.Name)
		}
		e.Threads = append(e.Threads, d)
	}
	return e
}

// describe renders what the thread is waiting for.
func (t *Thread) describe() string {
	if t.state != tBlocked {
		return fmt.Sprintf("ready (next event at t=%d)", t.reqTime)
	}
	switch {
	case t.blockLock != nil:
		owner := "nobody"
		if t.blockLock.owner != nil {
			owner = t.blockLock.owner.Name
		}
		return fmt.Sprintf("blocked acquiring lock %s (held by %s, %d waiter(s))",
			t.blockLock.Name, owner, len(t.blockLock.waiters))
	case t.blockQueue != nil && t.blockOp == "pop":
		batch := ""
		if t.pending.kind == reqPopN {
			batch = fmt.Sprintf(" for a batch of up to %d", t.pending.n)
		}
		return fmt.Sprintf("blocked popping queue %s%s (empty, %d pusher(s) blocked)",
			t.blockQueue.Name, batch, len(t.blockQueue.blocked))
	case t.blockQueue != nil && t.blockOp == "push":
		// A stalled batch names its queue once, with the token count —
		// not one diagnostic line per token.
		batch := ""
		if t.pending.kind == reqPushN {
			batch = fmt.Sprintf(" a batch of %d to", len(t.pending.vals))
		}
		return fmt.Sprintf("blocked pushing%s queue %s (full %d/%d, %d popper(s) waiting)",
			batch, t.blockQueue.Name, len(t.blockQueue.items), t.blockQueue.Cap, len(t.blockQueue.waiters))
	}
	return "blocked"
}

// block records why the thread is parked (for stall diagnostics).
func (t *Thread) block(l *Lock, q *Queue, op string) {
	t.state = tBlocked
	t.blockLock, t.blockQueue, t.blockOp = l, q, op
}

// unblock marks the thread runnable again and clears the bookkeeping.
func (t *Thread) unblock() {
	t.state = tReady
	t.blockLock, t.blockQueue, t.blockOp = nil, nil, ""
}

// pickNext returns the ready thread with the smallest (reqTime, ID), or nil
// when every thread is done or blocked.
func (s *Scheduler) pickNext() *Thread {
	var best *Thread
	for _, t := range s.threads {
		if t.state != tReady {
			continue
		}
		if best == nil || t.reqTime < best.reqTime || (t.reqTime == best.reqTime && t.ID < best.ID) {
			best = t
		}
	}
	return best
}

// resume lets the thread continue and waits for its next yield (or exit).
// While the body runs, s.running names it so Spawn can attribute the
// parent of a new thread (the spawn happens-before edge).
func (s *Scheduler) resume(t *Thread, g grant) {
	prev := s.running
	s.running = t
	defer func() { s.running = prev }()
	if !t.started {
		t.started = true
		go func() {
			<-t.resumeCh // initial grant consumed below
			err := t.body(t)
			t.pending = request{kind: reqDone, err: err}
			t.reqTime = t.VTime
			s.yieldCh <- t
		}()
		t.resumeCh <- grant{vtime: t.VTime}
		s.waitYield(t)
		return
	}
	t.resumeCh <- g
	s.waitYield(t)
}

// waitYield waits until this specific thread yields again. Because only one
// thread runs at a time, the next yield is always from t.
func (s *Scheduler) waitYield(t *Thread) {
	if y := <-s.yieldCh; y != t {
		panic("des: yield from unexpected thread")
	}
}

// step processes one thread's pending event.
func (s *Scheduler) step(t *Thread) {
	r := t.pending
	switch r.kind {
	case reqNone:
		// First activation.
		s.resume(t, grant{vtime: t.VTime})
	case reqDone:
		t.state = tDone
		if r.err != nil && s.firstErr == nil {
			s.firstErr = r.err
		}
	case reqAcquire:
		s.acquire(t, r.lock)
	case reqRelease:
		s.release(t, r.lock)
	case reqPush:
		s.push(t, r.q, r.val)
	case reqPushN:
		s.pushN(t, r.q, r.vals)
	case reqPop:
		s.pop(t, r.q)
	case reqPopN:
		s.popN(t, r.q, r.n)
	case reqSleep:
		// Reschedule the wake as an ordered event rather than resuming
		// immediately, so threads with earlier virtual times run first.
		t.pending = request{kind: reqWake}
		t.VTime += r.d
		t.reqTime = t.VTime
	case reqWake:
		s.resume(t, grant{val: r.val, vtime: t.VTime})
	}
}

func (s *Scheduler) acquire(t *Thread, l *Lock) {
	if !l.held {
		l.held = true
		l.owner = t
		t.holds = append(t.holds, l)
		if s.Probe != nil {
			s.Probe.LockAcquired(t.ID, l.Name)
		}
		cost := s.Cost.MutexAcquire
		if l.Kind == Spin {
			cost = s.Cost.SpinAcquire
		}
		s.resume(t, grant{vtime: t.VTime + cost})
		return
	}
	t.block(l, nil, "acquire")
	l.waiters = append(l.waiters, t)
}

func (s *Scheduler) release(t *Thread, l *Lock) {
	if l.owner != t {
		if s.firstErr == nil {
			s.firstErr = fmt.Errorf("des: thread %s releases lock %s it does not hold", t.Name, l.Name)
		}
		t.state = tDone
		return
	}
	relCost := s.Cost.MutexRelease
	if l.Kind == Spin {
		relCost = s.Cost.SpinRelease
	}
	relTime := t.VTime + relCost
	for i, h := range t.holds {
		if h == l {
			t.holds = append(t.holds[:i], t.holds[i+1:]...)
			break
		}
	}
	if s.Probe != nil {
		s.Probe.LockReleased(t.ID, l.Name)
	}

	if len(l.waiters) > 0 {
		// Grant to the earliest requester (FIFO by request time, then ID).
		sort.SliceStable(l.waiters, func(i, j int) bool {
			a, b := l.waiters[i], l.waiters[j]
			if a.reqTime != b.reqTime {
				return a.reqTime < b.reqTime
			}
			return a.ID < b.ID
		})
		w := l.waiters[0]
		l.waiters = l.waiters[1:]
		l.owner = w
		w.holds = append(w.holds, l)
		wake := maxI64(w.reqTime, relTime)
		switch l.Kind {
		case Mutex:
			wake += s.Cost.MutexWake
		case Spin:
			// Spinners burn their own time; contended handoff pays a
			// cache-line penalty per remaining contender.
			wake += s.Cost.SpinAcquire + s.Cost.SpinContention*int64(len(l.waiters)+1)
		}
		w.unblock()
		w.reqTime = wake
		w.VTime = wake
		w.pending = request{kind: reqWake}
		if s.Probe != nil {
			s.Probe.LockAcquired(w.ID, l.Name)
		}
	} else {
		l.held = false
		l.owner = nil
	}
	s.resume(t, grant{vtime: relTime})
}

func (s *Scheduler) push(t *Thread, q *Queue, v any) {
	if len(q.items) >= q.Cap {
		t.block(nil, q, "push")
		q.blocked = append(q.blocked, t)
		return
	}
	pushTime := t.VTime + s.Cost.QueuePush
	latency := s.Cost.QueueLatency
	if q.Stall != nil {
		latency += q.Stall()
	}
	seq := s.tokSeq
	s.tokSeq++
	q.items = append(q.items, queueItem{val: v, ready: pushTime + latency, seq: seq})
	q.noteDepth()
	if s.Probe != nil {
		s.Probe.QueuePushed(t.ID, q.Name, []int64{seq})
	}
	s.wakePoppers(q)
	s.resume(t, grant{vtime: pushTime})
}

// pushN appends a whole batch in one event. The batch blocks as a unit
// while it does not fit; the Stall hook fires once for the batch and its
// extra latency applies to every token in it.
func (s *Scheduler) pushN(t *Thread, q *Queue, vs []any) {
	if len(q.items)+len(vs) > q.Cap {
		t.block(nil, q, "push")
		q.blocked = append(q.blocked, t)
		return
	}
	pushTime := t.VTime + s.Cost.QueuePush + s.Cost.QueuePushPer*int64(len(vs)-1)
	latency := s.Cost.QueueLatency
	if q.Stall != nil {
		latency += q.Stall()
	}
	seqs := make([]int64, 0, len(vs))
	for _, v := range vs {
		seq := s.tokSeq
		s.tokSeq++
		seqs = append(seqs, seq)
		q.items = append(q.items, queueItem{val: v, ready: pushTime + latency, seq: seq})
	}
	q.noteDepth()
	if s.Probe != nil {
		s.Probe.QueuePushed(t.ID, q.Name, seqs)
	}
	s.wakePoppers(q)
	s.resume(t, grant{vtime: pushTime})
}

func (s *Scheduler) pop(t *Thread, q *Queue) {
	if len(q.items) == 0 {
		t.block(nil, q, "pop")
		q.waiters = append(q.waiters, t)
		return
	}
	item := q.items[0]
	q.items = q.items[1:]
	if s.Probe != nil {
		s.Probe.QueuePopped(t.ID, q.Name, []int64{item.seq})
	}
	s.wakePushers(t.VTime, q)
	at := maxI64(t.VTime, item.ready) + s.Cost.QueuePop
	s.resume(t, grant{val: item.val, vtime: at})
}

// popN takes up to max buffered tokens in one event; the consumer's
// clock advances to the latest taken token's ready time plus the
// amortized pop cost.
func (s *Scheduler) popN(t *Thread, q *Queue, max int) {
	if len(q.items) == 0 {
		t.block(nil, q, "pop")
		q.waiters = append(q.waiters, t)
		return
	}
	taken, ready, seqs := q.take(max)
	if s.Probe != nil {
		s.Probe.QueuePopped(t.ID, q.Name, seqs)
	}
	s.wakePushers(t.VTime, q)
	at := maxI64(t.VTime, ready) + s.Cost.QueuePop + s.Cost.QueuePopPer*int64(len(taken)-1)
	s.resume(t, grant{val: taken, vtime: at})
}

// take removes up to max items from the head of the queue, returning the
// values, the latest ready time among them, and their token numbers.
func (q *Queue) take(max int) ([]any, int64, []int64) {
	n := max
	if n > len(q.items) {
		n = len(q.items)
	}
	taken := make([]any, n)
	seqs := make([]int64, n)
	var ready int64
	for i := 0; i < n; i++ {
		taken[i] = q.items[i].val
		seqs[i] = q.items[i].seq
		if q.items[i].ready > ready {
			ready = q.items[i].ready
		}
	}
	q.items = q.items[n:]
	return taken, ready, seqs
}

// wakePoppers hands buffered tokens to blocked poppers in block order
// until one side runs out. A blocked PopN receives up to its requested
// count in a single wake at the amortized cost.
func (s *Scheduler) wakePoppers(q *Queue) {
	for len(q.waiters) > 0 && len(q.items) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		if w.pending.kind == reqPopN {
			taken, ready, seqs := q.take(w.pending.n)
			if s.Probe != nil {
				s.Probe.QueuePopped(w.ID, q.Name, seqs)
			}
			w.unblock()
			w.reqTime = maxI64(w.reqTime, ready) + s.Cost.QueuePop + s.Cost.QueuePopPer*int64(len(taken)-1)
			w.VTime = w.reqTime
			w.pending = request{kind: reqWake, val: taken}
			continue
		}
		item := q.items[0]
		q.items = q.items[1:]
		if s.Probe != nil {
			s.Probe.QueuePopped(w.ID, q.Name, []int64{item.seq})
		}
		w.unblock()
		w.reqTime = maxI64(w.reqTime, item.ready) + s.Cost.QueuePop
		w.VTime = w.reqTime
		w.pending = request{kind: reqWake, val: item.val}
	}
}

// wakePushers re-dispatches blocked pushers, in block order, whose whole
// batch now fits the freed space. A batch at the head that still does
// not fit keeps later pushers blocked too, preserving FIFO push order.
func (s *Scheduler) wakePushers(now int64, q *Queue) {
	space := q.Cap - len(q.items)
	for len(q.blocked) > 0 {
		w := q.blocked[0]
		need := 1
		if w.pending.kind == reqPushN {
			need = len(w.pending.vals)
		}
		if need > space {
			return
		}
		space -= need
		q.blocked = q.blocked[1:]
		w.unblock()
		w.reqTime = maxI64(w.reqTime, now)
		w.VTime = w.reqTime
		w.pending = request{kind: w.pending.kind, q: q, val: w.pending.val, vals: w.pending.vals}
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
