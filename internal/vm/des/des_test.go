package des

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

// flatCost returns a cost model with zeroed overheads so tests can reason
// about exact virtual times.
func flatCost() CostModel {
	return CostModel{}
}

func TestSingleThreadCharges(t *testing.T) {
	s := New(flatCost())
	s.Spawn("w", 0, func(th *Thread) error {
		th.Charge(100)
		return nil
	})
	makespan, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if makespan != 100 {
		t.Errorf("makespan = %d, want 100", makespan)
	}
}

func TestParallelThreadsOverlap(t *testing.T) {
	s := New(flatCost())
	for i := 0; i < 4; i++ {
		s.Spawn("w", 0, func(th *Thread) error {
			th.Charge(100)
			return nil
		})
	}
	makespan, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Four independent threads run concurrently in virtual time.
	if makespan != 100 {
		t.Errorf("makespan = %d, want 100 (perfect overlap)", makespan)
	}
}

func TestLockSerializesCriticalSections(t *testing.T) {
	s := New(flatCost())
	l := s.NewLock("l", Spin)
	for i := 0; i < 4; i++ {
		s.Spawn("w", 0, func(th *Thread) error {
			th.Acquire(l)
			th.Charge(100)
			th.Release(l)
			return nil
		})
	}
	makespan, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Critical sections fully serialize: 4 * 100.
	if makespan != 400 {
		t.Errorf("makespan = %d, want 400", makespan)
	}
}

func TestLockFIFOByRequestTime(t *testing.T) {
	s := New(flatCost())
	l := s.NewLock("l", Spin)
	var order []int
	mk := func(id int, arrive int64) {
		s.Spawn("w", 0, func(th *Thread) error {
			th.Charge(arrive)
			th.Acquire(l)
			order = append(order, id)
			th.Charge(50)
			th.Release(l)
			return nil
		})
	}
	mk(0, 0)
	mk(1, 30)
	mk(2, 10)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 2, 1} // grant order follows virtual request time
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestMutexWakePenalty(t *testing.T) {
	cost := CostModel{MutexWake: 500}
	s := New(cost)
	l := s.NewLock("l", Mutex)
	for i := 0; i < 2; i++ {
		s.Spawn("w", 0, func(th *Thread) error {
			th.Acquire(l)
			th.Charge(100)
			th.Release(l)
			return nil
		})
	}
	makespan, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Second thread: woken at 100 + 500 penalty, then 100 work.
	if makespan != 700 {
		t.Errorf("makespan = %d, want 700", makespan)
	}
}

func TestSpinContentionPenaltyScalesWithWaiters(t *testing.T) {
	run := func(n int) int64 {
		s := New(CostModel{SpinContention: 100})
		l := s.NewLock("l", Spin)
		for i := 0; i < n; i++ {
			s.Spawn("w", 0, func(th *Thread) error {
				th.Acquire(l)
				th.Charge(10)
				th.Release(l)
				return nil
			})
		}
		m, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	low := run(2)
	high := run(6)
	if high-low < 4*10 {
		t.Errorf("contention penalty did not grow: 2 threads %d, 6 threads %d", low, high)
	}
}

func TestQueuePipelining(t *testing.T) {
	s := New(CostModel{QueueLatency: 10})
	q := s.NewQueue("q", 4)
	const n = 5
	s.Spawn("producer", 0, func(th *Thread) error {
		for i := 0; i < n; i++ {
			th.Charge(100) // produce
			th.Push(q, i)
		}
		return nil
	})
	var got []int
	s.Spawn("consumer", 0, func(th *Thread) error {
		for i := 0; i < n; i++ {
			v := th.Pop(q).(int)
			got = append(got, v)
			th.Charge(100) // consume
		}
		return nil
	})
	makespan, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got[i] != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
	// Pipelined: roughly n*100 + one stage latency, far below 2*n*100.
	if makespan >= 2*n*100 {
		t.Errorf("no pipelining: makespan = %d", makespan)
	}
	if makespan < n*100 {
		t.Errorf("impossible makespan = %d", makespan)
	}
}

func TestQueueBackpressure(t *testing.T) {
	s := New(flatCost())
	q := s.NewQueue("q", 1)
	s.Spawn("producer", 0, func(th *Thread) error {
		for i := 0; i < 3; i++ {
			th.Push(q, i)
		}
		return nil
	})
	s.Spawn("consumer", 0, func(th *Thread) error {
		for i := 0; i < 3; i++ {
			th.Charge(100)
			if v := th.Pop(q).(int); v != i {
				t.Errorf("pop %d: got %v", i, v)
			}
		}
		return nil
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	s := New(flatCost())
	q := s.NewQueue("q", 1)
	s.Spawn("w", 0, func(th *Thread) error {
		th.Pop(q) // nobody will ever push
		return nil
	})
	_, err := s.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestSleepInterleaving(t *testing.T) {
	s := New(flatCost())
	var events []string
	s.Spawn("a", 0, func(th *Thread) error {
		th.Sleep(50)
		events = append(events, "a@50")
		return nil
	})
	s.Spawn("b", 0, func(th *Thread) error {
		th.Sleep(20)
		events = append(events, "b@20")
		return nil
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0] != "b@20" || events[1] != "a@50" {
		t.Errorf("events = %v", events)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() int64 {
		s := New(DefaultCostModel())
		l := s.NewLock("l", Spin)
		q := s.NewQueue("q", 8)
		s.Spawn("p", 0, func(th *Thread) error {
			for i := 0; i < 20; i++ {
				th.Charge(int64(7 * (i + 1)))
				th.Acquire(l)
				th.Charge(5)
				th.Release(l)
				th.Push(q, i)
			}
			return nil
		})
		for w := 0; w < 3; w++ {
			s.Spawn("c", 0, func(th *Thread) error {
				for i := w; i < 20; i += 3 {
					_ = th.Pop(q)
					th.Acquire(l)
					th.Charge(11)
					th.Release(l)
				}
				return nil
			})
		}
		m, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a := run()
	b := run()
	if a != b {
		t.Errorf("nondeterministic makespan: %d vs %d", a, b)
	}
}

// TestQueueFIFOQuick: random push/pop schedules with arbitrary costs must
// preserve FIFO order and deliver every token exactly once.
func TestQueueFIFOQuick(t *testing.T) {
	run := func(costs []uint16, capacity uint8) bool {
		if len(costs) == 0 {
			return true
		}
		if len(costs) > 64 {
			costs = costs[:64]
		}
		capn := int(capacity%8) + 1
		s := New(DefaultCostModel())
		q := s.NewQueue("q", capn)
		n := len(costs)
		s.Spawn("producer", 0, func(th *Thread) error {
			for i := 0; i < n; i++ {
				th.Charge(int64(costs[i]))
				th.Push(q, i)
			}
			return nil
		})
		got := make([]int, 0, n)
		s.Spawn("consumer", 0, func(th *Thread) error {
			for i := 0; i < n; i++ {
				th.Charge(int64(costs[n-1-i]) / 2)
				got = append(got, th.Pop(q).(int))
			}
			return nil
		})
		if _, err := s.Run(); err != nil {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(run, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestLockMutualExclusionQuick: under random hold times, critical sections
// never overlap in virtual time.
func TestLockMutualExclusionQuick(t *testing.T) {
	run := func(holds []uint8, spin bool) bool {
		if len(holds) == 0 {
			return true
		}
		if len(holds) > 16 {
			holds = holds[:16]
		}
		kind := Mutex
		if spin {
			kind = Spin
		}
		s := New(DefaultCostModel())
		l := s.NewLock("l", kind)
		type span struct{ start, end int64 }
		var spans []span
		for i := range holds {
			h := int64(holds[i]) + 1
			s.Spawn("w", 0, func(th *Thread) error {
				th.Acquire(l)
				start := th.VTime
				th.Charge(h)
				end := th.VTime
				spans = append(spans, span{start, end})
				th.Release(l)
				return nil
			})
		}
		if _, err := s.Run(); err != nil {
			return false
		}
		for i := range spans {
			for j := range spans {
				if i == j {
					continue
				}
				a, b := spans[i], spans[j]
				if a.start < b.end && b.start < a.end {
					return false // overlap
				}
			}
		}
		return true
	}
	if err := quick.Check(run, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDeadlockDiagnosticNamesThreadsAndQueues(t *testing.T) {
	s := New(flatCost())
	q := s.NewQueue("stage.q", 1)
	l := s.NewLock("set:FSET", Mutex)
	s.Spawn("consumer", 0, func(th *Thread) error {
		th.Acquire(l)
		th.Pop(q) // nobody will ever push: deadlock while holding the lock
		return nil
	})
	s.Spawn("rival", 0, func(th *Thread) error {
		th.Sleep(10)
		th.Acquire(l) // blocks forever behind consumer
		return nil
	})
	_, err := s.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T, want *StallError", err)
	}
	if se.Kind != "deadlock" || len(se.Threads) != 2 {
		t.Fatalf("kind=%q threads=%d: %v", se.Kind, len(se.Threads), err)
	}
	msg := err.Error()
	for _, want := range []string{
		"thread consumer", "blocked popping queue stage.q",
		"holds [set:FSET]",
		"thread rival", "blocked acquiring lock set:FSET (held by consumer",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("diagnostic missing %q:\n%s", want, msg)
		}
	}
}

func TestDeadlockDiagnosticFullQueue(t *testing.T) {
	s := New(flatCost())
	q := s.NewQueue("out", 1)
	s.Spawn("producer", 0, func(th *Thread) error {
		th.Push(q, 1)
		th.Push(q, 2) // queue full, no consumer: blocks forever
		return nil
	})
	_, err := s.Run()
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *StallError", err)
	}
	if !strings.Contains(err.Error(), "blocked pushing queue out (full 1/1") {
		t.Errorf("diagnostic = %v", err)
	}
}

func TestWatchdogVTimeBudget(t *testing.T) {
	s := New(flatCost())
	s.Watchdog = Watchdog{MaxVTime: 1000}
	s.Spawn("spinner", 0, func(th *Thread) error {
		for {
			th.Sleep(100) // burns virtual time forever
		}
	})
	_, err := s.Run()
	var se *StallError
	if !errors.As(err, &se) || se.Kind != "watchdog" {
		t.Fatalf("err = %v, want watchdog StallError", err)
	}
	if !strings.Contains(err.Error(), "virtual time") || !strings.Contains(err.Error(), "spinner") {
		t.Errorf("diagnostic = %v", err)
	}
}

func TestWatchdogEventBudget(t *testing.T) {
	s := New(flatCost())
	s.Watchdog = Watchdog{MaxEvents: 500}
	s.Spawn("livelock", 0, func(th *Thread) error {
		for {
			th.Sleep(0) // infinite events at zero virtual cost
		}
	})
	_, err := s.Run()
	var se *StallError
	if !errors.As(err, &se) || se.Kind != "watchdog" {
		t.Fatalf("err = %v, want watchdog StallError", err)
	}
	if !strings.Contains(err.Error(), "livelock") {
		t.Errorf("diagnostic = %v", err)
	}
}

func TestWatchdogDoesNotFireOnHealthyRun(t *testing.T) {
	s := New(DefaultCostModel())
	s.Watchdog = Watchdog{MaxVTime: 1 << 40, MaxEvents: 1 << 40}
	q := s.NewQueue("q", 4)
	s.Spawn("p", 0, func(th *Thread) error {
		for i := 0; i < 50; i++ {
			th.Push(q, i)
		}
		return nil
	})
	s.Spawn("c", 0, func(th *Thread) error {
		for i := 0; i < 50; i++ {
			th.Pop(q)
		}
		return nil
	})
	if _, err := s.Run(); err != nil {
		t.Fatalf("healthy run tripped watchdog: %v", err)
	}
}

func TestPushNAmortizedCost(t *testing.T) {
	run := func(batched bool) int64 {
		s := New(CostModel{QueuePush: 40, QueuePushPer: 8})
		q := s.NewQueue("q", 8)
		s.Spawn("p", 0, func(th *Thread) error {
			if batched {
				th.PushN(q, []any{0, 1, 2, 3})
			} else {
				for i := 0; i < 4; i++ {
					th.Push(q, i)
				}
			}
			return nil
		})
		s.Spawn("c", 0, func(th *Thread) error {
			for i := 0; i < 4; i++ {
				if v := th.Pop(q).(int); v != i {
					t.Errorf("pop %d: got %v", i, v)
				}
			}
			return nil
		})
		m, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	// Per-token: 4*40 = 160 producer cost. Batched: 40 + 3*8 = 64.
	if per, batch := run(false), run(true); batch >= per {
		t.Errorf("batched push not cheaper: batch=%d per-token=%d", batch, per)
	}
}

func TestPopNAmortizedCostAndFIFO(t *testing.T) {
	s := New(CostModel{QueuePop: 40, QueuePopPer: 8})
	q := s.NewQueue("q", 8)
	s.Spawn("p", 0, func(th *Thread) error {
		th.PushN(q, []any{0, 1, 2, 3, 4})
		return nil
	})
	var got []int
	s.Spawn("c", 0, func(th *Thread) error {
		th.Sleep(1) // let the producer fill the queue first
		for len(got) < 5 {
			for _, v := range th.PopN(q, 3) {
				got = append(got, v.(int))
			}
		}
		return nil
	})
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
	// Two batch pops (3+2 tokens): 40+2*8 + 40+8 = 104, plus the 1-tick
	// sleep. Five singleton pops would cost 200.
	if m != 105 {
		t.Errorf("makespan = %d, want 105 (amortized pops)", m)
	}
}

func TestPushNStallHookFiresOncePerBatch(t *testing.T) {
	count := 0
	s := New(flatCost())
	q := s.NewQueue("q", 8)
	q.Stall = func() int64 { count++; return 0 }
	s.Spawn("p", 0, func(th *Thread) error {
		th.PushN(q, []any{0, 1, 2, 3})
		return nil
	})
	s.Spawn("c", 0, func(th *Thread) error {
		for i := 0; i < 4; i++ {
			th.Pop(q)
		}
		return nil
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("Stall fired %d times for one 4-token batch, want 1", count)
	}
}

func TestStalledPushNDiagnosticNamesQueueOnce(t *testing.T) {
	s := New(flatCost())
	q := s.NewQueue("out", 4)
	s.Spawn("producer", 0, func(th *Thread) error {
		th.Push(q, 0)
		th.Push(q, 1)
		th.PushN(q, []any{2, 3, 4}) // only 2 slots free: blocks forever
		return nil
	})
	_, err := s.Run()
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *StallError", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "blocked pushing a batch of 3 to queue out (full 2/4") {
		t.Errorf("diagnostic = %v", err)
	}
	// The per-queue diagnostics section names the saturated queue with its
	// occupancy, high-water mark, and blocked pushers.
	if !strings.Contains(msg, "queue out: 2/4 buffered, high-water 2, 1 pusher(s) blocked") {
		t.Errorf("per-queue diagnostic missing:\n%s", msg)
	}
}

func TestPushNSplitsOverCapacityAndBackpressures(t *testing.T) {
	s := New(flatCost())
	q := s.NewQueue("q", 2)
	s.Spawn("p", 0, func(th *Thread) error {
		th.PushN(q, []any{0, 1, 2, 3, 4}) // batch > cap: split + block
		return nil
	})
	var got []int
	s.Spawn("c", 0, func(th *Thread) error {
		for len(got) < 5 {
			th.Charge(100)
			for _, v := range th.PopN(q, 2) {
				got = append(got, v.(int))
			}
		}
		return nil
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestBlockedPopNWokenByBatchPush(t *testing.T) {
	s := New(flatCost())
	q := s.NewQueue("q", 8)
	var got []int
	s.Spawn("c", 0, func(th *Thread) error {
		for _, v := range th.PopN(q, 8) { // blocks on the empty queue
			got = append(got, v.(int))
		}
		return nil
	})
	s.Spawn("p", 0, func(th *Thread) error {
		th.Sleep(50)
		th.PushN(q, []any{0, 1, 2})
		return nil
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("woken PopN got %v, want [0 1 2]", got)
	}
}

// TestBatchedFIFOQuick: random mixes of batched and singleton push/pop
// must preserve FIFO order and deliver every token exactly once.
func TestBatchedFIFOQuick(t *testing.T) {
	run := func(costs []uint16, capacity, pushB, popB uint8) bool {
		if len(costs) == 0 {
			return true
		}
		if len(costs) > 48 {
			costs = costs[:48]
		}
		capn := int(capacity%8) + 1
		pb := int(pushB%4) + 1
		cb := int(popB%4) + 1
		s := New(DefaultCostModel())
		q := s.NewQueue("q", capn)
		n := len(costs)
		s.Spawn("producer", 0, func(th *Thread) error {
			for i := 0; i < n; i += pb {
				th.Charge(int64(costs[i]))
				var batch []any
				for j := i; j < i+pb && j < n; j++ {
					batch = append(batch, j)
				}
				th.PushN(q, batch)
			}
			return nil
		})
		got := make([]int, 0, n)
		s.Spawn("consumer", 0, func(th *Thread) error {
			for len(got) < n {
				th.Charge(int64(costs[len(got)]) / 2)
				for _, v := range th.PopN(q, cb) {
					got = append(got, v.(int))
				}
			}
			return nil
		})
		if _, err := s.Run(); err != nil {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(run, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQueueStallHookDelaysTokens(t *testing.T) {
	run := func(stall int64) int64 {
		s := New(flatCost())
		q := s.NewQueue("q", 4)
		if stall > 0 {
			st := stall
			q.Stall = func() int64 { return st }
		}
		s.Spawn("p", 0, func(th *Thread) error {
			th.Push(q, 1)
			return nil
		})
		s.Spawn("c", 0, func(th *Thread) error {
			th.Pop(q)
			return nil
		})
		m, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	base, stalled := run(0), run(900)
	if stalled != base+900 {
		t.Errorf("stalled makespan = %d, base = %d, want +900", stalled, base)
	}
}
