package des

import (
	"errors"
	"strings"
	"testing"
)

// --- arrival-process determinism and shape ---

func collectGaps(a Arrivals, n int) []int64 {
	gaps := make([]int64, n)
	for i := range gaps {
		gaps[i] = a.Next()
	}
	return gaps
}

func TestArrivalsDeterministicPerSeed(t *testing.T) {
	mks := map[string]func() Arrivals{
		"poisson": func() Arrivals { return NewPoisson(99, 500) },
		"bursty":  func() Arrivals { return NewBursty(99, 500, 20000) },
		"diurnal": func() Arrivals { return NewDiurnal(99, 500, 200) },
	}
	for name, mk := range mks {
		a := collectGaps(mk(), 200)
		b := collectGaps(mk(), 200)
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: same seed diverged at gap %d: %d vs %d", name, i, a[i], b[i])
				break
			}
		}
		if mk().Name() != name {
			t.Errorf("Name() = %q, want %q", mk().Name(), name)
		}
	}
	// Different seeds must produce different traces.
	a := collectGaps(NewPoisson(1, 500), 50)
	b := collectGaps(NewPoisson(2, 500), 50)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical Poisson traces")
	}
}

func TestArrivalsGapsPositiveAndMeanReasonable(t *testing.T) {
	for _, tc := range []struct {
		name string
		a    Arrivals
	}{
		{"poisson", NewPoisson(7, 300)},
		{"bursty", NewBursty(7, 300, 5000)},
		{"diurnal", NewDiurnal(7, 300, 2000)},
	} {
		var sum int64
		const n = 2000
		for i := 0; i < n; i++ {
			g := tc.a.Next()
			if g < 1 {
				t.Fatalf("%s: gap %d < 1 (virtual time must advance)", tc.name, g)
			}
			sum += g
		}
		mean := float64(sum) / n
		// All three processes average around the base gap (the diurnal
		// profile and MMPP phases are constructed to be roughly
		// mean-preserving within a small factor).
		if mean < 50 || mean > 1500 {
			t.Errorf("%s: mean gap %.0f implausible for base 300", tc.name, mean)
		}
	}
}

func TestBurstyModulatesRate(t *testing.T) {
	// Over a long trace the MMPP must visit both phases: some gaps near the
	// slow phase's mean (600) and some near the fast phase's (75).
	a := NewBursty(3, 400, 8000)
	slow, fast := 0, 0
	for i := 0; i < 5000; i++ {
		g := a.Next()
		if g > 600 {
			slow++
		}
		if g < 100 {
			fast++
		}
	}
	if slow == 0 || fast == 0 {
		t.Errorf("MMPP never modulated: %d slow gaps, %d fast gaps", slow, fast)
	}
}

// --- queue batching edge cases (service-mode backpressure paths) ---

// PushN with an empty batch is a no-op: no cost, no stall, no wakeups.
func TestPushNEmptyBatchNoOp(t *testing.T) {
	s := New(flatCost())
	q := s.NewQueue("q", 2)
	stalls := 0
	q.Stall = func() int64 { stalls++; return 50 }
	s.Spawn("p", 0, func(th *Thread) error {
		th.PushN(q, nil)
		th.PushN(q, []any{})
		th.Charge(10)
		return nil
	})
	makespan, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if makespan != 10 {
		t.Errorf("makespan = %d, want 10 (empty PushN must be free)", makespan)
	}
	if stalls != 0 {
		t.Errorf("stall hook fired %d times for empty batches", stalls)
	}
	if q.Len() != 0 || q.HighWater() != 0 {
		t.Errorf("queue len=%d high-water=%d after empty pushes", q.Len(), q.HighWater())
	}
}

// A batch that exactly fills the queue leaves a zero-size residue: the
// pusher must NOT block on an empty remainder.
func TestPushNExactCapacityZeroResidue(t *testing.T) {
	s := New(flatCost())
	q := s.NewQueue("q", 3)
	var after int64
	s.Spawn("p", 0, func(th *Thread) error {
		th.PushN(q, []any{1, 2, 3}) // exactly cap: full queue, zero residue
		after = th.VTime
		th.Charge(1)
		return nil
	})
	s.Spawn("c", 0, func(th *Thread) error {
		th.Sleep(500)
		for i := 0; i < 3; i++ {
			th.Pop(q)
		}
		return nil
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if after >= 500 {
		t.Errorf("pusher resumed at t=%d: blocked on a zero-size residue", after)
	}
	if q.HighWater() != 3 {
		t.Errorf("high-water = %d, want 3", q.HighWater())
	}
}

// PopN with max larger than the buffered count returns what is there (no
// blocking for the residue), and PopN(q, 0) still delivers at least one
// token rather than spinning on a zero-size request.
func TestPopNOverAndZeroSizedRequests(t *testing.T) {
	s := New(flatCost())
	q := s.NewQueue("q", 8)
	var got, gotZero int
	s.Spawn("p", 0, func(th *Thread) error {
		th.PushN(q, []any{1, 2, 3})
		th.Sleep(100)
		th.Push(q, 4)
		return nil
	})
	s.Spawn("c", 0, func(th *Thread) error {
		th.Sleep(10)
		got = len(th.PopN(q, 10)) // 3 buffered, max 10: take the 3
		gotZero = len(th.PopN(q, 0))
		return nil
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("PopN(max=10) returned %d tokens, want the 3 buffered", got)
	}
	if gotZero < 1 {
		t.Errorf("PopN(max=0) returned %d tokens, want at least 1", gotZero)
	}
}

// Backpressure interacting with batched stalls: a stalled batch still
// charges exactly one stall per transfer operation even when the batch
// splits against a full queue, and the high-water mark tracks the deepest
// occupancy across the splits.
func TestBatchedStallUnderBackpressure(t *testing.T) {
	s := New(flatCost())
	q := s.NewQueue("q", 2)
	stalls := 0
	q.Stall = func() int64 { stalls++; return 30 }
	var order []int
	s.Spawn("p", 0, func(th *Thread) error {
		th.PushN(q, []any{0, 1, 2, 3, 4}) // cap 2: splits into 2+2+1
		return nil
	})
	s.Spawn("c", 0, func(th *Thread) error {
		for len(order) < 5 {
			th.Charge(100)
			for _, v := range th.PopN(q, 2) {
				order = append(order, v.(int))
			}
		}
		return nil
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated across stalled splits: %v", order)
		}
	}
	if stalls != 3 {
		t.Errorf("stall hook fired %d times for a 2+2+1 split, want 3", stalls)
	}
	if q.HighWater() != 2 {
		t.Errorf("high-water = %d, want 2", q.HighWater())
	}
}

// Flush-before-parking when the consumer is dead: a producer blocked
// pushing a batch to a queue whose only consumer already exited must be
// diagnosed as a deadlock naming the queue (not hang), with the per-queue
// section reporting the buffered residue and the blocked pusher.
func TestBatchedPushToDeadConsumerDiagnosed(t *testing.T) {
	s := New(flatCost())
	q := s.NewQueue("dead.q", 2)
	s.Spawn("consumer", 0, func(th *Thread) error {
		th.Pop(q) // one token, then exit (dead consumer)
		return nil
	})
	s.Spawn("producer", 0, func(th *Thread) error {
		th.Sleep(10)
		th.PushN(q, []any{1, 2, 3, 4}) // 2 transfer, 1 consumed, residue blocks forever
		return nil
	})
	_, err := s.Run()
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *StallError", err)
	}
	if len(se.Queues) == 0 {
		t.Fatalf("StallError carries no queue diagnostics: %v", err)
	}
	found := false
	for _, d := range se.Queues {
		if d.Name == "dead.q" && d.BlockedPushers == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("diagnostics do not name dead.q with its blocked pusher: %+v", se.Queues)
	}
	if !strings.Contains(err.Error(), "dead.q") {
		t.Errorf("rendered error does not name the saturated queue: %v", err)
	}
}

// The DiagNote hook surfaces harness state (service admission) in the
// stall diagnostics.
func TestStallErrorIncludesDiagNote(t *testing.T) {
	s := New(flatCost())
	s.DiagNote = func() string { return "admission: level=2 workers=1/4" }
	q := s.NewQueue("ingress", 1)
	s.Spawn("p", 0, func(th *Thread) error {
		th.Push(q, 1)
		th.Push(q, 2) // no consumer: blocks forever
		return nil
	})
	_, err := s.Run()
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *StallError", err)
	}
	if se.Note != "admission: level=2 workers=1/4" {
		t.Errorf("Note = %q", se.Note)
	}
	if !strings.Contains(err.Error(), "admission: level=2") {
		t.Errorf("rendered error omits the admission state: %v", err)
	}
	if !strings.Contains(err.Error(), "queue ingress: 1/1 buffered") {
		t.Errorf("rendered error omits the ingress diagnostics: %v", err)
	}
}

// Watchdog-triggered stalls carry the same queue diagnostics as deadlocks,
// so a stalled (not deadlocked) service run still names the hot queue.
func TestWatchdogStallCarriesQueueHighWater(t *testing.T) {
	s := New(flatCost())
	s.Watchdog = Watchdog{MaxEvents: 200}
	q := s.NewQueue("hot", 4)
	s.Spawn("p", 0, func(th *Thread) error {
		for i := 0; ; i++ {
			th.Push(q, i)
		}
	})
	s.Spawn("c", 0, func(th *Thread) error {
		for {
			th.Pop(q)
		}
	})
	_, err := s.Run()
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *StallError", err)
	}
	found := false
	for _, d := range se.Queues {
		if d.Name == "hot" && d.HighWater > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("watchdog stall lacks hot-queue high-water diagnostics: %+v", se.Queues)
	}
}
