package des

import "math"

// Arrivals is a deterministic request-arrival process for open-system
// (service-mode) simulations: Next returns the virtual-time gap before the
// next request arrives. Implementations are seeded and purely functional
// over their own state, so the same seed always reproduces the same trace
// regardless of host scheduling — the property every service-mode
// determinism assertion rests on.
type Arrivals interface {
	Next() int64
	// Name labels the process for reports and diagnostics.
	Name() string
}

// arrRNG is a splitmix64 stream: the standard seeded generator used by the
// fault injector, in stateful form.
type arrRNG struct {
	x uint64
}

func (r *arrRNG) next() uint64 {
	r.x += 0x9e3779b97f4a7c15
	z := r.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// uniform returns a draw in [0, 1).
func (r *arrRNG) uniform() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// exp returns an exponentially distributed gap with the given mean (the
// interarrival distribution of a Poisson process), by inverse-CDF sampling.
// Gaps are clamped to at least 1 so virtual time always advances.
func (r *arrRNG) exp(mean float64) int64 {
	if mean <= 0 {
		return 1
	}
	g := int64(-mean * math.Log(1-r.uniform()))
	if g < 1 {
		g = 1
	}
	return g
}

// poisson is a stationary Poisson arrival process.
type poisson struct {
	rng  arrRNG
	mean float64
}

// NewPoisson builds a Poisson process with the given mean interarrival gap
// in virtual-time units.
func NewPoisson(seed uint64, meanGap float64) Arrivals {
	return &poisson{rng: arrRNG{x: seed}, mean: meanGap}
}

func (p *poisson) Name() string { return "poisson" }
func (p *poisson) Next() int64  { return p.rng.exp(p.mean) }

// mmpp is a two-state Markov-modulated Poisson process — the classic bursty
// arrival model: a quiet phase and a burst phase, each with its own Poisson
// rate, with exponentially distributed phase sojourns.
type mmpp struct {
	rng     arrRNG
	gap     [2]float64 // mean interarrival gap per phase
	sojourn [2]float64 // mean phase duration in virtual time
	phase   int
	left    int64 // virtual time remaining in the current phase
}

// NewBursty builds an MMPP(2) process around a base mean gap: the quiet
// phase arrives at half the base rate (gap ×2), the burst phase at four
// times the base rate (gap ÷4). Phases last ~meanSojourn virtual-time
// units each, exponentially distributed.
func NewBursty(seed uint64, baseGap, meanSojourn float64) Arrivals {
	m := &mmpp{
		rng:     arrRNG{x: seed},
		gap:     [2]float64{baseGap * 2, baseGap / 4},
		sojourn: [2]float64{meanSojourn, meanSojourn},
	}
	m.left = m.rng.exp(m.sojourn[0])
	return m
}

func (m *mmpp) Name() string { return "bursty" }

func (m *mmpp) Next() int64 {
	for m.left <= 0 {
		m.phase = 1 - m.phase
		m.left = m.rng.exp(m.sojourn[m.phase])
	}
	g := m.rng.exp(m.gap[m.phase])
	m.left -= g
	return g
}

// diurnal modulates a Poisson process with a piecewise rate profile spread
// over the whole trace — the virtual day: overnight lull, morning ramp,
// midday peak, evening tail.
type diurnal struct {
	rng   arrRNG
	base  float64
	shape []float64
	n, k  int
}

// diurnalShape is the default load profile, as rate multipliers over the
// base rate across the virtual day.
var diurnalShape = []float64{0.25, 0.5, 1, 2, 3, 2, 1, 0.5}

// NewDiurnal builds a diurnal-trace process over n total requests: request
// k draws its gap from a Poisson process whose rate is the base rate times
// the profile value at position k/n of the virtual day.
func NewDiurnal(seed uint64, baseGap float64, n int) Arrivals {
	if n < 1 {
		n = 1
	}
	return &diurnal{rng: arrRNG{x: seed}, base: baseGap, shape: diurnalShape, n: n}
}

func (d *diurnal) Name() string { return "diurnal" }

func (d *diurnal) Next() int64 {
	idx := d.k * len(d.shape) / d.n
	if idx >= len(d.shape) {
		idx = len(d.shape) - 1
	}
	d.k++
	return d.rng.exp(d.base / d.shape[idx])
}
