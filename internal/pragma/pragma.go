// Package pragma parses COMMSET directive text — the body of
// `#pragma commset ...` lines — into structured directives.
//
// The concrete directive grammar reproduces the primitives of the paper's
// Section 3.2 (Figure 4):
//
//	commset decl NAME                      COMMSETDECL   (Group set)
//	commset decl self NAME                 COMMSETDECL   (explicitly-typed Self set, predicable)
//	commset predicate NAME (p...)(q...) : expr
//	                                       COMMSETPREDICATE
//	commset nosync NAME                    COMMSETNOSYNC
//	commset member M (, M)*                COMMSET instance declaration,
//	                                       M := SELF | NAME [ (arg, ...) ]
//	commset namedblock NAME                COMMSETNAMEDBLOCK
//	commset namedarg NAME (, NAME)*        COMMSETNAMEDARG
//	commset add FUNC.BLOCK to M (, M)*     COMMSETNAMEDARGADD
//
// A member list may reference the bare keyword SELF, which enrolls the
// annotated block in its own anonymous singleton Self set, exactly as in the
// paper's Figure 1 (annotations 5, 7, 8 list `FSET(i), SELF`).
package pragma

import (
	"fmt"
	"strings"
	"unicode"
)

// DirKind discriminates Directive implementations.
type DirKind int

// Directive kinds.
const (
	KindDecl DirKind = iota
	KindPredicate
	KindNoSync
	KindMember
	KindNamedBlock
	KindNamedArg
	KindNamedArgAdd
)

// String names the directive kind using the paper's primitive names.
func (k DirKind) String() string {
	switch k {
	case KindDecl:
		return "COMMSETDECL"
	case KindPredicate:
		return "COMMSETPREDICATE"
	case KindNoSync:
		return "COMMSETNOSYNC"
	case KindMember:
		return "COMMSET"
	case KindNamedBlock:
		return "COMMSETNAMEDBLOCK"
	case KindNamedArg:
		return "COMMSETNAMEDARG"
	case KindNamedArgAdd:
		return "COMMSETNAMEDARGADD"
	}
	return "COMMSET?"
}

// Directive is one parsed COMMSET directive.
type Directive interface {
	Kind() DirKind
	String() string
}

// SetRef names a commutative set in a member list, optionally with actual
// arguments for the set's predicate. Self marks the anonymous SELF keyword.
type SetRef struct {
	Name string   // set name; "" when Self
	Self bool     // bare SELF keyword
	Args []string // actual argument variable names for a predicated set
}

// String renders the reference as it appears in source.
func (r SetRef) String() string {
	if r.Self {
		return "SELF"
	}
	if len(r.Args) == 0 {
		return r.Name
	}
	return r.Name + "(" + strings.Join(r.Args, ", ") + ")"
}

// Decl declares a named commutative set at global scope (COMMSETDECL).
// Self selects Self-set semantics (a block commutes with dynamic instances
// of itself); otherwise the set is a Group set (distinct members commute
// pairwise, but no member commutes with itself).
type Decl struct {
	Name string
	Self bool
}

// Kind implements Directive.
func (*Decl) Kind() DirKind { return KindDecl }

// String implements Directive.
func (d *Decl) String() string {
	if d.Self {
		return "commset decl self " + d.Name
	}
	return "commset decl " + d.Name
}

// Predicate associates a commutativity predicate with a set
// (COMMSETPREDICATE). Params1 and Params2 bind to the actual arguments of
// the two member instances being compared; ExprText is the MiniC boolean
// expression over those parameters, parsed later by the type checker.
type Predicate struct {
	Set      string
	Params1  []string
	Params2  []string
	ExprText string
}

// Kind implements Directive.
func (*Predicate) Kind() DirKind { return KindPredicate }

// String implements Directive.
func (p *Predicate) String() string {
	return fmt.Sprintf("commset predicate %s (%s)(%s) : %s",
		p.Set, strings.Join(p.Params1, ", "), strings.Join(p.Params2, ", "), p.ExprText)
}

// NoSync marks a set whose members need no compiler-inserted
// synchronization (COMMSETNOSYNC) — e.g. thread-safe library calls.
type NoSync struct {
	Set string
}

// Kind implements Directive.
func (*NoSync) Kind() DirKind { return KindNoSync }

// String implements Directive.
func (n *NoSync) String() string { return "commset nosync " + n.Set }

// Member is a COMMSET instance declaration attaching the next code block or
// function to each referenced set.
type Member struct {
	Sets []SetRef
}

// Kind implements Directive.
func (*Member) Kind() DirKind { return KindMember }

// String implements Directive.
func (m *Member) String() string {
	parts := make([]string, len(m.Sets))
	for i, s := range m.Sets {
		parts[i] = s.String()
	}
	return "commset member " + strings.Join(parts, ", ")
}

// NamedBlock names the next compound statement so that its commuting
// behaviour can be exported at the enclosing function's interface
// (COMMSETNAMEDBLOCK).
type NamedBlock struct {
	Name string
}

// Kind implements Directive.
func (*NamedBlock) Kind() DirKind { return KindNamedBlock }

// String implements Directive.
func (n *NamedBlock) String() string { return "commset namedblock " + n.Name }

// NamedArg, on a function declaration, exports the listed named blocks as
// optional commutativity arguments of the interface (COMMSETNAMEDARG).
type NamedArg struct {
	Names []string
}

// Kind implements Directive.
func (*NamedArg) Kind() DirKind { return KindNamedArg }

// String implements Directive.
func (n *NamedArg) String() string {
	return "commset namedarg " + strings.Join(n.Names, ", ")
}

// NamedArgAdd, at a call site, enables the named block exported by Func and
// adds it to the referenced sets (COMMSETNAMEDARGADD).
type NamedArgAdd struct {
	Func  string
	Block string
	Sets  []SetRef
}

// Kind implements Directive.
func (*NamedArgAdd) Kind() DirKind { return KindNamedArgAdd }

// String implements Directive.
func (a *NamedArgAdd) String() string {
	parts := make([]string, len(a.Sets))
	for i, s := range a.Sets {
		parts[i] = s.String()
	}
	return fmt.Sprintf("commset add %s.%s to %s", a.Func, a.Block, strings.Join(parts, ", "))
}

// Parse parses the body of a `#pragma` line (the text after "#pragma").
// Non-commset pragmas return (nil, nil) so callers can ignore foreign
// pragmas, as a standard C compiler would ignore COMMSET ones.
func Parse(text string) (Directive, error) {
	p := &dirParser{in: text}
	p.skipSpace()
	if !p.eatWord("commset") {
		return nil, nil // foreign pragma; ignore
	}
	verb := p.word()
	switch verb {
	case "decl":
		return p.parseDecl()
	case "predicate":
		return p.parsePredicate()
	case "nosync":
		name := p.word()
		if name == "" {
			return nil, p.fail("nosync requires a set name")
		}
		if err := p.expectEnd(); err != nil {
			return nil, err
		}
		return &NoSync{Set: name}, nil
	case "member":
		sets, err := p.parseSetRefs()
		if err != nil {
			return nil, err
		}
		if err := p.expectEnd(); err != nil {
			return nil, err
		}
		return &Member{Sets: sets}, nil
	case "namedblock":
		name := p.word()
		if name == "" {
			return nil, p.fail("namedblock requires a block name")
		}
		if err := p.expectEnd(); err != nil {
			return nil, err
		}
		return &NamedBlock{Name: name}, nil
	case "namedarg":
		return p.parseNamedArg()
	case "add":
		return p.parseNamedArgAdd()
	case "":
		return nil, p.fail("missing commset directive verb")
	}
	return nil, fmt.Errorf("unknown commset directive %q", verb)
}

// dirParser is a tiny cursor-based scanner over a directive body.
type dirParser struct {
	in  string
	pos int
}

func (p *dirParser) fail(format string, args ...any) error {
	return fmt.Errorf("commset pragma: "+format, args...)
}

func (p *dirParser) skipSpace() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t') {
		p.pos++
	}
}

func (p *dirParser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.in) {
		return 0
	}
	return p.in[p.pos]
}

func (p *dirParser) eat(c byte) bool {
	if p.peek() == c {
		p.pos++
		return true
	}
	return false
}

// word scans an identifier-like word; returns "" at end or non-word input.
func (p *dirParser) word() string {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.in) {
		c := rune(p.in[p.pos])
		if c == '_' || unicode.IsLetter(c) || (p.pos > start && unicode.IsDigit(c)) {
			p.pos++
			continue
		}
		break
	}
	return p.in[start:p.pos]
}

// eatWord consumes the given word if it is next.
func (p *dirParser) eatWord(w string) bool {
	save := p.pos
	if p.word() == w {
		return true
	}
	p.pos = save
	return false
}

func (p *dirParser) expectEnd() error {
	p.skipSpace()
	if p.pos < len(p.in) {
		return p.fail("unexpected trailing text %q", p.in[p.pos:])
	}
	return nil
}

func (p *dirParser) parseDecl() (Directive, error) {
	self := false
	save := p.pos
	first := p.word()
	if first == "self" {
		self = true
	} else {
		p.pos = save
	}
	name := p.word()
	if name == "" {
		return nil, p.fail("decl requires a set name")
	}
	if err := p.expectEnd(); err != nil {
		return nil, err
	}
	return &Decl{Name: name, Self: self}, nil
}

// parseParamList parses "( ident (, ident)* )".
func (p *dirParser) parseParamList() ([]string, error) {
	if !p.eat('(') {
		return nil, p.fail("expected '(' to begin a parameter list")
	}
	var params []string
	for {
		w := p.word()
		if w == "" {
			return nil, p.fail("expected parameter name in predicate parameter list")
		}
		params = append(params, w)
		if p.eat(',') {
			continue
		}
		break
	}
	if !p.eat(')') {
		return nil, p.fail("expected ')' to close a parameter list")
	}
	return params, nil
}

func (p *dirParser) parsePredicate() (Directive, error) {
	set := p.word()
	if set == "" {
		return nil, p.fail("predicate requires a set name")
	}
	p1, err := p.parseParamList()
	if err != nil {
		return nil, err
	}
	p2, err := p.parseParamList()
	if err != nil {
		return nil, err
	}
	if len(p1) != len(p2) {
		return nil, p.fail("predicate parameter lists have different lengths (%d vs %d)", len(p1), len(p2))
	}
	if !p.eat(':') {
		return nil, p.fail("expected ':' before predicate expression")
	}
	expr := strings.TrimSpace(p.in[p.pos:])
	if expr == "" {
		return nil, p.fail("predicate requires an expression after ':'")
	}
	p.pos = len(p.in)
	return &Predicate{Set: set, Params1: p1, Params2: p2, ExprText: expr}, nil
}

// parseSetRefs parses "M (, M)*" where M := SELF | NAME [(args)].
func (p *dirParser) parseSetRefs() ([]SetRef, error) {
	var refs []SetRef
	for {
		name := p.word()
		if name == "" {
			return nil, p.fail("expected a set name or SELF in member list")
		}
		if name == "SELF" {
			refs = append(refs, SetRef{Self: true})
		} else {
			ref := SetRef{Name: name}
			if p.eat('(') {
				for {
					a := p.word()
					if a == "" {
						return nil, p.fail("expected argument name in %s(...)", name)
					}
					ref.Args = append(ref.Args, a)
					if p.eat(',') {
						continue
					}
					break
				}
				if !p.eat(')') {
					return nil, p.fail("expected ')' after arguments of %s", name)
				}
			}
			refs = append(refs, ref)
		}
		if p.eat(',') {
			continue
		}
		return refs, nil
	}
}

func (p *dirParser) parseNamedArg() (Directive, error) {
	var names []string
	for {
		n := p.word()
		if n == "" {
			return nil, p.fail("namedarg requires at least one block name")
		}
		names = append(names, n)
		if p.eat(',') {
			continue
		}
		break
	}
	if err := p.expectEnd(); err != nil {
		return nil, err
	}
	return &NamedArg{Names: names}, nil
}

func (p *dirParser) parseNamedArgAdd() (Directive, error) {
	fn := p.word()
	if fn == "" {
		return nil, p.fail("add requires FUNC.BLOCK")
	}
	if !p.eat('.') {
		return nil, p.fail("add requires FUNC.BLOCK (missing '.')")
	}
	block := p.word()
	if block == "" {
		return nil, p.fail("add requires FUNC.BLOCK (missing block name)")
	}
	if !p.eatWord("to") {
		return nil, p.fail("add requires 'to' before the set list")
	}
	sets, err := p.parseSetRefs()
	if err != nil {
		return nil, err
	}
	if err := p.expectEnd(); err != nil {
		return nil, err
	}
	return &NamedArgAdd{Func: fn, Block: block, Sets: sets}, nil
}
