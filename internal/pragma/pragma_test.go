package pragma

import (
	"strings"
	"testing"
)

func parseOK(t *testing.T, text string) Directive {
	t.Helper()
	d, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse(%q): %v", text, err)
	}
	if d == nil {
		t.Fatalf("Parse(%q): directive ignored", text)
	}
	return d
}

func TestParseDecl(t *testing.T) {
	d := parseOK(t, "commset decl FSET").(*Decl)
	if d.Name != "FSET" || d.Self {
		t.Errorf("got %+v", d)
	}
	d = parseOK(t, "commset decl self SSET").(*Decl)
	if d.Name != "SSET" || !d.Self {
		t.Errorf("got %+v", d)
	}
}

func TestParsePredicate(t *testing.T) {
	d := parseOK(t, "commset predicate FSET (i1)(i2) : i1 != i2").(*Predicate)
	if d.Set != "FSET" {
		t.Errorf("set = %q", d.Set)
	}
	if len(d.Params1) != 1 || d.Params1[0] != "i1" {
		t.Errorf("params1 = %v", d.Params1)
	}
	if len(d.Params2) != 1 || d.Params2[0] != "i2" {
		t.Errorf("params2 = %v", d.Params2)
	}
	if d.ExprText != "i1 != i2" {
		t.Errorf("expr = %q", d.ExprText)
	}
}

func TestParsePredicateMultiParam(t *testing.T) {
	d := parseOK(t, "commset predicate KSET (k1, v1)(k2, v2) : k1 != k2 || v1 == v2").(*Predicate)
	if len(d.Params1) != 2 || len(d.Params2) != 2 {
		t.Fatalf("params = %v / %v", d.Params1, d.Params2)
	}
	if !strings.Contains(d.ExprText, "||") {
		t.Errorf("expr = %q", d.ExprText)
	}
}

func TestParsePredicateArityMismatch(t *testing.T) {
	if _, err := Parse("commset predicate S (a, b)(c) : a != c"); err == nil {
		t.Error("expected arity mismatch error")
	}
}

func TestParseNoSync(t *testing.T) {
	d := parseOK(t, "commset nosync LIBSET").(*NoSync)
	if d.Set != "LIBSET" {
		t.Errorf("got %+v", d)
	}
}

func TestParseMember(t *testing.T) {
	d := parseOK(t, "commset member FSET(i), SELF").(*Member)
	if len(d.Sets) != 2 {
		t.Fatalf("sets = %v", d.Sets)
	}
	if d.Sets[0].Name != "FSET" || len(d.Sets[0].Args) != 1 || d.Sets[0].Args[0] != "i" {
		t.Errorf("set0 = %+v", d.Sets[0])
	}
	if !d.Sets[1].Self {
		t.Errorf("set1 = %+v", d.Sets[1])
	}
}

func TestParseMemberUnpredicated(t *testing.T) {
	d := parseOK(t, "commset member GSET").(*Member)
	if d.Sets[0].Name != "GSET" || len(d.Sets[0].Args) != 0 {
		t.Errorf("got %+v", d.Sets[0])
	}
}

func TestParseNamedBlock(t *testing.T) {
	d := parseOK(t, "commset namedblock READB").(*NamedBlock)
	if d.Name != "READB" {
		t.Errorf("got %+v", d)
	}
}

func TestParseNamedArg(t *testing.T) {
	d := parseOK(t, "commset namedarg READB, WRITEB").(*NamedArg)
	if len(d.Names) != 2 || d.Names[0] != "READB" || d.Names[1] != "WRITEB" {
		t.Errorf("got %+v", d)
	}
}

func TestParseNamedArgAdd(t *testing.T) {
	d := parseOK(t, "commset add mdfile.READB to SSET(i)").(*NamedArgAdd)
	if d.Func != "mdfile" || d.Block != "READB" {
		t.Errorf("got %+v", d)
	}
	if len(d.Sets) != 1 || d.Sets[0].Name != "SSET" || d.Sets[0].Args[0] != "i" {
		t.Errorf("sets = %v", d.Sets)
	}
}

func TestParseNamedArgAddSelf(t *testing.T) {
	d := parseOK(t, "commset add mdfile.READB to SELF").(*NamedArgAdd)
	if !d.Sets[0].Self {
		t.Errorf("got %+v", d.Sets)
	}
}

func TestForeignPragmaIgnored(t *testing.T) {
	d, err := Parse("omp parallel for")
	if err != nil || d != nil {
		t.Errorf("foreign pragma: d=%v err=%v", d, err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"commset",
		"commset decl",
		"commset bogus X",
		"commset predicate S (a)(b)",       // missing expr
		"commset predicate S (a) : a",      // one param list
		"commset member",                   // empty member list
		"commset member FSET(",             // unclosed args
		"commset namedblock",               // missing name
		"commset add f.B",                  // missing to-list
		"commset add f to S",               // missing .BLOCK
		"commset nosync",                   // missing set
		"commset decl A trailing garbage!", // trailing text
	}
	for _, text := range bad {
		if _, err := Parse(text); err == nil {
			t.Errorf("%q: expected error", text)
		}
	}
}

func TestDirectiveStrings(t *testing.T) {
	// Round-trip: String() of a parsed directive re-parses to the same kind.
	inputs := []string{
		"commset decl FSET",
		"commset decl self SSET",
		"commset predicate FSET (i1)(i2) : i1 != i2",
		"commset nosync L",
		"commset member FSET(i), SELF",
		"commset namedblock B",
		"commset namedarg B1, B2",
		"commset add f.B to S(i), SELF",
	}
	for _, in := range inputs {
		d := parseOK(t, in)
		d2, err := Parse(d.String())
		if err != nil {
			t.Errorf("round-trip %q -> %q: %v", in, d.String(), err)
			continue
		}
		if d2.Kind() != d.Kind() {
			t.Errorf("round-trip %q changed kind %v -> %v", in, d.Kind(), d2.Kind())
		}
	}
}

func TestKindStrings(t *testing.T) {
	want := map[DirKind]string{
		KindDecl:        "COMMSETDECL",
		KindPredicate:   "COMMSETPREDICATE",
		KindNoSync:      "COMMSETNOSYNC",
		KindMember:      "COMMSET",
		KindNamedBlock:  "COMMSETNAMEDBLOCK",
		KindNamedArg:    "COMMSETNAMEDARG",
		KindNamedArgAdd: "COMMSETNAMEDARGADD",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}
