package pragma

import (
	"fmt"
	"testing"
	"testing/quick"
)

// ident produces a valid MiniC identifier from arbitrary quick inputs.
func ident(seed uint32) string {
	letters := "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
	n := int(seed%6) + 1
	out := make([]byte, n)
	s := seed
	for i := range out {
		out[i] = letters[int(s)%len(letters)]
		s = s*1664525 + 1013904223
	}
	return string(out)
}

// TestDirectiveRoundTripQuick: for randomly generated well-formed
// directives, Parse(String(d)) must reproduce an equivalent directive.
func TestDirectiveRoundTripQuick(t *testing.T) {
	check := func(s1, s2, a1, a2 uint32, self bool, which uint8) bool {
		name1, name2 := ident(s1), ident(s2)
		arg1, arg2 := ident(a1), ident(a2)
		if name1 == "SELF" || name2 == "SELF" || name1 == "self" {
			return true // reserved spellings aren't set names
		}
		var d Directive
		switch which % 5 {
		case 0:
			d = &Decl{Name: name1, Self: self}
		case 1:
			d = &NoSync{Set: name1}
		case 2:
			d = &Member{Sets: []SetRef{{Name: name1, Args: []string{arg1, arg2}}, {Self: true}}}
		case 3:
			d = &NamedArg{Names: []string{name1, name2}}
		case 4:
			d = &NamedArgAdd{Func: name1, Block: name2, Sets: []SetRef{{Name: "S", Args: []string{arg1}}}}
		}
		parsed, err := Parse(d.String())
		if err != nil || parsed == nil {
			return false
		}
		return parsed.String() == d.String()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestPredicateRoundTripQuick: predicates with random parameter names and a
// simple expression round-trip through their rendered form.
func TestPredicateRoundTripQuick(t *testing.T) {
	check := func(s, p1, p2 uint32) bool {
		set, a, b := ident(s), ident(p1), ident(p2)
		if set == "SELF" || set == "self" || a == b {
			return true
		}
		d := &Predicate{
			Set:      set,
			Params1:  []string{a},
			Params2:  []string{b},
			ExprText: fmt.Sprintf("%s != %s", a, b),
		}
		parsed, err := Parse(d.String())
		if err != nil {
			return false
		}
		pd, ok := parsed.(*Predicate)
		return ok && pd.Set == set && pd.ExprText == d.ExprText &&
			pd.Params1[0] == a && pd.Params2[0] == b
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestParseNeverPanicsQuick: arbitrary directive bodies must yield an error
// or a directive, never a panic.
func TestParseNeverPanicsQuick(t *testing.T) {
	check := func(body string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = Parse("commset " + body)
		_, _ = Parse(body)
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
