// Package token defines the lexical tokens of the MiniC language, the small
// C-like language that carries the COMMSET pragma extensions in this
// reproduction.
//
// MiniC deliberately mirrors the subset of C that the paper's benchmarks
// exercise: scalar types, functions, structured control flow, compound
// statements, and calls into a library substrate. COMMSET directives arrive
// as `#pragma commset ...` lines, which the lexer surfaces as PRAGMA tokens
// whose payload is parsed by package pragma.
package token

import "fmt"

// Kind enumerates every token kind produced by the lexer.
type Kind int

// Token kinds.
const (
	ILLEGAL Kind = iota
	EOF
	COMMENT // retained only when the lexer is configured to keep comments
	PRAGMA  // one full `#pragma ...` line; literal value is the pragma body

	// Literals and identifiers.
	IDENT  // main, x, fopen
	INT    // 12345
	FLOAT  // 123.45
	STRING // "abc"
	CHAR   // 'a' (lexed as an INT with the rune's value; kind kept for errors)

	// Operators and delimiters.
	ADD // +
	SUB // -
	MUL // *
	QUO // /
	REM // %

	AND  // &&
	OR   // ||
	NOT  // !
	BAND // &
	BOR  // |
	BXOR // ^
	SHL  // <<
	SHR  // >>

	EQL // ==
	NEQ // !=
	LSS // <
	GTR // >
	LEQ // <=
	GEQ // >=

	ASSIGN    // =
	ADDASSIGN // +=
	SUBASSIGN // -=
	MULASSIGN // *=
	QUOASSIGN // /=
	REMASSIGN // %=
	INC       // ++
	DEC       // --

	LPAREN    // (
	RPAREN    // )
	LBRACE    // {
	RBRACE    // }
	LBRACKET  // [
	RBRACKET  // ]
	COMMA     // ,
	SEMICOLON // ;
	COLON     // :
	DOT       // .
	QUESTION  // ?

	// Keywords.
	KwInt
	KwFloat
	KwBool
	KwString
	KwVoid
	KwIf
	KwElse
	KwWhile
	KwFor
	KwReturn
	KwBreak
	KwContinue
	KwTrue
	KwFalse

	numKinds
)

var kindNames = [...]string{
	ILLEGAL: "ILLEGAL",
	EOF:     "EOF",
	COMMENT: "COMMENT",
	PRAGMA:  "PRAGMA",

	IDENT:  "IDENT",
	INT:    "INT",
	FLOAT:  "FLOAT",
	STRING: "STRING",
	CHAR:   "CHAR",

	ADD:  "+",
	SUB:  "-",
	MUL:  "*",
	QUO:  "/",
	REM:  "%",
	AND:  "&&",
	OR:   "||",
	NOT:  "!",
	BAND: "&",
	BOR:  "|",
	BXOR: "^",
	SHL:  "<<",
	SHR:  ">>",

	EQL: "==",
	NEQ: "!=",
	LSS: "<",
	GTR: ">",
	LEQ: "<=",
	GEQ: ">=",

	ASSIGN:    "=",
	ADDASSIGN: "+=",
	SUBASSIGN: "-=",
	MULASSIGN: "*=",
	QUOASSIGN: "/=",
	REMASSIGN: "%=",
	INC:       "++",
	DEC:       "--",

	LPAREN:    "(",
	RPAREN:    ")",
	LBRACE:    "{",
	RBRACE:    "}",
	LBRACKET:  "[",
	RBRACKET:  "]",
	COMMA:     ",",
	SEMICOLON: ";",
	COLON:     ":",
	DOT:       ".",
	QUESTION:  "?",

	KwInt:      "int",
	KwFloat:    "float",
	KwBool:     "bool",
	KwString:   "string",
	KwVoid:     "void",
	KwIf:       "if",
	KwElse:     "else",
	KwWhile:    "while",
	KwFor:      "for",
	KwReturn:   "return",
	KwBreak:    "break",
	KwContinue: "continue",
	KwTrue:     "true",
	KwFalse:    "false",
}

// String returns the canonical spelling for operator/keyword kinds and the
// kind name for the rest.
func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// keywords maps identifier spellings to keyword kinds.
var keywords = map[string]Kind{
	"int":      KwInt,
	"float":    KwFloat,
	"bool":     KwBool,
	"string":   KwString,
	"void":     KwVoid,
	"if":       KwIf,
	"else":     KwElse,
	"while":    KwWhile,
	"for":      KwFor,
	"return":   KwReturn,
	"break":    KwBreak,
	"continue": KwContinue,
	"true":     KwTrue,
	"false":    KwFalse,
}

// Lookup classifies an identifier spelling as a keyword or IDENT.
func Lookup(ident string) Kind {
	if k, ok := keywords[ident]; ok {
		return k
	}
	return IDENT
}

// IsKeyword reports whether k is a reserved word.
func (k Kind) IsKeyword() bool { return k >= KwInt && k <= KwFalse }

// IsLiteral reports whether k is a literal or identifier token.
func (k Kind) IsLiteral() bool {
	switch k {
	case IDENT, INT, FLOAT, STRING, CHAR, KwTrue, KwFalse:
		return true
	}
	return false
}

// IsTypeKeyword reports whether k begins a type (and therefore a declaration).
func (k Kind) IsTypeKeyword() bool {
	switch k {
	case KwInt, KwFloat, KwBool, KwString, KwVoid:
		return true
	}
	return false
}

// IsAssignOp reports whether k is one of the assignment operators.
func (k Kind) IsAssignOp() bool {
	switch k {
	case ASSIGN, ADDASSIGN, SUBASSIGN, MULASSIGN, QUOASSIGN, REMASSIGN:
		return true
	}
	return false
}

// Precedence returns the binary-operator precedence of k, following C.
// Non-operators return 0 (lowest).
func (k Kind) Precedence() int {
	switch k {
	case OR:
		return 1
	case AND:
		return 2
	case BOR:
		return 3
	case BXOR:
		return 4
	case BAND:
		return 5
	case EQL, NEQ:
		return 6
	case LSS, LEQ, GTR, GEQ:
		return 7
	case SHL, SHR:
		return 8
	case ADD, SUB:
		return 9
	case MUL, QUO, REM:
		return 10
	}
	return 0
}
