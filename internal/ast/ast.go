// Package ast defines the abstract syntax tree for MiniC, the C-like input
// language of the COMMSET compiler.
//
// Pragmas are attached where the paper attaches them: COMMSET global
// declarations (COMMSETDECL, COMMSETPREDICATE, COMMSETNOSYNC) at file scope,
// instance declarations (COMMSET member lists, COMMSETNAMEDARGADD) on
// statements, COMMSETNAMEDBLOCK on compound statements, and COMMSETNAMEDARG
// on function declarations. The AST stores each pragma's raw text plus its
// parsed directive (an `any` holding a pragma.Directive, kept untyped here to
// avoid an import cycle).
package ast

import (
	"repro/internal/source"
	"repro/internal/token"
)

// Type is a MiniC scalar type.
type Type int

// MiniC types. THandle values are opaque references to substrate objects
// (files, matrices, bitmaps, ...) and are represented as ints at run time;
// the front end treats them as int, so only the base four plus void exist
// syntactically.
const (
	TInvalid Type = iota
	TVoid
	TInt
	TFloat
	TBool
	TString
)

// String names the type as written in source.
func (t Type) String() string {
	switch t {
	case TVoid:
		return "void"
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TBool:
		return "bool"
	case TString:
		return "string"
	}
	return "invalid"
}

// Node is implemented by every AST node.
type Node interface {
	Pos() source.Pos
}

// Pragma is one `#pragma commset ...` line together with its parsed
// directive. Dir holds a pragma.Directive; it is `any` here so that the ast
// package does not depend on the pragma package.
type Pragma struct {
	PragmaPos source.Pos
	Text      string // body after "#pragma"
	Dir       any    // pragma.Directive, filled by the parser
}

// Pos returns the pragma's source position.
func (p *Pragma) Pos() source.Pos { return p.PragmaPos }

// PragmaHost is embedded by every node that can carry pragmas.
type PragmaHost struct {
	Pragmas []*Pragma
}

// HasPragmas reports whether any pragma is attached.
func (h *PragmaHost) HasPragmas() bool { return len(h.Pragmas) > 0 }

// Program is a parsed translation unit.
type Program struct {
	File    *source.File
	Globals []*VarDecl  // file-scope variables
	Funcs   []*FuncDecl // function declarations, in source order
	Pragmas []*Pragma   // file-scope COMMSET declarations
}

// FindFunc returns the function with the given name, or nil.
func (p *Program) FindFunc(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Param is a function parameter.
type Param struct {
	Name     string
	Type     Type
	ParamPos source.Pos
}

// Pos returns the parameter's position.
func (p *Param) Pos() source.Pos { return p.ParamPos }

// FuncDecl is a function definition. Pragmas attached here are COMMSET
// instance declarations on the interface (function-level membership) and
// COMMSETNAMEDARG exports.
type FuncDecl struct {
	PragmaHost
	NamePos source.Pos
	Name    string
	Params  []*Param
	Result  Type
	Body    *BlockStmt
}

// Pos returns the position of the function name.
func (f *FuncDecl) Pos() source.Pos { return f.NamePos }

// VarDecl is a variable declaration, at file scope or as a statement.
type VarDecl struct {
	PragmaHost
	NamePos source.Pos
	Name    string
	Type    Type
	Init    Expr // may be nil
}

// Pos returns the position of the declared name.
func (d *VarDecl) Pos() source.Pos { return d.NamePos }

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	Host() *PragmaHost
	stmtNode()
}

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	exprNode()
}

// --- Statements ---

// DeclStmt wraps a VarDecl in statement position.
type DeclStmt struct {
	Decl *VarDecl
}

// AssignStmt assigns RHS to the named variable with one of the assignment
// operators (=, +=, -=, *=, /=, %=).
type AssignStmt struct {
	PragmaHost
	LhsPos source.Pos
	Lhs    string
	Op     token.Kind
	Rhs    Expr
}

// IncDecStmt is `x++` or `x--` in statement position.
type IncDecStmt struct {
	PragmaHost
	NamePos source.Pos
	Name    string
	Op      token.Kind // token.INC or token.DEC
}

// ExprStmt evaluates an expression for its effects (usually a call).
type ExprStmt struct {
	PragmaHost
	X Expr
}

// IfStmt is `if (cond) then [else els]`.
type IfStmt struct {
	PragmaHost
	IfPos source.Pos
	Cond  Expr
	Then  Stmt
	Else  Stmt // may be nil
}

// WhileStmt is `while (cond) body`.
type WhileStmt struct {
	PragmaHost
	WhilePos source.Pos
	Cond     Expr
	Body     Stmt
}

// ForStmt is `for (init; cond; post) body`; each header part may be nil.
type ForStmt struct {
	PragmaHost
	ForPos source.Pos
	Init   Stmt // DeclStmt, AssignStmt or IncDecStmt; may be nil
	Cond   Expr // may be nil (treated as true)
	Post   Stmt // AssignStmt or IncDecStmt; may be nil
	Body   Stmt
}

// ReturnStmt is `return [expr];`.
type ReturnStmt struct {
	PragmaHost
	RetPos source.Pos
	X      Expr // may be nil
}

// BreakStmt is `break;`.
type BreakStmt struct {
	PragmaHost
	KwPos source.Pos
}

// ContinueStmt is `continue;`.
type ContinueStmt struct {
	PragmaHost
	KwPos source.Pos
}

// BlockStmt is a compound statement `{ ... }`. COMMSET member pragmas and
// COMMSETNAMEDBLOCK attach here, making the block a commutative region.
type BlockStmt struct {
	PragmaHost
	LbracePos source.Pos
	Stmts     []Stmt
}

// EmptyStmt is a lone `;`.
type EmptyStmt struct {
	PragmaHost
	SemiPos source.Pos
}

func (s *DeclStmt) Pos() source.Pos     { return s.Decl.Pos() }
func (s *AssignStmt) Pos() source.Pos   { return s.LhsPos }
func (s *IncDecStmt) Pos() source.Pos   { return s.NamePos }
func (s *ExprStmt) Pos() source.Pos     { return s.X.Pos() }
func (s *IfStmt) Pos() source.Pos       { return s.IfPos }
func (s *WhileStmt) Pos() source.Pos    { return s.WhilePos }
func (s *ForStmt) Pos() source.Pos      { return s.ForPos }
func (s *ReturnStmt) Pos() source.Pos   { return s.RetPos }
func (s *BreakStmt) Pos() source.Pos    { return s.KwPos }
func (s *ContinueStmt) Pos() source.Pos { return s.KwPos }
func (s *BlockStmt) Pos() source.Pos    { return s.LbracePos }
func (s *EmptyStmt) Pos() source.Pos    { return s.SemiPos }

func (s *DeclStmt) Host() *PragmaHost     { return &s.Decl.PragmaHost }
func (s *AssignStmt) Host() *PragmaHost   { return &s.PragmaHost }
func (s *IncDecStmt) Host() *PragmaHost   { return &s.PragmaHost }
func (s *ExprStmt) Host() *PragmaHost     { return &s.PragmaHost }
func (s *IfStmt) Host() *PragmaHost       { return &s.PragmaHost }
func (s *WhileStmt) Host() *PragmaHost    { return &s.PragmaHost }
func (s *ForStmt) Host() *PragmaHost      { return &s.PragmaHost }
func (s *ReturnStmt) Host() *PragmaHost   { return &s.PragmaHost }
func (s *BreakStmt) Host() *PragmaHost    { return &s.PragmaHost }
func (s *ContinueStmt) Host() *PragmaHost { return &s.PragmaHost }
func (s *BlockStmt) Host() *PragmaHost    { return &s.PragmaHost }
func (s *EmptyStmt) Host() *PragmaHost    { return &s.PragmaHost }

func (*DeclStmt) stmtNode()     {}
func (*AssignStmt) stmtNode()   {}
func (*IncDecStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*BlockStmt) stmtNode()    {}
func (*EmptyStmt) stmtNode()    {}

// --- Expressions ---

// IntLit is an integer literal.
type IntLit struct {
	LitPos source.Pos
	Value  int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	LitPos source.Pos
	Value  float64
}

// StringLit is a string literal (already unescaped).
type StringLit struct {
	LitPos source.Pos
	Value  string
}

// BoolLit is `true` or `false`.
type BoolLit struct {
	LitPos source.Pos
	Value  bool
}

// Ident is a variable reference.
type Ident struct {
	NamePos source.Pos
	Name    string
}

// CallExpr calls a user function or a builtin by name.
type CallExpr struct {
	NamePos source.Pos
	Fun     string
	Args    []Expr
}

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	OpPos source.Pos
	Op    token.Kind
	X, Y  Expr
}

// UnaryExpr applies a unary operator (!, -).
type UnaryExpr struct {
	OpPos source.Pos
	Op    token.Kind
	X     Expr
}

// CondExpr is the ternary `cond ? then : else`.
type CondExpr struct {
	QPos source.Pos
	Cond Expr
	Then Expr
	Else Expr
}

func (e *IntLit) Pos() source.Pos     { return e.LitPos }
func (e *FloatLit) Pos() source.Pos   { return e.LitPos }
func (e *StringLit) Pos() source.Pos  { return e.LitPos }
func (e *BoolLit) Pos() source.Pos    { return e.LitPos }
func (e *Ident) Pos() source.Pos      { return e.NamePos }
func (e *CallExpr) Pos() source.Pos   { return e.NamePos }
func (e *BinaryExpr) Pos() source.Pos { return e.X.Pos() }
func (e *UnaryExpr) Pos() source.Pos  { return e.OpPos }
func (e *CondExpr) Pos() source.Pos   { return e.Cond.Pos() }

func (*IntLit) exprNode()     {}
func (*FloatLit) exprNode()   {}
func (*StringLit) exprNode()  {}
func (*BoolLit) exprNode()    {}
func (*Ident) exprNode()      {}
func (*CallExpr) exprNode()   {}
func (*BinaryExpr) exprNode() {}
func (*UnaryExpr) exprNode()  {}
func (*CondExpr) exprNode()   {}
