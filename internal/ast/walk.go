package ast

// Inspect traverses the statement tree rooted at s in depth-first order,
// calling f for every statement. If f returns false for a statement, its
// children are not visited. It is the workhorse behind the front end's
// structured-control-flow checks on commutative blocks.
func Inspect(s Stmt, f func(Stmt) bool) {
	if s == nil || !f(s) {
		return
	}
	switch n := s.(type) {
	case *IfStmt:
		Inspect(n.Then, f)
		Inspect(n.Else, f)
	case *WhileStmt:
		Inspect(n.Body, f)
	case *ForStmt:
		Inspect(n.Init, f)
		Inspect(n.Post, f)
		Inspect(n.Body, f)
	case *BlockStmt:
		for _, st := range n.Stmts {
			Inspect(st, f)
		}
	}
}

// InspectExprs walks every expression contained in the statement tree rooted
// at s, calling f on each expression node (parents before children).
func InspectExprs(s Stmt, f func(Expr)) {
	Inspect(s, func(st Stmt) bool {
		switch n := st.(type) {
		case *DeclStmt:
			walkExpr(n.Decl.Init, f)
		case *AssignStmt:
			walkExpr(n.Rhs, f)
		case *ExprStmt:
			walkExpr(n.X, f)
		case *IfStmt:
			walkExpr(n.Cond, f)
		case *WhileStmt:
			walkExpr(n.Cond, f)
		case *ForStmt:
			walkExpr(n.Cond, f)
		case *ReturnStmt:
			walkExpr(n.X, f)
		}
		return true
	})
}

// WalkExpr walks the expression tree rooted at e (parents before children).
func WalkExpr(e Expr, f func(Expr)) { walkExpr(e, f) }

func walkExpr(e Expr, f func(Expr)) {
	if e == nil {
		return
	}
	f(e)
	switch n := e.(type) {
	case *CallExpr:
		for _, a := range n.Args {
			walkExpr(a, f)
		}
	case *BinaryExpr:
		walkExpr(n.X, f)
		walkExpr(n.Y, f)
	case *UnaryExpr:
		walkExpr(n.X, f)
	case *CondExpr:
		walkExpr(n.Cond, f)
		walkExpr(n.Then, f)
		walkExpr(n.Else, f)
	}
}

// Calls returns the names of all functions called anywhere inside s,
// in first-encounter order without duplicates.
func Calls(s Stmt) []string {
	var names []string
	seen := map[string]bool{}
	InspectExprs(s, func(e Expr) {
		if c, ok := e.(*CallExpr); ok && !seen[c.Fun] {
			seen[c.Fun] = true
			names = append(names, c.Fun)
		}
	})
	return names
}
