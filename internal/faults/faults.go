// Package faults provides deterministic, seedable fault injection for the
// COMMSET runtime. A Plan describes a reproducible campaign of substrate
// faults — transient and permanent builtin failures, latency spikes,
// transactional-memory conflict storms, pipeline-queue stalls, and whole
// worker-thread crashes — and an Injector instantiates the plan over any
// substrate's builtin table.
//
// Determinism is the defining property: the discrete-event simulator
// serializes all execution, so the global sequence of builtin calls, queue
// pushes, and TM commits is identical from run to run, and every injection
// decision is a pure function of (plan seed, spec index, event stream,
// event index). The same seed and plan therefore produce bit-identical
// fault sequences, diagnostics, and outputs — the property the resilience
// layer's tests and the `commsetbench -faults` campaign assert.
package faults

import (
	"fmt"
	"strings"

	"repro/internal/vm/interp"
	"repro/internal/vm/value"
)

// Kind enumerates the fault classes a Spec can inject.
type Kind int

// Fault classes.
const (
	// Transient fails a builtin call cleanly (before the builtin runs, so
	// no substrate state changes) for a bounded window of calls; later
	// calls succeed. Recoverable by per-call retry.
	Transient Kind = iota
	// Permanent fails every call of the target builtin once triggered.
	// Not recoverable: the run must terminate with a diagnosed error.
	Permanent
	// Latency adds Delay virtual-cost units to an affected call without
	// failing it (a slow disk, a page fault, a cache-cold library).
	Latency
	// TMStorm charges extra synthetic aborts on transactional-memory
	// commits (a burst of optimistic-concurrency conflicts).
	TMStorm
	// QueueStall delays token visibility on pipeline queues (a slow
	// consumer core, NUMA interconnect congestion).
	QueueStall
	// Crash kills a chosen simulated worker thread at a chosen crash-tick
	// index (a segfault, an OOM kill, a node reboot). The thread's private
	// state — frame, cursors, unflushed batches, unmerged shadows — is
	// lost; shared substrate state survives. A transient crash is followed
	// by a supervisor restart from the last checkpoint; a crash with
	// Spec.Permanent set leaves the thread dead and forces degraded mode.
	Crash
	// Straggler slows a chosen simulated worker thread by Factor× for a
	// window of its passes (a thermally throttled core, a co-scheduled
	// noisy neighbour, a failing disk behind one worker). The worker stays
	// alive and correct — only its virtual time stretches — so the repair
	// is load redistribution (work stealing), not restart.
	Straggler
)

// String names the fault class.
func (k Kind) String() string {
	switch k {
	case Transient:
		return "transient"
	case Permanent:
		return "permanent"
	case Latency:
		return "latency"
	case TMStorm:
		return "tm-storm"
	case QueueStall:
		return "queue-stall"
	case Crash:
		return "crash"
	case Straggler:
		return "straggler"
	}
	return "?"
}

// Spec is one fault source inside a plan. A spec targets an event stream —
// builtin calls (Transient, Permanent, Latency), queue pushes (QueueStall),
// or TM commits (TMStorm) — and fires either deterministically by event
// index (After/Count) or probabilistically per event (Prob), seeded by the
// plan so both forms are reproducible.
type Spec struct {
	Kind Kind

	// Builtin targets one builtin by name; "" or "*" targets every builtin
	// (the event index is then the global call index across all builtins).
	// Ignored by TMStorm and QueueStall.
	Builtin string

	// Queue restricts QueueStall to queues whose name has this prefix
	// ("" = every queue).
	Queue string

	// Thread names the simulated worker role a Crash spec kills or a
	// Straggler spec slows (e.g. "doall.1", "stage2.0"). Crash and
	// Straggler only; must be non-empty, and — when the plan is validated
	// against a thread roster — must name a thread the schedule actually
	// spawns, or a dynamically spawned steal/salvage role
	// ("salvage.<worker>.<share>") that no static roster can list. The
	// event stream is the victim's per-role tick counter: one tick per
	// iteration pass (DOALL) or per token (stages), continuous across
	// restarts, so Count > 1 models repeated crashes.
	Thread string

	// Permanent marks a Crash as unrecoverable: the supervisor does not
	// restart the victim, and the run degrades (DOALL re-partitions the
	// dead worker's remaining iterations across survivors; a dead pipeline
	// stage collapses the run to the sequential fallback). Crash only.
	Permanent bool

	// After is the 1-based event index at which the fault starts firing;
	// 0 selects probabilistic firing via Prob instead.
	After int
	// Count bounds how many events the fault affects once started
	// (Transient, Latency, TMStorm, QueueStall; <= 0 means 1).
	// Permanent ignores Count: once triggered it never clears.
	Count int
	// Prob fires the fault on each event independently with this
	// probability (deterministically derived from the seed). For
	// Permanent, the first probabilistic hit latches the fault on.
	Prob float64

	// Delay is the extra virtual cost charged by Latency and QueueStall.
	Delay int64
	// Aborts is the number of extra conflict aborts charged per affected
	// TM commit by TMStorm.
	Aborts int

	// Factor is the Straggler slowdown multiplier (> 1): an affected pass
	// of the target worker costs Factor× its fault-free virtual time.
	// Straggler only.
	Factor float64
}

// window reports whether a 1-based event index falls in the spec's
// deterministic firing window.
func (s *Spec) window(idx int) bool {
	if s.After <= 0 {
		return false
	}
	if s.Kind == Permanent {
		return idx >= s.After
	}
	n := s.Count
	if n <= 0 {
		n = 1
	}
	return idx >= s.After && idx < s.After+n
}

// matchesBuiltin reports whether the spec targets the named builtin.
func (s *Spec) matchesBuiltin(name string) bool {
	return s.Builtin == "" || s.Builtin == "*" || s.Builtin == name
}

// wildcard reports whether the spec targets every builtin (and therefore
// counts events on the global call stream).
func (s *Spec) wildcard() bool { return s.Builtin == "" || s.Builtin == "*" }

// describe renders the spec for plan listings.
func (s *Spec) describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v", s.Kind)
	switch s.Kind {
	case TMStorm:
	case QueueStall:
		if s.Queue != "" {
			fmt.Fprintf(&b, " queue=%s*", s.Queue)
		}
	case Crash:
		fmt.Fprintf(&b, " thread=%s", s.Thread)
		if s.Permanent {
			b.WriteString(" permanent")
		}
	case Straggler:
		fmt.Fprintf(&b, " thread=%s factor=%g", s.Thread, s.Factor)
	default:
		target := s.Builtin
		if s.wildcard() {
			target = "*"
		}
		fmt.Fprintf(&b, " builtin=%s", target)
	}
	if s.After > 0 {
		fmt.Fprintf(&b, " after=%d count=%d", s.After, s.Count)
	} else {
		fmt.Fprintf(&b, " prob=%g", s.Prob)
	}
	if s.Delay > 0 {
		fmt.Fprintf(&b, " delay=%d", s.Delay)
	}
	if s.Aborts > 0 {
		fmt.Fprintf(&b, " aborts=%d", s.Aborts)
	}
	return b.String()
}

// Plan is a named, seeded set of fault specs.
type Plan struct {
	Name  string
	Seed  uint64
	Specs []Spec

	// Recoverable declares the plan's expectation: true means a resilient
	// executor must absorb every injected fault and produce
	// sequential-equivalent output; false means runs are expected to
	// terminate with a diagnosed error (never a hang or panic).
	Recoverable bool
}

// HasCrash reports whether the plan contains any Crash spec. Harnesses use
// it to arm the executor's checkpoint layer (Config.CrashCheck) only for
// plans that can actually kill a thread, keeping crash-free runs on the
// exact legacy timeline.
func (p *Plan) HasCrash() bool {
	for i := range p.Specs {
		if p.Specs[i].Kind == Crash {
			return true
		}
	}
	return false
}

// HasStraggler reports whether the plan contains any Straggler spec.
// Harnesses use it to wire the executor's per-pass slowdown hook
// (Config.Straggle) only for plans that can actually slow a thread.
func (p *Plan) HasStraggler() bool {
	for i := range p.Specs {
		if p.Specs[i].Kind == Straggler {
			return true
		}
	}
	return false
}

// String renders the plan header and its specs on one line.
func (p *Plan) String() string {
	parts := make([]string, len(p.Specs))
	for i := range p.Specs {
		parts[i] = p.Specs[i].describe()
	}
	return fmt.Sprintf("%s(seed=%d): %s", p.Name, p.Seed, strings.Join(parts, "; "))
}

// Validate checks the plan's specs for structural errors before a run, so
// malformed plans fail fast instead of deep inside a simulation. roster, if
// non-nil, lists the worker-thread roles the target schedule actually
// spawns; Crash and Straggler specs must name one of them — or a
// dynamically spawned steal/salvage role ("salvage.<worker>.<share>"),
// which the executor creates at join time and no static roster can list.
// Checks:
//
//   - Prob must lie in [0,1]; Delay and Aborts must be non-negative.
//   - Crash specs must name a target thread, must be able to fire
//     (After > 0 or Prob > 0), and — with a roster — must name a real role.
//   - Straggler specs must name a target thread, must carry a slowdown
//     Factor > 1, and must be able to fire (After > 0 or Prob > 0): a
//     straggler window that can never open repairs nothing and hides a
//     campaign typo.
//   - Thread applies only to Crash and Straggler specs; Permanent and
//     Factor are Crash-only and Straggler-only respectively.
//   - A permanent crash cannot repeat (Count > 1 conflicts with Permanent:
//     a dead, never-restarted thread has no further crash ticks).
//   - Two deterministic Crash specs whose tick windows overlap on the same
//     thread must agree on permanence — "crash then restart" and "crash for
//     good" on the same event contradict each other.
func (p *Plan) Validate(roster []string) error {
	for si := range p.Specs {
		s := &p.Specs[si]
		if s.Prob < 0 || s.Prob > 1 {
			return fmt.Errorf("plan %s spec %d (%v): Prob %g outside [0,1]", p.Name, si, s.Kind, s.Prob)
		}
		if s.Delay < 0 {
			return fmt.Errorf("plan %s spec %d (%v): negative Delay %d", p.Name, si, s.Kind, s.Delay)
		}
		if s.Aborts < 0 {
			return fmt.Errorf("plan %s spec %d (%v): negative Aborts %d", p.Name, si, s.Kind, s.Aborts)
		}
		if s.Kind != Straggler && s.Factor != 0 {
			return fmt.Errorf("plan %s spec %d (%v): Factor=%g applies only to straggler specs", p.Name, si, s.Kind, s.Factor)
		}
		if s.Kind != Crash && s.Permanent {
			return fmt.Errorf("plan %s spec %d (%v): Permanent applies only to crash specs", p.Name, si, s.Kind)
		}
		if s.Kind != Crash && s.Kind != Straggler {
			if s.Thread != "" {
				return fmt.Errorf("plan %s spec %d (%v): Thread=%q applies only to crash and straggler specs", p.Name, si, s.Kind, s.Thread)
			}
			continue
		}
		if s.Thread == "" {
			return fmt.Errorf("plan %s spec %d: %v spec must name a target thread", p.Name, si, s.Kind)
		}
		if s.Kind == Straggler {
			if s.Factor <= 1 {
				return fmt.Errorf("plan %s spec %d: straggler of %s needs a slowdown Factor > 1 (got %g)", p.Name, si, s.Thread, s.Factor)
			}
			if s.After <= 0 && s.Prob <= 0 {
				return fmt.Errorf("plan %s spec %d: straggler of %s can never fire (need After or Prob)", p.Name, si, s.Thread)
			}
		}
		if s.Kind == Crash {
			if s.After <= 0 && s.Prob <= 0 {
				return fmt.Errorf("plan %s spec %d: crash of %s can never fire (need After or Prob)", p.Name, si, s.Thread)
			}
			if s.Permanent && s.Count > 1 {
				return fmt.Errorf("plan %s spec %d: permanent crash of %s cannot repeat (Count=%d)", p.Name, si, s.Thread, s.Count)
			}
		}
		if roster != nil && !rosterHas(roster, s.Thread) && !dynamicRole(s.Thread) {
			return fmt.Errorf("plan %s spec %d: %v targets nonexistent thread %q (schedule spawns: %s)",
				p.Name, si, s.Kind, s.Thread, strings.Join(roster, ", "))
		}
		if s.Kind != Crash {
			continue
		}
		for sj := 0; sj < si; sj++ {
			o := &p.Specs[sj]
			if o.Kind != Crash || o.Thread != s.Thread || o.Permanent == s.Permanent {
				continue
			}
			if crashWindowsOverlap(o, s) {
				return fmt.Errorf("plan %s specs %d and %d: conflicting crash and permanent-crash on thread %s at the same event",
					p.Name, sj, si, s.Thread)
			}
		}
	}
	return nil
}

// dynamicRole reports whether the role name matches one the executor
// spawns dynamically rather than as part of the static schedule: salvage
// runners ("salvage.<worker>.<share>") created at join time to
// re-partition a permanently dead DOALL worker's remaining range. Such
// roles consume crash ticks of their own, so plans may legitimately
// target them, but no static roster can list them — Validate accepts
// them by shape instead.
func dynamicRole(name string) bool {
	rest, ok := strings.CutPrefix(name, "salvage.")
	if !ok {
		return false
	}
	a, b, ok := strings.Cut(rest, ".")
	return ok && isUint(a) && isUint(b)
}

func isUint(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// ServiceRoster is the dynamic worker roster of a service-mode run. The
// degradation ladder may scale Scalable workers away (parked workers consume
// no crash ticks), so only Always workers — the structurally required set:
// pipeline stages, plus the pool's MinWorkers — have guaranteed crash-tick
// streams.
type ServiceRoster struct {
	Always   []string
	Scalable []string
}

// ValidateService checks the plan against a service-mode roster: the
// structural checks of Validate over the full dynamic roster, plus the
// service-specific rule that a Crash or Straggler spec may not target a
// Scalable worker. A scaled-away worker is parked — it consumes no crash
// or slow ticks — so a spec whose target the ladder can scale away for
// the whole service window might deterministically never fire; campaigns
// must pin crashes and stragglers to Always roles.
func (p *Plan) ValidateService(r ServiceRoster) error {
	full := append(append([]string(nil), r.Always...), r.Scalable...)
	if err := p.Validate(full); err != nil {
		return err
	}
	for si := range p.Specs {
		s := &p.Specs[si]
		if s.Kind != Crash && s.Kind != Straggler {
			continue
		}
		if rosterHas(r.Scalable, s.Thread) && !rosterHas(r.Always, s.Thread) {
			return fmt.Errorf("plan %s spec %d: %v targets scalable worker %q, which the degradation ladder can scale away for the whole service window (always-on: %s; scalable: %s)",
				p.Name, si, s.Kind, s.Thread, strings.Join(r.Always, ", "), strings.Join(r.Scalable, ", "))
		}
	}
	return nil
}

func rosterHas(roster []string, name string) bool {
	for _, r := range roster {
		if r == name {
			return true
		}
	}
	return false
}

// crashWindowsOverlap reports whether two deterministic crash windows share
// a tick. Probabilistic specs (After <= 0) can hit any tick, so they
// overlap everything.
func crashWindowsOverlap(a, b *Spec) bool {
	if a.After <= 0 || b.After <= 0 {
		return true
	}
	end := func(s *Spec) int {
		n := s.Count
		if n <= 0 {
			n = 1
		}
		return s.After + n // exclusive
	}
	return a.After < end(b) && b.After < end(a)
}

// Error is an injected builtin failure. The resilience layer inspects
// IsTransient to decide between retry and orderly shutdown.
type Error struct {
	Builtin string
	Call    int // event index at which the fault fired
	Perm    bool
}

// Error renders the diagnosed failure.
func (e *Error) Error() string {
	kind := "transient"
	if e.Perm {
		kind = "permanent"
	}
	return fmt.Sprintf("injected %s fault in builtin %s (call %d)", kind, e.Builtin, e.Call)
}

// IsTransient reports whether retrying the call can succeed.
func (e *Error) IsTransient() bool { return !e.Perm }

// Injector instantiates one plan over a substrate. Create a fresh Injector
// per execution attempt: its event counters define the plan's timeline.
// All methods are called from simulated threads, which the discrete-event
// scheduler serializes, so no internal locking is needed.
type Injector struct {
	plan Plan

	calls   map[string]int // per-builtin call counters
	total   int            // global builtin call counter
	pushes  map[string]int // per-queue push counters
	commits int            // TM commit counter
	ticks   map[string]int // per-thread crash-tick counters
	slows   map[string]int // per-thread straggler-tick counters

	latched []bool // Permanent Prob specs that have fired

	injected int
	events   []string
}

// maxTrace bounds the retained injection trace.
const maxTrace = 64

// NewInjector prepares a fresh instantiation of the plan.
func NewInjector(plan Plan) *Injector {
	return &Injector{
		plan:    plan,
		calls:   map[string]int{},
		pushes:  map[string]int{},
		ticks:   map[string]int{},
		slows:   map[string]int{},
		latched: make([]bool, len(plan.Specs)),
	}
}

// Plan returns the injector's plan.
func (inj *Injector) Plan() Plan { return inj.plan }

// Injected reports how many fault events have fired so far.
func (inj *Injector) Injected() int { return inj.injected }

// Trace returns the (bounded) log of fired fault events, in order.
func (inj *Injector) Trace() []string { return inj.events }

// note records one fired fault event.
func (inj *Injector) note(format string, args ...any) {
	inj.injected++
	if len(inj.events) < maxTrace {
		inj.events = append(inj.events, fmt.Sprintf(format, args...))
	}
}

// roll returns a deterministic uniform [0,1) draw for one (spec, stream,
// index) triple.
func (inj *Injector) roll(spec int, stream string, idx int) float64 {
	h := inj.plan.Seed ^ 0x9e3779b97f4a7c15
	for _, c := range []byte(stream) {
		h = (h ^ uint64(c)) * 0x100000001b3
	}
	h ^= uint64(spec+1) * 0xff51afd7ed558ccd
	h ^= uint64(idx) * 0xc4ceb9fe1a85ec53
	// splitmix64 finalizer.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return float64(h>>11) / (1 << 53)
}

// fires decides whether spec si fires on event idx of the named stream.
func (inj *Injector) fires(si int, s *Spec, stream string, idx int) bool {
	if s.After > 0 {
		return s.window(idx)
	}
	if s.Prob <= 0 {
		return false
	}
	if s.Kind == Permanent {
		if inj.latched[si] {
			return true
		}
		if inj.roll(si, stream, idx) < s.Prob {
			inj.latched[si] = true
			return true
		}
		return false
	}
	return inj.roll(si, stream, idx) < s.Prob
}

// Wrap interposes the plan on a builtin table. The returned table is a
// drop-in replacement: unaffected calls forward to the original builtin
// unchanged; failed calls return an *Error without running the builtin (so
// an injected failure never leaves partial substrate state behind).
func (inj *Injector) Wrap(fns map[string]interp.BuiltinFn) map[string]interp.BuiltinFn {
	out := make(map[string]interp.BuiltinFn, len(fns))
	for name, base := range fns {
		name, base := name, base
		out[name] = func(args []value.Value) (value.Value, int64, error) {
			inj.total++
			inj.calls[name]++
			var extra int64
			for si := range inj.plan.Specs {
				s := &inj.plan.Specs[si]
				if !s.matchesBuiltin(name) {
					continue
				}
				idx := inj.calls[name]
				if s.wildcard() {
					idx = inj.total
				}
				switch s.Kind {
				case Transient, Permanent:
					if inj.fires(si, s, "call:"+s.Builtin, idx) {
						perm := s.Kind == Permanent
						inj.note("%v %s call %d", s.Kind, name, idx)
						return value.Value{}, 0, &Error{Builtin: name, Call: idx, Perm: perm}
					}
				case Latency:
					if inj.fires(si, s, "lat:"+s.Builtin, idx) {
						inj.note("latency +%d on %s call %d", s.Delay, name, idx)
						extra += s.Delay
					}
				}
			}
			v, cost, err := base(args)
			return v, cost + extra, err
		}
	}
	return out
}

// QueueDelay reports the extra virtual latency to charge for the next push
// on the named queue (0 when no QueueStall spec fires). Call exactly once
// per push: the call advances the queue's event counter.
func (inj *Injector) QueueDelay(queue string) int64 {
	inj.pushes[queue]++
	idx := inj.pushes[queue]
	var d int64
	for si := range inj.plan.Specs {
		s := &inj.plan.Specs[si]
		if s.Kind != QueueStall || !strings.HasPrefix(queue, s.Queue) {
			continue
		}
		if inj.fires(si, s, "queue:"+queue, idx) {
			inj.note("queue-stall +%d on %s push %d", s.Delay, queue, idx)
			d += s.Delay
		}
	}
	return d
}

// CrashNow reports whether the named worker role crashes at its next crash
// tick, and whether the crash is permanent (no restart). Call exactly once
// per tick — one iteration pass for DOALL workers, one token for pipeline
// stages — the call advances the role's tick counter. The counter is keyed
// by role, not by simulated-thread incarnation, so it runs continuously
// across supervisor restarts: a Crash spec with Count > 1 kills the
// replacement too (repeated crashes), and the replayed window after a
// restore consumes fresh ticks of its own.
func (inj *Injector) CrashNow(thread string) (die, permanent bool) {
	inj.ticks[thread]++
	idx := inj.ticks[thread]
	for si := range inj.plan.Specs {
		s := &inj.plan.Specs[si]
		if s.Kind != Crash || s.Thread != thread {
			continue
		}
		if inj.fires(si, s, "crash:"+thread, idx) {
			kind := "crash"
			if s.Permanent {
				kind = "permanent crash"
			}
			inj.note("%s of %s at tick %d", kind, thread, idx)
			die = true
			permanent = permanent || s.Permanent
		}
	}
	return die, permanent
}

// CrashTick reports how many crash ticks the named role has consumed so
// far (diagnostics only; does not advance the counter).
func (inj *Injector) CrashTick(thread string) int { return inj.ticks[thread] }

// SlowNow reports the slowdown factor (≥ 1; 1 = full speed) the named
// worker role suffers on its next pass. Call exactly once per pass: the
// call advances the role's straggler-tick counter ("slow:"+thread
// stream), which — like crash ticks — is keyed by role, not by
// simulated-thread incarnation, so it runs continuously across restarts.
// When several Straggler specs fire on the same tick the largest Factor
// wins (a throttled core is as slow as its worst cause).
func (inj *Injector) SlowNow(thread string) float64 {
	inj.slows[thread]++
	idx := inj.slows[thread]
	f := 1.0
	for si := range inj.plan.Specs {
		s := &inj.plan.Specs[si]
		if s.Kind != Straggler || s.Thread != thread {
			continue
		}
		if inj.fires(si, s, "slow:"+thread, idx) && s.Factor > f {
			f = s.Factor
		}
	}
	if f > 1 {
		inj.note("straggler x%g on %s pass %d", f, thread, idx)
	}
	return f
}

// SlowTick reports how many straggler ticks the named role has consumed
// so far (diagnostics only; does not advance the counter).
func (inj *Injector) SlowTick(thread string) int { return inj.slows[thread] }

// ExtraAborts reports the synthetic additional conflict aborts to charge
// for the next TM commit. Call exactly once per commit: the call advances
// the commit event counter.
func (inj *Injector) ExtraAborts() int {
	inj.commits++
	n := 0
	for si := range inj.plan.Specs {
		s := &inj.plan.Specs[si]
		if s.Kind != TMStorm {
			continue
		}
		if inj.fires(si, s, "tm", inj.commits) {
			inj.note("tm-storm +%d aborts on commit %d", s.Aborts, inj.commits)
			n += s.Aborts
		}
	}
	return n
}
