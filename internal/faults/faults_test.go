package faults

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/vm/interp"
	"repro/internal/vm/value"
)

// table builds a tiny builtin table with call recording.
func table(calls *[]string) map[string]interp.BuiltinFn {
	mk := func(name string) interp.BuiltinFn {
		return func(args []value.Value) (value.Value, int64, error) {
			*calls = append(*calls, name)
			return value.Int(int64(len(*calls))), 10, nil
		}
	}
	return map[string]interp.BuiltinFn{"alpha": mk("alpha"), "beta": mk("beta")}
}

func TestTransientWindowClears(t *testing.T) {
	var calls []string
	inj := NewInjector(Plan{Seed: 1, Specs: []Spec{
		{Kind: Transient, Builtin: "alpha", After: 2, Count: 2},
	}})
	fns := inj.Wrap(table(&calls))
	for i := 1; i <= 5; i++ {
		_, _, err := fns["alpha"](nil)
		wantFail := i == 2 || i == 3
		if (err != nil) != wantFail {
			t.Errorf("call %d: err = %v, want fail=%v", i, err, wantFail)
		}
		if err != nil {
			var fe *Error
			if !errors.As(err, &fe) || !fe.IsTransient() {
				t.Errorf("call %d: not a transient fault error: %v", i, err)
			}
		}
	}
	// Failed calls must not run the base builtin.
	if len(calls) != 3 {
		t.Errorf("base builtin ran %d times, want 3", len(calls))
	}
	if inj.Injected() != 2 || len(inj.Trace()) != 2 {
		t.Errorf("injected = %d trace = %v", inj.Injected(), inj.Trace())
	}
}

func TestPermanentNeverClears(t *testing.T) {
	var calls []string
	inj := NewInjector(Plan{Seed: 1, Specs: []Spec{
		{Kind: Permanent, Builtin: "*", After: 3},
	}})
	fns := inj.Wrap(table(&calls))
	seq := []string{"alpha", "beta", "alpha", "beta", "alpha"}
	for i, name := range seq {
		_, _, err := fns[name](nil)
		wantFail := i+1 >= 3 // global call index
		if (err != nil) != wantFail {
			t.Errorf("global call %d (%s): err = %v, want fail=%v", i+1, name, err, wantFail)
		}
		if err != nil {
			var fe *Error
			if !errors.As(err, &fe) || fe.IsTransient() {
				t.Errorf("call %d: want permanent fault, got %v", i+1, err)
			}
		}
	}
}

func TestProbabilisticPermanentLatches(t *testing.T) {
	inj := NewInjector(Plan{Seed: 7, Specs: []Spec{
		{Kind: Permanent, Builtin: "*", Prob: 0.2},
	}})
	var calls []string
	fns := inj.Wrap(table(&calls))
	failedAt := -1
	for i := 1; i <= 200; i++ {
		if _, _, err := fns["alpha"](nil); err != nil {
			failedAt = i
			break
		}
	}
	if failedAt < 0 {
		t.Fatal("prob=0.2 permanent fault never fired in 200 calls")
	}
	// Once latched, every later call fails.
	for i := 0; i < 10; i++ {
		if _, _, err := fns["beta"](nil); err == nil {
			t.Fatal("permanent fault cleared after latching")
		}
	}
}

func TestLatencyAddsCostWithoutError(t *testing.T) {
	var calls []string
	inj := NewInjector(Plan{Seed: 1, Specs: []Spec{
		{Kind: Latency, Builtin: "alpha", After: 1, Count: 1, Delay: 500},
	}})
	fns := inj.Wrap(table(&calls))
	_, cost, err := fns["alpha"](nil)
	if err != nil || cost != 510 {
		t.Errorf("spiked call: cost = %d err = %v, want 510 nil", cost, err)
	}
	_, cost, err = fns["alpha"](nil)
	if err != nil || cost != 10 {
		t.Errorf("clean call: cost = %d err = %v, want 10 nil", cost, err)
	}
}

func TestQueueDelayAndAborts(t *testing.T) {
	inj := NewInjector(Plan{Seed: 3, Specs: []Spec{
		{Kind: QueueStall, Queue: "q0", After: 2, Count: 1, Delay: 700},
		{Kind: TMStorm, After: 1, Count: 2, Aborts: 3},
	}})
	if d := inj.QueueDelay("q0.0"); d != 0 {
		t.Errorf("push 1 delay = %d, want 0", d)
	}
	if d := inj.QueueDelay("q0.0"); d != 700 {
		t.Errorf("push 2 delay = %d, want 700", d)
	}
	if d := inj.QueueDelay("join"); d != 0 {
		t.Errorf("non-matching queue delayed: %d", d)
	}
	if n := inj.ExtraAborts(); n != 3 {
		t.Errorf("commit 1 aborts = %d, want 3", n)
	}
	if n := inj.ExtraAborts(); n != 3 {
		t.Errorf("commit 2 aborts = %d, want 3", n)
	}
	if n := inj.ExtraAborts(); n != 0 {
		t.Errorf("commit 3 aborts = %d, want 0", n)
	}
}

// TestDeterministicReplay is the package's core property: two injectors of
// the same plan make identical decisions over identical event sequences.
func TestDeterministicReplay(t *testing.T) {
	plan := Plan{Seed: 42, Specs: []Spec{
		{Kind: Transient, Builtin: "*", Prob: 0.15},
		{Kind: Latency, Builtin: "beta", Prob: 0.3, Delay: 111},
		{Kind: QueueStall, Prob: 0.25, Delay: 222},
		{Kind: TMStorm, Prob: 0.5, Aborts: 2},
	}}
	run := func() (errs []bool, costs []int64, delays []int64, aborts []int) {
		var calls []string
		inj := NewInjector(plan)
		fns := inj.Wrap(table(&calls))
		for i := 0; i < 100; i++ {
			name := "alpha"
			if i%3 == 0 {
				name = "beta"
			}
			_, c, err := fns[name](nil)
			errs = append(errs, err != nil)
			costs = append(costs, c)
		}
		for i := 0; i < 50; i++ {
			delays = append(delays, inj.QueueDelay("q1.0"))
			aborts = append(aborts, inj.ExtraAborts())
		}
		return
	}
	e1, c1, d1, a1 := run()
	e2, c2, d2, a2 := run()
	for i := range e1 {
		if e1[i] != e2[i] || c1[i] != c2[i] {
			t.Fatalf("call %d diverged: (%v,%d) vs (%v,%d)", i, e1[i], c1[i], e2[i], c2[i])
		}
	}
	for i := range d1 {
		if d1[i] != d2[i] || a1[i] != a2[i] {
			t.Fatalf("event %d diverged", i)
		}
	}
	any := false
	for _, e := range e1 {
		any = any || e
	}
	if !any {
		t.Error("prob=0.15 transient spec never fired in 100 calls")
	}
}

func TestSeedChangesDecisions(t *testing.T) {
	pattern := func(seed uint64) string {
		inj := NewInjector(Plan{Seed: seed, Specs: []Spec{
			{Kind: Transient, Builtin: "*", Prob: 0.3},
		}})
		var calls []string
		fns := inj.Wrap(table(&calls))
		var b strings.Builder
		for i := 0; i < 64; i++ {
			if _, _, err := fns["alpha"](nil); err != nil {
				b.WriteByte('x')
			} else {
				b.WriteByte('.')
			}
		}
		return b.String()
	}
	if pattern(1) == pattern(2) {
		t.Error("different seeds produced identical fault patterns")
	}
}

func TestPlanString(t *testing.T) {
	p := Plan{Name: "storm", Seed: 9, Specs: []Spec{
		{Kind: Transient, Builtin: "*", After: 4, Count: 2},
		{Kind: QueueStall, Queue: "q0", Prob: 0.5, Delay: 10},
	}}
	s := p.String()
	for _, want := range []string{"storm", "seed=9", "transient", "after=4", "queue-stall", "prob=0.5"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan string %q missing %q", s, want)
		}
	}
}
