package faults

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/vm/interp"
	"repro/internal/vm/value"
)

// table builds a tiny builtin table with call recording.
func table(calls *[]string) map[string]interp.BuiltinFn {
	mk := func(name string) interp.BuiltinFn {
		return func(args []value.Value) (value.Value, int64, error) {
			*calls = append(*calls, name)
			return value.Int(int64(len(*calls))), 10, nil
		}
	}
	return map[string]interp.BuiltinFn{"alpha": mk("alpha"), "beta": mk("beta")}
}

func TestTransientWindowClears(t *testing.T) {
	var calls []string
	inj := NewInjector(Plan{Seed: 1, Specs: []Spec{
		{Kind: Transient, Builtin: "alpha", After: 2, Count: 2},
	}})
	fns := inj.Wrap(table(&calls))
	for i := 1; i <= 5; i++ {
		_, _, err := fns["alpha"](nil)
		wantFail := i == 2 || i == 3
		if (err != nil) != wantFail {
			t.Errorf("call %d: err = %v, want fail=%v", i, err, wantFail)
		}
		if err != nil {
			var fe *Error
			if !errors.As(err, &fe) || !fe.IsTransient() {
				t.Errorf("call %d: not a transient fault error: %v", i, err)
			}
		}
	}
	// Failed calls must not run the base builtin.
	if len(calls) != 3 {
		t.Errorf("base builtin ran %d times, want 3", len(calls))
	}
	if inj.Injected() != 2 || len(inj.Trace()) != 2 {
		t.Errorf("injected = %d trace = %v", inj.Injected(), inj.Trace())
	}
}

func TestPermanentNeverClears(t *testing.T) {
	var calls []string
	inj := NewInjector(Plan{Seed: 1, Specs: []Spec{
		{Kind: Permanent, Builtin: "*", After: 3},
	}})
	fns := inj.Wrap(table(&calls))
	seq := []string{"alpha", "beta", "alpha", "beta", "alpha"}
	for i, name := range seq {
		_, _, err := fns[name](nil)
		wantFail := i+1 >= 3 // global call index
		if (err != nil) != wantFail {
			t.Errorf("global call %d (%s): err = %v, want fail=%v", i+1, name, err, wantFail)
		}
		if err != nil {
			var fe *Error
			if !errors.As(err, &fe) || fe.IsTransient() {
				t.Errorf("call %d: want permanent fault, got %v", i+1, err)
			}
		}
	}
}

func TestProbabilisticPermanentLatches(t *testing.T) {
	inj := NewInjector(Plan{Seed: 7, Specs: []Spec{
		{Kind: Permanent, Builtin: "*", Prob: 0.2},
	}})
	var calls []string
	fns := inj.Wrap(table(&calls))
	failedAt := -1
	for i := 1; i <= 200; i++ {
		if _, _, err := fns["alpha"](nil); err != nil {
			failedAt = i
			break
		}
	}
	if failedAt < 0 {
		t.Fatal("prob=0.2 permanent fault never fired in 200 calls")
	}
	// Once latched, every later call fails.
	for i := 0; i < 10; i++ {
		if _, _, err := fns["beta"](nil); err == nil {
			t.Fatal("permanent fault cleared after latching")
		}
	}
}

func TestLatencyAddsCostWithoutError(t *testing.T) {
	var calls []string
	inj := NewInjector(Plan{Seed: 1, Specs: []Spec{
		{Kind: Latency, Builtin: "alpha", After: 1, Count: 1, Delay: 500},
	}})
	fns := inj.Wrap(table(&calls))
	_, cost, err := fns["alpha"](nil)
	if err != nil || cost != 510 {
		t.Errorf("spiked call: cost = %d err = %v, want 510 nil", cost, err)
	}
	_, cost, err = fns["alpha"](nil)
	if err != nil || cost != 10 {
		t.Errorf("clean call: cost = %d err = %v, want 10 nil", cost, err)
	}
}

func TestQueueDelayAndAborts(t *testing.T) {
	inj := NewInjector(Plan{Seed: 3, Specs: []Spec{
		{Kind: QueueStall, Queue: "q0", After: 2, Count: 1, Delay: 700},
		{Kind: TMStorm, After: 1, Count: 2, Aborts: 3},
	}})
	if d := inj.QueueDelay("q0.0"); d != 0 {
		t.Errorf("push 1 delay = %d, want 0", d)
	}
	if d := inj.QueueDelay("q0.0"); d != 700 {
		t.Errorf("push 2 delay = %d, want 700", d)
	}
	if d := inj.QueueDelay("join"); d != 0 {
		t.Errorf("non-matching queue delayed: %d", d)
	}
	if n := inj.ExtraAborts(); n != 3 {
		t.Errorf("commit 1 aborts = %d, want 3", n)
	}
	if n := inj.ExtraAborts(); n != 3 {
		t.Errorf("commit 2 aborts = %d, want 3", n)
	}
	if n := inj.ExtraAborts(); n != 0 {
		t.Errorf("commit 3 aborts = %d, want 0", n)
	}
}

// TestDeterministicReplay is the package's core property: two injectors of
// the same plan make identical decisions over identical event sequences.
func TestDeterministicReplay(t *testing.T) {
	plan := Plan{Seed: 42, Specs: []Spec{
		{Kind: Transient, Builtin: "*", Prob: 0.15},
		{Kind: Latency, Builtin: "beta", Prob: 0.3, Delay: 111},
		{Kind: QueueStall, Prob: 0.25, Delay: 222},
		{Kind: TMStorm, Prob: 0.5, Aborts: 2},
	}}
	run := func() (errs []bool, costs []int64, delays []int64, aborts []int) {
		var calls []string
		inj := NewInjector(plan)
		fns := inj.Wrap(table(&calls))
		for i := 0; i < 100; i++ {
			name := "alpha"
			if i%3 == 0 {
				name = "beta"
			}
			_, c, err := fns[name](nil)
			errs = append(errs, err != nil)
			costs = append(costs, c)
		}
		for i := 0; i < 50; i++ {
			delays = append(delays, inj.QueueDelay("q1.0"))
			aborts = append(aborts, inj.ExtraAborts())
		}
		return
	}
	e1, c1, d1, a1 := run()
	e2, c2, d2, a2 := run()
	for i := range e1 {
		if e1[i] != e2[i] || c1[i] != c2[i] {
			t.Fatalf("call %d diverged: (%v,%d) vs (%v,%d)", i, e1[i], c1[i], e2[i], c2[i])
		}
	}
	for i := range d1 {
		if d1[i] != d2[i] || a1[i] != a2[i] {
			t.Fatalf("event %d diverged", i)
		}
	}
	any := false
	for _, e := range e1 {
		any = any || e
	}
	if !any {
		t.Error("prob=0.15 transient spec never fired in 100 calls")
	}
}

func TestSeedChangesDecisions(t *testing.T) {
	pattern := func(seed uint64) string {
		inj := NewInjector(Plan{Seed: seed, Specs: []Spec{
			{Kind: Transient, Builtin: "*", Prob: 0.3},
		}})
		var calls []string
		fns := inj.Wrap(table(&calls))
		var b strings.Builder
		for i := 0; i < 64; i++ {
			if _, _, err := fns["alpha"](nil); err != nil {
				b.WriteByte('x')
			} else {
				b.WriteByte('.')
			}
		}
		return b.String()
	}
	if pattern(1) == pattern(2) {
		t.Error("different seeds produced identical fault patterns")
	}
}

func TestPlanString(t *testing.T) {
	p := Plan{Name: "storm", Seed: 9, Specs: []Spec{
		{Kind: Transient, Builtin: "*", After: 4, Count: 2},
		{Kind: QueueStall, Queue: "q0", Prob: 0.5, Delay: 10},
	}}
	s := p.String()
	for _, want := range []string{"storm", "seed=9", "transient", "after=4", "queue-stall", "prob=0.5"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan string %q missing %q", s, want)
		}
	}
}

// TestCrashNowDeterministicWindow: a Crash spec fires exactly on its tick
// window for its target thread, leaving other threads untouched, and ticks
// advance per call.
func TestCrashNowDeterministicWindow(t *testing.T) {
	inj := NewInjector(Plan{Seed: 1, Specs: []Spec{
		{Kind: Crash, Thread: "doall.1", After: 3, Count: 2},
	}})
	for tick := 1; tick <= 6; tick++ {
		die, perm := inj.CrashNow("doall.1")
		want := tick == 3 || tick == 4
		if die != want || perm {
			t.Errorf("tick %d: die=%v perm=%v, want die=%v perm=false", tick, die, perm, want)
		}
	}
	if die, _ := inj.CrashNow("doall.0"); die {
		t.Error("crash fired on untargeted thread")
	}
	if inj.CrashTick("doall.1") != 6 || inj.CrashTick("doall.0") != 1 {
		t.Errorf("tick counters = %d/%d, want 6/1", inj.CrashTick("doall.1"), inj.CrashTick("doall.0"))
	}
	if inj.Injected() != 2 {
		t.Errorf("injected = %d, want 2", inj.Injected())
	}
}

// TestCrashNowPermanentAndProb: permanence propagates from the spec, and
// probabilistic crashes are reproducible across injector instantiations.
func TestCrashNowPermanentAndProb(t *testing.T) {
	inj := NewInjector(Plan{Seed: 2, Specs: []Spec{
		{Kind: Crash, Thread: "stage1.0", After: 2, Permanent: true},
	}})
	if die, perm := inj.CrashNow("stage1.0"); die || perm {
		t.Error("tick 1 fired early")
	}
	if die, perm := inj.CrashNow("stage1.0"); !die || !perm {
		t.Error("tick 2 not a permanent crash")
	}

	pattern := func() string {
		inj := NewInjector(Plan{Seed: 5, Specs: []Spec{
			{Kind: Crash, Thread: "doall.2", Prob: 0.2},
		}})
		var b strings.Builder
		for i := 0; i < 64; i++ {
			if die, _ := inj.CrashNow("doall.2"); die {
				b.WriteByte('x')
			} else {
				b.WriteByte('.')
			}
		}
		return b.String()
	}
	a, b := pattern(), pattern()
	if a != b {
		t.Errorf("probabilistic crashes not reproducible:\n%s\n%s", a, b)
	}
	if !strings.Contains(a, "x") {
		t.Error("prob=0.2 crash never fired in 64 ticks")
	}
}

// TestValidateRejections exercises every Plan.Validate error path.
func TestValidateRejections(t *testing.T) {
	roster := []string{"doall.0", "doall.1", "stage1.0"}
	cases := []struct {
		name string
		plan Plan
		want string // substring of the expected error; "" = valid
	}{
		{"valid-crash", Plan{Name: "p", Specs: []Spec{
			{Kind: Crash, Thread: "doall.1", After: 3},
		}}, ""},
		{"valid-no-roster", Plan{Name: "p", Specs: []Spec{
			{Kind: Crash, Thread: "ghost.9", After: 1},
		}}, ""}, // roster nil in this case: membership unchecked
		{"prob-out-of-range", Plan{Name: "p", Specs: []Spec{
			{Kind: Transient, Builtin: "alpha", Prob: 1.5},
		}}, "outside [0,1]"},
		{"negative-delay", Plan{Name: "p", Specs: []Spec{
			{Kind: Latency, Builtin: "alpha", After: 1, Delay: -5},
		}}, "negative Delay"},
		{"negative-aborts", Plan{Name: "p", Specs: []Spec{
			{Kind: TMStorm, After: 1, Aborts: -1},
		}}, "negative Aborts"},
		{"thread-on-non-crash", Plan{Name: "p", Specs: []Spec{
			{Kind: Transient, Builtin: "alpha", After: 1, Thread: "doall.1"},
		}}, "applies only to crash"},
		{"permanent-on-non-crash", Plan{Name: "p", Specs: []Spec{
			{Kind: Latency, Builtin: "alpha", After: 1, Permanent: true},
		}}, "applies only to crash"},
		{"crash-without-thread", Plan{Name: "p", Specs: []Spec{
			{Kind: Crash, After: 1},
		}}, "must name a target thread"},
		{"crash-never-fires", Plan{Name: "p", Specs: []Spec{
			{Kind: Crash, Thread: "doall.1"},
		}}, "can never fire"},
		{"permanent-crash-repeats", Plan{Name: "p", Specs: []Spec{
			{Kind: Crash, Thread: "doall.1", After: 1, Count: 3, Permanent: true},
		}}, "cannot repeat"},
		{"nonexistent-thread", Plan{Name: "p", Specs: []Spec{
			{Kind: Crash, Thread: "doall.7", After: 1},
		}}, "nonexistent thread"},
		{"conflicting-perm-overlap", Plan{Name: "p", Specs: []Spec{
			{Kind: Crash, Thread: "doall.1", After: 3, Count: 4},
			{Kind: Crash, Thread: "doall.1", After: 5, Permanent: true},
		}}, "conflicting crash and permanent-crash"},
		{"conflicting-prob-overlaps-everything", Plan{Name: "p", Specs: []Spec{
			{Kind: Crash, Thread: "stage1.0", Prob: 0.1},
			{Kind: Crash, Thread: "stage1.0", After: 9, Permanent: true},
		}}, "conflicting crash and permanent-crash"},
		{"disjoint-windows-ok", Plan{Name: "p", Specs: []Spec{
			{Kind: Crash, Thread: "doall.1", After: 2, Count: 2},
			{Kind: Crash, Thread: "doall.1", After: 9, Permanent: true},
		}}, ""},
		{"different-threads-ok", Plan{Name: "p", Specs: []Spec{
			{Kind: Crash, Thread: "doall.0", After: 3},
			{Kind: Crash, Thread: "doall.1", After: 3, Permanent: true},
		}}, ""},
	}
	for _, tc := range cases {
		r := roster
		if tc.name == "valid-no-roster" {
			r = nil
		}
		err := tc.plan.Validate(r)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error: %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestHasCrashAndDescribe: HasCrash keys the checkpoint layer on/off, and
// crash specs render their target in plan listings.
func TestHasCrashAndDescribe(t *testing.T) {
	none := Plan{Specs: []Spec{{Kind: Transient, Builtin: "alpha", After: 1}}}
	if none.HasCrash() {
		t.Error("HasCrash true without crash specs")
	}
	p := Plan{Name: "reboot", Seed: 4, Specs: []Spec{
		{Kind: Crash, Thread: "stage1.0", After: 5, Permanent: true},
	}}
	if !p.HasCrash() {
		t.Error("HasCrash false with a crash spec")
	}
	s := p.String()
	for _, want := range []string{"crash", "thread=stage1.0", "permanent", "after=5"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan string %q missing %q", s, want)
		}
	}
}

// TestValidateService: the service-mode roster check. Crash specs must pin
// always-on roles — a crash aimed at a scalable worker might never fire
// because the degradation ladder can scale its target away for the whole
// service window.
func TestValidateService(t *testing.T) {
	roster := ServiceRoster{
		Always:   []string{"svc.0", "svc.1"},
		Scalable: []string{"svc.2", "svc.3"},
	}
	ok := Plan{Name: "pinned", Seed: 1, Specs: []Spec{
		{Kind: Crash, Thread: "svc.1", After: 4},
	}}
	if err := ok.ValidateService(roster); err != nil {
		t.Errorf("crash on always-on target rejected: %v", err)
	}
	bad := Plan{Name: "drifting", Seed: 1, Specs: []Spec{
		{Kind: Crash, Thread: "svc.3", After: 4, Permanent: true},
	}}
	err := bad.ValidateService(roster)
	if err == nil || !strings.Contains(err.Error(), "scale away") {
		t.Errorf("crash on scalable-only target: err = %v, want scale-away rejection", err)
	}
	// Non-crash specs are untouched by the roster rule, and unknown crash
	// threads still fail the structural check over the full dynamic roster.
	lat := Plan{Name: "latency", Seed: 1, Specs: []Spec{
		{Kind: Latency, Builtin: "*", After: 1, Count: 1, Delay: 100},
	}}
	if err := lat.ValidateService(roster); err != nil {
		t.Errorf("non-crash spec rejected: %v", err)
	}
	ghost := Plan{Name: "ghost", Seed: 1, Specs: []Spec{
		{Kind: Crash, Thread: "svc.9", After: 4},
	}}
	if err := ghost.ValidateService(roster); err == nil {
		t.Error("crash on a thread outside the dynamic roster accepted")
	}
}

// TestSlowNowDeterministicWindow: a Straggler spec must open exactly its
// [After, After+Count) tick window on the target role, return the factor
// inside it and 1.0 outside, leave other roles untouched, and replay
// bit-identically — the property the steal layer's determinism rests on.
func TestSlowNowDeterministicWindow(t *testing.T) {
	plan := Plan{Name: "slow", Seed: 5, Specs: []Spec{
		{Kind: Straggler, Thread: "doall.1", After: 3, Count: 2, Factor: 4},
	}}
	run := func() []float64 {
		inj := NewInjector(plan)
		var out []float64
		for i := 0; i < 6; i++ {
			out = append(out, inj.SlowNow("doall.1"))
			if f := inj.SlowNow("doall.2"); f != 1 {
				t.Fatalf("untargeted role slowed at tick %d: %g", i+1, f)
			}
		}
		if got := inj.SlowTick("doall.1"); got != 6 {
			t.Fatalf("SlowTick = %d, want 6", got)
		}
		return out
	}
	want := []float64{1, 1, 4, 4, 1, 1}
	a := run()
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("tick %d: factor %g, want %g (window [3,5))", i+1, a[i], want[i])
		}
	}
	b := run()
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("replay diverged at tick %d: %g vs %g", i+1, a[i], b[i])
		}
	}

	// Overlapping specs: the largest firing factor wins.
	worst := Plan{Name: "worst", Seed: 5, Specs: []Spec{
		{Kind: Straggler, Thread: "doall.1", After: 1, Count: 4, Factor: 2},
		{Kind: Straggler, Thread: "doall.1", After: 2, Count: 1, Factor: 8},
	}}
	inj := NewInjector(worst)
	got := []float64{inj.SlowNow("doall.1"), inj.SlowNow("doall.1"), inj.SlowNow("doall.1")}
	if got[0] != 2 || got[1] != 8 || got[2] != 2 {
		t.Errorf("overlapping factors = %v, want [2 8 2]", got)
	}
}

// TestValidateStragglerRejections: the straggler-specific Validate rules —
// factor, firing window, target thread, and kind-exclusive fields.
func TestValidateStragglerRejections(t *testing.T) {
	roster := []string{"doall.0", "doall.1"}
	cases := []struct {
		name string
		plan Plan
		want string // substring of the expected error; "" = valid
	}{
		{"valid-straggler", Plan{Name: "p", Specs: []Spec{
			{Kind: Straggler, Thread: "doall.1", After: 1, Count: 8, Factor: 4},
		}}, ""},
		{"valid-probabilistic", Plan{Name: "p", Specs: []Spec{
			{Kind: Straggler, Thread: "doall.0", Prob: 0.25, Factor: 2},
		}}, ""},
		{"no-thread", Plan{Name: "p", Specs: []Spec{
			{Kind: Straggler, After: 1, Factor: 4},
		}}, "must name a target thread"},
		{"factor-one", Plan{Name: "p", Specs: []Spec{
			{Kind: Straggler, Thread: "doall.1", After: 1, Factor: 1},
		}}, "Factor > 1"},
		{"factor-missing", Plan{Name: "p", Specs: []Spec{
			{Kind: Straggler, Thread: "doall.1", After: 1},
		}}, "Factor > 1"},
		{"never-fires", Plan{Name: "p", Specs: []Spec{
			{Kind: Straggler, Thread: "doall.1", Factor: 4},
		}}, "can never fire"},
		{"factor-on-crash", Plan{Name: "p", Specs: []Spec{
			{Kind: Crash, Thread: "doall.1", After: 1, Factor: 4},
		}}, "applies only to straggler"},
		{"factor-on-latency", Plan{Name: "p", Specs: []Spec{
			{Kind: Latency, Builtin: "alpha", After: 1, Factor: 2},
		}}, "applies only to straggler"},
		{"permanent-straggler", Plan{Name: "p", Specs: []Spec{
			{Kind: Straggler, Thread: "doall.1", After: 1, Factor: 4, Permanent: true},
		}}, "applies only to crash"},
		{"ghost-thread", Plan{Name: "p", Specs: []Spec{
			{Kind: Straggler, Thread: "doall.7", After: 1, Factor: 4},
		}}, "nonexistent thread"},
	}
	for _, tc := range cases {
		err := tc.plan.Validate(roster)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error: %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestDynamicRoleSalvage: salvage runners are spawned at join time, so no
// static roster lists them; Validate must accept them by shape — and only
// by that shape.
func TestDynamicRoleSalvage(t *testing.T) {
	roster := []string{"doall.0", "doall.1"}
	ok := Plan{Name: "p", Specs: []Spec{
		{Kind: Crash, Thread: "salvage.1.0", After: 2},
		{Kind: Straggler, Thread: "salvage.3.2", After: 1, Factor: 4},
	}}
	if err := ok.Validate(roster); err != nil {
		t.Errorf("salvage roles rejected: %v", err)
	}
	for _, bad := range []string{"salvage.1", "salvage.x.0", "salvage.1.", "salvage..2", "scavenge.1.0"} {
		p := Plan{Name: "p", Specs: []Spec{{Kind: Crash, Thread: bad, After: 2}}}
		if err := p.Validate(roster); err == nil {
			t.Errorf("malformed dynamic role %q accepted", bad)
		}
	}
}

// TestValidateServiceStraggler: the roster rule covers stragglers too — a
// scalable worker can be parked for the whole service window, consuming no
// slow ticks, so a straggler aimed at one might deterministically never
// fire.
func TestValidateServiceStraggler(t *testing.T) {
	roster := ServiceRoster{
		Always:   []string{"svc.0", "svc.1"},
		Scalable: []string{"svc.2"},
	}
	ok := Plan{Name: "pinned", Specs: []Spec{
		{Kind: Straggler, Thread: "svc.1", After: 1, Factor: 4},
	}}
	if err := ok.ValidateService(roster); err != nil {
		t.Errorf("straggler on always-on target rejected: %v", err)
	}
	bad := Plan{Name: "drifting", Specs: []Spec{
		{Kind: Straggler, Thread: "svc.2", After: 1, Factor: 4},
	}}
	err := bad.ValidateService(roster)
	if err == nil || !strings.Contains(err.Error(), "scale away") {
		t.Errorf("straggler on scalable-only target: err = %v, want scale-away rejection", err)
	}
}
