// Package callgraph builds the program call graph over IR functions and
// answers the transitive-call queries needed by the COMMSET well-formedness
// checks (paper Section 3.1): no transitive calls between members of one
// set, and an acyclic COMMSET graph.
package callgraph

import (
	"sort"

	"repro/internal/ir"
)

// Graph is a program call graph. Builtin callees appear as leaf nodes.
type Graph struct {
	// Callees maps each function to the functions and builtins it calls
	// directly, deduplicated and sorted.
	Callees map[string][]string

	// reach caches transitive reachability.
	reach map[string]map[string]bool
}

// Build constructs the call graph of prog.
func Build(prog *ir.Program) *Graph {
	g := &Graph{Callees: map[string][]string{}, reach: map[string]map[string]bool{}}
	for _, name := range prog.Order {
		f := prog.Funcs[name]
		seen := map[string]bool{}
		var callees []string
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall && !seen[in.Name] {
					seen[in.Name] = true
					callees = append(callees, in.Name)
				}
			}
		}
		sort.Strings(callees)
		g.Callees[name] = callees
	}
	return g
}

// reachable computes the transitive callee set of from (excluding from
// itself unless it is recursive).
func (g *Graph) reachable(from string) map[string]bool {
	if r, ok := g.reach[from]; ok {
		return r
	}
	r := map[string]bool{}
	var stack []string
	stack = append(stack, g.Callees[from]...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if r[n] {
			continue
		}
		r[n] = true
		stack = append(stack, g.Callees[n]...)
	}
	g.reach[from] = r
	return r
}

// Calls reports whether from transitively calls to.
func (g *Graph) Calls(from, to string) bool {
	return g.reachable(from)[to]
}

// Recursive reports whether fn can transitively call itself.
func (g *Graph) Recursive(fn string) bool { return g.Calls(fn, fn) }
