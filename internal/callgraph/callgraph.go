// Package callgraph builds the program call graph over IR functions and
// answers the transitive-call queries needed by the COMMSET well-formedness
// checks (paper Section 3.1): no transitive calls between members of one
// set, and an acyclic COMMSET graph.
package callgraph

import (
	"sort"

	"repro/internal/ir"
)

// Graph is a program call graph. Builtin callees appear as leaf nodes.
type Graph struct {
	// Callees maps each function to the functions and builtins it calls
	// directly, deduplicated and sorted.
	Callees map[string][]string

	// reach caches transitive reachability.
	reach map[string]map[string]bool
}

// Build constructs the call graph of prog.
func Build(prog *ir.Program) *Graph {
	g := &Graph{Callees: map[string][]string{}, reach: map[string]map[string]bool{}}
	for _, name := range prog.Order {
		f := prog.Funcs[name]
		seen := map[string]bool{}
		var callees []string
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall && !seen[in.Name] {
					seen[in.Name] = true
					callees = append(callees, in.Name)
				}
			}
		}
		sort.Strings(callees)
		g.Callees[name] = callees
	}
	return g
}

// reachable computes the transitive callee set of from (excluding from
// itself unless it is recursive).
func (g *Graph) reachable(from string) map[string]bool {
	if r, ok := g.reach[from]; ok {
		return r
	}
	r := map[string]bool{}
	var stack []string
	stack = append(stack, g.Callees[from]...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if r[n] {
			continue
		}
		r[n] = true
		stack = append(stack, g.Callees[n]...)
	}
	g.reach[from] = r
	return r
}

// Calls reports whether from transitively calls to.
func (g *Graph) Calls(from, to string) bool {
	return g.reachable(from)[to]
}

// Recursive reports whether fn can transitively call itself.
func (g *Graph) Recursive(fn string) bool { return g.Calls(fn, fn) }

// SCCs returns the strongly connected components of the call graph
// restricted to the given function universe (builtin leaves and unknown
// callees are skipped), in reverse topological order: every component is
// emitted after all components it calls into. Summary-based analyses
// process components in this order so callee summaries are final before
// callers read them, and iterate to a fixed point only within a component
// (mutual recursion).
//
// The implementation is Tarjan's algorithm, iterative so deep call chains
// cannot overflow the Go stack, seeded in sorted order for determinism.
func (g *Graph) SCCs(funcs map[string]bool) [][]string {
	names := make([]string, 0, len(funcs))
	for n := range funcs {
		names = append(names, n)
	}
	sort.Strings(names)

	index := map[string]int{}
	lowlink := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0

	type frame struct {
		fn string
		ci int // next callee index to visit
	}
	for _, root := range names {
		if _, seen := index[root]; seen {
			continue
		}
		work := []frame{{fn: root}}
		index[root] = next
		lowlink[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(work) > 0 {
			f := &work[len(work)-1]
			callees := g.Callees[f.fn]
			advanced := false
			for f.ci < len(callees) {
				c := callees[f.ci]
				f.ci++
				if !funcs[c] {
					continue
				}
				if _, seen := index[c]; !seen {
					index[c] = next
					lowlink[c] = next
					next++
					stack = append(stack, c)
					onStack[c] = true
					work = append(work, frame{fn: c})
					advanced = true
					break
				}
				if onStack[c] && index[c] < lowlink[f.fn] {
					lowlink[f.fn] = index[c]
				}
			}
			if advanced {
				continue
			}
			done := work[len(work)-1].fn
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1].fn
				if lowlink[done] < lowlink[parent] {
					lowlink[parent] = lowlink[done]
				}
			}
			if lowlink[done] == index[done] {
				var comp []string
				for {
					n := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[n] = false
					comp = append(comp, n)
					if n == done {
						break
					}
				}
				sort.Strings(comp)
				sccs = append(sccs, comp)
			}
		}
	}
	return sccs
}
