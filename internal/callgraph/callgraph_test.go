package callgraph

import (
	"testing"

	"repro/internal/ir"
)

func mkProg(edges map[string][]string) *ir.Program {
	p := &ir.Program{}
	for name, callees := range edges {
		f := &ir.Func{Name: name}
		b := f.NewBlock()
		for _, c := range callees {
			b.Instrs = append(b.Instrs, &ir.Instr{Op: ir.OpCall, Dst: -1, Name: c})
		}
		b.Instrs = append(b.Instrs, &ir.Instr{Op: ir.OpRet})
		f.Renumber()
		p.AddFunc(f)
	}
	return p
}

func TestDirectAndTransitiveCalls(t *testing.T) {
	g := Build(mkProg(map[string][]string{
		"main": {"a", "b"},
		"a":    {"c"},
		"b":    {},
		"c":    {"print"}, // print is a builtin leaf
	}))
	if !g.Calls("main", "a") || !g.Calls("main", "c") || !g.Calls("main", "print") {
		t.Error("transitive reachability broken")
	}
	if g.Calls("b", "c") || g.Calls("c", "a") {
		t.Error("false positives")
	}
}

func TestRecursionDetection(t *testing.T) {
	g := Build(mkProg(map[string][]string{
		"self": {"self"},
		"a":    {"b"},
		"b":    {"a"},
		"leaf": {},
	}))
	if !g.Recursive("self") {
		t.Error("direct recursion missed")
	}
	if !g.Recursive("a") || !g.Recursive("b") {
		t.Error("mutual recursion missed")
	}
	if g.Recursive("leaf") {
		t.Error("leaf is not recursive")
	}
}

func TestDuplicateCallSitesDeduplicated(t *testing.T) {
	g := Build(mkProg(map[string][]string{
		"f": {"g", "g", "g"},
		"g": {},
	}))
	if n := len(g.Callees["f"]); n != 1 {
		t.Errorf("callees of f = %d, want 1 (deduplicated)", n)
	}
}

func TestReachabilityCached(t *testing.T) {
	g := Build(mkProg(map[string][]string{
		"f": {"g"},
		"g": {"h"},
		"h": {},
	}))
	// Two queries exercise the cache path.
	if !g.Calls("f", "h") || !g.Calls("f", "h") {
		t.Error("cached query broken")
	}
}
