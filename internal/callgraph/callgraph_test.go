package callgraph

import (
	"testing"

	"repro/internal/ir"
)

func mkProg(edges map[string][]string) *ir.Program {
	p := &ir.Program{}
	for name, callees := range edges {
		f := &ir.Func{Name: name}
		b := f.NewBlock()
		for _, c := range callees {
			b.Instrs = append(b.Instrs, &ir.Instr{Op: ir.OpCall, Dst: -1, Name: c})
		}
		b.Instrs = append(b.Instrs, &ir.Instr{Op: ir.OpRet})
		f.Renumber()
		p.AddFunc(f)
	}
	return p
}

func TestDirectAndTransitiveCalls(t *testing.T) {
	g := Build(mkProg(map[string][]string{
		"main": {"a", "b"},
		"a":    {"c"},
		"b":    {},
		"c":    {"print"}, // print is a builtin leaf
	}))
	if !g.Calls("main", "a") || !g.Calls("main", "c") || !g.Calls("main", "print") {
		t.Error("transitive reachability broken")
	}
	if g.Calls("b", "c") || g.Calls("c", "a") {
		t.Error("false positives")
	}
}

func TestRecursionDetection(t *testing.T) {
	g := Build(mkProg(map[string][]string{
		"self": {"self"},
		"a":    {"b"},
		"b":    {"a"},
		"leaf": {},
	}))
	if !g.Recursive("self") {
		t.Error("direct recursion missed")
	}
	if !g.Recursive("a") || !g.Recursive("b") {
		t.Error("mutual recursion missed")
	}
	if g.Recursive("leaf") {
		t.Error("leaf is not recursive")
	}
}

func TestDuplicateCallSitesDeduplicated(t *testing.T) {
	g := Build(mkProg(map[string][]string{
		"f": {"g", "g", "g"},
		"g": {},
	}))
	if n := len(g.Callees["f"]); n != 1 {
		t.Errorf("callees of f = %d, want 1 (deduplicated)", n)
	}
}

func TestReachabilityCached(t *testing.T) {
	g := Build(mkProg(map[string][]string{
		"f": {"g"},
		"g": {"h"},
		"h": {},
	}))
	// Two queries exercise the cache path.
	if !g.Calls("f", "h") || !g.Calls("f", "h") {
		t.Error("cached query broken")
	}
}

func TestSCCsReverseTopoOrder(t *testing.T) {
	// main -> {a, b}; a <-> b mutual recursion; b -> leaf; solo self-loop.
	g := Build(mkProg(map[string][]string{
		"main": {"a", "b"},
		"a":    {"b"},
		"b":    {"a", "leaf", "builtin_x"},
		"leaf": {},
		"solo": {"solo"},
	}))
	universe := map[string]bool{"main": true, "a": true, "b": true, "leaf": true, "solo": true}
	sccs := g.SCCs(universe)

	pos := map[string]int{}
	for i, comp := range sccs {
		for _, fn := range comp {
			if _, dup := pos[fn]; dup {
				t.Fatalf("%s appears in two components", fn)
			}
			pos[fn] = i
		}
	}
	for _, fn := range []string{"main", "a", "b", "leaf", "solo"} {
		if _, ok := pos[fn]; !ok {
			t.Fatalf("%s missing from SCCs", fn)
		}
	}
	if _, ok := pos["builtin_x"]; ok {
		t.Error("builtin leaf outside the universe must be skipped")
	}
	// a and b are mutually recursive: one component.
	if pos["a"] != pos["b"] {
		t.Errorf("a and b in different components: %d vs %d", pos["a"], pos["b"])
	}
	// Reverse topological: callees before callers.
	if !(pos["leaf"] < pos["a"]) {
		t.Errorf("leaf (callee) must precede the a/b component: %d vs %d", pos["leaf"], pos["a"])
	}
	if !(pos["a"] < pos["main"]) {
		t.Errorf("a/b component must precede main: %d vs %d", pos["a"], pos["main"])
	}
}

func TestSCCsDeterministic(t *testing.T) {
	edges := map[string][]string{
		"m": {"x", "y", "z"},
		"x": {"y"},
		"y": {"x"},
		"z": {},
	}
	universe := map[string]bool{"m": true, "x": true, "y": true, "z": true}
	first := Build(mkProg(edges)).SCCs(universe)
	for i := 0; i < 10; i++ {
		again := Build(mkProg(edges)).SCCs(universe)
		if len(again) != len(first) {
			t.Fatalf("run %d: %d components, want %d", i, len(again), len(first))
		}
		for j := range first {
			if len(first[j]) != len(again[j]) {
				t.Fatalf("run %d: component %d sizes differ", i, j)
			}
			for k := range first[j] {
				if first[j][k] != again[j][k] {
					t.Fatalf("run %d: component %d: %v vs %v", i, j, again[j], first[j])
				}
			}
		}
	}
}
