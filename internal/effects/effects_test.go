package effects

import (
	"testing"

	"repro/internal/ir"
)

func callInstr(name string) *ir.Instr {
	return &ir.Instr{Op: ir.OpCall, Dst: -1, Name: name}
}

// buildProg wires: leaf (builtin io) <- mid <- top, plus recursive pair
// a <-> b where b also stores a global.
func buildProg() *ir.Program {
	p := &ir.Program{}
	mk := func(name string, body ...*ir.Instr) {
		f := &ir.Func{Name: name}
		b := f.NewBlock()
		b.Instrs = append(b.Instrs, body...)
		b.Instrs = append(b.Instrs, &ir.Instr{Op: ir.OpRet})
		f.Renumber()
		p.AddFunc(f)
	}
	mk("mid", callInstr("io_write"))
	mk("top",
		callInstr("mid"),
		&ir.Instr{Op: ir.OpLoadGlobal, Dst: 0, Name: "counter"},
	)
	mk("a", callInstr("b"))
	mk("b",
		callInstr("a"),
		&ir.Instr{Op: ir.OpStoreGlobal, Name: "shared", A: 0},
	)
	return p
}

func testTable() Table {
	return Table{
		"io_write": {Writes: []Loc{TagLoc("io")}},
		"io_read":  {Reads: []Loc{TagLoc("io")}},
	}
}

func TestSummarizeTransitive(t *testing.T) {
	s := Summarize(buildProg(), testTable())
	mid := s.Fns["mid"]
	if !mid.Writes[TagLoc("io")] {
		t.Error("mid must write io")
	}
	top := s.Fns["top"]
	if !top.Writes[TagLoc("io")] {
		t.Error("top must inherit mid's io write")
	}
	if !top.Reads[GlobalLoc("counter")] {
		t.Error("top must read g:counter")
	}
}

func TestSummarizeRecursionFixpoint(t *testing.T) {
	s := Summarize(buildProg(), testTable())
	for _, fn := range []string{"a", "b"} {
		if !s.Fns[fn].Writes[GlobalLoc("shared")] {
			t.Errorf("%s must write g:shared through the recursive cycle", fn)
		}
	}
}

func TestCallEffects(t *testing.T) {
	s := Summarize(buildProg(), testTable())
	r, w := s.CallEffects("top")
	if !w[TagLoc("io")] || !r[GlobalLoc("counter")] {
		t.Errorf("top effects r=%v w=%v", r.Sorted(), w.Sorted())
	}
	r, w = s.CallEffects("io_read")
	if !r[TagLoc("io")] || len(w) != 0 {
		t.Errorf("builtin effects r=%v w=%v", r.Sorted(), w.Sorted())
	}
	r, w = s.CallEffects("unknown")
	if len(r) != 0 || len(w) != 0 {
		t.Error("unknown callee must have empty effects")
	}
}

func TestSetOperations(t *testing.T) {
	s := Set{}
	if !s.Add(TagLoc("a"), TagLoc("b")) {
		t.Error("Add should report growth")
	}
	if s.Add(TagLoc("a")) {
		t.Error("re-adding should not grow")
	}
	o := Set{}
	o.Add(TagLoc("b"), TagLoc("c"))
	if !s.Intersects(o) {
		t.Error("sets share b")
	}
	only := Set{}
	only.Add(TagLoc("z"))
	if s.Intersects(only) {
		t.Error("disjoint sets must not intersect")
	}
	if !s.AddSet(o) || s.AddSet(o) {
		t.Error("AddSet growth reporting wrong")
	}
	sorted := s.Sorted()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] >= sorted[i] {
			t.Errorf("Sorted not ordered: %v", sorted)
		}
	}
}

func TestLocConstructors(t *testing.T) {
	if GlobalLoc("x") != Loc("g:x") {
		t.Error("GlobalLoc format")
	}
	if TagLoc("fs") != Loc("t:fs") {
		t.Error("TagLoc format")
	}
}

func TestInstRendering(t *testing.T) {
	if got := (Inst{}).String(); got != "" {
		t.Errorf("zero Inst = %q, want empty", got)
	}
	if got := ConstInst(3).String(); got != "#3" {
		t.Errorf("ConstInst(3) = %q", got)
	}
	if got := SymInst("g:cand").String(); got != "#<g:cand>" {
		t.Errorf("SymInst = %q", got)
	}
	q := QLoc{Base: TagLoc("bitmaps"), Inst: ConstInst(3)}
	if got := q.String(); got != "t:bitmaps#3" {
		t.Errorf("QLoc = %q", got)
	}
	if got := (QLoc{Base: TagLoc("bitmaps")}).String(); got != "t:bitmaps" {
		t.Errorf("unqualified QLoc = %q", got)
	}
}

func TestInstanceArgAndAllocatesFresh(t *testing.T) {
	bm := TagLoc("bitmaps")
	tbl := Table{
		"bitmap_new": {
			Reads:     []Loc{bm},
			Writes:    []Loc{bm},
			Allocates: []Loc{bm},
		},
		"bitmap_set": {
			Reads:      []Loc{bm},
			Writes:     []Loc{bm},
			KeyedBy:    map[Loc]int{bm: 1},
			InstanceBy: map[Loc]int{bm: 0},
		},
	}
	s := Summarize(buildProg(), tbl)

	if idx, ok := s.InstanceArg("bitmap_set", bm); !ok || idx != 0 {
		t.Errorf("InstanceArg(bitmap_set) = %d, %v; want 0, true", idx, ok)
	}
	if _, ok := s.InstanceArg("bitmap_set", TagLoc("io")); ok {
		t.Error("InstanceArg must miss for an uninstanced location")
	}
	if _, ok := s.InstanceArg("bitmap_new", bm); ok {
		t.Error("InstanceArg must miss for a declaration without InstanceBy")
	}
	if _, ok := s.InstanceArg("nope", bm); ok {
		t.Error("InstanceArg must miss for an unknown callee")
	}

	if !s.AllocatesFresh("bitmap_new", bm) {
		t.Error("bitmap_new must allocate a fresh bitmaps handle")
	}
	if s.AllocatesFresh("bitmap_new", TagLoc("io")) {
		t.Error("AllocatesFresh must miss for a location not in Allocates")
	}
	if s.AllocatesFresh("bitmap_set", bm) {
		t.Error("bitmap_set does not allocate")
	}

	if k, ok := s.KeyedArg("bitmap_set", bm); !ok || k != 1 {
		t.Errorf("KeyedArg(bitmap_set) = %d, %v; want 1, true", k, ok)
	}
}
