// Package effects provides the memory-dependence abstraction of the COMMSET
// compiler.
//
// The paper's LLVM implementation uses alias analysis over real memory; the
// parallelism-inhibiting dependences it cares about are those on externally
// visible state — file systems, consoles, RNG seeds, shared containers. We
// model memory as a set of abstract locations:
//
//   - one location per MiniC global variable ("g:<name>"),
//   - one location per substrate effect tag ("t:<tag>"), declared by each
//     builtin (e.g. the filesystem, the console, an RNG seed, a histogram),
//   - local variable slots of the function under analysis, handled directly
//     by the PDG builder via slot identity.
//
// Every builtin declares the tags it reads and writes; Summarize propagates
// effects bottom-up through the call graph (with a fixpoint for recursion)
// so that any call instruction's abstract reads/writes are known.
package effects

import (
	"fmt"
	"sort"

	"repro/internal/ir"
)

// Loc is an abstract memory location.
type Loc string

// GlobalLoc returns the location of a MiniC global variable.
func GlobalLoc(name string) Loc { return Loc("g:" + name) }

// TagLoc returns the location of a substrate effect tag.
func TagLoc(tag string) Loc { return Loc("t:" + tag) }

// InstKind discriminates instance descriptors of a qualified location.
type InstKind int

// Instance descriptor kinds, from most to least precise.
const (
	// InstNone: the location is unqualified (whole abstract location).
	InstNone InstKind = iota
	// InstConst: the handle is a compile-time integer constant.
	InstConst
	// InstSym: the handle is a symbolic identity (an allocation site, an
	// invariant register, or a parameter), named by Sym.
	InstSym
)

// Inst is the optional instance component of a location: which handle
// (bitmap, open file, pool slot, ...) of the abstract location an access
// touches. The zero value is "no instance information".
type Inst struct {
	Kind InstKind
	C    int64  // InstConst payload
	Sym  string // InstSym payload
}

// ConstInst builds a constant-handle instance.
func ConstInst(c int64) Inst { return Inst{Kind: InstConst, C: c} }

// SymInst builds a symbolic-handle instance.
func SymInst(sym string) Inst { return Inst{Kind: InstSym, Sym: sym} }

// String renders the instance component ("#3", "#<g:bm1>", "" for none).
func (i Inst) String() string {
	switch i.Kind {
	case InstConst:
		return fmt.Sprintf("#%d", i.C)
	case InstSym:
		return "#<" + i.Sym + ">"
	}
	return ""
}

// QLoc is an instance-qualified abstract location: a base location plus an
// optional handle descriptor. "t:bitmaps#3" is bitmap 3 of the bitmap
// registry; "t:bitmaps#<g:cand>" is the bitmap held by global cand.
type QLoc struct {
	Base Loc
	Inst Inst
}

// String renders the qualified location.
func (q QLoc) String() string { return string(q.Base) + q.Inst.String() }

// Decl lists the abstract locations an operation reads and writes.
//
// KeyedBy optionally records, per location, the index of the argument that
// selects the disjoint element of that location the operation touches (e.g.
// bitmap_set(bm, key) touches only bit `key` of "t:bitmaps", so KeyedBy maps
// that location to argument 1). The analyzer uses it to recognize that a
// COMMSETPREDICATE over the keying argument genuinely constrains accesses to
// the location even without a lock.
// InstanceBy optionally records, per location, the index of the argument
// that selects which *instance* (handle) of that location the operation
// touches (e.g. bitmap_count(bm) reads only bitmap `bm` of "t:bitmaps",
// so InstanceBy maps that location to argument 0). Where KeyedBy names the
// disjoint element within one handle, InstanceBy names the handle itself:
// two operations on provably distinct handles never conflict on the
// location, even when neither is keyed.
//
// Allocates optionally lists the locations for which the operation returns
// a globally fresh instance handle (e.g. bitmap_new returns a handle no
// earlier or concurrent call has ever returned). Freshness lets the
// analyzer prove handles rooted at distinct allocation sites distinct.
type Decl struct {
	Reads  []Loc
	Writes []Loc

	KeyedBy map[Loc]int

	InstanceBy map[Loc]int
	Allocates  []Loc
}

// Table maps builtin names to their declared effects.
type Table map[string]Decl

// Set is a deduplicated set of locations.
type Set map[Loc]bool

// Add inserts locations, reporting whether the set grew.
func (s Set) Add(locs ...Loc) bool {
	grew := false
	for _, l := range locs {
		if !s[l] {
			s[l] = true
			grew = true
		}
	}
	return grew
}

// AddSet merges another set, reporting growth.
func (s Set) AddSet(o Set) bool {
	grew := false
	for l := range o {
		if !s[l] {
			s[l] = true
			grew = true
		}
	}
	return grew
}

// Sorted returns the locations in deterministic order.
func (s Set) Sorted() []Loc {
	out := make([]Loc, 0, len(s))
	for l := range s {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Intersects reports whether two sets share a location.
func (s Set) Intersects(o Set) bool {
	small, big := s, o
	if len(big) < len(small) {
		small, big = big, small
	}
	for l := range small {
		if big[l] {
			return true
		}
	}
	return false
}

// FnEffects summarizes one function's transitive reads and writes.
type FnEffects struct {
	Reads  Set
	Writes Set
}

// Summary holds effect summaries for every function in a program.
type Summary struct {
	Fns      map[string]*FnEffects
	Builtins Table
}

// Summarize computes, for each user function, the set of abstract locations
// transitively read and written: its own global accesses, its builtins'
// declared tags, and its callees' summaries, iterated to a fixpoint to
// handle recursion.
func Summarize(prog *ir.Program, builtins Table) *Summary {
	s := &Summary{Fns: map[string]*FnEffects{}, Builtins: builtins}
	for _, name := range prog.Order {
		s.Fns[name] = &FnEffects{Reads: Set{}, Writes: Set{}}
	}
	changed := true
	for changed {
		changed = false
		for _, name := range prog.Order {
			f := prog.Funcs[name]
			fe := s.Fns[name]
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					switch in.Op {
					case ir.OpLoadGlobal:
						if fe.Reads.Add(GlobalLoc(in.Name)) {
							changed = true
						}
					case ir.OpStoreGlobal:
						if fe.Writes.Add(GlobalLoc(in.Name)) {
							changed = true
						}
					case ir.OpCall:
						if callee, ok := s.Fns[in.Name]; ok {
							if fe.Reads.AddSet(callee.Reads) {
								changed = true
							}
							if fe.Writes.AddSet(callee.Writes) {
								changed = true
							}
						} else if decl, ok := builtins[in.Name]; ok {
							if fe.Reads.Add(decl.Reads...) {
								changed = true
							}
							if fe.Writes.Add(decl.Writes...) {
								changed = true
							}
						}
					}
				}
			}
		}
	}
	return s
}

// KeyedArg reports which argument of builtin name keys its accesses to loc,
// if the builtin declares one. User functions never declare keys directly;
// the analyzer reasons about their bodies instead.
func (s *Summary) KeyedArg(name string, loc Loc) (int, bool) {
	decl, ok := s.Builtins[name]
	if !ok || decl.KeyedBy == nil {
		return -1, false
	}
	idx, ok := decl.KeyedBy[loc]
	return idx, ok
}

// InstanceArg reports which argument of builtin name selects the handle of
// loc it touches, if the builtin declares one. As with KeyedArg, user
// functions never declare instances directly; the analyzer summarizes
// their bodies instead.
func (s *Summary) InstanceArg(name string, loc Loc) (int, bool) {
	decl, ok := s.Builtins[name]
	if !ok || decl.InstanceBy == nil {
		return -1, false
	}
	idx, ok := decl.InstanceBy[loc]
	return idx, ok
}

// AllocatesFresh reports whether builtin name returns a globally fresh
// instance handle of loc.
func (s *Summary) AllocatesFresh(name string, loc Loc) bool {
	decl, ok := s.Builtins[name]
	if !ok {
		return false
	}
	for _, l := range decl.Allocates {
		if l == loc {
			return true
		}
	}
	return false
}

// CallEffects returns the abstract reads/writes of a call to name: the
// summary for user functions, the declared effects for builtins, and empty
// sets for unknown names.
func (s *Summary) CallEffects(name string) (reads, writes Set) {
	if fe, ok := s.Fns[name]; ok {
		return fe.Reads, fe.Writes
	}
	if decl, ok := s.Builtins[name]; ok {
		r, w := Set{}, Set{}
		r.Add(decl.Reads...)
		w.Add(decl.Writes...)
		return r, w
	}
	return Set{}, Set{}
}
