package workloads

import (
	"fmt"

	"repro/internal/builtins"
)

// hmmerSrc reproduces 456.hmmer's main loop (paper Section 5.1): each
// iteration generates a random protein sequence through the shared-seed
// RNG, scores it against a freshly allocated matrix, updates the score
// histogram, and frees the matrix. Three annotation sites break all loop
// carried dependences: (a) the RNG wrapper is self-commutative, (b) the
// histogram update is self-commutative (an abstract SUM), and (c) the
// matrix allocation and deallocation commute on separate iterations.
const hmmerSrc = `
#pragma commset decl ASET
#pragma commset predicate ASET (i1)(i2) : i1 != i2

#pragma commset member SELF
int gen_sequence(int len) {
	return seq_gen(len);
}

#pragma commset member SELF
void tally(int score) {
	histogram_add(score);
}

void main() {
	for (int i = 0; i < 220; i++) {
		int seq = gen_sequence(48);
		int mat = 0;
		#pragma commset member ASET(i), SELF
		{
			mat = matrix_alloc(100);
		}
		int score = hmm_score(seq, mat);
		tally(score);
		#pragma commset member ASET(i), SELF
		{
			matrix_free(mat);
		}
	}
	print_int(histogram_count());
}
`

// hmmerPipeSrc drops the SELF annotation from the RNG wrapper: the
// generator keeps its loop-carried self-dependence, so PS-DSWP moves it
// into the sequential first stage, "off the critical path" — the paper's
// three-stage pipeline.
const hmmerPipeSrc = `
#pragma commset decl ASET
#pragma commset predicate ASET (i1)(i2) : i1 != i2

int gen_sequence(int len) {
	return seq_gen(len);
}

#pragma commset member SELF
void tally(int score) {
	histogram_add(score);
}

void main() {
	for (int i = 0; i < 220; i++) {
		int seq = gen_sequence(48);
		int mat = 0;
		#pragma commset member ASET(i), SELF
		{
			mat = matrix_alloc(100);
		}
		int score = hmm_score(seq, mat);
		tally(score);
		#pragma commset member ASET(i), SELF
		{
			matrix_free(mat);
		}
	}
	print_int(histogram_count());
}
`

// Hmmer builds the 456.hmmer workload.
func Hmmer() *Workload {
	return &Workload{
		Name:    "456.hmmer",
		Origin:  "SPEC2006",
		MainPct: "99%",
		Variants: []Variant{
			{Name: "comm", Source: hmmerSrc},
			{Name: "pipe", Source: hmmerPipeSrc},
		},
		Setup: func(w *builtins.World) { w.Seed(0x1234567) },
		Validate: func(seq, par *builtins.World, ordered bool) error {
			// RNG permutations change individual scores (allowed — "any
			// permutation of a random number sequence still preserves the
			// properties of the distribution"); the histogram entry count
			// and matrix balance are invariant.
			if len(seq.Console) != len(par.Console) {
				return fmt.Errorf("hmmer: console length %d vs %d", len(seq.Console), len(par.Console))
			}
			last := len(seq.Console) - 1
			if seq.Console[last] != par.Console[last] {
				return fmt.Errorf("hmmer: histogram count %s vs %s", seq.Console[last], par.Console[last])
			}
			if par.LiveMatrices() != 0 {
				return fmt.Errorf("hmmer: %d matrices leaked", par.LiveMatrices())
			}
			return nil
		},
		TM:          true,
		LibOK:       false,
		PaperBest:   5.8,
		PaperScheme: "DOALL + Spin",
		PaperAnnot:  9,
		PaperSLOC:   20658,
		Features:    "PC, C&I, S&G",
		Transforms:  "DOALL, PS-DSWP",
	}
}
