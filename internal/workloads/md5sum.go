package workloads

import (
	"fmt"

	"repro/internal/builtins"
)

// md5sumSrc is the running example of the paper (Figure 1): the main loop
// opens each input file, computes its digest through mdfile — whose fread
// block is exported as the named optional block READB — prints the digest,
// and closes the file. FSET groups the file-operation blocks predicated on
// the loop induction variable; each block is also in its own Self set; the
// client enables READB into the predicated Self set SSET.
const md5sumSrc = `
#pragma commset decl FSET
#pragma commset decl self SSET
#pragma commset predicate FSET (i1)(i2) : i1 != i2
#pragma commset predicate SSET (a)(b) : a != b

#pragma commset namedarg READB
string mdfile(int fp) {
	int buf = 0;
	#pragma commset namedblock READB
	{
		buf = fread_all(fp);
	}
	return md5_buf(buf);
}

void main() {
	int n = file_count();
	for (int i = 0; i < n; i++) {
		int fp = 0;
		#pragma commset member FSET(i), SELF
		{
			fp = fopen_idx(i);
		}
		string digest = "";
		#pragma commset add mdfile.READB to FSET(i), SSET(i)
		digest = mdfile(fp);
		#pragma commset member FSET(i), SELF
		{
			print_str(digest);
		}
		#pragma commset member FSET(i), SELF
		{
			fclose(fp);
		}
	}
}
`

// md5sumDetSrc is the deterministic-output variant: omitting SELF from the
// print block (one less annotation) keeps print-print ordering, switching
// the compiler from DOALL to a pipelined schedule with an in-order print
// stage — the paper's Section 2 determinism discussion.
const md5sumDetSrc = `
#pragma commset decl FSET
#pragma commset decl self SSET
#pragma commset predicate FSET (i1)(i2) : i1 != i2
#pragma commset predicate SSET (a)(b) : a != b

#pragma commset namedarg READB
string mdfile(int fp) {
	int buf = 0;
	#pragma commset namedblock READB
	{
		buf = fread_all(fp);
	}
	return md5_buf(buf);
}

void main() {
	int n = file_count();
	for (int i = 0; i < n; i++) {
		int fp = 0;
		#pragma commset member FSET(i), SELF
		{
			fp = fopen_idx(i);
		}
		string digest = "";
		#pragma commset add mdfile.READB to FSET(i), SSET(i)
		digest = mdfile(fp);
		#pragma commset member FSET(i)
		{
			print_str(digest);
		}
		#pragma commset member FSET(i), SELF
		{
			fclose(fp);
		}
	}
}
`

// Md5sum builds the md5sum workload: digests of 64 synthetic files of
// ~24 KiB each; MD5 is really computed (crypto/md5) and dominates each
// iteration, as in the original program.
func Md5sum() *Workload {
	const nFiles, fileSize = 64, 24 * 1024
	return &Workload{
		Name:    "md5sum",
		Origin:  "Open Src",
		MainPct: "100%",
		Variants: []Variant{
			{Name: "comm", Source: md5sumSrc},
			{Name: "det", Source: md5sumDetSrc},
		},
		Setup: func(w *builtins.World) {
			for i := 0; i < nFiles; i++ {
				w.AddFile(fmt.Sprintf("input%03d.dat", i), fileSize)
			}
		},
		Validate: func(seq, par *builtins.World, ordered bool) error {
			return cmpLines("md5sum console", seq.Console, par.Console, ordered)
		},
		TM:          false, // I/O in members
		LibOK:       true,
		PaperBest:   7.6,
		PaperScheme: "DOALL + Lib",
		PaperAnnot:  10,
		PaperSLOC:   399,
		Features:    "PC, C, S&G",
		Transforms:  "DOALL, PS-DSWP",
	}
}
