package workloads_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/transform"
	"repro/internal/vm/exec"
	"repro/internal/workloads"
)

// expectation describes the schedules each workload must (or must not)
// admit, per Table 2's "Parallelizing Transforms" column.
type expectation struct {
	variant   string
	wantDOALL bool
	wantPipe  bool // DSWP or PS-DSWP with a real parallel or multi-stage split
	sync      exec.SyncMode
	minDOALL  float64
	minPipe   float64
}

// Sync mechanisms follow Table 2's best schemes (Lib for the workloads the
// paper runs with thread-safe libraries, Spin/Mutex elsewhere).
var expectations = map[string]expectation{
	"md5sum":    {variant: "comm", wantDOALL: true, wantPipe: true, sync: exec.SyncLib, minDOALL: 4.0},
	"456.hmmer": {variant: "comm", wantDOALL: true, wantPipe: true, sync: exec.SyncSpin, minDOALL: 3.0},
	"geti":      {variant: "comm", wantDOALL: true, wantPipe: true, sync: exec.SyncLib, minDOALL: 2.5},
	"eclat":     {variant: "comm", wantDOALL: true, wantPipe: false, sync: exec.SyncMutex, minDOALL: 3.5},
	"em3d":      {variant: "comm", wantDOALL: false, wantPipe: true, sync: exec.SyncLib, minPipe: 3.0},
	"potrace":   {variant: "comm", wantDOALL: true, wantPipe: true, sync: exec.SyncLib, minDOALL: 3.0},
	"kmeans":    {variant: "comm", wantDOALL: true, wantPipe: true, sync: exec.SyncSpin, minDOALL: 2.0},
	"url":       {variant: "comm", wantDOALL: true, wantPipe: false, sync: exec.SyncSpin, minDOALL: 3.0},
}

func TestWorkloadsCompileAndValidate(t *testing.T) {
	for _, wl := range workloads.All() {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			exp := expectations[wl.Name]
			cp, err := bench.Compile(wl, exp.variant, 8)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if cp.SeqCost <= 0 {
				t.Fatal("sequential baseline cost is zero")
			}
			doall := cp.Schedule(transform.DOALL)
			if exp.wantDOALL && doall == nil {
				g := transform.BuildUnitGraph(cp.LA, nil)
				t.Fatalf("DOALL expected but not applicable; LC=%v intoControl=%v", g.LC, g.IntoControl)
			}
			if !exp.wantDOALL && doall != nil {
				t.Fatal("DOALL applicable but the paper reports it is not")
			}

			if exp.wantDOALL {
				m, err := cp.Run(transform.DOALL, exp.sync, 8)
				if err != nil {
					t.Fatalf("DOALL run: %v", err)
				}
				if m.Speedup < exp.minDOALL {
					t.Errorf("DOALL speedup %.2f < %.2f (seq %d, par %d)",
						m.Speedup, exp.minDOALL, cp.SeqCost, m.VirtualTime)
				}
			}
			ps := cp.Schedule(transform.PSDSWP)
			if exp.wantPipe && ps == nil && cp.Schedule(transform.DSWP) == nil {
				t.Fatal("pipeline schedule expected but not generated")
			}
			if ps != nil {
				m, err := cp.Run(transform.PSDSWP, exp.sync, 8)
				if err != nil {
					t.Fatalf("PS-DSWP run: %v", err)
				}
				if exp.minPipe > 0 && m.Speedup < exp.minPipe {
					t.Errorf("PS-DSWP speedup %.2f < %.2f", m.Speedup, exp.minPipe)
				}
			}
		})
	}
}

func TestWorkloadMetadata(t *testing.T) {
	for _, wl := range workloads.All() {
		if wl.Annotations() == 0 {
			t.Errorf("%s: no annotations counted", wl.Name)
		}
		if wl.SLOC() == 0 {
			t.Errorf("%s: zero SLOC", wl.Name)
		}
		if wl.Primary() == "" {
			t.Errorf("%s: missing primary source", wl.Name)
		}
		stripped := workloads.StripPragmas(wl.Primary())
		if stripped == wl.Primary() {
			t.Errorf("%s: StripPragmas removed nothing", wl.Name)
		}
	}
}

func TestNonCommBaselines(t *testing.T) {
	// Pragma-stripped sources must still compile and run sequentially.
	for _, wl := range workloads.All() {
		cp, err := bench.Compile(wl, "noannot", 8)
		if err != nil {
			t.Fatalf("%s noannot: %v", wl.Name, err)
		}
		// DOALL must never apply without annotations for these programs
		// (the paper: four of eight were not parallelizable at all).
		if cp.Schedule(transform.DOALL) != nil {
			t.Errorf("%s: DOALL applicable without annotations", wl.Name)
		}
	}
}

// TestVariantsDeterministicOutput runs the determinism-oriented variants
// (md5sum/det, potrace/det, geti/det) under PS-DSWP and checks the output
// matches the sequential order exactly — the paper's deterministic-output
// semantics from dropping one SELF annotation.
func TestVariantsDeterministicOutput(t *testing.T) {
	for _, name := range []string{"md5sum", "potrace", "geti"} {
		wl := workloads.ByName(name)
		if wl.Variant("det") == "" {
			t.Fatalf("%s: det variant missing", name)
		}
		cp, err := bench.Compile(wl, "det", 8)
		if err != nil {
			t.Fatalf("%s/det: %v", name, err)
		}
		if cp.Schedule(transform.DOALL) != nil {
			t.Errorf("%s/det: DOALL must not apply with deterministic output", name)
		}
		ps := cp.Schedule(transform.PSDSWP)
		if ps == nil {
			t.Fatalf("%s/det: PS-DSWP missing", name)
		}
		m, err := cp.Run(transform.PSDSWP, exec.SyncSpin, 8)
		if err != nil {
			t.Fatalf("%s/det run: %v", name, err)
		}
		// Exact-order validation against the sequential run.
		if err := wl.Validate(cp.SeqWorld, m.World, true); err != nil {
			t.Errorf("%s/det: deterministic output violated: %v", name, err)
		}
	}
}

// TestPipeVariants runs the paper's pipeline-steering variants (hmmer's
// unannotated RNG, url's unannotated dequeue): the serialized function must
// land in the sequential first stage and the run must validate.
func TestPipeVariants(t *testing.T) {
	for _, name := range []string{"456.hmmer", "url"} {
		wl := workloads.ByName(name)
		cp, err := bench.Compile(wl, "pipe", 8)
		if err != nil {
			t.Fatalf("%s/pipe: %v", name, err)
		}
		ps := cp.Schedule(transform.PSDSWP)
		if ps == nil {
			t.Fatalf("%s/pipe: PS-DSWP missing", name)
		}
		if ps.Stages[0].Parallel {
			t.Errorf("%s/pipe: first stage must be sequential", name)
		}
		if _, err := cp.Run(transform.PSDSWP, exec.SyncSpin, 8); err != nil {
			t.Errorf("%s/pipe run: %v", name, err)
		}
	}
}

// TestAllSyncModesAllWorkloads exhaustively validates every workload's
// primary variant under every applicable mechanism at 4 threads.
func TestAllSyncModesAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, wl := range workloads.All() {
		cp, err := bench.Compile(wl, "comm", 4)
		if err != nil {
			t.Fatalf("%s: %v", wl.Name, err)
		}
		kind := transform.DOALL
		if cp.Schedule(kind) == nil {
			kind = transform.PSDSWP
		}
		if cp.Schedule(kind) == nil {
			t.Fatalf("%s: no parallel schedule", wl.Name)
		}
		for _, mode := range wl.Syncs() {
			if _, err := cp.Run(kind, mode, 4); err != nil {
				t.Errorf("%s %v+%v: %v", wl.Name, kind, mode, err)
			}
		}
	}
}

// TestWorkloadDeterminism: the simulator is deterministic, so repeated
// parallel runs of the same configuration must produce identical virtual
// times — the regression net for the whole evaluation.
func TestWorkloadDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, wl := range workloads.All() {
		cp, err := bench.Compile(wl, "comm", 8)
		if err != nil {
			t.Fatalf("%s: %v", wl.Name, err)
		}
		kind := transform.DOALL
		if cp.Schedule(kind) == nil {
			kind = transform.PSDSWP
		}
		m1, err := cp.Run(kind, exec.SyncSpin, 8)
		if err != nil {
			t.Fatalf("%s: %v", wl.Name, err)
		}
		m2, err := cp.Run(kind, exec.SyncSpin, 8)
		if err != nil {
			t.Fatalf("%s: %v", wl.Name, err)
		}
		if m1.VirtualTime != m2.VirtualTime {
			t.Errorf("%s: nondeterministic makespan %d vs %d", wl.Name, m1.VirtualTime, m2.VirtualTime)
		}
	}
}
