package workloads

import (
	"fmt"

	"repro/internal/builtins"
)

// em3dSrc reproduces em3d's graph construction (paper Section 5.4): the
// outer loop walks a linked list of nodes (pointer chasing — DOALL is
// inapplicable), while the body initializes the node and selects random
// neighbors through the common RNG library whose routines all update one
// shared seed. Adding the routines to one Group set plus their own Self
// sets (linear specification, versus quadratic pairwise) lets them execute
// out of order, enabling PS-DSWP with the traversal in the sequential
// first stage.
const em3dSrc = `
#pragma commset decl RNGSET

#pragma commset member RNGSET, SELF
int rand_int() {
	return rng_int();
}

#pragma commset member RNGSET, SELF
int rand_range(int n) {
	return rng_range(n);
}

#pragma commset member RNGSET, SELF
float rand_float() {
	return rng_float();
}

void main() {
	int nn = graph_nodes();
	int node = ll_head();
	int count = 0;
	int parity = 0;
	while (node != 0) {
		node_init(node, 900);
		for (int d = 0; d < 6; d++) {
			int nbr = rand_range(nn) + 1;
			graph_connect(node, nbr);
		}
		float w = rand_float();
		int salt = rand_int();
		parity = parity ^ (salt & 1);
		count++;
		node = ll_next(node);
	}
	print_int(count);
	print_int(parity * 0);
}
`

// Em3d builds the em3d workload.
func Em3d() *Workload {
	const nNodes = 160
	return &Workload{
		Name:    "em3d",
		Origin:  "Olden",
		MainPct: "97%",
		Variants: []Variant{
			{Name: "comm", Source: em3dSrc},
		},
		Setup: func(w *builtins.World) {
			w.BuildNodeList(nNodes)
			w.Seed(0xabcdef12345)
		},
		Validate: func(seq, par *builtins.World, ordered bool) error {
			// Neighbor identities depend on the RNG permutation (allowed);
			// the structure is invariant: every node visited once, each
			// with the full neighbor degree.
			sd, pd := seq.GraphDegrees(), par.GraphDegrees()
			if len(sd) != len(pd) {
				return fmt.Errorf("em3d: node counts differ")
			}
			for i := range sd {
				if sd[i] != pd[i] {
					return fmt.Errorf("em3d: node %d degree %d vs %d", i, sd[i], pd[i])
				}
			}
			if len(seq.Console) != len(par.Console) || seq.Console[0] != par.Console[0] {
				return fmt.Errorf("em3d: console mismatch %v vs %v", seq.Console, par.Console)
			}
			return nil
		},
		TM:          true,
		LibOK:       true,
		PaperBest:   5.9,
		PaperScheme: "PS-DSWP + Lib",
		PaperAnnot:  8,
		PaperSLOC:   464,
		Features:    "I, S&G",
		Transforms:  "DSWP, PS-DSWP",
	}
}
