package workloads

import (
	"fmt"

	"repro/internal/builtins"
)

// kmeansSrc reproduces kmeans (paper Section 5.6): the work loop computes
// each object's nearest cluster center and folds the object into that
// center's running mean. A single SELF annotation on the update block
// breaks the only loop-carried dependence — "each such order resulting in
// a different but valid cluster assignment".
const kmeansSrc = `
void main() {
	int n = km_points();
	for (int i = 0; i < n; i++) {
		int c = km_nearest(i);
		#pragma commset member SELF
		{
			km_update(i, c);
		}
	}
	km_swap();
	print_int(n);
}
`

// Kmeans builds the kmeans workload.
func Kmeans() *Workload {
	const nPoints, kCenters = 240, 20
	return &Workload{
		Name:    "kmeans",
		Origin:  "STAMP",
		MainPct: "99%",
		Variants: []Variant{
			{Name: "comm", Source: kmeansSrc},
		},
		Setup: func(w *builtins.World) {
			w.SetupKMeans(nPoints, kCenters)
		},
		Validate: func(seq, par *builtins.World, ordered bool) error {
			// Assignments are computed against the stable current centers,
			// so they are identical under any commutative update order.
			sa, pa := seq.KMAssignments(), par.KMAssignments()
			for i := range sa {
				if sa[i] != pa[i] {
					return fmt.Errorf("kmeans: point %d assigned %d vs %d", i, sa[i], pa[i])
				}
			}
			sc, pc := seq.KMCounts(), par.KMCounts()
			for c := range sc {
				if sc[c] != pc[c] {
					return fmt.Errorf("kmeans: center %d count %d vs %d", c, sc[c], pc[c])
				}
			}
			return cmpLines("kmeans console", seq.Console, par.Console, true)
		},
		TM:          true,
		LibOK:       false,
		PaperBest:   5.2,
		PaperScheme: "PS-DSWP",
		PaperAnnot:  1,
		PaperSLOC:   516,
		Features:    "C, S",
		Transforms:  "DOALL, PS-DSWP",
	}
}
