package workloads

import (
	"repro/internal/builtins"
)

// eclatSrc reproduces ECLAT (paper Section 5.3). COMMSET is applied at four
// sites: (a) the database read wrapper is self-commutative (it mutates the
// shared cursor internally), (b) insertions into the list-of-itemsets are
// context-sensitively self-commuting (set semantics of the output), (c)
// per-iteration Itemset construction blocks commute on separate iterations,
// and (d) the Stats methods form an unpredicated Group set. Insertions into
// the *base* Itemset before the loop are deliberately unannotated: the
// intersection code depends on its deterministic prefix, and tagging them
// self-commuting would be incorrect.
const eclatSrc = `
#pragma commset decl OSET
#pragma commset predicate OSET (i1)(i2) : i1 != i2
#pragma commset decl STATSET

#pragma commset member SELF
int db_next(int i) {
	return db_read_row(i);
}

#pragma commset member STATSET, SELF
void stat_add(int v) {
	stats_add(v);
}

#pragma commset member STATSET, SELF
void stat_note(int v) {
	stats_add(v * 0);
}

void main() {
	int lists = lists_new();
	int base = iset_new();
	for (int t = 0; t < 420; t++) {
		iset_insert(base, t * 7 % 260);
	}
	int n = 180;
	for (int i = 0; i < n; i++) {
		int row = db_next(i);
		int cur = 0;
		#pragma commset member OSET(i), SELF
		{
			cur = iset_new();
			int len = row_len(row);
			for (int j = 0; j < len; j++) {
				iset_insert(cur, row_item(row, j));
			}
		}
		int sup = iset_intersect_size(base, cur);
		#pragma commset member SELF
		{
			lists_insert(lists, sup);
		}
		stat_add(sup);
		stat_note(i);
	}
	print_int(lists_len(lists));
	print_int(stats_count());
}
`

// Eclat builds the ECLAT workload.
func Eclat() *Workload {
	return &Workload{
		Name:    "eclat",
		Origin:  "MineBench",
		MainPct: "97%",
		Variants: []Variant{
			{Name: "comm", Source: eclatSrc},
		},
		Setup: func(w *builtins.World) {
			w.AddTransactions(180, 260, 12)
		},
		Validate: func(seq, par *builtins.World, ordered bool) error {
			// Support values are per-row deterministic; the list has set
			// semantics and the stats are symmetric sums, so the final
			// count lines must match exactly.
			return cmpLines("eclat console", seq.Console, par.Console, true)
		},
		TM:          false, // I/O (database reads) in members
		LibOK:       false,
		PaperBest:   7.5,
		PaperScheme: "DOALL + Mutex",
		PaperAnnot:  11,
		PaperSLOC:   3271,
		Features:    "PC, C&I, S&G",
		Transforms:  "DOALL, DSWP",
	}
}
