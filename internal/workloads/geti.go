package workloads

import (
	"fmt"

	"repro/internal/builtins"
)

// getiSrc reproduces GETI (paper Section 5.2). The setup loop populates a
// candidate bitmap through the SetBit/GetBit interfaces, whose
// commutativity is predicated on the key values at the interface (the
// affine keys 2k and 2k+1 are provably distinct, so no runtime checks are
// needed). The hot loop builds one itemset bitmap per transaction inside a
// client-predicated commutative block, evaluates its error tolerance, and
// appends the support to the output vector and console in a
// context-sensitively self-commutative block (set semantics of the
// output).
const getiSrc = `
#pragma commset decl CSET
#pragma commset predicate CSET (i1)(i2) : i1 != i2
#pragma commset decl KSET
#pragma commset predicate KSET (k1)(k2) : k1 != k2
#pragma commset decl self SBSET
#pragma commset predicate SBSET (k1)(k2) : k1 != k2
#pragma commset decl self GBSET
#pragma commset predicate GBSET (k1)(k2) : k1 != k2
#pragma commset nosync KSET
#pragma commset nosync SBSET
#pragma commset nosync GBSET

#pragma commset member KSET(key), SBSET(key)
void set_bit(int bm, int key) {
	bitmap_set(bm, key);
}

#pragma commset member KSET(key), GBSET(key)
bool get_bit(int bm, int key) {
	return bitmap_get(bm, key);
}

void main() {
	int items = 192;
	int cand = bitmap_new(items);
	for (int k = 0; k < items / 2; k++) {
		set_bit(cand, 2 * k);
		if (get_bit(cand, 2 * k + 1)) {
			set_bit(cand, 2 * k + 1);
		}
	}
	int out = vec_new();
	int n = 160;
	for (int i = 0; i < n; i++) {
		int support = 0;
		#pragma commset member CSET(i), SELF
		{
			int bm = bitmap_new(items);
			int row = db_read_row(i);
			int len = row_len(row);
			for (int j = 0; j < len; j++) {
				set_bit(bm, row_item(row, j));
			}
			support = bitmap_count(bm);
		}
		int score = burn(8200 + support);
		#pragma commset member CSET(i), SELF
		{
			vec_push(out, support + score - score);
			print_int(support);
		}
	}
	print_int(vec_len(out));
}
`

// getiDetSrc keeps the output block in CSET only (no SELF), forcing
// deterministic output: the pipeline's sequential last stage prints
// supports in iteration order — the configuration whose 3-stage PS-DSWP
// the paper reports as best at eight threads.
const getiDetSrc = `
#pragma commset decl CSET
#pragma commset predicate CSET (i1)(i2) : i1 != i2
#pragma commset decl KSET
#pragma commset predicate KSET (k1)(k2) : k1 != k2
#pragma commset decl self SBSET
#pragma commset predicate SBSET (k1)(k2) : k1 != k2
#pragma commset decl self GBSET
#pragma commset predicate GBSET (k1)(k2) : k1 != k2
#pragma commset nosync KSET
#pragma commset nosync SBSET
#pragma commset nosync GBSET

#pragma commset member KSET(key), SBSET(key)
void set_bit(int bm, int key) {
	bitmap_set(bm, key);
}

#pragma commset member KSET(key), GBSET(key)
bool get_bit(int bm, int key) {
	return bitmap_get(bm, key);
}

void main() {
	int items = 192;
	int cand = bitmap_new(items);
	for (int k = 0; k < items / 2; k++) {
		set_bit(cand, 2 * k);
		if (get_bit(cand, 2 * k + 1)) {
			set_bit(cand, 2 * k + 1);
		}
	}
	int out = vec_new();
	int n = 160;
	for (int i = 0; i < n; i++) {
		int support = 0;
		#pragma commset member CSET(i), SELF
		{
			int bm = bitmap_new(items);
			int row = db_read_row(i);
			int len = row_len(row);
			for (int j = 0; j < len; j++) {
				set_bit(bm, row_item(row, j));
			}
			support = bitmap_count(bm);
		}
		int score = burn(8200 + support);
		#pragma commset member CSET(i)
		{
			vec_push(out, support + score - score);
			print_int(support);
		}
	}
	print_int(vec_len(out));
}
`

// Geti builds the GETI workload.
func Geti() *Workload {
	return &Workload{
		Name:    "geti",
		Origin:  "MineBench",
		MainPct: "98%",
		Variants: []Variant{
			{Name: "comm", Source: getiSrc},
			{Name: "det", Source: getiDetSrc},
		},
		Setup: func(w *builtins.World) {
			w.AddTransactions(160, 192, 24)
		},
		Validate: func(seq, par *builtins.World, ordered bool) error {
			if err := cmpLines("geti console", seq.Console, par.Console, ordered); err != nil {
				return err
			}
			a, b := seq.VectorContents(0), par.VectorContents(0)
			if len(a) != len(b) {
				return fmt.Errorf("geti: vector sizes %d vs %d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					return fmt.Errorf("geti: vector contents differ at %d: %s vs %s", i, a[i], b[i])
				}
			}
			return nil
		},
		TM:          false, // I/O and external containers
		LibOK:       false,
		PaperBest:   3.6,
		PaperScheme: "PS-DSWP + Lib",
		// The bitmap library sets are COMMSETNOSYNC (thread-safe library),
		// so the Lib effect is expressed per set rather than globally.
		PaperAnnot: 11,
		PaperSLOC:  889,
		Features:   "PI&PC, C&I, S&G",
		Transforms: "DOALL, PS-DSWP",
	}
}
