package workloads

import (
	"fmt"
	"math"

	"repro/internal/builtins"
)

// Service wraps a workload as an open-system service: each admitted request
// binds one loop iteration, so a service run externalizes the effects of a
// subset of the batch run's iterations. Validation therefore checks
// subset-consistency — every completed request's output must appear in the
// sequential reference, and the output count must equal the completed count
// (zero silent drops reaches the effect layer too).
type Service struct {
	Name     string
	Workload *Workload
	// Variant selects the source variant served (the fully annotated
	// "comm", which supports all three transforms for both services).
	Variant string

	// Requests sizes the full trace; SmokeRequests the CI-sized one.
	Requests      int
	SmokeRequests int

	// SLOFactor and DeadlineFactor scale the measured per-request
	// sequential cost into the latency SLO and the abandonment deadline.
	SLOFactor      float64
	DeadlineFactor float64

	// Setup populates a fresh substrate world for an n-request trace.
	Setup func(w *builtins.World, n int)

	// HeavySetup, when non-nil, populates a world whose per-request service
	// times are heavy-tailed (bounded Pareto, seeded): most requests stay
	// cheap but a deterministic few are one to two orders of magnitude
	// larger. Overload cells use it to manufacture stragglers — a worker
	// that draws a tail request falls behind by design — so the campaign
	// can measure how much of the tail the stealing layer reclaims.
	HeavySetup func(w *builtins.World, n int, seed uint64)

	// Validate checks a service run's world against the sequential
	// reference world (same trace size), given how many requests the
	// service completed.
	Validate func(seq, par *builtins.World, completed int) error
}

// Services returns the open services of the campaign.
func Services() []*Service {
	return []*Service{urlService(), md5sumService()}
}

// ServiceByName finds a service.
func ServiceByName(name string) *Service {
	for _, s := range Services() {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// urlService is packet switching as an open system: requests are packets,
// the response is the logged route. pkt_dequeue hands out sequential packet
// handles, so a run completing k requests logs exactly the reference lines
// of the first k handles.
func urlService() *Service {
	return &Service{
		Name:           "url-service",
		Workload:       URL(),
		Variant:        "comm",
		Requests:       400,
		SmokeRequests:  160,
		SLOFactor:      8,
		DeadlineFactor: 24,
		Setup: func(w *builtins.World, n int) {
			w.SetupPackets(n)
		},
		Validate: func(seq, par *builtins.World, completed int) error {
			if got := len(par.LogLines()); got != completed {
				return fmt.Errorf("url-service: %d log lines, want one per completed request (%d)", got, completed)
			}
			if err := cmpSubset("url-service log", seq.LogLines(), par.LogLines()); err != nil {
				return err
			}
			// The epilogue's packet-count print runs regardless of how many
			// requests completed.
			return cmpLines("url-service console", seq.Console, par.Console, true)
		},
	}
}

// md5sumService is the digest service: requests are files, the response is
// the printed digest. Request k digests file k, so completions print a
// subset of the reference digests.
func md5sumService() *Service {
	const fileSize = 4 * 1024
	return &Service{
		Name:           "md5sum-service",
		Workload:       Md5sum(),
		Variant:        "comm",
		Requests:       256,
		SmokeRequests:  96,
		SLOFactor:      8,
		DeadlineFactor: 24,
		Setup: func(w *builtins.World, n int) {
			for i := 0; i < n; i++ {
				w.AddFile(fmt.Sprintf("req%04d.dat", i), fileSize)
			}
		},
		HeavySetup: func(w *builtins.World, n int, seed uint64) {
			for i := 0; i < n; i++ {
				w.AddFile(fmt.Sprintf("req%04d.dat", i), paretoSize(seed, i))
			}
		},
		Validate: func(seq, par *builtins.World, completed int) error {
			if got := len(par.Console); got != completed {
				return fmt.Errorf("md5sum-service: %d digests printed, want one per completed request (%d)", got, completed)
			}
			return cmpSubset("md5sum-service console", seq.Console, par.Console)
		},
	}
}

// Bounded-Pareto request sizing for the heavy-tailed service option: shape
// alpha 1.1 (infinite-variance territory, the classic web-object regime),
// bounded in [1 KiB, 64 KiB] so a single tail request costs ~64x the mode
// without starving the rest of the trace. Sizes come from the inverse CDF
//
//	x = L * (1 - U*(1-(L/H)^alpha))^(-1/alpha)
//
// with U drawn from a splitmix64 stream keyed by (seed, request index), so
// the trace is a pure function of the seed: every rerun, thread count, and
// host replays byte-identical request sizes.
const (
	paretoAlpha = 1.1
	paretoLo    = 1024
	paretoHi    = 64 * 1024
)

func paretoSize(seed uint64, i int) int {
	u := splitmix64(seed + uint64(i)*0x9e3779b97f4a7c15)
	// Map to (0,1): never exactly 0 or 1, keeping the inverse CDF finite.
	uf := (float64(u>>11) + 0.5) / (1 << 53)
	ratio := math.Pow(paretoLo/float64(paretoHi), paretoAlpha)
	x := paretoLo * math.Pow(1-uf*(1-ratio), -1/paretoAlpha)
	if x > paretoHi {
		x = paretoHi
	}
	return int(x)
}

// splitmix64 is the standard 64-bit finalizer-based generator step.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// cmpSubset checks that par is a multiset subset of seq.
func cmpSubset(what string, seq, par []string) error {
	counts := make(map[string]int, len(seq))
	for _, l := range seq {
		counts[l]++
	}
	for i, l := range par {
		if counts[l] == 0 {
			return fmt.Errorf("%s: line %d (%q) not in (or exceeds) the sequential reference", what, i, l)
		}
		counts[l]--
	}
	return nil
}
