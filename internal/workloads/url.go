package workloads

import (
	"fmt"

	"repro/internal/builtins"
)

// urlSrc reproduces url (paper Section 5.7): the loop dequeues packets
// from the shared pool, switches them by URL, and logs fields to a file.
// The protocol permits out-of-order switching, so the dequeue and logging
// functions are self-commutative — the paper's two annotations.
const urlSrc = `
#pragma commset member SELF
int dequeue() {
	return pkt_dequeue();
}

#pragma commset member SELF
void log_packet(int pkt, int route) {
	log_pkt(pkt, route);
}

void main() {
	int n = pkt_count();
	for (int i = 0; i < n; i++) {
		int pkt = dequeue();
		int route = url_match(pkt);
		log_packet(pkt, route);
	}
	print_int(n);
}
`

// urlPipeSrc drops the SELF annotation on dequeue, reproducing the paper's
// two-stage PS-DSWP pipeline "formed by ignoring the SELF COMMSET
// annotation on the packet dequeue function": dequeue stays sequential in
// the first stage while matching and logging replicate.
const urlPipeSrc = `
int dequeue() {
	return pkt_dequeue();
}

#pragma commset member SELF
void log_packet(int pkt, int route) {
	log_pkt(pkt, route);
}

void main() {
	int n = pkt_count();
	for (int i = 0; i < n; i++) {
		int pkt = dequeue();
		int route = url_match(pkt);
		log_packet(pkt, route);
	}
	print_int(n);
}
`

// URL builds the url workload.
func URL() *Workload {
	const nPackets = 600
	return &Workload{
		Name:    "url",
		Origin:  "NetBench",
		MainPct: "100%",
		Variants: []Variant{
			{Name: "comm", Source: urlSrc},
			{Name: "pipe", Source: urlPipeSrc},
		},
		Setup: func(w *builtins.World) {
			w.SetupPackets(nPackets)
		},
		Validate: func(seq, par *builtins.World, ordered bool) error {
			// Each packet is dequeued exactly once and logged with its own
			// deterministic route, so the log multiset is invariant.
			if err := cmpLines("url log", seq.LogLines(), par.LogLines(), ordered); err != nil {
				return err
			}
			if len(par.LogLines()) != nPackets {
				return fmt.Errorf("url: %d log lines, want %d", len(par.LogLines()), nPackets)
			}
			return cmpLines("url console", seq.Console, par.Console, true)
		},
		TM:          true,
		LibOK:       false,
		PaperBest:   7.7,
		PaperScheme: "DOALL + Spin",
		PaperAnnot:  2,
		PaperSLOC:   629,
		Features:    "I, S",
		Transforms:  "DOALL, PS-DSWP",
	}
}
