package workloads

import (
	"fmt"

	"repro/internal/builtins"
)

// potraceSrc reproduces potrace (paper Section 5.5): each iteration opens
// a bitmap, traces it into a vector path (the heavy compute), and writes
// the image. The code pattern mirrors md5sum; in the default mode all file
// operations commute across iterations.
const potraceSrc = `
#pragma commset decl PSET
#pragma commset predicate PSET (i1)(i2) : i1 != i2

void main() {
	int n = bmp_count();
	for (int i = 0; i < n; i++) {
		int bm = 0;
		#pragma commset member PSET(i), SELF
		{
			bm = bmp_open(i);
		}
		string path = bmp_trace(bm);
		#pragma commset member PSET(i), SELF
		{
			img_write(path);
		}
	}
	print_int(n);
}
`

// potraceDetSrc is the single-output-file mode: the SELF annotation is
// omitted on the write block "to ensure sequential output semantics", so
// images land in the shared output file in order and the compiler falls
// back from DOALL to a pipeline with a sequential write stage.
const potraceDetSrc = `
#pragma commset decl PSET
#pragma commset predicate PSET (i1)(i2) : i1 != i2

void main() {
	int n = bmp_count();
	for (int i = 0; i < n; i++) {
		int bm = 0;
		#pragma commset member PSET(i), SELF
		{
			bm = bmp_open(i);
		}
		string path = bmp_trace(bm);
		#pragma commset member PSET(i)
		{
			img_write(path);
		}
	}
	print_int(n);
}
`

// Potrace builds the potrace workload.
func Potrace() *Workload {
	const nBitmaps, side = 72, 26
	return &Workload{
		Name:    "potrace",
		Origin:  "Open Src",
		MainPct: "100%",
		Variants: []Variant{
			{Name: "comm", Source: potraceSrc},
			{Name: "det", Source: potraceDetSrc},
		},
		Setup: func(w *builtins.World) {
			w.AddBitmaps(nBitmaps, side)
		},
		Validate: func(seq, par *builtins.World, ordered bool) error {
			if err := cmpLines("potrace images", seq.OutImages(), par.OutImages(), ordered); err != nil {
				return err
			}
			if len(par.OutImages()) != nBitmaps {
				return fmt.Errorf("potrace: %d images written, want %d", len(par.OutImages()), nBitmaps)
			}
			return cmpLines("potrace console", seq.Console, par.Console, true)
		},
		TM:          false, // I/O in members
		LibOK:       true,
		PaperBest:   5.5,
		PaperScheme: "DOALL + Lib",
		PaperAnnot:  10,
		PaperSLOC:   8292,
		Features:    "PC, C, S&G",
		Transforms:  "DOALL, PS-DSWP",
	}
}
