// Package workloads defines the eight benchmark programs of the paper's
// evaluation (Table 2), rewritten in MiniC with COMMSET annotations against
// the substrate of package builtins:
//
//	md5sum     message digests of input files          (Open Src)
//	456.hmmer  biosequence analysis with HMMs          (SPEC2006)
//	geti       greedy error-tolerant itemsets          (MineBench)
//	eclat      association rule mining                 (MineBench)
//	em3d       electromagnetic wave propagation        (Olden)
//	potrace    bitmap tracing                          (Open Src)
//	kmeans     k-means clustering                      (STAMP)
//	url        URL-based packet switching              (NetBench)
//
// Each workload provides one or more source variants: the fully annotated
// program, and where the paper evaluates them, a deterministic-output
// variant with one fewer annotation (md5sum, potrace, geti) or a variant
// that pins a function to the sequential stage (hmmer's RNG, url's
// dequeue). Stripping every pragma yields the non-COMMSET baseline.
package workloads

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/builtins"
	"repro/internal/vm/exec"
)

// Variant is one annotated version of a workload's source.
type Variant struct {
	// Name tags the variant: "comm" is the fully annotated program,
	// "det" the deterministic-output variant, "pipe" a variant steering
	// the pipeline partition as the paper describes.
	Name   string
	Source string
}

// Workload is one benchmark program with its substrate setup and
// correctness validation.
type Workload struct {
	Name   string
	Origin string
	// MainPct is the paper-reported fraction of execution time in the
	// target loop (Table 2).
	MainPct string

	Variants []Variant

	// Setup populates a fresh substrate world deterministically.
	Setup func(w *builtins.World)

	// Validate compares a parallel run's world against the sequential
	// run's. ordered selects exact output comparison (schedules that
	// preserve sequential output order) versus multiset comparison
	// (commutative out-of-order schedules).
	Validate func(seq, par *builtins.World, ordered bool) error

	// TM reports whether transactional memory applies (false when members
	// perform I/O, as the paper notes for md5sum, geti, eclat, potrace).
	TM bool
	// LibOK reports whether the "thread-safe library" mechanism applies
	// (the members are separately compiled thread-safe library calls, as
	// in md5sum, geti, em3d, and potrace per Table 2).
	LibOK bool

	// Paper-reported results for EXPERIMENTS.md comparisons.
	PaperBest   float64
	PaperScheme string
	PaperAnnot  int
	PaperSLOC   int
	Features    string
	Transforms  string
}

// Primary returns the fully annotated source.
func (w *Workload) Primary() string { return w.Variants[0].Source }

// Variant returns the named variant source, or "".
func (w *Workload) Variant(name string) string {
	for _, v := range w.Variants {
		if v.Name == name {
			return v.Source
		}
	}
	return ""
}

// Annotations counts the COMMSET pragma lines in the primary source —
// Table 2's "# COMMSET Annotations" column.
func (w *Workload) Annotations() int {
	n := 0
	for _, line := range strings.Split(w.Primary(), "\n") {
		if strings.Contains(line, "#pragma commset") {
			n++
		}
	}
	return n
}

// SLOC counts non-blank source lines of the primary source.
func (w *Workload) SLOC() int {
	n := 0
	for _, line := range strings.Split(w.Primary(), "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}

// StripPragmas removes every COMMSET pragma line, producing the sequential
// non-COMMSET program (eliding pragmas yields valid MiniC, Section 3.2).
func StripPragmas(src string) string {
	var out []string
	for _, line := range strings.Split(src, "\n") {
		if strings.Contains(line, "#pragma commset") {
			continue
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}

// All returns every workload in Table 2 order.
func All() []*Workload {
	return []*Workload{
		Md5sum(), Hmmer(), Geti(), Eclat(), Em3d(), Potrace(), Kmeans(), URL(),
	}
}

// Syncs returns the synchronization mechanisms applicable to the workload.
func (w *Workload) Syncs() []exec.SyncMode {
	out := []exec.SyncMode{exec.SyncMutex, exec.SyncSpin}
	if w.TM {
		out = append(out, exec.SyncTM)
	}
	if w.LibOK {
		out = append(out, exec.SyncLib)
	}
	return out
}

// ByName finds a workload.
func ByName(name string) *Workload {
	for _, w := range All() {
		if w.Name == name {
			return w
		}
	}
	return nil
}

// --- validation helpers ---

// cmpLines compares two output slices exactly or as multisets.
func cmpLines(what string, seq, par []string, ordered bool) error {
	if len(seq) != len(par) {
		return fmt.Errorf("%s: %d lines sequentially vs %d parallel", what, len(seq), len(par))
	}
	a := append([]string(nil), seq...)
	b := append([]string(nil), par...)
	if !ordered {
		sort.Strings(a)
		sort.Strings(b)
	}
	for i := range a {
		if a[i] != b[i] {
			mode := "multiset"
			if ordered {
				mode = "ordered"
			}
			return fmt.Errorf("%s (%s): line %d differs: %q vs %q", what, mode, i, a[i], b[i])
		}
	}
	return nil
}
