package ir

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/vm/value"
)

// buildFunc assembles a two-block function by hand:
//
//	b0: r0 = const 1; stloc #0 = r0; condbr r0 b1 b1
//	b1: r1 = ldloc #0; ret r1
func buildFunc() *Func {
	f := &Func{Name: "f", Results: []ast.Type{ast.TInt}}
	f.AddLocal("x", ast.TInt)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b0.Instrs = append(b0.Instrs,
		&Instr{Op: OpConst, Dst: 0, Val: value.Int(1)},
		&Instr{Op: OpStoreLocal, Slot: 0, A: 0},
		&Instr{Op: OpCondBr, A: 0, Targets: [2]int{1, 1}},
	)
	b1.Instrs = append(b1.Instrs,
		&Instr{Op: OpLoadLocal, Dst: 1, Slot: 0},
		&Instr{Op: OpRet, Args: []int{1}},
	)
	f.NumRegs = 2
	f.Renumber()
	return f
}

func TestRenumberDense(t *testing.T) {
	f := buildFunc()
	want := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.ID != want {
				t.Fatalf("instr ID %d, want %d", in.ID, want)
			}
			want++
		}
	}
	if f.NumInstrs() != want {
		t.Errorf("NumInstrs = %d, want %d", f.NumInstrs(), want)
	}
}

func TestInstrLookups(t *testing.T) {
	f := buildFunc()
	in := f.InstrByID(3)
	if in == nil || in.Op != OpLoadLocal {
		t.Fatalf("InstrByID(3) = %v", in)
	}
	if blk := f.BlockOf(3); blk == nil || blk.ID != 1 {
		t.Errorf("BlockOf(3) = %v", blk)
	}
	if blk := f.BlockOfInstr(in); blk == nil || blk.ID != 1 {
		t.Errorf("BlockOfInstr = %v", blk)
	}
	if f.InstrByID(99) != nil {
		t.Error("InstrByID out of range should be nil")
	}
}

func TestSuccsAndTerminators(t *testing.T) {
	f := buildFunc()
	b0 := f.Blocks[0]
	if term := b0.Terminator(); term == nil || term.Op != OpCondBr {
		t.Fatalf("terminator = %v", term)
	}
	// CondBr with equal targets deduplicates.
	if succs := b0.Succs(); len(succs) != 1 || succs[0] != 1 {
		t.Errorf("succs = %v", succs)
	}
	if succs := f.Blocks[1].Succs(); len(succs) != 0 {
		t.Errorf("ret succs = %v", succs)
	}
	// Distinct targets yield two successors.
	b0.Instrs[2].Targets = [2]int{0, 1}
	if succs := b0.Succs(); len(succs) != 2 {
		t.Errorf("succs = %v", succs)
	}
	// An unfinished block has no terminator.
	nb := f.NewBlock()
	if nb.Terminator() != nil {
		t.Error("empty block should have nil terminator")
	}
}

func TestIsTerminator(t *testing.T) {
	cases := map[Op]bool{
		OpBr: true, OpCondBr: true, OpRet: true,
		OpConst: false, OpCall: false, OpStoreLocal: false,
	}
	for op, want := range cases {
		if got := (&Instr{Op: op}).IsTerminator(); got != want {
			t.Errorf("IsTerminator(%v) = %v", op, got)
		}
	}
}

func TestInstrStrings(t *testing.T) {
	cases := []struct {
		in   *Instr
		want string
	}{
		{&Instr{Op: OpConst, Dst: 2, Val: value.Int(7)}, "r2 = const 7"},
		{&Instr{Op: OpLoadLocal, Dst: 1, Slot: 3}, "r1 = ldloc #3"},
		{&Instr{Op: OpStoreGlobal, Name: "g", A: 4}, "stglob g = r4"},
		{&Instr{Op: OpBin, Dst: 0, A: 1, B: 2, BinOp: "+"}, "r0 = r1 + r2"},
		{&Instr{Op: OpCall, Dst: 3, Name: "f", Args: []int{1, 2}}, "r3 = call f(r1, r2)"},
		{&Instr{Op: OpCall, Dst: -1, Name: "r", Args: []int{0}, OutSlots: []int{5}}, "call r(r0) outs=[5]"},
		{&Instr{Op: OpBr, Targets: [2]int{4, 4}}, "br b4"},
		{&Instr{Op: OpCondBr, A: 1, Targets: [2]int{2, 3}}, "condbr r1 b2 b3"},
		{&Instr{Op: OpRet, Args: []int{0}}, "ret r0"},
	}
	for _, c := range cases {
		if got := c.in.String(); !strings.Contains(got, c.want) {
			t.Errorf("String() = %q, want contains %q", got, c.want)
		}
	}
}

func TestFuncString(t *testing.T) {
	f := buildFunc()
	s := f.String()
	for _, frag := range []string{"func f", "local #0 int x", "b0:", "b1:"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Func.String missing %q:\n%s", frag, s)
		}
	}
	f.IsRegion = true
	if !strings.Contains(f.String(), "region f") {
		t.Error("region marker missing")
	}
}

func TestProgramRegistry(t *testing.T) {
	p := &Program{}
	f := buildFunc()
	p.AddFunc(f)
	if p.Func("f") != f {
		t.Error("Func lookup failed")
	}
	if p.Func("missing") != nil {
		t.Error("missing func should be nil")
	}
	if len(p.Order) != 1 || p.Order[0] != "f" {
		t.Errorf("Order = %v", p.Order)
	}
}

func TestOpString(t *testing.T) {
	if OpConst.String() != "const" || OpCall.String() != "call" {
		t.Error("op names wrong")
	}
	if Op(99).String() == "" {
		t.Error("unknown op should still render")
	}
}
