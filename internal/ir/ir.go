// Package ir defines the COMMSET compiler's intermediate representation.
//
// The IR is a conventional three-address representation organized as
// functions of basic blocks. Virtual registers are block-local by
// construction (the lowerer routes every cross-block value through a local
// variable slot), which keeps dependence analysis simple: register def-use
// chains never leave a block, and all cross-block dataflow is visible as
// local-slot loads and stores — exactly the memory accesses the PDG builder
// needs to see.
//
// Commutative regions extracted from annotated compound statements become
// ordinary Funcs flagged IsRegion; their call sites use Args for live-ins
// and OutSlots for the caller slots receiving live-outs.
package ir

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/source"
	"repro/internal/vm/value"
)

// Op enumerates IR instruction opcodes.
type Op int

// IR opcodes.
const (
	OpConst       Op = iota // Dst = Val
	OpLoadLocal             // Dst = locals[Slot]
	OpStoreLocal            // locals[Slot] = A
	OpLoadGlobal            // Dst = globals[Name]
	OpStoreGlobal           // globals[Name] = A
	OpBin                   // Dst = A <BinOp> B
	OpUn                    // Dst = <BinOp> A (NOT or SUB)
	OpCall                  // Dst = Name(Args...); region calls also write OutSlots
	OpBr                    // goto Targets[0]
	OpCondBr                // if A goto Targets[0] else Targets[1]
	OpRet                   // return Args (0 or 1 values; regions may return several)
)

var opNames = [...]string{
	OpConst: "const", OpLoadLocal: "ldloc", OpStoreLocal: "stloc",
	OpLoadGlobal: "ldglob", OpStoreGlobal: "stglob",
	OpBin: "bin", OpUn: "un", OpCall: "call",
	OpBr: "br", OpCondBr: "condbr", OpRet: "ret",
}

// String names the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", int(o))
}

// Instr is one IR instruction. Register operands are indices into the
// executing frame's register file; Slot operands index the function's local
// variable slots.
type Instr struct {
	ID  int // unique within the function; assigned by Func.Renumber
	Op  Op
	Dst int // destination register, -1 if none

	A, B int // register operands (-1 if unused)

	Slot  int         // local slot for OpLoadLocal/OpStoreLocal
	Name  string      // global name or callee name
	Val   value.Value // OpConst payload
	BinOp string      // operator spelling for OpBin/OpUn (e.g. "+", "!")

	Args     []int  // call argument registers, or OpRet value registers
	OutSlots []int  // region calls: caller local slots receiving outputs
	Targets  [2]int // branch targets (block IDs)

	Pos source.Pos
}

// IsTerminator reports whether the instruction ends a basic block.
func (in *Instr) IsTerminator() bool {
	return in.Op == OpBr || in.Op == OpCondBr || in.Op == OpRet
}

// Block is a basic block: straight-line instructions ending in a terminator.
type Block struct {
	ID     int
	Instrs []*Instr
}

// Terminator returns the block's final instruction, or nil if the block is
// still under construction.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if !last.IsTerminator() {
		return nil
	}
	return last
}

// Succs returns the IDs of the block's successor blocks.
func (b *Block) Succs() []int {
	t := b.Terminator()
	if t == nil {
		return nil
	}
	switch t.Op {
	case OpBr:
		return []int{t.Targets[0]}
	case OpCondBr:
		if t.Targets[0] == t.Targets[1] {
			return []int{t.Targets[0]}
		}
		return []int{t.Targets[0], t.Targets[1]}
	}
	return nil
}

// Local is one local variable slot of a function.
type Local struct {
	Name string
	Type ast.Type
}

// Func is one IR function.
type Func struct {
	Name    string
	Params  int // the first Params locals are parameters
	Results []ast.Type
	Locals  []Local
	Blocks  []*Block
	NumRegs int

	// IsRegion marks commutative regions extracted from compound
	// statements; their calls write OutSlots in the caller.
	IsRegion bool
	// SrcFunc is the original source function a region was extracted from.
	SrcFunc string
	Pos     source.Pos
}

// Entry returns the entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// BlockByID returns the block with the given ID. Block IDs equal slice
// positions by construction.
func (f *Func) BlockByID(id int) *Block { return f.Blocks[id] }

// NewBlock appends a fresh empty block and returns it.
func (f *Func) NewBlock() *Block {
	b := &Block{ID: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	return b
}

// AddLocal appends a local slot and returns its index.
func (f *Func) AddLocal(name string, t ast.Type) int {
	f.Locals = append(f.Locals, Local{Name: name, Type: t})
	return len(f.Locals) - 1
}

// Renumber assigns dense instruction IDs in block order. Call after any
// structural edit (lowering, inlining) and before analysis.
func (f *Func) Renumber() {
	id := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			in.ID = id
			id++
		}
	}
}

// NumInstrs returns the total instruction count (valid after Renumber).
func (f *Func) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// InstrByID returns the instruction with the given ID (valid after
// Renumber), or nil.
func (f *Func) InstrByID(id int) *Instr {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.ID == id {
				return in
			}
		}
	}
	return nil
}

// BlockOfInstr returns the block containing the given instruction, matched
// by pointer identity, or nil.
func (f *Func) BlockOfInstr(target *Instr) *Block {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in == target {
				return b
			}
		}
	}
	return nil
}

// BlockOf returns the block containing the instruction with the given ID.
func (f *Func) BlockOf(id int) *Block {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.ID == id {
				return b
			}
		}
	}
	return nil
}

// Global is a file-scope variable.
type Global struct {
	Name string
	Type ast.Type
	Init value.Value
}

// Program is a whole lowered translation unit.
type Program struct {
	Funcs   map[string]*Func
	Order   []string // deterministic function order (source, then regions)
	Globals []Global
}

// Func returns the named function or nil.
func (p *Program) Func(name string) *Func {
	return p.Funcs[name]
}

// AddFunc registers a function under its name.
func (p *Program) AddFunc(f *Func) {
	if p.Funcs == nil {
		p.Funcs = map[string]*Func{}
	}
	p.Funcs[f.Name] = f
	p.Order = append(p.Order, f.Name)
}

// String renders the instruction in a readable assembly-like syntax.
func (in *Instr) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%%%d: ", in.ID)
	switch in.Op {
	case OpConst:
		fmt.Fprintf(&b, "r%d = const %s", in.Dst, in.Val)
	case OpLoadLocal:
		fmt.Fprintf(&b, "r%d = ldloc #%d", in.Dst, in.Slot)
	case OpStoreLocal:
		fmt.Fprintf(&b, "stloc #%d = r%d", in.Slot, in.A)
	case OpLoadGlobal:
		fmt.Fprintf(&b, "r%d = ldglob %s", in.Dst, in.Name)
	case OpStoreGlobal:
		fmt.Fprintf(&b, "stglob %s = r%d", in.Name, in.A)
	case OpBin:
		fmt.Fprintf(&b, "r%d = r%d %s r%d", in.Dst, in.A, in.BinOp, in.B)
	case OpUn:
		fmt.Fprintf(&b, "r%d = %s r%d", in.Dst, in.BinOp, in.A)
	case OpCall:
		if in.Dst >= 0 {
			fmt.Fprintf(&b, "r%d = ", in.Dst)
		}
		fmt.Fprintf(&b, "call %s(", in.Name)
		for i, a := range in.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "r%d", a)
		}
		b.WriteString(")")
		if len(in.OutSlots) > 0 {
			fmt.Fprintf(&b, " outs=%v", in.OutSlots)
		}
	case OpBr:
		fmt.Fprintf(&b, "br b%d", in.Targets[0])
	case OpCondBr:
		fmt.Fprintf(&b, "condbr r%d b%d b%d", in.A, in.Targets[0], in.Targets[1])
	case OpRet:
		b.WriteString("ret")
		for _, a := range in.Args {
			fmt.Fprintf(&b, " r%d", a)
		}
	}
	return b.String()
}

// String renders the whole function.
func (f *Func) String() string {
	var b strings.Builder
	kind := "func"
	if f.IsRegion {
		kind = "region"
	}
	fmt.Fprintf(&b, "%s %s (params=%d, locals=%d, regs=%d)\n", kind, f.Name, f.Params, len(f.Locals), f.NumRegs)
	for i, l := range f.Locals {
		fmt.Fprintf(&b, "  local #%d %s %s\n", i, l.Type, l.Name)
	}
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, " b%d:\n", blk.ID)
		for _, in := range blk.Instrs {
			fmt.Fprintf(&b, "   %s\n", in)
		}
	}
	return b.String()
}
