package builtins

import (
	"fmt"
	"sort"

	"repro/internal/ast"
	"repro/internal/effects"
	"repro/internal/vm/interp"
	"repro/internal/vm/value"
)

// Mining substrate shared by geti and eclat: a transaction database read
// through a shared cursor, Bitmap itemsets with key-indexed bits (geti),
// order-sensitive Itemsets plus an order-insensitive list-of-itemsets
// (eclat), and a statistics accumulator.

// AddTransactions installs a deterministic synthetic transaction database:
// rows of item IDs in [0, items).
func (w *World) AddTransactions(rows, items, rowLen int) {
	db := cachedTransactions(rows, items, rowLen, func() [][]int64 {
		db := make([][]int64, 0, rows)
		h := uint64(0xfeedface)
		for r := 0; r < rows; r++ {
			row := make([]int64, 0, rowLen)
			seen := map[int64]bool{}
			for len(row) < rowLen {
				h = h*6364136223846793005 + 1442695040888963407
				it := int64((h >> 17) % uint64(items))
				if !seen[it] {
					seen[it] = true
					row = append(row, it)
				}
			}
			sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
			db = append(db, row)
		}
		return db
	})
	w.dbRows = append(w.dbRows, db...)
}

// NumTransactions reports the database size.
func (w *World) NumTransactions() int { return len(w.dbRows) }

func (w *World) registerMining() {
	// --- transaction database (shared cursor, like shared FILE* state) ---
	w.register("db_read_row", []ast.Type{ast.TInt}, ast.TInt, rw("db.cursor"),
		func(args []value.Value) (value.Value, int64, error) {
			i := args[0].AsInt()
			if i < 0 || i >= int64(len(w.dbRows)) {
				return value.Value{}, 0, errArg("db_read_row", "row out of range")
			}
			w.dbCursor++
			// Return a buffer handle over the row (copied as bytes of ids).
			row := w.dbRows[i]
			ids := make([]byte, 0, len(row))
			for _, it := range row {
				ids = append(ids, byte(it))
			}
			w.bufs = append(w.bufs, ids)
			return value.Int(int64(len(w.bufs) - 1)), 120 + int64(len(row)), nil
		})
	w.register("row_len", []ast.Type{ast.TInt}, ast.TInt, effects.Decl{},
		func(args []value.Value) (value.Value, int64, error) {
			b, err := w.buf(args[0].AsInt())
			if err != nil {
				return value.Value{}, 0, err
			}
			return value.Int(int64(len(b))), 2, nil
		})
	w.register("row_item", []ast.Type{ast.TInt, ast.TInt}, ast.TInt, effects.Decl{},
		func(args []value.Value) (value.Value, int64, error) {
			b, err := w.buf(args[0].AsInt())
			if err != nil {
				return value.Value{}, 0, err
			}
			k := args[1].AsInt()
			if k < 0 || k >= int64(len(b)) {
				return value.Value{}, 0, errArg("row_item", "index out of range")
			}
			return value.Int(int64(b[k])), 3, nil
		})

	// --- Bitmap itemsets (geti) ---
	w.register("bitmap_new", []ast.Type{ast.TInt}, ast.TInt, allocates(rw("bitmaps"), "bitmaps"),
		func(args []value.Value) (value.Value, int64, error) {
			n := args[0].AsInt()
			w.bitmaps = append(w.bitmaps, make([]uint64, (n+63)/64))
			return value.Int(int64(len(w.bitmaps) - 1)), 80, nil
		})
	w.register("bitmap_set", []ast.Type{ast.TInt, ast.TInt}, ast.TVoid, instanced(keyed(rw("bitmaps"), "bitmaps", 1), "bitmaps", 0),
		func(args []value.Value) (value.Value, int64, error) {
			bm, key := args[0].AsInt(), args[1].AsInt()
			if bm < 0 || bm >= int64(len(w.bitmaps)) {
				return value.Value{}, 0, errArg("bitmap_set", "bad bitmap")
			}
			b := w.bitmaps[bm]
			if key < 0 || key >= int64(len(b)*64) {
				return value.Value{}, 0, errArg("bitmap_set", "key out of range")
			}
			b[key/64] |= 1 << (uint(key) % 64)
			return value.Void(), 50, nil
		})
	w.register("bitmap_get", []ast.Type{ast.TInt, ast.TInt}, ast.TBool, instanced(keyed(rw("bitmaps"), "bitmaps", 1), "bitmaps", 0),
		func(args []value.Value) (value.Value, int64, error) {
			bm, key := args[0].AsInt(), args[1].AsInt()
			if bm < 0 || bm >= int64(len(w.bitmaps)) {
				return value.Value{}, 0, errArg("bitmap_get", "bad bitmap")
			}
			b := w.bitmaps[bm]
			if key < 0 || key >= int64(len(b)*64) {
				return value.Value{}, 0, errArg("bitmap_get", "key out of range")
			}
			return value.Bool(b[key/64]&(1<<(uint(key)%64)) != 0), 50, nil
		})
	w.register("bitmap_count", []ast.Type{ast.TInt}, ast.TInt, instanced(rw("bitmaps"), "bitmaps", 0),
		func(args []value.Value) (value.Value, int64, error) {
			bm := args[0].AsInt()
			if bm < 0 || bm >= int64(len(w.bitmaps)) {
				return value.Value{}, 0, errArg("bitmap_count", "bad bitmap")
			}
			n := int64(0)
			for _, word := range w.bitmaps[bm] {
				for ; word != 0; word &= word - 1 {
					n++
				}
			}
			return value.Int(n), 60, nil
		})

	// --- STL-like vector (geti output container) ---
	w.register("vec_new", nil, ast.TInt, allocates(rw("vectors"), "vectors"),
		func(args []value.Value) (value.Value, int64, error) {
			w.vectors = append(w.vectors, nil)
			return value.Int(int64(len(w.vectors) - 1)), 40, nil
		})
	w.register("vec_push", []ast.Type{ast.TInt, ast.TInt}, ast.TVoid, instanced(rw("vectors"), "vectors", 0),
		func(args []value.Value) (value.Value, int64, error) {
			v := args[0].AsInt()
			if v < 0 || v >= int64(len(w.vectors)) {
				return value.Value{}, 0, errArg("vec_push", "bad vector")
			}
			w.vectors[v] = append(w.vectors[v], args[1].AsInt())
			return value.Void(), 45, nil
		})
	w.register("vec_len", []ast.Type{ast.TInt}, ast.TInt, instanced(rw("vectors"), "vectors", 0),
		func(args []value.Value) (value.Value, int64, error) {
			v := args[0].AsInt()
			if v < 0 || v >= int64(len(w.vectors)) {
				return value.Value{}, 0, errArg("vec_len", "bad vector")
			}
			return value.Int(int64(len(w.vectors[v]))), 5, nil
		})

	// --- Itemsets (eclat): insertion order is semantically significant
	// (the intersection code depends on a deterministic prefix), unlike the
	// list-of-itemsets container with set semantics. ---
	w.register("iset_new", nil, ast.TInt, allocates(rw("itemsets"), "itemsets"),
		func(args []value.Value) (value.Value, int64, error) {
			w.itemsets = append(w.itemsets, nil)
			return value.Int(int64(len(w.itemsets) - 1)), 60, nil
		})
	w.register("iset_insert", []ast.Type{ast.TInt, ast.TInt}, ast.TVoid, instanced(rw("itemsets"), "itemsets", 0),
		func(args []value.Value) (value.Value, int64, error) {
			s := args[0].AsInt()
			if s < 0 || s >= int64(len(w.itemsets)) {
				return value.Value{}, 0, errArg("iset_insert", "bad itemset")
			}
			w.itemsets[s] = append(w.itemsets[s], args[1].AsInt())
			return value.Void(), 40, nil
		})
	// iset_intersect_size is the heavy computation: it intersects two
	// itemsets. It reads only its two operand itemsets, which the
	// workloads keep iteration-local or frozen before the loop, so it is
	// declared effect-free (standing in for the paper's alias analysis
	// proving distinct objects disjoint).
	w.register("iset_intersect_size", []ast.Type{ast.TInt, ast.TInt}, ast.TInt, effects.Decl{},
		func(args []value.Value) (value.Value, int64, error) {
			a, b := args[0].AsInt(), args[1].AsInt()
			if a < 0 || a >= int64(len(w.itemsets)) || b < 0 || b >= int64(len(w.itemsets)) {
				return value.Value{}, 0, errArg("iset_intersect_size", "bad itemset")
			}
			sa, sb := w.itemsets[a], w.itemsets[b]
			n := int64(0)
			if interp.FastEnabled {
				// Reuse one epoch-stamped scratch map: a per-call
				// allocation here dominates the host profile on the
				// mining workloads.
				w.isectEpoch++
				if w.isectSeen == nil {
					w.isectSeen = make(map[int64]uint32, 64)
				}
				for _, x := range sa {
					w.isectSeen[x] = w.isectEpoch
				}
				for _, x := range sb {
					if w.isectSeen[x] == w.isectEpoch {
						n++
					}
				}
			} else {
				seen := map[int64]bool{}
				for _, x := range sa {
					seen[x] = true
				}
				for _, x := range sb {
					if seen[x] {
						n++
					}
				}
			}
			cost := 40 + 45*int64(len(sa)+len(sb))
			return value.Int(n), cost, nil
		})
	w.register("lists_new", nil, ast.TInt, rw("lists"),
		func(args []value.Value) (value.Value, int64, error) {
			w.lists = append(w.lists, nil)
			return value.Int(int64(len(w.lists) - 1)), 40, nil
		})
	w.register("lists_insert", []ast.Type{ast.TInt, ast.TInt}, ast.TVoid, rw("lists"),
		func(args []value.Value) (value.Value, int64, error) {
			l := args[0].AsInt()
			if l < 0 || l >= int64(len(w.lists)) {
				return value.Value{}, 0, errArg("lists_insert", "bad list")
			}
			w.lists[l] = append(w.lists[l], args[1].AsInt())
			return value.Void(), 45, nil
		})
	w.register("lists_len", []ast.Type{ast.TInt}, ast.TInt, rw("lists"),
		func(args []value.Value) (value.Value, int64, error) {
			l := args[0].AsInt()
			if l < 0 || l >= int64(len(w.lists)) {
				return value.Value{}, 0, errArg("lists_len", "bad list")
			}
			return value.Int(int64(len(w.lists[l]))), 5, nil
		})

	// --- statistics accumulator (eclat's Stats class) ---
	w.register("stats_add", []ast.Type{ast.TInt}, ast.TVoid, rw("stats"),
		func(args []value.Value) (value.Value, int64, error) {
			w.statsN++
			w.statsSum += float64(args[0].AsInt())
			return value.Void(), 35, nil
		})
	w.register("stats_count", nil, ast.TInt, rw("stats"),
		func(args []value.Value) (value.Value, int64, error) {
			return value.Int(w.statsN), 10, nil
		})
	w.register("stats_mean", nil, ast.TFloat, rw("stats"),
		func(args []value.Value) (value.Value, int64, error) {
			if w.statsN == 0 {
				return value.Float(0), 10, nil
			}
			return value.Float(w.statsSum / float64(w.statsN)), 10, nil
		})
}

// VectorContents returns a sorted copy of a vector (validators compare
// set contents independent of arrival order).
func (w *World) VectorContents(v int) []string {
	if v < 0 || v >= len(w.vectors) {
		return nil
	}
	out := make([]string, 0, len(w.vectors[v]))
	for _, x := range w.vectors[v] {
		out = append(out, fmt.Sprintf("%d", x))
	}
	sort.Strings(out)
	return out
}
