package builtins

import (
	"repro/internal/ast"
	"repro/internal/effects"
	"repro/internal/vm/value"
)

// em3d substrate: a bipartite graph built over a linked list of nodes. The
// outer loop of the paper's graph construction walks the list (pointer
// chasing — no DOALL) while the body picks random neighbors through the
// shared-seed RNG and performs per-node initialization work.

// BuildNodeList installs n nodes linked in order; node handles are 1-based
// (0 is the null pointer).
func (w *World) BuildNodeList(n int) {
	w.nodes = make([]emNode, n)
	for i := range w.nodes {
		next := int64(i + 2)
		if i == n-1 {
			next = 0
		}
		w.nodes[i].next = next
	}
}

func (w *World) node(h int64) (*emNode, error) {
	if h <= 0 || h > int64(len(w.nodes)) {
		return nil, errArg("node", "bad node handle")
	}
	return &w.nodes[h-1], nil
}

// GraphDegrees returns the neighbor count per node (validators check
// structure without depending on RNG order).
func (w *World) GraphDegrees() []int {
	out := make([]int, len(w.nodes))
	for i := range w.nodes {
		out[i] = len(w.nodes[i].neighbors)
	}
	return out
}

func (w *World) registerGraph() {
	w.register("ll_head", nil, ast.TInt, effects.Decl{Reads: []effects.Loc{effects.TagLoc("graph.list")}},
		func(args []value.Value) (value.Value, int64, error) {
			if len(w.nodes) == 0 {
				return value.Int(0), 20, nil
			}
			return value.Int(1), 20, nil
		})
	w.register("ll_next", []ast.Type{ast.TInt}, ast.TInt, effects.Decl{Reads: []effects.Loc{effects.TagLoc("graph.list")}},
		func(args []value.Value) (value.Value, int64, error) {
			n, err := w.node(args[0].AsInt())
			if err != nil {
				return value.Value{}, 0, err
			}
			// Pointer chasing cost: a dependent cache miss.
			return value.Int(n.next), 90, nil
		})
	// node_init performs the per-node field initialization (heavy).
	w.register("node_init", []ast.Type{ast.TInt, ast.TInt}, ast.TInt, effects.Decl{},
		func(args []value.Value) (value.Value, int64, error) {
			h := args[0].AsInt()
			work := args[1].AsInt()
			n, err := w.node(h)
			if err != nil {
				return value.Value{}, 0, err
			}
			acc := 1.0
			for i := int64(0); i < work; i++ {
				acc = acc*1.000000119 + float64((h+i)%7)
			}
			n.value = acc
			return value.Int(int64(acc) & 0xffff), 50 + work*3, nil
		})
	// graph_connect links node -> other (the neighbor chosen via the RNG).
	// It mutates only *node, and the construction loop visits each node
	// once, so the writes are alias-disjoint across iterations; the effect
	// declaration is empty for the same reason the paper's alias analysis
	// finds no conflict (DESIGN.md).
	w.register("graph_connect", []ast.Type{ast.TInt, ast.TInt}, ast.TVoid, effects.Decl{},
		func(args []value.Value) (value.Value, int64, error) {
			n, err := w.node(args[0].AsInt())
			if err != nil {
				return value.Value{}, 0, err
			}
			other := args[1].AsInt()
			if other <= 0 || other > int64(len(w.nodes)) {
				return value.Value{}, 0, errArg("graph_connect", "bad neighbor")
			}
			n.neighbors = append(n.neighbors, other)
			return value.Void(), 70, nil
		})
	w.register("graph_nodes", nil, ast.TInt, effects.Decl{Reads: []effects.Loc{effects.TagLoc("graph.list")}},
		func(args []value.Value) (value.Value, int64, error) {
			return value.Int(int64(len(w.nodes))), 10, nil
		})
}
