// Package builtins implements the substrate the benchmark programs run on:
// the "libc and libraries" of the reproduction. Every builtin carries a
// MiniC signature (for the type checker), an effect declaration over
// abstract locations (for the dependence analyzer), a virtual cost model
// (for the discrete-event simulator), and a real implementation operating
// on deterministic in-memory state.
//
// The substrate replaces what the paper's benchmarks got from the OS and
// their libraries (DESIGN.md lists each substitution): an in-memory
// filesystem with synthetic file contents, a console, a seeded linear
// congruential RNG with a shared seed variable, an HMM sequence scorer,
// bitmap/itemset/statistics containers for the mining benchmarks, a
// bipartite-graph builder, a bitmap tracer, k-means state, and a packet
// pool with a URL match table.
package builtins

import (
	"crypto/md5"
	"encoding/binary"
	"fmt"

	"repro/internal/ast"
	"repro/internal/effects"
	"repro/internal/types"
	"repro/internal/vm/interp"
	"repro/internal/vm/value"
)

// Builtin bundles one substrate function.
type Builtin struct {
	Sig     *types.Sig
	Effects effects.Decl
	Fn      interp.BuiltinFn
}

// World is one deterministic substrate instance. Create a fresh World per
// execution so sequential and parallel runs start from identical state.
type World struct {
	reg map[string]*Builtin

	// Console output, in emission order.
	Console []string

	// Filesystem.
	files     []file
	openFiles map[int64]*file
	nextFD    int64

	// Byte buffers (file contents read into memory).
	bufs [][]byte

	// RNG: one shared seed, as in the paper's benchmarks.
	seed uint64

	// Matrices (hmmer scoring). freedMats implements deferred
	// deallocation (see matrix_free).
	matrices  map[int64][]float64
	freedMats map[int64]bool
	nextMat   int64
	liveMats  int
	// MaxLiveMats tracks the allocator high-water mark.
	MaxLiveMats int

	// Histogram (hmmer).
	histo      map[int64]int64
	histoCount int64

	// Bitmaps and vectors (geti).
	bitmaps [][]uint64
	vectors [][]int64

	// Itemsets and lists (eclat).
	itemsets [][]int64
	lists    [][]int64
	statsN   int64
	statsSum float64

	// Epoch-stamped scratch for iset_intersect_size (fast mode only): one
	// map reused across calls, entries invalidated by bumping the epoch
	// instead of reallocating.
	isectSeen  map[int64]uint32
	isectEpoch uint32

	// Transaction database (eclat, geti).
	dbRows   [][]int64
	dbCursor int

	// em3d graph.
	nodes []emNode

	// potrace bitmaps.
	traceBitmaps []traceBitmap
	outImages    []string

	// kmeans: kmCenters is the stable read-only set of the current outer
	// iteration; kmNew accumulates the running means being built.
	kmPoints  [][]float64
	kmCenters [][]float64
	kmNew     [][]float64
	kmCounts  []int64
	kmAssign  []int64

	// url switching.
	packets  []packet
	pktNext  int
	routes   []string
	logLines []string
}

type file struct {
	name string
	data []byte
	pos  int
}

type emNode struct {
	next      int64
	degree    int64
	neighbors []int64
	value     float64
}

type traceBitmap struct {
	w, h int
	bits []byte
}

type packet struct {
	url  string
	size int64
}

// NewWorld creates an empty substrate with every builtin registered.
// Workload generators then populate files, databases, packets, etc.
func NewWorld() *World {
	w := &World{
		reg:       map[string]*Builtin{},
		openFiles: map[int64]*file{},
		nextFD:    1,
		seed:      0x2545F4914F6CDD1D,
		matrices:  map[int64][]float64{},
		freedMats: map[int64]bool{},
		nextMat:   1,
		histo:     map[int64]int64{},
	}
	w.registerCore()
	w.registerFS()
	w.registerRNG()
	w.registerHMM()
	w.registerMining()
	w.registerGraph()
	w.registerTrace()
	w.registerKMeans()
	w.registerNet()
	return w
}

// register adds one builtin; duplicate names are programming errors.
func (w *World) register(name string, params []ast.Type, result ast.Type, eff effects.Decl, fn interp.BuiltinFn) {
	if _, dup := w.reg[name]; dup {
		panic("builtins: duplicate " + name)
	}
	w.reg[name] = &Builtin{
		Sig:     &types.Sig{Name: name, Params: params, Result: result},
		Effects: eff,
		Fn:      fn,
	}
}

// registerPure adds a builtin usable inside COMMSETPREDICATE expressions.
func (w *World) registerPure(name string, params []ast.Type, result ast.Type, fn interp.BuiltinFn) {
	w.register(name, params, result, effects.Decl{}, fn)
	w.reg[name].Sig.Pure = true
}

// Sigs returns the signature table for the type checker.
func (w *World) Sigs() map[string]*types.Sig {
	out := make(map[string]*types.Sig, len(w.reg))
	for n, b := range w.reg {
		out[n] = b.Sig
	}
	return out
}

// EffectTable returns the effect declarations for the dependence analyzer.
func (w *World) EffectTable() effects.Table {
	out := make(effects.Table, len(w.reg))
	for n, b := range w.reg {
		out[n] = b.Effects
	}
	return out
}

// ConservativeEffectTable models the paper's non-COMMSET baseline: a
// parallelizing tool that cannot see into separately compiled libraries
// must assume every library call reads and writes unknown external state
// ("a parallelizing tool cannot infer this automatically without knowing
// the client specific semantics of I/O calls", Section 2). Every builtin
// additionally reads and writes one conservative external location.
func (w *World) ConservativeEffectTable() effects.Table {
	extern := effects.TagLoc("extern.lib")
	out := make(effects.Table, len(w.reg))
	for n, b := range w.reg {
		d := effects.Decl{
			Reads:  append(append([]effects.Loc{}, b.Effects.Reads...), extern),
			Writes: append(append([]effects.Loc{}, b.Effects.Writes...), extern),
		}
		out[n] = d
	}
	return out
}

// Fns returns the implementations for the interpreter.
func (w *World) Fns() map[string]interp.BuiltinFn {
	out := make(map[string]interp.BuiltinFn, len(w.reg))
	for n, b := range w.reg {
		out[n] = b.Fn
	}
	return out
}

// errArg standardizes substrate argument errors.
func errArg(name, msg string) error { return fmt.Errorf("builtin %s: %s", name, msg) }

// --- core: console, conversions, synthetic compute ---

func rw(tags ...string) effects.Decl {
	var d effects.Decl
	for _, t := range tags {
		d.Reads = append(d.Reads, effects.TagLoc(t))
		d.Writes = append(d.Writes, effects.TagLoc(t))
	}
	return d
}

func wo(tags ...string) effects.Decl {
	var d effects.Decl
	for _, t := range tags {
		d.Writes = append(d.Writes, effects.TagLoc(t))
	}
	return d
}

// keyed marks argument arg as selecting the disjoint element of tag that the
// builtin touches (e.g. bitmap_set(bm, key) accesses only bit `key`).
func keyed(d effects.Decl, tag string, arg int) effects.Decl {
	if d.KeyedBy == nil {
		d.KeyedBy = map[effects.Loc]int{}
	}
	d.KeyedBy[effects.TagLoc(tag)] = arg
	return d
}

// instanced marks argument arg as selecting which handle of tag the builtin
// touches (e.g. bitmap_count(bm) reads only bitmap `bm`). Operations on
// provably distinct handles never conflict on the tag. Only per-handle
// operations qualify: a builtin that also touches the shared handle
// registry (an allocator's append) must not be instanced.
func instanced(d effects.Decl, tag string, arg int) effects.Decl {
	if d.InstanceBy == nil {
		d.InstanceBy = map[effects.Loc]int{}
	}
	d.InstanceBy[effects.TagLoc(tag)] = arg
	return d
}

// allocates marks the builtin as returning a globally fresh handle of tag
// (no earlier or concurrent call ever returned it). The builtin's own
// registry access stays uninstanced: concurrent allocations still conflict
// with each other.
func allocates(d effects.Decl, tag string) effects.Decl {
	d.Allocates = append(d.Allocates, effects.TagLoc(tag))
	return d
}

func (w *World) registerCore() {
	w.register("print_str", []ast.Type{ast.TString}, ast.TVoid, wo("io.console"),
		func(args []value.Value) (value.Value, int64, error) {
			w.Console = append(w.Console, args[0].AsString())
			return value.Void(), 80, nil
		})
	w.register("print_int", []ast.Type{ast.TInt}, ast.TVoid, wo("io.console"),
		func(args []value.Value) (value.Value, int64, error) {
			w.Console = append(w.Console, fmt.Sprintf("%d", args[0].AsInt()))
			return value.Void(), 80, nil
		})
	w.register("print_float", []ast.Type{ast.TFloat}, ast.TVoid, wo("io.console"),
		func(args []value.Value) (value.Value, int64, error) {
			w.Console = append(w.Console, fmt.Sprintf("%.4f", args[0].AsFloat()))
			return value.Void(), 80, nil
		})
	w.registerPure("itof", []ast.Type{ast.TInt}, ast.TFloat,
		func(args []value.Value) (value.Value, int64, error) {
			return value.Float(float64(args[0].AsInt())), 1, nil
		})
	w.registerPure("ftoi", []ast.Type{ast.TFloat}, ast.TInt,
		func(args []value.Value) (value.Value, int64, error) {
			return value.Int(int64(args[0].AsFloat())), 1, nil
		})
	w.registerPure("int_to_str", []ast.Type{ast.TInt}, ast.TString,
		func(args []value.Value) (value.Value, int64, error) {
			return value.Str(fmt.Sprintf("%d", args[0].AsInt())), 4, nil
		})
	w.registerPure("iabs", []ast.Type{ast.TInt}, ast.TInt,
		func(args []value.Value) (value.Value, int64, error) {
			v := args[0].AsInt()
			if v < 0 {
				v = -v
			}
			return value.Int(v), 1, nil
		})
	// burn performs n units of real arithmetic (a stateless deterministic
	// mixer) and charges n cost units: synthetic CPU work for calibration.
	w.registerPure("burn", []ast.Type{ast.TInt}, ast.TInt,
		func(args []value.Value) (value.Value, int64, error) {
			n := args[0].AsInt()
			if n < 0 {
				n = 0
			}
			r := cachedBurn(n, func() int64 {
				h := uint64(n) ^ 0x9e3779b97f4a7c15
				for i := int64(0); i < n/64; i++ {
					h = h*6364136223846793005 + 1442695040888963407
					h ^= h >> 29
				}
				return int64(h & 0x7fffffff)
			})
			return value.Int(r), n, nil
		})
}

// --- filesystem ---

// AddFile installs a synthetic file. Content is derived deterministically
// from the file index so workloads are reproducible (and fast mode can
// share one generated copy across worlds — file data is never written).
func (w *World) AddFile(name string, size int) {
	idx := len(w.files)
	data := cachedFileData(idx, size, func() []byte {
		data := make([]byte, size)
		h := uint64(idx)*0x9e3779b97f4a7c15 + 0xabcdef
		for i := 0; i < size; i += 8 {
			h = h*6364136223846793005 + 1442695040888963407
			binary.LittleEndian.PutUint64(pad(data, i), h)
		}
		return data
	})
	w.files = append(w.files, file{name: name, data: data})
}

func pad(b []byte, i int) []byte {
	if i+8 <= len(b) {
		return b[i : i+8]
	}
	tmp := make([]byte, 8)
	copy(tmp, b[i:])
	return tmp
}

// NumFiles reports how many files the world holds.
func (w *World) NumFiles() int { return len(w.files) }

func (w *World) registerFS() {
	w.register("file_count", nil, ast.TInt, effects.Decl{Reads: []effects.Loc{effects.TagLoc("fs.table")}},
		func(args []value.Value) (value.Value, int64, error) {
			return value.Int(int64(len(w.files))), 20, nil
		})
	// fopen_idx opens the i-th input file (the benchmarks iterate over an
	// input file list, so indexing replaces name lookup).
	w.register("fopen_idx", []ast.Type{ast.TInt}, ast.TInt, rw("fs.table"),
		func(args []value.Value) (value.Value, int64, error) {
			i := args[0].AsInt()
			if i < 0 || i >= int64(len(w.files)) {
				return value.Value{}, 0, errArg("fopen_idx", fmt.Sprintf("no file %d", i))
			}
			fd := w.nextFD
			w.nextFD++
			f := w.files[i]
			w.openFiles[fd] = &file{name: f.name, data: f.data}
			return value.Int(fd), 120, nil
		})
	w.register("fname", []ast.Type{ast.TInt}, ast.TString, effects.Decl{Reads: []effects.Loc{effects.TagLoc("fs.table")}},
		func(args []value.Value) (value.Value, int64, error) {
			f := w.openFiles[args[0].AsInt()]
			if f == nil {
				return value.Value{}, 0, errArg("fname", "bad fd")
			}
			return value.Str(f.name), 20, nil
		})
	// fread_all reads the remaining contents into a buffer handle.
	w.register("fread_all", []ast.Type{ast.TInt}, ast.TInt, rw("fs.file"),
		func(args []value.Value) (value.Value, int64, error) {
			f := w.openFiles[args[0].AsInt()]
			if f == nil {
				return value.Value{}, 0, errArg("fread_all", "bad fd")
			}
			buf := f.data[f.pos:]
			f.pos = len(f.data)
			w.bufs = append(w.bufs, buf)
			return value.Int(int64(len(w.bufs) - 1)), 60 + int64(len(buf))/64, nil
		})
	w.register("fclose", []ast.Type{ast.TInt}, ast.TVoid, rw("fs.table", "fs.file"),
		func(args []value.Value) (value.Value, int64, error) {
			fd := args[0].AsInt()
			if w.openFiles[fd] == nil {
				return value.Value{}, 0, errArg("fclose", "bad fd")
			}
			delete(w.openFiles, fd)
			return value.Void(), 60, nil
		})
	// fwrite_line appends to a named output file (url logging, potrace).
	w.register("fwrite_line", []ast.Type{ast.TString}, ast.TVoid, rw("fs.out"),
		func(args []value.Value) (value.Value, int64, error) {
			w.logLines = append(w.logLines, args[0].AsString())
			return value.Void(), 90, nil
		})
	w.register("buf_len", []ast.Type{ast.TInt}, ast.TInt, effects.Decl{},
		func(args []value.Value) (value.Value, int64, error) {
			b, err := w.buf(args[0].AsInt())
			if err != nil {
				return value.Value{}, 0, err
			}
			return value.Int(int64(len(b))), 2, nil
		})
	// md5_buf computes the real MD5 digest of a buffer; cost scales with
	// size like the real computation.
	w.register("md5_buf", []ast.Type{ast.TInt}, ast.TString, effects.Decl{},
		func(args []value.Value) (value.Value, int64, error) {
			b, err := w.buf(args[0].AsInt())
			if err != nil {
				return value.Value{}, 0, err
			}
			digest := cachedMD5(b, func() string {
				sum := md5.Sum(b)
				return fmt.Sprintf("%x", sum[:])
			})
			return value.Str(digest), 200 + int64(len(b)), nil
		})
}

func (w *World) buf(h int64) ([]byte, error) {
	if h < 0 || h >= int64(len(w.bufs)) {
		return nil, errArg("buffer", "bad handle")
	}
	return w.bufs[h], nil
}

// LogLines exposes output-file lines for validation.
func (w *World) LogLines() []string { return w.logLines }
