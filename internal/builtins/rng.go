package builtins

import (
	"repro/internal/ast"
	"repro/internal/vm/value"
)

// The RNG library mirrors the shared-seed random number generator of
// 456.hmmer and em3d: every routine reads and updates one global seed
// variable, so unannotated calls serialize the loop. The paper breaks this
// dependence by asserting self- and group-commutativity of the routines
// ("any permutation of a random number sequence still preserves the
// properties of the distribution").

// nextSeed advances the shared seed (SplitMix64 step).
func (w *World) nextSeed() uint64 {
	w.seed += 0x9e3779b97f4a7c15
	z := w.seed
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Seed reseeds the world RNG (used by workload setup).
func (w *World) Seed(s uint64) { w.seed = s }

func (w *World) registerRNG() {
	seedEff := rw("rng.seed")
	w.register("rng_int", nil, ast.TInt, seedEff,
		func(args []value.Value) (value.Value, int64, error) {
			return value.Int(int64(w.nextSeed() & 0x7fffffffffffffff)), 40, nil
		})
	w.register("rng_range", []ast.Type{ast.TInt}, ast.TInt, seedEff,
		func(args []value.Value) (value.Value, int64, error) {
			n := args[0].AsInt()
			if n <= 0 {
				return value.Value{}, 0, errArg("rng_range", "non-positive bound")
			}
			return value.Int(int64(w.nextSeed() % uint64(n))), 40, nil
		})
	w.register("rng_float", nil, ast.TFloat, seedEff,
		func(args []value.Value) (value.Value, int64, error) {
			return value.Float(float64(w.nextSeed()>>11) / (1 << 53)), 40, nil
		})
}
