package builtins

import (
	"repro/internal/ast"
	"repro/internal/effects"
	"repro/internal/vm/interp"
	"repro/internal/vm/value"
)

// The hmmer substrate reproduces 456.hmmer's main-loop structure: generate
// a random protein sequence, score it with a dynamic-programming pass over
// a freshly allocated matrix, update a histogram, and free the matrix. The
// matrix allocator and the histogram are shared library state; the score
// itself is pure compute that dominates the iteration.

const hmmAlphabet = 20

func (w *World) registerHMM() {
	// seq_gen draws a random sequence of the given length from the shared
	// RNG and returns its handle (stored as a buffer of residues).
	w.register("seq_gen", []ast.Type{ast.TInt}, ast.TInt, rw("rng.seed"),
		func(args []value.Value) (value.Value, int64, error) {
			n := args[0].AsInt()
			if n <= 0 {
				return value.Value{}, 0, errArg("seq_gen", "non-positive length")
			}
			seq := make([]byte, n)
			for i := range seq {
				seq[i] = byte(w.nextSeed() % hmmAlphabet)
			}
			w.bufs = append(w.bufs, seq)
			return value.Int(int64(len(w.bufs) - 1)), 30 + 12*n, nil
		})

	// matrix_alloc allocates an n-state scoring matrix from the shared
	// allocator (the alloc/dealloc pair the paper lets commute on separate
	// iterations).
	w.register("matrix_alloc", []ast.Type{ast.TInt}, ast.TInt, rw("heap.matrix"),
		func(args []value.Value) (value.Value, int64, error) {
			n := args[0].AsInt()
			if n <= 0 {
				return value.Value{}, 0, errArg("matrix_alloc", "non-positive size")
			}
			h := w.nextMat
			w.nextMat++
			m := cachedMatrix(h, n, func() []float64 {
				m := make([]float64, n*hmmAlphabet)
				for i := range m {
					// Deterministic emission scores independent of the shared
					// seed (so allocation commutes with sequence generation).
					x := uint64(h)*0x9e3779b97f4a7c15 + uint64(i)*0xbf58476d1ce4e5b9
					m[i] = float64(x%1000)/1000.0 - 0.5
				}
				return m
			})
			w.matrices[h] = m
			w.liveMats++
			if w.liveMats > w.MaxLiveMats {
				w.MaxLiveMats = w.liveMats
			}
			return value.Int(h), 150, nil
		})

	// matrix_free releases the matrix with deferred-deallocation semantics:
	// the backing store stays readable until the world is discarded (an
	// epoch/arena allocator). This stands in for the alias analysis the
	// paper relies on — a schedule may only reorder frees against uses of
	// *other* iterations' matrices, and deferred reclamation makes that
	// reordering harmless, as in the original system. Double frees are
	// still detected.
	w.register("matrix_free", []ast.Type{ast.TInt}, ast.TVoid, rw("heap.matrix"),
		func(args []value.Value) (value.Value, int64, error) {
			h := args[0].AsInt()
			if _, ok := w.matrices[h]; !ok {
				return value.Value{}, 0, errArg("matrix_free", "bad matrix handle")
			}
			if w.freedMats[h] {
				return value.Value{}, 0, errArg("matrix_free", "double free")
			}
			w.freedMats[h] = true
			w.liveMats--
			return value.Void(), 100, nil
		})

	// hmm_score runs a small Viterbi-style dynamic program of the sequence
	// against the matrix: the real compute of the loop.
	w.register("hmm_score", []ast.Type{ast.TInt, ast.TInt}, ast.TInt, effects.Decl{},
		func(args []value.Value) (value.Value, int64, error) {
			seq, err := w.buf(args[0].AsInt())
			if err != nil {
				return value.Value{}, 0, err
			}
			mat := args[1].AsInt()
			m, ok := w.matrices[mat]
			if !ok {
				return value.Value{}, 0, errArg("hmm_score", "bad matrix handle")
			}
			states := len(m) / hmmAlphabet
			cost := int64(len(seq)) * int64(states) * 3
			dp := func() int64 {
				prev := make([]float64, states)
				cur := make([]float64, states)
				for _, r := range seq {
					for s := 0; s < states; s++ {
						best := prev[s]
						if s > 0 && prev[s-1] > best {
							best = prev[s-1]
						}
						cur[s] = best + m[s*hmmAlphabet+int(r)]
					}
					prev, cur = cur, prev
				}
				best := prev[0]
				for _, v := range prev {
					if v > best {
						best = v
					}
				}
				return int64(best * 100)
			}
			var score int64
			if interp.FastEnabled {
				// The score is a pure function of the sequence content and
				// the matrix (itself a pure function of handle and size), so
				// fast mode content-addresses it: identical sequences recur
				// across schedules and repeated runs, and hashing is ~100x
				// cheaper than the dynamic program.
				score = cachedScore(scoreKey{
					seqHash: hashBytes(seq), seqLen: len(seq),
					mat: mat, matLen: len(m),
				}, dp)
			} else {
				score = dp()
			}
			return value.Int(score), cost, nil
		})

	// histogram_add performs the abstract SUM the paper marks
	// self-commutative despite its floating-point internals.
	w.register("histogram_add", []ast.Type{ast.TInt}, ast.TVoid, rw("histogram"),
		func(args []value.Value) (value.Value, int64, error) {
			bucket := args[0].AsInt() / 50
			w.histo[bucket]++
			w.histoCount++
			return value.Void(), 60, nil
		})
	w.register("histogram_count", nil, ast.TInt, rw("histogram"),
		func(args []value.Value) (value.Value, int64, error) {
			return value.Int(w.histoCount), 10, nil
		})
}

// LiveMatrices reports currently allocated matrices (leak checks in tests).
func (w *World) LiveMatrices() int { return w.liveMats }
