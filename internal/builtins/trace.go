package builtins

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/effects"
	"repro/internal/vm/value"
)

// potrace substrate: input bitmaps are vectorized into path strings. The
// tracing pass is the heavy compute; reading inputs and writing output
// images are file operations that commute across distinct inputs. In the
// single-output-file mode the writes must stay in sequential order.

// AddBitmaps installs n deterministic synthetic bitmaps of the given size.
func (w *World) AddBitmaps(n, side int) {
	for b := 0; b < n; b++ {
		bits := make([]byte, side*side)
		h := uint64(b)*0x9e3779b97f4a7c15 + 7
		for i := range bits {
			h = h*6364136223846793005 + 1442695040888963407
			if (h>>33)%5 < 2 {
				bits[i] = 1
			}
		}
		w.traceBitmaps = append(w.traceBitmaps, traceBitmap{w: side, h: side, bits: bits})
	}
}

// NumBitmaps reports installed bitmap count.
func (w *World) NumBitmaps() int { return len(w.traceBitmaps) }

// OutImages exposes written images for validation.
func (w *World) OutImages() []string { return w.outImages }

func (w *World) registerTrace() {
	w.register("bmp_count", nil, ast.TInt, effects.Decl{Reads: []effects.Loc{effects.TagLoc("fs.table")}},
		func(args []value.Value) (value.Value, int64, error) {
			return value.Int(int64(len(w.traceBitmaps))), 20, nil
		})
	w.register("bmp_open", []ast.Type{ast.TInt}, ast.TInt, rw("fs.table"),
		func(args []value.Value) (value.Value, int64, error) {
			i := args[0].AsInt()
			if i < 0 || i >= int64(len(w.traceBitmaps)) {
				return value.Value{}, 0, errArg("bmp_open", "no bitmap")
			}
			return value.Int(i), 140, nil
		})
	// bmp_trace runs a real boundary-following pass over the bitmap and
	// summarizes the traced contours; this is the dominant compute.
	w.register("bmp_trace", []ast.Type{ast.TInt}, ast.TString, effects.Decl{},
		func(args []value.Value) (value.Value, int64, error) {
			i := args[0].AsInt()
			if i < 0 || i >= int64(len(w.traceBitmaps)) {
				return value.Value{}, 0, errArg("bmp_trace", "no bitmap")
			}
			bm := w.traceBitmaps[i]
			// Count boundary transitions row-wise and column-wise: a cheap
			// but real stand-in for contour extraction.
			edges := 0
			for y := 0; y < bm.h; y++ {
				for x := 1; x < bm.w; x++ {
					if bm.bits[y*bm.w+x] != bm.bits[y*bm.w+x-1] {
						edges++
					}
				}
			}
			for x := 0; x < bm.w; x++ {
				for y := 1; y < bm.h; y++ {
					if bm.bits[y*bm.w+x] != bm.bits[(y-1)*bm.w+x] {
						edges++
					}
				}
			}
			cost := int64(bm.w*bm.h) * 6
			return value.Str(fmt.Sprintf("path[%d:%d]", i, edges)), cost, nil
		})
	// img_write appends a traced image to the output stream (the shared
	// output file of the multi-image mode).
	w.register("img_write", []ast.Type{ast.TString}, ast.TVoid, rw("fs.out"),
		func(args []value.Value) (value.Value, int64, error) {
			w.outImages = append(w.outImages, args[0].AsString())
			return value.Void(), 350, nil
		})
}
