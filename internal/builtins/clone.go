package builtins

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Clone deep-copies the world's mutable state into a fresh World whose
// builtin closures capture the copy. Immutable payloads (file data,
// buffer contents, kmeans points, packets, db rows, graph topology) are
// shared; everything a builtin can mutate in place is copied. The
// sanitizer uses clones as replayable pre-state snapshots.
func (w *World) Clone() *World {
	c := NewWorld()

	c.Console = append([]string(nil), w.Console...)

	c.files = append([]file(nil), w.files...)
	c.openFiles = make(map[int64]*file, len(w.openFiles))
	for fd, f := range w.openFiles {
		cp := *f
		c.openFiles[fd] = &cp
	}
	c.nextFD = w.nextFD
	c.bufs = append([][]byte(nil), w.bufs...)

	c.seed = w.seed

	// Matrix contents are never written after matrix_alloc (deallocation is
	// deferred and marks freedMats only), so clones share the backing
	// arrays instead of deep-copying them.
	c.matrices = make(map[int64][]float64, len(w.matrices))
	for h, m := range w.matrices {
		c.matrices[h] = m
	}
	c.freedMats = make(map[int64]bool, len(w.freedMats))
	for h, v := range w.freedMats {
		c.freedMats[h] = v
	}
	c.nextMat = w.nextMat
	c.liveMats = w.liveMats
	c.MaxLiveMats = w.MaxLiveMats

	c.histo = make(map[int64]int64, len(w.histo))
	for k, v := range w.histo {
		c.histo[k] = v
	}
	c.histoCount = w.histoCount

	c.bitmaps = make([][]uint64, len(w.bitmaps))
	for i, b := range w.bitmaps {
		c.bitmaps[i] = append([]uint64(nil), b...)
	}
	c.vectors = deepInt64(w.vectors)
	c.itemsets = deepInt64(w.itemsets)
	c.lists = deepInt64(w.lists)
	c.statsN = w.statsN
	c.statsSum = w.statsSum

	c.dbRows = append([][]int64(nil), w.dbRows...)
	c.dbCursor = w.dbCursor

	c.nodes = append([]emNode(nil), w.nodes...)

	c.traceBitmaps = make([]traceBitmap, len(w.traceBitmaps))
	for i, tb := range w.traceBitmaps {
		cp := tb
		cp.bits = append([]byte(nil), tb.bits...)
		c.traceBitmaps[i] = cp
	}
	c.outImages = append([]string(nil), w.outImages...)

	c.kmPoints = w.kmPoints
	c.kmCenters = deepFloat64(w.kmCenters)
	c.kmNew = deepFloat64(w.kmNew)
	c.kmCounts = append([]int64(nil), w.kmCounts...)
	c.kmAssign = append([]int64(nil), w.kmAssign...)

	c.packets = w.packets
	c.pktNext = w.pktNext
	c.routes = append([]string(nil), w.routes...)
	c.logLines = append([]string(nil), w.logLines...)

	return c
}

func deepInt64(s [][]int64) [][]int64 {
	out := make([][]int64, len(s))
	for i, v := range s {
		out[i] = append([]int64(nil), v...)
	}
	return out
}

func deepFloat64(s [][]float64) [][]float64 {
	out := make([][]float64, len(s))
	for i, v := range s {
		out[i] = append([]float64(nil), v...)
	}
	return out
}

// Baseline records the handle-space sizes of each allocator registry at
// snapshot time. Handles allocated before the baseline are stable
// identities across replay orders; handles allocated during a replay are
// fresh, so the observable-state diff quotients them by renaming.
type Baseline struct {
	NextFD       int64
	Bufs         int
	NextMat      int64
	Bitmaps      int
	Vectors      int
	Itemsets     int
	Lists        int
	TraceBitmaps int
}

// Baseline captures the allocator high-water marks of the world.
func (w *World) Baseline() Baseline {
	return Baseline{
		NextFD:       w.nextFD,
		Bufs:         len(w.bufs),
		NextMat:      w.nextMat,
		Bitmaps:      len(w.bitmaps),
		Vectors:      len(w.vectors),
		Itemsets:     len(w.itemsets),
		Lists:        len(w.lists),
		TraceBitmaps: len(w.traceBitmaps),
	}
}

// ObservableState renders the world's observable locations for the
// commute oracle's diff, applying the same quotients the static verifier
// uses for its update models:
//
//   - append streams (console, output files, per-handle containers) are
//     compared as sorted multisets — the annotation licenses reordering
//     the stream, not changing its contents;
//   - the RNG seed (UScramble) is excluded — draws are taped separately;
//   - float accumulators (UBump) render through %.9g so IEEE
//     reassociation noise does not read as a semantic difference;
//   - handles allocated after base are quotiented by renaming: rendered
//     as a multiset of contents, while pre-existing handles keep their
//     identity as the map key.
func (w *World) ObservableState(base Baseline) map[string]string {
	out := map[string]string{}

	out["io.console"] = multiset(w.Console)
	out["fs.log"] = multiset(w.logLines)
	out["fs.images"] = multiset(w.outImages)

	var freshFDs []string
	for fd, f := range w.openFiles {
		r := fmt.Sprintf("%s:%d", f.name, f.pos)
		if fd < base.NextFD {
			out[fmt.Sprintf("fs.fd:%d", fd)] = r
		} else {
			freshFDs = append(freshFDs, r)
		}
	}
	out["fs.fd.fresh"] = multiset(freshFDs)
	var freshBufs []string
	for i := base.Bufs; i < len(w.bufs); i++ {
		freshBufs = append(freshBufs, fmt.Sprintf("len:%d", len(w.bufs[i])))
	}
	out["fs.buf.fresh"] = multiset(freshBufs)

	var freshMats []string
	for h, m := range w.matrices {
		// Matrices are immutable after creation, so fast mode memoizes
		// their rendering by backing-array identity (the arrays are shared
		// across clones and recur on every replay diff).
		r := cachedFloatRender(m, func() string { return renderFloats(m) })
		if h < base.NextMat {
			out[fmt.Sprintf("hmm.mat:%d", h)] = r
		} else {
			freshMats = append(freshMats, r)
		}
	}
	out["hmm.mat.fresh"] = multiset(freshMats)
	for h := range w.freedMats {
		if h < base.NextMat {
			out[fmt.Sprintf("hmm.freed:%d", h)] = "freed"
		}
	}

	histo := make([]string, 0, len(w.histo))
	for k, v := range w.histo {
		histo = append(histo, fmt.Sprintf("%d=%d", k, v))
	}
	out["hmm.histo"] = multiset(histo)
	out["hmm.histo.count"] = fmt.Sprint(w.histoCount)

	renderHandles(out, "geti.bitmap", base.Bitmaps, w.bitmaps, func(b []uint64) string {
		return fmt.Sprintf("%x", b)
	})
	renderHandles(out, "geti.vec", base.Vectors, w.vectors, renderInt64Multiset)
	renderHandles(out, "eclat.iset", base.Itemsets, w.itemsets, renderInt64Multiset)
	renderHandles(out, "eclat.list", base.Lists, w.lists, renderInt64Multiset)
	out["eclat.stats"] = fmt.Sprintf("n=%d sum=%.9g", w.statsN, w.statsSum)

	out["db.cursor"] = fmt.Sprint(w.dbCursor)

	nodes := make([]string, len(w.nodes))
	for i, n := range w.nodes {
		nodes[i] = fmt.Sprintf("%d:%d:%.9g", n.next, n.degree, n.value)
	}
	out["em.nodes"] = strings.Join(nodes, ";")

	renderHandles(out, "trace.bmp", base.TraceBitmaps, w.traceBitmaps, func(tb traceBitmap) string {
		return fmt.Sprintf("%dx%d:%x", tb.w, tb.h, tb.bits)
	})

	out["km.centers"] = renderFloatRows(w.kmCenters)
	out["km.new"] = renderFloatRows(w.kmNew)
	out["km.counts"] = renderInt64s(w.kmCounts)
	out["km.assign"] = renderInt64s(w.kmAssign)

	out["pkt.next"] = fmt.Sprint(w.pktNext)
	out["pkt.routes"] = strings.Join(w.routes, ";")

	return out
}

// renderHandles keys pre-baseline handles by index and folds fresh ones
// into a renaming-quotient multiset.
func renderHandles[T any](out map[string]string, prefix string, base int, s []T, render func(T) string) {
	var fresh []string
	for i, v := range s {
		if i < base {
			out[fmt.Sprintf("%s:%d", prefix, i)] = render(v)
		} else {
			fresh = append(fresh, render(v))
		}
	}
	out[prefix+".fresh"] = multiset(fresh)
}

func multiset(s []string) string {
	cp := append([]string(nil), s...)
	sort.Strings(cp)
	return strings.Join(cp, "␞") // ␞ separator: never in payloads
}

func renderInt64s(s []int64) string {
	buf := make([]byte, 0, 8*len(s))
	for i, v := range s {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, v, 10)
	}
	return string(buf)
}

func renderInt64Multiset(s []int64) string {
	cp := append([]int64(nil), s...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	return renderInt64s(cp)
}

// renderFloats renders through 'g'/precision 9 — byte-identical to the
// former per-element %.9g Sprintf, without fmt's interface boxing.
func renderFloats(s []float64) string {
	buf := make([]byte, 0, 12*len(s))
	for i, v := range s {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendFloat(buf, v, 'g', 9, 64)
	}
	return string(buf)
}

func renderFloatRows(s [][]float64) string {
	parts := make([]string, len(s))
	for i, v := range s {
		parts[i] = renderFloats(v)
	}
	return strings.Join(parts, ";")
}
