package builtins

import (
	"strings"
	"testing"

	"repro/internal/vm/value"
)

// call invokes a builtin on a world, failing the test on error.
func call(t *testing.T, w *World, name string, args ...value.Value) value.Value {
	t.Helper()
	b := w.reg[name]
	if b == nil {
		t.Fatalf("no builtin %s", name)
	}
	v, cost, err := b.Fn(args)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if cost < 0 {
		t.Fatalf("%s: negative cost %d", name, cost)
	}
	return v
}

// callErr invokes a builtin expecting an error.
func callErr(t *testing.T, w *World, name string, args ...value.Value) error {
	t.Helper()
	b := w.reg[name]
	if b == nil {
		t.Fatalf("no builtin %s", name)
	}
	_, _, err := b.Fn(args)
	if err == nil {
		t.Fatalf("%s: expected error", name)
	}
	return err
}

func TestRegistryConsistency(t *testing.T) {
	w := NewWorld()
	sigs := w.Sigs()
	effs := w.EffectTable()
	fns := w.Fns()
	if len(sigs) != len(effs) || len(sigs) != len(fns) {
		t.Fatalf("table sizes differ: %d sigs, %d effects, %d fns", len(sigs), len(effs), len(fns))
	}
	for name, sig := range sigs {
		if sig.Name != name {
			t.Errorf("sig name mismatch for %s", name)
		}
	}
}

func TestFilesystem(t *testing.T) {
	w := NewWorld()
	w.AddFile("a.dat", 1000)
	w.AddFile("b.dat", 500)
	if w.NumFiles() != 2 {
		t.Fatal("NumFiles")
	}
	if n := call(t, w, "file_count").AsInt(); n != 2 {
		t.Fatalf("file_count = %d", n)
	}
	fd := call(t, w, "fopen_idx", value.Int(0))
	if name := call(t, w, "fname", fd).AsString(); name != "a.dat" {
		t.Errorf("fname = %q", name)
	}
	buf := call(t, w, "fread_all", fd)
	if n := call(t, w, "buf_len", buf).AsInt(); n != 1000 {
		t.Errorf("buf_len = %d", n)
	}
	// Reading again at EOF yields an empty buffer.
	buf2 := call(t, w, "fread_all", fd)
	if n := call(t, w, "buf_len", buf2).AsInt(); n != 0 {
		t.Errorf("second read length = %d", n)
	}
	digest := call(t, w, "md5_buf", buf).AsString()
	if len(digest) != 32 {
		t.Errorf("digest = %q", digest)
	}
	call(t, w, "fclose", fd)
	callErr(t, w, "fclose", fd)              // double close
	callErr(t, w, "fread_all", fd)           // read after close
	callErr(t, w, "fopen_idx", value.Int(9)) // out of range

	// Content is deterministic across worlds.
	w2 := NewWorld()
	w2.AddFile("a.dat", 1000)
	fd2 := call(t, w2, "fopen_idx", value.Int(0))
	d2 := call(t, w2, "md5_buf", call(t, w2, "fread_all", fd2)).AsString()
	if d2 != digest {
		t.Error("file contents not deterministic across worlds")
	}
}

func TestRNGDeterminism(t *testing.T) {
	w1, w2 := NewWorld(), NewWorld()
	w1.Seed(7)
	w2.Seed(7)
	for i := 0; i < 10; i++ {
		a := call(t, w1, "rng_int").AsInt()
		b := call(t, w2, "rng_int").AsInt()
		if a != b {
			t.Fatal("RNG not deterministic for equal seeds")
		}
		if a < 0 {
			t.Fatal("rng_int must be non-negative")
		}
	}
	r := call(t, w1, "rng_range", value.Int(10)).AsInt()
	if r < 0 || r >= 10 {
		t.Errorf("rng_range out of bounds: %d", r)
	}
	f := call(t, w1, "rng_float").AsFloat()
	if f < 0 || f >= 1 {
		t.Errorf("rng_float out of bounds: %f", f)
	}
	callErr(t, w1, "rng_range", value.Int(0))
}

func TestHMMSubstrate(t *testing.T) {
	w := NewWorld()
	seq := call(t, w, "seq_gen", value.Int(32))
	mat := call(t, w, "matrix_alloc", value.Int(50))
	if w.LiveMatrices() != 1 {
		t.Error("live matrix count")
	}
	score1 := call(t, w, "hmm_score", seq, mat).AsInt()
	score2 := call(t, w, "hmm_score", seq, mat).AsInt()
	if score1 != score2 {
		t.Error("hmm_score must be deterministic for same inputs")
	}
	call(t, w, "histogram_add", value.Int(score1))
	if n := call(t, w, "histogram_count").AsInt(); n != 1 {
		t.Errorf("histogram count = %d", n)
	}
	call(t, w, "matrix_free", mat)
	if w.LiveMatrices() != 0 {
		t.Error("matrix not freed")
	}
	// Deferred deallocation: reads still work, double free detected.
	if s := call(t, w, "hmm_score", seq, mat).AsInt(); s != score1 {
		t.Error("deferred deallocation must keep the data readable")
	}
	callErr(t, w, "matrix_free", mat)
	callErr(t, w, "matrix_alloc", value.Int(0))
	callErr(t, w, "seq_gen", value.Int(-1))
}

func TestMiningSubstrate(t *testing.T) {
	w := NewWorld()
	w.AddTransactions(5, 64, 8)
	if w.NumTransactions() != 5 {
		t.Fatal("NumTransactions")
	}
	row := call(t, w, "db_read_row", value.Int(2))
	n := call(t, w, "row_len", row).AsInt()
	if n != 8 {
		t.Errorf("row_len = %d", n)
	}
	seen := map[int64]bool{}
	for j := int64(0); j < n; j++ {
		it := call(t, w, "row_item", row, value.Int(j)).AsInt()
		if it < 0 || it >= 64 {
			t.Errorf("item out of range: %d", it)
		}
		if seen[it] {
			t.Errorf("duplicate item %d in row", it)
		}
		seen[it] = true
	}
	callErr(t, w, "row_item", row, value.Int(99))
	callErr(t, w, "db_read_row", value.Int(50))

	// Bitmaps.
	bm := call(t, w, "bitmap_new", value.Int(128))
	call(t, w, "bitmap_set", bm, value.Int(5))
	call(t, w, "bitmap_set", bm, value.Int(5)) // idempotent
	call(t, w, "bitmap_set", bm, value.Int(127))
	if !call(t, w, "bitmap_get", bm, value.Int(5)).AsBool() {
		t.Error("bit 5 not set")
	}
	if call(t, w, "bitmap_get", bm, value.Int(6)).AsBool() {
		t.Error("bit 6 spuriously set")
	}
	if n := call(t, w, "bitmap_count", bm).AsInt(); n != 2 {
		t.Errorf("bitmap_count = %d", n)
	}
	callErr(t, w, "bitmap_set", bm, value.Int(128))
	callErr(t, w, "bitmap_get", value.Int(99), value.Int(0))

	// Vectors and lists.
	v := call(t, w, "vec_new")
	call(t, w, "vec_push", v, value.Int(3))
	call(t, w, "vec_push", v, value.Int(1))
	if n := call(t, w, "vec_len", v).AsInt(); n != 2 {
		t.Errorf("vec_len = %d", n)
	}
	if got := w.VectorContents(int(v.AsInt())); len(got) != 2 || got[0] != "1" {
		t.Errorf("VectorContents = %v", got)
	}

	// Itemsets: intersections.
	a := call(t, w, "iset_new")
	b := call(t, w, "iset_new")
	for _, x := range []int64{1, 2, 3, 4} {
		call(t, w, "iset_insert", a, value.Int(x))
	}
	for _, x := range []int64{3, 4, 5} {
		call(t, w, "iset_insert", b, value.Int(x))
	}
	if n := call(t, w, "iset_intersect_size", a, b).AsInt(); n != 2 {
		t.Errorf("intersect = %d, want 2", n)
	}

	// Stats.
	call(t, w, "stats_add", value.Int(10))
	call(t, w, "stats_add", value.Int(20))
	if n := call(t, w, "stats_count").AsInt(); n != 2 {
		t.Errorf("stats_count = %d", n)
	}
	if m := call(t, w, "stats_mean").AsFloat(); m != 15 {
		t.Errorf("stats_mean = %f", m)
	}
}

func TestGraphSubstrate(t *testing.T) {
	w := NewWorld()
	w.BuildNodeList(4)
	if n := call(t, w, "graph_nodes").AsInt(); n != 4 {
		t.Fatalf("graph_nodes = %d", n)
	}
	node := call(t, w, "ll_head").AsInt()
	count := 0
	for node != 0 {
		count++
		call(t, w, "node_init", value.Int(node), value.Int(10))
		call(t, w, "graph_connect", value.Int(node), value.Int((node%4)+1))
		node = call(t, w, "ll_next", value.Int(node)).AsInt()
	}
	if count != 4 {
		t.Errorf("traversed %d nodes", count)
	}
	degs := w.GraphDegrees()
	for i, d := range degs {
		if d != 1 {
			t.Errorf("node %d degree %d", i, d)
		}
	}
	callErr(t, w, "ll_next", value.Int(99))
	callErr(t, w, "graph_connect", value.Int(1), value.Int(99))
}

func TestTraceSubstrate(t *testing.T) {
	w := NewWorld()
	w.AddBitmaps(3, 16)
	if w.NumBitmaps() != 3 {
		t.Fatal("NumBitmaps")
	}
	if n := call(t, w, "bmp_count").AsInt(); n != 3 {
		t.Fatalf("bmp_count = %d", n)
	}
	bm := call(t, w, "bmp_open", value.Int(1))
	path := call(t, w, "bmp_trace", bm).AsString()
	if !strings.HasPrefix(path, "path[1:") {
		t.Errorf("trace path = %q", path)
	}
	call(t, w, "img_write", value.Str(path))
	if got := w.OutImages(); len(got) != 1 || got[0] != path {
		t.Errorf("OutImages = %v", got)
	}
	callErr(t, w, "bmp_open", value.Int(9))
}

func TestKMeansSubstrate(t *testing.T) {
	w := NewWorld()
	w.SetupKMeans(30, 3)
	if n := call(t, w, "km_points").AsInt(); n != 30 {
		t.Fatalf("km_points = %d", n)
	}
	for i := int64(0); i < 30; i++ {
		c := call(t, w, "km_nearest", value.Int(i)).AsInt()
		if c < 0 || c >= 3 {
			t.Fatalf("nearest out of range: %d", c)
		}
		call(t, w, "km_update", value.Int(i), value.Int(c))
	}
	counts := w.KMCounts()
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != 30 {
		t.Errorf("counts sum = %d", total)
	}
	call(t, w, "km_swap")
	callErr(t, w, "km_nearest", value.Int(99))
	callErr(t, w, "km_update", value.Int(0), value.Int(9))
}

func TestNetSubstrate(t *testing.T) {
	w := NewWorld()
	w.SetupPackets(5)
	if n := call(t, w, "pkt_count").AsInt(); n != 5 {
		t.Fatalf("pkt_count = %d", n)
	}
	seen := map[int64]bool{}
	for i := 0; i < 5; i++ {
		pkt := call(t, w, "pkt_dequeue").AsInt()
		if seen[pkt] {
			t.Errorf("packet %d dequeued twice", pkt)
		}
		seen[pkt] = true
		route := call(t, w, "url_match", value.Int(pkt)).AsInt()
		if route < 0 {
			t.Errorf("packet %d unmatched", pkt)
		}
		call(t, w, "log_pkt", value.Int(pkt), value.Int(route))
		if u := call(t, w, "pkt_field", value.Int(pkt)).AsString(); !strings.Contains(u, "/") {
			t.Errorf("pkt_field = %q", u)
		}
	}
	if len(w.LogLines()) != 5 {
		t.Errorf("log lines = %d", len(w.LogLines()))
	}
	callErr(t, w, "pkt_dequeue") // pool exhausted
}

func TestCoreBuiltins(t *testing.T) {
	w := NewWorld()
	call(t, w, "print_int", value.Int(1))
	call(t, w, "print_str", value.Str("x"))
	call(t, w, "print_float", value.Float(1.5))
	if len(w.Console) != 3 || w.Console[2] != "1.5000" {
		t.Errorf("console = %v", w.Console)
	}
	if call(t, w, "itof", value.Int(3)).AsFloat() != 3 {
		t.Error("itof")
	}
	if call(t, w, "ftoi", value.Float(3.9)).AsInt() != 3 {
		t.Error("ftoi")
	}
	if call(t, w, "iabs", value.Int(-5)).AsInt() != 5 {
		t.Error("iabs")
	}
	if call(t, w, "int_to_str", value.Int(42)).AsString() != "42" {
		t.Error("int_to_str")
	}
	// burn is stateless: same input, same output, cost equals n.
	b := w.reg["burn"]
	v1, c1, _ := b.Fn([]value.Value{value.Int(640)})
	v2, c2, _ := b.Fn([]value.Value{value.Int(640)})
	if !v1.Equal(v2) || c1 != 640 || c2 != 640 {
		t.Errorf("burn not stateless/mispriced: %v/%d vs %v/%d", v1, c1, v2, c2)
	}
	// Pure builtins are flagged for predicate use.
	for _, name := range []string{"itof", "ftoi", "iabs", "burn"} {
		if !w.reg[name].Sig.Pure {
			t.Errorf("%s should be pure", name)
		}
	}
	if w.reg["rng_int"].Sig.Pure {
		t.Error("rng_int must not be pure")
	}
}
