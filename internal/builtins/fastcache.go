package builtins

import (
	"sync"

	"repro/internal/vm/interp"
)

// Fast-mode memoization. Substrate contents are deterministic functions of
// their generation parameters (AddFile data from the file index, matrices
// from the handle, transaction rows from a fixed seed), and several heavy
// builtins are pure functions of immutable inputs (md5_buf, hmm_score,
// burn). Fast mode (interp.FastEnabled) therefore shares generated data
// and memoizes those results across runs and campaign cells — virtual cost
// accounting is untouched, only redundant host work disappears. Legacy
// mode bypasses every cache so the host benchmark's baseline measures the
// unmemoized substrate.
//
// All cached data is immutable by construction: file data, matrix
// contents, and transaction rows are never written after creation (the
// substrate's only mutating operations replace whole handles or write
// distinct state). Caches are guarded by one mutex — campaign cells on
// host-parallel runs share them safely — and reset when they outgrow
// fastCacheCap so long campaigns cannot accumulate unbounded memory.

const fastCacheCap = 1 << 14

var (
	fastMu     sync.Mutex
	fileCache  map[fileKey][]byte
	matCache   map[matKey][]float64
	txnCache   map[txnKey][][]int64
	md5Cache   map[bufKey]string
	scoreCache map[scoreKey]int64
	burnCache  map[int64]int64
	fltCache   map[floatsKey]string
)

type fileKey struct {
	idx  int
	size int
}

type matKey struct {
	h int64
	n int64
}

type txnKey struct {
	rows, items, rowLen int
}

// bufKey identifies a byte buffer by backing-array identity. The pointer
// in the key keeps the buffer reachable, so an address can never be reused
// by a different live buffer while its entry is cached.
type bufKey struct {
	p *byte
	n int
}

type scoreKey struct {
	seqHash uint64
	seqLen  int
	mat     int64
	matLen  int
}

// floatsKey identifies a float slice by backing-array identity, with the
// same liveness argument as bufKey.
type floatsKey struct {
	p *float64
	n int
}

// cachedFileData returns the deterministic content of file idx with the
// given size, shared across worlds in fast mode.
func cachedFileData(idx, size int, gen func() []byte) []byte {
	if !interp.FastEnabled {
		return gen()
	}
	key := fileKey{idx, size}
	fastMu.Lock()
	defer fastMu.Unlock()
	if data, ok := fileCache[key]; ok {
		return data
	}
	if len(fileCache) >= fastCacheCap {
		fileCache = nil
	}
	if fileCache == nil {
		fileCache = map[fileKey][]byte{}
	}
	data := gen()
	fileCache[key] = data
	return data
}

// cachedMatrix returns the deterministic emission matrix for handle h with
// n states, shared read-only across worlds in fast mode.
func cachedMatrix(h, n int64, gen func() []float64) []float64 {
	if !interp.FastEnabled {
		return gen()
	}
	key := matKey{h, n}
	fastMu.Lock()
	defer fastMu.Unlock()
	if m, ok := matCache[key]; ok {
		return m
	}
	if len(matCache) >= fastCacheCap {
		matCache = nil
	}
	if matCache == nil {
		matCache = map[matKey][]float64{}
	}
	m := gen()
	matCache[key] = m
	return m
}

// cachedTransactions returns the deterministic transaction database for
// the given shape, rows shared read-only across worlds in fast mode.
func cachedTransactions(rows, items, rowLen int, gen func() [][]int64) [][]int64 {
	if !interp.FastEnabled {
		return gen()
	}
	key := txnKey{rows, items, rowLen}
	fastMu.Lock()
	defer fastMu.Unlock()
	if db, ok := txnCache[key]; ok {
		return db
	}
	if len(txnCache) >= fastCacheCap {
		txnCache = nil
	}
	if txnCache == nil {
		txnCache = map[txnKey][][]int64{}
	}
	db := gen()
	txnCache[key] = db
	return db
}

// cachedMD5 memoizes the digest of an immutable buffer by backing-array
// identity (file contents are shared across worlds in fast mode, so the
// same arrays recur all campaign long).
func cachedMD5(b []byte, gen func() string) string {
	if !interp.FastEnabled || len(b) == 0 {
		return gen()
	}
	key := bufKey{&b[0], len(b)}
	fastMu.Lock()
	if s, ok := md5Cache[key]; ok {
		fastMu.Unlock()
		return s
	}
	fastMu.Unlock()
	s := gen()
	fastMu.Lock()
	if len(md5Cache) >= fastCacheCap {
		md5Cache = nil
	}
	if md5Cache == nil {
		md5Cache = map[bufKey]string{}
	}
	md5Cache[key] = s
	fastMu.Unlock()
	return s
}

// cachedScore memoizes hmm_score results. The sequence is identified by a
// content hash (sequences are RNG-draw dependent, so identical contents
// recur across schedules and repeated runs), the matrix by its handle and
// length (matrix content is a pure function of both).
func cachedScore(key scoreKey, gen func() int64) int64 {
	fastMu.Lock()
	if v, ok := scoreCache[key]; ok {
		fastMu.Unlock()
		return v
	}
	fastMu.Unlock()
	v := gen()
	fastMu.Lock()
	if len(scoreCache) >= fastCacheCap {
		scoreCache = nil
	}
	if scoreCache == nil {
		scoreCache = map[scoreKey]int64{}
	}
	scoreCache[key] = v
	fastMu.Unlock()
	return v
}

// cachedBurn memoizes the pure burn mixer by its iteration count.
func cachedBurn(n int64, gen func() int64) int64 {
	if !interp.FastEnabled {
		return gen()
	}
	fastMu.Lock()
	if v, ok := burnCache[n]; ok {
		fastMu.Unlock()
		return v
	}
	fastMu.Unlock()
	v := gen()
	fastMu.Lock()
	if len(burnCache) >= fastCacheCap {
		burnCache = nil
	}
	if burnCache == nil {
		burnCache = map[int64]int64{}
	}
	burnCache[n] = v
	fastMu.Unlock()
	return v
}

// cachedFloatRender memoizes the observable-state rendering of an
// immutable float slice by backing-array identity (matrix contents, which
// fast mode shares across worlds and the sanitizer re-renders on every
// replay diff). Callers must only pass slices that are never written
// after creation.
func cachedFloatRender(s []float64, gen func() string) string {
	if !interp.FastEnabled || len(s) == 0 {
		return gen()
	}
	key := floatsKey{&s[0], len(s)}
	fastMu.Lock()
	if r, ok := fltCache[key]; ok {
		fastMu.Unlock()
		return r
	}
	fastMu.Unlock()
	r := gen()
	fastMu.Lock()
	if len(fltCache) >= fastCacheCap {
		fltCache = nil
	}
	if fltCache == nil {
		fltCache = map[floatsKey]string{}
	}
	fltCache[key] = r
	fastMu.Unlock()
	return r
}

// ResetFastCaches drops every fast-mode memo. The host benchmark calls it
// between measurement passes so each pass starts cold.
func ResetFastCaches() {
	fastMu.Lock()
	fileCache, matCache, txnCache, md5Cache = nil, nil, nil, nil
	scoreCache, burnCache, fltCache = nil, nil, nil
	fastMu.Unlock()
}

// hashBytes is FNV-1a, used to content-address RNG-drawn sequences.
func hashBytes(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h
}
