package builtins

import "repro/internal/effects"

// This file gives each effectful builtin a small-step semantic model for
// the commutativity verifier (internal/analysis, -checks=commute). Where
// the effect table (world.go) answers "which locations may this call
// touch", the model answers "what does the call do to them": assign a
// cell, bump an abstract sum, append to an externalization stream, or
// scramble a seed. The verifier symbolically executes both orders of a
// member pair over these updates and diffs the post-states.
//
// The models may be *finer* than the effect declarations (fclose only
// rewrites the descriptor table entry even though its decl coarsely claims
// fs.file too); they must never be coarser. Builtins registered with an
// empty Decl need no model: the substrate is deterministic, so they are
// pure functions of their arguments.

// UpdateKind classifies one state update of a builtin model.
type UpdateKind int

// Update kinds, in decreasing order of how much the differencing must
// prove: assigns demand equal cells imply equal values, while the
// commutative kinds carry their own order-insensitivity argument.
const (
	// UAssign overwrites a cell (strong update): last writer wins, so two
	// assigns commute only on provably disjoint cells or with provably
	// equal values (idempotent set-semantics inserts).
	UAssign UpdateKind = iota
	// UBump adds a contribution to an abstract commutative accumulator
	// (histogram, stats sum, cursor advance): contributions form a
	// multiset, so any order with the same multiset is equivalent.
	UBump
	// UAppend emits to an externalization stream (console, output file,
	// log) whose observable is order-insensitive for commset members: the
	// runtime may interleave, so equality is multiset equality.
	UAppend
	// UScramble perturbs an entropy pool (the RNG seed). The paper's
	// contract: any permutation of a random sequence preserves the
	// distribution, so the pool state is quotiented to the multiset of
	// scramble events.
	UScramble
)

// Ref names an argument of the modeled call, or a distinguished value.
type Ref int

// Distinguished Refs.
const (
	// RefNone means "not applicable": no handle (whole location), no key
	// (whole handle), or a value synthesized from all arguments.
	RefNone Ref = -1
	// RefResult names the builtin's own result (the fresh token an
	// allocator both returns and registers).
	RefResult Ref = -2
)

// Update is one modeled state change.
type Update struct {
	Kind   UpdateKind
	Loc    effects.Loc
	Handle Ref    // which argument selects the handle; RefNone = whole location
	Key    Ref    // which argument selects the element; RefNone = whole handle
	Field  string // sub-cell within the handle ("pos"); "" = the handle itself
	// ValConst, when non-empty, is the literal value assigned — used where
	// the semantics are idempotent (a set bit is "1" no matter how often
	// it is set), which lets equal-value assigns commute even on cells the
	// verifier cannot separate. When empty, the written value is an
	// uninterpreted function of the call's arguments and ValReads.
	ValConst string
	// ValReads lists locations whose current contents flow into the
	// written value (km_swap publishes centers.new into centers.cur).
	ValReads []effects.Loc
}

// ResultKind classifies what a modeled builtin returns.
type ResultKind int

// Result kinds.
const (
	// ResPure: a pure function of the arguments (and ValReads via the
	// updates only). Void builtins also use this.
	ResPure ResultKind = iota
	// ResRead: the current contents of the cell named by Model.Read.
	ResRead
	// ResFresh: a globally fresh token no other call ever returned.
	ResFresh
	// ResDraw: a draw from a trusted distribution (RNG, input queue): the
	// verifier treats draws as stable per (execution identity, occurrence)
	// so a member's own draws agree across the two orders, while draws of
	// different executions stay unrelated.
	ResDraw
)

// CellRef names the cell a ResRead builtin returns.
type CellRef struct {
	Loc    effects.Loc
	Handle Ref // RefNone = whole location
	Key    Ref // RefNone = whole handle
	Field  string
}

// Model is the commutativity-relevant semantics of one builtin.
type Model struct {
	Result  ResultKind
	Read    *CellRef // set iff Result == ResRead
	Updates []Update
}

func tl(tag string) effects.Loc { return effects.TagLoc(tag) }

func assign(tag string, handle, key Ref, valConst string) Update {
	return Update{Kind: UAssign, Loc: tl(tag), Handle: handle, Key: key, ValConst: valConst}
}

func bump(tag string) Update {
	return Update{Kind: UBump, Loc: tl(tag), Handle: RefNone, Key: RefNone}
}

func appendTo(tag string) Update {
	return Update{Kind: UAppend, Loc: tl(tag), Handle: RefNone, Key: RefNone}
}

func appendAt(tag string, handle Ref) Update {
	return Update{Kind: UAppend, Loc: tl(tag), Handle: handle, Key: RefNone}
}

func scramble(tag string) Update {
	return Update{Kind: UScramble, Loc: tl(tag), Handle: RefNone, Key: RefNone}
}

func read(tag string, handle, key Ref) *CellRef {
	return &CellRef{Loc: tl(tag), Handle: handle, Key: key}
}

// builtinModels is the model table. Builtins absent here and registered
// with an empty effects.Decl are pure; absent but effectful builtins are
// handled conservatively by the verifier (whole-location havoc).
var builtinModels = map[string]Model{
	// --- console ---
	"print_str":   {Updates: []Update{appendTo("io.console")}},
	"print_int":   {Updates: []Update{appendTo("io.console")}},
	"print_float": {Updates: []Update{appendTo("io.console")}},

	// --- file system ---
	"file_count": {Result: ResRead, Read: read("fs.table", RefNone, RefNone)},
	"fopen_idx": {Result: ResFresh, Updates: []Update{
		assign("fs.table", RefResult, RefNone, ""),
	}},
	"fname": {Result: ResRead, Read: read("fs.table", 0, RefNone)},
	"fread_all": {Result: ResFresh, Updates: []Update{
		{Kind: UAssign, Loc: tl("fs.file"), Handle: 0, Key: RefNone, Field: "pos"},
	}},
	"fclose":      {Updates: []Update{assign("fs.table", 0, RefNone, "closed")}},
	"fwrite_line": {Updates: []Update{appendTo("fs.out")}},

	// --- transaction database ---
	"db_read_row": {Result: ResDraw, Updates: []Update{bump("db.cursor")}},

	// --- bitmaps ---
	"bitmap_new": {Result: ResFresh, Updates: []Update{
		assign("bitmaps", RefResult, RefNone, "empty"),
	}},
	"bitmap_set":   {Updates: []Update{assign("bitmaps", 0, 1, "1")}},
	"bitmap_get":   {Result: ResRead, Read: read("bitmaps", 0, 1)},
	"bitmap_count": {Result: ResRead, Read: read("bitmaps", 0, RefNone)},

	// --- vectors (set-semantics output containers) ---
	"vec_new": {Result: ResFresh, Updates: []Update{
		assign("vectors", RefResult, RefNone, "empty"),
	}},
	"vec_push": {Updates: []Update{appendAt("vectors", 0)}},
	"vec_len":  {Result: ResRead, Read: read("vectors", 0, RefNone)},

	// --- itemsets (idempotent inserts) ---
	"iset_new": {Result: ResFresh, Updates: []Update{
		assign("itemsets", RefResult, RefNone, "empty"),
	}},
	"iset_insert": {Updates: []Update{assign("itemsets", 0, 1, "1")}},

	// --- list-of-itemsets ---
	"lists_new": {Result: ResFresh, Updates: []Update{
		assign("lists", RefResult, RefNone, "empty"),
	}},
	"lists_insert": {Updates: []Update{appendAt("lists", 0)}},
	"lists_len":    {Result: ResRead, Read: read("lists", 0, RefNone)},

	// --- stats accumulator ---
	"stats_add":   {Updates: []Update{bump("stats")}},
	"stats_count": {Result: ResRead, Read: read("stats", RefNone, RefNone)},
	"stats_mean":  {Result: ResRead, Read: read("stats", RefNone, RefNone)},

	// --- RNG ---
	"rng_int":   {Result: ResDraw, Updates: []Update{scramble("rng.seed")}},
	"rng_range": {Result: ResDraw, Updates: []Update{scramble("rng.seed")}},
	"rng_float": {Result: ResDraw, Updates: []Update{scramble("rng.seed")}},
	"seq_gen":   {Result: ResDraw, Updates: []Update{scramble("rng.seed")}},

	// --- matrix heap ---
	"matrix_alloc": {Result: ResFresh, Updates: []Update{
		assign("heap.matrix", RefResult, RefNone, "live"),
	}},
	"matrix_free": {Updates: []Update{assign("heap.matrix", 0, RefNone, "freed")}},

	// --- histogram ---
	"histogram_add":   {Updates: []Update{bump("histogram")}},
	"histogram_count": {Result: ResRead, Read: read("histogram", RefNone, RefNone)},

	// --- k-means ---
	"km_nearest": {Result: ResRead, Read: read("centers.cur", RefNone, RefNone)},
	"km_update":  {Updates: []Update{bump("centers.new")}},
	"km_swap": {Updates: []Update{
		{Kind: UAssign, Loc: tl("centers.cur"), Handle: RefNone, Key: RefNone,
			ValReads: []effects.Loc{tl("centers.new")}},
		{Kind: UAssign, Loc: tl("centers.new"), Handle: RefNone, Key: RefNone, ValConst: "reset"},
	}},

	// --- packet processing ---
	"pkt_count":   {Result: ResRead, Read: read("pkt.pool", RefNone, RefNone)},
	"pkt_dequeue": {Result: ResDraw, Updates: []Update{bump("pkt.pool")}},
	"log_pkt":     {Updates: []Update{appendTo("pkt.log")}},

	// --- tracing (potrace) ---
	"bmp_count": {Result: ResRead, Read: read("fs.table", RefNone, RefNone)},
	"bmp_open": {Result: ResFresh, Updates: []Update{
		assign("fs.table", RefResult, RefNone, ""),
	}},
	"img_write": {Updates: []Update{appendTo("fs.out")}},

	// --- graph (em3d) ---
	"ll_head":     {Result: ResRead, Read: read("graph.list", RefNone, RefNone)},
	"ll_next":     {Result: ResRead, Read: read("graph.list", 0, RefNone)},
	"graph_nodes": {Result: ResRead, Read: read("graph.list", RefNone, RefNone)},
}

// ModelOf returns the semantic model of a builtin, if one is registered.
func ModelOf(name string) (Model, bool) {
	m, ok := builtinModels[name]
	return m, ok
}
