package builtins

import (
	"repro/internal/ast"
	"repro/internal/effects"
	"repro/internal/vm/value"
)

// kmeans substrate: points and centers in a low-dimensional space. The
// main loop computes each object's nearest center (heavy, pure) and updates
// that center's running mean (the single loop-carried dependence the paper
// breaks with a SELF commutative block).

const kmDim = 16

// SetupKMeans installs n deterministic points and k initial centers.
func (w *World) SetupKMeans(n, k int) {
	h := uint64(0xc0ffee)
	w.kmPoints = make([][]float64, n)
	for i := range w.kmPoints {
		p := make([]float64, kmDim)
		for d := range p {
			h = h*6364136223846793005 + 1442695040888963407
			p[d] = float64(h%1000) / 1000
		}
		w.kmPoints[i] = p
	}
	w.kmCenters = make([][]float64, k)
	w.kmNew = make([][]float64, k)
	w.kmCounts = make([]int64, k)
	w.kmAssign = make([]int64, n)
	for c := range w.kmCenters {
		ctr := make([]float64, kmDim)
		copy(ctr, w.kmPoints[(c*n)/k])
		w.kmCenters[c] = ctr
		w.kmNew[c] = make([]float64, kmDim)
	}
}

// KMAssignments returns a copy of the current assignments.
func (w *World) KMAssignments() []int64 {
	out := make([]int64, len(w.kmAssign))
	copy(out, w.kmAssign)
	return out
}

// KMCounts returns per-center membership counts.
func (w *World) KMCounts() []int64 {
	out := make([]int64, len(w.kmCounts))
	copy(out, w.kmCounts)
	return out
}

func (w *World) registerKMeans() {
	w.register("km_points", nil, ast.TInt, effects.Decl{},
		func(args []value.Value) (value.Value, int64, error) {
			return value.Int(int64(len(w.kmPoints))), 10, nil
		})
	// km_nearest: distance of point i to every center — the heavy compute.
	// It reads the stable current centers only (the new centers being
	// accumulated are separate state, as in STAMP's kmeans).
	w.register("km_nearest", []ast.Type{ast.TInt}, ast.TInt, effects.Decl{Reads: []effects.Loc{effects.TagLoc("centers.cur")}},
		func(args []value.Value) (value.Value, int64, error) {
			i := args[0].AsInt()
			if i < 0 || i >= int64(len(w.kmPoints)) {
				return value.Value{}, 0, errArg("km_nearest", "bad point")
			}
			p := w.kmPoints[i]
			best, bestD := 0, 1e300
			for c, ctr := range w.kmCenters {
				d := 0.0
				for x := 0; x < kmDim; x++ {
					diff := p[x] - ctr[x]
					d += diff * diff
				}
				if d < bestD {
					bestD = d
					best = c
				}
			}
			cost := int64(len(w.kmCenters)) * kmDim * 10
			return value.Int(int64(best)), cost, nil
		})
	// km_update folds point i into new center c's running mean and records
	// the assignment: the commutative update.
	w.register("km_update", []ast.Type{ast.TInt, ast.TInt}, ast.TVoid, rw("centers.new"),
		func(args []value.Value) (value.Value, int64, error) {
			i, c := args[0].AsInt(), args[1].AsInt()
			if i < 0 || i >= int64(len(w.kmPoints)) {
				return value.Value{}, 0, errArg("km_update", "bad point")
			}
			if c < 0 || c >= int64(len(w.kmCenters)) {
				return value.Value{}, 0, errArg("km_update", "bad center")
			}
			w.kmCounts[c]++
			ctr := w.kmNew[c]
			p := w.kmPoints[i]
			for x := 0; x < kmDim; x++ {
				ctr[x] += p[x]
			}
			w.kmAssign[i] = c
			return value.Void(), 40 + kmDim*25, nil
		})
	// km_swap installs the accumulated means as the new current centers
	// (the outer algorithm step, outside the hot loop).
	w.register("km_swap", nil, ast.TVoid, rw("centers.cur", "centers.new"),
		func(args []value.Value) (value.Value, int64, error) {
			for c := range w.kmNew {
				if w.kmCounts[c] == 0 {
					continue
				}
				n := float64(w.kmCounts[c])
				for x := 0; x < kmDim; x++ {
					w.kmCenters[c][x] = w.kmNew[c][x] / n
				}
			}
			return value.Void(), int64(len(w.kmNew)) * kmDim * 4, nil
		})
}
