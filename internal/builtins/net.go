package builtins

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/effects"
	"repro/internal/vm/value"
)

// url substrate: a pool of incoming packets, a pattern table for URL-based
// switching, and a log file. Dequeuing mutates the shared pool; logging
// appends to the shared log; the match against the pattern table is the
// parallel compute. The protocol allows out-of-order switching, which the
// paper expresses with SELF commutativity on dequeue and logging.

var urlPatterns = []string{
	"/api/v1/users", "/api/v1/orders", "/static/img", "/static/css",
	"/search", "/checkout", "/cart", "/product", "/admin", "/health",
}

// SetupPackets installs n deterministic packets.
func (w *World) SetupPackets(n int) {
	h := uint64(0xdeadbeef)
	for i := 0; i < n; i++ {
		h = h*6364136223846793005 + 1442695040888963407
		pat := urlPatterns[h%uint64(len(urlPatterns))]
		w.packets = append(w.packets, packet{
			url:  fmt.Sprintf("%s/%d?session=%d", pat, i, h%9973),
			size: int64(200 + h%1200),
		})
	}
	w.routes = make([]string, len(urlPatterns))
	for i, p := range urlPatterns {
		w.routes[i] = "route" + fmt.Sprintf("%d:%s", i, p)
	}
}

// NumPackets reports the pool size.
func (w *World) NumPackets() int { return len(w.packets) }

func (w *World) registerNet() {
	w.register("pkt_count", nil, ast.TInt, rw("pkt.pool"),
		func(args []value.Value) (value.Value, int64, error) {
			return value.Int(int64(len(w.packets))), 10, nil
		})
	// pkt_dequeue removes the next packet from the shared pool and returns
	// its handle (the pool mutation the paper marks self-commutative).
	w.register("pkt_dequeue", nil, ast.TInt, rw("pkt.pool"),
		func(args []value.Value) (value.Value, int64, error) {
			if w.pktNext >= len(w.packets) {
				return value.Value{}, 0, errArg("pkt_dequeue", "pool exhausted")
			}
			h := w.pktNext
			w.pktNext++
			return value.Int(int64(h)), 70, nil
		})
	// url_match walks the pattern table against the packet's URL: the
	// per-packet compute of the switch.
	w.register("url_match", []ast.Type{ast.TInt}, ast.TInt, effects.Decl{},
		func(args []value.Value) (value.Value, int64, error) {
			h := args[0].AsInt()
			if h < 0 || h >= int64(len(w.packets)) {
				return value.Value{}, 0, errArg("url_match", "bad packet")
			}
			url := w.packets[h].url
			match := -1
			steps := 0
			for i, p := range urlPatterns {
				steps += len(p)
				if strings.HasPrefix(url, p) {
					match = i
					break
				}
			}
			// Scan the URL tail as deeper protocol processing.
			sum := 0
			for _, c := range url {
				sum += int(c)
			}
			cost := int64(steps)*14 + int64(len(url))*85 + int64(sum%7)
			return value.Int(int64(match)), cost, nil
		})
	w.register("pkt_field", []ast.Type{ast.TInt}, ast.TString, effects.Decl{},
		func(args []value.Value) (value.Value, int64, error) {
			h := args[0].AsInt()
			if h < 0 || h >= int64(len(w.packets)) {
				return value.Value{}, 0, errArg("pkt_field", "bad packet")
			}
			return value.Str(w.packets[h].url), 15, nil
		})
	// log_pkt appends the packet's fields to the shared log file.
	w.register("log_pkt", []ast.Type{ast.TInt, ast.TInt}, ast.TVoid, rw("pkt.log"),
		func(args []value.Value) (value.Value, int64, error) {
			h, route := args[0].AsInt(), args[1].AsInt()
			if h < 0 || h >= int64(len(w.packets)) {
				return value.Value{}, 0, errArg("log_pkt", "bad packet")
			}
			w.logLines = append(w.logLines, fmt.Sprintf("pkt%d -> %d (%dB)", h, route, w.packets[h].size))
			return value.Void(), 110, nil
		})
}
