package pdg

import (
	"fmt"
	"sort"
	"strings"
)

// EdgeFilter selects which edges participate in a traversal. The standard
// filters implement the paper's Section 4.5 edge treatment: uco edges are
// treated as non-existent and ico edges as intra-iteration edges.
type EdgeFilter func(*Edge) bool

// FilterAll keeps every edge.
func FilterAll(*Edge) bool { return true }

// FilterRelaxed drops uco edges (they are treated as non-existent after the
// COMMSET dependence analyzer runs).
func FilterRelaxed(e *Edge) bool { return e.Comm != CommUCO }

// LoopCarriedAfterRelax reports whether the edge still constrains
// cross-iteration execution: uco edges are gone, and ico edges count as
// intra-iteration.
func LoopCarriedAfterRelax(e *Edge) bool {
	return e.LoopCarried && e.Comm == CommNone
}

// SCCs computes strongly connected components over the PDG restricted to
// edges passing the filter, using Tarjan's algorithm. Components are
// returned in reverse topological order reversed to topological order
// (sources first), each sorted by instruction ID.
func (p *PDG) SCCs(filter EdgeFilter) [][]int {
	adj := map[int][]int{}
	for _, e := range p.Edges {
		if filter(e) {
			adj[e.From] = append(adj[e.From], e.To)
		}
	}

	index := map[int]int{}
	low := map[int]int{}
	onStack := map[int]bool{}
	var stack []int
	var sccs [][]int
	counter := 0

	var strongconnect func(v int)
	strongconnect = func(v int) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Ints(comp)
			sccs = append(sccs, comp)
		}
	}
	for _, v := range p.Nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	// Tarjan emits components in reverse topological order.
	for i, j := 0, len(sccs)-1; i < j; i, j = i+1, j-1 {
		sccs[i], sccs[j] = sccs[j], sccs[i]
	}
	return sccs
}

// HasLoopCarriedEdgeWithin reports whether any loop-carried edge (after
// relaxation, excluding privatized induction-variable flow) connects two
// nodes of the given set. PS-DSWP uses this to decide stage replication.
func (p *PDG) HasLoopCarriedEdgeWithin(nodes map[int]bool) bool {
	for _, e := range p.Edges {
		if !nodes[e.From] || !nodes[e.To] {
			continue
		}
		if e.Kind == DepControl {
			continue
		}
		if e.IVSlot {
			continue
		}
		if LoopCarriedAfterRelax(e) {
			return true
		}
	}
	return false
}

// String renders the PDG in a compact textual form (the Figure 2 dump):
// one line per node, then one line per edge with kind, loop-carried flag,
// cause, and commutativity annotation.
func (p *PDG) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "PDG %s loop@b%d (%d nodes, %d edges)\n", p.F.Name, p.Loop.Header, len(p.Nodes), len(p.Edges))
	for _, id := range p.Nodes {
		fmt.Fprintf(&b, "  n%-4d b%-3d %s\n", id, p.BlockOf[id], p.Instrs[id])
	}
	edges := make([]*Edge, len(p.Edges))
	copy(edges, p.Edges)
	sort.Slice(edges, func(i, j int) bool {
		a, c := edges[i], edges[j]
		if a.From != c.From {
			return a.From < c.From
		}
		if a.To != c.To {
			return a.To < c.To
		}
		if a.Kind != c.Kind {
			return a.Kind < c.Kind
		}
		return a.Loc < c.Loc
	})
	for _, e := range edges {
		lc := " "
		if e.LoopCarried {
			lc = "LC"
		}
		iv := ""
		if e.IVSlot {
			iv = " iv"
		}
		fmt.Fprintf(&b, "  n%d -> n%d  %-7s %-2s %-4s %s%s\n", e.From, e.To, e.Kind, lc, e.Comm, e.Loc, iv)
	}
	return b.String()
}
