package pdg_test

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/effects"
	"repro/internal/ir"
	"repro/internal/pdg"
	"repro/internal/pipeline"
	"repro/internal/source"
	"repro/internal/types"
)

func analyze(t *testing.T, src string) *pipeline.LoopAnalysis {
	t.Helper()
	sigs := map[string]*types.Sig{
		"emit":  {Name: "emit", Params: []ast.Type{ast.TInt}, Result: ast.TVoid},
		"pull":  {Name: "pull", Params: []ast.Type{ast.TInt}, Result: ast.TInt},
		"cheap": {Name: "cheap", Params: []ast.Type{ast.TInt}, Result: ast.TInt},
	}
	effs := effects.Table{
		"emit":  {Writes: []effects.Loc{effects.TagLoc("sink")}},
		"pull":  {Reads: []effects.Loc{effects.TagLoc("src")}, Writes: []effects.Loc{effects.TagLoc("src")}},
		"cheap": {},
	}
	c, err := pipeline.Compile(pipeline.Options{
		File:    source.NewFile("t.mc", src),
		Sigs:    sigs,
		Effects: effs,
	})
	if err != nil {
		t.Fatal(err)
	}
	loops := c.Loops("main")
	if len(loops) == 0 {
		t.Fatal("no loop")
	}
	la, err := c.AnalyzeLoop("main", loops[0].Header)
	if err != nil {
		t.Fatal(err)
	}
	return la
}

func TestIVDetection(t *testing.T) {
	la := analyze(t, `
void main() {
	int bodyCounter = 0;
	for (int i = 0; i < 10; i++) {
		cheap(i);
		bodyCounter++;
	}
	emit(bodyCounter);
}`)
	// Exactly one IV slot (i); bodyCounter updates in the body and must
	// not be treated as privatizable.
	ivNames := []string{}
	for slot := range la.PDG.IVSlots {
		ivNames = append(ivNames, la.Fn.Locals[slot].Name)
	}
	if len(ivNames) != 1 || ivNames[0] != "i" {
		t.Errorf("IV slots = %v, want [i]", ivNames)
	}
}

func TestUpwardExposedChain(t *testing.T) {
	la := analyze(t, `
void main() {
	int x = 1;
	for (int i = 0; i < 10; i++) {
		x = pull(x);
	}
	emit(x);
}`)
	// x = pull(x) is a genuine loop-carried chain: a loop-carried flow
	// edge on slot x must exist and not be IV-privatized.
	found := false
	for _, e := range la.PDG.Edges {
		if slot, ok := e.LocalSlot(); ok && la.Fn.Locals[slot].Name == "x" &&
			e.Kind == pdg.DepFlow && e.LoopCarried {
			found = true
			if e.IVSlot {
				t.Error("x wrongly marked as induction variable")
			}
		}
	}
	if !found {
		t.Error("missing loop-carried flow on x")
	}
}

func TestIterationLocalTemporaryNotLoopCarried(t *testing.T) {
	la := analyze(t, `
void main() {
	for (int i = 0; i < 10; i++) {
		int tmp = cheap(i);
		emit(tmp);
	}
}`)
	for _, e := range la.PDG.Edges {
		if slot, ok := e.LocalSlot(); ok && la.Fn.Locals[slot].Name == "tmp" &&
			e.Kind == pdg.DepFlow && e.LoopCarried {
			t.Errorf("iteration-local tmp has loop-carried flow: %+v", e)
		}
	}
}

func TestInnerLoopIVNotExposed(t *testing.T) {
	// The fixpoint must-define analysis must not mark the inner loop's own
	// counter as upward-exposed for the outer loop.
	la := analyze(t, `
void main() {
	for (int i = 0; i < 4; i++) {
		for (int j = 0; j < 4; j++) {
			cheap(i + j);
		}
	}
}`)
	for _, e := range la.PDG.Edges {
		if slot, ok := e.LocalSlot(); ok && la.Fn.Locals[slot].Name == "j" &&
			e.Kind == pdg.DepFlow && e.LoopCarried && !e.IVSlot {
			t.Errorf("inner-loop j exposed across outer iterations: %+v", e)
		}
	}
}

func TestSharedTagEdgesConservative(t *testing.T) {
	la := analyze(t, `
void main() {
	for (int i = 0; i < 4; i++) {
		emit(pull(i));
	}
}`)
	// pull (rw src) must have a loop-carried self edge; emit (w sink) too.
	var pullID, emitID int = -1, -1
	for _, id := range la.PDG.Nodes {
		in := la.PDG.Instrs[id]
		if in.Op == ir.OpCall && in.Name == "pull" {
			pullID = id
		}
		if in.Op == ir.OpCall && in.Name == "emit" {
			emitID = id
		}
	}
	selfLC := func(id int) bool {
		for _, e := range la.PDG.Edges {
			if e.From == id && e.To == id && e.LoopCarried && e.Kind != pdg.DepControl {
				return true
			}
		}
		return false
	}
	if !selfLC(pullID) {
		t.Error("pull missing loop-carried self dependence")
	}
	if !selfLC(emitID) {
		t.Error("emit missing loop-carried self dependence")
	}
}

func TestControlDependences(t *testing.T) {
	la := analyze(t, `
void main() {
	for (int i = 0; i < 4; i++) {
		if (i % 2 == 0) {
			emit(i);
		}
	}
}`)
	// The emit call must be control dependent on the if's branch.
	var emitID int = -1
	for _, id := range la.PDG.Nodes {
		if in := la.PDG.Instrs[id]; in.Op == ir.OpCall && in.Name == "emit" {
			emitID = id
		}
	}
	found := false
	for _, e := range la.PDG.Edges {
		if e.To == emitID && e.Kind == pdg.DepControl && !e.LoopCarried {
			from := la.PDG.Instrs[e.From]
			if from.Op == ir.OpCondBr {
				found = true
			}
		}
	}
	if !found {
		t.Error("emit not control-dependent on the if branch")
	}
}

func TestSCCPartition(t *testing.T) {
	la := analyze(t, `
void main() {
	int x = 0;
	for (int i = 0; i < 4; i++) {
		x = pull(x);
		emit(x);
	}
}`)
	sccs := la.PDG.SCCs(pdg.FilterAll)
	seen := map[int]bool{}
	for _, comp := range sccs {
		for _, n := range comp {
			if seen[n] {
				t.Fatalf("node %d in two components", n)
			}
			seen[n] = true
		}
	}
	for _, n := range la.PDG.Nodes {
		if !seen[n] {
			t.Fatalf("node %d missing from SCC partition", n)
		}
	}
}

func TestRMWSlots(t *testing.T) {
	la := analyze(t, `
void main() {
	int acc = 0;
	int out = 0;
	for (int i = 0; i < 4; i++) {
		#pragma commset member SELF
		{
			acc += i;
			out = i * 2;
		}
	}
	emit(acc + out);
}`)
	var regionCall *ir.Instr
	for _, id := range la.PDG.Nodes {
		if in := la.PDG.Instrs[id]; in.Op == ir.OpCall && strings.Contains(in.Name, "$r") {
			regionCall = in
		}
	}
	if regionCall == nil {
		t.Fatal("region call not found")
	}
	rmw := la.PDG.RMWSlots(regionCall)
	if len(rmw) != 1 || la.Fn.Locals[rmw[0]].Name != "acc" {
		names := []string{}
		for _, s := range rmw {
			names = append(names, la.Fn.Locals[s].Name)
		}
		t.Errorf("RMW slots = %v, want [acc] (out is write-only)", names)
	}
}

func TestPDGStringDump(t *testing.T) {
	la := analyze(t, `
void main() {
	for (int i = 0; i < 4; i++) { emit(i); }
}`)
	s := la.PDG.String()
	for _, frag := range []string{"PDG main", "condbr", "call emit", "->"} {
		if !strings.Contains(s, frag) {
			t.Errorf("dump missing %q", frag)
		}
	}
}
