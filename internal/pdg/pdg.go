// Package pdg builds the Program Dependence Graph for a target loop over IR
// instructions (paper Section 4.3, following Ferrante/Ottenstein/Warren).
//
// Nodes are the loop's instructions. Edges carry a dependence kind
// (register flow, memory flow/anti/output, control), a loop-carried flag
// from the loop-carried dependence detector, and — after the COMMSET
// dependence analyzer runs — a commutativity annotation (uco/ico).
//
// Memory is modeled at three granularities:
//
//   - local variable slots of the target function (exact, instruction
//     level, with a must-define analysis separating iteration-local
//     temporaries from genuinely loop-carried values),
//   - MiniC globals,
//   - substrate effect tags from builtin declarations, propagated through
//     callees by the effects summary.
//
// Induction variables (slots whose only in-loop store is the loop's post
// increment, in affine form) are detected here; their loop-carried flow is
// privatizable and flagged so transforms can treat it as benign, exactly as
// classic DOALL treats the iteration variable.
package pdg

import (
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/effects"
	"repro/internal/ir"
	"repro/internal/types"
)

// DepKind classifies a dependence edge.
type DepKind int

// Dependence kinds.
const (
	DepRegFlow DepKind = iota // register def -> use, always intra-block
	DepFlow                   // memory write -> read
	DepAnti                   // memory read -> write
	DepOutput                 // memory write -> write
	DepControl                // branch -> controlled instruction
)

// String names the dependence kind.
func (k DepKind) String() string {
	switch k {
	case DepRegFlow:
		return "reg"
	case DepFlow:
		return "flow"
	case DepAnti:
		return "anti"
	case DepOutput:
		return "output"
	case DepControl:
		return "control"
	}
	return "?"
}

// Comm is the commutativity annotation assigned by the COMMSET dependence
// analyzer (Algorithm 1).
type Comm int

// Commutativity annotations.
const (
	CommNone Comm = iota
	CommUCO       // unconditionally commutative: edge treated as absent
	CommICO       // inter-iteration commutative: treated as intra-iteration
)

// String names the annotation as in the paper.
func (c Comm) String() string {
	switch c {
	case CommUCO:
		return "uco"
	case CommICO:
		return "ico"
	}
	return "-"
}

// Edge is one dependence edge between instruction IDs.
type Edge struct {
	From, To    int
	Kind        DepKind
	LoopCarried bool
	Loc         string // cause: "slot total", "t:io.console", "g:x", ...
	Comm        Comm
	// IVSlot marks loop-carried local flow on an induction-variable slot,
	// which transforms may treat as privatized.
	IVSlot bool
	// SlotID identifies local-slot edges: slot index + 1, or 0 when the
	// edge is not a local-slot dependence.
	SlotID int
	// CommBy lists the commutative sets that justified a non-None Comm
	// annotation (filled by the dependence analyzer). Analysis tools use it
	// to audit whether each justifying set's predicate and synchronization
	// actually cover the edge's conflicting locations.
	CommBy []*types.Set
}

// LocalSlot returns the slot index of a local-slot edge and whether the
// edge is one.
func (e *Edge) LocalSlot() (int, bool) {
	if e.SlotID > 0 {
		return e.SlotID - 1, true
	}
	return -1, false
}

// PDG is the dependence graph of one loop.
type PDG struct {
	F    *ir.Func
	Loop *cfg.Loop
	G    *cfg.Graph

	Nodes   []int // sorted instruction IDs within the loop
	InLoop  map[int]bool
	Edges   []*Edge
	Instrs  map[int]*ir.Instr
	BlockOf map[int]int // instr ID -> block ID

	// IVSlots are induction-variable slots of this loop.
	IVSlots map[int]bool

	Dom *cfg.DomTree

	edgeSet map[edgeKey]*Edge
}

type edgeKey struct {
	from, to int
	kind     DepKind
	lc       bool
	loc      string
}

// Build constructs the PDG for loop in f. summary supplies call effects.
// controlIDs, when non-nil, lists the instruction IDs of the loop's
// condition and post-increment groups: only slots updated there qualify as
// privatizable induction variables (the executors recompute control state
// per iteration; a counter updated in the body is a genuine loop-carried
// dependence).
func Build(f *ir.Func, loop *cfg.Loop, g *cfg.Graph, summary *effects.Summary, controlIDs map[int]bool) *PDG {
	p := &PDG{
		F: f, Loop: loop, G: g,
		InLoop:  map[int]bool{},
		Instrs:  map[int]*ir.Instr{},
		BlockOf: map[int]int{},
		IVSlots: map[int]bool{},
		edgeSet: map[edgeKey]*Edge{},
		Dom:     cfg.NewDomTree(g.Dominators()),
	}
	for _, bid := range loop.BlockIDs() {
		for _, in := range f.BlockByID(bid).Instrs {
			p.Nodes = append(p.Nodes, in.ID)
			p.InLoop[in.ID] = true
			p.Instrs[in.ID] = in
			p.BlockOf[in.ID] = bid
		}
	}
	sort.Ints(p.Nodes)

	p.detectIVs(controlIDs)
	p.addRegEdges()
	p.addLocalMemEdges()
	p.addSharedMemEdges(summary)
	p.addControlEdges()
	return p
}

func (p *PDG) addEdge(e Edge) *Edge {
	k := edgeKey{e.From, e.To, e.Kind, e.LoopCarried, e.Loc}
	if ex, ok := p.edgeSet[k]; ok {
		return ex
	}
	ne := &e
	p.edgeSet[k] = ne
	p.Edges = append(p.Edges, ne)
	return ne
}

// --- induction variables ---

// detectIVs finds slots whose only store within the loop writes
// load(slot) ± const, computed in the same block (the canonical post
// increment produced by the lowerer).
func (p *PDG) detectIVs(controlIDs map[int]bool) {
	storesBySlot := map[int][]*ir.Instr{}
	for _, id := range p.Nodes {
		in := p.Instrs[id]
		if in.Op == ir.OpStoreLocal {
			storesBySlot[in.Slot] = append(storesBySlot[in.Slot], in)
		}
		if in.Op == ir.OpCall {
			for _, s := range in.OutSlots {
				storesBySlot[s] = append(storesBySlot[s], nil) // region write: disqualifies
			}
		}
	}
	for slot, stores := range storesBySlot {
		if len(stores) != 1 || stores[0] == nil {
			continue
		}
		st := stores[0]
		if controlIDs != nil && !controlIDs[st.ID] {
			continue
		}
		blk := p.F.BlockByID(p.BlockOf[st.ID])
		if p.isAffineUpdate(blk, st, slot) {
			p.IVSlots[slot] = true
		}
	}
}

// isAffineUpdate reports whether store st writes slot with the value
// load(slot) ± const computed earlier in the same block.
func (p *PDG) isAffineUpdate(blk *ir.Block, st *ir.Instr, slot int) bool {
	def := defInBlock(blk, st, st.A)
	if def == nil || def.Op != ir.OpBin || (def.BinOp != "+" && def.BinOp != "-") {
		return false
	}
	a := defInBlock(blk, def, def.A)
	b := defInBlock(blk, def, def.B)
	isLoad := func(in *ir.Instr) bool {
		return in != nil && in.Op == ir.OpLoadLocal && in.Slot == slot
	}
	isConst := func(in *ir.Instr) bool { return in != nil && in.Op == ir.OpConst }
	return (isLoad(a) && isConst(b)) || (def.BinOp == "+" && isConst(a) && isLoad(b))
}

// defInBlock finds the defining instruction of register r before instr
// `before` within block blk.
func defInBlock(blk *ir.Block, before *ir.Instr, r int) *ir.Instr {
	var def *ir.Instr
	for _, in := range blk.Instrs {
		if in == before {
			break
		}
		if in.Dst == r {
			def = in
		}
	}
	return def
}

// DefOfReg exposes defInBlock for the dependence analyzer: it finds the
// in-block definition of register r before instruction `before`.
func (p *PDG) DefOfReg(before *ir.Instr, r int) *ir.Instr {
	blk := p.F.BlockByID(p.BlockOf[before.ID])
	return defInBlock(blk, before, r)
}

// RMWSlots returns the slots a region call both reads (through an argument
// loaded from the slot) and writes (through OutSlots) — the shared
// read-modify-write accumulators that must live in shared storage under
// parallel execution. Write-only outputs are per-iteration dataflow and
// stay private.
func (p *PDG) RMWSlots(call *ir.Instr) []int {
	if call.Op != ir.OpCall || len(call.OutSlots) == 0 {
		return nil
	}
	argSlots := map[int]bool{}
	for _, r := range call.Args {
		if def := p.DefOfReg(call, r); def != nil && def.Op == ir.OpLoadLocal {
			argSlots[def.Slot] = true
		}
	}
	var rmw []int
	for _, s := range call.OutSlots {
		if argSlots[s] {
			rmw = append(rmw, s)
		}
	}
	return rmw
}

// --- register dependences ---

func (p *PDG) addRegEdges() {
	for _, bid := range p.Loop.BlockIDs() {
		blk := p.F.BlockByID(bid)
		lastDef := map[int]*ir.Instr{}
		for _, in := range blk.Instrs {
			for _, r := range regUses(in) {
				if def := lastDef[r]; def != nil {
					p.addEdge(Edge{From: def.ID, To: in.ID, Kind: DepRegFlow, Loc: fmt.Sprintf("r%d", r)})
				}
			}
			if in.Dst >= 0 {
				lastDef[in.Dst] = in
			}
		}
	}
}

func regUses(in *ir.Instr) []int {
	var uses []int
	switch in.Op {
	case ir.OpStoreLocal, ir.OpStoreGlobal, ir.OpUn:
		uses = append(uses, in.A)
	case ir.OpCondBr:
		uses = append(uses, in.A)
	case ir.OpBin:
		uses = append(uses, in.A, in.B)
	case ir.OpCall, ir.OpRet:
		uses = append(uses, in.Args...)
	}
	return uses
}

// --- intra-iteration reachability ---

// intraReach computes block-level reachability within the loop ignoring
// back edges into the header (the "iteration body" DAG).
func (p *PDG) intraReach() map[int]map[int]bool {
	reach := map[int]map[int]bool{}
	for _, b := range p.Loop.BlockIDs() {
		r := map[int]bool{}
		var stack []int
		push := func(s int) {
			if s != p.Loop.Header && p.Loop.Contains(s) && !r[s] {
				r[s] = true
				stack = append(stack, s)
			}
		}
		for _, s := range p.G.Succs[b] {
			push(s)
		}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, s := range p.G.Succs[x] {
				push(s)
			}
		}
		reach[b] = r
	}
	return reach
}

// canReachIntra reports whether execution can flow from instruction a to
// instruction b within a single iteration.
func canReachIntra(p *PDG, reach map[int]map[int]bool, a, b int) bool {
	ba, bb := p.BlockOf[a], p.BlockOf[b]
	if ba == bb {
		return a < b // IDs are dense in block order
	}
	return reach[ba][bb]
}
