package pdg

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/effects"
	"repro/internal/ir"
)

// --- local variable slot dependences ---

// slotAccess is one local-slot read or write by a loop instruction.
type slotAccess struct {
	id    int
	slot  int
	write bool
}

// addLocalMemEdges adds dependences through the target function's local
// variable slots.
//
// Slots written by a region call's OutSlots are "shared": in parallel
// execution they live in shared storage read-modified-written atomically by
// commutative members, so they receive the same conservative treatment as
// globals — loop-carried edges in both directions for every conflicting
// pair (relaxable by Algorithm 1 when both endpoints are member calls).
//
// Plain slots are privatized per iteration by the parallel executors, so:
// flow (write→read) edges are intra-iteration per reachability, loop-carried
// only into upward-exposed reads (values genuinely flowing across
// iterations); anti and output edges are intra-iteration only.
func (p *PDG) addLocalMemEdges() {
	var accesses []slotAccess
	shared := map[int]bool{}
	for _, id := range p.Nodes {
		in := p.Instrs[id]
		switch in.Op {
		case ir.OpLoadLocal:
			accesses = append(accesses, slotAccess{id: id, slot: in.Slot})
		case ir.OpStoreLocal:
			accesses = append(accesses, slotAccess{id: id, slot: in.Slot, write: true})
		case ir.OpCall:
			for _, s := range in.OutSlots {
				accesses = append(accesses, slotAccess{id: id, slot: s, write: true})
			}
			// Only read-modify-written slots are shared across threads;
			// write-only region outputs are per-iteration dataflow.
			for _, s := range p.RMWSlots(in) {
				shared[s] = true
			}
		}
	}

	reach := p.intraReach()
	exposed := p.upwardExposedLoads()

	bySlot := map[int][]slotAccess{}
	for _, a := range accesses {
		bySlot[a.slot] = append(bySlot[a.slot], a)
	}
	for slot, accs := range bySlot {
		loc := fmt.Sprintf("slot %s", p.F.Locals[slot].Name)
		sid := slot + 1
		iv := p.IVSlots[slot]
		if shared[slot] {
			p.addSharedSlotEdges(accs, reach, loc, sid)
			continue
		}
		for _, w := range accs {
			if !w.write {
				continue
			}
			for _, o := range accs {
				if o.write {
					// Output dependence, intra only.
					if o.id != w.id && canReachIntra(p, reach, w.id, o.id) {
						p.addEdge(Edge{From: w.id, To: o.id, Kind: DepOutput, Loc: loc, SlotID: sid})
					}
					continue
				}
				// Flow: intra when the write reaches the read in-iteration.
				if canReachIntra(p, reach, w.id, o.id) {
					p.addEdge(Edge{From: w.id, To: o.id, Kind: DepFlow, Loc: loc, SlotID: sid})
				}
				// Loop-carried flow into upward-exposed reads.
				if exposed[o.id] {
					p.addEdge(Edge{From: w.id, To: o.id, Kind: DepFlow, LoopCarried: true, Loc: loc, IVSlot: iv, SlotID: sid})
				}
				// Anti, intra only (locals are privatized per iteration).
				if canReachIntra(p, reach, o.id, w.id) {
					p.addEdge(Edge{From: o.id, To: w.id, Kind: DepAnti, Loc: loc, SlotID: sid})
				}
			}
		}
	}
}

// addSharedSlotEdges applies the conservative shared-state treatment to one
// slot's accesses: intra edges per reachability plus loop-carried edges in
// both directions for every conflicting pair.
func (p *PDG) addSharedSlotEdges(accs []slotAccess, reach map[int]map[int]bool, loc string, sid int) {
	for _, a := range accs {
		for _, b := range accs {
			switch {
			case a.write && !b.write:
				p.memEdgePairSlot(reach, a.id, b.id, DepFlow, loc, sid)
			case !a.write && b.write:
				p.memEdgePairSlot(reach, a.id, b.id, DepAnti, loc, sid)
			case a.write && b.write:
				if a.id == b.id {
					p.addEdge(Edge{From: a.id, To: a.id, Kind: DepOutput, LoopCarried: true, Loc: loc, SlotID: sid})
				} else {
					p.memEdgePairSlot(reach, a.id, b.id, DepOutput, loc, sid)
				}
			}
		}
	}
}

// memEdgePairSlot is memEdgePair with a slot identity.
func (p *PDG) memEdgePairSlot(reach map[int]map[int]bool, a, b int, kind DepKind, loc string, sid int) {
	if a != b && canReachIntra(p, reach, a, b) {
		p.addEdge(Edge{From: a, To: b, Kind: kind, Loc: loc, SlotID: sid})
	}
	p.addEdge(Edge{From: a, To: b, Kind: kind, LoopCarried: true, Loc: loc, SlotID: sid})
}

// upwardExposedLoads computes which OpLoadLocal instructions may observe a
// value from a previous iteration: loads not preceded on every
// intra-iteration path by a store to the same slot. The must-define
// dataflow iterates to a fixpoint so that inner-loop back edges (cycles in
// the iteration body) are handled precisely: an inner loop's own induction
// variable is defined before its header on every path from the outer
// header.
func (p *PDG) upwardExposedLoads() map[int]bool {
	blocks := p.Loop.BlockIDs()
	type slotSet map[int]bool
	in := map[int]slotSet{}
	out := map[int]slotSet{}

	order := p.intraTopoOrder()

	intraPreds := func(b int) []int {
		var preds []int
		for _, pr := range p.G.Preds[b] {
			if p.Loop.Contains(pr) && b != p.Loop.Header {
				preds = append(preds, pr)
			}
		}
		return preds
	}

	universe := slotSet{}
	defsIn := map[int]slotSet{}
	for _, b := range blocks {
		ds := slotSet{}
		for _, instr := range p.F.BlockByID(b).Instrs {
			if instr.Op == ir.OpStoreLocal {
				ds[instr.Slot] = true
				universe[instr.Slot] = true
			}
			if instr.Op == ir.OpCall {
				for _, s := range instr.OutSlots {
					ds[s] = true
					universe[s] = true
				}
			}
		}
		defsIn[b] = ds
	}

	// Optimistic initialization (OUT = universe) and iteration to fixpoint.
	copySet := func(s slotSet) slotSet {
		c := make(slotSet, len(s))
		for k := range s {
			c[k] = true
		}
		return c
	}
	for _, b := range blocks {
		out[b] = copySet(universe)
	}
	changed := true
	for changed {
		changed = false
		for _, b := range order {
			preds := intraPreds(b)
			var cur slotSet
			if len(preds) == 0 {
				cur = slotSet{} // header: nothing defined at iteration start
			} else {
				cur = copySet(out[preds[0]])
				for _, pr := range preds[1:] {
					po := out[pr]
					for s := range cur {
						if !po[s] {
							delete(cur, s)
						}
					}
				}
			}
			in[b] = cur
			o := copySet(cur)
			for s := range defsIn[b] {
				o[s] = true
			}
			if !equalSlotSet(o, out[b]) {
				out[b] = o
				changed = true
			}
		}
	}

	exposed := map[int]bool{}
	for _, b := range blocks {
		have := slotSet{}
		for s := range in[b] {
			have[s] = true
		}
		for _, instr := range p.F.BlockByID(b).Instrs {
			switch instr.Op {
			case ir.OpLoadLocal:
				if !have[instr.Slot] {
					exposed[instr.ID] = true
				}
			case ir.OpStoreLocal:
				have[instr.Slot] = true
			case ir.OpCall:
				for _, s := range instr.OutSlots {
					have[s] = true
				}
			}
		}
	}
	return exposed
}

func equalSlotSet(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// intraTopoOrder orders loop blocks so that intra-iteration predecessors
// come first (header first, back edges ignored).
func (p *PDG) intraTopoOrder() []int {
	visited := map[int]bool{}
	var order []int
	var dfs func(b int)
	dfs = func(b int) {
		visited[b] = true
		for _, s := range p.G.Succs[b] {
			if p.Loop.Contains(s) && s != p.Loop.Header && !visited[s] {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	dfs(p.Loop.Header)
	// Reverse postorder.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// --- shared memory (globals and substrate tags) ---

// addSharedMemEdges adds dependences through globals and builtin effect
// tags. These model externally visible state, so the loop-carried
// dependence detector is conservative: every conflicting pair receives
// loop-carried edges in both directions in addition to the intra-iteration
// edge implied by reachability (paper Section 4.3: edges are loop carried
// "whenever the source and/or destination nodes read and update shared
// memory state").
func (p *PDG) addSharedMemEdges(summary *effects.Summary) {
	type memAccess struct {
		id     int
		reads  effects.Set
		writes effects.Set
	}
	var accs []memAccess
	for _, id := range p.Nodes {
		in := p.Instrs[id]
		switch in.Op {
		case ir.OpLoadGlobal:
			r := effects.Set{}
			r.Add(effects.GlobalLoc(in.Name))
			accs = append(accs, memAccess{id: id, reads: r, writes: effects.Set{}})
		case ir.OpStoreGlobal:
			w := effects.Set{}
			w.Add(effects.GlobalLoc(in.Name))
			accs = append(accs, memAccess{id: id, reads: effects.Set{}, writes: w})
		case ir.OpCall:
			r, w := summary.CallEffects(in.Name)
			if len(r) == 0 && len(w) == 0 {
				continue
			}
			accs = append(accs, memAccess{id: id, reads: r, writes: w})
		}
	}

	reach := p.intraReach()
	conflictLoc := func(a, b effects.Set) (effects.Loc, bool) {
		for _, l := range a.Sorted() {
			if b[l] {
				return l, true
			}
		}
		return "", false
	}

	for i := range accs {
		for j := range accs {
			a, b := accs[i], accs[j]
			// Flow/output from a's writes; anti from a's reads.
			if loc, ok := conflictLoc(a.writes, b.reads); ok {
				p.memEdgePair(reach, a.id, b.id, DepFlow, string(loc))
			}
			if loc, ok := conflictLoc(a.writes, b.writes); ok && a.id != b.id {
				p.memEdgePair(reach, a.id, b.id, DepOutput, string(loc))
			} else if ok && a.id == b.id {
				p.addEdge(Edge{From: a.id, To: a.id, Kind: DepOutput, LoopCarried: true, Loc: string(loc)})
			}
			if loc, ok := conflictLoc(a.reads, b.writes); ok {
				p.memEdgePair(reach, a.id, b.id, DepAnti, string(loc))
			}
		}
	}
}

// memEdgePair adds the intra-iteration edge (when a reaches b within the
// iteration) and the conservative loop-carried edge a -> b.
func (p *PDG) memEdgePair(reach map[int]map[int]bool, a, b int, kind DepKind, loc string) {
	if a != b && canReachIntra(p, reach, a, b) {
		p.addEdge(Edge{From: a, To: b, Kind: kind, Loc: loc})
	}
	p.addEdge(Edge{From: a, To: b, Kind: kind, LoopCarried: true, Loc: loc})
}

// --- control dependences ---

// addControlEdges adds block-level control dependences computed from
// post-dominance: block Y is control dependent on branch block X when Y
// post-dominates a successor of X but not X itself. All instructions of Y
// depend on X's terminator. The loop-header branch additionally carries a
// loop-carried control dependence to every loop instruction (it decides
// whether the next iteration executes).
func (p *PDG) addControlEdges() {
	ipdom := p.G.PostDominators()
	pd := cfg.NewDomTreeP(ipdom)

	for _, x := range p.Loop.BlockIDs() {
		term := p.F.BlockByID(x).Terminator()
		if term == nil || term.Op != ir.OpCondBr {
			continue
		}
		for _, y := range p.Loop.BlockIDs() {
			dep := false
			for _, s := range p.G.Succs[x] {
				if pd.Dominates(y, s) && !pd.Dominates(y, x) {
					dep = true
					break
				}
			}
			if !dep {
				continue
			}
			for _, in := range p.F.BlockByID(y).Instrs {
				p.addEdge(Edge{From: term.ID, To: in.ID, Kind: DepControl, Loc: "cd"})
			}
		}
	}

	// Loop-carried control: the header's exit branch controls the next
	// iteration of every node.
	hterm := p.F.BlockByID(p.Loop.Header).Terminator()
	if hterm != nil && hterm.Op == ir.OpCondBr {
		for _, id := range p.Nodes {
			p.addEdge(Edge{From: hterm.ID, To: id, Kind: DepControl, LoopCarried: true, Loc: "loop"})
		}
	}
}
