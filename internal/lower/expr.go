package lower

import (
	"repro/internal/ast"
	"repro/internal/ir"
	"repro/internal/token"
	"repro/internal/types"
	"repro/internal/vm/value"
)

// expr lowers an expression into the current block, returning the register
// holding its value. Short-circuit operators and the ternary operator route
// their results through temporary local slots so that registers stay
// block-local.
func (l *fnLowerer) expr(e ast.Expr) int {
	switch n := e.(type) {
	case *ast.IntLit:
		r := l.newReg()
		l.emit(&ir.Instr{Op: ir.OpConst, Dst: r, Val: value.Int(n.Value), Pos: n.Pos()})
		return r
	case *ast.FloatLit:
		r := l.newReg()
		l.emit(&ir.Instr{Op: ir.OpConst, Dst: r, Val: value.Float(n.Value), Pos: n.Pos()})
		return r
	case *ast.StringLit:
		r := l.newReg()
		l.emit(&ir.Instr{Op: ir.OpConst, Dst: r, Val: value.Str(n.Value), Pos: n.Pos()})
		return r
	case *ast.BoolLit:
		r := l.newReg()
		l.emit(&ir.Instr{Op: ir.OpConst, Dst: r, Val: value.Bool(n.Value), Pos: n.Pos()})
		return r
	case *ast.Ident:
		return l.loadVar(n.Name, n.Pos())
	case *ast.CallExpr:
		return l.call(n)
	case *ast.UnaryExpr:
		x := l.expr(n.X)
		r := l.newReg()
		op := "-"
		if n.Op == token.NOT {
			op = "!"
		}
		l.emit(&ir.Instr{Op: ir.OpUn, Dst: r, A: x, BinOp: op, Pos: n.Pos()})
		return r
	case *ast.BinaryExpr:
		if n.Op == token.AND || n.Op == token.OR {
			return l.shortCircuit(n)
		}
		x := l.expr(n.X)
		y := l.expr(n.Y)
		r := l.newReg()
		l.emit(&ir.Instr{Op: ir.OpBin, Dst: r, A: x, B: y, BinOp: n.Op.String(), Pos: n.Pos()})
		return r
	case *ast.CondExpr:
		return l.ternary(n)
	}
	// Unreachable for a checked AST.
	r := l.newReg()
	l.emit(&ir.Instr{Op: ir.OpConst, Dst: r, Val: value.Int(0)})
	return r
}

// shortCircuit lowers && and || with a temporary slot carrying the result
// across the control split.
func (l *fnLowerer) shortCircuit(n *ast.BinaryExpr) int {
	tmp := l.f.AddLocal("$sc", ast.TBool)
	x := l.expr(n.X)
	l.emit(&ir.Instr{Op: ir.OpStoreLocal, Slot: tmp, A: x, Pos: n.Pos()})
	evalY := l.f.NewBlock()
	end := l.f.NewBlock()
	if n.Op == token.AND {
		// x true -> evaluate y; x false -> done (false).
		l.emit(&ir.Instr{Op: ir.OpCondBr, A: x, Targets: [2]int{evalY.ID, end.ID}, Pos: n.Pos()})
	} else {
		// x true -> done (true); x false -> evaluate y.
		l.emit(&ir.Instr{Op: ir.OpCondBr, A: x, Targets: [2]int{end.ID, evalY.ID}, Pos: n.Pos()})
	}
	l.setCur(evalY)
	y := l.expr(n.Y)
	l.emit(&ir.Instr{Op: ir.OpStoreLocal, Slot: tmp, A: y, Pos: n.Pos()})
	l.br(end)
	l.setCur(end)
	r := l.newReg()
	l.emit(&ir.Instr{Op: ir.OpLoadLocal, Dst: r, Slot: tmp, Pos: n.Pos()})
	return r
}

func (l *fnLowerer) ternary(n *ast.CondExpr) int {
	t := l.m.info.ExprTypes[n]
	tmp := l.f.AddLocal("$sel", t)
	cond := l.expr(n.Cond)
	thenB := l.f.NewBlock()
	elseB := l.f.NewBlock()
	end := l.f.NewBlock()
	l.emit(&ir.Instr{Op: ir.OpCondBr, A: cond, Targets: [2]int{thenB.ID, elseB.ID}, Pos: n.Pos()})
	l.setCur(thenB)
	tv := l.expr(n.Then)
	l.emit(&ir.Instr{Op: ir.OpStoreLocal, Slot: tmp, A: tv, Pos: n.Pos()})
	l.br(end)
	l.setCur(elseB)
	ev := l.expr(n.Else)
	l.emit(&ir.Instr{Op: ir.OpStoreLocal, Slot: tmp, A: ev, Pos: n.Pos()})
	l.br(end)
	l.setCur(end)
	r := l.newReg()
	l.emit(&ir.Instr{Op: ir.OpLoadLocal, Dst: r, Slot: tmp, Pos: n.Pos()})
	return r
}

func (l *fnLowerer) call(n *ast.CallExpr) int {
	args := make([]int, len(n.Args))
	for i, a := range n.Args {
		args[i] = l.expr(a)
	}
	sig := l.m.info.SigOf(n.Fun)
	dst := -1
	if sig != nil && sig.Result != ast.TVoid {
		dst = l.newReg()
	}
	l.emit(&ir.Instr{Op: ir.OpCall, Dst: dst, Name: n.Fun, Args: args, Pos: n.Pos()})
	return dst
}

// emitMembArgLoads materializes predicate argument values in registers just
// before a region call and returns the membership references.
func (l *fnLowerer) emitMembArgLoads(membs []*types.Membership) []MembRef {
	refs := make([]MembRef, 0, len(membs))
	for _, memb := range membs {
		ref := MembRef{Set: memb.Set}
		for _, a := range memb.Args {
			ref.ArgRegs = append(ref.ArgRegs, l.loadVar(a, memb.Pos))
		}
		refs = append(refs, ref)
	}
	return refs
}
