package lower

import (
	"repro/internal/ir"
)

// inlineAdds clones enabling call paths for every COMMSETNAMEDARGADD: the
// callee is inlined at the enabling call site, and the named block's region
// call inside the inlined body receives the client's memberships, with
// predicate arguments bound to client program state (paper Section 4.2:
// "Call sites enabling optionally commutative named code blocks are inlined
// to clone the call path from the enabling function call to the
// COMMSETNAMEDBLOCK declaration").
func (m *module) inlineAdds() {
	// Several COMMSETNAMEDARGADD directives may enable different named
	// blocks of the same call; the call is inlined once and every enabled
	// block receives its memberships from the clone.
	var order []*ir.Instr
	groups := map[*ir.Instr][]*loweredAdd{}
	for _, la := range m.loweredAdds {
		if groups[la.callInst] == nil {
			order = append(order, la.callInst)
		}
		groups[la.callInst] = append(groups[la.callInst], la)
	}
	for _, call := range order {
		m.inlineOne(groups[call])
	}
}

func (m *module) inlineOne(group []*loweredAdd) {
	la := group[0]
	caller := la.caller
	callee := m.res.Prog.Funcs[la.add.Func]
	if callee == nil {
		m.errorf(la.add.Pos, "internal: callee %s not lowered", la.add.Func)
		return
	}

	// Locate the call instruction in the caller.
	var homeBlock *ir.Block
	callIdx := -1
	for _, b := range caller.Blocks {
		for i, in := range b.Instrs {
			if in == la.callInst {
				homeBlock, callIdx = b, i
				break
			}
		}
		if homeBlock != nil {
			break
		}
	}
	if homeBlock == nil {
		m.errorf(la.add.Pos, "internal: enabling call vanished before inlining")
		return
	}

	slotOff := len(caller.Locals)
	regOff := caller.NumRegs
	caller.NumRegs += callee.NumRegs
	for _, loc := range callee.Locals {
		caller.AddLocal("inl$"+loc.Name, loc.Type)
	}

	// Result delivery slot.
	retSlot := -1
	if la.callInst.Dst >= 0 && len(callee.Results) > 0 {
		retSlot = caller.AddLocal("$ret$"+callee.Name, callee.Results[0])
	}

	// added collects every instruction created by this inline, so loop-unit
	// records can swap the call instruction for its expansion.
	var added []*ir.Instr

	// Continuation block receives everything after the call; the cloned
	// callee blocks follow it, so their IDs start at cont.ID+1.
	cont := caller.NewBlock()
	blockOff := cont.ID + 1
	cont.Instrs = append(cont.Instrs, homeBlock.Instrs[callIdx+1:]...)
	if la.callInst.Dst >= 0 {
		head := []*ir.Instr{{Op: ir.OpLoadLocal, Dst: la.callInst.Dst, Slot: retSlot, Pos: la.callInst.Pos}}
		cont.Instrs = append(head, cont.Instrs...)
		added = append(added, head[0])
	}

	// The home block now stores arguments into parameter slots and jumps to
	// the cloned entry.
	homeBlock.Instrs = homeBlock.Instrs[:callIdx]
	for j, argReg := range la.callInst.Args {
		st := &ir.Instr{Op: ir.OpStoreLocal, Slot: slotOff + j, A: argReg, Pos: la.callInst.Pos}
		homeBlock.Instrs = append(homeBlock.Instrs, st)
		added = append(added, st)
	}
	enter := &ir.Instr{Op: ir.OpBr, Targets: [2]int{blockOff, blockOff}, Pos: la.callInst.Pos}
	homeBlock.Instrs = append(homeBlock.Instrs, enter)
	added = append(added, enter)

	// Clone callee blocks, remembering the clone of every named-block
	// region call an add in the group enables.
	enabled := map[string]*ir.Instr{}
	wanted := map[string]bool{}
	for _, g := range group {
		wanted[g.add.Func+"$"+g.add.Block] = true
	}
	for _, cb := range callee.Blocks {
		nb := caller.NewBlock()
		if nb.ID != blockOff+cb.ID {
			// Block IDs are dense; NewBlock after cont gives sequential IDs.
			// This should always line up.
			m.errorf(la.add.Pos, "internal: inline block numbering skewed")
		}
		for _, in := range cb.Instrs {
			clone := m.cloneInstr(in, regOff, slotOff, blockOff, cont.ID, retSlot)
			nb.Instrs = append(nb.Instrs, clone...)
			added = append(added, clone...)
			for _, ci := range clone {
				if ci.Op == ir.OpCall && wanted[ci.Name] {
					enabled[ci.Name] = ci
				}
			}
		}
	}

	// Attach each add's client memberships to its enabled region call,
	// loading the client-state predicate arguments immediately before it.
	for _, g := range group {
		regionCallName := g.add.Func + "$" + g.add.Block
		enabledCall := enabled[regionCallName]
		if enabledCall == nil {
			m.errorf(g.add.Pos, "internal: named block region %s not found while inlining", regionCallName)
			continue
		}
		ecBlock := caller.BlockOfInstr(enabledCall)
		refs := make([]MembRef, 0, len(g.add.Membs))
		for mi, memb := range g.add.Membs {
			ref := MembRef{Set: memb.Set}
			for _, loc := range g.argLocs[mi] {
				r := caller.NumRegs
				caller.NumRegs++
				var load *ir.Instr
				if loc.global {
					load = &ir.Instr{Op: ir.OpLoadGlobal, Dst: r, Name: loc.name, Pos: g.add.Pos}
				} else {
					load = &ir.Instr{Op: ir.OpLoadLocal, Dst: r, Slot: loc.slot, Pos: g.add.Pos}
				}
				insertBefore(ecBlock, enabledCall, load)
				added = append(added, load)
				ref.ArgRegs = append(ref.ArgRegs, r)
			}
			refs = append(refs, ref)
		}
		m.res.CallMembs[enabledCall] = append(m.res.CallMembs[enabledCall], refs...)
	}
	m.fixupUnits(la.callInst, added)
}

// fixupUnits replaces the inlined call instruction with its expansion in any
// loop-unit record that contained it, keeping unit membership exact.
func (m *module) fixupUnits(old *ir.Instr, added []*ir.Instr) {
	for _, lu := range m.res.Loops {
		for ui, unit := range lu.Units {
			for ii, in := range unit {
				if in == old {
					repl := make([]*ir.Instr, 0, len(unit)-1+len(added))
					repl = append(repl, unit[:ii]...)
					repl = append(repl, added...)
					repl = append(repl, unit[ii+1:]...)
					lu.Units[ui] = repl
					break
				}
			}
		}
	}
}

// cloneInstr clones one callee instruction with remapped registers, slots,
// and block targets. OpRet becomes a store of the return value (when the
// call expects one) followed by a branch to the continuation block.
func (m *module) cloneInstr(in *ir.Instr, regOff, slotOff, blockOff, contID, retSlot int) []*ir.Instr {
	mapReg := func(r int) int {
		if r < 0 {
			return r
		}
		return r + regOff
	}
	if in.Op == ir.OpRet {
		var out []*ir.Instr
		if retSlot >= 0 && len(in.Args) > 0 {
			out = append(out, &ir.Instr{Op: ir.OpStoreLocal, Slot: retSlot, A: mapReg(in.Args[0]), Pos: in.Pos})
		}
		out = append(out, &ir.Instr{Op: ir.OpBr, Targets: [2]int{contID, contID}, Pos: in.Pos})
		return out
	}
	c := &ir.Instr{
		Op:    in.Op,
		Dst:   mapReg(in.Dst),
		A:     mapReg(in.A),
		B:     mapReg(in.B),
		Slot:  in.Slot,
		Name:  in.Name,
		Val:   in.Val,
		BinOp: in.BinOp,
		Pos:   in.Pos,
	}
	switch in.Op {
	case ir.OpLoadLocal, ir.OpStoreLocal:
		c.Slot = in.Slot + slotOff
	case ir.OpBr, ir.OpCondBr:
		c.Targets = [2]int{in.Targets[0] + blockOff, in.Targets[1] + blockOff}
	}
	if in.Args != nil {
		c.Args = make([]int, len(in.Args))
		for i, a := range in.Args {
			c.Args[i] = mapReg(a)
		}
	}
	if in.OutSlots != nil {
		c.OutSlots = make([]int, len(in.OutSlots))
		for i, s := range in.OutSlots {
			c.OutSlots[i] = s + slotOff
		}
	}
	// Preserve memberships recorded on the original instruction (e.g. a
	// member block inside the inlined callee).
	if membs, ok := m.res.CallMembs[in]; ok {
		cloned := make([]MembRef, len(membs))
		for i, ref := range membs {
			cr := MembRef{Set: ref.Set, ArgRegs: make([]int, len(ref.ArgRegs))}
			for j, r := range ref.ArgRegs {
				cr.ArgRegs[j] = mapReg(r)
			}
			cloned[i] = cr
		}
		m.res.CallMembs[c] = cloned
	}
	return []*ir.Instr{c}
}

func insertBefore(b *ir.Block, target *ir.Instr, in *ir.Instr) {
	for i, x := range b.Instrs {
		if x == target {
			b.Instrs = append(b.Instrs[:i], append([]*ir.Instr{in}, b.Instrs[i:]...)...)
			return
		}
	}
}
