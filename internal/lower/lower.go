// Package lower translates the type-checked MiniC AST into IR and performs
// the COMMSET Metadata Manager's canonicalization (paper Section 4.2):
//
//   - Every commutative compound statement (a block with COMMSET membership
//     or a COMMSETNAMEDBLOCK) is extracted into its own region function, so
//     that afterwards all members of a COMMSET are functions. Nested regions
//     extract correctly because lowering recurses post-order.
//   - Call sites that enable optionally commutative named blocks
//     (COMMSETNAMEDARGADD) are inlined to clone the call path from the
//     enabling call to the named block, after which the enabled memberships
//     attach to the cloned region call with predicate arguments bound to
//     client program state.
//
// The lowering also records where every membership lives in the IR:
// CallMembs maps call instructions (region calls and, after inlining,
// enabled named-block calls) to their set memberships, with predicate
// argument values materialized in registers immediately before the call;
// FuncMembs records interface-level memberships keyed by callee name with
// predicate arguments as parameter indices.
package lower

import (
	"repro/internal/ast"
	"repro/internal/ir"
	"repro/internal/source"
	"repro/internal/token"
	"repro/internal/types"
	"repro/internal/vm/value"
)

// MembRef attaches one set membership to a specific call instruction.
// ArgRegs hold the predicate actual-argument values at the call site (empty
// for unpredicated and Self sets without arguments).
type MembRef struct {
	Set     *types.Set
	ArgRegs []int
}

// FuncMembRef is an interface-level membership: every call to the function
// is a member instance, with predicate arguments taken from the listed
// parameter positions.
type FuncMembRef struct {
	Set      *types.Set
	ParamIdx []int
}

// LoopUnits records the statement-level structure of one lowered loop: the
// instruction groups of the loop body's top-level statements ("units"), the
// header condition instructions, and the post (increment) instructions.
// The parallelizing transforms partition loop iterations at unit
// granularity, with unit-level dependences aggregated from the
// instruction-level PDG.
type LoopUnits struct {
	Func   string
	Header int // header block ID
	Units  [][]*ir.Instr
	Cond   []*ir.Instr
	Post   []*ir.Instr
}

// Result is the outcome of lowering a checked program.
type Result struct {
	Prog *ir.Program
	Info *types.Info

	// CallMembs maps region-call instructions to their memberships.
	CallMembs map[*ir.Instr][]MembRef
	// FuncMembs maps function names to interface-level memberships.
	FuncMembs map[string][]FuncMembRef
	// RegionFuncs maps region function names to the membership-bearing
	// block they were extracted from (for diagnostics and dumps).
	RegionFuncs map[string]source.Pos
	// Loops lists the unit structure of every lowered loop.
	Loops []*LoopUnits
}

// Lower lowers the checked program. Check's diagnostics must be clean;
// lowering reports internal inconsistencies into diags.
func Lower(info *types.Info, diags *source.DiagList) *Result {
	m := &module{
		res: &Result{
			Prog:        &ir.Program{Funcs: map[string]*ir.Func{}},
			Info:        info,
			CallMembs:   map[*ir.Instr][]MembRef{},
			FuncMembs:   map[string][]FuncMembRef{},
			RegionFuncs: map[string]source.Pos{},
		},
		info:     info,
		diags:    diags,
		file:     info.Prog.File.Name,
		addByStm: map[ast.Stmt][]*types.Add{},
	}
	for _, g := range info.Prog.Globals {
		m.res.Prog.Globals = append(m.res.Prog.Globals, ir.Global{
			Name: g.Name,
			Type: g.Type,
			Init: globalInit(g),
		})
	}
	for _, add := range info.Adds {
		m.addByStm[add.Stmt] = append(m.addByStm[add.Stmt], add)
	}
	// Interface-level memberships.
	for name, inst := range info.FuncMembs {
		fn := info.Prog.FindFunc(name)
		for _, memb := range inst.Membs {
			ref := FuncMembRef{Set: memb.Set}
			for _, argName := range memb.Args {
				idx := -1
				for i, p := range fn.Params {
					if p.Name == argName {
						idx = i
						break
					}
				}
				ref.ParamIdx = append(ref.ParamIdx, idx)
			}
			m.res.FuncMembs[name] = append(m.res.FuncMembs[name], ref)
		}
	}
	for _, fn := range info.Prog.Funcs {
		m.lowerFunc(fn)
	}
	m.inlineAdds()
	for _, name := range m.res.Prog.Order {
		m.res.Prog.Funcs[name].Renumber()
	}
	return m.res
}

func globalInit(g *ast.VarDecl) value.Value {
	switch lit := g.Init.(type) {
	case *ast.IntLit:
		return value.Int(lit.Value)
	case *ast.FloatLit:
		return value.Float(lit.Value)
	case *ast.StringLit:
		return value.Str(lit.Value)
	case *ast.BoolLit:
		return value.Bool(lit.Value)
	}
	return value.Zero(g.Type)
}

type module struct {
	res      *Result
	info     *types.Info
	diags    *source.DiagList
	file     string
	regionID int

	// addByStm indexes COMMSETNAMEDARGADD records by their statement.
	addByStm map[ast.Stmt][]*types.Add
	// loweredAdds records, per add, the client call instruction and the
	// client-state slot of each predicate argument, captured while the
	// client statement is lowered.
	loweredAdds []*loweredAdd
}

// varLoc locates a client variable: a caller local slot or a global.
type varLoc struct {
	global bool
	slot   int
	name   string
}

type loweredAdd struct {
	add      *types.Add
	caller   *ir.Func
	callInst *ir.Instr
	argLocs  [][]varLoc // per membership, per argument
}

func (m *module) errorf(pos source.Pos, format string, args ...any) {
	m.diags.Errorf(m.file, pos, format, args...)
}

// --- function lowering ---

type fnLowerer struct {
	m   *module
	f   *ir.Func
	cur *ir.Block

	scopes []map[string]int // variable name -> local slot

	breakTargets    []*ir.Block
	continueTargets []*ir.Block

	srcFn *ast.FuncDecl // enclosing source function (also for regions)
}

func (m *module) lowerFunc(fn *ast.FuncDecl) {
	f := &ir.Func{Name: fn.Name, Params: len(fn.Params), Pos: fn.Pos(), SrcFunc: fn.Name}
	if fn.Result != ast.TVoid {
		f.Results = []ast.Type{fn.Result}
	}
	l := &fnLowerer{m: m, f: f, srcFn: fn}
	l.scopes = []map[string]int{{}}
	for _, p := range fn.Params {
		slot := f.AddLocal(p.Name, p.Type)
		l.scopes[0][p.Name] = slot
	}
	l.cur = f.NewBlock()
	for _, s := range fn.Body.Stmts {
		l.stmt(s)
	}
	l.ensureReturn(fn)
	m.res.Prog.AddFunc(f)
}

// ensureReturn terminates the final block with an implicit return of the
// zero value when control can fall off the end of the function.
func (l *fnLowerer) ensureReturn(fn *ast.FuncDecl) {
	if l.cur.Terminator() != nil {
		return
	}
	if fn.Result == ast.TVoid {
		l.emit(&ir.Instr{Op: ir.OpRet})
		return
	}
	r := l.newReg()
	l.emit(&ir.Instr{Op: ir.OpConst, Dst: r, Val: value.Zero(fn.Result)})
	l.emit(&ir.Instr{Op: ir.OpRet, Args: []int{r}})
}

func (l *fnLowerer) emit(in *ir.Instr) *ir.Instr {
	l.cur.Instrs = append(l.cur.Instrs, in)
	return in
}

func (l *fnLowerer) newReg() int {
	r := l.f.NumRegs
	l.f.NumRegs++
	return r
}

func (l *fnLowerer) pushScope() { l.scopes = append(l.scopes, map[string]int{}) }
func (l *fnLowerer) popScope()  { l.scopes = l.scopes[:len(l.scopes)-1] }

// lookup resolves a variable to a local slot, or reports it as global.
func (l *fnLowerer) lookup(name string) (slot int, global bool) {
	for i := len(l.scopes) - 1; i >= 0; i-- {
		if s, ok := l.scopes[i][name]; ok {
			return s, false
		}
	}
	return -1, true
}

func (l *fnLowerer) declare(name string, t ast.Type) int {
	slot := l.f.AddLocal(name, t)
	l.scopes[len(l.scopes)-1][name] = slot
	return slot
}

// setCur switches emission to block b.
func (l *fnLowerer) setCur(b *ir.Block) { l.cur = b }

// br emits an unconditional branch if the current block lacks a terminator.
func (l *fnLowerer) br(target *ir.Block) {
	if l.cur.Terminator() == nil {
		l.emit(&ir.Instr{Op: ir.OpBr, Targets: [2]int{target.ID, target.ID}})
	}
}

// --- statements ---

func (l *fnLowerer) stmt(s ast.Stmt) {
	// Capture namedargadd context before lowering the statement so the
	// enabling call instruction can be identified afterwards.
	if adds := l.m.addByStm[s]; len(adds) > 0 {
		startBlk, startLen, startBlocks := l.cur, len(l.cur.Instrs), len(l.f.Blocks)
		l.stmtInner(s)
		l.recordAdds(adds, startBlk, startLen, startBlocks)
		return
	}
	l.stmtInner(s)
}

func (l *fnLowerer) stmtInner(s ast.Stmt) {
	switch n := s.(type) {
	case *ast.DeclStmt:
		l.declStmt(n)
	case *ast.AssignStmt:
		l.assign(n)
	case *ast.IncDecStmt:
		l.incDec(n)
	case *ast.ExprStmt:
		l.expr(n.X)
	case *ast.IfStmt:
		l.ifStmt(n)
	case *ast.WhileStmt:
		l.whileStmt(n)
	case *ast.ForStmt:
		l.forStmt(n)
	case *ast.ReturnStmt:
		l.returnStmt(n)
	case *ast.BreakStmt:
		if len(l.breakTargets) == 0 {
			return // checker reported
		}
		l.br(l.breakTargets[len(l.breakTargets)-1])
		l.setCur(l.f.NewBlock()) // unreachable continuation
	case *ast.ContinueStmt:
		if len(l.continueTargets) == 0 {
			return
		}
		l.br(l.continueTargets[len(l.continueTargets)-1])
		l.setCur(l.f.NewBlock())
	case *ast.BlockStmt:
		l.blockStmt(n)
	case *ast.EmptyStmt:
	}
}

// recordAdds finds the enabling call instruction emitted while lowering the
// annotated statement and captures the client-state locations of the
// predicate arguments for later inlining.
func (l *fnLowerer) recordAdds(adds []*types.Add, startBlk *ir.Block, startLen, startBlocks int) {
	emitted := make([]*ir.Instr, 0, 16)
	emitted = append(emitted, startBlk.Instrs[startLen:]...)
	for _, b := range l.f.Blocks[startBlocks:] {
		emitted = append(emitted, b.Instrs...)
	}
	for _, add := range adds {
		var callInst *ir.Instr
		for _, in := range emitted {
			if in.Op == ir.OpCall && in.Name == add.Func {
				callInst = in
				break
			}
		}
		if callInst == nil {
			l.m.errorf(add.Pos, "commset add must annotate the statement performing the enabling call to %s", add.Func)
			continue
		}
		la := &loweredAdd{add: add, caller: l.f, callInst: callInst}
		for _, memb := range add.Membs {
			locs := make([]varLoc, len(memb.Args))
			for i, a := range memb.Args {
				if slot, global := l.lookup(a); !global {
					locs[i] = varLoc{slot: slot, name: a}
				} else {
					locs[i] = varLoc{global: true, name: a}
				}
			}
			la.argLocs = append(la.argLocs, locs)
		}
		l.m.loweredAdds = append(l.m.loweredAdds, la)
	}
}

func (l *fnLowerer) declStmt(n *ast.DeclStmt) {
	d := n.Decl
	var r int
	if d.Init != nil {
		r = l.expr(d.Init)
	} else {
		r = l.newReg()
		l.emit(&ir.Instr{Op: ir.OpConst, Dst: r, Val: value.Zero(d.Type), Pos: d.Pos()})
	}
	slot := l.declare(d.Name, d.Type)
	l.emit(&ir.Instr{Op: ir.OpStoreLocal, Slot: slot, A: r, Pos: d.Pos()})
}

func (l *fnLowerer) loadVar(name string, pos source.Pos) int {
	r := l.newReg()
	if slot, global := l.lookup(name); !global {
		l.emit(&ir.Instr{Op: ir.OpLoadLocal, Dst: r, Slot: slot, Pos: pos})
	} else {
		l.emit(&ir.Instr{Op: ir.OpLoadGlobal, Dst: r, Name: name, Pos: pos})
	}
	return r
}

func (l *fnLowerer) storeVar(name string, r int, pos source.Pos) {
	if slot, global := l.lookup(name); !global {
		l.emit(&ir.Instr{Op: ir.OpStoreLocal, Slot: slot, A: r, Pos: pos})
	} else {
		l.emit(&ir.Instr{Op: ir.OpStoreGlobal, Name: name, A: r, Pos: pos})
	}
}

func (l *fnLowerer) assign(n *ast.AssignStmt) {
	if n.Op == token.ASSIGN {
		r := l.expr(n.Rhs)
		l.storeVar(n.Lhs, r, n.Pos())
		return
	}
	// Compound assignment: load, apply, store.
	cur := l.loadVar(n.Lhs, n.Pos())
	rhs := l.expr(n.Rhs)
	dst := l.newReg()
	l.emit(&ir.Instr{Op: ir.OpBin, Dst: dst, A: cur, B: rhs, BinOp: compoundOp(n.Op), Pos: n.Pos()})
	l.storeVar(n.Lhs, dst, n.Pos())
}

func compoundOp(k token.Kind) string {
	switch k {
	case token.ADDASSIGN:
		return "+"
	case token.SUBASSIGN:
		return "-"
	case token.MULASSIGN:
		return "*"
	case token.QUOASSIGN:
		return "/"
	case token.REMASSIGN:
		return "%"
	}
	return "?"
}

func (l *fnLowerer) incDec(n *ast.IncDecStmt) {
	cur := l.loadVar(n.Name, n.Pos())
	one := l.newReg()
	l.emit(&ir.Instr{Op: ir.OpConst, Dst: one, Val: value.Int(1), Pos: n.Pos()})
	dst := l.newReg()
	op := "+"
	if n.Op == token.DEC {
		op = "-"
	}
	l.emit(&ir.Instr{Op: ir.OpBin, Dst: dst, A: cur, B: one, BinOp: op, Pos: n.Pos()})
	l.storeVar(n.Name, dst, n.Pos())
}

func (l *fnLowerer) ifStmt(n *ast.IfStmt) {
	cond := l.expr(n.Cond)
	thenB := l.f.NewBlock()
	endB := l.f.NewBlock()
	elseB := endB
	if n.Else != nil {
		elseB = l.f.NewBlock()
	}
	l.emit(&ir.Instr{Op: ir.OpCondBr, A: cond, Targets: [2]int{thenB.ID, elseB.ID}, Pos: n.Pos()})
	l.setCur(thenB)
	l.stmt(n.Then)
	l.br(endB)
	if n.Else != nil {
		l.setCur(elseB)
		l.stmt(n.Else)
		l.br(endB)
	}
	l.setCur(endB)
}

// snapLens snapshots the instruction count of every existing block, so that
// diffSince can recover exactly the instructions emitted afterwards (new
// blocks and appended tails alike).
func (l *fnLowerer) snapLens() []int {
	lens := make([]int, len(l.f.Blocks))
	for i, b := range l.f.Blocks {
		lens[i] = len(b.Instrs)
	}
	return lens
}

func (l *fnLowerer) diffSince(lens []int) []*ir.Instr {
	var out []*ir.Instr
	for i, b := range l.f.Blocks {
		start := 0
		if i < len(lens) {
			start = lens[i]
		}
		out = append(out, b.Instrs[start:]...)
	}
	return out
}

// lowerLoopBody lowers the loop body one top-level statement at a time,
// recording each statement's instructions as a unit.
func (l *fnLowerer) lowerLoopBody(body ast.Stmt) [][]*ir.Instr {
	var units [][]*ir.Instr
	if blk, ok := body.(*ast.BlockStmt); ok && !blk.HasPragmas() {
		l.pushScope()
		for _, child := range blk.Stmts {
			snap := l.snapLens()
			l.stmt(child)
			if unit := l.diffSince(snap); len(unit) > 0 {
				units = append(units, unit)
			}
		}
		l.popScope()
		return units
	}
	snap := l.snapLens()
	l.stmt(body)
	if unit := l.diffSince(snap); len(unit) > 0 {
		units = append(units, unit)
	}
	return units
}

func (l *fnLowerer) whileStmt(n *ast.WhileStmt) {
	header := l.f.NewBlock()
	body := l.f.NewBlock()
	end := l.f.NewBlock()
	l.br(header)
	l.setCur(header)
	condSnap := l.snapLens()
	cond := l.expr(n.Cond)
	l.emit(&ir.Instr{Op: ir.OpCondBr, A: cond, Targets: [2]int{body.ID, end.ID}, Pos: n.Pos()})
	condInstrs := l.diffSince(condSnap)
	l.breakTargets = append(l.breakTargets, end)
	l.continueTargets = append(l.continueTargets, header)
	l.setCur(body)
	units := l.lowerLoopBody(n.Body)
	l.br(header)
	l.breakTargets = l.breakTargets[:len(l.breakTargets)-1]
	l.continueTargets = l.continueTargets[:len(l.continueTargets)-1]
	l.setCur(end)
	l.m.res.Loops = append(l.m.res.Loops, &LoopUnits{
		Func: l.f.Name, Header: header.ID, Units: units, Cond: condInstrs,
	})
}

func (l *fnLowerer) forStmt(n *ast.ForStmt) {
	l.pushScope()
	if n.Init != nil {
		l.stmt(n.Init)
	}
	header := l.f.NewBlock()
	body := l.f.NewBlock()
	post := l.f.NewBlock()
	end := l.f.NewBlock()
	l.br(header)
	l.setCur(header)
	condSnap := l.snapLens()
	if n.Cond != nil {
		cond := l.expr(n.Cond)
		l.emit(&ir.Instr{Op: ir.OpCondBr, A: cond, Targets: [2]int{body.ID, end.ID}, Pos: n.Pos()})
	} else {
		l.br(body)
	}
	condInstrs := l.diffSince(condSnap)
	l.breakTargets = append(l.breakTargets, end)
	l.continueTargets = append(l.continueTargets, post)
	l.setCur(body)
	units := l.lowerLoopBody(n.Body)
	l.br(post)
	l.setCur(post)
	postSnap := l.snapLens()
	if n.Post != nil {
		l.stmt(n.Post)
	}
	l.br(header)
	postInstrs := l.diffSince(postSnap)
	l.breakTargets = l.breakTargets[:len(l.breakTargets)-1]
	l.continueTargets = l.continueTargets[:len(l.continueTargets)-1]
	l.setCur(end)
	l.popScope()
	l.m.res.Loops = append(l.m.res.Loops, &LoopUnits{
		Func: l.f.Name, Header: header.ID, Units: units, Cond: condInstrs, Post: postInstrs,
	})
}

func (l *fnLowerer) returnStmt(n *ast.ReturnStmt) {
	if n.X == nil {
		l.emit(&ir.Instr{Op: ir.OpRet, Pos: n.Pos()})
	} else {
		r := l.expr(n.X)
		l.emit(&ir.Instr{Op: ir.OpRet, Args: []int{r}, Pos: n.Pos()})
	}
	l.setCur(l.f.NewBlock())
}

// blockStmt lowers a compound statement, extracting it into a region
// function when it carries COMMSET membership or a named-block declaration.
func (l *fnLowerer) blockStmt(n *ast.BlockStmt) {
	inst := l.m.info.BlockMembs[n]
	named := l.namedBlockName(n)
	if inst == nil && named == "" {
		l.pushScope()
		for _, s := range n.Stmts {
			l.stmt(s)
		}
		l.popScope()
		return
	}
	l.extractRegion(n, inst, named)
}

// namedBlockName returns the COMMSETNAMEDBLOCK name of n within the current
// source function, or "".
func (l *fnLowerer) namedBlockName(n *ast.BlockStmt) string {
	for _, nb := range l.m.info.NamedBlocks[l.srcFn.Name] {
		if nb.Block == n {
			return nb.Name
		}
	}
	return ""
}
