package lower

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/ir"
	"repro/internal/token"
	"repro/internal/types"
)

// freeVars is the result of analyzing a commutative block's variable usage
// against the enclosing function's scopes.
type freeVars struct {
	// ins: outer locals whose incoming value may be read (read before a
	// definite write). They become region parameters.
	ins []freeVar
	// extras: outer locals written (never reading the incoming value); the
	// region gets fresh local slots for them.
	extras []freeVar
	// outs: outer locals written inside the block, in first-write order;
	// their final values are returned to the caller.
	outs []freeVar
}

type freeVar struct {
	name string
	slot int // slot in the enclosing function
	typ  ast.Type
}

// analyzeFreeVars walks the block, resolving identifiers against the
// lowerer's current scopes. Variables declared within the block are
// internal; globals are accessed directly from within the region and do
// not appear. A read counts as needing the incoming value only when it is
// not preceded by a definite write (an unconditional assignment at the
// block's top level), which separates read-modify-write accumulators
// (live-in and live-out) from write-only outputs.
func (l *fnLowerer) analyzeFreeVars(block *ast.BlockStmt) freeVars {
	var fv freeVars
	type varInfo struct {
		fv       freeVar
		needsIn  bool
		written  bool
		definite bool // definitely assigned at this point of the walk
	}
	infos := map[string]*varInfo{}
	var order []string

	// internal tracks block-local declarations with proper nesting.
	var internal []map[string]bool
	isInternal := func(name string) bool {
		for i := len(internal) - 1; i >= 0; i-- {
			if internal[i][name] {
				return true
			}
		}
		return false
	}
	info := func(name string) *varInfo {
		if isInternal(name) {
			return nil
		}
		slot, global := l.lookup(name)
		if global {
			return nil
		}
		vi := infos[name]
		if vi == nil {
			vi = &varInfo{fv: freeVar{name: name, slot: slot, typ: l.f.Locals[slot].Type}}
			infos[name] = vi
			order = append(order, name)
		}
		return vi
	}
	touchRead := func(name string) {
		if vi := info(name); vi != nil && !vi.definite {
			vi.needsIn = true
		}
	}
	touchWrite := func(name string, definite bool) {
		if vi := info(name); vi != nil {
			vi.written = true
			if definite {
				vi.definite = true
			}
		}
	}

	var walkStmt func(s ast.Stmt, conditional bool)
	var walkExpr func(e ast.Expr)
	walkExpr = func(e ast.Expr) {
		ast.WalkExpr(e, func(x ast.Expr) {
			if id, ok := x.(*ast.Ident); ok {
				touchRead(id.Name)
			}
		})
	}
	walkStmt = func(s ast.Stmt, conditional bool) {
		switch n := s.(type) {
		case *ast.DeclStmt:
			if n.Decl.Init != nil {
				walkExpr(n.Decl.Init)
			}
			internal[len(internal)-1][n.Decl.Name] = true
		case *ast.AssignStmt:
			walkExpr(n.Rhs)
			if n.Op != token.ASSIGN {
				touchRead(n.Lhs) // compound assignment reads the target
			}
			touchWrite(n.Lhs, !conditional)
		case *ast.IncDecStmt:
			touchRead(n.Name)
			touchWrite(n.Name, !conditional)
		case *ast.ExprStmt:
			walkExpr(n.X)
		case *ast.IfStmt:
			walkExpr(n.Cond)
			walkStmt(n.Then, true)
			if n.Else != nil {
				walkStmt(n.Else, true)
			}
		case *ast.WhileStmt:
			walkExpr(n.Cond)
			walkStmt(n.Body, true)
		case *ast.ForStmt:
			internal = append(internal, map[string]bool{})
			if n.Init != nil {
				walkStmt(n.Init, true)
			}
			if n.Cond != nil {
				walkExpr(n.Cond)
			}
			if n.Post != nil {
				walkStmt(n.Post, true)
			}
			walkStmt(n.Body, true)
			internal = internal[:len(internal)-1]
		case *ast.ReturnStmt:
			if n.X != nil {
				walkExpr(n.X)
			}
		case *ast.BlockStmt:
			internal = append(internal, map[string]bool{})
			for _, st := range n.Stmts {
				walkStmt(st, conditional)
			}
			internal = internal[:len(internal)-1]
		}
	}
	internal = append(internal, map[string]bool{})
	for _, st := range block.Stmts {
		walkStmt(st, false)
	}

	for _, name := range order {
		vi := infos[name]
		if vi.needsIn {
			fv.ins = append(fv.ins, vi.fv)
		} else if vi.written {
			fv.extras = append(fv.extras, vi.fv)
		}
		if vi.written {
			fv.outs = append(fv.outs, vi.fv)
		}
	}
	return fv
}

// extractRegion canonicalizes a commutative compound statement into its own
// region function and emits the region call in the enclosing function,
// reproducing the Metadata Manager's first pass (Section 4.2). After this,
// every member of a COMMSET is a function.
func (l *fnLowerer) extractRegion(block *ast.BlockStmt, inst *types.Instance, named string) {
	fv := l.analyzeFreeVars(block)

	var name string
	if named != "" {
		name = l.srcFn.Name + "$" + named
	} else {
		l.m.regionID++
		name = fmt.Sprintf("%s$r%d", l.srcFn.Name, l.m.regionID)
	}

	rf := &ir.Func{
		Name:     name,
		Params:   len(fv.ins),
		IsRegion: true,
		SrcFunc:  l.srcFn.Name,
		Pos:      block.Pos(),
	}
	for _, in := range fv.ins {
		rf.AddLocal(in.name, in.typ)
	}
	for _, out := range fv.outs {
		rf.Results = append(rf.Results, out.typ)
	}

	// Lower the region body in its own lowerer. The region shares the
	// source function for named-block resolution of nested blocks.
	rl := &fnLowerer{m: l.m, f: rf, srcFn: l.srcFn}
	rl.scopes = []map[string]int{{}}
	for i, in := range fv.ins {
		rl.scopes[0][in.name] = i
	}
	// Write-only outer locals get fresh region slots (their incoming value
	// is never read, so they are not parameters).
	for _, ex := range fv.extras {
		rl.scopes[0][ex.name] = rf.AddLocal(ex.name, ex.typ)
	}
	rl.cur = rf.NewBlock()
	rl.pushScope()
	for _, s := range block.Stmts {
		rl.stmt(s)
	}
	rl.popScope()
	// Return the live-outs.
	var retRegs []int
	for _, out := range fv.outs {
		r := rl.newReg()
		slot := rl.scopes[0][out.name]
		rl.emit(&ir.Instr{Op: ir.OpLoadLocal, Dst: r, Slot: slot, Pos: block.Pos()})
		retRegs = append(retRegs, r)
	}
	rl.emit(&ir.Instr{Op: ir.OpRet, Args: retRegs, Pos: block.Pos()})
	l.m.res.Prog.AddFunc(rf)
	l.m.res.RegionFuncs[name] = block.Pos()

	// Emit the region call in the enclosing function.
	var membs []MembRef
	if inst != nil {
		membs = l.emitMembArgLoads(inst.Membs)
	}
	args := make([]int, len(fv.ins))
	for i, in := range fv.ins {
		r := l.newReg()
		l.emit(&ir.Instr{Op: ir.OpLoadLocal, Dst: r, Slot: in.slot, Pos: block.Pos()})
		args[i] = r
	}
	outSlots := make([]int, len(fv.outs))
	for i, out := range fv.outs {
		outSlots[i] = out.slot
	}
	call := l.emit(&ir.Instr{
		Op:       ir.OpCall,
		Dst:      -1,
		Name:     name,
		Args:     args,
		OutSlots: outSlots,
		Pos:      block.Pos(),
	})
	if len(membs) > 0 {
		l.m.res.CallMembs[call] = membs
	}
}
