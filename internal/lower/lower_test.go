package lower

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/ir"
	"repro/internal/parser"
	"repro/internal/source"
	"repro/internal/types"
	"repro/internal/vm/interp"
	"repro/internal/vm/value"
)

// testWorld provides print/arith builtins capturing output for assertions.
type testWorld struct {
	out strings.Builder
}

func (w *testWorld) sigs() map[string]*types.Sig {
	return map[string]*types.Sig{
		"print_int":   {Name: "print_int", Params: []ast.Type{ast.TInt}, Result: ast.TVoid},
		"print_str":   {Name: "print_str", Params: []ast.Type{ast.TString}, Result: ast.TVoid},
		"side_effect": {Name: "side_effect", Params: []ast.Type{ast.TInt}, Result: ast.TBool},
		"abs":         {Name: "abs", Params: []ast.Type{ast.TInt}, Result: ast.TInt, Pure: true},
		"work":        {Name: "work", Params: []ast.Type{ast.TInt}, Result: ast.TInt},
	}
}

func (w *testWorld) builtins() map[string]interp.BuiltinFn {
	return map[string]interp.BuiltinFn{
		"print_int": func(args []value.Value) (value.Value, int64, error) {
			fmt.Fprintf(&w.out, "%d\n", args[0].AsInt())
			return value.Void(), 1, nil
		},
		"print_str": func(args []value.Value) (value.Value, int64, error) {
			fmt.Fprintf(&w.out, "%s\n", args[0].AsString())
			return value.Void(), 1, nil
		},
		"side_effect": func(args []value.Value) (value.Value, int64, error) {
			fmt.Fprintf(&w.out, "se(%d)\n", args[0].AsInt())
			return value.Bool(args[0].AsInt() > 0), 1, nil
		},
		"abs": func(args []value.Value) (value.Value, int64, error) {
			v := args[0].AsInt()
			if v < 0 {
				v = -v
			}
			return value.Int(v), 1, nil
		},
		"work": func(args []value.Value) (value.Value, int64, error) {
			return value.Int(args[0].AsInt() * 2), 10, nil
		},
	}
}

// compile parses, checks, and lowers src; it fails the test on any error.
func compile(t *testing.T, src string) (*Result, *testWorld) {
	t.Helper()
	w := &testWorld{}
	var diags source.DiagList
	prog := parser.Parse(source.NewFile("t.mc", src), &diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s", diags.String())
	}
	info := types.Check(prog, w.sigs(), &diags)
	if diags.HasErrors() {
		t.Fatalf("check errors:\n%s", diags.String())
	}
	res := Lower(info, &diags)
	if diags.HasErrors() {
		t.Fatalf("lower errors:\n%s", diags.String())
	}
	return res, w
}

// run executes main and returns captured output.
func run(t *testing.T, src string) string {
	t.Helper()
	res, w := compile(t, src)
	env := interp.NewEnv(res.Prog, w.builtins())
	th := interp.NewThread(env)
	if err := th.RunMain(); err != nil {
		t.Fatalf("runtime error: %v", err)
	}
	return w.out.String()
}

func wantOutput(t *testing.T, src, want string) {
	t.Helper()
	got := run(t, src)
	if got != want {
		t.Errorf("output mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestRunArithmetic(t *testing.T) {
	wantOutput(t, `
void main() {
	print_int(1 + 2 * 3);
	print_int((1 + 2) * 3);
	print_int(10 / 3);
	print_int(10 % 3);
	print_int(-4);
	print_int(7 & 3);
	print_int(1 << 4);
	print_int(255 >> 4);
	print_int(5 ^ 1);
}`, "7\n9\n3\n1\n-4\n3\n16\n15\n4\n")
}

func TestRunControlFlow(t *testing.T) {
	wantOutput(t, `
void main() {
	int s = 0;
	for (int i = 0; i < 10; i++) {
		if (i == 3) { continue; }
		if (i == 7) { break; }
		s += i;
	}
	print_int(s);
	int n = 0;
	while (n < 5) { n++; }
	print_int(n);
}`, "18\n5\n")
}

func TestRunFunctionsAndRecursion(t *testing.T) {
	wantOutput(t, `
int fact(int n) {
	if (n <= 1) { return 1; }
	return n * fact(n - 1);
}
int fib(int n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
void main() {
	print_int(fact(10));
	print_int(fib(15));
}`, "3628800\n610\n")
}

func TestRunGlobals(t *testing.T) {
	wantOutput(t, `
int counter = 100;
void bump() { counter += 5; }
void main() {
	bump();
	bump();
	print_int(counter);
}`, "110\n")
}

func TestRunShortCircuit(t *testing.T) {
	// RHS must not evaluate when LHS decides.
	wantOutput(t, `
void main() {
	bool a = side_effect(1) || side_effect(2);
	bool b = side_effect(0) && side_effect(3);
	if (a && !b) { print_int(42); }
}`, "se(1)\nse(0)\n42\n")
}

func TestRunTernary(t *testing.T) {
	wantOutput(t, `
void main() {
	int x = 5;
	print_int(x > 3 ? 100 : 200);
	print_int(x < 3 ? 100 : 200);
	string s = x == 5 ? "five" : "other";
	print_str(s);
}`, "100\n200\nfive\n")
}

func TestRunStrings(t *testing.T) {
	wantOutput(t, `
void main() {
	string a = "foo" + "bar";
	print_str(a);
	if (a == "foobar") { print_int(1); }
	if ("abc" < "abd") { print_int(2); }
}`, "foobar\n1\n2\n")
}

func TestRunDivideByZero(t *testing.T) {
	res, w := compile(t, `
void main() {
	int z = 0;
	print_int(10 / z);
}`)
	env := interp.NewEnv(res.Prog, w.builtins())
	if err := interp.NewThread(env).RunMain(); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("err = %v, want division by zero", err)
	}
}

func TestRegionExtraction(t *testing.T) {
	res, w := compile(t, `
#pragma commset decl FSET
#pragma commset predicate FSET (i1)(i2) : i1 != i2
void main() {
	int total = 0;
	for (int i = 0; i < 4; i++) {
		#pragma commset member FSET(i), SELF
		{
			int doubled = work(i);
			total += doubled;
		}
	}
	print_int(total);
}`)
	// One region function extracted.
	var region *ir.Func
	for _, name := range res.Prog.Order {
		if f := res.Prog.Funcs[name]; f.IsRegion {
			if region != nil {
				t.Fatalf("multiple regions extracted")
			}
			region = f
		}
	}
	if region == nil {
		t.Fatal("no region function extracted")
	}
	if region.SrcFunc != "main" {
		t.Errorf("region.SrcFunc = %q", region.SrcFunc)
	}
	// The region reads i and total, writes total.
	if region.Params != 2 {
		t.Errorf("region params = %d, want 2 (i, total)", region.Params)
	}
	if len(region.Results) != 1 {
		t.Errorf("region results = %d, want 1 (total)", len(region.Results))
	}
	// Membership recorded on the region call with two sets.
	var membs []MembRef
	for _, ms := range res.CallMembs {
		membs = ms
	}
	if len(res.CallMembs) != 1 || len(membs) != 2 {
		t.Fatalf("CallMembs = %v", res.CallMembs)
	}
	if membs[0].Set.Name != "FSET" || len(membs[0].ArgRegs) != 1 {
		t.Errorf("memb 0 = %+v", membs[0])
	}
	if !membs[1].Set.Anon {
		t.Errorf("memb 1 = %+v", membs[1])
	}
	// Execution is unchanged by extraction: work doubles, sum of 0,2,4,6.
	env := interp.NewEnv(res.Prog, w.builtins())
	if err := interp.NewThread(env).RunMain(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := w.out.String(); got != "12\n" {
		t.Errorf("output = %q, want 12", got)
	}
}

func TestRegionNestedAndShadowing(t *testing.T) {
	wantOutput(t, `
void main() {
	int x = 10;
	int acc = 0;
	for (int i = 0; i < 3; i++) {
		#pragma commset member SELF
		{
			int x = i * 100;
			acc += x;
		}
	}
	print_int(acc);
	print_int(x);
}`, "300\n10\n")
}

func TestRegionWritesMultipleOuts(t *testing.T) {
	wantOutput(t, `
void main() {
	int a = 0;
	int b = 0;
	#pragma commset member SELF
	{
		a = 7;
		b = a + 1;
	}
	print_int(a);
	print_int(b);
}`, "7\n8\n")
}

func TestRegionLoopInside(t *testing.T) {
	wantOutput(t, `
void main() {
	int total = 0;
	#pragma commset member SELF
	{
		for (int j = 0; j < 5; j++) {
			if (j == 3) { break; }
			total += j;
		}
	}
	print_int(total);
}`, "3\n")
}

func TestFuncMembership(t *testing.T) {
	res, _ := compile(t, `
#pragma commset decl KSET
#pragma commset predicate KSET (k1)(k2) : k1 != k2
#pragma commset member KSET(key), SELF
void touch(int handle, int key) { work(handle + key); }
void main() { touch(1, 2); }`)
	refs := res.FuncMembs["touch"]
	if len(refs) != 2 {
		t.Fatalf("FuncMembs = %+v", refs)
	}
	if refs[0].Set.Name != "KSET" || len(refs[0].ParamIdx) != 1 || refs[0].ParamIdx[0] != 1 {
		t.Errorf("ref 0 = %+v (want param index 1 for key)", refs[0])
	}
	if !refs[1].Set.Anon {
		t.Errorf("ref 1 = %+v", refs[1])
	}
}

func TestNamedBlockInlining(t *testing.T) {
	res, w := compile(t, `
#pragma commset decl self SSET
#pragma commset predicate SSET (a)(b) : a != b
#pragma commset namedarg READB
int mdfile(int fp) {
	int sum = 0;
	#pragma commset namedblock READB
	{
		sum = work(fp);
	}
	return sum + 1;
}
void main() {
	int total = 0;
	for (int i = 0; i < 3; i++) {
		#pragma commset add mdfile.READB to SSET(i)
		total += mdfile(i);
	}
	// A second client without the option keeps sequential semantics.
	total += mdfile(10);
	print_int(total);
}`)
	// Region function for the named block exists.
	region := res.Prog.Funcs["mdfile$READB"]
	if region == nil || !region.IsRegion {
		t.Fatal("mdfile$READB region missing")
	}
	// Exactly one call instruction carries the SSET membership (the inlined
	// clone in main).
	found := 0
	for call, membs := range res.CallMembs {
		for _, mref := range membs {
			if mref.Set.Name == "SSET" {
				found++
				if call.Name != "mdfile$READB" {
					t.Errorf("membership attached to %s", call.Name)
				}
				if len(mref.ArgRegs) != 1 {
					t.Errorf("argregs = %v", mref.ArgRegs)
				}
			}
		}
	}
	if found != 1 {
		t.Fatalf("SSET memberships = %d, want 1", found)
	}
	// Semantics preserved: work doubles; mdfile(i) = 2i+1.
	// i=0,1,2 -> 1,3,5; mdfile(10)=21; total = 30.
	env := interp.NewEnv(res.Prog, w.builtins())
	if err := interp.NewThread(env).RunMain(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := w.out.String(); got != "30\n" {
		t.Errorf("output = %q, want 30", got)
	}
}

func TestInliningPreservesResultRegister(t *testing.T) {
	// The enabling call's result feeds further computation in the same
	// statement; inlining must deliver the value to the original register.
	wantOutput(t, `
#pragma commset namedarg B
int g(int x) {
	int r = 0;
	#pragma commset namedblock B
	{
		r = x * 10;
	}
	return r;
}
void main() {
	int t = 0;
	#pragma commset add g.B to SELF
	t = g(4) + 2;
	print_int(t);
}`, "42\n")
}

func TestRegisterBlockLocality(t *testing.T) {
	// Registers must be block-local: every register used by an instruction
	// is defined earlier in the same block.
	res, _ := compile(t, `
int helper(int v) { return v > 0 ? v : -v; }
void main() {
	int s = 0;
	for (int i = 0; i < 4; i++) {
		bool p = i % 2 == 0 && helper(i) > 0;
		if (p || i == 3) { s += i; }
		#pragma commset member SELF
		{ s += helper(i); }
	}
	print_int(s);
}`)
	for _, name := range res.Prog.Order {
		f := res.Prog.Funcs[name]
		for _, b := range f.Blocks {
			defined := map[int]bool{}
			for _, in := range b.Instrs {
				for _, r := range regUses(in) {
					if !defined[r] {
						t.Errorf("%s b%d %v: register r%d used before block-local def", name, b.ID, in, r)
					}
				}
				if in.Dst >= 0 {
					defined[in.Dst] = true
				}
			}
		}
	}
}

func regUses(in *ir.Instr) []int {
	var uses []int
	switch in.Op {
	case ir.OpStoreLocal, ir.OpStoreGlobal, ir.OpUn, ir.OpCondBr:
		uses = append(uses, in.A)
	case ir.OpBin:
		uses = append(uses, in.A, in.B)
	case ir.OpCall, ir.OpRet:
		uses = append(uses, in.Args...)
	}
	return uses
}

func TestLoweredProgramRenumbered(t *testing.T) {
	res, _ := compile(t, `
void main() {
	for (int i = 0; i < 3; i++) {
		#pragma commset member SELF
		{ work(i); }
	}
}`)
	for _, name := range res.Prog.Order {
		f := res.Prog.Funcs[name]
		want := 0
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.ID != want {
					t.Fatalf("%s: instruction IDs not dense (%d != %d)", name, in.ID, want)
				}
				want++
			}
		}
	}
}

func TestMultipleNamedBlocksPerFunction(t *testing.T) {
	// A function exporting two optional blocks; the client enables both.
	res, w := compile(t, `
#pragma commset decl self ASET
#pragma commset predicate ASET (a)(b) : a != b

#pragma commset namedarg RB, WB
int phase(int x) {
	int r = 0;
	#pragma commset namedblock RB
	{
		r = work(x);
	}
	int s = 0;
	#pragma commset namedblock WB
	{
		s = work(r);
	}
	return s;
}
void main() {
	int total = 0;
	for (int i = 0; i < 3; i++) {
		#pragma commset add phase.RB to ASET(i)
		#pragma commset add phase.WB to SELF
		total += phase(i);
	}
	print_int(total);
}`)
	// Both region functions exist and both inlined clones carry memberships.
	if res.Prog.Funcs["phase$RB"] == nil || res.Prog.Funcs["phase$WB"] == nil {
		t.Fatal("named block regions missing")
	}
	var sawRB, sawWB bool
	for call, membs := range res.CallMembs {
		switch call.Name {
		case "phase$RB":
			for _, m := range membs {
				if m.Set.Name == "ASET" {
					sawRB = true
				}
			}
		case "phase$WB":
			for _, m := range membs {
				if m.Set.Anon {
					sawWB = true
				}
			}
		}
	}
	if !sawRB || !sawWB {
		t.Errorf("memberships missing: RB=%v WB=%v", sawRB, sawWB)
	}
	// Semantics preserved: work doubles. phase(i) = 4i; total = 0+4+8 = 12.
	env := interp.NewEnv(res.Prog, w.builtins())
	if err := interp.NewThread(env).RunMain(); err != nil {
		t.Fatal(err)
	}
	if got := w.out.String(); got != "12\n" {
		t.Errorf("output = %q, want 12", got)
	}
}

func TestMemberPragmaAppendsAcrossLines(t *testing.T) {
	// Two member pragmas on the same block merge their set lists.
	res, _ := compile(t, `
#pragma commset decl A
#pragma commset decl B
void main() {
	for (int i = 0; i < 2; i++) {
		#pragma commset member A
		#pragma commset member B, SELF
		{
			work(i);
		}
	}
}`)
	for _, membs := range res.CallMembs {
		if len(membs) != 3 {
			t.Errorf("memberships = %d, want 3 (A, B, SELF)", len(membs))
		}
	}
	if len(res.CallMembs) != 1 {
		t.Errorf("one region call expected, got %d", len(res.CallMembs))
	}
}
