package transform_test

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/effects"
	"repro/internal/pipeline"
	"repro/internal/source"
	"repro/internal/transform"
	"repro/internal/types"
)

func sigs() map[string]*types.Sig {
	return map[string]*types.Sig{
		"fopen_i":   {Name: "fopen_i", Params: []ast.Type{ast.TInt}, Result: ast.TInt},
		"fread":     {Name: "fread", Params: []ast.Type{ast.TInt}, Result: ast.TInt},
		"fclose":    {Name: "fclose", Params: []ast.Type{ast.TInt}, Result: ast.TVoid},
		"print_int": {Name: "print_int", Params: []ast.Type{ast.TInt}, Result: ast.TVoid},
		"ll_next":   {Name: "ll_next", Params: []ast.Type{ast.TInt}, Result: ast.TInt},
		"heavy":     {Name: "heavy", Params: []ast.Type{ast.TInt}, Result: ast.TInt},
	}
}

func effTable() effects.Table {
	fs := effects.TagLoc("fs")
	console := effects.TagLoc("io.console")
	graph := effects.TagLoc("graph")
	return effects.Table{
		"fopen_i":   {Reads: []effects.Loc{fs}, Writes: []effects.Loc{fs}},
		"fread":     {Reads: []effects.Loc{fs}, Writes: []effects.Loc{fs}},
		"fclose":    {Reads: []effects.Loc{fs}, Writes: []effects.Loc{fs}},
		"print_int": {Writes: []effects.Loc{console}},
		"ll_next":   {Reads: []effects.Loc{graph}},
		"heavy":     {},
	}
}

func analyze(t *testing.T, src string) *pipeline.LoopAnalysis {
	t.Helper()
	c, err := pipeline.Compile(pipeline.Options{
		File:    source.NewFile("t.mc", src),
		Sigs:    sigs(),
		Effects: effTable(),
	})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	loops := c.Loops("main")
	if len(loops) == 0 {
		t.Fatal("no loop")
	}
	// Pick the outermost loop with the most instructions (the bench
	// harness uses the profiler for this; tests select structurally).
	var best *pipeline.LoopAnalysis
	for _, lu := range loops {
		la, err := c.AnalyzeLoop("main", lu.Header)
		if err != nil {
			t.Fatal(err)
		}
		if la.Loop.Depth != 1 {
			continue
		}
		if best == nil || len(la.PDG.Nodes) > len(best.PDG.Nodes) {
			best = la
		}
	}
	if best == nil {
		t.Fatal("no outermost loop")
	}
	return best
}

func kinds(scheds []*transform.Schedule) map[transform.Kind]*transform.Schedule {
	m := map[transform.Kind]*transform.Schedule{}
	for _, s := range scheds {
		if _, dup := m[s.Kind]; !dup {
			m[s.Kind] = s
		}
	}
	return m
}

// md5Full: file ops and print both fully commutative (DOALL case).
const md5Full = `
#pragma commset decl FSET
#pragma commset predicate FSET (i1)(i2) : i1 != i2
void main() {
	int total = 0;
	for (int i = 0; i < 8; i++) {
		#pragma commset member FSET(i), SELF
		{
			int fp = fopen_i(i);
			total += heavy(fread(fp));
			fclose(fp);
		}
		#pragma commset member FSET(i), SELF
		{
			print_int(total);
		}
	}
	print_int(total);
}
`

// md5Det: deterministic output — print keeps Group membership only.
const md5Det = `
#pragma commset decl FSET
#pragma commset predicate FSET (i1)(i2) : i1 != i2
void main() {
	int total = 0;
	for (int i = 0; i < 8; i++) {
		#pragma commset member FSET(i), SELF
		{
			int fp = fopen_i(i);
			total += heavy(fread(fp));
			fclose(fp);
		}
		#pragma commset member FSET(i)
		{
			print_int(total);
		}
	}
	print_int(total);
}
`

func TestMd5FullEnablesDOALL(t *testing.T) {
	la := analyze(t, md5Full)
	ks := kinds(transform.Schedules(la, nil, 8))
	if ks[transform.DOALL] == nil {
		g := transform.BuildUnitGraph(la, nil)
		t.Fatalf("DOALL not applicable; LC=%v IntoControl=%v", g.LC, g.IntoControl)
	}
	if ks[transform.Sequential] == nil {
		t.Error("sequential schedule always expected")
	}
	d := ks[transform.DOALL]
	if len(d.SharedSlots) == 0 {
		t.Error("expected shared slot for total")
	}
}

func TestMd5DetForcesPipeline(t *testing.T) {
	la := analyze(t, md5Det)
	ks := kinds(transform.Schedules(la, nil, 8))
	if ks[transform.DOALL] != nil {
		t.Error("DOALL must not apply with deterministic print (group-only membership)")
	}
	ps := ks[transform.PSDSWP]
	if ps == nil {
		t.Fatal("PS-DSWP expected")
	}
	// The parallel stage must contain the digest unit; the print unit must
	// sit in a sequential stage.
	var sawParallel, printSequential bool
	for _, st := range ps.Stages {
		if st.Parallel && len(st.Units) > 0 {
			sawParallel = true
		}
	}
	last := ps.Stages[len(ps.Stages)-1]
	if !last.Parallel && len(last.Units) > 0 {
		printSequential = true
	}
	if !sawParallel {
		t.Errorf("no parallel stage in %v", ps)
	}
	if !printSequential {
		t.Errorf("print not in trailing sequential stage: %v", ps.Stages)
	}
}

func TestPointerChasingDisablesDOALL(t *testing.T) {
	// em3d shape: the loop traverses a linked list; the traversal feeds the
	// loop condition, so DOALL is inapplicable, but PS-DSWP can replicate
	// the heavy unit.
	la := analyze(t, `
#pragma commset member SELF
int rng(int x) { return fread(x); }
void main() {
	int node = ll_next(0);
	while (node != 0) {
		int v = heavy(rng(node));
		print_int(v);
		node = ll_next(node);
	}
}`)
	ks := kinds(transform.Schedules(la, nil, 8))
	if ks[transform.DOALL] != nil {
		t.Error("DOALL must not apply to pointer-chasing loop")
	}
	if ks[transform.DSWP] == nil && ks[transform.PSDSWP] == nil {
		t.Error("expected a pipeline schedule")
	}
}

func TestUnannotatedLoopSequentialOnly(t *testing.T) {
	// Without annotations the I/O dependences keep the loop sequential:
	// DOALL inapplicable and any pipeline keeps the body in one stage.
	la := analyze(t, `
void main() {
	for (int i = 0; i < 8; i++) {
		int fp = fopen_i(i);
		print_int(fread(fp));
		fclose(fp);
	}
}`)
	ks := kinds(transform.Schedules(la, nil, 8))
	if ks[transform.DOALL] != nil {
		t.Error("DOALL must not apply without annotations")
	}
	if ps := ks[transform.PSDSWP]; ps != nil {
		for _, st := range ps.Stages {
			if st.Parallel && len(st.Units) > 0 {
				t.Errorf("parallel stage without annotations: %v", ps.Stages)
			}
		}
	}
}

func TestEstimatesOrdering(t *testing.T) {
	la := analyze(t, md5Full)
	scheds := transform.Schedules(la, nil, 8)
	var seq, doall *transform.Schedule
	for _, s := range scheds {
		switch s.Kind {
		case transform.Sequential:
			seq = s
		case transform.DOALL:
			doall = s
		}
	}
	if seq.Estimate != 1 {
		t.Errorf("sequential estimate = %v", seq.Estimate)
	}
	if doall == nil || doall.Estimate <= 1 {
		t.Errorf("DOALL estimate should exceed 1: %+v", doall)
	}
}

func TestScheduleStrings(t *testing.T) {
	la := analyze(t, md5Det)
	for _, s := range transform.Schedules(la, nil, 8) {
		if s.String() == "" {
			t.Errorf("empty schedule string for %v", s.Kind)
		}
	}
}

func TestDSWPStagesRespectTopoOrder(t *testing.T) {
	la := analyze(t, md5Det)
	g := transform.BuildUnitGraph(la, nil)
	s := transform.ApplyDSWP(g, 8)
	if s == nil {
		t.Fatal("DSWP expected")
	}
	// Unit stage assignment must not violate intra-iteration dependences:
	// if u1 -> u2 intra, stage(u1) <= stage(u2).
	stageOf := map[int]int{}
	for si, st := range s.Stages {
		for _, u := range st.Units {
			stageOf[u] = si
		}
	}
	for from, tos := range g.Intra {
		if from == transform.ControlUnit {
			continue
		}
		for to := range tos {
			if to == transform.ControlUnit {
				continue
			}
			if stageOf[from] > stageOf[to] {
				t.Errorf("intra dep %d->%d crosses backwards (stages %d->%d)",
					from, to, stageOf[from], stageOf[to])
			}
		}
	}
}
