package transform_test

import (
	"strings"
	"testing"

	"repro/internal/transform"
)

// irregular loops must fall back to a sequential-only schedule with a note
// explaining why (paper: control speculation is future work).
func TestIrregularLoopsSequentialOnly(t *testing.T) {
	cases := []struct {
		name string
		src  string
		why  string
	}{
		{"break", `
void main() {
	for (int i = 0; i < 100; i++) {
		int v = heavy(i);
		if (v > 50) { break; }
		print_int(v);
	}
}`, "breaks out"},
		{"continue", `
void main() {
	for (int i = 0; i < 100; i++) {
		if (i % 2 == 0) { continue; }
		print_int(heavy(i));
	}
}`, "continues"},
		{"return", `
void main() {
	for (int i = 0; i < 100; i++) {
		int v = heavy(i);
		if (v > 50) { return; }
		print_int(v);
	}
}`, "returns"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			la := analyze(t, c.src)
			scheds := transform.Schedules(la, nil, 8)
			if len(scheds) != 1 || scheds[0].Kind != transform.Sequential {
				t.Fatalf("schedules = %v, want sequential only", scheds)
			}
			if len(scheds[0].Notes) == 0 || !strings.Contains(scheds[0].Notes[0], c.why) {
				t.Errorf("notes = %v, want reason containing %q", scheds[0].Notes, c.why)
			}
			irregular, why := transform.IrregularIteration(la)
			if !irregular {
				t.Error("IrregularIteration should report true")
			}
			if !strings.Contains(why, c.why) {
				t.Errorf("why = %q", why)
			}
		})
	}
}

// break/continue fully inside an inner loop of the body are regular.
func TestInnerLoopBreakIsRegular(t *testing.T) {
	la := analyze(t, `
void main() {
	for (int i = 0; i < 10; i++) {
		int s = 0;
		for (int j = 0; j < 10; j++) {
			if (j == 5) { break; }
			s = s + j;
		}
		print_int(heavy(s));
	}
}`)
	if irregular, why := transform.IrregularIteration(la); irregular {
		t.Errorf("inner-loop break wrongly flagged: %s", why)
	}
	found := false
	for _, s := range transform.Schedules(la, nil, 8) {
		if s.Kind != transform.Sequential {
			found = true
		}
	}
	if !found {
		t.Error("regular loop should still get parallel schedules")
	}
}
