package transform

import "fmt"

// SchedKind selects how DOALL iterations are assigned to worker threads.
type SchedKind int

// Iteration schedules (cf. OpenMP's schedule clause).
const (
	// SchedStatic is the paper's fixed round-robin: worker w owns every
	// iteration i with i % threads == w.
	SchedStatic SchedKind = iota
	// SchedChunked assigns contiguous blocks of Chunk iterations
	// round-robin: worker w owns iteration i when (i/Chunk) % threads == w.
	SchedChunked
	// SchedGuided hands out shrinking chunks from a shared dispenser with
	// a work-stealing fallback; assignment is dynamic but deterministic
	// under the simulator's virtual-time order.
	SchedGuided
)

// String names the schedule kind.
func (k SchedKind) String() string {
	switch k {
	case SchedStatic:
		return "static"
	case SchedChunked:
		return "chunked"
	case SchedGuided:
		return "guided"
	}
	return "?"
}

// Tuning is the adaptive-scheduling knob set applied on top of a
// Schedule: the DOALL iteration schedule, the pipeline-queue batch size,
// and whether commutative updates are privatized into per-thread shadow
// state merged at loop exit. The zero value reproduces the paper's fixed
// policies (static round-robin, per-token queues, shared updates).
type Tuning struct {
	// Sched is the DOALL iteration schedule; ignored by pipeline kinds.
	Sched SchedKind
	// Chunk is the block size for SchedChunked (≤1 means 1) and the
	// initial chunk hint for SchedGuided (≤0 means auto).
	Chunk int
	// Batch is the pipeline-queue transfer batch size; values ≤1 keep
	// per-token Push/Pop.
	Batch int
	// Privatize executes commutative member updates against per-thread
	// shadow state and merges once per thread at loop exit under the
	// set's sync mode — legal because COMMSET declares the interleaving
	// of member calls irrelevant, so any merge order is a valid one.
	Privatize bool
	// Steal lets DOALL workers that finish their share steal un-started
	// iteration ranges from the most-behind peer (virtual-time-ordered,
	// deterministic; see exec's steal board), and lets service-mode
	// workers parked by the degradation ladder drain dispatch backlog.
	// Ignored by pipeline kinds.
	Steal bool
}

// IsZero reports whether the tuning leaves every fixed policy in place.
func (t Tuning) IsZero() bool {
	return t.Sched == SchedStatic && t.Batch <= 1 && !t.Privatize && !t.Steal
}

// String renders the non-default knobs, e.g. "chunked(4)+batch(8)+priv".
func (t Tuning) String() string {
	var parts []string
	switch t.Sched {
	case SchedChunked:
		parts = append(parts, fmt.Sprintf("chunked(%d)", t.ChunkSize()))
	case SchedGuided:
		parts = append(parts, "guided")
	}
	if t.Batch > 1 {
		parts = append(parts, fmt.Sprintf("batch(%d)", t.Batch))
	}
	if t.Privatize {
		parts = append(parts, "priv")
	}
	if t.Steal {
		parts = append(parts, "steal")
	}
	if len(parts) == 0 {
		return "static"
	}
	out := parts[0]
	for _, p := range parts[1:] {
		out += "+" + p
	}
	return out
}

// ChunkSize returns the effective chunk size for SchedChunked.
func (t Tuning) ChunkSize() int {
	if t.Chunk < 1 {
		return 1
	}
	return t.Chunk
}

// BatchSize returns the effective queue batch size (≥1).
func (t Tuning) BatchSize() int {
	if t.Batch < 1 {
		return 1
	}
	return t.Batch
}
