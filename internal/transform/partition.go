package transform

import (
	"sort"

	"repro/internal/pipeline"
)

// sccResult is the unit-level DAG of strongly connected components.
type sccResult struct {
	comps   [][]int     // unit lists (may include ControlUnit), topo order
	compOf  map[int]int // unit -> component index
	weights []int64
}

// unitSCCs computes SCCs over the unit graph. For component formation an
// implicit loop-carried dispatch edge control→u is added for every unit:
// the next iteration of any unit awaits the loop control's decision. Units
// with dependences into control therefore collapse into the control
// component (e.g. pointer-chasing traversals), which is exactly the
// paper's em3d behaviour: the traversal shares the sequential first stage.
func (g *UnitGraph) unitSCCs() *sccResult {
	nodes := []int{ControlUnit}
	for u := 0; u < g.NumUnits; u++ {
		nodes = append(nodes, u)
	}
	adj := map[int][]int{}
	addEdges := func(m map[int]map[int]bool) {
		for from, tos := range m {
			for to := range tos {
				adj[from] = append(adj[from], to)
			}
		}
	}
	addEdges(g.Intra)
	addEdges(g.LC)
	for u := 0; u < g.NumUnits; u++ {
		adj[ControlUnit] = append(adj[ControlUnit], u)
	}

	// Tarjan.
	index := map[int]int{}
	low := map[int]int{}
	onStack := map[int]bool{}
	var stack []int
	var comps [][]int
	counter := 0
	var strongconnect func(v int)
	strongconnect = func(v int) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Ints(comp)
			comps = append(comps, comp)
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	// Tarjan emits components in reverse topological order; re-order them
	// with Kahn's algorithm using the smallest unit index as tie-break, so
	// that units with no dependence between them keep their source order
	// across pipeline stages (sequential semantics for unordered pairs).
	comps = stableTopo(comps, adj)

	res := &sccResult{comps: comps, compOf: map[int]int{}}
	for ci, comp := range comps {
		for _, u := range comp {
			res.compOf[u] = ci
		}
	}
	res.weights = make([]int64, len(comps))
	for ci, comp := range comps {
		for _, u := range comp {
			if u == ControlUnit {
				res.weights[ci] += g.ControlWeight
			} else {
				res.weights[ci] += g.Weights[u]
			}
		}
	}
	// Stable order: the control component first among orderings that
	// respect the DAG (Tarjan already guarantees a topological order; the
	// control component is a source because of the dispatch edges).
	return res
}

// stableTopo orders components topologically, breaking ties by the
// smallest contained unit index (the control pseudo-unit −1 first).
func stableTopo(comps [][]int, adj map[int][]int) [][]int {
	n := len(comps)
	compOf := map[int]int{}
	for ci, comp := range comps {
		for _, u := range comp {
			compOf[u] = ci
		}
	}
	indeg := make([]int, n)
	succs := make([][]int, n)
	seen := map[[2]int]bool{}
	for from, tos := range adj {
		for _, to := range tos {
			cf, ct := compOf[from], compOf[to]
			if cf == ct || seen[[2]int{cf, ct}] {
				continue
			}
			seen[[2]int{cf, ct}] = true
			succs[cf] = append(succs[cf], ct)
			indeg[ct]++
		}
	}
	minUnit := make([]int, n)
	for ci, comp := range comps {
		minUnit[ci] = comp[0] // comps are sorted ascending
	}
	var order [][]int
	done := make([]bool, n)
	for len(order) < n {
		best := -1
		for ci := 0; ci < n; ci++ {
			if done[ci] || indeg[ci] > 0 {
				continue
			}
			if best == -1 || minUnit[ci] < minUnit[best] {
				best = ci
			}
		}
		if best == -1 {
			// Cycle across components cannot happen post-SCC; bail safely.
			for ci := 0; ci < n; ci++ {
				if !done[ci] {
					best = ci
					break
				}
			}
		}
		done[best] = true
		order = append(order, comps[best])
		for _, s := range succs[best] {
			indeg[s]--
		}
	}
	return order
}

// replicable reports whether a component can be replicated across threads:
// a component with no loop-carried dependence among its units ("no loop
// carried SCCs", Section 4.5). The control component is never replicable.
func (g *UnitGraph) replicable(comp []int) bool {
	for _, u := range comp {
		if u == ControlUnit {
			return false
		}
		for to := range g.LC[u] {
			if containsUnit(comp, to) || to == u {
				return false
			}
		}
	}
	return true
}

func containsUnit(comp []int, u int) bool {
	for _, x := range comp {
		if x == u {
			return true
		}
	}
	return false
}

// ApplyDOALL returns a DOALL schedule when every inter-iteration dependence
// has been removed or privatized, and nil otherwise (the paper's "tests the
// PDG for absence of inter-iteration dependencies").
func ApplyDOALL(g *UnitGraph) *Schedule {
	if g.HasLoopCarried() {
		return nil
	}
	var all []int
	for u := 0; u < g.NumUnits; u++ {
		all = append(all, u)
	}
	return &Schedule{
		Kind:        DOALL,
		Stages:      []Stage{{Units: all, Parallel: true, Weight: g.TotalWeight()}},
		SharedSlots: g.SharedSlots,
	}
}

// ApplyDSWP builds a pipeline of up to maxStages sequential stages by
// partitioning the component DAG in topological order, balancing stage
// weights using the profile (paper: "partition the DAG-SCC into a sequence
// of pipeline stages, using profile data to obtain a balanced pipeline").
// It returns nil when no pipeline of at least two stages exists.
func ApplyDSWP(g *UnitGraph, maxStages int) *Schedule {
	sccs := g.unitSCCs()
	if len(sccs.comps) < 2 || maxStages < 2 {
		return nil
	}
	nStages := maxStages
	if len(sccs.comps) < nStages {
		nStages = len(sccs.comps)
	}

	stages := balanceStages(sccs, nStages)
	if len(stages) < 2 {
		return nil
	}
	sched := &Schedule{Kind: DSWP, SharedSlots: g.SharedSlots}
	for _, comps := range stages {
		sched.Stages = append(sched.Stages, g.makeStage(sccs, comps, false))
	}
	return sched
}

// ApplyPSDSWP builds a pipeline whose heaviest run of replicable components
// becomes a parallel stage (paper: PS-DSWP "can replicate a stage with no
// loop carried SCCs to run in parallel on multiple threads"). It returns
// nil when no component is replicable.
func ApplyPSDSWP(g *UnitGraph) *Schedule {
	sccs := g.unitSCCs()
	// Find the maximal-weight consecutive run of replicable components.
	bestStart, bestEnd := -1, -1
	var bestW int64 = -1
	i := 0
	for i < len(sccs.comps) {
		if !g.replicable(sccs.comps[i]) {
			i++
			continue
		}
		j := i
		var w int64
		for j < len(sccs.comps) && g.replicable(sccs.comps[j]) {
			w += sccs.weights[j]
			j++
		}
		if w > bestW {
			bestW, bestStart, bestEnd = w, i, j
		}
		i = j
	}
	if bestStart < 0 {
		return nil
	}
	sched := &Schedule{Kind: PSDSWP, SharedSlots: g.SharedSlots}
	var pre, post []int
	for ci := 0; ci < bestStart; ci++ {
		pre = append(pre, ci)
	}
	for ci := bestEnd; ci < len(sccs.comps); ci++ {
		post = append(post, ci)
	}
	if len(pre) > 0 {
		sched.Stages = append(sched.Stages, g.makeStage(sccs, pre, false))
	}
	var par []int
	for ci := bestStart; ci < bestEnd; ci++ {
		par = append(par, ci)
	}
	sched.Stages = append(sched.Stages, g.makeStage(sccs, par, true))
	if len(post) > 0 {
		sched.Stages = append(sched.Stages, g.makeStage(sccs, post, false))
	}
	if len(sched.Stages) < 2 && !sched.Stages[0].Parallel {
		return nil
	}
	return sched
}

// makeStage assembles a stage from component indices, expanding to unit
// lists (dropping the control pseudo-unit, which the dispatcher executes).
func (g *UnitGraph) makeStage(sccs *sccResult, compIdx []int, parallel bool) Stage {
	st := Stage{Parallel: parallel}
	for _, ci := range compIdx {
		st.Weight += sccs.weights[ci]
		for _, u := range sccs.comps[ci] {
			if u != ControlUnit {
				st.Units = append(st.Units, u)
			}
		}
	}
	sort.Ints(st.Units)
	return st
}

// balanceStages splits components (in topo order) into nStages groups with
// near-equal weight.
func balanceStages(sccs *sccResult, nStages int) [][]int {
	var total int64
	for _, w := range sccs.weights {
		total += w
	}
	var stages [][]int
	var cur []int
	var curW, used int64
	remainingStages := nStages
	for ci := range sccs.comps {
		cur = append(cur, ci)
		curW += sccs.weights[ci]
		remaining := total - used - curW
		remainingComps := len(sccs.comps) - ci - 1
		target := (total - used) / int64(remainingStages)
		if (curW >= target && remainingStages > 1 && remainingComps >= remainingStages-1) ||
			remainingComps == remainingStages-1 && remainingStages > 1 {
			stages = append(stages, cur)
			used += curW
			cur = nil
			curW = 0
			remainingStages--
		}
		_ = remaining
	}
	if len(cur) > 0 {
		stages = append(stages, cur)
	}
	return stages
}

// SequentialSchedule is the identity plan.
func SequentialSchedule(g *UnitGraph) *Schedule {
	var all []int
	for u := 0; u < g.NumUnits; u++ {
		all = append(all, u)
	}
	return &Schedule{
		Kind:   Sequential,
		Stages: []Stage{{Units: all, Weight: g.TotalWeight()}},
	}
}

// Estimate fills in the compiler's speedup estimate for the schedule on the
// given thread count.
func Estimate(s *Schedule, g *UnitGraph, threads int) {
	total := float64(g.TotalWeight())
	switch s.Kind {
	case Sequential:
		s.Estimate = 1
	case DOALL:
		s.Estimate = float64(threads) * 0.97
	case DSWP:
		maxW := float64(0)
		for _, st := range s.Stages {
			if float64(st.Weight) > maxW {
				maxW = float64(st.Weight)
			}
		}
		if maxW > 0 {
			s.Estimate = total / maxW
		}
	case PSDSWP:
		seqStages := 0
		var maxSeq, parW float64
		for _, st := range s.Stages {
			if st.Parallel {
				parW += float64(st.Weight)
			} else {
				seqStages++
				if float64(st.Weight) > maxSeq {
					maxSeq = float64(st.Weight)
				}
			}
		}
		parThreads := threads - seqStages
		if parThreads < 1 {
			parThreads = 1
		}
		bound := maxSeq
		if perT := parW / float64(parThreads); perT > bound {
			bound = perT
		}
		if bound > 0 {
			s.Estimate = total / bound
		}
	}
}

// Schedules generates every applicable schedule for the analyzed loop:
// Sequential always, then DOALL, DSWP, and PS-DSWP when their applicability
// tests pass. weights maps instruction IDs to profiled cost (nil = uniform).
func Schedules(la *pipeline.LoopAnalysis, weights map[int]int64, threads int) []*Schedule {
	g := BuildUnitGraph(la, weights)
	out := []*Schedule{SequentialSchedule(g)}
	if irregular, why := IrregularIteration(la); irregular {
		out[0].Notes = append(out[0].Notes, "parallelization disabled: "+why)
		Estimate(out[0], g, threads)
		return out
	}
	if s := ApplyDOALL(g); s != nil {
		out = append(out, s)
	}
	if s := ApplyDSWP(g, threads); s != nil {
		out = append(out, s)
	}
	if s := ApplyPSDSWP(g); s != nil {
		out = append(out, s)
	}
	for _, s := range out {
		Estimate(s, g, threads)
	}
	return out
}
