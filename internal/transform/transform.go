// Package transform implements the parallelizing transforms of the COMMSET
// compiler (paper Section 4.5): DOALL, DSWP, and PS-DSWP.
//
// The transforms operate at the granularity of loop-body units — the
// top-level statements of the loop body recorded by the lowerer — with
// dependences aggregated from the instruction-level PDG after Algorithm 1
// has annotated commutativity:
//
//   - uco edges are treated as non-existent,
//   - ico edges are treated as intra-iteration edges,
//   - loop-carried flow on induction-variable slots is privatized,
//   - the loop-control machinery (header condition and post increment) is a
//     pseudo-unit owned by the iteration dispatcher; edges out of it are
//     satisfied by per-iteration tokens, edges into it serialize the loop.
//
// DOALL requires the absence of inter-iteration unit dependences. The DSWP
// family partitions the unit-level DAG of strongly connected components
// into pipeline stages balanced by profile weight; PS-DSWP replicates the
// heaviest run of stages whose SCCs carry no loop-carried dependences
// (paper: "can replicate a stage with no loop carried SCCs").
package transform

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
	"repro/internal/pdg"
	"repro/internal/pipeline"
)

// ControlUnit is the pseudo-unit index for loop-control instructions.
const ControlUnit = -1

// Kind identifies a schedule family.
type Kind int

// Schedule kinds.
const (
	Sequential Kind = iota
	DOALL
	DSWP
	PSDSWP
)

// String names the schedule kind as in the paper.
func (k Kind) String() string {
	switch k {
	case Sequential:
		return "Sequential"
	case DOALL:
		return "DOALL"
	case DSWP:
		return "DSWP"
	case PSDSWP:
		return "PS-DSWP"
	}
	return "?"
}

// Stage is one pipeline stage: the units it executes, in topological order,
// and whether it may be replicated across threads.
type Stage struct {
	Units    []int
	Parallel bool
	Weight   int64
}

// Schedule is one parallelization plan for a loop.
type Schedule struct {
	Kind   Kind
	Stages []Stage // DOALL: one parallel stage; Sequential: one stage

	// SharedSlots are frame slots promoted to shared storage: they are
	// read-modified-written by commutative member calls and must be
	// accessed atomically under the member's locks.
	SharedSlots []int

	// Estimate is the compiler's speedup estimate for the given thread
	// count (used to pick the default schedule, Section 4.5).
	Estimate float64

	// Notes record why schedules were or were not applicable.
	Notes []string
}

// String renders the schedule in the paper's notation, e.g.
// "DSWP [S, DOALL, S]".
func (s *Schedule) String() string {
	switch s.Kind {
	case Sequential:
		return "Sequential"
	case DOALL:
		return "DOALL"
	}
	parts := make([]string, len(s.Stages))
	for i, st := range s.Stages {
		if st.Parallel {
			parts[i] = "DOALL"
		} else {
			parts[i] = "S"
		}
	}
	return fmt.Sprintf("%s [%s]", s.Kind, strings.Join(parts, ", "))
}

// UnitGraph is the unit-level dependence graph derived from the PDG.
type UnitGraph struct {
	La *pipeline.LoopAnalysis

	NumUnits int
	// UnitOf maps instruction IDs to unit indices (ControlUnit for loop
	// control and unassigned instructions).
	UnitOf map[int]int

	// Intra[u] lists unit targets of intra-iteration dependences; LC[u]
	// likewise for loop-carried dependences (after relaxation). Self
	// loop-carried dependences appear as LC[u] containing u.
	Intra map[int]map[int]bool
	LC    map[int]map[int]bool

	// IntoControl reports units with dependences into the loop control
	// (e.g. pointer-chasing loop conditions).
	IntoControl map[int]bool

	// Weights holds per-unit profile weight (instruction cost sums).
	Weights []int64
	// ControlWeight is the loop-control pseudo-unit's weight.
	ControlWeight int64

	SharedSlots []int
}

// BuildUnitGraph aggregates the analyzed PDG to unit granularity. weights
// maps instruction IDs to profiled cost; nil charges 1 per instruction.
func BuildUnitGraph(la *pipeline.LoopAnalysis, weights map[int]int64) *UnitGraph {
	units := la.Units
	g := &UnitGraph{
		La:          la,
		NumUnits:    len(units.Units),
		UnitOf:      map[int]int{},
		Intra:       map[int]map[int]bool{},
		LC:          map[int]map[int]bool{},
		IntoControl: map[int]bool{},
	}
	for ui, instrs := range units.Units {
		for _, in := range instrs {
			g.UnitOf[in.ID] = ui
		}
	}
	for _, in := range units.Cond {
		g.UnitOf[in.ID] = ControlUnit
	}
	for _, in := range units.Post {
		g.UnitOf[in.ID] = ControlUnit
	}
	unitOf := func(id int) int {
		if u, ok := g.UnitOf[id]; ok {
			return u
		}
		return ControlUnit // loop glue (branches) belongs to control
	}

	// Weights.
	g.Weights = make([]int64, g.NumUnits)
	cost := func(id int) int64 {
		if weights == nil {
			return 1
		}
		return weights[id]
	}
	for _, id := range la.PDG.Nodes {
		u := unitOf(id)
		if u == ControlUnit {
			g.ControlWeight += cost(id)
		} else {
			g.Weights[u] += cost(id)
		}
	}

	addDep := func(m map[int]map[int]bool, from, to int) {
		if m[from] == nil {
			m[from] = map[int]bool{}
		}
		m[from][to] = true
	}

	// Shared slots: read-modify-written accumulators of commutative member
	// calls in the loop (write-only region outputs stay private). Computed
	// up front so the edge walk can distinguish private-slot dependences.
	memberCall := map[int]bool{}
	for _, id := range la.Dep.MemberCalls {
		memberCall[id] = true
	}
	sharedSet := map[int]bool{}
	for _, id := range la.PDG.Nodes {
		in := la.PDG.Instrs[id]
		if in.Op == ir.OpCall && memberCall[id] {
			for _, s := range la.PDG.RMWSlots(in) {
				sharedSet[s] = true
			}
		}
	}

	// flowOut records (slot, writerUnit) pairs where the written value
	// flows intra-iteration to another unit; anti edges into such writers
	// must be preserved (the snapshot cannot hold both pre- and post-write
	// values of the slot).
	flowOut := map[[2]int]bool{}
	for _, e := range la.PDG.Edges {
		slot, isSlot := e.LocalSlot()
		if !isSlot || e.LoopCarried || e.Kind != pdg.DepFlow || sharedSet[slot] {
			continue
		}
		u1, u2 := unitOfID(g, e.From), unitOfID(g, e.To)
		if u1 != u2 && u1 != ControlUnit {
			flowOut[[2]int{slot, u1}] = true
		}
	}

	for _, e := range la.PDG.Edges {
		if e.Comm == pdg.CommUCO {
			continue // treated as non-existent
		}
		if e.IVSlot {
			continue // privatized induction variable
		}
		u1 := unitOf(e.From)
		u2 := unitOf(e.To)
		lc := e.LoopCarried && e.Comm == pdg.CommNone // ico => intra
		if u1 == ControlUnit {
			// Satisfied by per-iteration tokens from the dispatcher.
			continue
		}
		if u2 == ControlUnit {
			// Only value flow into the loop control serializes the loop
			// (e.g. a pointer-chasing traversal feeding the condition).
			// Anti-dependences into control are satisfied by token copies:
			// each iteration receives its control values by value.
			if e.Kind == pdg.DepFlow || e.Kind == pdg.DepOutput {
				g.IntoControl[u1] = true
				addDep(g.LC, u1, ControlUnit)
			}
			continue
		}
		if e.Kind == pdg.DepControl {
			// Intra-iteration control between units follows unit order.
			continue
		}
		if u1 == u2 && !lc {
			continue
		}
		// Private-slot anti dependences between units are satisfied by the
		// executors' value-copy discipline: each stage receives an
		// iteration-start snapshot overlaid with flow-forwarded values, so
		// a later overwrite never clobbers an earlier stage's read. They
		// are dropped unless the written value also flows forward (both
		// pre- and post-write values would be needed). Output dependences
		// stay: they order writers so the last writer in source order is
		// also last in stage order, which the forwarding overlay and
		// live-out merge rely on.
		if slot, isSlot := e.LocalSlot(); isSlot && !sharedSet[slot] && u1 != u2 && e.Kind == pdg.DepAnti {
			if !flowOut[[2]int{slot, u2}] {
				continue
			}
		}
		if lc {
			addDep(g.LC, u1, u2)
			// A genuinely loop-carried scalar chain between distinct units
			// (an upward-exposed private-slot read of another unit's write,
			// e.g. em3d's list traversal) delivers previous-iteration
			// values. Only the dispatcher's iteration-start snapshot can
			// supply those, so the writing unit must join the control
			// stage: close a cycle with the control pseudo-unit.
			if slot, isSlot := e.LocalSlot(); isSlot && !sharedSet[slot] && u1 != u2 && e.Kind == pdg.DepFlow {
				g.IntoControl[u1] = true
				addDep(g.LC, u1, ControlUnit)
			}
		} else {
			addDep(g.Intra, u1, u2)
		}
	}

	for s := range sharedSet {
		g.SharedSlots = append(g.SharedSlots, s)
	}
	sort.Ints(g.SharedSlots)
	return g
}

// unitOfID maps an instruction ID to its unit (ControlUnit for loop glue).
func unitOfID(g *UnitGraph, id int) int {
	if u, ok := g.UnitOf[id]; ok {
		return u
	}
	return ControlUnit
}

// HasLoopCarried reports whether any inter-iteration unit dependence
// remains (including unit self-dependences and dependences into control).
func (g *UnitGraph) HasLoopCarried() bool {
	return len(g.LC) > 0
}

// TotalWeight is the per-iteration weight of the whole body plus control.
func (g *UnitGraph) TotalWeight() int64 {
	w := g.ControlWeight
	for _, uw := range g.Weights {
		w += uw
	}
	return w
}
