package transform

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/pipeline"
)

// IrregularIteration reports whether the loop body's units contain control
// flow that ends an iteration early or leaves the loop — a mid-body
// `return`, `break`, or `continue` at the top level of the hot loop. Such
// loops need control speculation to parallelize (paper Section 6, future
// work); the transforms fall back to a sequential schedule and report why.
func IrregularIteration(la *pipeline.LoopAnalysis) (bool, string) {
	// Block IDs of the post group (a branch into it from a unit is a
	// `continue`) and of the loop itself.
	postBlocks := map[int]bool{}
	for _, in := range la.Units.Post {
		if b, ok := la.PDG.BlockOf[in.ID]; ok {
			postBlocks[b] = true
		}
	}
	headerTargets := func(t int) bool {
		return t == la.Loop.Header || postBlocks[t]
	}

	// A mid-loop return takes precedence in the diagnostic: its then-arm is
	// not part of the natural loop, so the branch check below would
	// otherwise misreport it as a break.
	for ui, unit := range la.Units.Units {
		for _, in := range unit {
			if in.Op == ir.OpRet {
				return true, fmt.Sprintf("unit %d returns from inside the loop", ui)
			}
		}
	}
	for ui, unit := range la.Units.Units {
		// The final instruction group of a unit legitimately flows to the
		// next unit; only *internal* branches to post/header/outside count.
		for _, in := range unit {
			switch in.Op {
			case ir.OpBr, ir.OpCondBr:
				for _, t := range in.Targets {
					if !la.Loop.Contains(t) {
						return true, fmt.Sprintf("unit %d breaks out of the loop", ui)
					}
					if headerTargets(t) && !lastInstrOfUnit(unit, in) {
						return true, fmt.Sprintf("unit %d continues the loop early", ui)
					}
				}
			}
		}
	}
	return false, ""
}

// lastInstrOfUnit reports whether in is the unit's final instruction (the
// natural fallthrough of the last statement in the body).
func lastInstrOfUnit(unit []*ir.Instr, in *ir.Instr) bool {
	return len(unit) > 0 && unit[len(unit)-1] == in
}
