package types

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/pragma"
	"repro/internal/source"
	"repro/internal/token"
)

// Check runs semantic analysis over prog with the given builtin signatures,
// reporting problems into diags. The returned Info is usable (possibly
// partially) even when diagnostics contain errors.
func Check(prog *ast.Program, builtins map[string]*Sig, diags *source.DiagList) *Info {
	c := &checker{
		info: &Info{
			Prog:        prog,
			ExprTypes:   map[ast.Expr]ast.Type{},
			Funcs:       map[string]*Sig{},
			Builtins:    builtins,
			Sets:        map[string]*Set{},
			BlockMembs:  map[*ast.BlockStmt]*Instance{},
			FuncMembs:   map[string]*Instance{},
			NamedBlocks: map[string]map[string]*NamedBlockInfo{},
			GlobalTypes: map[string]ast.Type{},
		},
		diags: diags,
		file:  prog.File.Name,
	}
	if c.info.Builtins == nil {
		c.info.Builtins = map[string]*Sig{}
	}
	c.collectDecls()
	c.collectGlobalPragmas()
	for _, fn := range prog.Funcs {
		c.checkFunc(fn)
	}
	c.resolvePredicates()
	c.checkNamedBlockExports()
	return c.info
}

type checker struct {
	info  *Info
	diags *source.DiagList
	file  string

	// Current function state.
	fn     *ast.FuncDecl
	scopes []map[string]ast.Type
	loops  int
	anonID int
}

func (c *checker) errorf(pos source.Pos, format string, args ...any) {
	c.diags.Errorf(c.file, pos, format, args...)
}

// --- declarations ---

func (c *checker) collectDecls() {
	for _, g := range c.info.Prog.Globals {
		if _, dup := c.info.GlobalTypes[g.Name]; dup {
			c.errorf(g.Pos(), "duplicate global %s", g.Name)
			continue
		}
		c.info.GlobalTypes[g.Name] = g.Type
	}
	for _, fn := range c.info.Prog.Funcs {
		if _, dup := c.info.Funcs[fn.Name]; dup {
			c.errorf(fn.Pos(), "duplicate function %s", fn.Name)
			continue
		}
		if _, isBuiltin := c.info.Builtins[fn.Name]; isBuiltin {
			c.errorf(fn.Pos(), "function %s shadows a builtin", fn.Name)
			continue
		}
		sig := &Sig{Name: fn.Name, Result: fn.Result}
		for _, p := range fn.Params {
			sig.Params = append(sig.Params, p.Type)
		}
		c.info.Funcs[fn.Name] = sig
	}
	// Global initializers must be literal constants (no evaluation order
	// questions, like C static initializers).
	for _, g := range c.info.Prog.Globals {
		if g.Init == nil {
			continue
		}
		switch lit := g.Init.(type) {
		case *ast.IntLit, *ast.FloatLit, *ast.StringLit, *ast.BoolLit:
			t := c.literalType(lit)
			if t != g.Type {
				c.errorf(g.Pos(), "cannot initialize %s %s with %s literal", g.Type, g.Name, t)
			}
		default:
			c.errorf(g.Pos(), "global initializer for %s must be a literal constant", g.Name)
		}
	}
}

func (c *checker) literalType(e ast.Expr) ast.Type {
	switch e.(type) {
	case *ast.IntLit:
		return ast.TInt
	case *ast.FloatLit:
		return ast.TFloat
	case *ast.StringLit:
		return ast.TString
	case *ast.BoolLit:
		return ast.TBool
	}
	return ast.TInvalid
}

// --- global pragmas ---

func (c *checker) collectGlobalPragmas() {
	// First all declarations, so predicates/nosync can reference them
	// regardless of order.
	for _, pr := range c.info.Prog.Pragmas {
		if d, ok := pr.Dir.(*pragma.Decl); ok {
			if _, dup := c.info.Sets[d.Name]; dup {
				c.errorf(pr.Pos(), "duplicate commset declaration %s", d.Name)
				continue
			}
			c.info.Sets[d.Name] = &Set{Name: d.Name, SelfSet: d.Self, DeclPos: pr.Pos()}
		}
	}
	for _, pr := range c.info.Prog.Pragmas {
		switch d := pr.Dir.(type) {
		case *pragma.Decl:
			// handled above
		case *pragma.Predicate:
			set := c.info.Sets[d.Set]
			if set == nil {
				c.errorf(pr.Pos(), "predicate references undeclared commset %s", d.Set)
				continue
			}
			if set.Pred != nil {
				c.errorf(pr.Pos(), "commset %s already has a predicate", d.Set)
				continue
			}
			set.Pred = &Predicate{
				Params1:  d.Params1,
				Params2:  d.Params2,
				ExprText: d.ExprText,
			}
		case *pragma.NoSync:
			set := c.info.Sets[d.Set]
			if set == nil {
				c.errorf(pr.Pos(), "nosync references undeclared commset %s", d.Set)
				continue
			}
			set.NoSync = true
		}
	}
}

// --- function bodies ---

func (c *checker) checkFunc(fn *ast.FuncDecl) {
	c.fn = fn
	c.scopes = []map[string]ast.Type{{}}
	c.loops = 0
	for _, p := range fn.Params {
		if _, dup := c.scopes[0][p.Name]; dup {
			c.errorf(p.Pos(), "duplicate parameter %s", p.Name)
			continue
		}
		c.scopes[0][p.Name] = p.Type
	}
	c.checkFuncPragmas(fn)
	// The function body's top-level block shares the parameter scope.
	for _, s := range fn.Body.Stmts {
		c.checkStmt(s)
	}
	if fn.Body.HasPragmas() {
		c.errorf(fn.Body.Pos(), "commset pragmas may not annotate a function body block; annotate the function instead")
	}
}

// checkFuncPragmas handles COMMSET member and COMMSETNAMEDARG on a function
// declaration.
func (c *checker) checkFuncPragmas(fn *ast.FuncDecl) {
	for _, pr := range fn.Pragmas {
		switch d := pr.Dir.(type) {
		case *pragma.Member:
			membs := c.resolveMemberList(d.Sets, pr.Pos(), func(name string) (ast.Type, bool) {
				// Function-level predicate args bind to parameters.
				for _, p := range fn.Params {
					if p.Name == name {
						return p.Type, true
					}
				}
				return ast.TInvalid, false
			}, "parameter")
			if inst := c.info.FuncMembs[fn.Name]; inst != nil {
				inst.Membs = append(inst.Membs, membs...)
			} else {
				inst := &Instance{Fn: fn, Membs: membs}
				c.info.Instances = append(c.info.Instances, inst)
				c.info.FuncMembs[fn.Name] = inst
			}
		case *pragma.NamedArg:
			for _, n := range d.Names {
				c.exportNamedBlock(fn, n, pr.Pos())
			}
		case *pragma.NamedBlock:
			c.errorf(pr.Pos(), "namedblock must annotate a compound statement, not a function")
		case *pragma.NamedArgAdd:
			c.errorf(pr.Pos(), "commset add must annotate a statement containing the enabling call")
		default:
			c.errorf(pr.Pos(), "%s is a file-scope directive", pr.Dir.(pragma.Directive).Kind())
		}
	}
}

// exportNamedBlock records an export; the block may be declared later in the
// body, so existence is verified in checkNamedBlockExports.
func (c *checker) exportNamedBlock(fn *ast.FuncDecl, name string, pos source.Pos) {
	m := c.info.NamedBlocks[fn.Name]
	if m == nil {
		m = map[string]*NamedBlockInfo{}
		c.info.NamedBlocks[fn.Name] = m
	}
	nb := m[name]
	if nb == nil {
		nb = &NamedBlockInfo{Fn: fn, Name: name}
		m[name] = nb
	}
	if nb.Exported {
		c.errorf(pos, "named block %s exported twice by %s", name, fn.Name)
	}
	nb.Exported = true
}

// resolveMemberList validates a SetRef list against declared sets and binds
// argument names using lookup.
func (c *checker) resolveMemberList(refs []pragma.SetRef, pos source.Pos, lookup func(string) (ast.Type, bool), argKind string) []*Membership {
	var membs []*Membership
	seen := map[string]bool{}
	for _, ref := range refs {
		if !ref.Self {
			if seen[ref.Name] {
				c.errorf(pos, "duplicate membership in commset %s", ref.Name)
				continue
			}
			seen[ref.Name] = true
		}
		if ref.Self {
			c.anonID++
			set := &Set{
				Name:    fmt.Sprintf("SELF@%s#%d", c.fn.Name, c.anonID),
				SelfSet: true,
				Anon:    true,
				DeclPos: pos,
			}
			c.info.AnonSets = append(c.info.AnonSets, set)
			membs = append(membs, &Membership{Set: set, Pos: pos})
			continue
		}
		set := c.info.Sets[ref.Name]
		if set == nil {
			c.errorf(pos, "membership references undeclared commset %s", ref.Name)
			continue
		}
		if set.Pred == nil && len(ref.Args) > 0 {
			c.errorf(pos, "commset %s is unpredicated but membership supplies arguments", ref.Name)
			continue
		}
		if set.Pred != nil && len(ref.Args) != len(set.Pred.Params1) {
			c.errorf(pos, "commset %s predicate takes %d arguments, membership supplies %d",
				ref.Name, len(set.Pred.Params1), len(ref.Args))
			continue
		}
		for _, a := range ref.Args {
			if _, ok := lookup(a); !ok {
				c.errorf(pos, "predicate argument %s is not a %s in scope", a, argKind)
			}
		}
		membs = append(membs, &Membership{Set: set, Args: ref.Args, Pos: pos})
	}
	return membs
}

// --- statements ---

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]ast.Type{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(name string, t ast.Type, pos source.Pos) {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[name]; dup {
		c.errorf(pos, "duplicate declaration of %s in this scope", name)
		return
	}
	top[name] = t
}

func (c *checker) lookupVar(name string) (ast.Type, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if t, ok := c.scopes[i][name]; ok {
			return t, true
		}
	}
	if t, ok := c.info.GlobalTypes[name]; ok {
		return t, true
	}
	return ast.TInvalid, false
}

func (c *checker) checkStmt(s ast.Stmt) {
	c.checkStmtPragmas(s)
	switch n := s.(type) {
	case *ast.DeclStmt:
		d := n.Decl
		if d.Init != nil {
			t := c.checkExpr(d.Init)
			if t != ast.TInvalid && t != d.Type {
				c.errorf(d.Pos(), "cannot initialize %s %s with %s value", d.Type, d.Name, t)
			}
		}
		c.declare(d.Name, d.Type, d.Pos())
	case *ast.AssignStmt:
		lt, ok := c.lookupVar(n.Lhs)
		if !ok {
			c.errorf(n.Pos(), "assignment to undeclared variable %s", n.Lhs)
			lt = ast.TInvalid
		}
		rt := c.checkExpr(n.Rhs)
		if lt == ast.TInvalid || rt == ast.TInvalid {
			return
		}
		if n.Op == token.ASSIGN {
			if lt != rt {
				c.errorf(n.Pos(), "cannot assign %s value to %s %s", rt, lt, n.Lhs)
			}
			return
		}
		// Compound assignment behaves like the corresponding binary op.
		if lt != rt {
			c.errorf(n.Pos(), "operands of %s must have the same type (%s vs %s)", n.Op, lt, rt)
			return
		}
		switch n.Op {
		case token.REMASSIGN:
			if lt != ast.TInt {
				c.errorf(n.Pos(), "%%= requires int operands")
			}
		case token.ADDASSIGN:
			if lt != ast.TInt && lt != ast.TFloat && lt != ast.TString {
				c.errorf(n.Pos(), "+= requires int, float, or string operands")
			}
		default:
			if lt != ast.TInt && lt != ast.TFloat {
				c.errorf(n.Pos(), "%s requires numeric operands", n.Op)
			}
		}
	case *ast.IncDecStmt:
		t, ok := c.lookupVar(n.Name)
		if !ok {
			c.errorf(n.Pos(), "%s of undeclared variable %s", n.Op, n.Name)
			return
		}
		if t != ast.TInt {
			c.errorf(n.Pos(), "%s requires an int variable", n.Op)
		}
	case *ast.ExprStmt:
		c.checkExpr(n.X)
	case *ast.IfStmt:
		if t := c.checkExpr(n.Cond); t != ast.TBool && t != ast.TInvalid {
			c.errorf(n.Cond.Pos(), "if condition must be bool, got %s", t)
		}
		c.checkStmt(n.Then)
		if n.Else != nil {
			c.checkStmt(n.Else)
		}
	case *ast.WhileStmt:
		if t := c.checkExpr(n.Cond); t != ast.TBool && t != ast.TInvalid {
			c.errorf(n.Cond.Pos(), "while condition must be bool, got %s", t)
		}
		c.loops++
		c.checkStmt(n.Body)
		c.loops--
	case *ast.ForStmt:
		c.pushScope()
		if n.Init != nil {
			c.checkStmt(n.Init)
		}
		if n.Cond != nil {
			if t := c.checkExpr(n.Cond); t != ast.TBool && t != ast.TInvalid {
				c.errorf(n.Cond.Pos(), "for condition must be bool, got %s", t)
			}
		}
		if n.Post != nil {
			c.checkStmt(n.Post)
		}
		c.loops++
		c.checkStmt(n.Body)
		c.loops--
		c.popScope()
	case *ast.ReturnStmt:
		want := c.fn.Result
		if n.X == nil {
			if want != ast.TVoid {
				c.errorf(n.Pos(), "missing return value in %s (returns %s)", c.fn.Name, want)
			}
			return
		}
		got := c.checkExpr(n.X)
		if want == ast.TVoid {
			c.errorf(n.Pos(), "void function %s returns a value", c.fn.Name)
		} else if got != ast.TInvalid && got != want {
			c.errorf(n.Pos(), "function %s returns %s, got %s", c.fn.Name, want, got)
		}
	case *ast.BreakStmt:
		if c.loops == 0 {
			c.errorf(n.Pos(), "break outside a loop")
		}
	case *ast.ContinueStmt:
		if c.loops == 0 {
			c.errorf(n.Pos(), "continue outside a loop")
		}
	case *ast.BlockStmt:
		c.pushScope()
		for _, st := range n.Stmts {
			c.checkStmt(st)
		}
		c.popScope()
	case *ast.EmptyStmt:
	}
}

// checkStmtPragmas handles pragmas attached to statements: COMMSET member
// lists and COMMSETNAMEDBLOCK on compound statements, COMMSETNAMEDARGADD on
// statements containing an enabling call.
func (c *checker) checkStmtPragmas(s ast.Stmt) {
	host := s.Host()
	if len(host.Pragmas) == 0 {
		return
	}
	block, isBlock := s.(*ast.BlockStmt)
	for _, pr := range host.Pragmas {
		switch d := pr.Dir.(type) {
		case *pragma.Member:
			if !isBlock {
				c.errorf(pr.Pos(), "commset member must annotate a compound statement or function")
				continue
			}
			membs := c.resolveMemberList(d.Sets, pr.Pos(), c.lookupVar, "variable")
			if inst := c.info.BlockMembs[block]; inst != nil {
				inst.Membs = append(inst.Membs, membs...)
			} else {
				inst := &Instance{Fn: c.fn, Block: block, Membs: membs}
				c.info.Instances = append(c.info.Instances, inst)
				c.info.BlockMembs[block] = inst
			}
			c.checkCommutativeBlock(block)
		case *pragma.NamedBlock:
			if !isBlock {
				c.errorf(pr.Pos(), "namedblock must annotate a compound statement")
				continue
			}
			c.declareNamedBlock(block, d.Name, pr.Pos())
			c.checkCommutativeBlock(block)
		case *pragma.NamedArgAdd:
			c.checkAdd(s, d, pr.Pos())
		default:
			c.errorf(pr.Pos(), "%s directive cannot annotate a statement", pr.Dir.(pragma.Directive).Kind())
		}
	}
}

func (c *checker) declareNamedBlock(block *ast.BlockStmt, name string, pos source.Pos) {
	m := c.info.NamedBlocks[c.fn.Name]
	if m == nil {
		m = map[string]*NamedBlockInfo{}
		c.info.NamedBlocks[c.fn.Name] = m
	}
	nb := m[name]
	if nb == nil {
		nb = &NamedBlockInfo{Fn: c.fn, Name: name}
		m[name] = nb
	}
	if nb.Block != nil {
		c.errorf(pos, "duplicate named block %s in %s", name, c.fn.Name)
		return
	}
	nb.Block = block
}

func (c *checker) checkAdd(s ast.Stmt, d *pragma.NamedArgAdd, pos source.Pos) {
	// The annotated statement must contain exactly one call to d.Func.
	var calls []*ast.CallExpr
	ast.InspectExprs(s, func(e ast.Expr) {
		if call, ok := e.(*ast.CallExpr); ok && call.Fun == d.Func {
			calls = append(calls, call)
		}
	})
	if len(calls) != 1 {
		c.errorf(pos, "commset add requires exactly one call to %s in the annotated statement, found %d", d.Func, len(calls))
		return
	}
	if c.info.Funcs[d.Func] == nil {
		c.errorf(pos, "commset add references undefined function %s", d.Func)
		return
	}
	membs := c.resolveMemberList(d.Sets, pos, c.lookupVar, "variable")
	c.info.Adds = append(c.info.Adds, &Add{
		ClientFn: c.fn,
		Stmt:     s,
		Call:     calls[0],
		Func:     d.Func,
		Block:    d.Block,
		Membs:    membs,
		Pos:      pos,
	})
}

// checkCommutativeBlock enforces the paper's well-definedness condition (a):
// control flow within a commutative block must be local and structured —
// no return, and break/continue only when their parent loop lies within the
// block.
func (c *checker) checkCommutativeBlock(block *ast.BlockStmt) {
	var walk func(s ast.Stmt, loopDepth int)
	walk = func(s ast.Stmt, loopDepth int) {
		switch n := s.(type) {
		case *ast.ReturnStmt:
			c.errorf(n.Pos(), "return inside a commutative block is non-local control flow")
		case *ast.BreakStmt:
			if loopDepth == 0 {
				c.errorf(n.Pos(), "break inside a commutative block must target a loop within the block")
			}
		case *ast.ContinueStmt:
			if loopDepth == 0 {
				c.errorf(n.Pos(), "continue inside a commutative block must target a loop within the block")
			}
		case *ast.IfStmt:
			walk(n.Then, loopDepth)
			if n.Else != nil {
				walk(n.Else, loopDepth)
			}
		case *ast.WhileStmt:
			walk(n.Body, loopDepth+1)
		case *ast.ForStmt:
			walk(n.Body, loopDepth+1)
		case *ast.BlockStmt:
			for _, st := range n.Stmts {
				walk(st, loopDepth)
			}
		}
	}
	for _, st := range block.Stmts {
		walk(st, 0)
	}
}

// --- expressions ---

func (c *checker) setType(e ast.Expr, t ast.Type) ast.Type {
	c.info.ExprTypes[e] = t
	return t
}

func (c *checker) checkExpr(e ast.Expr) ast.Type {
	switch n := e.(type) {
	case *ast.IntLit:
		return c.setType(e, ast.TInt)
	case *ast.FloatLit:
		return c.setType(e, ast.TFloat)
	case *ast.StringLit:
		return c.setType(e, ast.TString)
	case *ast.BoolLit:
		return c.setType(e, ast.TBool)
	case *ast.Ident:
		t, ok := c.lookupVar(n.Name)
		if !ok {
			c.errorf(n.Pos(), "undeclared variable %s", n.Name)
			return c.setType(e, ast.TInvalid)
		}
		return c.setType(e, t)
	case *ast.CallExpr:
		return c.setType(e, c.checkCall(n))
	case *ast.UnaryExpr:
		xt := c.checkExpr(n.X)
		switch n.Op {
		case token.NOT:
			if xt != ast.TBool && xt != ast.TInvalid {
				c.errorf(n.Pos(), "! requires a bool operand, got %s", xt)
			}
			return c.setType(e, ast.TBool)
		case token.SUB:
			if xt != ast.TInt && xt != ast.TFloat && xt != ast.TInvalid {
				c.errorf(n.Pos(), "unary - requires a numeric operand, got %s", xt)
				xt = ast.TInvalid
			}
			return c.setType(e, xt)
		}
		c.errorf(n.Pos(), "unsupported unary operator %s", n.Op)
		return c.setType(e, ast.TInvalid)
	case *ast.BinaryExpr:
		return c.setType(e, c.checkBinary(n))
	case *ast.CondExpr:
		ct := c.checkExpr(n.Cond)
		if ct != ast.TBool && ct != ast.TInvalid {
			c.errorf(n.Cond.Pos(), "condition of ?: must be bool, got %s", ct)
		}
		tt := c.checkExpr(n.Then)
		et := c.checkExpr(n.Else)
		if tt != et && tt != ast.TInvalid && et != ast.TInvalid {
			c.errorf(n.Pos(), "branches of ?: have different types (%s vs %s)", tt, et)
			return c.setType(e, ast.TInvalid)
		}
		return c.setType(e, tt)
	}
	return ast.TInvalid
}

func (c *checker) checkCall(n *ast.CallExpr) ast.Type {
	sig := c.info.SigOf(n.Fun)
	if sig == nil {
		c.errorf(n.Pos(), "call to undefined function %s", n.Fun)
		for _, a := range n.Args {
			c.checkExpr(a)
		}
		return ast.TInvalid
	}
	if len(n.Args) != len(sig.Params) {
		c.errorf(n.Pos(), "%s takes %d arguments, got %d", n.Fun, len(sig.Params), len(n.Args))
		for _, a := range n.Args {
			c.checkExpr(a)
		}
		return sig.Result
	}
	for i, a := range n.Args {
		at := c.checkExpr(a)
		if at != ast.TInvalid && at != sig.Params[i] {
			c.errorf(a.Pos(), "argument %d of %s must be %s, got %s", i+1, n.Fun, sig.Params[i], at)
		}
	}
	return sig.Result
}

func (c *checker) checkBinary(n *ast.BinaryExpr) ast.Type {
	xt := c.checkExpr(n.X)
	yt := c.checkExpr(n.Y)
	if xt == ast.TInvalid || yt == ast.TInvalid {
		return ast.TInvalid
	}
	if xt != yt {
		c.errorf(n.OpPos, "operands of %s must have the same type (%s vs %s)", n.Op, xt, yt)
		return ast.TInvalid
	}
	switch n.Op {
	case token.ADD:
		if xt == ast.TInt || xt == ast.TFloat || xt == ast.TString {
			return xt
		}
	case token.SUB, token.MUL, token.QUO:
		if xt == ast.TInt || xt == ast.TFloat {
			return xt
		}
	case token.REM, token.BAND, token.BOR, token.BXOR, token.SHL, token.SHR:
		if xt == ast.TInt {
			return ast.TInt
		}
	case token.AND, token.OR:
		if xt == ast.TBool {
			return ast.TBool
		}
	case token.EQL, token.NEQ:
		return ast.TBool
	case token.LSS, token.LEQ, token.GTR, token.GEQ:
		if xt == ast.TInt || xt == ast.TFloat || xt == ast.TString {
			return ast.TBool
		}
	}
	c.errorf(n.OpPos, "operator %s is not defined for %s operands", n.Op, xt)
	return ast.TInvalid
}

// --- predicates ---

// resolvePredicates infers predicate parameter types from the membership
// instances of each predicated set, parses and type checks the predicate
// expression, and verifies purity (expression contains only parameters,
// literals, operators, and pure builtins), reproducing the paper's
// automatic type inference and purity inspection.
func (c *checker) resolvePredicates() {
	// Gather argument types per set from all instances.
	argTypes := map[*Set][]ast.Type{}
	argPos := map[*Set]source.Pos{}
	record := func(inst *Instance, m *Membership) {
		if m.Set.Pred == nil || len(m.Args) == 0 {
			return
		}
		ts := make([]ast.Type, len(m.Args))
		for i, a := range m.Args {
			ts[i] = c.instanceArgType(inst, a)
		}
		if prev, ok := argTypes[m.Set]; ok {
			for i := range ts {
				if i < len(prev) && prev[i] != ts[i] && prev[i] != ast.TInvalid && ts[i] != ast.TInvalid {
					c.errorf(m.Pos, "commset %s predicate argument %d has type %s here but %s at %s",
						m.Set.Name, i+1, ts[i], prev[i], argPos[m.Set])
				}
			}
		} else {
			argTypes[m.Set] = ts
			argPos[m.Set] = m.Pos
		}
	}
	for _, inst := range c.info.Instances {
		for _, m := range inst.Membs {
			record(inst, m)
		}
	}
	for _, add := range c.info.Adds {
		for _, m := range add.Membs {
			// Named-block args are client variables; types were resolved at
			// the add site during the walk; reuse the client fn lookup.
			if m.Set.Pred == nil || len(m.Args) == 0 {
				continue
			}
			ts := make([]ast.Type, len(m.Args))
			for i := range m.Args {
				ts[i] = ast.TInt // conservatively int; validated at lowering
			}
			if _, ok := argTypes[m.Set]; !ok {
				argTypes[m.Set] = ts
				argPos[m.Set] = m.Pos
			}
		}
	}

	for _, set := range c.info.AllSets() {
		if set.Pred == nil {
			continue
		}
		ts, ok := argTypes[set]
		if !ok {
			// A predicated set with no instances: default every param to int
			// so the expression can still be checked.
			ts = make([]ast.Type, len(set.Pred.Params1))
			for i := range ts {
				ts[i] = ast.TInt
			}
		}
		set.Pred.ParamTypes = ts
		c.checkPredicateExpr(set)
	}
}

// instanceArgType resolves the type of a membership argument at its
// instance: a function parameter for function-level members, otherwise a
// variable visible at the block (approximated by function scope re-walk;
// the membership resolution during the walk already validated visibility).
func (c *checker) instanceArgType(inst *Instance, name string) ast.Type {
	if inst.Block == nil {
		for _, p := range inst.Fn.Params {
			if p.Name == name {
				return p.Type
			}
		}
		return ast.TInvalid
	}
	// Search declarations lexically before the block in the function, plus
	// parameters and globals. This mirrors "live at the beginning of the
	// structured commutative code block".
	if t, ok := findVarTypeInFunc(inst.Fn, name); ok {
		return t
	}
	if t, ok := c.info.GlobalTypes[name]; ok {
		return t
	}
	return ast.TInvalid
}

func findVarTypeInFunc(fn *ast.FuncDecl, name string) (ast.Type, bool) {
	for _, p := range fn.Params {
		if p.Name == name {
			return p.Type, true
		}
	}
	var found ast.Type
	ok := false
	ast.Inspect(fn.Body, func(s ast.Stmt) bool {
		if d, isDecl := s.(*ast.DeclStmt); isDecl && d.Decl.Name == name && !ok {
			found, ok = d.Decl.Type, true
		}
		if f, isFor := s.(*ast.ForStmt); isFor {
			if d, isDecl := f.Init.(*ast.DeclStmt); isDecl && d.Decl.Name == name && !ok {
				found, ok = d.Decl.Type, true
			}
		}
		return true
	})
	return found, ok
}

func (c *checker) checkPredicateExpr(set *Set) {
	pred := set.Pred
	expr, err := parser.ParseExprString(pred.ExprText, c.diags)
	if err != nil {
		c.errorf(set.DeclPos, "commset %s predicate: %v", set.Name, err)
		return
	}
	pred.Expr = expr

	// Type check in a scope containing only the predicate parameters.
	scope := map[string]ast.Type{}
	for i, p := range pred.Params1 {
		scope[p] = pred.ParamTypes[i]
	}
	for i, p := range pred.Params2 {
		if _, dup := scope[p]; dup {
			c.errorf(set.DeclPos, "commset %s predicate parameter %s appears in both lists", set.Name, p)
		}
		scope[p] = pred.ParamTypes[i]
	}

	pc := &checker{info: c.info, diags: c.diags, file: c.file, fn: &ast.FuncDecl{Name: "<predicate " + set.Name + ">"}}
	pc.scopes = []map[string]ast.Type{scope}
	t := pc.checkExpr(expr)
	if t != ast.TBool && t != ast.TInvalid {
		c.errorf(set.DeclPos, "commset %s predicate must be bool, got %s", set.Name, t)
	}

	// Purity: calls are allowed only to pure builtins.
	ast.WalkExpr(expr, func(e ast.Expr) {
		if call, ok := e.(*ast.CallExpr); ok {
			b := c.info.Builtins[call.Fun]
			if b == nil || !b.Pure {
				c.errorf(set.DeclPos, "commset %s predicate calls %s, which is not a pure builtin", set.Name, call.Fun)
			}
		}
	})
}

// checkNamedBlockExports verifies that every export has a block, every
// add references an exported block, and warns about unexported blocks.
func (c *checker) checkNamedBlockExports() {
	for fname, blocks := range c.info.NamedBlocks {
		for bname, nb := range blocks {
			if nb.Exported && nb.Block == nil {
				c.errorf(nb.Fn.Pos(), "function %s exports named block %s, which is not declared in its body", fname, bname)
			}
		}
	}
	for _, add := range c.info.Adds {
		blocks := c.info.NamedBlocks[add.Func]
		nb := blocks[add.Block]
		if nb == nil || nb.Block == nil {
			c.errorf(add.Pos, "function %s has no named block %s", add.Func, add.Block)
			continue
		}
		if !nb.Exported {
			c.errorf(add.Pos, "named block %s is not exported by %s (missing commset namedarg)", add.Block, add.Func)
		}
	}
}
