package types

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/source"
)

// testBuiltins is a tiny substrate for checker tests.
func testBuiltins() map[string]*Sig {
	return map[string]*Sig{
		"print_int": {Name: "print_int", Params: []ast.Type{ast.TInt}, Result: ast.TVoid},
		"fopen":     {Name: "fopen", Params: []ast.Type{ast.TString}, Result: ast.TInt},
		"fread":     {Name: "fread", Params: []ast.Type{ast.TInt}, Result: ast.TInt},
		"fclose":    {Name: "fclose", Params: []ast.Type{ast.TInt}, Result: ast.TVoid},
		"abs":       {Name: "abs", Params: []ast.Type{ast.TInt}, Result: ast.TInt, Pure: true},
		"rand":      {Name: "rand", Params: nil, Result: ast.TInt},
	}
}

func checkSrc(t *testing.T, src string) (*Info, *source.DiagList) {
	t.Helper()
	var diags source.DiagList
	prog := parser.Parse(source.NewFile("t.mc", src), &diags)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s", diags.String())
	}
	info := Check(prog, testBuiltins(), &diags)
	return info, &diags
}

func checkOK(t *testing.T, src string) *Info {
	t.Helper()
	info, diags := checkSrc(t, src)
	if diags.HasErrors() {
		t.Fatalf("unexpected check errors:\n%s", diags.String())
	}
	return info
}

func checkErr(t *testing.T, src, wantSubstr string) {
	t.Helper()
	_, diags := checkSrc(t, src)
	if !diags.HasErrors() {
		t.Fatalf("expected error containing %q, got none", wantSubstr)
	}
	if !strings.Contains(diags.String(), wantSubstr) {
		t.Fatalf("expected error containing %q, got:\n%s", wantSubstr, diags.String())
	}
}

func TestCheckSimpleProgram(t *testing.T) {
	info := checkOK(t, `
int total = 0;
int add(int a, int b) { return a + b; }
void main() {
	int x = add(1, 2);
	print_int(x);
}`)
	if info.Funcs["add"] == nil || info.Funcs["main"] == nil {
		t.Fatal("missing function signatures")
	}
	if info.GlobalTypes["total"] != ast.TInt {
		t.Error("global type wrong")
	}
}

func TestCheckTypeErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`void f() { int x = true; }`, "cannot initialize"},
		{`void f() { undefined_var = 1; }`, "undeclared variable"},
		{`void f() { int x = 1.5 + 1; }`, "same type"},
		{`void f() { bogus(); }`, "undefined function"},
		{`void f() { fopen(42); }`, "must be string"},
		{`void f() { fopen("a", "b"); }`, "takes 1 arguments"},
		{`int f() { return; }`, "missing return value"},
		{`void f() { return 1; }`, "void function"},
		{`int f() { return true; }`, "returns int"},
		{`void f() { if (1) { } }`, "must be bool"},
		{`void f() { while (2.0) { } }`, "must be bool"},
		{`void f() { break; }`, "break outside"},
		{`void f() { continue; }`, "continue outside"},
		{`void f() { float x = 1.0; x %= 2.0; }`, "requires int"},
		{`void f() { bool b = true; b++; }`, "requires an int"},
		{`void f() { int x = 0; int x = 1; }`, "duplicate declaration"},
		{`int g; int g;`, "duplicate global"},
		{`int h() { return 0; } int h() { return 1; }`, "duplicate function"},
		{`int fopen(int x) { return x; }`, "shadows a builtin"},
		{`void f(int a, int a) { }`, "duplicate parameter"},
		{`int bad = rand();`, "must be a literal"},
		{`void f() { string s = "a"; s = s - "b"; }`, "not defined for string"},
		{`void f() { bool b = true < false; }`, "not defined for bool"},
	}
	for _, c := range cases {
		checkErr(t, c.src, c.want)
	}
}

func TestCheckStringOps(t *testing.T) {
	checkOK(t, `
void f() {
	string a = "x" + "y";
	bool b = a == "xy";
	bool c = a < "z";
}`)
}

func TestCheckTernary(t *testing.T) {
	checkOK(t, `int f(int a) { return a > 0 ? a : -a; }`)
	checkErr(t, `int f(int a) { return a > 0 ? a : 1.5; }`, "different types")
	checkErr(t, `int f(int a) { return a ? 1 : 2; }`, "must be bool")
}

func TestCheckScoping(t *testing.T) {
	// Block scoping: inner declarations don't leak.
	checkErr(t, `
void f() {
	{ int x = 1; }
	x = 2;
}`, "undeclared variable")
	// For-header variable scoped to the loop.
	checkErr(t, `
void f() {
	for (int i = 0; i < 3; i++) { }
	i = 5;
}`, "undeclared variable")
	// Shadowing in a nested block is allowed.
	checkOK(t, `
void f() {
	int x = 1;
	{ int y = x + 1; print_int(y); }
	print_int(x);
}`)
}

func TestCheckCommsetDecls(t *testing.T) {
	info := checkOK(t, `
#pragma commset decl FSET
#pragma commset decl self SSET
#pragma commset nosync FSET
void main() { }`)
	f := info.Sets["FSET"]
	if f == nil || f.SelfSet || !f.NoSync {
		t.Errorf("FSET = %+v", f)
	}
	s := info.Sets["SSET"]
	if s == nil || !s.SelfSet || s.NoSync {
		t.Errorf("SSET = %+v", s)
	}
}

func TestCheckCommsetDeclErrors(t *testing.T) {
	checkErr(t, "#pragma commset decl A\n#pragma commset decl A\nvoid f() {}", "duplicate commset")
	checkErr(t, "#pragma commset nosync NOPE\nvoid f() {}", "undeclared commset")
	checkErr(t, "#pragma commset predicate NOPE (a)(b) : a != b\nvoid f() {}", "undeclared commset")
	checkErr(t, `
#pragma commset decl A
#pragma commset predicate A (a)(b) : a != b
#pragma commset predicate A (a)(b) : a == b
void f() {}`, "already has a predicate")
}

func TestCheckMembershipOnBlock(t *testing.T) {
	info := checkOK(t, `
#pragma commset decl FSET
#pragma commset predicate FSET (i1)(i2) : i1 != i2
void main() {
	for (int i = 0; i < 10; i++) {
		#pragma commset member FSET(i), SELF
		{
			fclose(fopen("f"));
		}
	}
}`)
	if len(info.Instances) != 1 {
		t.Fatalf("instances = %d", len(info.Instances))
	}
	inst := info.Instances[0]
	if inst.Block == nil || len(inst.Membs) != 2 {
		t.Fatalf("instance = %+v", inst)
	}
	if inst.Membs[0].Set.Name != "FSET" || inst.Membs[0].Args[0] != "i" {
		t.Errorf("memb 0 = %+v", inst.Membs[0])
	}
	if !inst.Membs[1].Set.Anon || !inst.Membs[1].Set.SelfSet {
		t.Errorf("memb 1 = %+v", inst.Membs[1])
	}
	// Predicate param type inferred as int from the instance.
	if got := info.Sets["FSET"].Pred.ParamTypes[0]; got != ast.TInt {
		t.Errorf("inferred predicate param type = %v", got)
	}
}

func TestCheckMembershipOnFunction(t *testing.T) {
	info := checkOK(t, `
#pragma commset decl KSET
#pragma commset predicate KSET (k1)(k2) : k1 != k2
#pragma commset member KSET(key), SELF
void setbit(int key) { print_int(key); }
void main() { setbit(3); }`)
	inst := info.FuncMembs["setbit"]
	if inst == nil || inst.Block != nil {
		t.Fatalf("function membership missing")
	}
	if inst.Membs[0].Args[0] != "key" {
		t.Errorf("membs = %+v", inst.Membs[0])
	}
}

func TestCheckMembershipErrors(t *testing.T) {
	checkErr(t, `
void f() {
	#pragma commset member NOPE
	{ }
}`, "undeclared commset")
	checkErr(t, `
#pragma commset decl A
void f() {
	#pragma commset member A, A
	{ }
}`, "duplicate membership in commset A")
	checkErr(t, `
#pragma commset decl A
#pragma commset member A, A
void f(int i) { }`, "duplicate membership in commset A")
	checkErr(t, `
#pragma commset decl A
void f() {
	#pragma commset member A(x)
	{ }
}`, "unpredicated")
	checkErr(t, `
#pragma commset decl A
#pragma commset predicate A (p)(q) : p != q
void f() {
	#pragma commset member A
	{ }
}`, "membership supplies 0")
	checkErr(t, `
#pragma commset decl A
#pragma commset predicate A (p)(q) : p != q
void f() {
	#pragma commset member A(nope)
	{ }
}`, "not a variable in scope")
	checkErr(t, `
#pragma commset decl A
#pragma commset member A(zzz)
void f(int i) { }`, "unpredicated")
	checkErr(t, `
#pragma commset member SELF
void f() {
	int x = 0;
}
void g() {
	#pragma commset member SELF
	x = 1;
}`, "compound statement")
}

func TestCheckPredicateTyping(t *testing.T) {
	checkErr(t, `
#pragma commset decl A
#pragma commset predicate A (p)(q) : p + q
void f(int i) {
	#pragma commset member A(i)
	{ }
}`, "must be bool")
	checkErr(t, `
#pragma commset decl A
#pragma commset predicate A (p)(q) : p != r
void f(int i) {
	#pragma commset member A(i)
	{ }
}`, "undeclared variable r")
	// Pure builtin allowed; impure rejected.
	checkOK(t, `
#pragma commset decl A
#pragma commset predicate A (p)(q) : abs(p) != abs(q)
void f(int i) {
	#pragma commset member A(i)
	{ }
}`)
	checkErr(t, `
#pragma commset decl A
#pragma commset predicate A (p)(q) : rand() != p + q
void f(int i) {
	#pragma commset member A(i)
	{ }
}`, "not a pure builtin")
}

func TestCheckPredicateTypeMismatchAcrossInstances(t *testing.T) {
	checkErr(t, `
#pragma commset decl A
#pragma commset predicate A (p)(q) : p != q
void f(int i, float x) {
	#pragma commset member A(i)
	{ }
	#pragma commset member A(x)
	{ }
}`, "has type")
}

func TestCheckCommutativeBlockControlFlow(t *testing.T) {
	checkErr(t, `
void f() {
	#pragma commset member SELF
	{ return; }
}`, "non-local control flow")
	checkErr(t, `
void f() {
	for (int i = 0; i < 3; i++) {
		#pragma commset member SELF
		{ break; }
	}
}`, "must target a loop within the block")
	checkErr(t, `
void f() {
	while (true) {
		#pragma commset member SELF
		{ continue; }
	}
}`, "must target a loop within the block")
	// break inside a loop inside the block is fine.
	checkOK(t, `
void f() {
	#pragma commset member SELF
	{
		for (int i = 0; i < 3; i++) {
			if (i == 1) { break; }
		}
	}
}`)
}

func TestCheckNamedBlocks(t *testing.T) {
	info := checkOK(t, `
#pragma commset namedarg READB
int mdfile(int fp) {
	#pragma commset namedblock READB
	{
		fread(fp);
	}
	return 0;
}
void main() {
	for (int i = 0; i < 4; i++) {
		#pragma commset add mdfile.READB to SELF
		mdfile(i);
	}
}`)
	nb := info.NamedBlocks["mdfile"]["READB"]
	if nb == nil || nb.Block == nil || !nb.Exported {
		t.Fatalf("named block = %+v", nb)
	}
	if len(info.Adds) != 1 {
		t.Fatalf("adds = %d", len(info.Adds))
	}
	add := info.Adds[0]
	if add.Func != "mdfile" || add.Block != "READB" || add.Call == nil {
		t.Errorf("add = %+v", add)
	}
}

func TestCheckNamedBlockErrors(t *testing.T) {
	checkErr(t, `
#pragma commset namedarg NOPE
int f(int x) { return x; }
void main() { }`, "not declared in its body")
	checkErr(t, `
int f(int x) {
	#pragma commset namedblock B
	{ fread(x); }
	return 0;
}
void main() {
	#pragma commset add f.B to SELF
	f(1);
}`, "not exported")
	checkErr(t, `
void main() {
	#pragma commset add nosuch.B to SELF
	print_int(1);
}`, "exactly one call")
	checkErr(t, `
#pragma commset namedarg B
int f(int x) {
	#pragma commset namedblock B
	{ fread(x); }
	return 0;
}
void main() {
	#pragma commset add f.NOTB to SELF
	f(1);
}`, "no named block NOTB")
}

func TestCheckAllSetsDeterministic(t *testing.T) {
	info := checkOK(t, `
#pragma commset decl ZSET
#pragma commset decl ASET
void f() {
	#pragma commset member SELF
	{ }
	#pragma commset member SELF
	{ }
}`)
	sets := info.AllSets()
	if len(sets) != 4 {
		t.Fatalf("sets = %d", len(sets))
	}
	if sets[0].Name != "ASET" || sets[1].Name != "ZSET" {
		t.Errorf("named sets not sorted: %s, %s", sets[0].Name, sets[1].Name)
	}
	if !sets[2].Anon || !sets[3].Anon {
		t.Errorf("anonymous sets missing")
	}
	if sets[2].Name == sets[3].Name {
		t.Errorf("anonymous sets must have unique names")
	}
}
