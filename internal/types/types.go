// Package types performs semantic analysis of MiniC programs: name
// resolution, type checking, and validation of every COMMSET construct.
//
// Its output, Info, is the contract between the front end and the rest of
// the compiler: expression types, function signatures, the commutative-set
// registry (Self/Group, predicates, nosync), membership instances for code
// blocks and functions, named-block exports, and COMMSETNAMEDARGADD
// enablements. The checks reproduce the paper's front end (Section 4.1):
// directive syntax/type validation, predicate parameter binding and type
// inference, purity checking of predicate expressions, and the
// structured-control-flow requirement on commutative blocks.
package types

import (
	"repro/internal/ast"
	"repro/internal/source"
)

// Sig describes a callable's signature. User functions and builtins share
// this shape so the checker treats them uniformly.
type Sig struct {
	Name   string
	Params []ast.Type
	Result ast.Type
	// Pure marks builtins that may appear inside COMMSETPREDICATE
	// expressions (they must return the same value for the same arguments).
	Pure bool
}

// Set is one commutative set after semantic analysis.
type Set struct {
	Name string
	// SelfSet: members commute with dynamic instances of themselves
	// (singleton Self COMMSET). Otherwise the set is a Group COMMSET whose
	// distinct members commute pairwise but not with themselves.
	SelfSet bool
	// Anon marks anonymous sets created by the bare SELF keyword; each use
	// of SELF creates a fresh singleton set.
	Anon bool
	// NoSync suppresses compiler-inserted synchronization (COMMSETNOSYNC).
	NoSync bool
	// Pred is the commutativity predicate, nil for unpredicated sets.
	Pred    *Predicate
	DeclPos source.Pos
}

// Predicate is a parsed, type-checked COMMSETPREDICATE.
type Predicate struct {
	Params1    []string
	Params2    []string
	ParamTypes []ast.Type // types of Params1[i] / Params2[i], inferred from instances
	Expr       ast.Expr   // boolean expression over Params1 ∪ Params2
	ExprText   string
}

// Membership records one set reference of an instance declaration: the set
// plus the actual argument variable names supplying the predicate inputs.
type Membership struct {
	Set  *Set
	Args []string
	Pos  source.Pos
}

// Instance is one COMMSET instance declaration: a code block or a whole
// function enrolled in one or more sets.
type Instance struct {
	Fn    *ast.FuncDecl
	Block *ast.BlockStmt // nil for function-level membership
	Membs []*Membership
}

// NamedBlockInfo describes a COMMSETNAMEDBLOCK declaration inside a function.
type NamedBlockInfo struct {
	Fn       *ast.FuncDecl
	Name     string
	Block    *ast.BlockStmt
	Exported bool // listed in a COMMSETNAMEDARG on the function
}

// Add is one COMMSETNAMEDARGADD at a client call site: it enables the named
// block exported by Func for the call contained in Stmt.
type Add struct {
	ClientFn *ast.FuncDecl
	Stmt     ast.Stmt      // the statement carrying the pragma
	Call     *ast.CallExpr // the enabling call to Func within Stmt
	Func     string        // callee exporting the block
	Block    string        // named block being enabled
	Membs    []*Membership // sets the block joins, with client-state args
	Pos      source.Pos
}

// Info is the result of semantic analysis.
type Info struct {
	Prog *ast.Program

	// ExprTypes records the type of every expression.
	ExprTypes map[ast.Expr]ast.Type

	// Funcs maps user function names to their signatures; Builtins holds
	// the substrate signatures supplied by the caller.
	Funcs    map[string]*Sig
	Builtins map[string]*Sig

	// Sets maps set names to their definitions; AnonSets lists the
	// anonymous SELF singletons in creation order.
	Sets     map[string]*Set
	AnonSets []*Set

	// Instances lists every membership instance. BlockMembs and FuncMembs
	// index them by the annotated block / function.
	Instances  []*Instance
	BlockMembs map[*ast.BlockStmt]*Instance
	FuncMembs  map[string]*Instance

	// NamedBlocks indexes named blocks by function name then block name.
	NamedBlocks map[string]map[string]*NamedBlockInfo

	// Adds lists COMMSETNAMEDARGADD enablements in source order.
	Adds []*Add

	// GlobalTypes maps file-scope variable names to their types.
	GlobalTypes map[string]ast.Type
}

// AllSets returns every set (named and anonymous) in deterministic order:
// named sets sorted by name, then anonymous sets in creation order.
func (in *Info) AllSets() []*Set {
	names := make([]string, 0, len(in.Sets))
	for n := range in.Sets {
		names = append(names, n)
	}
	sortStrings(names)
	out := make([]*Set, 0, len(names)+len(in.AnonSets))
	for _, n := range names {
		out = append(out, in.Sets[n])
	}
	out = append(out, in.AnonSets...)
	return out
}

// SigOf returns the signature of a user function or builtin, or nil.
func (in *Info) SigOf(name string) *Sig {
	if s, ok := in.Funcs[name]; ok {
		return s
	}
	if s, ok := in.Builtins[name]; ok {
		return s
	}
	return nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
