// Package depend implements the COMMSET Dependence Analyzer — Algorithm 1
// of the paper. It walks the memory dependence edges of a loop's PDG and
// annotates them as unconditionally commutative (uco) or inter-iteration
// commutative (ico):
//
//   - Both endpoints must be commutative member instances (after the
//     Metadata Manager's canonicalization every member is a function call:
//     a region call carrying CallMembs, or a call to a function with
//     interface-level membership).
//   - For an unpredicated common set the edge is annotated uco directly.
//   - For a predicated set, the predicate's formal parameters are bound to
//     the symbolic values of the actual arguments at the two call sites and
//     the predicate body is symbolically interpreted. On a loop-carried
//     edge the induction-variable inequality is asserted; a provably-true
//     predicate yields uco when the destination dominates the source and
//     ico otherwise. On an intra-iteration edge a provably-true predicate
//     yields uco.
//
// Group sets relax only pairs of distinct static members; Self sets relax
// only instances of the same static member — matching Section 3.1's
// semantics ("each block does not commute with itself" for Group sets).
package depend

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/effects"
	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/pdg"
	"repro/internal/symexec"
	"repro/internal/types"
)

// membInst is one set membership of a call node.
type membInst struct {
	set      *types.Set
	memberID string // static member identity
	argRegs  []int  // predicate actual-argument registers at the call site
}

// Analyzer annotates PDG edges with commutativity properties.
type Analyzer struct {
	p   *pdg.PDG
	low *lower.Result

	// rep folds argument-feeding loads into their call node.
	rep map[int]int
	// membs caches memberships per call instruction ID.
	membs map[int][]membInst
	// storedSlots are local slots written anywhere in the loop.
	storedSlots map[int]bool
	// writtenGlobals are global locations written by the loop.
	writtenGlobals map[effects.Loc]bool
}

// Result reports the analyzer's derived structures for tools, tests, and
// the transforms: Rep folds argument-feeding loads into their member call
// node, and MemberCalls lists the loop's commutative member call
// instructions.
type Result struct {
	// Rep maps an instruction ID to its representative member call's ID
	// (identity for instructions that are not folded loads).
	Rep map[int]int
	// MemberCalls holds the IDs of member call instructions in the loop.
	MemberCalls []int
}

// Of maps an instruction ID through the representative relation.
func (r *Result) Of(id int) int {
	if rep, ok := r.Rep[id]; ok {
		return rep
	}
	return id
}

// Analyze runs Algorithm 1 over the PDG in place and reports the
// representative mapping used.
func Analyze(p *pdg.PDG, low *lower.Result, summary *effects.Summary) *Result {
	a := &Analyzer{
		p: p, low: low,
		rep:            map[int]int{},
		membs:          map[int][]membInst{},
		storedSlots:    map[int]bool{},
		writtenGlobals: map[effects.Loc]bool{},
	}
	a.collect(summary)
	a.annotate()
	res := &Result{Rep: a.rep}
	for _, id := range a.p.Nodes {
		if len(a.membs[id]) > 0 {
			res.MemberCalls = append(res.MemberCalls, id)
		}
	}
	return res
}

func (a *Analyzer) collect(summary *effects.Summary) {
	// Loop write sets for invariance checks.
	for _, id := range a.p.Nodes {
		in := a.p.Instrs[id]
		switch in.Op {
		case ir.OpStoreLocal:
			a.storedSlots[in.Slot] = true
		case ir.OpStoreGlobal:
			a.writtenGlobals[effects.GlobalLoc(in.Name)] = true
		case ir.OpCall:
			for _, s := range in.OutSlots {
				a.storedSlots[s] = true
			}
			_, w := summary.CallEffects(in.Name)
			for loc := range w {
				a.writtenGlobals[loc] = true
			}
		}
	}

	// Memberships and representative mapping.
	for _, id := range a.p.Nodes {
		in := a.p.Instrs[id]
		if in.Op != ir.OpCall {
			continue
		}
		var ms []membInst
		if refs, ok := a.low.CallMembs[in]; ok {
			for _, ref := range refs {
				ms = append(ms, membInst{
					set:      ref.Set,
					memberID: fmt.Sprintf("call:%d", in.ID),
					argRegs:  ref.ArgRegs,
				})
			}
		}
		if refs, ok := a.low.FuncMembs[in.Name]; ok {
			for _, ref := range refs {
				mi := membInst{set: ref.Set, memberID: "fn:" + in.Name}
				usable := true
				for _, pi := range ref.ParamIdx {
					if pi < 0 || pi >= len(in.Args) {
						usable = false
						break
					}
					mi.argRegs = append(mi.argRegs, in.Args[pi])
				}
				if usable {
					ms = append(ms, mi)
				}
			}
		}
		if len(ms) == 0 {
			continue
		}
		a.membs[in.ID] = ms
		// Fold the loads feeding this member call (arguments and predicate
		// arguments) into the call node: a dependence that reaches the load
		// is a dependence on the member's execution.
		fold := func(reg int) {
			if def := a.p.DefOfReg(in, reg); def != nil {
				if def.Op == ir.OpLoadLocal || def.Op == ir.OpLoadGlobal {
					a.rep[def.ID] = in.ID
				}
			}
		}
		for _, r := range in.Args {
			fold(r)
		}
		for _, m := range ms {
			for _, r := range m.argRegs {
				fold(r)
			}
		}
	}
}

func (a *Analyzer) repOf(id int) int {
	if r, ok := a.rep[id]; ok {
		return r
	}
	return id
}

func (a *Analyzer) annotate() {
	for _, e := range a.p.Edges {
		switch e.Kind {
		case pdg.DepFlow, pdg.DepAnti, pdg.DepOutput:
		default:
			continue
		}
		n1 := a.repOf(e.From)
		n2 := a.repOf(e.To)
		m1s := a.membs[n1]
		m2s := a.membs[n2]
		if len(m1s) == 0 || len(m2s) == 0 {
			continue // Lines 3-5: both endpoints must be member calls
		}
		best := pdg.CommNone
		seen := map[*types.Set]bool{}
		for _, m1 := range m1s {
			for _, m2 := range m2s {
				if m1.set != m2.set {
					continue // Line 7: intersection of CommSets
				}
				c := a.judge(e, m1, m2, n1, n2)
				if c > best {
					best = c
				}
				if c > pdg.CommNone && !seen[m1.set] {
					seen[m1.set] = true
					e.CommBy = append(e.CommBy, m1.set)
				}
			}
		}
		e.Comm = best
	}
}

// judge decides the annotation contributed by one common set.
func (a *Analyzer) judge(e *pdg.Edge, m1, m2 membInst, n1, n2 int) pdg.Comm {
	set := m1.set
	if set.SelfSet {
		// Self semantics: instances of the same static member commute.
		if m1.memberID != m2.memberID {
			return pdg.CommNone
		}
	} else {
		// Group semantics: distinct static members commute pairwise; a
		// member does not commute with itself.
		if m1.memberID == m2.memberID {
			return pdg.CommNone
		}
	}

	if set.Pred == nil {
		return pdg.CommUCO // Lines 9-11
	}

	env := symexec.Env{}
	for i, p := range set.Pred.Params1 {
		if i < len(m1.argRegs) {
			env[p] = a.symOfReg(a.p.Instrs[n1], m1.argRegs[i], 1)
		} else {
			env[p] = symexec.UnknownVal()
		}
	}
	for i, p := range set.Pred.Params2 {
		if i < len(m2.argRegs) {
			env[p] = a.symOfReg(a.p.Instrs[n2], m2.argRegs[i], 2)
		} else {
			env[p] = symexec.UnknownVal()
		}
	}

	if e.LoopCarried {
		// Lines 21-30: assert induction variable inequality.
		if symexec.EvalPredicate(set.Pred.Expr, env, symexec.DifferentIteration) != symexec.True {
			return pdg.CommNone
		}
		// uco when the destination member dominates the source member
		// (Lines 24-26), at instruction granularity.
		if a.dominates(n2, n1) {
			return pdg.CommUCO
		}
		return pdg.CommICO
	}
	// Lines 31-35: intra-iteration edge.
	if symexec.EvalPredicate(set.Pred.Expr, env, symexec.SameIteration) == symexec.True {
		return pdg.CommUCO
	}
	return pdg.CommNone
}

// dominates reports whether instruction x dominates instruction y: within
// one block by program order, across blocks by block dominance.
func (a *Analyzer) dominates(x, y int) bool {
	bx, by := a.p.BlockOf[x], a.p.BlockOf[y]
	if bx == by {
		return x <= y
	}
	return a.p.Dom.Dominates(bx, by)
}

// symOfReg derives the symbolic value of register r at member call `call`
// for instance inst.
func (a *Analyzer) symOfReg(call *ir.Instr, r int, inst int) symexec.Val {
	return a.symOfDef(a.p.DefOfReg(call, r), inst, 0)
}

func (a *Analyzer) symOfDef(def *ir.Instr, inst, depth int) symexec.Val {
	if def == nil || depth > 8 {
		return symexec.UnknownVal()
	}
	switch def.Op {
	case ir.OpConst:
		v := def.Val
		if v.T == ast.TInt {
			return symexec.Affine(0, v.I, inst)
		}
		return symexec.Const(v)
	case ir.OpLoadLocal:
		if a.p.IVSlots[def.Slot] {
			return symexec.Affine(1, 0, inst)
		}
		if !a.storedSlots[def.Slot] {
			return symexec.Invariant(fmt.Sprintf("s:%d", def.Slot))
		}
		return symexec.UnknownVal()
	case ir.OpLoadGlobal:
		if !a.writtenGlobals[effects.GlobalLoc(def.Name)] {
			return symexec.Invariant("g:" + def.Name)
		}
		return symexec.UnknownVal()
	case ir.OpBin:
		x := a.symOfDef(a.p.DefOfReg(def, def.A), inst, depth+1)
		y := a.symOfDef(a.p.DefOfReg(def, def.B), inst, depth+1)
		return affineArith(def.BinOp, x, y, inst)
	case ir.OpUn:
		if def.BinOp == "-" {
			x := a.symOfDef(a.p.DefOfReg(def, def.A), inst, depth+1)
			if x.Kind == symexec.KAffine {
				return symexec.Affine(-x.A, -x.B, inst)
			}
		}
	}
	return symexec.UnknownVal()
}

func affineArith(op string, x, y symexec.Val, inst int) symexec.Val {
	if x.Kind != symexec.KAffine || y.Kind != symexec.KAffine {
		return symexec.UnknownVal()
	}
	switch op {
	case "+":
		return symexec.Affine(x.A+y.A, x.B+y.B, inst)
	case "-":
		return symexec.Affine(x.A-y.A, x.B-y.B, inst)
	case "*":
		if x.A == 0 {
			return symexec.Affine(x.B*y.A, x.B*y.B, inst)
		}
		if y.A == 0 {
			return symexec.Affine(y.B*x.A, y.B*x.B, inst)
		}
	}
	return symexec.UnknownVal()
}
