package depend_test

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/effects"
	"repro/internal/ir"
	"repro/internal/pdg"
	"repro/internal/pipeline"
	"repro/internal/source"
	"repro/internal/types"
)

func sigs() map[string]*types.Sig {
	return map[string]*types.Sig{
		"fopen_i":   {Name: "fopen_i", Params: []ast.Type{ast.TInt}, Result: ast.TInt},
		"fread":     {Name: "fread", Params: []ast.Type{ast.TInt}, Result: ast.TInt},
		"fclose":    {Name: "fclose", Params: []ast.Type{ast.TInt}, Result: ast.TVoid},
		"print_int": {Name: "print_int", Params: []ast.Type{ast.TInt}, Result: ast.TVoid},
		"consume":   {Name: "consume", Params: []ast.Type{ast.TInt}, Result: ast.TVoid},
	}
}

func effTable() effects.Table {
	fs := effects.TagLoc("fs")
	console := effects.TagLoc("io.console")
	sink := effects.TagLoc("sink")
	return effects.Table{
		"fopen_i":   {Reads: []effects.Loc{fs}, Writes: []effects.Loc{fs}},
		"fread":     {Reads: []effects.Loc{fs}, Writes: []effects.Loc{fs}},
		"fclose":    {Reads: []effects.Loc{fs}, Writes: []effects.Loc{fs}},
		"print_int": {Writes: []effects.Loc{console}},
		"consume":   {Writes: []effects.Loc{sink}},
	}
}

// analyze compiles src and returns the annotated PDG of main's first loop.
func analyze(t *testing.T, src string) *pipeline.LoopAnalysis {
	t.Helper()
	c, err := pipeline.Compile(pipeline.Options{
		File:    source.NewFile("t.mc", src),
		Sigs:    sigs(),
		Effects: effTable(),
	})
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, c.Diags.String())
	}
	loops := c.Loops("main")
	if len(loops) == 0 {
		t.Fatal("no loop in main")
	}
	la, err := c.AnalyzeLoop("main", loops[0].Header)
	if err != nil {
		t.Fatalf("AnalyzeLoop: %v", err)
	}
	return la
}

// callNode finds the single call instruction to the named function within
// the loop.
func callNode(t *testing.T, la *pipeline.LoopAnalysis, name string) int {
	t.Helper()
	id := -1
	for _, n := range la.PDG.Nodes {
		in := la.PDG.Instrs[n]
		if in.Op == ir.OpCall && in.Name == name {
			if id != -1 {
				t.Fatalf("multiple calls to %s in loop", name)
			}
			id = n
		}
	}
	if id == -1 {
		t.Fatalf("no call to %s in loop", name)
	}
	return id
}

// edgesBetween returns the edges from a to b, with endpoints mapped through
// the representative relation (argument loads fold into their member call).
func edgesBetween(la *pipeline.LoopAnalysis, a, b int) []*pdg.Edge {
	var out []*pdg.Edge
	for _, e := range la.PDG.Edges {
		if la.Dep.Of(e.From) == a && la.Dep.Of(e.To) == b {
			out = append(out, e)
		}
	}
	return out
}

const md5Shape = `
#pragma commset decl FSET
#pragma commset predicate FSET (i1)(i2) : i1 != i2
void main() {
	int total = 0;
	for (int i = 0; i < 8; i++) {
		#pragma commset member FSET(i), SELF
		{
			int fp = fopen_i(i);
			total += fread(fp);
			fclose(fp);
		}
		#pragma commset member FSET(i)
		{
			print_int(total);
		}
	}
	consume(total);
}
`

func TestMd5ShapeSelfBlockRelaxed(t *testing.T) {
	la := analyze(t, md5Shape)
	fileCall := callNode(t, la, "main$r1")

	// The file block's loop-carried self-dependences (t:fs and slot total)
	// must be relaxed to uco via its anonymous SELF set.
	for _, e := range edgesBetween(la, fileCall, fileCall) {
		if !e.LoopCarried || e.Kind == pdg.DepControl {
			continue
		}
		if e.Comm != pdg.CommUCO {
			t.Errorf("file-block self edge not relaxed: %+v", e)
		}
	}
}

func TestMd5ShapePrintRemainsSequential(t *testing.T) {
	la := analyze(t, md5Shape)
	printCall := callNode(t, la, "main$r2")

	// The print block has only Group membership (no SELF): its loop-carried
	// self-dependence on the console must remain.
	found := false
	for _, e := range edgesBetween(la, printCall, printCall) {
		if e.LoopCarried && e.Kind != pdg.DepControl && e.Comm == pdg.CommNone {
			found = true
		}
	}
	if !found {
		t.Error("print-block self dependence was relaxed; Group sets must not self-commute")
	}
}

func TestMd5ShapeCrossBlockRelaxed(t *testing.T) {
	la := analyze(t, md5Shape)
	fileCall := callNode(t, la, "main$r1")
	printCall := callNode(t, la, "main$r2")

	// Loop-carried dependence file-block -> print-block (slot total) is
	// between distinct members of predicated FSET: provable on separate
	// iterations. print does not dominate the file block, so ico.
	var sawLC bool
	for _, e := range edgesBetween(la, fileCall, printCall) {
		if e.Kind == pdg.DepControl {
			continue
		}
		if e.LoopCarried {
			sawLC = true
			if e.Comm == pdg.CommNone {
				t.Errorf("loop-carried cross edge not relaxed: %+v", e)
			}
			if e.Comm == pdg.CommUCO {
				t.Errorf("loop-carried cross edge should be ico (dst does not dominate src): %+v", e)
			}
		} else if e.Comm != pdg.CommNone {
			// Intra-iteration: i1 == i2 falsifies the predicate; the
			// within-iteration order (digest before print) must hold.
			t.Errorf("intra-iteration cross edge wrongly relaxed: %+v", e)
		}
	}
	if !sawLC {
		t.Error("expected a loop-carried dependence between the blocks (slot total)")
	}
}

func TestMd5ShapeLCReverseUco(t *testing.T) {
	la := analyze(t, md5Shape)
	fileCall := callNode(t, la, "main$r1")
	printCall := callNode(t, la, "main$r2")

	// Reverse loop-carried edges print -> file-block: the destination
	// (file block) dominates the source (print), so relaxation is uco.
	for _, e := range edgesBetween(la, printCall, fileCall) {
		if e.Kind == pdg.DepControl || !e.LoopCarried {
			continue
		}
		if e.Comm != pdg.CommUCO {
			t.Errorf("reverse loop-carried edge should be uco: %+v", e)
		}
	}
}

func TestUnpredicatedGroupRelaxesPairsOnly(t *testing.T) {
	la := analyze(t, `
#pragma commset decl G
void main() {
	for (int i = 0; i < 4; i++) {
		#pragma commset member G
		{ print_int(i); }
		#pragma commset member G
		{ print_int(i + 1); }
	}
}`)
	a := callNode(t, la, "main$r1")
	b := callNode(t, la, "main$r2")
	// Cross edges relaxed unconditionally (uco).
	for _, e := range edgesBetween(la, a, b) {
		if e.Kind == pdg.DepControl {
			continue
		}
		if e.Comm != pdg.CommUCO {
			t.Errorf("cross edge in unpredicated group not uco: %+v", e)
		}
	}
	// Self edges not relaxed.
	for _, e := range edgesBetween(la, a, a) {
		if e.Kind != pdg.DepControl && e.LoopCarried && e.Comm != pdg.CommNone {
			t.Errorf("group self edge relaxed: %+v", e)
		}
	}
}

func TestPredicateOnVaryingDataNotProvable(t *testing.T) {
	// The predicate argument is data-dependent (not affine in the IV), so
	// the symbolic interpreter cannot prove commutativity.
	la := analyze(t, `
#pragma commset decl K
#pragma commset predicate K (a)(b) : a != b
void main() {
	int x = 0;
	for (int i = 0; i < 4; i++) {
		x = fread(x);
		#pragma commset member K(x), SELF
		{ consume(x); }
		#pragma commset member K(x)
		{ print_int(x); }
	}
}`)
	// Find the two region calls; the cross edges must remain CommNone: the
	// predicate binds to x, which is loop-varying and not affine.
	a := callNode(t, la, "main$r1")
	b := callNode(t, la, "main$r2")
	relaxed := false
	for _, e := range edgesBetween(la, a, b) {
		if e.Kind != pdg.DepControl && e.Comm != pdg.CommNone {
			relaxed = true
		}
	}
	// a and b conflict only through slot x (read by both): reads don't
	// conflict, so there may be no edges at all — but if there are, none
	// may be relaxed.
	if relaxed {
		t.Error("edge with unprovable predicate was relaxed")
	}
}

func TestLoopInvariantArgNotRelaxed(t *testing.T) {
	// Predicate args bind to a loop-invariant variable: the two instances
	// see the same value, so p != q is definitely false — no relaxation.
	la := analyze(t, `
#pragma commset decl self S
#pragma commset predicate S (p)(q) : p != q
void main() {
	int k = 7;
	for (int i = 0; i < 4; i++) {
		#pragma commset member S(k)
		{ print_int(k); }
	}
}`)
	call := callNode(t, la, "main$r1")
	for _, e := range edgesBetween(la, call, call) {
		if e.Kind != pdg.DepControl && e.LoopCarried && e.Comm != pdg.CommNone {
			t.Errorf("invariant-arg self edge relaxed: %+v", e)
		}
	}
}

func TestPredicatedSelfSetOnIV(t *testing.T) {
	// A declared self set predicated on the IV relaxes loop-carried self
	// dependences (different iterations ⇒ predicate true).
	la := analyze(t, `
#pragma commset decl self S
#pragma commset predicate S (p)(q) : p != q
void main() {
	for (int i = 0; i < 4; i++) {
		#pragma commset member S(i)
		{ print_int(i); }
	}
}`)
	call := callNode(t, la, "main$r1")
	sawLC := false
	for _, e := range edgesBetween(la, call, call) {
		if e.Kind == pdg.DepControl || !e.LoopCarried {
			continue
		}
		sawLC = true
		if e.Comm == pdg.CommNone {
			t.Errorf("IV-predicated self edge not relaxed: %+v", e)
		}
	}
	if !sawLC {
		t.Error("expected loop-carried console self dependence")
	}
}

func TestInterfaceMembershipRelaxation(t *testing.T) {
	// Function-level membership: calls to rng commute with themselves.
	la := analyze(t, `
#pragma commset member SELF
int rng(int x) { return fread(x); }
void main() {
	int s = 0;
	for (int i = 0; i < 4; i++) {
		s += rng(i);
		print_int(s);
	}
}`)
	call := callNode(t, la, "rng")
	for _, e := range edgesBetween(la, call, call) {
		if e.Kind == pdg.DepControl || !e.LoopCarried {
			continue
		}
		if e.Comm != pdg.CommUCO {
			t.Errorf("rng self edge not uco: %+v", e)
		}
	}
}

func TestWellFormednessRejectsMemberCallingMember(t *testing.T) {
	_, err := pipeline.Compile(pipeline.Options{
		File: source.NewFile("t.mc", `
#pragma commset decl G
#pragma commset member G
int helper(int x) { return x + 1; }
#pragma commset member G
int outer(int x) { return helper(x); }
void main() { consume(outer(1)); }
`),
		Sigs:    sigs(),
		Effects: effTable(),
	})
	if err == nil {
		t.Fatal("expected well-formedness error for member calling member")
	}
}

func TestWellFormednessRejectsCyclicCommsetGraph(t *testing.T) {
	_, err := pipeline.Compile(pipeline.Options{
		File: source.NewFile("t.mc", `
#pragma commset decl A
#pragma commset decl B
#pragma commset member A
int f(int x) { return g(x) + 1; }
#pragma commset member B
int g(int x) {
	if (x <= 0) { return 0; }
	return f(x - 1);
}
void main() { consume(f(3)); }
`),
		Sigs:    sigs(),
		Effects: effTable(),
	})
	if err == nil {
		t.Fatal("expected commset-graph cycle error")
	}
}

func TestRecursiveMemberRejected(t *testing.T) {
	_, err := pipeline.Compile(pipeline.Options{
		File: source.NewFile("t.mc", `
#pragma commset member SELF
int f(int x) {
	if (x <= 0) { return 0; }
	return f(x - 1);
}
void main() { consume(f(3)); }
`),
		Sigs:    sigs(),
		Effects: effTable(),
	})
	if err == nil {
		t.Fatal("expected error for recursive commset member")
	}
}
