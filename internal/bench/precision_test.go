package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestVetPrecision runs the full precision gate: every corpus expectation
// must hold and every workload variant must stay warning-free under each
// individual check.
func TestVetPrecision(t *testing.T) {
	var out, jsonOut bytes.Buffer
	rep, err := VetPrecision(&out, &jsonOut, 4)
	if err != nil {
		t.Fatalf("VetPrecision: %v\n%s", err, out.String())
	}
	if rep.CorpusEntries < 18 {
		t.Errorf("corpus entries = %d, want at least 18", rep.CorpusEntries)
	}
	if rep.Workloads < 8 {
		t.Errorf("workloads = %d, want at least 8", rep.Workloads)
	}
	if rep.TruePositives == 0 {
		t.Error("no true positives held: the corpus is not exercising the recall side")
	}
	if rep.FalsePositivesHeld == 0 {
		t.Error("no false positives held off: the corpus is not exercising the precision side")
	}
	// The unsound check must account for the seeded errors; the corpus is
	// designed so each pass has at least one firing entry.
	if c := rep.Corpus["unsound"]; c.Errors == 0 {
		t.Error("unsound check reported no corpus errors")
	}
	if c := rep.Corpus["lint"]; c.Warnings == 0 {
		t.Error("lint check reported no corpus warnings")
	}
	if c := rep.Corpus["commute"]; c == nil || c.Errors == 0 {
		t.Error("commute check reported no corpus errors: the refutation entries are not firing")
	}
	// ISSUE acceptance floor: at least 3 verified-commutes pins and 3
	// refuted pins must hold in the corpus.
	if rep.CommutesHeld < 3 {
		t.Errorf("commutes pins held = %d, want at least 3", rep.CommutesHeld)
	}
	if rep.RefutesHeld < 3 {
		t.Errorf("refutes pins held = %d, want at least 3", rep.RefutesHeld)
	}
	// Every check family must record nonzero wall-clock time in the report.
	for _, pc := range precisionChecks {
		if rep.Corpus[pc.name].TimeMS <= 0 {
			t.Errorf("check %s recorded no corpus wall-clock time", pc.name)
		}
	}

	// The JSON artifact must round-trip and agree with the report.
	var back PrecisionReport
	if err := json.Unmarshal(jsonOut.Bytes(), &back); err != nil {
		t.Fatalf("report JSON: %v", err)
	}
	if back.CorpusEntries != rep.CorpusEntries || back.TruePositives != rep.TruePositives {
		t.Errorf("JSON round-trip mismatch: got %d/%d, want %d/%d",
			back.CorpusEntries, back.TruePositives, rep.CorpusEntries, rep.TruePositives)
	}
	if !strings.Contains(out.String(), "vet precision:") {
		t.Errorf("summary output missing header:\n%s", out.String())
	}
}

// TestVetPrecisionNilJSON checks the JSON writer is optional.
func TestVetPrecisionNilJSON(t *testing.T) {
	var out bytes.Buffer
	if _, err := VetPrecision(&out, nil, 2); err != nil {
		t.Fatalf("VetPrecision: %v\n%s", err, out.String())
	}
}
