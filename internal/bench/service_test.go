package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/transform"
)

// TestServiceCampaignSmoke runs the CI-sized service campaign end to end:
// both services × all three transforms, the overload ladder walk, the crash
// scenarios, and the rate ladder, with every invariant the campaign enforces
// (zero silent drops, subset-consistent output, bit-for-bit determinism).
func TestServiceCampaignSmoke(t *testing.T) {
	var buf bytes.Buffer
	rep, err := ServiceCampaign(&buf, ServiceOptions{Threads: 8, Seed: 1, Smoke: true})
	if err != nil {
		t.Fatalf("service campaign: %v\n%s", err, buf.String())
	}
	if rep.Summary.Violations != 0 {
		t.Fatalf("campaign reported %d violations:\n%s", rep.Summary.Violations, buf.String())
	}
	if rep.Summary.MaxLevel < 2 {
		t.Errorf("degradation ladder high-water %d, want ≥ 2", rep.Summary.MaxLevel)
	}
	if rep.Summary.FellBack < 1 {
		t.Error("no scenario degraded to the sequential service fallback")
	}
	if rep.Summary.Restarts < 1 {
		t.Error("no scenario restarted a crashed service worker")
	}
	// Coverage: both services × all three transforms.
	kinds := []transform.Kind{transform.DOALL, transform.DSWP, transform.PSDSWP}
	for _, svcName := range []string{"url-service", "md5sum-service"} {
		for _, kind := range kinds {
			found := false
			for _, c := range rep.Cells {
				if c.Service == svcName && c.Kind == kind.String() {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("no cell covers %s × %v", svcName, kind)
			}
		}
	}
	// The deterministic scenarios must be present and marked.
	det := 0
	for _, c := range rep.Cells {
		if c.Deterministic {
			det++
		}
	}
	if det < 4 {
		t.Errorf("%d deterministic (rerun-compared) cells, want ≥ 4", det)
	}
	if len(rep.RateLadder) == 0 {
		t.Error("rate ladder is empty")
	}
	if !strings.Contains(buf.String(), "sustainable") {
		t.Error("campaign output lacks the sustainable-rate line")
	}
}
