package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/builtins"
	"repro/internal/faults"
	"repro/internal/transform"
	"repro/internal/vm/des"
	"repro/internal/vm/exec"
	"repro/internal/workloads"
)

// ServiceOptions configures ServiceCampaign.
type ServiceOptions struct {
	Threads int
	Seed    uint64
	// Smoke restricts the sweep to the primary sync mode and the CI-sized
	// traces.
	Smoke bool
	// JSONPath, when non-empty, additionally writes the machine-readable
	// ServiceReport (BENCH_service.json) there.
	JSONPath string
}

// ServiceCell is one (service, schedule, sync, trace, scenario) campaign
// cell of the machine-readable report.
type ServiceCell struct {
	Service  string `json:"service"`
	Kind     string `json:"kind"`
	Sync     string `json:"sync"`
	Trace    string `json:"trace"`
	Scenario string `json:"scenario"`
	// Util is the offered load as a fraction of the schedule's measured
	// closed-loop capacity.
	Util    float64 `json:"util,omitempty"`
	Outcome string  `json:"outcome"`
	Detail  string  `json:"detail,omitempty"`
	// Deterministic is set on scenarios that are executed twice under the
	// same seed and compared bit-for-bit (overload and crash cells).
	Deterministic bool                `json:"deterministic,omitempty"`
	Result        *exec.ServiceResult `json:"result,omitempty"`
}

// RatePoint is one sustainable-throughput ladder measurement.
type RatePoint struct {
	Service          string  `json:"service"`
	Util             float64 `json:"util"`
	ThroughputPerMvt float64 `json:"throughput_per_mvt"`
	Attainment       float64 `json:"slo_attainment"`
	ShedRate         float64 `json:"shed_rate"`
	Abandoned        int     `json:"abandoned"`
	Sustainable      bool    `json:"sustainable"`
}

// ServiceSummary aggregates the campaign outcomes.
type ServiceSummary struct {
	Runs       int `json:"runs"`
	OK         int `json:"ok"`
	Violations int `json:"violations"`

	Generated int `json:"generated"`
	Completed int `json:"completed"`
	Shed      int `json:"shed"`
	Abandoned int `json:"abandoned"`
	Rejected  int `json:"rejected"`
	Failed    int `json:"failed"`

	Restarts int `json:"restarts"`
	FellBack int `json:"fell_back"`
	// MaxLevel is the deepest degradation-ladder level any cell reached
	// (including aborted parallel attempts).
	MaxLevel int `json:"max_level"`
}

func (s *ServiceSummary) add(res *exec.ServiceResult) {
	if res == nil {
		return
	}
	s.Generated += res.Generated
	s.Completed += res.Completed
	s.Shed += res.ShedBucket + res.ShedQueue
	s.Abandoned += res.Abandoned
	s.Rejected += res.Rejected
	s.Failed += res.Failed
	s.Restarts += res.Restarts
	if res.FellBack {
		s.FellBack++
	}
	if lvl := deepestLevel(res); lvl > s.MaxLevel {
		s.MaxLevel = lvl
	}
}

// deepestLevel reads the ladder high-water mark of a result, including the
// evidence carried over from an aborted parallel attempt.
func deepestLevel(res *exec.ServiceResult) int {
	lvl := res.MaxLevel
	if res.Aborted != nil && res.Aborted.MaxLevel > lvl {
		lvl = res.Aborted.MaxLevel
	}
	return lvl
}

// ServiceReport is the machine-readable campaign result behind
// BENCH_service.json. CI uploads it as an artifact so latency/robustness
// regressions show up as a diff, not a rerun.
type ServiceReport struct {
	Threads    int            `json:"threads"`
	Seed       uint64         `json:"seed"`
	Smoke      bool           `json:"smoke"`
	Summary    ServiceSummary `json:"summary"`
	Cells      []ServiceCell  `json:"cells"`
	RateLadder []RatePoint    `json:"rate_ladder,omitempty"`
}

// WriteServiceJSON writes the report to path and prints a one-line
// confirmation to w.
func WriteServiceJSON(w io.Writer, path string, rep *ServiceReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s (%d cells, %d completed, %d shed, ladder high-water %d)\n",
		path, len(rep.Cells), rep.Summary.Completed, rep.Summary.Shed, rep.Summary.MaxLevel)
	return nil
}

// svcCompiled is one open service, compiled and calibrated: the schedules of
// its workload variant plus a sequential reference run over the
// service-sized world (the validation oracle and the per-request cost
// estimate every trace is paced from).
type svcCompiled struct {
	svc      *workloads.Service
	cp       *Compiled
	n        int
	setup    func(w *builtins.World)
	seqWorld *builtins.World
	seqCost  int64
	reqCost  int64
}

func compileService(svc *workloads.Service, threads, n int) (*svcCompiled, error) {
	return compileServiceWith(svc, threads, n, func(w *builtins.World) { svc.Setup(w, n) })
}

// compileServiceHeavy builds the heavy-tailed variant of a service: the same
// program over a world whose per-request service times follow the seeded
// bounded-Pareto distribution, with its own sequential reference (the
// validation oracle must digest the same request sizes).
func compileServiceHeavy(svc *workloads.Service, threads, n int, seed uint64) (*svcCompiled, error) {
	return compileServiceWith(svc, threads, n, func(w *builtins.World) { svc.HeavySetup(w, n, seed) })
}

func compileServiceWith(svc *workloads.Service, threads, n int, setup func(w *builtins.World)) (*svcCompiled, error) {
	cp, err := Compile(svc.Workload, svc.Variant, threads)
	if err != nil {
		return nil, err
	}
	w := builtins.NewWorld()
	setup(w)
	r, err := exec.RunSequential(exec.Config{
		Prog: cp.C.Low.Prog, Builtins: w.Fns(), Model: cp.C.Model, Cost: des.DefaultCostModel(),
	})
	if err != nil {
		return nil, fmt.Errorf("bench: sequential %s reference: %w", svc.Name, err)
	}
	sc := &svcCompiled{svc: svc, cp: cp, n: n, setup: setup, seqWorld: w, seqCost: r.VirtualTime}
	sc.reqCost = r.VirtualTime / int64(n)
	if sc.reqCost < 1 {
		sc.reqCost = 1
	}
	return sc, nil
}

// fresh builds a service-sized substrate world.
func (sc *svcCompiled) fresh() *builtins.World {
	w := builtins.NewWorld()
	sc.setup(w)
	return w
}

// config assembles the executor configuration for one run, optionally wired
// through a fault injector.
func (sc *svcCompiled) config(w *builtins.World, plan *faults.Plan) exec.Config {
	cfg := exec.Config{
		Prog:      sc.cp.C.Low.Prog,
		Builtins:  w.Fns(),
		Model:     sc.cp.C.Model,
		Cost:      des.DefaultCostModel(),
		Recovery:  exec.DefaultRecovery(),
		Watchdog:  des.Watchdog{MaxEvents: 5_000_000},
		Effectful: Effectful(w),
	}
	if plan != nil {
		inj := faults.NewInjector(*plan)
		cfg.Builtins = inj.Wrap(w.Fns())
		cfg.PushDelay = inj.QueueDelay
		cfg.ExtraAborts = inj.ExtraAborts
		if plan.HasCrash() {
			cfg.CrashCheck = inj.CrashNow
		}
	}
	return cfg
}

// capacity measures the schedule's closed-loop speedup over the
// service-sized world — the denominator every utilization target is paced
// against.
func (sc *svcCompiled) capacity(sched *transform.Schedule, mode exec.SyncMode, threads int) (float64, error) {
	w := sc.fresh()
	res, err := exec.Run(sc.config(w, nil), sc.cp.LA, sched, mode, threads)
	if err != nil {
		return 0, fmt.Errorf("bench: capacity %s %s/%v: %w", sc.svc.Name, sched.String(), mode, err)
	}
	sp := float64(sc.seqCost) / float64(res.VirtualTime)
	if sp < 1 {
		sp = 1
	}
	return sp, nil
}

// gap converts a utilization target into the mean interarrival gap: offered
// load util×capacity means one request every reqCost/(capacity×util) units.
func (sc *svcCompiled) gap(util, capacity float64) float64 {
	return float64(sc.reqCost) / (capacity * util)
}

// arrivals builds the seeded arrival process for a trace name.
func (sc *svcCompiled) arrivals(trace string, seed uint64, gap float64) des.Arrivals {
	switch trace {
	case "bursty":
		// Sojourns of ~20 mean gaps: bursts long enough to fill the ingress
		// queue, lulls long enough to drain it.
		return des.NewBursty(seed, gap, gap*20)
	case "diurnal":
		return des.NewDiurnal(seed, gap, sc.n)
	default:
		return des.NewPoisson(seed, gap)
	}
}

// svcConfig returns a ServiceConfig factory: every invocation builds a fresh
// arrival-process instance (same seed) and a private ScalerConfig copy, so
// repeated runs replay the identical trace.
func (sc *svcCompiled) svcConfig(trace string, seed uint64, gap float64, scaler *exec.ScalerConfig, ingress int) func() exec.ServiceConfig {
	return func() exec.ServiceConfig {
		var sccfg *exec.ScalerConfig
		if scaler != nil {
			c := *scaler
			sccfg = &c
		}
		return exec.ServiceConfig{
			Arrivals:   sc.arrivals(trace, seed, gap),
			Requests:   sc.n,
			IngressCap: ingress,
			Deadline:   int64(sc.svc.DeadlineFactor * float64(sc.reqCost)),
			SLO:        int64(sc.svc.SLOFactor * float64(sc.reqCost)),
			Scaler:     sccfg,
			EstReqCost: sc.reqCost,
		}
	}
}

// runOnce executes one service run on a fresh world and returns the result
// together with the world for validation.
func (sc *svcCompiled) runOnce(sched *transform.Schedule, mode exec.SyncMode, threads int, svcCfg exec.ServiceConfig, plan *faults.Plan) (*exec.ServiceResult, *builtins.World, error) {
	return sc.runOnceTuned(sched, mode, threads, svcCfg, plan, transform.Tuning{})
}

// runOnceTuned is runOnce under an explicit tuning (the heavy-tail cells
// toggle Tune.Steal to compare the parked-worker steal path against the
// plain ladder).
func (sc *svcCompiled) runOnceTuned(sched *transform.Schedule, mode exec.SyncMode, threads int, svcCfg exec.ServiceConfig, plan *faults.Plan, tune transform.Tuning) (*exec.ServiceResult, *builtins.World, error) {
	w := sc.fresh()
	cfg := sc.config(w, plan)
	cfg.Tune = tune
	res, err := exec.RunService(cfg, svcCfg, sc.cp.LA, sched, mode, threads)
	return res, w, err
}

// runResilient executes one service scenario through the fallback machinery:
// parallel attempt, then the Accept-verified sequential service on a
// non-transient diagnosis.
func (sc *svcCompiled) runResilient(sched *transform.Schedule, mode exec.SyncMode, threads int, mkSvc func() exec.ServiceConfig, mkPlan func() *faults.Plan) (*exec.ServiceResult, error) {
	var lastW *builtins.World
	fresh := func() (exec.Config, exec.ServiceConfig) {
		w := sc.fresh()
		lastW = w
		var plan *faults.Plan
		if mkPlan != nil {
			plan = mkPlan()
		}
		return sc.config(w, plan), mkSvc()
	}
	accept := func(res *exec.ServiceResult) error {
		return sc.svc.Validate(sc.seqWorld, lastW, res.Completed)
	}
	return exec.RunServiceResilient(exec.ServiceResilientOptions{
		LA: sc.cp.LA, Sched: sched, Mode: mode, Threads: threads,
		Fresh: fresh, Accept: accept,
	})
}

// validate checks a completed run's externalized effects against the
// sequential reference and the zero-silent-drop trace identity.
func (sc *svcCompiled) validate(w *builtins.World, res *exec.ServiceResult) error {
	if res.Generated != sc.n {
		return fmt.Errorf("trace truncated: %d requests generated, want %d", res.Generated, sc.n)
	}
	return sc.svc.Validate(sc.seqWorld, w, res.Completed)
}

func sameResult(a, b *exec.ServiceResult) bool {
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	return string(ja) == string(jb)
}

func resultDetail(res *exec.ServiceResult) string {
	if res == nil {
		return ""
	}
	return fmt.Sprintf("completed=%d/%d p99=%d slo=%.2f shed=%d abandoned=%d level=%d",
		res.Completed, res.Generated, res.P99, res.SLOAttainment,
		res.ShedBucket+res.ShedQueue, res.Abandoned, deepestLevel(res))
}

// traceSeeds keeps each arrival family on its own deterministic stream.
var traceSeeds = map[string]uint64{"poisson": 11, "bursty": 23, "diurnal": 37}

// steadyUtil is the offered load of the steady cells; ladderUtils the
// sustainable-throughput sweep (smoke keeps two points).
const steadyUtil = 0.6

var ladderUtils = []float64{0.3, 0.6, 0.9, 1.2}
var ladderUtilsSmoke = []float64{0.5, 1.1}

// ServiceCampaign sweeps the open services × {DOALL, DSWP, PS-DSWP} × sync
// modes × arrival traces through the service runtime, plus per-service
// overload, crash, and sustainable-rate scenarios. Invariants enforced on
// every cell: the full trace is generated and accounted (zero silent
// drops — RunService checks the balance identity internally, the campaign
// re-checks the generated count), and the externalized effects are a
// subset-consistent prefix of the sequential reference. Overload and crash
// cells run twice under the same seed and must reproduce bit-for-bit; at
// least one cell must walk the degradation ladder to level ≥ 2.
func ServiceCampaign(out io.Writer, opts ServiceOptions) (*ServiceReport, error) {
	if opts.Threads <= 0 {
		opts.Threads = 8
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	rep := &ServiceReport{Threads: opts.Threads, Seed: opts.Seed, Smoke: opts.Smoke}
	sum := &rep.Summary
	var violations []string
	covered := map[string]map[string]bool{}

	record := func(cell ServiceCell, res *exec.ServiceResult, err error) {
		sum.Runs++
		cell.Result = res
		if err != nil {
			cell.Outcome = "violation"
			cell.Detail = err.Error()
		}
		if cell.Outcome == "violation" {
			sum.Violations++
			violations = append(violations, fmt.Sprintf("%s %s/%s %s %s: %s",
				cell.Service, cell.Kind, cell.Sync, cell.Trace, cell.Scenario, cell.Detail))
		} else {
			sum.OK++
			sum.add(res)
		}
		if covered[cell.Service] == nil {
			covered[cell.Service] = map[string]bool{}
		}
		covered[cell.Service][cell.Kind] = true
		rep.Cells = append(rep.Cells, cell)
		fmt.Fprintf(out, "  %-14s %-8s %-6s %-8s %-16s %-10s %s\n",
			cell.Service, cell.Kind, cell.Sync, cell.Trace, cell.Scenario, cell.Outcome, cell.Detail)
	}

	fmt.Fprintf(out, "Service campaign: %d services, seed %d, %d threads\n",
		len(workloads.Services()), opts.Seed, opts.Threads)
	fmt.Fprintf(out, "  %-14s %-8s %-6s %-8s %-16s %-10s %s\n",
		"service", "kind", "sync", "trace", "scenario", "outcome", "detail")

	for _, svc := range workloads.Services() {
		n := svc.Requests
		if opts.Smoke {
			n = svc.SmokeRequests
		}
		sc, err := compileService(svc, opts.Threads, n)
		if err != nil {
			return nil, err
		}
		syncs := svc.Workload.Syncs()
		if opts.Smoke {
			syncs = syncs[:1]
		}
		primary := syncs[0]

		// Steady cells: every applicable schedule × sync under moderate load;
		// the full arrival-trace sweep rides on the DOALL primary-sync cell
		// in smoke mode and on every cell otherwise. The capacity
		// calibrations and the cells are independent seeded runs, so both
		// sweeps execute concurrently under -hostpar; cells are recorded in
		// submission order, keeping table and JSON byte-identical to a
		// sequential run.
		type kmSpec struct {
			kind  transform.Kind
			sched *transform.Schedule
			mode  exec.SyncMode
		}
		var kms []kmSpec
		for _, kind := range campaignKinds {
			sched := sc.cp.Schedule(kind)
			if sched == nil {
				violations = append(violations, fmt.Sprintf(
					"%s: schedule %v not generated — campaign must cover both services × all three transforms", svc.Name, kind))
				continue
			}
			for _, mode := range syncs {
				kms = append(kms, kmSpec{kind, sched, mode})
			}
		}
		capacs := make([]float64, len(kms))
		if err := parDo(len(kms), func(i int) error {
			c, err := sc.capacity(kms[i].sched, kms[i].mode, opts.Threads)
			capacs[i] = c
			return err
		}); err != nil {
			return nil, err
		}

		type steadyCell struct {
			km    int
			trace string
			cell  ServiceCell
			res   *exec.ServiceResult
			err   error
		}
		var steady []*steadyCell
		for ki, km := range kms {
			traces := []string{"poisson", "bursty", "diurnal"}
			if opts.Smoke && !(km.kind == transform.DOALL && km.mode == primary) {
				traces = []string{"poisson"}
			}
			for _, trace := range traces {
				steady = append(steady, &steadyCell{km: ki, trace: trace})
			}
		}
		if err := parDo(len(steady), func(i int) error {
			st := steady[i]
			km := kms[st.km]
			gap := sc.gap(steadyUtil, capacs[st.km])
			scaler := &exec.ScalerConfig{Window: 8 * sc.reqCost}
			mk := sc.svcConfig(st.trace, opts.Seed+traceSeeds[st.trace], gap, scaler, 32)
			res, w, err := sc.runOnce(km.sched, km.mode, opts.Threads, mk(), nil)
			cell := ServiceCell{
				Service: svc.Name, Kind: fmt.Sprintf("%v", km.kind), Sync: fmt.Sprintf("%v", km.mode),
				Trace: st.trace, Scenario: "steady", Util: steadyUtil,
			}
			if err == nil {
				err = sc.validate(w, res)
			}
			if err == nil {
				cell.Outcome = "ok"
				cell.Detail = resultDetail(res)
			}
			st.cell, st.res, st.err = cell, res, err
			return nil
		}); err != nil {
			return nil, err
		}
		for _, st := range steady {
			record(st.cell, st.res, st.err)
		}

		doall := sc.cp.Schedule(transform.DOALL)
		if doall == nil {
			continue // already recorded as a coverage violation
		}
		capac, err := sc.capacity(doall, primary, opts.Threads)
		if err != nil {
			return nil, err
		}

		// Overload: bursty load at 5× capacity, shallow ingress, tight
		// controller with the full ladder armed — the run must escalate
		// through shed and scale-down to the sequential fallback, twice,
		// identically. 5× keeps even the MMPP quiet phase (half rate) over
		// capacity after the best-effort token bucket trims its class, so
		// pressure is sustained across controller windows instead of
		// recovering between bursts.
		{
			gap := sc.gap(5.0, capac)
			window := int64(gap * float64(sc.n) / 10)
			if window < 1 {
				window = 1
			}
			scaler := &exec.ScalerConfig{
				Window: window, EscalateAfter: 1, BadAttainment: 0.6, BadPressure: 0.5, AllowFallback: true,
			}
			// A shallow ingress (16) is the escalation signal: at 5× capacity
			// the queue saturates and sheds, which forces the controller's
			// pressure reading to 1 while completions go stale against the SLO.
			base := sc.svcConfig("bursty", opts.Seed+traceSeeds["bursty"], gap, scaler, 16)
			rate := 2.5e5 / gap // half the best-effort class's arrival share
			mkSvc := func() exec.ServiceConfig {
				c := base()
				// The overload scenario holds the service to a tight
				// interactive SLO: the default factors are sized so steady
				// cells pass, but past capacity the queueing delay must
				// actually register as missed deadlines and stale responses
				// for the ladder to move.
				c.SLO = 3 * sc.reqCost
				c.Deadline = 8 * sc.reqCost
				c.Classes = []exec.ServiceClass{
					{Name: "paid"},
					{Name: "best-effort", Rate: rate, Burst: 4, ShedAtLevel: 1},
				}
				c.ClassOf = func(k int) int { return k % 2 }
				return c
			}
			res, err := sc.runResilient(doall, primary, opts.Threads, mkSvc, nil)
			cell := ServiceCell{
				Service: svc.Name, Kind: fmt.Sprintf("%v", transform.DOALL),
				Sync: fmt.Sprintf("%v", primary), Trace: "bursty", Scenario: "overload",
				Util: 5.0, Deterministic: true,
			}
			if err == nil {
				switch {
				case deepestLevel(res) < 2:
					err = fmt.Errorf("overload never walked the ladder past level %d", deepestLevel(res))
				case res.Generated != sc.n:
					err = fmt.Errorf("trace truncated: %d generated, want %d", res.Generated, sc.n)
				default:
					res2, err2 := sc.runResilient(doall, primary, opts.Threads, mkSvc, nil)
					if err2 != nil {
						err = fmt.Errorf("determinism rerun failed: %w", err2)
					} else if !sameResult(res, res2) {
						err = fmt.Errorf("overload run is not deterministic under seed %d", opts.Seed)
					}
				}
			}
			if err == nil {
				if res.FellBack {
					cell.Outcome = "degraded"
				} else {
					cell.Outcome = "shed"
				}
				cell.Detail = resultDetail(res)
			}
			record(cell, res, err)
		}

		// Crash cells: the PR 2/5 fault plans aimed at the dynamic service
		// roster. MinWorkers=2 keeps the victim in the always-on set, which
		// faults.ValidateService requires of every crash target.
		{
			gap := sc.gap(0.5, capac)
			scaler := &exec.ScalerConfig{Window: 8 * sc.reqCost, MinWorkers: 2}
			always, scalable := exec.ServiceRoster(doall, opts.Threads, scaler.MinWorkers)
			roster := faults.ServiceRoster{Always: always, Scalable: scalable}
			for _, crash := range []struct {
				name string
				perm bool
			}{{"crash-transient", false}, {"crash-perm", true}} {
				plan := faults.Plan{
					Name: crash.name, Seed: opts.Seed, Recoverable: true,
					Specs: []faults.Spec{{Kind: faults.Crash, Thread: "svc.1", After: 4, Permanent: crash.perm}},
				}
				if err := plan.ValidateService(roster); err != nil {
					return nil, fmt.Errorf("bench: %w", err)
				}
				mk := sc.svcConfig("poisson", opts.Seed+traceSeeds["poisson"], gap, scaler, 32)
				run := func() (*exec.ServiceResult, *builtins.World, error) {
					p := plan
					return sc.runOnce(doall, primary, opts.Threads, mk(), &p)
				}
				res, w, err := run()
				cell := ServiceCell{
					Service: svc.Name, Kind: fmt.Sprintf("%v", transform.DOALL),
					Sync: fmt.Sprintf("%v", primary), Trace: "poisson", Scenario: crash.name,
					Util: 0.5, Deterministic: true,
				}
				if err == nil {
					err = sc.validate(w, res)
				}
				if err == nil {
					switch {
					case !crash.perm && res.Restarts < 1:
						err = fmt.Errorf("transient crash never restarted the worker")
					case crash.perm && res.DeadWorkers < 1:
						err = fmt.Errorf("permanent crash never retired the worker")
					default:
						res2, _, err2 := run()
						if err2 != nil {
							err = fmt.Errorf("determinism rerun failed: %w", err2)
						} else if !sameResult(res, res2) {
							err = fmt.Errorf("crash run is not deterministic under seed %d", opts.Seed)
						}
					}
				}
				if err == nil {
					if crash.perm {
						cell.Outcome = "absorbed"
					} else {
						cell.Outcome = "recovered"
					}
					cell.Detail = fmt.Sprintf("restarts=%d dead=%d %s", res.Restarts, res.DeadWorkers, resultDetail(res))
				}
				record(cell, res, err)
			}
		}

		// Heavy-tailed overload pair: the seeded bounded-Pareto trace makes a
		// deterministic few requests ~64x the mode, so whichever workers draw
		// them become stragglers while the ladder's scale-down level parks
		// their peers. The cell runs twice — Tune.Steal off then on — under
		// the identical trace; with stealing the parked workers drain the
		// dispatch backlog the stragglers left behind. Both cells must
		// validate against the heavy sequential reference and reproduce
		// bit-for-bit.
		if svc.HeavySetup != nil {
			hsc, err := compileServiceHeavy(svc, opts.Threads, n, opts.Seed+101)
			if err != nil {
				return nil, err
			}
			hcap, err := hsc.capacity(doall, primary, opts.Threads)
			if err != nil {
				return nil, err
			}
			gap := hsc.gap(1.5, hcap)
			var p99s [2]int64
			for si, steal := range []bool{false, true} {
				scaler := &exec.ScalerConfig{
					Window: 8 * hsc.reqCost, MinWorkers: 2,
					EscalateAfter: 1, BadAttainment: 0.6, BadPressure: 0.5,
				}
				mk := hsc.svcConfig("bursty", opts.Seed+traceSeeds["bursty"], gap, scaler, 32)
				tune := transform.Tuning{Steal: steal}
				run := func() (*exec.ServiceResult, *builtins.World, error) {
					return hsc.runOnceTuned(doall, primary, opts.Threads, mk(), nil, tune)
				}
				res, w, err := run()
				scenario := "heavy-tail"
				if steal {
					scenario = "heavy-tail-steal"
				}
				cell := ServiceCell{
					Service: svc.Name, Kind: fmt.Sprintf("%v", transform.DOALL),
					Sync: fmt.Sprintf("%v", primary), Trace: "bursty", Scenario: scenario,
					Util: 1.5, Deterministic: true,
				}
				if err == nil {
					err = hsc.validate(w, res)
				}
				if err == nil {
					res2, _, err2 := run()
					if err2 != nil {
						err = fmt.Errorf("determinism rerun failed: %w", err2)
					} else if !sameResult(res, res2) {
						err = fmt.Errorf("heavy-tail run is not deterministic under seed %d", opts.Seed)
					}
				}
				if err == nil {
					p99s[si] = res.P99
					cell.Outcome = "ok"
					cell.Detail = fmt.Sprintf("steals=%d %s", res.Steals, resultDetail(res))
				}
				record(cell, res, err)
			}
			if p99s[0] > 0 && p99s[1] > 0 {
				fmt.Fprintf(out, "  %-14s heavy tail: p99 %d -> %d with stealing (%+.0f%%)\n",
					svc.Name, p99s[0], p99s[1], 100*float64(p99s[1]-p99s[0])/float64(p99s[0]))
			}
		}

		// Pipeline permanent-stage crash: a structural worker dies for good,
		// so the parallel attempt is diagnosed non-transient and the runtime
		// degrades to the Accept-verified sequential service.
		if pipe := firstPipeline(sc.cp); pipe != nil {
			pcap, err := sc.capacity(pipe, primary, opts.Threads)
			if err != nil {
				return nil, err
			}
			always, scalable := exec.ServiceRoster(pipe, opts.Threads, 1)
			plan := faults.Plan{
				Name: "crash-stage-perm", Seed: opts.Seed, Recoverable: true,
				Specs: []faults.Spec{{Kind: faults.Crash, Thread: always[0], After: 5, Permanent: true}},
			}
			if err := plan.ValidateService(faults.ServiceRoster{Always: always, Scalable: scalable}); err != nil {
				return nil, fmt.Errorf("bench: %w", err)
			}
			gap := sc.gap(0.5, pcap)
			mk := sc.svcConfig("poisson", opts.Seed+traceSeeds["poisson"], gap, nil, 32)
			mkPlan := func() *faults.Plan { p := plan; return &p }
			run := func() (*exec.ServiceResult, error) {
				return sc.runResilient(pipe, primary, opts.Threads, mk, mkPlan)
			}
			res, err := run()
			cell := ServiceCell{
				Service: svc.Name, Kind: fmt.Sprintf("%v", pipe.Kind),
				Sync: fmt.Sprintf("%v", primary), Trace: "poisson", Scenario: "crash-stage-perm",
				Util: 0.5, Deterministic: true,
			}
			if err == nil {
				switch {
				case !res.FellBack:
					err = fmt.Errorf("permanent stage crash did not degrade to the sequential service")
				case res.Generated != sc.n:
					err = fmt.Errorf("trace truncated: %d generated, want %d", res.Generated, sc.n)
				default:
					res2, err2 := run()
					if err2 != nil {
						err = fmt.Errorf("determinism rerun failed: %w", err2)
					} else if !sameResult(res, res2) {
						err = fmt.Errorf("stage-crash run is not deterministic under seed %d", opts.Seed)
					}
				}
			}
			if err == nil {
				cell.Outcome = "degraded"
				cell.Detail = resultDetail(res)
			}
			record(cell, res, err)
		}

		// Sustainable-rate ladder: walk the offered load up on the DOALL
		// primary-sync Poisson cell; the last point that holds ≥90% SLO
		// attainment with zero shed/abandonment is the sustainable rate.
		utils := ladderUtils
		if opts.Smoke {
			utils = ladderUtilsSmoke
		}
		// Ladder points are independent seeded runs: measure them
		// concurrently, classify them in ladder order.
		type ladderRun struct {
			res *exec.ServiceResult
			err error
		}
		runs := make([]ladderRun, len(utils))
		if err := parDo(len(utils), func(i int) error {
			gap := sc.gap(utils[i], capac)
			scaler := &exec.ScalerConfig{Window: 8 * sc.reqCost}
			mk := sc.svcConfig("poisson", opts.Seed+traceSeeds["poisson"], gap, scaler, 32)
			res, w, err := sc.runOnce(doall, primary, opts.Threads, mk(), nil)
			if err == nil {
				err = sc.validate(w, res)
			}
			runs[i] = ladderRun{res, err}
			return nil
		}); err != nil {
			return nil, err
		}
		lastSustainable := -1
		points := make([]RatePoint, 0, len(utils))
		for i, util := range utils {
			res, err := runs[i].res, runs[i].err
			if err != nil {
				violations = append(violations, fmt.Sprintf("%s rate ladder util %.2f: %v", svc.Name, util, err))
				continue
			}
			pt := RatePoint{
				Service: svc.Name, Util: util,
				ThroughputPerMvt: res.ThroughputPerMvt,
				Attainment:       res.SLOAttainment,
				ShedRate:         res.ShedRate,
				Abandoned:        res.Abandoned,
			}
			pt.Sustainable = pt.Attainment >= 0.9 && pt.ShedRate == 0 && pt.Abandoned == 0
			if pt.Sustainable {
				lastSustainable = len(points)
			}
			points = append(points, pt)
			sum.Runs++
			sum.OK++
			sum.add(res)
			fmt.Fprintf(out, "  %-14s %-8s %-6s %-8s %-16s %-10s util=%.2f tput=%.1f/Mvt slo=%.2f shed=%.2f\n",
				svc.Name, "DOALL", fmt.Sprintf("%v", primary), "poisson",
				fmt.Sprintf("rate-%.2f", util), "point", util, pt.ThroughputPerMvt, pt.Attainment, pt.ShedRate)
		}
		if lastSustainable < 0 {
			violations = append(violations, fmt.Sprintf(
				"%s: no sustainable point on the rate ladder (lowest util %.2f already misses the SLO)", svc.Name, utils[0]))
		} else {
			fmt.Fprintf(out, "  %-14s sustainable: util %.2f at %.1f req/Mvt\n",
				svc.Name, points[lastSustainable].Util, points[lastSustainable].ThroughputPerMvt)
		}
		rep.RateLadder = append(rep.RateLadder, points...)
	}

	// Acceptance: both services × all three transforms, and the degradation
	// ladder exercised somewhere.
	for _, svc := range workloads.Services() {
		for _, kind := range campaignKinds {
			if !covered[svc.Name][fmt.Sprintf("%v", kind)] {
				violations = append(violations, fmt.Sprintf("%s: no cell covers transform %v", svc.Name, kind))
			}
		}
	}
	if sum.MaxLevel < 2 {
		violations = append(violations, fmt.Sprintf(
			"no cell walked the degradation ladder to level ≥ 2 (high-water %d)", sum.MaxLevel))
	}

	fmt.Fprintf(out, "  %d runs: %d ok, %d violations; %d generated = %d completed + %d shed + %d abandoned + %d rejected + %d failed; %d restarts, %d fallbacks, ladder high-water %d\n",
		sum.Runs, sum.OK, sum.Violations, sum.Generated, sum.Completed, sum.Shed,
		sum.Abandoned, sum.Rejected, sum.Failed, sum.Restarts, sum.FellBack, sum.MaxLevel)
	if len(violations) > 0 {
		return rep, fmt.Errorf("bench: service campaign failed:\n  %s", strings.Join(violations, "\n  "))
	}
	if opts.JSONPath != "" {
		if err := WriteServiceJSON(out, opts.JSONPath, rep); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// firstPipeline returns the workload's DSWP schedule, falling back to
// PS-DSWP (the crash-stage scenario needs any structural stage network).
func firstPipeline(cp *Compiled) *transform.Schedule {
	if s := cp.Schedule(transform.DSWP); s != nil {
		return s
	}
	return cp.Schedule(transform.PSDSWP)
}
