// Package bench reproduces the paper's evaluation: it compiles each
// workload variant, profiles it to find the hottest loop, generates every
// applicable schedule, executes schedule × synchronization × thread-count
// combinations on the discrete-event simulator, validates outputs against
// the sequential run, and prints the paper's tables and figures (Table 1,
// Table 2, Figure 6).
package bench

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/builtins"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/source"
	"repro/internal/transform"
	"repro/internal/vm/des"
	"repro/internal/vm/exec"
	"repro/internal/vm/interp"
	"repro/internal/workloads"
)

// Compiled is one workload variant, analyzed and ready to run.
type Compiled struct {
	WL      *workloads.Workload
	Variant string
	C       *pipeline.Compiled
	LA      *pipeline.LoopAnalysis
	Prof    *profile.Result
	Scheds  []*transform.Schedule

	// SeqCost is the sequential virtual time on a fresh world (the
	// baseline for every speedup).
	SeqCost int64
	// SeqWorld is the sequential run's final substrate, used to validate
	// parallel runs.
	SeqWorld *builtins.World

	// runMu guards runCache, the fast-mode measurement memo (cache.go).
	runMu    sync.Mutex
	runCache map[runKey]*runEntry
}

// freshWorld builds a substrate instance populated for the workload.
func freshWorld(wl *workloads.Workload) *builtins.World {
	w := builtins.NewWorld()
	wl.Setup(w)
	return w
}

// Compile compiles, profiles, and analyzes one variant of a workload.
// variant may be a variant name, or "noannot" for the pragma-stripped
// non-COMMSET baseline of the primary source. In fast mode the artifact is
// memoized per (workload, variant, threads) — compilation is deterministic
// and the result is read-only, so the campaigns share one copy.
func Compile(wl *workloads.Workload, variant string, threads int) (*Compiled, error) {
	if interpFast() {
		return compileCached(wl, variant, threads)
	}
	return compileUncached(wl, variant, threads)
}

func compileUncached(wl *workloads.Workload, variant string, threads int) (*Compiled, error) {
	src := ""
	switch variant {
	case "noannot":
		src = workloads.StripPragmas(wl.Primary())
	default:
		src = wl.Variant(variant)
	}
	if src == "" {
		return nil, fmt.Errorf("bench: workload %s has no variant %q", wl.Name, variant)
	}

	tables := freshWorld(wl)
	effTable := tables.EffectTable()
	if variant == "noannot" {
		// The non-COMMSET baseline compiler treats library calls
		// conservatively, as the paper's baseline tools must.
		effTable = tables.ConservativeEffectTable()
	}
	c, err := pipeline.Compile(pipeline.Options{
		File:    source.NewFile(fmt.Sprintf("%s[%s]", wl.Name, variant), src),
		Sigs:    tables.Sigs(),
		Effects: effTable,
	})
	if err != nil {
		// Return the partial compilation so drivers can render the full
		// diagnostic list, not just the first error.
		return &Compiled{WL: wl, Variant: variant, C: c},
			fmt.Errorf("bench: compile %s/%s: %w", wl.Name, variant, err)
	}

	// Profiling run (fresh world, consumed).
	prof, err := profile.Run(c, freshWorld(wl).Fns())
	if err != nil {
		return nil, fmt.Errorf("bench: profile %s/%s: %w", wl.Name, variant, err)
	}
	hot := prof.Hottest()
	if hot < 0 {
		return nil, fmt.Errorf("bench: %s/%s has no loop in main", wl.Name, variant)
	}

	la, err := c.AnalyzeLoop("main", hot)
	if err != nil {
		return nil, fmt.Errorf("bench: analyze %s/%s: %w", wl.Name, variant, err)
	}
	if la.Units == nil {
		return nil, fmt.Errorf("bench: %s/%s hot loop has no unit record", wl.Name, variant)
	}

	cp := &Compiled{
		WL: wl, Variant: variant, C: c, LA: la, Prof: prof,
		Scheds: transform.Schedules(la, prof.Weights, threads),
	}

	// Sequential baseline run, kept for validation.
	seqWorld := freshWorld(wl)
	r, err := exec.RunSequential(exec.Config{
		Prog:     c.Low.Prog,
		Builtins: seqWorld.Fns(),
		Model:    c.Model,
		Cost:     des.DefaultCostModel(),
	})
	if err != nil {
		return nil, fmt.Errorf("bench: sequential %s/%s: %w", wl.Name, variant, err)
	}
	cp.SeqCost = r.VirtualTime
	cp.SeqWorld = seqWorld
	return cp, nil
}

// Schedule returns the generated schedule of the given kind, or nil.
func (cp *Compiled) Schedule(kind transform.Kind) *transform.Schedule {
	for _, s := range cp.Scheds {
		if s.Kind == kind {
			return s
		}
	}
	return nil
}

// Measurement is one executed configuration.
type Measurement struct {
	Workload string
	Variant  string
	Kind     transform.Kind
	Schedule string
	Sync     exec.SyncMode
	Threads  int

	// Tune is the adaptive tuning the run executed under (zero for the
	// paper's fixed policies; the auto-scheduler's pick for RunAuto).
	Tune transform.Tuning

	VirtualTime int64
	Speedup     float64
	Validated   bool

	// World is the run's final substrate (console output, logs).
	World *builtins.World
}

// Run executes one schedule/sync/threads configuration on a fresh world and
// validates the result against the sequential run. ordered output is
// asserted when the schedule keeps the loop's output units in sequential
// stages (Sequential and DSWP always; PS-DSWP's sequential stages preserve
// iteration order; DOALL never).
func (cp *Compiled) Run(kind transform.Kind, mode exec.SyncMode, threads int) (*Measurement, error) {
	return cp.run(kind, mode, threads, false)
}

// RunAuto is Run with the profile-guided auto-scheduler enabled: the
// executor calibrates schedule/chunk/batch/privatization candidates on
// short slices (each against a throwaway world) and the measured run
// adopts the fastest tuning.
func (cp *Compiled) RunAuto(kind transform.Kind, mode exec.SyncMode, threads int) (*Measurement, error) {
	return cp.run(kind, mode, threads, true)
}

func (cp *Compiled) run(kind transform.Kind, mode exec.SyncMode, threads int, auto bool) (*Measurement, error) {
	if interpFast() {
		return cp.runCached(kind, mode, threads, auto)
	}
	return cp.runUncached(kind, mode, threads, auto)
}

func (cp *Compiled) runUncached(kind transform.Kind, mode exec.SyncMode, threads int, auto bool) (*Measurement, error) {
	sched := cp.Schedule(kind)
	if sched == nil {
		return nil, fmt.Errorf("bench: %s/%s: schedule %v not applicable", cp.WL.Name, cp.Variant, kind)
	}
	world := freshWorld(cp.WL)
	cfg := exec.Config{
		Prog:     cp.C.Low.Prog,
		Builtins: world.Fns(),
		Model:    cp.C.Model,
		Cost:     des.DefaultCostModel(),
	}
	if auto {
		cfg.Auto = &exec.AutoOptions{
			Fresh:    func() map[string]interp.BuiltinFn { return freshWorld(cp.WL).Fns() },
			Parallel: parDo,
		}
	}
	res, err := exec.Run(cfg, cp.LA, sched, mode, threads)
	if err != nil {
		return nil, fmt.Errorf("bench: run %s/%s %v/%v/%d: %w", cp.WL.Name, cp.Variant, kind, mode, threads, err)
	}

	ordered := kind == transform.Sequential || kind == transform.DSWP
	if err := cp.WL.Validate(cp.SeqWorld, world, ordered); err != nil {
		return nil, fmt.Errorf("bench: validate %s/%s %v/%v/%d: %w", cp.WL.Name, cp.Variant, kind, mode, threads, err)
	}

	m := &Measurement{
		Workload: cp.WL.Name, Variant: cp.Variant,
		Kind: kind, Schedule: res.Schedule, Sync: mode, Threads: threads,
		Tune:        res.Tune,
		VirtualTime: res.VirtualTime,
		Validated:   true,
		World:       world,
	}
	if res.VirtualTime > 0 {
		m.Speedup = float64(cp.SeqCost) / float64(res.VirtualTime)
	}
	return m, nil
}

// SchemeLabel renders a Figure 6 legend label.
func SchemeLabel(variant string, kind transform.Kind, sched string, mode exec.SyncMode) string {
	var b strings.Builder
	if variant != "noannot" {
		b.WriteString("Comm-")
	}
	if kind == transform.DOALL {
		b.WriteString("DOALL")
	} else {
		b.WriteString(sched)
	}
	fmt.Fprintf(&b, " + %s", mode)
	return b.String()
}
