package bench

import (
	"fmt"
	"io"
	"math"

	"repro/internal/transform"
	"repro/internal/vm/exec"
)

// Claim is one qualitative result from the paper's Section 5 narrative,
// checked against this reproduction's measurements.
type Claim struct {
	ID     string
	Text   string
	Holds  bool
	Detail string
}

// CheckClaims evaluates the per-program claims of Sections 5.1–5.8 against
// the Figure 6 measurements (figs must be in workloads.All() order and
// measured up to 8 threads).
func CheckClaims(figs []*Figure) []Claim {
	byName := map[string]*Figure{}
	for _, f := range figs {
		byName[f.WL.Name] = f
	}
	var claims []Claim
	add := func(id, text string, holds bool, detail string) {
		claims = append(claims, Claim{ID: id, Text: text, Holds: holds, Detail: detail})
	}
	at8 := func(s *Series) float64 {
		if s == nil {
			return 0
		}
		return s.At(8)
	}

	// §2/§5: md5sum — DOALL outperforms the deterministic PS-DSWP schedule.
	if f := byName["md5sum"]; f != nil {
		doall := bestOf(f, "comm", transform.DOALL)
		ps := bestOf(f, "det", transform.PSDSWP)
		add("md5sum-doall-vs-psdswp",
			"md5sum: DOALL outperforms the deterministic PS-DSWP schedule",
			at8(doall) > at8(ps) && at8(doall) > 4,
			fmt.Sprintf("DOALL %.2fx vs PS-DSWP %.2fx (paper: 7.6x vs 5.8x)", at8(doall), at8(ps)))
	}

	// §5.1: 456.hmmer — spin beats mutex and TM under RNG contention.
	if f := byName["456.hmmer"]; f != nil {
		spin := f.FindSeries("comm", transform.DOALL, exec.SyncSpin)
		mutex := f.FindSeries("comm", transform.DOALL, exec.SyncMutex)
		tm := f.FindSeries("comm", transform.DOALL, exec.SyncTM)
		add("hmmer-spin-best",
			"456.hmmer: DOALL+Spin beats DOALL+Mutex and DOALL+TM at 8 threads",
			at8(spin) >= at8(mutex) && at8(spin) >= at8(tm),
			fmt.Sprintf("spin %.2fx, mutex %.2fx, TM %.2fx (paper: 5.82x spin best)",
				at8(spin), at8(mutex), at8(tm)))
	}

	// §5.3: eclat — DOALL achieves high speedup despite pessimistic sync.
	if f := byName["eclat"]; f != nil {
		doall := bestOf(f, "comm", transform.DOALL)
		add("eclat-doall",
			"eclat: DOALL speedup is high despite pessimistic synchronization",
			at8(doall) > 5,
			fmt.Sprintf("DOALL %.2fx (paper: 7.4x)", at8(doall)))
	}

	// §5.4: em3d — DOALL inapplicable; COMMSET PS-DSWP far exceeds the
	// non-COMMSET pipeline.
	if f := byName["em3d"]; f != nil {
		ps := bestOf(f, "comm", transform.PSDSWP)
		noann := bestNoAnnot(f)
		add("em3d-psdswp",
			"em3d: COMMSET PS-DSWP greatly outperforms the non-COMMSET pipeline",
			at8(ps) > 3 && at8(ps) > 2*noann,
			fmt.Sprintf("PS-DSWP %.2fx vs non-COMMSET %.2fx (paper: 5.9x vs 1.2x)", at8(ps), noann))
	}

	// §5.5: potrace — the sequential-write mode limits the pipeline well
	// below DOALL.
	if f := byName["potrace"]; f != nil {
		doall := bestOf(f, "comm", transform.DOALL)
		ps := bestOf(f, "det", transform.PSDSWP)
		add("potrace-writes",
			"potrace: sequential image writes limit PS-DSWP below DOALL",
			at8(doall) > at8(ps),
			fmt.Sprintf("DOALL %.2fx vs PS-DSWP %.2fx (paper: 5.5x vs 2.2x)", at8(doall), at8(ps)))
	}

	// §5.6: kmeans — DOALL degrades under lock contention; PS-DSWP is best
	// at eight threads by moving the contended update to a sequential stage.
	if f := byName["kmeans"]; f != nil {
		doall := bestOf(f, "comm", transform.DOALL)
		ps := bestOf(f, "comm", transform.PSDSWP)
		add("kmeans-psdswp-best",
			"kmeans: PS-DSWP outperforms DOALL at 8 threads",
			at8(ps) > at8(doall),
			fmt.Sprintf("PS-DSWP %.2fx vs DOALL %.2fx (paper: 5.2x vs ~4x degraded)", at8(ps), at8(doall)))
	}

	// §5.7: url — DOALL outperforms the two-stage PS-DSWP variant.
	if f := byName["url"]; f != nil {
		doall := bestOf(f, "comm", transform.DOALL)
		ps := bestOf(f, "pipe", transform.PSDSWP)
		add("url-doall-best",
			"url: DOALL outperforms the two-stage PS-DSWP pipeline",
			at8(doall) > at8(ps) && at8(doall) > 5,
			fmt.Sprintf("DOALL %.2fx vs PS-DSWP %.2fx (paper: 7.7x vs 3.7x)", at8(doall), at8(ps)))
	}

	// §5.8: overall — COMMSET geomean far exceeds the non-COMMSET geomean.
	commGeo, noannGeo := GeoPairAt(figs, 8)
	add("geomean",
		"geomean: COMMSET speedup far exceeds best non-COMMSET parallelization",
		commGeo > 3.5 && commGeo > 2.5*noannGeo,
		fmt.Sprintf("COMMSET %.2fx vs non-COMMSET %.2fx (paper: 5.7x vs 1.49x)", commGeo, noannGeo))
	return claims
}

// bestOf returns the best series of the given variant and kind.
func bestOf(f *Figure, variant string, kind transform.Kind) *Series {
	var best *Series
	for _, s := range f.Series {
		if s.Variant == variant && s.Kind == kind {
			if best == nil || s.At(len(s.Speedups)) > best.At(len(best.Speedups)) {
				best = s
			}
		}
	}
	return best
}

// bestNoAnnot returns the best non-COMMSET speedup at max threads.
func bestNoAnnot(f *Figure) float64 {
	best := 1.0
	for _, s := range f.Series {
		if s.Variant == "noannot" && s.At(len(s.Speedups)) > best {
			best = s.At(len(s.Speedups))
		}
	}
	return best
}

// GeoPairAt computes the geomean of best COMMSET and best non-COMMSET
// speedups at the given thread count.
func GeoPairAt(figs []*Figure, threads int) (comm, noann float64) {
	comm, noann = 1, 1
	if len(figs) == 0 {
		return
	}
	var clog, nlog float64
	for _, f := range figs {
		cbest, nbest := 1.0, 1.0
		for _, s := range f.Series {
			v := s.At(threads)
			if s.Variant == "noannot" {
				if v > nbest {
					nbest = v
				}
			} else if v > cbest {
				cbest = v
			}
		}
		clog += logOf(cbest)
		nlog += logOf(nbest)
	}
	n := float64(len(figs))
	return expOf(clog / n), expOf(nlog / n)
}

// PrintClaims renders the claim checklist.
func PrintClaims(w io.Writer, claims []Claim) {
	fmt.Fprintln(w, "Section 5 qualitative claims:")
	for _, c := range claims {
		status := "HOLDS "
		if !c.Holds {
			status = "DIFFERS"
		}
		fmt.Fprintf(w, "  [%s] %s\n          %s\n", status, c.Text, c.Detail)
	}
}

func logOf(v float64) float64 {
	if v <= 0 {
		v = 1
	}
	return math.Log(v)
}

func expOf(v float64) float64 { return math.Exp(v) }
