package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/builtins"
	"repro/internal/pipeline"
	"repro/internal/source"
	"repro/internal/workloads"
)

// VetPrecision is the analyzer's precision-and-recall gate: it runs every
// check over the benchmark workloads and the seeded precision corpus
// (internal/analysis/testdata/corpus), counts diagnostics per check, and
// fails when a seeded true positive is no longer reported, a resolved
// false positive reappears, or a workload's published annotations draw a
// warning. The per-check counts are the CI artifact that makes precision
// drift visible across commits.

// CheckCounts tallies diagnostics of one analyzer check by severity, with
// the accumulated wall-clock time the check spent across all runs.
type CheckCounts struct {
	Errors   int     `json:"errors"`
	Warnings int     `json:"warnings"`
	Notes    int     `json:"notes"`
	TimeMS   float64 `json:"time_ms"`
}

func (c *CheckCounts) add(d *source.Diagnostic) {
	switch d.Sev {
	case source.SevError:
		c.Errors++
	case source.SevWarning:
		c.Warnings++
	default:
		c.Notes++
	}
}

// PrecisionReport is the JSON artifact VetPrecision emits.
type PrecisionReport struct {
	Workloads     int `json:"workloads"`
	CorpusEntries int `json:"corpus_entries"`
	// TruePositives / FalsePositivesHeld count corpus expectations that
	// held: seeded findings still reported, resolved false positives still
	// absent.
	TruePositives      int `json:"true_positives"`
	FalsePositivesHeld int `json:"false_positives_held"`
	// CommutesHeld / RefutesHeld count the commutativity verifier's pins
	// that held: vet:commutes entries that still verify under both orders,
	// vet:refutes entries still refuted with a counterexample. The CI
	// precision job fails on any regression of either.
	CommutesHeld int `json:"commutes_held"`
	RefutesHeld  int `json:"refutes_held"`
	// Per-check diagnostic counts over the corpus and over the workload
	// variants, keyed by check name (unsound, race, lint, commute).
	Corpus   map[string]*CheckCounts `json:"corpus"`
	Workload map[string]*CheckCounts `json:"workload"`
	// CannotDecide counts the commute verifier's cannot-decide warnings
	// (the dynamic sanitizer's discharge targets), keyed by
	// workload/variant — every variant is listed, zero or not — and by
	// corpus entry name for entries that drew at least one.
	CannotDecide map[string]int `json:"commute_cannot_decide"`
	Violations   []string       `json:"violations,omitempty"`
}

// isCannotDecide reports whether a diagnostic is a commute-unverified
// warning the verifier bailed on (as opposed to a concrete refutation).
func isCannotDecide(d *source.Diagnostic) bool {
	return d.Sev == source.SevWarning && strings.Contains(d.Msg, "commute-unverified: cannot decide")
}

// precisionChecks enumerates the analyzer passes in report order.
var precisionChecks = []struct {
	name   string
	checks analysis.Checks
}{
	{"unsound", analysis.Checks{Unsound: true}},
	{"race", analysis.Checks{Race: true}},
	{"lint", analysis.Checks{Lint: true}},
	{"commute", analysis.Checks{Commute: true}},
}

// VetPrecision runs the precision gate, prints a summary to out, and
// returns the report. The error is non-nil when any expectation is
// violated; jsonOut, when non-nil, receives the report as indented JSON
// either way.
func VetPrecision(out, jsonOut io.Writer, threads int) (*PrecisionReport, error) {
	rep := &PrecisionReport{
		Corpus:       map[string]*CheckCounts{},
		Workload:     map[string]*CheckCounts{},
		CannotDecide: map[string]int{},
	}
	for _, pc := range precisionChecks {
		rep.Corpus[pc.name] = &CheckCounts{}
		rep.Workload[pc.name] = &CheckCounts{}
	}

	// Corpus: every entry's expectations must hold against the combined
	// diagnostics; each pass's diagnostics are also counted separately.
	for _, e := range analysis.Corpus() {
		e := e
		c, err := compileVetSource(e.Name+".mc", e.Source)
		if err != nil {
			return nil, fmt.Errorf("bench: precision: compile %s: %w", e.Name, err)
		}
		all := &source.DiagList{}
		for _, pc := range precisionChecks {
			start := time.Now()
			diags, err := analysis.Run(c, analysis.Options{Checks: pc.checks, Threads: threads, Privatize: e.Privatize})
			rep.Corpus[pc.name].TimeMS += float64(time.Since(start)) / float64(time.Millisecond)
			if err != nil {
				return nil, fmt.Errorf("bench: precision: %s [%s]: %w", e.Name, pc.name, err)
			}
			for i := range diags.Diags {
				rep.Corpus[pc.name].add(&diags.Diags[i])
				if isCannotDecide(&diags.Diags[i]) {
					rep.CannotDecide[e.Name]++
				}
			}
			all.Diags = append(all.Diags, diags.Diags...)
		}
		all.Sort()
		rep.CorpusEntries++
		if bad := e.CheckCorpus(all); len(bad) > 0 {
			rep.Violations = append(rep.Violations, bad...)
		} else {
			rep.TruePositives += len(e.Expect)
			rep.FalsePositivesHeld += len(e.Forbid)
			if e.Clean && len(e.Forbid) == 0 {
				rep.FalsePositivesHeld++
			}
			if e.Commutes {
				rep.CommutesHeld++
			}
			if e.Refutes {
				rep.RefutesHeld++
			}
		}
	}

	// Workloads: the published annotations must stay warning-free under
	// every pass; notes are counted but allowed.
	for _, wl := range workloads.All() {
		rep.Workloads++
		for _, variant := range wl.Variants {
			wlKey := fmt.Sprintf("%s/%s", wl.Name, variant.Name)
			rep.CannotDecide[wlKey] = 0
			c, err := compileVetSource(fmt.Sprintf("%s[%s]", wl.Name, variant.Name), variant.Source)
			if err != nil {
				return nil, fmt.Errorf("bench: precision: compile %s/%s: %w", wl.Name, variant.Name, err)
			}
			for _, pc := range precisionChecks {
				start := time.Now()
				diags, err := analysis.Run(c, analysis.Options{Checks: pc.checks, Threads: threads})
				rep.Workload[pc.name].TimeMS += float64(time.Since(start)) / float64(time.Millisecond)
				if err != nil {
					return nil, fmt.Errorf("bench: precision: %s/%s [%s]: %w", wl.Name, variant.Name, pc.name, err)
				}
				for i := range diags.Diags {
					d := &diags.Diags[i]
					rep.Workload[pc.name].add(d)
					if isCannotDecide(d) {
						rep.CannotDecide[wlKey]++
					}
					if d.Sev >= source.SevWarning {
						rep.Violations = append(rep.Violations, fmt.Sprintf(
							"%s/%s [%s]: workload annotation drew %s: %s",
							wl.Name, variant.Name, pc.name, d.Sev, d.Msg))
					}
				}
			}
		}
	}
	sort.Strings(rep.Violations)

	fmt.Fprintf(out, "vet precision: %d corpus entries, %d workloads\n", rep.CorpusEntries, rep.Workloads)
	for _, pc := range precisionChecks {
		cc, wc := rep.Corpus[pc.name], rep.Workload[pc.name]
		fmt.Fprintf(out, "  %-8s corpus %3dE %3dW %3dN %7.1fms   workloads %3dE %3dW %3dN %7.1fms\n",
			pc.name, cc.Errors, cc.Warnings, cc.Notes, cc.TimeMS, wc.Errors, wc.Warnings, wc.Notes, wc.TimeMS)
	}
	fmt.Fprintf(out, "  %d true positives held, %d false positives held off\n",
		rep.TruePositives, rep.FalsePositivesHeld)
	fmt.Fprintf(out, "  %d commutes pins verified, %d refutes pins flagged\n",
		rep.CommutesHeld, rep.RefutesHeld)
	var cdTotal int
	var cdKeys []string
	for k, n := range rep.CannotDecide {
		if n > 0 {
			cdTotal += n
			cdKeys = append(cdKeys, fmt.Sprintf("%s:%d", k, n))
		}
	}
	sort.Strings(cdKeys)
	fmt.Fprintf(out, "  %d commute cannot-decide warnings (discharge targets)", cdTotal)
	if len(cdKeys) > 0 {
		fmt.Fprintf(out, ": %s", strings.Join(cdKeys, ", "))
	}
	fmt.Fprintln(out)

	if jsonOut != nil {
		enc := json.NewEncoder(jsonOut)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return nil, fmt.Errorf("bench: precision: write report: %w", err)
		}
	}
	if len(rep.Violations) > 0 {
		return rep, fmt.Errorf("bench: precision gate failed:\n  %s", strings.Join(rep.Violations, "\n  "))
	}
	return rep, nil
}

// compileVetSource compiles one source against the standard substrate.
func compileVetSource(name, src string) (*pipeline.Compiled, error) {
	w := builtins.NewWorld()
	return pipeline.Compile(pipeline.Options{
		File:    source.NewFile(name, src),
		Sigs:    w.Sigs(),
		Effects: w.EffectTable(),
	})
}
