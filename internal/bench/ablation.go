package bench

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/transform"
	"repro/internal/vm/exec"
	"repro/internal/workloads"
)

// AblationStep is one point of the annotation-ablation study: a progressively
// weaker annotation set for md5sum and the best schedule it still enables.
type AblationStep struct {
	Label    string
	Source   string
	WantKind transform.Kind // strongest schedule expected to survive
}

// AnnotationAblation builds the md5sum ablation ladder (DESIGN.md §5):
//
//  1. fully annotated            → DOALL
//  2. without SELF on print      → PS-DSWP with sequential print stage
//  3. without the named-block add → the fread block loses its memberships,
//     pinning it (and everything fs-dependent) into sequential stages
//  4. without any annotation     → sequential only
func AnnotationAblation() []AblationStep {
	wl := workloads.Md5sum()
	full := wl.Variant("comm")
	noAdd := strings.Replace(full,
		"#pragma commset add mdfile.READB to FSET(i), SSET(i)\n", "", 1)
	return []AblationStep{
		{Label: "full annotations", Source: full, WantKind: transform.DOALL},
		{Label: "no SELF on print (deterministic)", Source: wl.Variant("det"), WantKind: transform.PSDSWP},
		{Label: "no named-block enablement", Source: noAdd, WantKind: transform.PSDSWP},
		{Label: "no annotations", Source: workloads.StripPragmas(full), WantKind: transform.Sequential},
	}
}

// ablationWorkload wraps an ablation source as a throwaway workload.
func ablationWorkload(label, src string) *workloads.Workload {
	base := workloads.Md5sum()
	return &workloads.Workload{
		Name:     "md5sum-" + label,
		Variants: []workloads.Variant{{Name: "comm", Source: src}},
		Setup:    base.Setup,
		Validate: base.Validate,
		LibOK:    true,
	}
}

// RunAnnotationAblation measures the best achievable speedup at each
// ablation step and prints the ladder.
func RunAnnotationAblation(w io.Writer, threads int) ([]*Measurement, error) {
	fmt.Fprintf(w, "Annotation ablation (md5sum, %d threads):\n", threads)
	var out []*Measurement
	for _, step := range AnnotationAblation() {
		cp, err := Compile(ablationWorkload(slug(step.Label), step.Source), "comm", threads)
		if err != nil {
			return nil, fmt.Errorf("ablation %q: %w", step.Label, err)
		}
		var best *Measurement
		for _, kind := range parallelKinds {
			if cp.Schedule(kind) == nil {
				continue
			}
			m, err := cp.Run(kind, exec.SyncLib, threads)
			if err != nil {
				return nil, fmt.Errorf("ablation %q %v: %w", step.Label, kind, err)
			}
			if best == nil || m.Speedup > best.Speedup {
				best = m
			}
		}
		if best == nil {
			best = &Measurement{
				Workload: cp.WL.Name, Kind: transform.Sequential,
				Schedule: "Sequential", Speedup: 1, VirtualTime: cp.SeqCost,
			}
		}
		out = append(out, best)
		fmt.Fprintf(w, "  %-36s best %-24s %6.2fx\n", step.Label, best.Schedule, best.Speedup)
	}
	return out, nil
}

// SyncAblation measures one workload's strongest parallel schedule under
// every synchronization mechanism at the given thread count.
func SyncAblation(w io.Writer, wl *workloads.Workload, threads int) (map[exec.SyncMode]*Measurement, error) {
	cp, err := Compile(wl, "comm", threads)
	if err != nil {
		return nil, err
	}
	kind := transform.DOALL
	if cp.Schedule(kind) == nil {
		kind = transform.PSDSWP
	}
	if cp.Schedule(kind) == nil {
		return nil, fmt.Errorf("sync ablation: %s has no parallel schedule", wl.Name)
	}
	out := map[exec.SyncMode]*Measurement{}
	fmt.Fprintf(w, "Synchronization ablation (%s, %v, %d threads):\n", wl.Name, kind, threads)
	for _, mode := range []exec.SyncMode{exec.SyncMutex, exec.SyncSpin, exec.SyncTM, exec.SyncLib} {
		m, err := cp.Run(kind, mode, threads)
		if err != nil {
			return nil, err
		}
		out[mode] = m
		fmt.Fprintf(w, "  %-6s %6.2fx\n", mode, m.Speedup)
	}
	return out, nil
}

func slug(s string) string {
	s = strings.ToLower(s)
	s = strings.ReplaceAll(s, " ", "-")
	s = strings.ReplaceAll(s, "(", "")
	return strings.ReplaceAll(s, ")", "")
}
