package bench

import (
	"bytes"
	"testing"
)

// TestStealCampaignSmoke runs the CI-sized steal campaign: every cell must
// validate against the sequential reference, steal-enabled cells must
// replay bit-identically, and the acceptance gate must hold — under a ≥4x
// whole-loop straggler, steal-enabled DOALL finishes in ≤60% of the
// steal-disabled virtual time on at least three workloads.
func TestStealCampaignSmoke(t *testing.T) {
	var buf bytes.Buffer
	rep, err := StealCampaign(&buf, StealOptions{Threads: 8, Seed: 1, Smoke: true})
	if err != nil {
		t.Fatalf("campaign failed:\n%s%v", buf.String(), err)
	}
	sum := rep.Summary
	if sum.Runs == 0 {
		t.Fatal("campaign executed no runs")
	}
	if sum.Violations != 0 {
		t.Errorf("campaign recorded %d violations", sum.Violations)
	}
	if sum.Steals == 0 {
		t.Error("no cell granted a steal")
	}
	if sum.StragglerWins < 3 {
		t.Errorf("straggler gate: %d workloads at ≤0.60, want >= 3", sum.StragglerWins)
	}
	for _, c := range rep.Cells {
		if c.Plan == "none" && !c.Steal && c.Steals != 0 {
			t.Errorf("%s: steal-disabled cell granted %d steals", c.Workload, c.Steals)
		}
	}
}
