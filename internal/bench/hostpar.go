package bench

import (
	"runtime"
	"sync"
)

// HostWorkers is the number of host goroutines campaign harnesses may use
// to run independent campaign cells concurrently (the -hostpar flag).
// Zero or negative selects GOMAXPROCS. Campaign cells are deterministic
// per seed and share only read-only compile artifacts, so the worker
// count never changes any report: results are collected in submission
// order and every JSON artifact is byte-identical to a sequential run.
var HostWorkers = 1

// hostWorkers resolves HostWorkers to a concrete pool size.
func hostWorkers() int {
	if HostWorkers > 0 {
		return HostWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// parDo runs fn(i) for every i in [0, n) on a bounded worker pool and
// returns the first error in index order. fn must be safe to call
// concurrently with distinct indices; with a single worker everything
// runs sequentially on the calling goroutine, preserving the legacy
// execution order exactly.
func parDo(n int, fn func(i int) error) error {
	errs := make([]error, n)
	workers := hostWorkers()
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
	} else {
		if workers > n {
			workers = n
		}
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					errs[i] = fn(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
