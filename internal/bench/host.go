package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/vm/interp"
	"repro/internal/workloads"
)

// HostOptions configures HostReport.
type HostOptions struct {
	Threads  int
	Seed     uint64
	Smoke    bool
	JSONPath string
}

// HostWorkloadTiming is one workload's fast-vs-legacy measurement: the
// fixed simulation bundle (compile with its profiling and sequential runs,
// then one parallel run per applicable transform at the primary sync mode)
// executed once on the legacy stepper and once on the compiled fast path.
type HostWorkloadTiming struct {
	Workload string `json:"workload"`
	// SimCost estimates the virtual cost units the bundle simulates:
	// the sequential cost times the number of whole-program executions
	// (profiling run + sequential baseline + one run per transform).
	SimCost  int64   `json:"sim_cost"`
	LegacyMs float64 `json:"legacy_ms"`
	FastMs   float64 `json:"fast_ms"`
	Speedup  float64 `json:"speedup"`
	// LegacyNsPerCost / FastNsPerCost are host nanoseconds per simulated
	// cost unit — the simulator's hardware speed.
	LegacyNsPerCost float64 `json:"legacy_ns_per_cost"`
	FastNsPerCost   float64 `json:"fast_ns_per_cost"`
	// VTimeMatch asserts the two substrates produced bit-for-bit identical
	// virtual times for every run of the bundle.
	VTimeMatch bool `json:"vtime_match"`
}

// HostCampaignTiming is one campaign's wall-clock under both substrates.
type HostCampaignTiming struct {
	Campaign string  `json:"campaign"`
	LegacyMs float64 `json:"legacy_ms"`
	FastMs   float64 `json:"fast_ms"`
	Speedup  float64 `json:"speedup"`
}

// HostPerfReport is the machine-readable host-performance report behind
// BENCH_host.json: per-workload simulator speed, per-campaign wall-clock,
// and the suite-level fast-vs-legacy speedup, all measured in one process
// (legacy pass first, cold caches for both passes).
type HostPerfReport struct {
	Threads     int    `json:"threads"`
	Seed        uint64 `json:"seed"`
	Smoke       bool   `json:"smoke"`
	HostWorkers int    `json:"host_workers"`
	GoMaxProcs  int    `json:"gomaxprocs"`

	Workloads []HostWorkloadTiming `json:"workloads"`
	Campaigns []HostCampaignTiming `json:"campaigns"`

	// LegacyNsPerCost / FastNsPerCost aggregate the workload bundles:
	// total host nanoseconds over total simulated cost units.
	LegacyNsPerCost float64 `json:"legacy_ns_per_cost"`
	FastNsPerCost   float64 `json:"fast_ns_per_cost"`

	SuiteLegacyMs float64 `json:"suite_legacy_ms"`
	SuiteFastMs   float64 `json:"suite_fast_ms"`
	SuiteSpeedup  float64 `json:"suite_speedup"`

	AllVTimesMatch bool `json:"all_vtimes_match"`
}

// hostBundle runs one workload's measurement bundle on the current
// substrate (interp.FastEnabled decides which), bypassing the bench-level
// memos so the simulation itself is what gets timed. It returns the
// wall-clock, the bundle's simulated-cost estimate, and the virtual time
// of every run for the bit-for-bit comparison between passes.
func hostBundle(wl *workloads.Workload, threads int) (time.Duration, int64, map[string]int64, error) {
	start := time.Now()
	cp, err := compileUncached(wl, "comm", threads)
	if err != nil {
		return 0, 0, nil, err
	}
	vtimes := map[string]int64{"seq": cp.SeqCost}
	runs := int64(2) // the profiling run and the sequential baseline
	mode := wl.Syncs()[0]
	for _, kind := range campaignKinds {
		if cp.Schedule(kind) == nil {
			continue
		}
		m, err := cp.runUncached(kind, mode, threads, false)
		if err != nil {
			return 0, 0, nil, err
		}
		vtimes[kind.String()] = m.VirtualTime
		runs++
	}
	return time.Since(start), cp.SeqCost * runs, vtimes, nil
}

// hostCampaigns is the campaign suite the host benchmark times, in fixed
// order. Output goes to io.Discard and no JSON artifacts are written: only
// the wall-clock is of interest here.
func hostCampaigns(opts HostOptions) []struct {
	name string
	run  func(io.Writer) error
} {
	return []struct {
		name string
		run  func(io.Writer) error
	}{
		{"schedule", func(w io.Writer) error {
			_, err := PrintFigure6(w, opts.Threads, false)
			return err
		}},
		{"faults", func(w io.Writer) error {
			_, err := FaultCampaign(w, CampaignOptions{Threads: opts.Threads, Seed: opts.Seed, Smoke: opts.Smoke})
			return err
		}},
		{"service", func(w io.Writer) error {
			_, err := ServiceCampaign(w, ServiceOptions{Threads: opts.Threads, Seed: opts.Seed, Smoke: opts.Smoke})
			return err
		}},
		{"sanitize", func(w io.Writer) error {
			_, err := SanitizeCampaign(w, SanitizeOptions{Threads: opts.Threads, Smoke: opts.Smoke})
			return err
		}},
	}
}

// HostReport measures host wall-clock performance: every workload's
// simulation bundle and the full campaign suite, first on the legacy
// per-instruction stepper with sequential campaign cells (FastEnabled off,
// one host worker), then on the compiled fast path with the configured
// -hostpar pool. Both passes run in this process from cold caches; the
// fast pass must reproduce every legacy virtual time bit-for-bit.
func HostReport(out io.Writer, opts HostOptions) (*HostPerfReport, error) {
	if opts.Threads <= 0 {
		opts.Threads = 8
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	savedFast, savedWorkers := interp.FastEnabled, HostWorkers
	defer func() {
		interp.FastEnabled, HostWorkers = savedFast, savedWorkers
	}()

	rep := &HostPerfReport{
		Threads: opts.Threads, Seed: opts.Seed, Smoke: opts.Smoke,
		HostWorkers: savedWorkers, GoMaxProcs: runtime.GOMAXPROCS(0),
		AllVTimesMatch: true,
	}
	wls := workloads.All()
	campaigns := hostCampaigns(opts)

	type pass struct {
		wlDur   []time.Duration
		wlCost  []int64
		wlVt    []map[string]int64
		campDur []time.Duration
	}
	runPass := func(fast bool) (*pass, error) {
		interp.FastEnabled = fast
		if fast {
			HostWorkers = savedWorkers
		} else {
			HostWorkers = 1
		}
		resetCaches()
		p := &pass{
			wlDur: make([]time.Duration, len(wls)), wlCost: make([]int64, len(wls)),
			wlVt: make([]map[string]int64, len(wls)), campDur: make([]time.Duration, len(campaigns)),
		}
		for i, wl := range wls {
			d, cost, vt, err := hostBundle(wl, opts.Threads)
			if err != nil {
				return nil, fmt.Errorf("bench: host bundle %s: %w", wl.Name, err)
			}
			p.wlDur[i], p.wlCost[i], p.wlVt[i] = d, cost, vt
		}
		for i, c := range campaigns {
			// Collect before starting the clock so GC debt left by the
			// previous campaign (or, in the fast pass, by filling the memo
			// caches) is not charged to this one.
			runtime.GC()
			start := time.Now()
			if err := c.run(io.Discard); err != nil {
				return nil, fmt.Errorf("bench: host campaign %s: %w", c.name, err)
			}
			p.campDur[i] = time.Since(start)
		}
		return p, nil
	}

	fmt.Fprintf(out, "Host performance: legacy stepper vs compiled fast path (GOMAXPROCS=%d, hostpar %d)\n",
		rep.GoMaxProcs, savedWorkers)
	legacy, err := runPass(false)
	if err != nil {
		return nil, err
	}
	fast, err := runPass(true)
	if err != nil {
		return nil, err
	}

	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	ratio := func(a, b float64) float64 {
		if b <= 0 {
			return 0
		}
		return a / b
	}

	var totLegacyNs, totFastNs, totCost float64
	fmt.Fprintf(out, "  %-10s %10s %10s %8s %7s %12s %12s  %s\n",
		"workload", "legacy-ms", "fast-ms", "speedup", "Mcost", "legacy-ns/cu", "fast-ns/cu", "vtime")
	for i, wl := range wls {
		t := HostWorkloadTiming{
			Workload: wl.Name,
			SimCost:  legacy.wlCost[i],
			LegacyMs: ms(legacy.wlDur[i]),
			FastMs:   ms(fast.wlDur[i]),
		}
		t.Speedup = ratio(t.LegacyMs, t.FastMs)
		t.LegacyNsPerCost = ratio(float64(legacy.wlDur[i].Nanoseconds()), float64(t.SimCost))
		t.FastNsPerCost = ratio(float64(fast.wlDur[i].Nanoseconds()), float64(t.SimCost))
		t.VTimeMatch = len(legacy.wlVt[i]) == len(fast.wlVt[i])
		for k, v := range legacy.wlVt[i] {
			if fast.wlVt[i][k] != v {
				t.VTimeMatch = false
			}
		}
		if !t.VTimeMatch {
			rep.AllVTimesMatch = false
		}
		totLegacyNs += float64(legacy.wlDur[i].Nanoseconds())
		totFastNs += float64(fast.wlDur[i].Nanoseconds())
		totCost += float64(t.SimCost)
		rep.Workloads = append(rep.Workloads, t)
		match := "match"
		if !t.VTimeMatch {
			match = "DRIFT"
		}
		fmt.Fprintf(out, "  %-10s %10.1f %10.1f %7.2fx %7.1f %12.1f %12.1f  %s\n",
			t.Workload, t.LegacyMs, t.FastMs, t.Speedup, float64(t.SimCost)/1e6,
			t.LegacyNsPerCost, t.FastNsPerCost, match)
	}
	rep.LegacyNsPerCost = ratio(totLegacyNs, totCost)
	rep.FastNsPerCost = ratio(totFastNs, totCost)

	fmt.Fprintf(out, "  %-10s %10s %10s %8s\n", "campaign", "legacy-ms", "fast-ms", "speedup")
	for i, c := range campaigns {
		t := HostCampaignTiming{
			Campaign: c.name,
			LegacyMs: ms(legacy.campDur[i]),
			FastMs:   ms(fast.campDur[i]),
		}
		t.Speedup = ratio(t.LegacyMs, t.FastMs)
		rep.SuiteLegacyMs += t.LegacyMs
		rep.SuiteFastMs += t.FastMs
		rep.Campaigns = append(rep.Campaigns, t)
		fmt.Fprintf(out, "  %-10s %10.1f %10.1f %7.2fx\n", t.Campaign, t.LegacyMs, t.FastMs, t.Speedup)
	}
	rep.SuiteSpeedup = ratio(rep.SuiteLegacyMs, rep.SuiteFastMs)
	fmt.Fprintf(out, "  suite: legacy %.1fms, fast %.1fms, %.2fx; simulator %.1f -> %.1f ns/cost-unit; vtimes match=%v\n",
		rep.SuiteLegacyMs, rep.SuiteFastMs, rep.SuiteSpeedup,
		rep.LegacyNsPerCost, rep.FastNsPerCost, rep.AllVTimesMatch)

	if !rep.AllVTimesMatch {
		return rep, fmt.Errorf("bench: fast-path virtual time drifted from the legacy stepper")
	}
	if opts.JSONPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return rep, err
		}
		if err := os.WriteFile(opts.JSONPath, append(data, '\n'), 0o644); err != nil {
			return rep, err
		}
		fmt.Fprintf(out, "wrote %s\n", opts.JSONPath)
	}
	return rep, nil
}
