package bench

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/transform"
	"repro/internal/vm/exec"
	"repro/internal/workloads"
)

// Series is one Figure 6 line: a scheme's speedup at 1..N threads.
type Series struct {
	Label    string
	Variant  string
	Kind     transform.Kind
	Sync     exec.SyncMode
	Speedups []float64 // index 0 = 1 thread

	// Schedule is the executed schedule label at max threads, including
	// any auto-selected tuning (e.g. "DOALL {chunked(8)+priv}").
	Schedule string
}

// At returns the speedup at the given thread count.
func (s *Series) At(threads int) float64 {
	if threads < 1 || threads > len(s.Speedups) {
		return 0
	}
	return s.Speedups[threads-1]
}

// Figure is the data behind one subfigure of Figure 6.
type Figure struct {
	WL     *workloads.Workload
	Series []*Series
}

// seriesSpec selects which schemes each workload plots, mirroring the
// paper's legends: the COMMSET-enabled DOALL under each mechanism, the
// pipeline schedule of the determinism/pipeline variant, and the best
// non-COMMSET parallelization.
type seriesSpec struct {
	variant string
	kind    transform.Kind
	sync    exec.SyncMode
}

func specsFor(wl *workloads.Workload) []seriesSpec {
	var specs []seriesSpec
	cpCache := map[string]*Compiled{}
	getCompiled := func(variant string) *Compiled {
		if cp, ok := cpCache[variant]; ok {
			return cp
		}
		cp, err := Compile(wl, variant, 8)
		if err != nil {
			return nil
		}
		cpCache[variant] = cp
		return cp
	}

	for _, variant := range wl.Variants {
		cp := getCompiled(variant.Name)
		if cp == nil {
			continue
		}
		for _, kind := range parallelKinds {
			if cp.Schedule(kind) == nil {
				continue
			}
			syncs := wl.Syncs()
			if kind != transform.DOALL || variant.Name != "comm" {
				// Keep non-primary schemes to the workload's headline
				// mechanisms for legible figures.
				if wl.LibOK {
					syncs = []exec.SyncMode{exec.SyncSpin, exec.SyncLib}
				} else {
					syncs = []exec.SyncMode{exec.SyncSpin}
				}
			}
			for _, mode := range syncs {
				specs = append(specs, seriesSpec{variant: variant.Name, kind: kind, sync: mode})
			}
		}
	}
	// Best non-COMMSET parallelization (often sequential).
	if cp := getCompiled("noannot"); cp != nil {
		for _, kind := range parallelKinds {
			if cp.Schedule(kind) != nil {
				specs = append(specs, seriesSpec{variant: "noannot", kind: kind, sync: exec.SyncSpin})
			}
		}
	}
	return specs
}

// Figure6 measures the speedup-vs-threads series for one workload. With
// auto, every run goes through the profile-guided auto-scheduler.
func Figure6(wl *workloads.Workload, maxThreads int, auto bool) (*Figure, error) {
	fig := &Figure{WL: wl}
	compiled := map[string]*Compiled{}
	for _, spec := range specsFor(wl) {
		cp := compiled[spec.variant]
		if cp == nil {
			var err error
			cp, err = Compile(wl, spec.variant, maxThreads)
			if err != nil {
				return nil, err
			}
			compiled[spec.variant] = cp
		}
		if cp.Schedule(spec.kind) == nil {
			continue
		}
		ser := &Series{
			Variant: spec.variant,
			Kind:    spec.kind,
			Sync:    spec.sync,
		}
		schedLabel := ""
		for t := 1; t <= maxThreads; t++ {
			m, err := cp.run(spec.kind, spec.sync, t, auto)
			if err != nil {
				return nil, fmt.Errorf("fig6 %s %v+%v@%d: %w", wl.Name, spec.kind, spec.sync, t, err)
			}
			ser.Speedups = append(ser.Speedups, m.Speedup)
			schedLabel = m.Schedule
		}
		ser.Schedule = schedLabel
		ser.Label = SchemeLabel(spec.variant, spec.kind, schedLabel, spec.sync)
		if spec.variant != "comm" && spec.variant != "noannot" {
			ser.Label += " (" + spec.variant + ")"
		}
		fig.Series = append(fig.Series, ser)
	}
	// Sort by speedup at max threads, descending, like the paper's legends.
	sort.SliceStable(fig.Series, func(i, j int) bool {
		return fig.Series[i].At(maxThreads) > fig.Series[j].At(maxThreads)
	})
	return fig, nil
}

// Best returns the figure's top series at the given thread count.
func (f *Figure) Best(threads int) *Series {
	var best *Series
	for _, s := range f.Series {
		if best == nil || s.At(threads) > best.At(threads) {
			best = s
		}
	}
	return best
}

// FindSeries returns the first series matching variant and kind, or nil.
func (f *Figure) FindSeries(variant string, kind transform.Kind, sync exec.SyncMode) *Series {
	for _, s := range f.Series {
		if s.Variant == variant && s.Kind == kind && s.Sync == sync {
			return s
		}
	}
	return nil
}

// PrintFigure6 renders every subfigure (a)–(h) plus the geomean (i).
// With auto, every run is auto-scheduled.
func PrintFigure6(w io.Writer, maxThreads int, auto bool) ([]*Figure, error) {
	var figs []*Figure
	for _, wl := range workloads.All() {
		fig, err := Figure6(wl, maxThreads, auto)
		if err != nil {
			return nil, err
		}
		figs = append(figs, fig)
		fmt.Fprintf(w, "\nFigure 6(%c): %s — speedup vs threads (paper best: %.1fx %s)\n",
			'a'+len(figs)-1, wl.Name, wl.PaperBest, wl.PaperScheme)
		fmt.Fprintf(w, "  %-34s", "scheme")
		for t := 1; t <= maxThreads; t++ {
			fmt.Fprintf(w, "%7d", t)
		}
		fmt.Fprintln(w)
		for _, s := range fig.Series {
			fmt.Fprintf(w, "  %-34s", s.Label)
			for _, v := range s.Speedups {
				fmt.Fprintf(w, "%7.2f", v)
			}
			fmt.Fprintln(w)
		}
	}

	// (i) geomean of the best COMMSET scheme vs best non-COMMSET scheme.
	fmt.Fprintf(w, "\nFigure 6(i): geomean speedups\n  %-34s", "scheme")
	for t := 1; t <= maxThreads; t++ {
		fmt.Fprintf(w, "%7d", t)
	}
	fmt.Fprintln(w)
	printGeo := func(label string, pick func(f *Figure, t int) float64) {
		fmt.Fprintf(w, "  %-34s", label)
		for t := 1; t <= maxThreads; t++ {
			var logsum float64
			for _, f := range figs {
				v := pick(f, t)
				if v <= 0 {
					v = 1
				}
				logsum += math.Log(v)
			}
			fmt.Fprintf(w, "%7.2f", math.Exp(logsum/float64(len(figs))))
		}
		fmt.Fprintln(w)
	}
	printGeo("Best COMMSET", func(f *Figure, t int) float64 {
		best := 1.0
		for _, s := range f.Series {
			if s.Variant != "noannot" && s.At(t) > best {
				best = s.At(t)
			}
		}
		return best
	})
	printGeo("Best Non-COMMSET", func(f *Figure, t int) float64 {
		best := 1.0
		for _, s := range f.Series {
			if s.Variant == "noannot" && s.At(t) > best {
				best = s.At(t)
			}
		}
		return best
	})
	return figs, nil
}
