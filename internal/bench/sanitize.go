package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/builtins"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/sanitize"
	"repro/internal/source"
	"repro/internal/transform"
	"repro/internal/vm/des"
	"repro/internal/vm/exec"
	"repro/internal/workloads"
)

// SanitizeOptions configures the sanitizer campaign.
type SanitizeOptions struct {
	Threads int
	// Smoke restricts the sweep to each workload's primary variant (the
	// CI-sized subset); transforms and sync modes are always swept in
	// full, since sanitizer cleanliness per cell is the gate.
	Smoke    bool
	JSONPath string
}

// SanitizeCell is one workload × transform × sync cell of the campaign.
type SanitizeCell struct {
	Workload string `json:"workload"`
	Variant  string `json:"variant"`
	Schedule string `json:"schedule"`
	Sync     string `json:"sync"`
	Threads  int    `json:"threads"`

	VirtualTime int64 `json:"virtual_time"`
	// VTimeMatch asserts the zero-cost property: the sanitized runs'
	// virtual times are bit-for-bit identical to the plain run's.
	VTimeMatch bool `json:"vtime_match"`

	Races      []sanitize.RaceReport  `json:"races,omitempty"`
	Candidates int                    `json:"candidates"`
	Pairs      []sanitize.PairVerdict `json:"pairs,omitempty"`
	Verified   int                    `json:"verified"`
	Violations int                    `json:"violations"`
	Clean      bool                   `json:"clean"`
}

// SanitizeNegative is one seeded-misannotation negative: a program whose
// annotation lies, which the sanitizer must refute with a concrete
// counterexample. Corpus negatives run sequentially under VerifyAll; the
// embedded parallel negative runs DOALL through detect + capture.
type SanitizeNegative struct {
	Name       string                 `json:"name"`
	Mode       string                 `json:"mode"` // verify-all | parallel
	Pairs      []sanitize.PairVerdict `json:"pairs,omitempty"`
	Violations int                    `json:"violations"`
	Flagged    bool                   `json:"flagged"`
}

// SanitizeReport is the machine-readable campaign result
// (BENCH_sanitize.json).
type SanitizeReport struct {
	Threads             int                `json:"threads"`
	Cells               []SanitizeCell     `json:"cells"`
	Negatives           []SanitizeNegative `json:"negatives"`
	CleanCells          int                `json:"clean_cells"`
	TotalCells          int                `json:"total_cells"`
	AllClean            bool               `json:"all_clean"`
	AllNegativesFlagged bool               `json:"all_negatives_flagged"`
	VTimeBitForBit      bool               `json:"vtime_bit_for_bit"`
}

// parallelNegativeSrc is the embedded parallel misannotation negative:
// two blocks share NSET, each commutes with its own instances (the
// per-block SELF sets), but g+1 and g*2 do not commute with each other —
// the NSET membership is a lie the static verifier refutes symbolically
// and the sanitizer must refute concretely from a parallel run.
const parallelNegativeSrc = `#pragma commset decl NSET

int g;

void main() {
	g = 1;
	for (int i = 0; i < 16; i++) {
		#pragma commset member NSET, SELF
		{
			g = g + 1;
		}
		#pragma commset member NSET, SELF
		{
			g = g * 2;
		}
	}
	print_int(g);
}
`

// SanitizeCampaign sweeps every workload × applicable transform × sync
// mode under the two-phase sanitizer, asserting each cell runs clean and
// that virtual time is untouched; then it runs every seeded
// misannotation negative (the refutes corpus plus the embedded parallel
// negative) and asserts each is flagged with a concrete counterexample.
func SanitizeCampaign(w io.Writer, opts SanitizeOptions) (*SanitizeReport, error) {
	threads := opts.Threads
	if threads <= 0 {
		threads = 8
	}
	rep := &SanitizeReport{Threads: threads, AllClean: true, AllNegativesFlagged: true, VTimeBitForBit: true}

	fmt.Fprintf(w, "Sanitizer campaign (%d threads): workloads × transforms × sync modes\n", threads)
	fmt.Fprintf(w, "  %-10s %-8s %-8s %-6s %12s %6s %6s %6s %6s  %s\n",
		"workload", "variant", "sched", "sync", "vtime", "races", "cand", "verif", "viol", "status")

	// Compile every swept variant, then run the workload × transform × sync
	// cells concurrently under -hostpar: each cell owns its fresh worlds
	// and monitors and shares only read-only compile artifacts. Cells are
	// replayed in submission order, so the table and JSON report are
	// byte-identical to a sequential run.
	parallelKinds := []transform.Kind{transform.DOALL, transform.DSWP, transform.PSDSWP}
	type compileSpec struct {
		wl      *workloads.Workload
		variant string
	}
	var toCompile []compileSpec
	for _, wl := range workloads.All() {
		variants := wl.Variants
		if opts.Smoke {
			variants = variants[:1]
		}
		for _, variant := range variants {
			toCompile = append(toCompile, compileSpec{wl, variant.Name})
		}
	}
	cps := make([]*Compiled, len(toCompile))
	if err := parDo(len(toCompile), func(i int) error {
		cp, err := Compile(toCompile[i].wl, toCompile[i].variant, threads)
		cps[i] = cp
		return err
	}); err != nil {
		return nil, err
	}

	type cellSpec struct {
		cp   *Compiled
		kind transform.Kind
		mode exec.SyncMode
	}
	var specs []cellSpec
	for i, tc := range toCompile {
		for _, kind := range parallelKinds {
			if cps[i].Schedule(kind) == nil {
				continue
			}
			for _, mode := range tc.wl.Syncs() {
				specs = append(specs, cellSpec{cps[i], kind, mode})
			}
		}
	}
	cells := make([]*SanitizeCell, len(specs))
	if err := parDo(len(specs), func(i int) error {
		cell, err := runSanitizedCell(specs[i].cp, specs[i].kind, specs[i].mode, threads)
		cells[i] = cell
		return err
	}); err != nil {
		return nil, err
	}

	for _, cell := range cells {
		rep.Cells = append(rep.Cells, *cell)
		rep.TotalCells++
		if cell.Clean {
			rep.CleanCells++
		} else {
			rep.AllClean = false
		}
		if !cell.VTimeMatch {
			rep.VTimeBitForBit = false
		}
		status := "clean"
		if !cell.Clean {
			status = "DIRTY"
		}
		if !cell.VTimeMatch {
			status += " VTIME-DRIFT"
		}
		fmt.Fprintf(w, "  %-10s %-8s %-8s %-6s %12d %6d %6d %6d %6d  %s\n",
			cell.Workload, cell.Variant, cell.Schedule, cell.Sync,
			cell.VirtualTime, len(cell.Races), cell.Candidates,
			cell.Verified, cell.Violations, status)
	}

	fmt.Fprintf(w, "\nMisannotation negatives (must be flagged dynamically):\n")
	negs, err := sanitizeNegatives()
	if err != nil {
		return nil, err
	}
	for _, n := range negs {
		rep.Negatives = append(rep.Negatives, n)
		if !n.Flagged {
			rep.AllNegativesFlagged = false
		}
		status := "flagged"
		if !n.Flagged {
			status = "MISSED"
		}
		fmt.Fprintf(w, "  %-28s %-10s %3d violation(s)  %s\n", n.Name, n.Mode, n.Violations, status)
	}

	fmt.Fprintf(w, "\nSummary: %d/%d cells clean, negatives flagged=%v, vtime bit-for-bit=%v\n",
		rep.CleanCells, rep.TotalCells, rep.AllNegativesFlagged, rep.VTimeBitForBit)

	if opts.JSONPath != "" {
		if err := writeSanitizeJSON(opts.JSONPath, rep); err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "wrote %s\n", opts.JSONPath)
	}
	if !rep.AllClean {
		return rep, fmt.Errorf("bench: sanitizer found races or commute violations in workload cells")
	}
	if !rep.VTimeBitForBit {
		return rep, fmt.Errorf("bench: sanitized run virtual time drifted from the plain run")
	}
	if !rep.AllNegativesFlagged {
		return rep, fmt.Errorf("bench: a seeded misannotation negative was not flagged dynamically")
	}
	return rep, nil
}

// SanitizeRun runs one configuration under the sanitizer and returns
// the cell: parallel kinds go through the two-phase detect/capture
// pipeline, Sequential through the VerifyAll oracle (which snapshots and
// replays every same-set member pair of the serial execution).
func SanitizeRun(cp *Compiled, kind transform.Kind, mode exec.SyncMode, threads int) (*SanitizeCell, error) {
	if kind == transform.Sequential {
		return runSanitizedSeq(cp)
	}
	return runSanitizedCell(cp, kind, mode, threads)
}

func runSanitizedSeq(cp *Compiled) (*SanitizeCell, error) {
	world := freshWorld(cp.WL)
	mon := sanitize.New(sanitize.VerifyAll, cp.C.Low.Prog, world)
	res, err := exec.RunSequentialSanitized(exec.Config{
		Prog:     cp.C.Low.Prog,
		Builtins: world.Fns(),
		Model:    cp.C.Model,
		Cost:     des.DefaultCostModel(),
	}, mon)
	if err != nil {
		return nil, fmt.Errorf("bench: sanitized sequential %s/%s: %w", cp.WL.Name, cp.Variant, err)
	}
	cell := &SanitizeCell{
		Workload: cp.WL.Name, Variant: cp.Variant,
		Schedule: transform.Sequential.String(), Sync: "-", Threads: 1,
		VirtualTime: res.VirtualTime,
		VTimeMatch:  res.VirtualTime == cp.SeqCost,
	}
	cell.Pairs = mon.VerifyPairs(func(c sanitize.Candidate) string {
		return fmt.Sprintf("commsetrun -workload %s -variant %s -schedule seq -sanitize # pair %s/%s gseq %d:%d",
			cp.WL.Name, cp.Variant, c.FnA, c.FnB, c.GseqA, c.GseqB)
	})
	cell.Candidates = len(cell.Pairs)
	for _, p := range cell.Pairs {
		switch p.Verdict {
		case sanitize.VerdictVerified:
			cell.Verified++
		case sanitize.VerdictViolation:
			cell.Violations++
		}
	}
	cell.Clean = cell.Violations == 0
	return cell, nil
}

// runSanitizedCell runs one cell three times: plain (the baseline virtual
// time), detect (races + oracle candidates), and — when candidates exist
// — capture (pre-state snapshots + both-order replay).
func runSanitizedCell(cp *Compiled, kind transform.Kind, mode exec.SyncMode, threads int) (*SanitizeCell, error) {
	plain, err := cp.Run(kind, mode, threads)
	if err != nil {
		return nil, err
	}

	runWith := func(mon *sanitize.Monitor, world *builtins.World) (int64, error) {
		cfg := exec.Config{
			Prog:     cp.C.Low.Prog,
			Builtins: world.Fns(),
			Model:    cp.C.Model,
			Cost:     des.DefaultCostModel(),
			Sanitize: mon,
		}
		res, err := exec.Run(cfg, cp.LA, cp.Schedule(kind), mode, threads)
		if err != nil {
			return 0, fmt.Errorf("bench: sanitized run %s/%s %v/%v: %w", cp.WL.Name, cp.Variant, kind, mode, err)
		}
		return res.VirtualTime, nil
	}

	detectWorld := freshWorld(cp.WL)
	det := sanitize.New(sanitize.Detect, cp.C.Low.Prog, detectWorld)
	vtDetect, err := runWith(det, detectWorld)
	if err != nil {
		return nil, err
	}

	cell := &SanitizeCell{
		Workload: cp.WL.Name, Variant: cp.Variant,
		Schedule: kind.String(), Sync: mode.String(), Threads: threads,
		VirtualTime: plain.VirtualTime,
		VTimeMatch:  vtDetect == plain.VirtualTime,
		Races:       det.Races(),
		Candidates:  len(det.Candidates()),
	}

	if cands := det.Candidates(); len(cands) > 0 {
		capWorld := freshWorld(cp.WL)
		capMon := sanitize.NewCapture(cp.C.Low.Prog, capWorld, cands)
		vtCap, err := runWith(capMon, capWorld)
		if err != nil {
			return nil, err
		}
		if vtCap != plain.VirtualTime {
			cell.VTimeMatch = false
		}
		replay := func(c sanitize.Candidate) string {
			return fmt.Sprintf("commsetrun -workload %s -variant %s -schedule %s -sync %s -threads %d -sanitize # pair %s/%s gseq %d:%d",
				cp.WL.Name, cp.Variant, kindFlag(kind), syncFlag(mode), threads, c.FnA, c.FnB, c.GseqA, c.GseqB)
		}
		cell.Pairs = capMon.ReplayCandidates(cands, replay)
		for _, p := range cell.Pairs {
			switch p.Verdict {
			case sanitize.VerdictVerified:
				cell.Verified++
			case sanitize.VerdictViolation:
				cell.Violations++
			}
		}
	}
	cell.Clean = len(cell.Races) == 0 && cell.Violations == 0
	return cell, nil
}

// sanitizeNegatives runs every seeded misannotation negative: the
// refutes family of the precision corpus under VerifyAll, plus the
// embedded parallel negative through the two-phase detect/capture path.
func sanitizeNegatives() ([]SanitizeNegative, error) {
	var refutes []analysis.CorpusEntry
	for _, e := range analysis.Corpus() {
		if e.Refutes {
			refutes = append(refutes, e)
		}
	}
	// Each negative compiles and replays its own program; the corpus cases
	// and the embedded parallel negative run concurrently under -hostpar
	// and are collected in corpus order.
	out := make([]SanitizeNegative, len(refutes)+1)
	if err := parDo(len(refutes)+1, func(i int) error {
		if i == len(refutes) {
			par, err := parallelNegative()
			if err != nil {
				return err
			}
			out[i] = *par
			return nil
		}
		e := refutes[i]
		pairs, err := VerifyAllSource(e.Name+".mc", e.Source, func(c sanitize.Candidate) string {
			return fmt.Sprintf("commsetvet -sanitize-out report.json internal/analysis/testdata/corpus/%s.mc # pair gseq %d:%d",
				e.Name, c.GseqA, c.GseqB)
		})
		if err != nil {
			return fmt.Errorf("bench: negative %s: %w", e.Name, err)
		}
		n := SanitizeNegative{Name: e.Name, Mode: "verify-all", Pairs: pairs}
		for _, p := range pairs {
			if p.Verdict == sanitize.VerdictViolation {
				n.Violations++
			}
		}
		n.Flagged = n.Violations > 0
		out[i] = n
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// parallelNegative runs the embedded misannotated program DOALL under
// detect + capture: its two NSET members race on the shared global, the
// monitor routes the pair to the oracle, and the replay must refute it.
func parallelNegative() (*SanitizeNegative, error) {
	tables := builtins.NewWorld()
	c, err := pipeline.Compile(pipeline.Options{
		File:    source.NewFile("parallel_negative.mc", parallelNegativeSrc),
		Sigs:    tables.Sigs(),
		Effects: tables.EffectTable(),
	})
	if err != nil {
		return nil, fmt.Errorf("bench: compile parallel negative: %w", err)
	}
	prof, err := profile.Run(c, builtins.NewWorld().Fns())
	if err != nil {
		return nil, err
	}
	la, err := c.AnalyzeLoop("main", prof.Hottest())
	if err != nil {
		return nil, err
	}
	scheds := transform.Schedules(la, prof.Weights, 4)
	var doall *transform.Schedule
	for _, s := range scheds {
		if s.Kind == transform.DOALL {
			doall = s
		}
	}
	if doall == nil {
		return nil, fmt.Errorf("bench: parallel negative has no DOALL schedule")
	}

	run := func(mon *sanitize.Monitor, world *builtins.World) error {
		cfg := exec.Config{
			Prog:     c.Low.Prog,
			Builtins: world.Fns(),
			Model:    c.Model,
			Cost:     des.DefaultCostModel(),
			Sanitize: mon,
		}
		_, err := exec.Run(cfg, la, doall, exec.SyncSpin, 4)
		return err
	}

	detWorld := builtins.NewWorld()
	det := sanitize.New(sanitize.Detect, c.Low.Prog, detWorld)
	if err := run(det, detWorld); err != nil {
		return nil, err
	}
	n := &SanitizeNegative{Name: "parallel_nset_rmw", Mode: "parallel"}
	if cands := det.Candidates(); len(cands) > 0 {
		capWorld := builtins.NewWorld()
		capMon := sanitize.NewCapture(c.Low.Prog, capWorld, cands)
		if err := run(capMon, capWorld); err != nil {
			return nil, err
		}
		n.Pairs = capMon.ReplayCandidates(cands, func(c sanitize.Candidate) string {
			return fmt.Sprintf("commsetbench -sanitize # embedded parallel negative, pair gseq %d:%d", c.GseqA, c.GseqB)
		})
		for _, p := range n.Pairs {
			if p.Verdict == sanitize.VerdictViolation {
				n.Violations++
			}
		}
	}
	n.Flagged = n.Violations > 0
	return n, nil
}

// VerifyAllSource compiles a source text and runs it sequentially under
// the VerifyAll monitor, returning the replay verdicts for every
// same-set member pair. This is the engine behind corpus negatives and
// commsetvet's -sanitize-out.
func VerifyAllSource(name, src string, replayCmd func(sanitize.Candidate) string) ([]sanitize.PairVerdict, error) {
	tables := builtins.NewWorld()
	c, err := pipeline.Compile(pipeline.Options{
		File:    source.NewFile(name, src),
		Sigs:    tables.Sigs(),
		Effects: tables.EffectTable(),
	})
	if err != nil {
		return nil, fmt.Errorf("compile %s: %w", name, err)
	}
	world := builtins.NewWorld()
	mon := sanitize.New(sanitize.VerifyAll, c.Low.Prog, world)
	cfg := exec.Config{
		Prog:     c.Low.Prog,
		Builtins: world.Fns(),
		Model:    c.Model,
		Cost:     des.DefaultCostModel(),
	}
	if _, err := exec.RunSequentialSanitized(cfg, mon); err != nil {
		return nil, fmt.Errorf("run %s: %w", name, err)
	}
	return mon.VerifyPairs(replayCmd), nil
}

func kindFlag(k transform.Kind) string {
	switch k {
	case transform.DOALL:
		return "doall"
	case transform.DSWP:
		return "dswp"
	case transform.PSDSWP:
		return "psdswp"
	}
	return strings.ToLower(k.String())
}

func syncFlag(m exec.SyncMode) string { return strings.ToLower(m.String()) }

func writeSanitizeJSON(path string, rep *SanitizeReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
