package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/faults"
	"repro/internal/transform"
	"repro/internal/vm/des"
	"repro/internal/vm/exec"
	"repro/internal/workloads"
)

// Steal campaign: straggler resilience of the always-on work-stealing layer.
//
// Every DOALL-capable workload runs a matrix of straggler plans × steal
// on/off pairs through the resilient executor. The steal-off cell is the
// control: the same seed, the same injected slowdown, the same schedule,
// only Tune.Steal differs. The campaign gates on the tentpole acceptance
// criterion — under a whole-loop ≥4x straggler, the steal-enabled run must
// finish in ≤60% of the steal-disabled virtual time on at least three
// workloads — and re-runs every steal-enabled cell under the same seed to
// assert the steal schedule is bit-for-bit deterministic.

// StealOptions configures StealCampaign.
type StealOptions struct {
	Threads int
	Seed    uint64
	// Smoke restricts the sweep to three workloads and two plans — the
	// CI-sized campaign (still wide enough for the three-workload gate).
	Smoke bool
	// JSONPath, when non-empty, additionally writes the machine-readable
	// StealReport (BENCH_steal.json) there.
	JSONPath string
}

// StealCell is one (workload, plan, steal) run of the report.
type StealCell struct {
	Workload string `json:"workload"`
	Plan     string `json:"plan"`
	Steal    bool   `json:"steal"`
	Outcome  string `json:"outcome"`
	Detail   string `json:"detail,omitempty"`

	VTime       int64 `json:"vtime,omitempty"`
	Steals      int   `json:"steals,omitempty"`
	Restarts    int   `json:"restarts,omitempty"`
	MTTR        int64 `json:"mttr,omitempty"`
	P99JoinSkew int64 `json:"p99_join_skew,omitempty"`

	// RatioVsNoSteal is set on steal-enabled cells: this cell's makespan
	// over the paired steal-disabled cell's. Under a qualifying straggler
	// plan the acceptance bar is ≤ 0.60.
	RatioVsNoSteal float64 `json:"ratio_vs_no_steal,omitempty"`
}

// StealSummary aggregates the campaign outcomes.
type StealSummary struct {
	Runs       int `json:"runs"`
	OK         int `json:"ok"`
	Violations int `json:"violations"`
	// Steals is the total number of granted steals across all cells.
	Steals int `json:"steals"`
	// StragglerWins counts workloads where some qualifying (whole-loop,
	// ≥4x) straggler plan met the ≤0.60 steal-speedup bar. The campaign
	// fails below three.
	StragglerWins int `json:"straggler_wins"`
}

// StealReport is the machine-readable campaign result behind
// BENCH_steal.json. CI uploads it as an artifact so straggler-resilience
// regressions show up as a diff, not a rerun.
type StealReport struct {
	Threads int          `json:"threads"`
	Seed    uint64       `json:"seed"`
	Smoke   bool         `json:"smoke"`
	Summary StealSummary `json:"summary"`
	Cells   []StealCell  `json:"cells"`
}

// WriteStealJSON writes the report to path and prints a one-line
// confirmation to w.
func WriteStealJSON(w io.Writer, path string, rep *StealReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s (%d cells, %d steals, %d straggler wins)\n",
		path, len(rep.Cells), rep.Summary.Steals, rep.Summary.StragglerWins)
	return nil
}

// StragglerPlans builds the steal campaign's fault plans against one DOALL
// victim role. The first two are the qualifying plans of the acceptance
// gate: the victim runs ≥4x slow for the whole loop. slow-late-6x starts
// the slowdown mid-loop (the steal layer must help even when the straggler
// appears after scheduling decisions are made); slow-crash composes a
// straggler with a transient crash of a different worker, exercising steals
// and checkpoint restarts on the same board.
func StragglerPlans(seed uint64, victim, crashVictim string) []faults.Plan {
	whole := 1 << 20 // covers any loop in the suite
	return []faults.Plan{
		{Name: "slow-4x", Seed: seed, Recoverable: true, Specs: []faults.Spec{
			{Kind: faults.Straggler, Thread: victim, After: 1, Count: whole, Factor: 4},
		}},
		{Name: "slow-8x", Seed: seed, Recoverable: true, Specs: []faults.Spec{
			{Kind: faults.Straggler, Thread: victim, After: 1, Count: whole, Factor: 8},
		}},
		{Name: "slow-late-6x", Seed: seed, Recoverable: true, Specs: []faults.Spec{
			{Kind: faults.Straggler, Thread: victim, After: 8, Count: whole, Factor: 6},
		}},
		{Name: "slow-crash", Seed: seed, Recoverable: true, Specs: []faults.Spec{
			{Kind: faults.Straggler, Thread: victim, After: 1, Count: whole, Factor: 4},
			{Kind: faults.Crash, Thread: crashVictim, After: 3},
		}},
	}
}

// stealQualifying marks the plans that carry the ≤0.60 acceptance gate.
var stealQualifying = map[string]bool{"slow-4x": true, "slow-8x": true}

// runStealCell executes one (workload, plan, steal) cell: a direct
// exec.Run — never the fast-mode memo, whose key ignores Tune — with the
// straggler/crash injector wired in, validated against the sequential
// reference. Steal-enabled cells run twice under the same seed and must
// reproduce the full Result bit-for-bit.
func runStealCell(cp *Compiled, threads int, plan *faults.Plan, steal bool) (StealCell, error) {
	cell := StealCell{Workload: cp.WL.Name, Plan: "none", Steal: steal}
	if plan != nil {
		cell.Plan = plan.Name
	}
	sched := cp.Schedule(transform.DOALL)
	mode := cp.WL.Syncs()[0]
	run := func() (*exec.Result, error) {
		w := freshWorld(cp.WL)
		cfg := exec.Config{
			Prog:      cp.C.Low.Prog,
			Builtins:  w.Fns(),
			Model:     cp.C.Model,
			Cost:      des.DefaultCostModel(),
			Recovery:  exec.DefaultRecovery(),
			Watchdog:  des.Watchdog{MaxEvents: 5_000_000},
			Effectful: Effectful(w),
			Tune:      transform.Tuning{Steal: steal},
		}
		if plan != nil {
			inj := faults.NewInjector(*plan)
			cfg.Builtins = inj.Wrap(w.Fns())
			cfg.PushDelay = inj.QueueDelay
			cfg.ExtraAborts = inj.ExtraAborts
			if plan.HasCrash() {
				cfg.CrashCheck = inj.CrashNow
			}
			if plan.HasStraggler() {
				cfg.Straggle = inj.SlowNow
			}
		}
		res, err := exec.Run(cfg, cp.LA, sched, mode, threads)
		if err != nil {
			return nil, err
		}
		// DOALL externalizes out of order; the multiset must still match.
		if err := cp.WL.Validate(cp.SeqWorld, w, false); err != nil {
			return nil, err
		}
		return res, nil
	}
	res, err := run()
	if err != nil {
		cell.Outcome, cell.Detail = "violation", err.Error()
		return cell, nil
	}
	if steal {
		res2, err2 := run()
		if err2 != nil {
			cell.Outcome, cell.Detail = "violation", fmt.Sprintf("determinism rerun failed: %v", err2)
			return cell, nil
		}
		j1, _ := json.Marshal(res)
		j2, _ := json.Marshal(res2)
		if string(j1) != string(j2) {
			cell.Outcome = "violation"
			cell.Detail = fmt.Sprintf("steal run is not deterministic (vtime %d vs %d, steals %d vs %d)",
				res.VirtualTime, res2.VirtualTime, res.Steals, res2.Steals)
			return cell, nil
		}
	}
	cell.Outcome = "ok"
	cell.VTime = res.VirtualTime
	cell.Steals = res.Steals
	cell.Restarts = res.Restarts
	cell.MTTR = mttrOf(res.RestartHistory)
	cell.P99JoinSkew = joinSkew(res.WorkerJoins)
	cell.Detail = fmt.Sprintf("vtime=%d steals=%d skew=%d", res.VirtualTime, res.Steals, cell.P99JoinSkew)
	if res.Restarts > 0 {
		cell.Detail += fmt.Sprintf(" restarts=%d", res.Restarts)
	}
	return cell, nil
}

// stealSmokeWorkloads is the CI-sized sweep: four DOALL workloads, enough
// for the three-workload acceptance gate with one slot of slack. potrace
// rides along as an informative floor case — its 72-trip loop spends a
// large share of each sweep in privatized loop control, which every
// adopted range must replay, so its steal-on ratio bottoms out near 0.7
// rather than under the 0.6 bar the work-dominated loops clear.
var stealSmokeWorkloads = []string{"md5sum", "kmeans", "url", "potrace"}

// StealCampaign sweeps DOALL workloads × straggler plans × {steal off, on}
// and writes BENCH_steal.json. Gates enforced on every cell: output
// multiset-identical to the sequential run, steal-enabled cells bit-for-bit
// deterministic under their seed; and across the report, some qualifying
// ≥4x whole-loop straggler plan must show steal-on finishing in ≤60% of the
// steal-off virtual time on at least three workloads.
func StealCampaign(out io.Writer, opts StealOptions) (*StealReport, error) {
	if opts.Threads <= 0 {
		opts.Threads = 8
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	var wls []*workloads.Workload
	if opts.Smoke {
		for _, name := range stealSmokeWorkloads {
			wls = append(wls, workloads.ByName(name))
		}
	} else {
		wls = workloads.All()
	}

	rep := &StealReport{Threads: opts.Threads, Seed: opts.Seed, Smoke: opts.Smoke}
	sum := &rep.Summary
	var violations []string

	fmt.Fprintf(out, "Steal campaign: %d workloads, seed %d, %d threads\n", len(wls), opts.Seed, opts.Threads)
	fmt.Fprintf(out, "  %-10s %-14s %-6s %12s %7s %7s %s\n", "workload", "plan", "steal", "vtime", "steals", "ratio", "outcome")

	cps := make([]*Compiled, len(wls))
	if err := parDo(len(wls), func(i int) error {
		cp, err := Compile(wls[i], "comm", opts.Threads)
		cps[i] = cp
		return err
	}); err != nil {
		return nil, err
	}

	// Flatten into independent (workload, plan, steal) runs so the sweep
	// parallelizes under -hostpar; results are recorded in submission order,
	// keeping the table and the JSON byte-identical to a sequential run.
	type stealRun struct {
		cp   *Compiled
		plan *faults.Plan
	}
	var runs []stealRun
	for wi := range wls {
		cp := cps[wi]
		if cp.Schedule(transform.DOALL) == nil {
			continue
		}
		roster := exec.CrashRoster(cp.Schedule(transform.DOALL), opts.Threads)
		if len(roster) < 3 {
			continue
		}
		plans := StragglerPlans(opts.Seed, roster[1], roster[2])
		if opts.Smoke {
			plans = []faults.Plan{plans[0], plans[3]}
		}
		for i := range plans {
			if err := plans[i].Validate(roster); err != nil {
				return nil, fmt.Errorf("bench: %w", err)
			}
		}
		runs = append(runs, stealRun{cp, nil})
		for i := range plans {
			runs = append(runs, stealRun{cp, &plans[i]})
		}
	}

	// Each run is an off/on pair; both halves share nothing but read-only
	// compile artifacts.
	cells := make([][2]StealCell, len(runs))
	if err := parDo(2*len(runs), func(i int) error {
		r := runs[i/2]
		cell, err := runStealCell(r.cp, opts.Threads, r.plan, i%2 == 1)
		cells[i/2][i%2] = cell
		return err
	}); err != nil {
		return nil, err
	}

	wins := map[string]bool{}
	for i := range cells {
		off, on := &cells[i][0], &cells[i][1]
		if off.Outcome == "ok" && on.Outcome == "ok" && off.VTime > 0 {
			on.RatioVsNoSteal = float64(on.VTime) / float64(off.VTime)
			if stealQualifying[on.Plan] && on.RatioVsNoSteal <= 0.60 {
				wins[on.Workload] = true
			}
		}
		for _, cell := range []*StealCell{off, on} {
			sum.Runs++
			if cell.Outcome == "ok" {
				sum.OK++
				sum.Steals += cell.Steals
			} else {
				sum.Violations++
				violations = append(violations, fmt.Sprintf("%s plan %s steal=%v: %s",
					cell.Workload, cell.Plan, cell.Steal, cell.Detail))
			}
			ratio := ""
			if cell.RatioVsNoSteal > 0 {
				ratio = fmt.Sprintf("%.2f", cell.RatioVsNoSteal)
			}
			fmt.Fprintf(out, "  %-10s %-14s %-6v %12d %7d %7s %s\n",
				cell.Workload, cell.Plan, cell.Steal, cell.VTime, cell.Steals, ratio, cell.Outcome)
			rep.Cells = append(rep.Cells, *cell)
		}
	}
	sum.StragglerWins = len(wins)

	if sum.StragglerWins < 3 {
		violations = append(violations, fmt.Sprintf(
			"straggler gate: steal-on finished in ≤60%% of steal-off time on only %d workloads (need ≥3)", sum.StragglerWins))
	}
	fmt.Fprintf(out, "  %d runs: %d ok, %d violations; %d steals granted; %d workloads met the ≤0.60 straggler bar\n",
		sum.Runs, sum.OK, sum.Violations, sum.Steals, sum.StragglerWins)
	if len(violations) > 0 {
		return rep, fmt.Errorf("bench: steal campaign failed:\n  %s", strings.Join(violations, "\n  "))
	}
	if opts.JSONPath != "" {
		if err := WriteStealJSON(out, opts.JSONPath, rep); err != nil {
			return rep, err
		}
	}
	return rep, nil
}
