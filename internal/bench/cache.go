package bench

import (
	"sync"

	"repro/internal/builtins"
	"repro/internal/transform"
	"repro/internal/vm/exec"
	"repro/internal/vm/interp"
	"repro/internal/workloads"
)

// Fast-mode memoization of benchmark artifacts. Compiling a workload
// variant (parse, analyze, profile run, sequential baseline run) and
// measuring a schedule cell are both pure functions of their inputs — the
// whole evaluation is deterministic by construction — yet the campaigns
// repeat them constantly: specsFor and Figure6 compile the same variants
// back-to-back, the sanitizer's plain runs duplicate Figure 6 cells, the
// claims pass re-measures the figures, and every campaign recompiles the
// workloads it sweeps. Fast mode (interp.FastEnabled) memoizes both; the
// legacy baseline bypasses the caches so the host benchmark measures the
// unmemoized harness.
//
// Entries use a per-key sync.Once so host-parallel campaign cells that
// race to the same key compute it exactly once, without serializing
// distinct keys behind one lock.

type compileKey struct {
	wl      string
	variant string
	threads int
}

type compileEntry struct {
	once sync.Once
	cp   *Compiled
	err  error
}

var (
	compileMu    sync.Mutex
	compileCache = map[compileKey]*compileEntry{}
)

func compileCached(wl *workloads.Workload, variant string, threads int) (*Compiled, error) {
	key := compileKey{wl.Name, variant, threads}
	compileMu.Lock()
	e := compileCache[key]
	if e == nil {
		e = &compileEntry{}
		compileCache[key] = e
	}
	compileMu.Unlock()
	e.once.Do(func() { e.cp, e.err = compileUncached(wl, variant, threads) })
	return e.cp, e.err
}

type runKey struct {
	kind    transform.Kind
	mode    exec.SyncMode
	threads int
	auto    bool
}

type runEntry struct {
	once sync.Once
	m    *Measurement
	err  error
}

func (cp *Compiled) runCached(kind transform.Kind, mode exec.SyncMode, threads int, auto bool) (*Measurement, error) {
	key := runKey{kind, mode, threads, auto}
	cp.runMu.Lock()
	if cp.runCache == nil {
		cp.runCache = map[runKey]*runEntry{}
	}
	e := cp.runCache[key]
	if e == nil {
		e = &runEntry{}
		cp.runCache[key] = e
	}
	cp.runMu.Unlock()
	e.once.Do(func() { e.m, e.err = cp.runUncached(kind, mode, threads, auto) })
	if e.err != nil {
		return nil, e.err
	}
	// Shallow copy: callers treat the measurement as read-only but may
	// hold it past later cache hits; the World pointer is shared (it is
	// never mutated after validation).
	m := *e.m
	return &m, nil
}

// interpFast reports whether fast-mode memoization applies.
func interpFast() bool { return interp.FastEnabled }

// resetCaches drops the bench-level compile/run memos and the substrate's
// fast-mode caches. The host benchmark calls it before each measurement
// pass so both passes start cold.
func resetCaches() {
	compileMu.Lock()
	compileCache = map[compileKey]*compileEntry{}
	compileMu.Unlock()
	builtins.ResetFastCaches()
}
