package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestVetWorkloadsClean: the shipped workload variants must pass the
// commsetvet -werror gate — zero diagnostics of any severity.
func TestVetWorkloadsClean(t *testing.T) {
	var buf bytes.Buffer
	if err := VetWorkloads(&buf, 4); err != nil {
		t.Fatalf("vet gate failed:\n%s%v", buf.String(), err)
	}
	if !strings.Contains(buf.String(), "variants clean") {
		t.Errorf("unexpected gate output: %q", buf.String())
	}
}

// TestSmokeCampaign runs the CI-sized fault campaign: every recoverable
// plan must end sequential-equivalent, every permanent plan diagnosed.
func TestSmokeCampaign(t *testing.T) {
	var buf bytes.Buffer
	rep, err := FaultCampaign(&buf, CampaignOptions{Threads: 4, Seed: 1, Smoke: true})
	if err != nil {
		t.Fatalf("campaign failed:\n%s%v", buf.String(), err)
	}
	sum := rep.Summary
	if sum.Runs == 0 {
		t.Fatal("campaign executed no runs")
	}
	if sum.Recovered == 0 {
		t.Errorf("no run exercised recovery: %+v", sum)
	}
	if sum.Diagnosed == 0 {
		t.Errorf("no permanent fault was diagnosed: %+v", sum)
	}
	if sum.Restarts == 0 {
		t.Errorf("no crash plan exercised a supervisor restart: %+v", sum)
	}
	if sum.Repartitioned == 0 {
		t.Errorf("no permanent crash exercised DOALL re-partitioning: %+v", sum)
	}
}

// TestCampaignDeterministic: the same seed must reproduce the identical
// campaign report byte for byte — outcomes, retry counts, diagnostics.
func TestCampaignDeterministic(t *testing.T) {
	render := func() string {
		var buf bytes.Buffer
		if _, err := FaultCampaign(&buf, CampaignOptions{Threads: 4, Seed: 7, Smoke: true}); err != nil {
			t.Fatalf("campaign failed:\n%s%v", buf.String(), err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Errorf("campaign report not reproducible:\n--- first ---\n%s--- second ---\n%s", a, b)
	}
}
