package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/builtins"
	"repro/internal/faults"
	"repro/internal/pipeline"
	"repro/internal/source"
	"repro/internal/transform"
	"repro/internal/vm/des"
	"repro/internal/vm/exec"
	"repro/internal/workloads"
)

// Effectful derives the builtins with externally visible writes from the
// substrate's effect table; the resilient executor refuses to re-execute a
// DOALL iteration that already completed one of them.
func Effectful(w *builtins.World) map[string]bool {
	out := map[string]bool{}
	for name, d := range w.EffectTable() {
		if len(d.Writes) > 0 {
			out[name] = true
		}
	}
	return out
}

// DefaultPlans is the standard fault campaign: five recoverable plans (one
// per fault class) and one permanent plan that every schedule must convert
// into a diagnosed error.
func DefaultPlans(seed uint64) []faults.Plan {
	return []faults.Plan{
		{Name: "transient-burst", Seed: seed, Recoverable: true, Specs: []faults.Spec{
			{Kind: faults.Transient, Builtin: "*", After: 40, Count: 3},
		}},
		{Name: "transient-io", Seed: seed, Recoverable: true, Specs: []faults.Spec{
			{Kind: faults.Transient, Builtin: "*", Prob: 0.01},
		}},
		{Name: "latency-spikes", Seed: seed, Recoverable: true, Specs: []faults.Spec{
			{Kind: faults.Latency, Builtin: "*", Prob: 0.05, Delay: 20000},
		}},
		{Name: "queue-stall", Seed: seed, Recoverable: true, Specs: []faults.Spec{
			{Kind: faults.QueueStall, Queue: "q", After: 3, Count: 8, Delay: 15000},
		}},
		{Name: "tm-storm", Seed: seed, Recoverable: true, Specs: []faults.Spec{
			{Kind: faults.TMStorm, After: 1, Count: 50, Aborts: 2},
		}},
		{Name: "permanent", Seed: seed, Specs: []faults.Spec{
			{Kind: faults.Permanent, Builtin: "*", After: 60},
		}},
	}
}

// CrashPlans builds the crash sub-campaign for one schedule: a transient
// crash (restart from checkpoint), a repeated crash (the replacement dies
// too), and a permanent crash (degraded mode: DOALL re-partitions, a
// pipeline collapses to the sequential fallback). victim must be a role from
// exec.CrashRoster for the target schedule. All three plans are declared
// Recoverable: a crash must never end in a diagnosed error, only in
// recovered or degraded outcomes.
func CrashPlans(seed uint64, victim string) []faults.Plan {
	return []faults.Plan{
		{Name: "crash-transient", Seed: seed, Recoverable: true, Specs: []faults.Spec{
			{Kind: faults.Crash, Thread: victim, After: 3},
		}},
		{Name: "crash-repeat", Seed: seed, Recoverable: true, Specs: []faults.Spec{
			{Kind: faults.Crash, Thread: victim, After: 2, Count: 2},
		}},
		{Name: "crash-perm", Seed: seed, Recoverable: true, Specs: []faults.Spec{
			{Kind: faults.Crash, Thread: victim, After: 3, Permanent: true},
		}},
	}
}

// crashVictim picks the campaign's crash target from a schedule's roster:
// the second DOALL worker (so the main-thread worker survives to collect
// joins even in single-survivor splits) or the first pipeline stage worker.
func crashVictim(roster []string) string {
	if len(roster) == 0 {
		return ""
	}
	if len(roster) > 1 && strings.HasPrefix(roster[0], "doall.") {
		return roster[1]
	}
	return roster[0]
}

// CampaignOptions configures FaultCampaign.
type CampaignOptions struct {
	Threads int
	Seed    uint64
	// Smoke restricts the sweep to two workloads and the deterministic
	// plans — the CI-sized campaign.
	Smoke bool
	// JSONPath, when non-empty, additionally writes the machine-readable
	// FaultReport (BENCH_faults.json) there.
	JSONPath string
}

// CampaignSummary aggregates the campaign outcomes.
type CampaignSummary struct {
	Runs      int `json:"runs"`
	Clean     int `json:"clean"`     // no faults fired (or none applied to the configuration)
	Recovered int `json:"recovered"` // faults absorbed by retries / restarts / re-execution
	Degraded  int `json:"degraded"`  // re-partitioned or sequential fallback, output accepted
	Diagnosed int `json:"diagnosed"` // run terminated with a diagnosed unrecoverable fault

	Restarts      int `json:"restarts"`      // total supervisor restarts across all runs
	Repartitioned int `json:"repartitioned"` // total dead-worker re-partitions across all runs
}

// FaultCell is one (workload, schedule, sync, plan) campaign cell of the
// machine-readable report.
type FaultCell struct {
	Workload    string `json:"workload"`
	Kind        string `json:"kind"`
	Sync        string `json:"sync"`
	Plan        string `json:"plan"`
	Recoverable bool   `json:"recoverable"`
	Outcome     string `json:"outcome"`
	Detail      string `json:"detail,omitempty"`

	// VTime is the accepted run's makespan; BaselineVTime the fault-free
	// makespan of the same schedule cell. OverheadPct is the recovery cost:
	// how much slower the faulted run finished than the fault-free one.
	VTime         int64   `json:"vtime,omitempty"`
	BaselineVTime int64   `json:"baseline_vtime,omitempty"`
	OverheadPct   float64 `json:"overhead_pct,omitempty"`

	Restarts       int                  `json:"restarts,omitempty"`
	Repartitioned  int                  `json:"repartitioned,omitempty"`
	RestartHistory []exec.RestartRecord `json:"restart_history,omitempty"`

	// MTTR is the cell's worst mean-time-to-repair in virtual time: the
	// largest RecoveredVTime-VTime gap across the restart history (how long
	// any crashed role was out of service before its replacement or salvage
	// crew resumed progress). P99JoinSkew is the loop-completion skew: the
	// p99 worker-join time minus the earliest join, the straggler tail the
	// stealing layer exists to flatten.
	MTTR        int64 `json:"mttr,omitempty"`
	P99JoinSkew int64 `json:"p99_join_skew,omitempty"`
}

// mttrOf extracts the worst repair latency from a restart history.
func mttrOf(hist []exec.RestartRecord) int64 {
	var worst int64
	for _, r := range hist {
		if r.RecoveredVTime > r.VTime && r.RecoveredVTime-r.VTime > worst {
			worst = r.RecoveredVTime - r.VTime
		}
	}
	return worst
}

// joinSkew computes p99(join) - min(join) over the virtual times at which
// the loop's workers delivered their results.
func joinSkew(joins []int64) int64 {
	if len(joins) < 2 {
		return 0
	}
	s := append([]int64(nil), joins...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(float64(len(s)-1)*0.99 + 0.5)
	return s[idx] - s[0]
}

// FaultReport is the machine-readable campaign result behind
// BENCH_faults.json. CI uploads it as an artifact so resilience regressions
// show up as a diff, not a rerun.
type FaultReport struct {
	Threads int             `json:"threads"`
	Seed    uint64          `json:"seed"`
	Smoke   bool            `json:"smoke"`
	Summary CampaignSummary `json:"summary"`
	Cells   []FaultCell     `json:"cells"`
}

// WriteFaultsJSON writes the report to path and prints a one-line
// confirmation to w.
func WriteFaultsJSON(w io.Writer, path string, rep *FaultReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s (%d cells, %d restarts, %d re-partitions)\n",
		path, len(rep.Cells), rep.Summary.Restarts, rep.Summary.Repartitioned)
	return nil
}

// campaignKinds is the schedule sweep of the campaign, in fixed order.
var campaignKinds = []transform.Kind{transform.DOALL, transform.DSWP, transform.PSDSWP}

// FaultCampaign sweeps workloads × {DOALL, DSWP, PS-DSWP} × sync modes ×
// fault plans through the resilient executor. On top of the kind-agnostic
// DefaultPlans, every schedule cell also runs the CrashPlans targeting one
// of its own worker roles (validated against exec.CrashRoster first). Every
// recoverable plan must end with sequential-equivalent output (clean,
// recovered, or degraded); every permanent-builtin plan must end in a
// diagnosed error — any other outcome fails the campaign. The sweep order
// and, given a seed, every outcome are deterministic.
func FaultCampaign(out io.Writer, opts CampaignOptions) (*FaultReport, error) {
	if opts.Threads <= 0 {
		opts.Threads = 8
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	wls := workloads.All()
	plans := DefaultPlans(opts.Seed)
	if opts.Smoke {
		wls = []*workloads.Workload{workloads.ByName("md5sum"), workloads.ByName("kmeans")}
		plans = []faults.Plan{plans[0], plans[3], plans[5]}
	}

	fmt.Fprintf(out, "Fault campaign: %d workloads, seed %d, %d threads\n", len(wls), opts.Seed, opts.Threads)
	fmt.Fprintf(out, "  %-10s %-8s %-6s %-16s %-10s %s\n", "workload", "kind", "sync", "plan", "outcome", "detail")

	rep := &FaultReport{Threads: opts.Threads, Seed: opts.Seed, Smoke: opts.Smoke}
	sum := &rep.Summary
	var violations []string

	// Compile every workload, then flatten the sweep into independent
	// (workload, schedule, sync) groups. Each group runs its fault-free
	// baseline and its whole plan list; groups share only read-only compile
	// artifacts, so they execute concurrently under -hostpar. Results are
	// replayed in submission order below, which keeps the printed table,
	// the summary, and the JSON report byte-identical to a sequential run.
	cps := make([]*Compiled, len(wls))
	if err := parDo(len(wls), func(i int) error {
		cp, err := Compile(wls[i], "comm", opts.Threads)
		cps[i] = cp
		return err
	}); err != nil {
		return nil, err
	}

	type faultGroup struct {
		cp    *Compiled
		kind  transform.Kind
		mode  exec.SyncMode
		plans []faults.Plan
	}
	var groups []faultGroup
	for wi, wl := range wls {
		cp := cps[wi]
		for _, kind := range campaignKinds {
			sched := cp.Schedule(kind)
			if sched == nil {
				continue
			}
			kindPlans := plans
			roster := exec.CrashRoster(sched, opts.Threads)
			if victim := crashVictim(roster); victim != "" {
				crash := CrashPlans(opts.Seed, victim)
				if opts.Smoke {
					crash = []faults.Plan{crash[0], crash[2]}
				}
				for i := range crash {
					if err := crash[i].Validate(roster); err != nil {
						return nil, fmt.Errorf("bench: %w", err)
					}
				}
				kindPlans = append(append([]faults.Plan(nil), plans...), crash...)
			}
			for _, mode := range wl.Syncs() {
				groups = append(groups, faultGroup{cp, kind, mode, kindPlans})
			}
		}
	}

	cells := make([][]FaultCell, len(groups))
	if err := parDo(len(groups), func(i int) error {
		g := groups[i]
		sched := g.cp.Schedule(g.kind)
		baseline, err := cleanBaseline(g.cp, sched, g.mode, opts.Threads)
		if err != nil {
			return fmt.Errorf("bench: fault-free baseline %s %v/%v: %w", g.cp.WL.Name, g.kind, g.mode, err)
		}
		cells[i] = make([]FaultCell, 0, len(g.plans))
		for _, plan := range g.plans {
			cell, err := runFaulted(g.cp, sched, g.kind, g.mode, opts.Threads, plan)
			if err != nil {
				return err
			}
			cell.BaselineVTime = baseline
			if cell.VTime > 0 && baseline > 0 {
				cell.OverheadPct = 100 * float64(cell.VTime-baseline) / float64(baseline)
			}
			cells[i] = append(cells[i], cell)
		}
		return nil
	}); err != nil {
		return nil, err
	}

	for gi, g := range groups {
		for ci, cell := range cells[gi] {
			plan := g.plans[ci]
			sum.Runs++
			switch cell.Outcome {
			case "clean":
				sum.Clean++
			case "recovered":
				sum.Recovered++
			case "degraded":
				sum.Degraded++
			case "diagnosed":
				sum.Diagnosed++
			}
			sum.Restarts += cell.Restarts
			sum.Repartitioned += cell.Repartitioned
			ok := cell.Outcome == "diagnosed" != plan.Recoverable
			if !ok {
				violations = append(violations, fmt.Sprintf(
					"%s %v/%v plan %s: outcome %s violates recoverable=%v (%s)",
					g.cp.WL.Name, g.kind, g.mode, plan.Name, cell.Outcome, plan.Recoverable, cell.Detail))
			}
			rep.Cells = append(rep.Cells, cell)
			fmt.Fprintf(out, "  %-10s %-8v %-6v %-16s %-10s %s\n",
				g.cp.WL.Name, g.kind, g.mode, plan.Name, cell.Outcome, cell.Detail)
		}
	}
	fmt.Fprintf(out, "  %d runs: %d clean, %d recovered, %d degraded, %d diagnosed (%d restarts, %d re-partitions)\n",
		sum.Runs, sum.Clean, sum.Recovered, sum.Degraded, sum.Diagnosed, sum.Restarts, sum.Repartitioned)
	if len(violations) > 0 {
		return rep, fmt.Errorf("bench: fault campaign failed:\n  %s", strings.Join(violations, "\n  "))
	}
	if opts.JSONPath != "" {
		if err := WriteFaultsJSON(out, opts.JSONPath, rep); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// cleanBaseline measures the fault-free makespan of one schedule cell (the
// denominator of the recovery-cost overhead).
func cleanBaseline(cp *Compiled, sched *transform.Schedule, mode exec.SyncMode, threads int) (int64, error) {
	w := freshWorld(cp.WL)
	res, err := exec.Run(exec.Config{
		Prog:      cp.C.Low.Prog,
		Builtins:  w.Fns(),
		Model:     cp.C.Model,
		Cost:      des.DefaultCostModel(),
		Recovery:  exec.DefaultRecovery(),
		Watchdog:  des.Watchdog{MaxEvents: 5_000_000},
		Effectful: Effectful(w),
	}, cp.LA, sched, mode, threads)
	if err != nil {
		return 0, err
	}
	return res.VirtualTime, nil
}

// runFaulted executes one workload/schedule/sync/plan cell resiliently and
// classifies the outcome.
func runFaulted(cp *Compiled, sched *transform.Schedule, kind transform.Kind, mode exec.SyncMode, threads int, plan faults.Plan) (FaultCell, error) {
	cell := FaultCell{
		Workload:    cp.WL.Name,
		Kind:        fmt.Sprintf("%v", kind),
		Sync:        fmt.Sprintf("%v", mode),
		Plan:        plan.Name,
		Recoverable: plan.Recoverable,
	}
	var lastW *builtins.World
	fresh := func() exec.Config {
		w := freshWorld(cp.WL)
		lastW = w
		inj := faults.NewInjector(plan)
		cfg := exec.Config{
			Prog:        cp.C.Low.Prog,
			Builtins:    inj.Wrap(w.Fns()),
			Model:       cp.C.Model,
			Cost:        des.DefaultCostModel(),
			Recovery:    exec.DefaultRecovery(),
			Watchdog:    des.Watchdog{MaxEvents: 5_000_000},
			PushDelay:   inj.QueueDelay,
			ExtraAborts: inj.ExtraAborts,
			Effectful:   Effectful(w),
		}
		if plan.HasCrash() {
			// Arm the checkpoint layer only for plans that can kill a
			// thread, so crash-free cells keep their exact legacy timings.
			cfg.CrashCheck = inj.CrashNow
		}
		return cfg
	}
	accept := func(parallel bool) error {
		// Sequential fallbacks replay the exact sequential output; parallel
		// schedules are held to the same standard the main harness uses.
		ordered := !parallel || kind == transform.DSWP
		return cp.WL.Validate(cp.SeqWorld, lastW, ordered)
	}
	res, runErr := exec.RunResilient(exec.ResilientOptions{
		LA:      cp.LA,
		Sched:   sched,
		Mode:    mode,
		Threads: threads,
		Fresh:   fresh,
		Accept:  accept,
	})
	if runErr != nil {
		cell.Outcome, cell.Detail = "diagnosed", runErr.Error()
		return cell, nil
	}
	cell.VTime = res.VirtualTime
	cell.Restarts = res.Restarts
	cell.Repartitioned = res.Repartitioned
	cell.RestartHistory = res.RestartHistory
	cell.MTTR = mttrOf(res.RestartHistory)
	cell.P99JoinSkew = joinSkew(res.WorkerJoins)
	switch {
	case res.FellBack || res.Degraded:
		cell.Outcome = "degraded"
		cell.Detail = fmt.Sprintf("attempts=%d restarts=%d repartitioned=%d", res.Attempts, res.Restarts, res.Repartitioned)
	case res.Recovered:
		cell.Outcome = "recovered"
		cell.Detail = fmt.Sprintf("call-retries=%d iter-retries=%d restarts=%d", res.CallRetries, res.IterRetries, res.Restarts)
	default:
		cell.Outcome = "clean"
	}
	return cell, nil
}

// VetWorkloads is the commsetvet -werror gate of the benchmark harness: it
// runs the full static check suite over every variant of every workload and
// fails if any diagnostic (error or warning) is reported, so a misannotated
// variant fails fast before any simulation runs.
func VetWorkloads(out io.Writer, threads int) error {
	checked := 0
	var bad []string
	for _, wl := range workloads.All() {
		for _, v := range wl.Variants {
			world := builtins.NewWorld()
			c, err := pipeline.Compile(pipeline.Options{
				File:    source.NewFile(fmt.Sprintf("%s[%s]", wl.Name, v.Name), v.Source),
				Sigs:    world.Sigs(),
				Effects: world.EffectTable(),
			})
			if err != nil {
				return fmt.Errorf("bench: vet gate: compile %s/%s: %w", wl.Name, v.Name, err)
			}
			diags, err := analysis.Run(c, analysis.Options{Checks: analysis.DefaultChecks(), Threads: threads})
			if err != nil {
				return fmt.Errorf("bench: vet gate: %s/%s: %w", wl.Name, v.Name, err)
			}
			checked++
			// -werror semantics: errors and warnings fail the gate;
			// informational notes do not.
			failed := false
			for i := range diags.Diags {
				if diags.Diags[i].Sev >= source.SevWarning {
					failed = true
					fmt.Fprintln(out, diags.Diags[i].Error())
				}
			}
			if failed {
				bad = append(bad, fmt.Sprintf("%s/%s", wl.Name, v.Name))
			}
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("bench: vet gate (-werror): misannotated variants: %s", strings.Join(bad, ", "))
	}
	fmt.Fprintf(out, "vet gate: %d workload variants clean (commsetvet -werror)\n", checked)
	return nil
}
