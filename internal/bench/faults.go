package bench

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/analysis"
	"repro/internal/builtins"
	"repro/internal/faults"
	"repro/internal/pipeline"
	"repro/internal/source"
	"repro/internal/transform"
	"repro/internal/vm/des"
	"repro/internal/vm/exec"
	"repro/internal/workloads"
)

// Effectful derives the builtins with externally visible writes from the
// substrate's effect table; the resilient executor refuses to re-execute a
// DOALL iteration that already completed one of them.
func Effectful(w *builtins.World) map[string]bool {
	out := map[string]bool{}
	for name, d := range w.EffectTable() {
		if len(d.Writes) > 0 {
			out[name] = true
		}
	}
	return out
}

// DefaultPlans is the standard fault campaign: five recoverable plans (one
// per fault class) and one permanent plan that every schedule must convert
// into a diagnosed error.
func DefaultPlans(seed uint64) []faults.Plan {
	return []faults.Plan{
		{Name: "transient-burst", Seed: seed, Recoverable: true, Specs: []faults.Spec{
			{Kind: faults.Transient, Builtin: "*", After: 40, Count: 3},
		}},
		{Name: "transient-io", Seed: seed, Recoverable: true, Specs: []faults.Spec{
			{Kind: faults.Transient, Builtin: "*", Prob: 0.01},
		}},
		{Name: "latency-spikes", Seed: seed, Recoverable: true, Specs: []faults.Spec{
			{Kind: faults.Latency, Builtin: "*", Prob: 0.05, Delay: 20000},
		}},
		{Name: "queue-stall", Seed: seed, Recoverable: true, Specs: []faults.Spec{
			{Kind: faults.QueueStall, Queue: "q", After: 3, Count: 8, Delay: 15000},
		}},
		{Name: "tm-storm", Seed: seed, Recoverable: true, Specs: []faults.Spec{
			{Kind: faults.TMStorm, After: 1, Count: 50, Aborts: 2},
		}},
		{Name: "permanent", Seed: seed, Specs: []faults.Spec{
			{Kind: faults.Permanent, Builtin: "*", After: 60},
		}},
	}
}

// CampaignOptions configures FaultCampaign.
type CampaignOptions struct {
	Threads int
	Seed    uint64
	// Smoke restricts the sweep to two workloads and the deterministic
	// plans — the CI-sized campaign.
	Smoke bool
}

// CampaignSummary aggregates the campaign outcomes.
type CampaignSummary struct {
	Runs      int
	Clean     int // no faults fired (or none applied to the configuration)
	Recovered int // faults absorbed by retries / iteration re-execution
	Degraded  int // sequential fallback produced the accepted output
	Diagnosed int // run terminated with a diagnosed unrecoverable fault
}

// campaignKinds is the schedule sweep of the campaign, in fixed order.
var campaignKinds = []transform.Kind{transform.DOALL, transform.DSWP, transform.PSDSWP}

// FaultCampaign sweeps workloads × {DOALL, DSWP, PS-DSWP} × sync modes ×
// fault plans through the resilient executor. Every recoverable plan must
// end with sequential-equivalent output (clean, recovered, or degraded);
// every permanent plan must end in a diagnosed error — any other outcome
// fails the campaign. The sweep order and, given a seed, every outcome are
// deterministic.
func FaultCampaign(out io.Writer, opts CampaignOptions) (*CampaignSummary, error) {
	if opts.Threads <= 0 {
		opts.Threads = 8
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	wls := workloads.All()
	plans := DefaultPlans(opts.Seed)
	if opts.Smoke {
		wls = []*workloads.Workload{workloads.ByName("md5sum"), workloads.ByName("kmeans")}
		plans = []faults.Plan{plans[0], plans[3], plans[5]}
	}

	fmt.Fprintf(out, "Fault campaign: %d workloads, seed %d, %d threads\n", len(wls), opts.Seed, opts.Threads)
	fmt.Fprintf(out, "  %-10s %-8s %-6s %-16s %-10s %s\n", "workload", "kind", "sync", "plan", "outcome", "detail")

	sum := &CampaignSummary{}
	var violations []string
	for _, wl := range wls {
		cp, err := Compile(wl, "comm", opts.Threads)
		if err != nil {
			return nil, err
		}
		for _, kind := range campaignKinds {
			sched := cp.Schedule(kind)
			if sched == nil {
				continue
			}
			for _, mode := range wl.Syncs() {
				for _, plan := range plans {
					outcome, detail, err := runFaulted(cp, sched, kind, mode, opts.Threads, plan)
					if err != nil {
						return nil, err
					}
					sum.Runs++
					switch outcome {
					case "clean":
						sum.Clean++
					case "recovered":
						sum.Recovered++
					case "degraded":
						sum.Degraded++
					case "diagnosed":
						sum.Diagnosed++
					}
					ok := outcome == "diagnosed" != plan.Recoverable
					if !ok {
						violations = append(violations, fmt.Sprintf(
							"%s %v/%v plan %s: outcome %s violates recoverable=%v (%s)",
							wl.Name, kind, mode, plan.Name, outcome, plan.Recoverable, detail))
					}
					fmt.Fprintf(out, "  %-10s %-8v %-6v %-16s %-10s %s\n",
						wl.Name, kind, mode, plan.Name, outcome, detail)
				}
			}
		}
	}
	fmt.Fprintf(out, "  %d runs: %d clean, %d recovered, %d degraded, %d diagnosed\n",
		sum.Runs, sum.Clean, sum.Recovered, sum.Degraded, sum.Diagnosed)
	if len(violations) > 0 {
		return sum, fmt.Errorf("bench: fault campaign failed:\n  %s", strings.Join(violations, "\n  "))
	}
	return sum, nil
}

// runFaulted executes one workload/schedule/sync/plan cell resiliently and
// classifies the outcome.
func runFaulted(cp *Compiled, sched *transform.Schedule, kind transform.Kind, mode exec.SyncMode, threads int, plan faults.Plan) (outcome, detail string, err error) {
	var lastW *builtins.World
	fresh := func() exec.Config {
		w := freshWorld(cp.WL)
		lastW = w
		inj := faults.NewInjector(plan)
		return exec.Config{
			Prog:        cp.C.Low.Prog,
			Builtins:    inj.Wrap(w.Fns()),
			Model:       cp.C.Model,
			Cost:        des.DefaultCostModel(),
			Recovery:    exec.DefaultRecovery(),
			Watchdog:    des.Watchdog{MaxEvents: 5_000_000},
			PushDelay:   inj.QueueDelay,
			ExtraAborts: inj.ExtraAborts,
			Effectful:   Effectful(w),
		}
	}
	accept := func(parallel bool) error {
		// Sequential fallbacks replay the exact sequential output; parallel
		// schedules are held to the same standard the main harness uses.
		ordered := !parallel || kind == transform.DSWP
		return cp.WL.Validate(cp.SeqWorld, lastW, ordered)
	}
	res, runErr := exec.RunResilient(exec.ResilientOptions{
		LA:      cp.LA,
		Sched:   sched,
		Mode:    mode,
		Threads: threads,
		Fresh:   fresh,
		Accept:  accept,
	})
	if runErr != nil {
		return "diagnosed", runErr.Error(), nil
	}
	switch {
	case res.FellBack:
		return "degraded", fmt.Sprintf("attempts=%d", res.Attempts), nil
	case res.Recovered:
		return "recovered", fmt.Sprintf("call-retries=%d iter-retries=%d", res.CallRetries, res.IterRetries), nil
	}
	return "clean", "", nil
}

// VetWorkloads is the commsetvet -werror gate of the benchmark harness: it
// runs the full static check suite over every variant of every workload and
// fails if any diagnostic (error or warning) is reported, so a misannotated
// variant fails fast before any simulation runs.
func VetWorkloads(out io.Writer, threads int) error {
	checked := 0
	var bad []string
	for _, wl := range workloads.All() {
		for _, v := range wl.Variants {
			world := builtins.NewWorld()
			c, err := pipeline.Compile(pipeline.Options{
				File:    source.NewFile(fmt.Sprintf("%s[%s]", wl.Name, v.Name), v.Source),
				Sigs:    world.Sigs(),
				Effects: world.EffectTable(),
			})
			if err != nil {
				return fmt.Errorf("bench: vet gate: compile %s/%s: %w", wl.Name, v.Name, err)
			}
			diags, err := analysis.Run(c, analysis.Options{Checks: analysis.DefaultChecks(), Threads: threads})
			if err != nil {
				return fmt.Errorf("bench: vet gate: %s/%s: %w", wl.Name, v.Name, err)
			}
			checked++
			// -werror semantics: errors and warnings fail the gate;
			// informational notes do not.
			failed := false
			for i := range diags.Diags {
				if diags.Diags[i].Sev >= source.SevWarning {
					failed = true
					fmt.Fprintln(out, diags.Diags[i].Error())
				}
			}
			if failed {
				bad = append(bad, fmt.Sprintf("%s/%s", wl.Name, v.Name))
			}
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("bench: vet gate (-werror): misannotated variants: %s", strings.Join(bad, ", "))
	}
	fmt.Fprintf(out, "vet gate: %d workload variants clean (commsetvet -werror)\n", checked)
	return nil
}
