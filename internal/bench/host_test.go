package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"testing"

	"repro/internal/vm/interp"
	"repro/internal/workloads"
)

// withHostState runs fn under the given substrate (fast path on/off) and
// host worker count, restoring the package globals and dropping every memo
// cache afterwards so tests cannot leak state into each other.
func withHostState(fast bool, workers int, fn func()) {
	savedFast, savedWorkers := interp.FastEnabled, HostWorkers
	interp.FastEnabled, HostWorkers = fast, workers
	resetCaches()
	defer func() {
		interp.FastEnabled, HostWorkers = savedFast, savedWorkers
		resetCaches()
	}()
	fn()
}

// TestHostParCampaignsByteIdentical: running a campaign's cells on the
// -hostpar worker pool must reproduce the sequential run exactly — the
// printed report byte for byte and the machine-readable report
// JSON-identical — because results are always replayed in submission
// order.
func TestHostParCampaignsByteIdentical(t *testing.T) {
	campaigns := []struct {
		name string
		run  func(w io.Writer) (any, error)
	}{
		{"faults", func(w io.Writer) (any, error) {
			return FaultCampaign(w, CampaignOptions{Threads: 4, Seed: 7, Smoke: true})
		}},
		{"service", func(w io.Writer) (any, error) {
			return ServiceCampaign(w, ServiceOptions{Threads: 4, Seed: 7, Smoke: true})
		}},
		{"sanitize", func(w io.Writer) (any, error) {
			return SanitizeCampaign(w, SanitizeOptions{Threads: 4, Smoke: true})
		}},
		{"steal", func(w io.Writer) (any, error) {
			return StealCampaign(w, StealOptions{Threads: 8, Seed: 1, Smoke: true})
		}},
	}
	for _, c := range campaigns {
		render := func(workers int) (text string, rep []byte) {
			withHostState(true, workers, func() {
				var buf bytes.Buffer
				r, err := c.run(&buf)
				if err != nil {
					t.Fatalf("%s (workers=%d) failed:\n%s%v", c.name, workers, buf.String(), err)
				}
				js, err := json.Marshal(r)
				if err != nil {
					t.Fatalf("%s: marshal report: %v", c.name, err)
				}
				text, rep = buf.String(), js
			})
			return text, rep
		}
		seqText, seqRep := render(1)
		parText, parRep := render(4)
		if seqText != parText {
			t.Errorf("%s: parallel cells changed the printed report:\n--- sequential ---\n%s--- hostpar 4 ---\n%s",
				c.name, seqText, parText)
		}
		if !bytes.Equal(seqRep, parRep) {
			t.Errorf("%s: parallel cells changed the JSON report:\n--- sequential ---\n%s\n--- hostpar 4 ---\n%s",
				c.name, seqRep, parRep)
		}
	}
}

// TestFastLegacyVTimesEqual: the compiled fast path must be bit-for-bit
// virtual-time identical to the legacy stepper for every workload, every
// applicable schedule kind, and every declared sync mode — the correctness
// contract that lets the host benchmark call the two substrates
// interchangeable.
func TestFastLegacyVTimesEqual(t *testing.T) {
	for _, wl := range workloads.All() {
		vtimes := func(fast bool) map[string]int64 {
			out := map[string]int64{}
			withHostState(fast, 1, func() {
				cp, err := compileUncached(wl, "comm", 4)
				if err != nil {
					t.Fatalf("compile %s (fast=%v): %v", wl.Name, fast, err)
				}
				out["seq"] = cp.SeqCost
				for _, kind := range campaignKinds {
					if cp.Schedule(kind) == nil {
						continue
					}
					for _, mode := range wl.Syncs() {
						m, err := cp.runUncached(kind, mode, 4, false)
						if err != nil {
							t.Fatalf("run %s %v/%v (fast=%v): %v", wl.Name, kind, mode, fast, err)
						}
						out[fmt.Sprintf("%v/%v", kind, mode)] = m.VirtualTime
					}
				}
			})
			return out
		}
		legacy, fast := vtimes(false), vtimes(true)
		if len(legacy) != len(fast) {
			t.Errorf("%s: substrates ran different cells: legacy %d, fast %d", wl.Name, len(legacy), len(fast))
		}
		for k, lv := range legacy {
			if fv, ok := fast[k]; !ok || fv != lv {
				t.Errorf("%s %s: virtual time drifted: legacy %d, fast %d", wl.Name, k, lv, fv)
			}
		}
	}
}
