package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/transform"
	"repro/internal/workloads"
)

// parallelKinds lists the parallel schedule families.
var parallelKinds = []transform.Kind{transform.DOALL, transform.DSWP, transform.PSDSWP}

// Row is one Table 2 row plus the measurements behind it.
type Row struct {
	WL          *workloads.Workload
	Annotations int
	SLOC        int
	Transforms  []string
	Best        *Measurement
	All         []*Measurement
}

// EvalWorkload measures every applicable (variant, schedule, sync)
// combination of one workload at the given thread count and returns the
// Table 2 row. Runs that a mechanism does not support (TM with I/O
// members) are skipped, mirroring the paper's "transactions not
// applicable" notes.
func EvalWorkload(wl *workloads.Workload, threads int) (*Row, error) {
	row := &Row{WL: wl, Annotations: wl.Annotations(), SLOC: wl.SLOC()}
	seenTransforms := map[string]bool{}

	for _, variant := range wl.Variants {
		cp, err := Compile(wl, variant.Name, threads)
		if err != nil {
			return nil, err
		}
		for _, kind := range parallelKinds {
			sched := cp.Schedule(kind)
			if sched == nil {
				continue
			}
			label := kind.String()
			if !seenTransforms[label] {
				seenTransforms[label] = true
				row.Transforms = append(row.Transforms, label)
			}
			for _, mode := range wl.Syncs() {
				m, err := cp.Run(kind, mode, threads)
				if err != nil {
					return nil, fmt.Errorf("%s/%s %v+%v: %w", wl.Name, variant.Name, kind, mode, err)
				}
				row.All = append(row.All, m)
				if row.Best == nil || m.Speedup > row.Best.Speedup {
					row.Best = m
				}
			}
		}
	}
	sort.Strings(row.Transforms)
	return row, nil
}

// Table2 evaluates every workload and renders the paper's Table 2.
func Table2(w io.Writer, threads int) ([]*Row, error) {
	var rows []*Row
	fmt.Fprintf(w, "Table 2: Sequential programs evaluated (reproduction, %d threads)\n", threads)
	fmt.Fprintf(w, "%-10s %-9s %-5s %-7s %-6s %-14s %-18s %-8s %-18s %-8s\n",
		"Program", "Origin", "Loop", "Annot", "SLOC", "Features", "Transforms", "Speedup", "Best Scheme", "Paper")
	var logsum float64
	var paperLogsum float64
	for _, wl := range workloads.All() {
		row, err := EvalWorkload(wl, threads)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
		scheme := "-"
		speedup := 1.0
		if row.Best != nil {
			scheme = fmt.Sprintf("%s + %s", shortSched(row.Best.Schedule), row.Best.Sync)
			speedup = row.Best.Speedup
		}
		fmt.Fprintf(w, "%-10s %-9s %-5s %-7d %-6d %-14s %-18s %-8.2f %-18s %.1fx %s\n",
			wl.Name, wl.Origin, wl.MainPct, row.Annotations, row.SLOC, wl.Features,
			strings.Join(row.Transforms, ","), speedup, scheme, wl.PaperBest, wl.PaperScheme)
		logsum += math.Log(speedup)
		paperLogsum += math.Log(wl.PaperBest)
	}
	n := float64(len(rows))
	fmt.Fprintf(w, "%-10s %-9s %-5s %-7s %-6s %-14s %-18s %-8.2f %-18s %.1fx\n",
		"geomean", "", "", "", "", "", "", math.Exp(logsum/n), "", math.Exp(paperLogsum/n))
	return rows, nil
}

// shortSched compacts a schedule label for the table.
func shortSched(s string) string {
	if i := strings.Index(s, " ["); i > 0 {
		return s[:i]
	}
	return s
}

// Geomean computes the geometric-mean speedup of the rows' best schemes.
func Geomean(rows []*Row) float64 {
	if len(rows) == 0 {
		return 1
	}
	var logsum float64
	for _, r := range rows {
		s := 1.0
		if r.Best != nil {
			s = r.Best.Speedup
		}
		logsum += math.Log(s)
	}
	return math.Exp(logsum / float64(len(rows)))
}
