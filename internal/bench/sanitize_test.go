package bench

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/sanitize"
	"repro/internal/transform"
	"repro/internal/vm/exec"
	"repro/internal/workloads"
)

// TestSanitizeCellClean drives one representative parallel cell through the
// full detect → capture → replay pipeline: the published md5sum annotations
// must come out race-free with every oracle candidate verified, and neither
// sanitizer phase may perturb virtual time.
func TestSanitizeCellClean(t *testing.T) {
	wl := workloads.ByName("md5sum")
	if wl == nil {
		t.Fatal("md5sum workload missing")
	}
	cp, err := Compile(wl, wl.Variants[0].Name, 4)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cell, err := SanitizeRun(cp, transform.DOALL, exec.SyncSpin, 4)
	if err != nil {
		t.Fatalf("sanitize: %v", err)
	}
	if !cell.Clean {
		t.Errorf("cell dirty: races=%v pairs=%v", cell.Races, cell.Pairs)
	}
	if !cell.VTimeMatch {
		t.Errorf("sanitizer perturbed virtual time: %d", cell.VirtualTime)
	}
	if cell.Candidates > 0 && cell.Verified == 0 {
		t.Errorf("candidates routed but none verified: %+v", cell)
	}
}

// TestSanitizeSequentialVerifyAll runs the exhaustive sequential oracle on a
// workload and requires every claimed pair to verify (no violations; replay
// failures degrade to inconclusive, never to false alarms).
func TestSanitizeSequentialVerifyAll(t *testing.T) {
	wl := workloads.ByName("md5sum")
	if wl == nil {
		t.Fatal("md5sum workload missing")
	}
	cp, err := Compile(wl, wl.Variants[0].Name, 1)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cell, err := SanitizeRun(cp, transform.Sequential, 0, 1)
	if err != nil {
		t.Fatalf("sanitize: %v", err)
	}
	if cell.Violations != 0 {
		t.Errorf("sequential verify-all found violations: %+v", cell.Pairs)
	}
	if !cell.VTimeMatch {
		t.Errorf("verify-all perturbed sequential cost: %d", cell.VirtualTime)
	}
	if len(cell.Pairs) == 0 {
		t.Error("verify-all produced no pair obligations for md5sum")
	}
}

// TestSanitizeNegativesFlagged replays every seeded misannotation: each
// refutes-corpus entry and the parallel NSET negative must produce at least
// one concrete commutativity violation with a replayable counterexample.
func TestSanitizeNegativesFlagged(t *testing.T) {
	negs, err := sanitizeNegatives()
	if err != nil {
		t.Fatalf("negatives: %v", err)
	}
	var refutes int
	for _, e := range analysis.Corpus() {
		if e.Refutes {
			refutes++
		}
	}
	if want := refutes + 1; len(negs) != want {
		t.Fatalf("negatives = %d, want %d (refutes corpus + parallel)", len(negs), want)
	}
	for _, n := range negs {
		if !n.Flagged || n.Violations == 0 {
			t.Errorf("negative %s (%s) not flagged: %+v", n.Name, n.Mode, n)
		}
	}
}

// TestVerifyAllSourceViolation pins the oracle's counterexample quality on
// one seeded negative: the diff must name the diverging observable and the
// replay closure must be threaded through to the verdict.
func TestVerifyAllSourceViolation(t *testing.T) {
	var entry *analysis.CorpusEntry
	for _, e := range analysis.Corpus() {
		if e.Name == "rf_rmw_global" {
			e := e
			entry = &e
			break
		}
	}
	if entry == nil {
		t.Fatal("rf_rmw_global corpus entry missing")
	}
	pairs, err := VerifyAllSource(entry.Name+".mc", entry.Source, func(c sanitize.Candidate) string {
		return "replay-here"
	})
	if err != nil {
		t.Fatalf("VerifyAllSource: %v", err)
	}
	var violated bool
	for _, p := range pairs {
		if p.Verdict == sanitize.VerdictViolation {
			violated = true
			if p.Diff == "" {
				t.Errorf("violation without counterexample diff: %+v", p)
			}
			if p.Replay != "replay-here" {
				t.Errorf("replay closure not threaded: %q", p.Replay)
			}
		}
	}
	if !violated {
		t.Fatalf("no violation found in %d pairs", len(pairs))
	}
}
