package bench

import (
	"fmt"
	"io"
)

// Table1Row is one system comparison row of the paper's Table 1.
type Table1Row struct {
	System                 string
	Predication            bool
	CommutingBlocks        bool
	GroupCommutativity     bool
	RequiresExtensions     bool
	TaskParallel           bool
	PipelineParallel       bool
	DataParallel           bool
	InterfaceCommutativity bool
	ClientCommutativity    bool
	ConcurrencyControl     string
	Driver                 string
	Speculative            bool
}

// Table1 returns the feature comparison of Table 1. The COMMSET row is what
// this repository implements; capability self-checks in the test suite
// assert each claimed feature against the implementation.
func Table1() []Table1Row {
	return []Table1Row{
		{System: "Jade", RequiresExtensions: true, TaskParallel: true, PipelineParallel: true,
			InterfaceCommutativity: true, ConcurrencyControl: "Runtime", Driver: "Runtime", Speculative: false},
		{System: "Galois", Predication: true, RequiresExtensions: true, DataParallel: true,
			InterfaceCommutativity: true, ConcurrencyControl: "Runtime", Driver: "Runtime", Speculative: true},
		{System: "DPJ", RequiresExtensions: true, TaskParallel: true, DataParallel: true,
			InterfaceCommutativity: true, ConcurrencyControl: "Programmer", Driver: "Programmer"},
		{System: "Paralax", PipelineParallel: true,
			InterfaceCommutativity: true, ConcurrencyControl: "Compiler", Driver: "Compiler"},
		{System: "VELOCITY", PipelineParallel: true,
			InterfaceCommutativity: true, ConcurrencyControl: "Compiler", Driver: "Compiler", Speculative: true},
		{System: "COMMSET", Predication: true, CommutingBlocks: true, GroupCommutativity: true,
			RequiresExtensions: false, PipelineParallel: true, DataParallel: true,
			InterfaceCommutativity: true, ClientCommutativity: true,
			ConcurrencyControl: "Compiler", Driver: "Compiler"},
	}
}

// PrintTable1 renders the comparison.
func PrintTable1(w io.Writer) {
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "-"
	}
	fmt.Fprintln(w, "Table 1: Comparison between COMMSET and other semantic-commutativity models")
	fmt.Fprintf(w, "%-9s %-5s %-7s %-6s %-7s %-5s %-5s %-5s %-6s %-7s %-11s %-10s %-5s\n",
		"System", "Pred", "Blocks", "Group", "NoExt", "Task", "Pipe", "Data", "Iface", "Client", "ConcCtl", "Driver", "Spec")
	for _, r := range Table1() {
		fmt.Fprintf(w, "%-9s %-5s %-7s %-6s %-7s %-5s %-5s %-5s %-6s %-7s %-11s %-10s %-5s\n",
			r.System, mark(r.Predication), mark(r.CommutingBlocks), mark(r.GroupCommutativity),
			mark(!r.RequiresExtensions), mark(r.TaskParallel), mark(r.PipelineParallel),
			mark(r.DataParallel), mark(r.InterfaceCommutativity), mark(r.ClientCommutativity),
			r.ConcurrencyControl, r.Driver, mark(r.Speculative))
	}
}
